package irn_test

import (
	"bytes"
	"testing"

	"github.com/irnsim/irn"
)

func TestRunDefaultsProduceMetrics(t *testing.T) {
	r := irn.Run(irn.Config{Flows: 300})
	if r.Completed != 300 || r.Incomplete != 0 {
		t.Fatalf("completed=%d incomplete=%d", r.Completed, r.Incomplete)
	}
	if r.AvgSlowdown < 1 {
		t.Errorf("slowdown %v below 1 is impossible", r.AvgSlowdown)
	}
	if r.AvgFCTms <= 0 || r.P99FCTms < r.AvgFCTms {
		t.Errorf("FCTs: avg=%v p99=%v", r.AvgFCTms, r.P99FCTms)
	}
	if len(r.SinglePacketTailMs) != 4 {
		t.Errorf("tail points = %d", len(r.SinglePacketTailMs))
	}
	if r.Events == 0 {
		t.Error("no events executed")
	}
}

func TestRunHeadlineComparison(t *testing.T) {
	irnRes := irn.Run(irn.Config{Transport: irn.TransportIRN, Flows: 500})
	roce := irn.Run(irn.Config{Transport: irn.TransportRoCE, PFC: true, Flows: 500})
	if irnRes.AvgSlowdown >= roce.AvgSlowdown {
		t.Errorf("IRN slowdown %.2f !< RoCE+PFC %.2f", irnRes.AvgSlowdown, roce.AvgSlowdown)
	}
	if roce.Drops != 0 {
		t.Errorf("RoCE+PFC dropped %d packets", roce.Drops)
	}
	if roce.PauseFrames == 0 {
		t.Error("PFC run generated no pauses at 70% load")
	}
}

func TestRunIncastMode(t *testing.T) {
	r := irn.Run(irn.Config{IncastFanIn: 10, Seed: 2})
	if r.IncastRCTms <= 0 {
		t.Fatalf("RCT = %v", r.IncastRCTms)
	}
	if r.Completed != 10 {
		t.Errorf("completed = %d, want 10 incast flows", r.Completed)
	}
}

func TestRunAblationKnobs(t *testing.T) {
	// 800 flows at the default load: enough congestion for losses, so
	// the recovery ablations separate.
	gbn := irn.Run(irn.Config{Recovery: irn.RecoveryGoBackN, Flows: 800, Seed: 11})
	sack := irn.Run(irn.Config{Flows: 800, Seed: 11})
	if sack.Drops == 0 {
		t.Fatal("expected drops at this scale; ablation comparison void")
	}
	if gbn.AvgFCTms <= sack.AvgFCTms {
		t.Errorf("go-back-N FCT %.4f !> SACK %.4f", gbn.AvgFCTms, sack.AvgFCTms)
	}
	noFC := irn.Run(irn.Config{DisableBDPFC: true, Flows: 800, Seed: 11})
	if noFC.Drops <= sack.Drops {
		t.Errorf("no-BDPFC drops %d !> default %d", noFC.Drops, sack.Drops)
	}
}

func TestVerbsPublicSurface(t *testing.T) {
	eng := irn.NewEngine()
	var a, b *irn.QP
	wireTo := func(dst **irn.QP) irn.Wire {
		return irn.WireFunc(func(p *irn.VPacket) {
			pp := p
			eng.After(irn.Microseconds(2), func() { (*dst).Receive(pp, eng.Now()) })
		})
	}
	memA, memB := irn.NewMemory(), irn.NewMemory()
	cqA, cqB := &irn.CQ{}, &irn.CQ{}
	a = irn.NewQP("a", eng, irn.DefaultQPConfig(), wireTo(&b), memA, cqA)
	b = irn.NewQP("b", eng, irn.DefaultQPConfig(), wireTo(&a), memB, cqB)

	dst := make([]byte, 4096)
	memB.Register(1, dst)
	payload := bytes.Repeat([]byte{0x5a}, 2500)
	if err := a.PostSend(irn.Request{ID: 1, Op: irn.OpWrite, Data: payload, RKey: 1, VA: 0}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(dst[:len(payload)], payload) {
		t.Fatal("write did not land")
	}
	if got := cqA.Poll(); len(got) != 1 || got[0].WQEID != 1 {
		t.Fatalf("CQEs: %+v", got)
	}
}
