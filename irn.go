// Package irn is a from-scratch reproduction of "Revisiting Network
// Support for RDMA" (Mittal et al., SIGCOMM 2018): the IRN (Improved RoCE
// NIC) transport — SACK-based selective-retransmit loss recovery plus
// BDP-FC end-to-end flow control — together with the packet-level
// datacenter network simulator, the RoCE and iWARP baselines, PFC, the
// DCQCN and Timely congestion-control schemes, the §5 RDMA verbs layer
// with out-of-order packet placement, and the §6 NIC hardware model that
// the paper's evaluation rests on.
//
// The top-level API runs simulation scenarios:
//
//	result := irn.Run(irn.Config{
//	    Transport: irn.TransportIRN,
//	    Flows:     2000,
//	})
//	fmt.Println(result.AvgSlowdown, result.AvgFCTms, result.P99FCTms)
//
// Every figure and table of the paper has a named experiment preset; see
// cmd/experiments for the full reproduction suite, and the examples/
// directory for runnable API walkthroughs (including the RDMA verbs layer
// via irn.NewQP).
package irn

import (
	"time"

	"github.com/irnsim/irn/internal/exp"
	"github.com/irnsim/irn/internal/sim"
)

// Transport selects the NIC transport.
type Transport int

// Transports under evaluation.
const (
	// TransportIRN is the paper's contribution (§3).
	TransportIRN Transport = iota
	// TransportRoCE is the go-back-N transport of current RoCE NICs.
	TransportRoCE
	// TransportIWARP is the full TCP stack in the NIC (§2.3, §4.6).
	TransportIWARP
)

// CongestionControl selects explicit congestion control.
type CongestionControl int

// Congestion-control schemes.
const (
	CCNone CongestionControl = iota
	CCTimely
	CCDCQCN
	CCAIMD
	CCDCTCP
)

// RecoveryMode selects IRN's loss-recovery ablations (§4.3).
type RecoveryMode int

// Recovery modes.
const (
	RecoverySACK RecoveryMode = iota
	RecoveryGoBackN
	RecoveryNoSACK
)

// WorkloadKind selects the flow-size distribution (§4.1, §4.4).
type WorkloadKind int

// Workloads.
const (
	WorkloadHeavyTailed WorkloadKind = iota
	WorkloadUniform
)

// Config describes one simulation run. The zero value reproduces the
// paper's default case: a 54-host fat-tree of 40 Gbps links with 2 µs
// propagation delay, 240 KB per-port buffers, heavy-tailed traffic at 70%
// load, IRN transport, no PFC, no explicit congestion control.
type Config struct {
	// Transport is the NIC transport under test.
	Transport Transport
	// CC is the congestion-control scheme.
	CC CongestionControl
	// PFC enables priority flow control in the fabric.
	PFC bool

	// FatTreeArity sizes the topology: 6 → 54 hosts, 8 → 128, 10 → 250.
	FatTreeArity int
	// LinkGbps is the link bandwidth (default 40).
	LinkGbps float64
	// PropDelay is the per-link propagation delay (default 2 µs).
	PropDelay time.Duration
	// BufferBytes is the per-input-port switch buffer (default 2×BDP).
	BufferBytes int
	// MTU is the RDMA payload per packet (default 1000).
	MTU int

	// Load is the target utilization of host links (default 0.7).
	Load float64
	// Workload picks the flow-size distribution.
	Workload WorkloadKind
	// Flows is how many flows to simulate (default 1000).
	Flows int
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// Shards splits the single run across this many cores using the
	// conservative-parallel engine (pod-partitioned fat-tree, link
	// propagation delay as lookahead). Results are bit-identical at any
	// value; >1 only buys wall-clock time on multi-core machines.
	Shards int

	// IncastFanIn, when positive, replaces the Poisson workload with
	// IncastBytes striped across this many senders (§4.4.3); combine
	// with Flows > 0 for incast over cross-traffic.
	IncastFanIn int
	// IncastBytes is the total incast transfer (default 15 MB scaled).
	IncastBytes int

	// Recovery selects IRN's loss-recovery ablation.
	Recovery RecoveryMode
	// DisableBDPFC removes IRN's in-flight cap (Figure 7 ablation).
	DisableBDPFC bool
	// RTOLow / RTOHigh are IRN's two timeouts (defaults 100 µs / 320 µs).
	RTOLow, RTOHigh time.Duration
	// RTOLowThreshold is N: RTOLow applies below N packets in flight.
	RTOLowThreshold int
	// NackThreshold delays loss recovery until this many NACKs arrive
	// (reordering tolerance, §7). Default 1.
	NackThreshold int
	// DynamicRTO uses a TCP-style adaptive timeout (§4.3).
	DynamicRTO bool
	// RetxFetchDelay models the worst-case PCIe fetch of retransmitted
	// packets (§6.3; the paper uses 2 µs).
	RetxFetchDelay time.Duration
	// ExtraHeaderBytes grows every data packet (§6.3 worst case: 16).
	ExtraHeaderBytes int
}

// Result summarizes a run with the paper's metrics (§4.1).
type Result struct {
	// AvgSlowdown is mean FCT over the empty-network ideal.
	AvgSlowdown float64
	// AvgFCTms and P99FCTms are the mean and tail flow completion times
	// in milliseconds.
	AvgFCTms float64
	P99FCTms float64
	// SinglePacketTailMs is the Figure 8 series: single-packet message
	// latency at the 90/95/99/99.9 percentiles, in ms.
	SinglePacketTailMs []float64
	// IncastRCTms is the request completion time for incast runs.
	IncastRCTms float64
	// Completed and Incomplete count flows.
	Completed, Incomplete int
	// Fabric counters.
	Drops, PauseFrames, ECNMarked uint64
	// Transport counters.
	Retransmits, Timeouts uint64
	// Events is the number of simulator events executed.
	Events uint64
}

// Run executes a configuration and returns its metrics.
func Run(cfg Config) Result {
	s := exp.Scenario{
		Name:           "api",
		Arity:          cfg.FatTreeArity,
		Gbps:           cfg.LinkGbps,
		Prop:           sim.Duration(cfg.PropDelay.Nanoseconds()) * sim.Nanosecond,
		BufferBytes:    cfg.BufferBytes,
		PFC:            cfg.PFC,
		MTU:            cfg.MTU,
		Transport:      exp.Transport(cfg.Transport),
		CC:             exp.CCKind(cfg.CC),
		Load:           cfg.Load,
		Workload:       exp.WorkloadKind(cfg.Workload),
		NumFlows:       cfg.Flows,
		Seed:           cfg.Seed,
		Shards:         cfg.Shards,
		IncastM:        cfg.IncastFanIn,
		IncastBytes:    cfg.IncastBytes,
		Recovery:       toRecovery(cfg.Recovery),
		NoBDPFC:        cfg.DisableBDPFC,
		RTOLow:         sim.Duration(cfg.RTOLow.Nanoseconds()) * sim.Nanosecond,
		RTOHigh:        sim.Duration(cfg.RTOHigh.Nanoseconds()) * sim.Nanosecond,
		RTOLowN:        cfg.RTOLowThreshold,
		NackThreshold:  cfg.NackThreshold,
		DynamicRTO:     cfg.DynamicRTO,
		RetxFetchDelay: sim.Duration(cfg.RetxFetchDelay.Nanoseconds()) * sim.Nanosecond,
		ExtraHeader:    cfg.ExtraHeaderBytes,
	}
	if cfg.IncastFanIn > 0 && cfg.IncastBytes == 0 {
		s.IncastBytes = 15_000_000
	}
	r := exp.Run(s)

	out := Result{
		AvgSlowdown: r.AvgSlowdown,
		AvgFCTms:    r.AvgFCT.Millis(),
		P99FCTms:    r.TailFCT.Millis(),
		IncastRCTms: r.RCT.Millis(),
		Completed:   r.Summary.Flows,
		Incomplete:  r.Summary.Incomplete,
		Drops:       r.Net.Drops,
		PauseFrames: r.Net.PauseFrames,
		ECNMarked:   r.Net.ECNMarked,
		Retransmits: r.Retransmits,
		Timeouts:    r.Timeouts,
		Events:      r.Events,
	}
	for _, pt := range r.SinglePktCDF {
		out.SinglePacketTailMs = append(out.SinglePacketTailMs, pt.Latency.Millis())
	}
	return out
}

func toRecovery(m RecoveryMode) coreRecovery {
	return coreRecovery(m)
}
