package irn

import (
	"github.com/irnsim/irn/internal/core"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/verbs"
)

// coreRecovery aliases the internal recovery-mode enum for Config
// conversion.
type coreRecovery = core.RecoveryMode

// The verbs layer (§5) is exported through aliases so applications can
// exercise RDMA semantics — queue pairs, WQEs/CQEs, Write/Read/Send/
// Atomic operations with out-of-order placement — over simulated lossy
// fabrics. See examples/keyvalue for a complete walkthrough.

// QP is an RDMA queue pair with IRN's transport extensions.
type QP = verbs.QP

// QPConfig parameterizes a QP.
type QPConfig = verbs.Config

// Request is a work request for QP.PostSend.
type Request = verbs.Request

// CQE is a completion-queue entry.
type CQE = verbs.CQE

// CQ is a completion queue.
type CQ = verbs.CQ

// Memory is registered RDMA memory (rkey-addressed regions).
type Memory = verbs.Memory

// SRQ is a shared receive queue (Appendix B.2).
type SRQ = verbs.SRQ

// VPacket is a verbs-layer packet (BTH + IRN extension headers).
type VPacket = verbs.VPacket

// Wire carries verbs packets between QPs; implementations may delay,
// reorder and drop.
type Wire = verbs.Wire

// WireFunc adapts a function to Wire.
type WireFunc = verbs.WireFunc

// Engine is the discrete-event engine verbs QPs run on.
type Engine = sim.Engine

// Duration is simulation time in picoseconds.
type Duration = sim.Duration

// Nanoseconds converts nanoseconds to simulation Duration.
func Nanoseconds(n int64) Duration { return Duration(n) * sim.Nanosecond }

// Microseconds converts microseconds to simulation Duration.
func Microseconds(n int64) Duration { return Duration(n) * sim.Microsecond }

// Verbs operation types.
const (
	OpWrite    = verbs.OpWrite
	OpWriteImm = verbs.OpWriteImm
	OpRead     = verbs.OpRead
	OpSend     = verbs.OpSend
	OpSendInv  = verbs.OpSendInv
	OpFetchAdd = verbs.OpFetchAdd
	OpCmpSwap  = verbs.OpCmpSwap
)

// NewEngine creates a simulation engine (picosecond clock at zero).
func NewEngine() *Engine { return sim.NewEngine() }

// NewQP builds a queue pair; see verbs.NewQP.
func NewQP(name string, eng *Engine, cfg QPConfig, wire Wire, mem *Memory, cq *CQ) *QP {
	return verbs.NewQP(name, eng, cfg, wire, mem, cq)
}

// NewMemory creates an empty RDMA memory.
func NewMemory() *Memory { return verbs.NewMemory() }

// NewSRQ creates a shared receive queue.
func NewSRQ() *SRQ { return verbs.NewSRQ() }

// DefaultQPConfig returns sensible QP defaults (1 KB MTU, 110-packet BDP
// cap, the paper's RTOLow/RTOHigh).
func DefaultQPConfig() QPConfig { return verbs.DefaultConfig() }
