#!/usr/bin/env bash
# bench.sh — record the repo's perf trajectory.
#
# Runs the BenchmarkFig* suite with -benchmem and writes BENCH_<n>.json at
# the repo root, where <n> is one past the highest checked-in baseline.
# Compare runs with e.g.:
#
#   jq -r '.benchmarks[] | [.name, .ns_per_op, .allocs_per_op] | @tsv' BENCH_1.json
#
# For every benchmark pair X / XShards (FigScale, FigDC), benchjson
# derives the recorded "speedup" metric — serial ns/op ÷ sharded ns/op,
# the intra-run parallel speedup of the conservative-parallel engine.
#
# Delta mode diffs the two newest checked-in baselines and fails on
# ns/op or bytes/op regressions, or on a parallel-speedup drop beyond
# the same threshold (CI runs this in bench-smoke):
#
#   scripts/bench.sh delta            # newest vs. previous BENCH_*.json
#   BENCH_MAX_REGRESS=5 scripts/bench.sh delta
#   BENCH_MAX_MEM_REGRESS=5 scripts/bench.sh delta
#
# Shards mode sweeps the figscale preset across intra-run shard counts
# and prints the wall-clock column per count (results are bit-identical
# by construction; only ns/op should move):
#
#   scripts/bench.sh shards           # figscale at 1, 2, 4, 8 shards
#
# Environment:
#   BENCH_PATTERN  benchmark regex   (default: ^BenchmarkFig)
#   BENCH_TIME     -benchtime value  (default: 1x — each Fig preset is a
#                  full deterministic experiment, so one iteration is a
#                  meaningful, reproducible sample)
#   BENCH_RUNS     repeat the suite this many times and keep each
#                  benchmark's fastest run (default: 1). Every run is the
#                  same deterministic simulation, so spread between
#                  repeats is scheduler/neighbor noise and the minimum is
#                  the noise-robust wall-clock estimate — use >= 3 on
#                  shared or single-core boxes.
#   BENCH_MAX_REGRESS  delta mode's ns/op failure threshold in percent
#                  (default: 10)
#   BENCH_MAX_MEM_REGRESS  delta mode's bytes/op failure threshold in
#                  percent (default: 10) — guards the streaming
#                  collectors' O(shards) allocation invariant
set -euo pipefail
cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done

if [ "${1:-}" = "delta" ]; then
    latest=$((n - 1))
    prev=$((n - 2))
    if [ "$prev" -lt 1 ]; then
        echo "bench.sh delta: need at least two BENCH_<n>.json baselines" >&2
        exit 2
    fi
    exec go run ./cmd/benchjson -delta -max-regress "${BENCH_MAX_REGRESS:-10}" \
        -max-mem-regress "${BENCH_MAX_MEM_REGRESS:-10}" \
        "BENCH_${prev}.json" "BENCH_${latest}.json"
fi

if [ "${1:-}" = "shards" ]; then
    # Intra-run scaling sweep: one figscale trial per shard count via the
    # irnsim CLI (k=10, figscale's flow count at default scale). The
    # sharded engine is bit-identical at every count, so diffing the
    # printed metrics across rows double-checks determinism on this box
    # while the wall-clock column measures the speedup. The binary is
    # built once and the serial wall clock measured once up front — the
    # earlier loop re-ran `go run` (a rebuild) per count and left the
    # reader to re-derive every speedup against the shards=1 row by hand.
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    go build -o "$tmpdir/irnsim" ./cmd/irnsim
    base_ms=0
    for s in 1 2 4 8; do
        echo "--- shards=$s ---"
        t0=$(date +%s%N)
        "$tmpdir/irnsim" -arity 10 -flows 1024 -shards "$s" -parallel 1 -shard-stats
        t1=$(date +%s%N)
        ms=$(((t1 - t0) / 1000000))
        if [ "$s" -eq 1 ]; then
            base_ms=$ms
            echo "wall ${ms} ms (serial baseline)"
        else
            echo "wall ${ms} ms  speedup $(awk -v b="$base_ms" -v m="$ms" \
                'BEGIN { if (m > 0) printf "%.2fx", b / m; else printf "n/a" }')"
        fi
    done
    exit 0
fi

out="BENCH_${n}.json"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

runs="${BENCH_RUNS:-1}"
for r in $(seq 1 "$runs"); do
    [ "$runs" -gt 1 ] && echo "--- bench run $r/$runs ---"
    go test -run '^$' -bench "${BENCH_PATTERN:-^BenchmarkFig}" \
        -benchtime "${BENCH_TIME:-1x}" -benchmem . | tee "$tmpdir/raw_$r"
    go run ./cmd/benchjson <"$tmpdir/raw_$r" >"$tmpdir/run_$r.json"
done

if [ "$runs" -gt 1 ]; then
    go run ./cmd/benchjson -min "$tmpdir"/run_*.json >"$out"
else
    cp "$tmpdir/run_1.json" "$out"
fi
echo "wrote $out"
