#!/usr/bin/env bash
# bench.sh — record the repo's perf trajectory.
#
# Runs the BenchmarkFig* suite with -benchmem and writes BENCH_<n>.json at
# the repo root, where <n> is one past the highest checked-in baseline.
# Compare runs with e.g.:
#
#   jq -r '.benchmarks[] | [.name, .ns_per_op, .allocs_per_op] | @tsv' BENCH_1.json
#
# Environment:
#   BENCH_PATTERN  benchmark regex   (default: ^BenchmarkFig)
#   BENCH_TIME     -benchtime value  (default: 1x — each Fig preset is a
#                  full deterministic experiment, so one iteration is a
#                  meaningful, reproducible sample)
set -euo pipefail
cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "${BENCH_PATTERN:-^BenchmarkFig}" \
    -benchtime "${BENCH_TIME:-1x}" -benchmem . | tee "$raw"

go run ./cmd/benchjson <"$raw" >"$out"
echo "wrote $out"
