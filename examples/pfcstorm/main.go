// Pfcstorm: demonstrate the pathology that motivates the paper — PFC's
// congestion spreading (§2.2). One overloaded destination causes pause
// frames to cascade upstream, head-of-line blocking flows that never go
// anywhere near the hotspot. IRN without PFC confines the damage to the
// congested flows.
package main

import (
	"fmt"

	"github.com/irnsim/irn"
)

func main() {
	fmt.Println("PFC congestion spreading: 30-way incast + innocent cross-traffic at 50% load")
	fmt.Println()

	run := func(name string, cfg irn.Config) irn.Result {
		cfg.IncastFanIn = 30
		cfg.IncastBytes = 15_000_000
		cfg.Flows = 1200 // background flows sharing the fabric
		cfg.Load = 0.5
		r := irn.Run(cfg)
		fmt.Printf("%-16s incast_rct=%8.3fms  victim_avg_slowdown=%6.2f  victim_p99_fct=%8.4fms  pauses=%d\n",
			name, r.IncastRCTms, r.AvgSlowdown, r.P99FCTms, r.PauseFrames)
		return r
	}

	pfc := run("RoCE + PFC", irn.Config{Transport: irn.TransportRoCE, PFC: true})
	both := run("IRN + PFC", irn.Config{Transport: irn.TransportIRN, PFC: true})
	clean := run("IRN (no PFC)", irn.Config{Transport: irn.TransportIRN})

	fmt.Println()
	fmt.Printf("background traffic slowdown, IRN vs RoCE+PFC: %.2fx better\n",
		pfc.AvgSlowdown/clean.AvgSlowdown)
	fmt.Printf("pause frames emitted under PFC: %d (RoCE), %d (IRN+PFC); zero without PFC\n",
		pfc.PauseFrames, both.PauseFrames)
	fmt.Println("\npaper §4.4.3: background traffic improves 32-87% with IRN; pauses cascade")
	fmt.Println("to links nowhere near the incast destination (head-of-line blocking).")
}
