// Incast: the §4.4.3 experiment. Incast without cross-traffic is PFC's
// best case — only genuinely congesting flows get paused — yet IRN
// without PFC stays within a few percent of RoCE with PFC across fan-ins.
package main

import (
	"fmt"

	"github.com/irnsim/irn"
)

func main() {
	fmt.Println("Incast: striping 15MB across M senders toward one host (no cross-traffic)")
	fmt.Printf("%6s %18s %18s %12s\n", "M", "IRN RCT (ms)", "RoCE+PFC RCT (ms)", "ratio")

	for _, m := range []int{10, 20, 30, 40, 50} {
		irnRes := irn.Run(irn.Config{
			Transport:   irn.TransportIRN,
			IncastFanIn: m,
			IncastBytes: 15_000_000,
			Seed:        uint64(m),
		})
		roce := irn.Run(irn.Config{
			Transport:   irn.TransportRoCE,
			PFC:         true,
			IncastFanIn: m,
			IncastBytes: 15_000_000,
			Seed:        uint64(m),
		})
		fmt.Printf("%6d %18.3f %18.3f %12.3f\n",
			m, irnRes.IncastRCTms, roce.IncastRCTms, irnRes.IncastRCTms/roce.IncastRCTms)
	}
	fmt.Println("\npaper: the RCT ratio stays within 2.5% of 1.0 (Figure 9)")
}
