// Quickstart: reproduce the paper's headline result on a small scale —
// IRN without PFC beats RoCE with PFC (§4.2), and RoCE collapses without
// PFC while IRN does not.
package main

import (
	"fmt"

	"github.com/irnsim/irn"
)

func main() {
	fmt.Println("IRN quickstart: 54-host fat-tree, 40 Gbps, 70% load, 1500 flows")
	fmt.Println()

	run := func(name string, cfg irn.Config) irn.Result {
		cfg.Flows = 1500
		r := irn.Run(cfg)
		fmt.Printf("%-22s avg_slowdown=%6.2f  avg_fct=%8.4fms  p99_fct=%8.4fms  drops=%d\n",
			name, r.AvgSlowdown, r.AvgFCTms, r.P99FCTms, r.Drops)
		return r
	}

	irnRes := run("IRN (no PFC)", irn.Config{Transport: irn.TransportIRN})
	irnPFC := run("IRN + PFC", irn.Config{Transport: irn.TransportIRN, PFC: true})
	roce := run("RoCE + PFC", irn.Config{Transport: irn.TransportRoCE, PFC: true})
	roceNo := run("RoCE (no PFC)", irn.Config{Transport: irn.TransportRoCE})

	fmt.Println()
	fmt.Printf("IRN vs RoCE+PFC:   %.2fx better avg FCT   (paper: IRN wins by 6-83%%)\n",
		roce.AvgFCTms/irnRes.AvgFCTms)
	fmt.Printf("PFC's effect on IRN:  %+.1f%% avg FCT      (paper: PFC does not help IRN)\n",
		100*(irnPFC.AvgFCTms-irnRes.AvgFCTms)/irnRes.AvgFCTms)
	fmt.Printf("PFC's effect on RoCE: %+.1f%% avg FCT      (paper: RoCE requires PFC)\n",
		100*(roceNo.AvgFCTms-roce.AvgFCTms)/roce.AvgFCTms)
}
