// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record on stdout, so the repo's perf trajectory can be checked
// in and diffed across PRs (see scripts/bench.sh, which writes the
// sequence BENCH_1.json, BENCH_2.json, ...).
//
// Standard benchmark columns become ns_per_op / bytes_per_op /
// allocs_per_op; every custom unit reported via b.ReportMetric (slowdowns,
// FCT ratios, Mpps) lands in the per-benchmark "metrics" map. One metric
// is derived rather than parsed: for every benchmark pair named X and
// XShards, the sharded row gets "speedup" = X ns/op ÷ XShards ns/op —
// the intra-run parallel speedup of the conservative-parallel engine
// (see attachSpeedups).
//
// With -delta OLD.json NEW.json it instead diffs two recorded runs,
// printing per-benchmark ns/op, bytes/op, and allocs/op changes, and
// exits non-zero if any benchmark regressed ns/op by more than
// -max-regress percent or bytes/op by more than -max-mem-regress
// percent — the check `scripts/bench.sh delta` runs in CI against the
// two newest checked-in baselines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Row is one benchmark result.
type Row struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole run.
type Record struct {
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Rows   []Row  `json:"benchmarks"`
}

// gomaxprocsSuffix strips the -N parallelism suffix go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// speedupMetric is the derived metric name attachSpeedups writes.
const speedupMetric = "speedup"

// attachSpeedups derives the intra-run parallel speedup for every
// benchmark pair named X / XShards: the serial run's ns/op divided by
// the sharded run's, attached to the sharded row as the "speedup"
// metric. It is recomputed (overwriting any prior value) so min-merged
// records stay consistent with their merged ns/op columns. On a box
// with fewer cores than shards the ratio hovers near 1.0 — the delta
// gate below compares it against the same box's previous baseline, so
// it measures parallel-efficiency drift, not absolute scaling.
func attachSpeedups(rec *Record) {
	byName := make(map[string]*Row, len(rec.Rows))
	for i := range rec.Rows {
		byName[rec.Rows[i].Name] = &rec.Rows[i]
	}
	for i := range rec.Rows {
		row := &rec.Rows[i]
		base, ok := byName[strings.TrimSuffix(row.Name, "Shards")]
		if !strings.HasSuffix(row.Name, "Shards") || !ok || base.NsPerOp <= 0 || row.NsPerOp <= 0 {
			continue
		}
		if row.Metrics == nil {
			row.Metrics = map[string]float64{}
		}
		row.Metrics[speedupMetric] = base.NsPerOp / row.NsPerOp
	}
}

func main() {
	var (
		delta         = flag.Bool("delta", false, "diff two recorded runs: benchjson -delta OLD.json NEW.json")
		maxRegress    = flag.Float64("max-regress", 10, "with -delta: fail on ns/op regressions above this percent")
		maxMemRegress = flag.Float64("max-mem-regress", 10, "with -delta: fail on bytes/op regressions above this percent")
		minMerge      = flag.Bool("min", false, "merge runs by per-benchmark minimum: benchjson -min RUN.json... (noise-robust wall-clock estimate)")
	)
	flag.Parse()
	if *delta {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -delta OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(diffRecords(flag.Arg(0), flag.Arg(1), *maxRegress, *maxMemRegress))
	}
	if *minMerge {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -min RUN.json...")
			os.Exit(2)
		}
		mergeMin(flag.Args())
		return
	}

	rec := Record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if row, ok := parseRow(line); ok {
				rec.Rows = append(rec.Rows, row)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rec.Rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	attachSpeedups(&rec)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// diffRecords prints per-benchmark ns/op, bytes/op, and allocs/op deltas
// between two recorded runs and returns the process exit code: 1 when any
// benchmark present in both runs regressed ns/op by more than maxRegress
// percent or bytes/op by more than maxMemRegress percent, 0 otherwise.
// Memory regressions gate like time regressions because the streaming
// collectors made per-run allocation a design invariant (O(shards), not
// O(flows)) — per-flow state creeping back in shows up here first.
// Benchmarks present in only one file are listed but never fail the
// check — adding or retiring a preset is not a regression.
func diffRecords(oldPath, newPath string, maxRegress, maxMemRegress float64) int {
	load := func(path string) Record {
		buf, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		var r Record
		if err := json.Unmarshal(buf, &r); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	oldRec, newRec := load(oldPath), load(newPath)
	oldBy := make(map[string]Row, len(oldRec.Rows))
	for _, r := range oldRec.Rows {
		oldBy[r.Name] = r
	}

	pct := func(oldV, newV float64) float64 { return (newV/oldV - 1) * 100 }
	fmt.Printf("%-26s %15s %15s %8s %8s %10s %9s\n", "benchmark", "old ns/op", "new ns/op", "ns Δ%", "B/op Δ%", "allocs Δ%", "speedup")
	failed := false
	for _, nr := range newRec.Rows {
		or, ok := oldBy[nr.Name]
		delete(oldBy, nr.Name)
		if !ok {
			fmt.Printf("%-26s %15s %15.0f %8s %8s %10s %9s  (new)\n", nr.Name, "-", nr.NsPerOp, "-", "-", "-", "-")
			continue
		}
		nsDelta, memDelta, allocDelta, spCol := "-", "-", "-", "-"
		regressed := false
		if or.NsPerOp > 0 && nr.NsPerOp > 0 {
			d := pct(or.NsPerOp, nr.NsPerOp)
			nsDelta = fmt.Sprintf("%+.1f", d)
			regressed = d > maxRegress
		}
		if or.BytesPerOp > 0 && nr.BytesPerOp > 0 {
			d := pct(or.BytesPerOp, nr.BytesPerOp)
			memDelta = fmt.Sprintf("%+.1f", d)
			regressed = regressed || d > maxMemRegress
		}
		if or.AllocsPerOp > 0 && nr.AllocsPerOp > 0 {
			allocDelta = fmt.Sprintf("%+.1f", pct(or.AllocsPerOp, nr.AllocsPerOp))
		}
		// Parallel efficiency gates like time: a sharded benchmark whose
		// speedup over its serial sibling drops by more than maxRegress
		// percent fails even if its absolute ns/op drifted under the bar
		// (e.g. when the serial baseline got faster too).
		if oldSp, newSp := or.Metrics[speedupMetric], nr.Metrics[speedupMetric]; oldSp > 0 && newSp > 0 {
			d := pct(oldSp, newSp)
			spCol = fmt.Sprintf("%.2fx%+.1f%%", newSp, d)
			regressed = regressed || d < -maxRegress
		}
		mark := ""
		if regressed {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-26s %15.0f %15.0f %8s %8s %10s %9s%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, nsDelta, memDelta, allocDelta, spCol, mark)
	}
	for name := range oldBy {
		fmt.Printf("%-26s  (removed)\n", name)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op (>%.0f%%), bytes/op (>%.0f%%), or parallel-speedup (>%.0f%% drop) regression between %s and %s\n",
			maxRegress, maxMemRegress, maxRegress, oldPath, newPath)
		return 1
	}
	return 0
}

// mergeMin combines several recorded runs of the same suite into one
// record taking, per benchmark, the run with the lowest ns/op (its other
// columns and metrics ride along). Each run is a full deterministic
// experiment, so wall-clock differences between repeats are scheduler and
// neighbor noise — the minimum is the standard noise-robust estimate.
// scripts/bench.sh uses this when BENCH_RUNS > 1.
func mergeMin(paths []string) {
	var out Record
	best := map[string]int{} // name → index into out.Rows
	for _, path := range paths {
		buf, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		var rec Record
		if err := json.Unmarshal(buf, &rec); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(2)
		}
		if out.Rows == nil {
			out = Record{GoOS: rec.GoOS, GoArch: rec.GoArch, Pkg: rec.Pkg, CPU: rec.CPU}
		}
		for _, row := range rec.Rows {
			if i, ok := best[row.Name]; ok {
				if row.NsPerOp < out.Rows[i].NsPerOp {
					out.Rows[i] = row
				}
				continue
			}
			best[row.Name] = len(out.Rows)
			out.Rows = append(out.Rows, row)
		}
	}
	attachSpeedups(&out)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseRow decodes one result line: name, iteration count, then
// (value, unit) pairs.
func parseRow(line string) (Row, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Row{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	row := Row{
		Name:       gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(f[0], "Benchmark"), ""),
		Iterations: iters,
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			row.NsPerOp = v
		case "B/op":
			row.BytesPerOp = v
		case "allocs/op":
			row.AllocsPerOp = v
		default:
			if row.Metrics == nil {
				row.Metrics = map[string]float64{}
			}
			row.Metrics[unit] = v
		}
	}
	return row, true
}
