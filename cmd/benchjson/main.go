// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record on stdout, so the repo's perf trajectory can be checked
// in and diffed across PRs (see scripts/bench.sh, which writes the
// sequence BENCH_1.json, BENCH_2.json, ...).
//
// Standard benchmark columns become ns_per_op / bytes_per_op /
// allocs_per_op; every custom unit reported via b.ReportMetric (slowdowns,
// FCT ratios, Mpps) lands in the per-benchmark "metrics" map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Row is one benchmark result.
type Row struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole run.
type Record struct {
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Rows   []Row  `json:"benchmarks"`
}

// gomaxprocsSuffix strips the -N parallelism suffix go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	rec := Record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if row, ok := parseRow(line); ok {
				rec.Rows = append(rec.Rows, row)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rec.Rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseRow decodes one result line: name, iteration count, then
// (value, unit) pairs.
func parseRow(line string) (Row, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Row{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	row := Row{
		Name:       gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(f[0], "Benchmark"), ""),
		Iterations: iters,
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			row.NsPerOp = v
		case "B/op":
			row.BytesPerOp = v
		case "allocs/op":
			row.AllocsPerOp = v
		default:
			if row.Metrics == nil {
				row.Metrics = map[string]float64{}
			}
			row.Metrics[unit] = v
		}
	}
	return row, true
}
