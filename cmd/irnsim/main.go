// Command irnsim runs a single simulation scenario and prints the
// paper's metrics (§4.1: average slowdown, average FCT, 99%ile FCT).
//
// Examples:
//
//	irnsim -transport irn
//	irnsim -transport roce -pfc -flows 4000
//	irnsim -transport irn -cc dcqcn -load 0.9 -arity 8
//	irnsim -transport irn -incast 30
//	irnsim -transport irn -recovery gbn       # Figure 7 ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/irnsim/irn"
)

func main() {
	var (
		transport = flag.String("transport", "irn", "transport: irn | roce | iwarp")
		ccName    = flag.String("cc", "none", "congestion control: none | timely | dcqcn | aimd | dctcp")
		pfc       = flag.Bool("pfc", false, "enable priority flow control")
		arity     = flag.Int("arity", 6, "fat-tree arity (6=54 hosts, 8=128, 10=250)")
		gbps      = flag.Float64("gbps", 40, "link bandwidth in Gbps")
		load      = flag.Float64("load", 0.7, "target link utilization")
		flows     = flag.Int("flows", 2000, "number of flows")
		buffer    = flag.Int("buffer", 0, "per-port buffer bytes (0 = 2xBDP)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workload  = flag.String("workload", "heavy", "workload: heavy | uniform")
		incast    = flag.Int("incast", 0, "incast fan-in M (0 = Poisson workload)")
		recovery  = flag.String("recovery", "sack", "IRN loss recovery: sack | gbn | nosack")
		noBDPFC   = flag.Bool("no-bdpfc", false, "disable IRN's BDP-FC")
		overheads = flag.Bool("worst-overheads", false, "model the §6.3 worst-case overheads")
	)
	flag.Parse()

	cfg := irn.Config{
		PFC:          *pfc,
		FatTreeArity: *arity,
		LinkGbps:     *gbps,
		Load:         *load,
		Flows:        *flows,
		BufferBytes:  *buffer,
		Seed:         *seed,
		IncastFanIn:  *incast,
		DisableBDPFC: *noBDPFC,
	}
	switch *transport {
	case "irn":
		cfg.Transport = irn.TransportIRN
	case "roce":
		cfg.Transport = irn.TransportRoCE
	case "iwarp", "tcp":
		cfg.Transport = irn.TransportIWARP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}
	switch *ccName {
	case "none":
	case "timely":
		cfg.CC = irn.CCTimely
	case "dcqcn":
		cfg.CC = irn.CCDCQCN
	case "aimd":
		cfg.CC = irn.CCAIMD
	case "dctcp":
		cfg.CC = irn.CCDCTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown cc %q\n", *ccName)
		os.Exit(2)
	}
	switch *workload {
	case "heavy":
	case "uniform":
		cfg.Workload = irn.WorkloadUniform
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	switch *recovery {
	case "sack":
	case "gbn":
		cfg.Recovery = irn.RecoveryGoBackN
	case "nosack":
		cfg.Recovery = irn.RecoveryNoSACK
	default:
		fmt.Fprintf(os.Stderr, "unknown recovery %q\n", *recovery)
		os.Exit(2)
	}
	if *overheads {
		cfg.RetxFetchDelay = 2 * time.Microsecond
		cfg.ExtraHeaderBytes = 16
	}

	start := time.Now()
	r := irn.Run(cfg)
	wall := time.Since(start)

	fmt.Printf("transport=%s cc=%s pfc=%v arity=%d gbps=%.0f load=%.2f flows=%d seed=%d\n",
		*transport, *ccName, *pfc, *arity, *gbps, *load, *flows, *seed)
	fmt.Printf("avg_slowdown   %10.2f\n", r.AvgSlowdown)
	fmt.Printf("avg_fct_ms     %10.4f\n", r.AvgFCTms)
	fmt.Printf("p99_fct_ms     %10.4f\n", r.P99FCTms)
	if len(r.SinglePacketTailMs) == 4 {
		fmt.Printf("1pkt_tail_ms   p90=%.4f p95=%.4f p99=%.4f p99.9=%.4f\n",
			r.SinglePacketTailMs[0], r.SinglePacketTailMs[1], r.SinglePacketTailMs[2], r.SinglePacketTailMs[3])
	}
	if *incast > 0 {
		fmt.Printf("incast_rct_ms  %10.3f\n", r.IncastRCTms)
	}
	fmt.Printf("flows          %d completed, %d incomplete\n", r.Completed, r.Incomplete)
	fmt.Printf("fabric         drops=%d pauses=%d ecn_marked=%d\n", r.Drops, r.PauseFrames, r.ECNMarked)
	fmt.Printf("transport      retransmits=%d timeouts=%d\n", r.Retransmits, r.Timeouts)
	fmt.Printf("simulator      %d events in %v (%.1fM events/s)\n",
		r.Events, wall.Round(time.Millisecond), float64(r.Events)/wall.Seconds()/1e6)
}
