// Command irnsim runs a single simulation scenario through the fleet
// runner and prints the paper's metrics (§4.1: average slowdown, average
// FCT, 99%ile FCT). With -trials > 1 it repeats the scenario under
// derived seeds across -parallel workers and reports mean ± stddev.
//
// Examples:
//
//	irnsim -transport irn
//	irnsim -transport roce -pfc -flows 4000
//	irnsim -transport irn -cc dcqcn -load 0.9 -arity 8
//	irnsim -transport irn -incast 30
//	irnsim -transport irn -recovery gbn           # Figure 7 ablation
//	irnsim -trials 5 -parallel 5 -out runs.json   # seed sweep, persisted
//	irnsim -fault-loss 0.001                      # 0.1% random per-link loss
//	irnsim -flap-links 8 -flap-down-us 400        # transient link failures
//	irnsim -degrade-links 8 -degrade-factor 0.25  # links at quarter speed
//	irnsim -chaos rolling -shards 4               # chaos suite, sharded
//	irnsim -kv 200                                # replicated KV service load
//	irnsim -kv 200 -kv-mode writeimm -chaos flap-storm
//	                                              # KV availability under chaos
//	irnsim -cpuprofile cpu.prof -memprofile mem.prof
//	                                              # pprof the run (go tool pprof)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/irnsim/irn/internal/core"
	"github.com/irnsim/irn/internal/exp"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/kv"
	"github.com/irnsim/irn/internal/prof"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

func main() {
	var (
		transport = flag.String("transport", "irn", "transport: irn | roce | iwarp")
		ccName    = flag.String("cc", "none", "congestion control: none | timely | dcqcn | aimd | dctcp")
		pfc       = flag.Bool("pfc", false, "enable priority flow control")
		arity     = flag.Int("arity", 6, "fat-tree arity (6=54 hosts, 8=128, 10=250)")
		gbps      = flag.Float64("gbps", 40, "link bandwidth in Gbps")
		load      = flag.Float64("load", 0.7, "target link utilization")
		flows     = flag.Int("flows", 2000, "number of flows")
		buffer    = flag.Int("buffer", 0, "per-port buffer bytes (0 = 2xBDP)")
		seed      = flag.Uint64("seed", 1, "random seed (base seed when -trials > 1)")
		workload  = flag.String("workload", "heavy", "workload: heavy | uniform | websearch | hadoop")
		incast    = flag.Int("incast", 0, "incast fan-in M (0 = Poisson workload)")
		kvReqs    = flag.Int("kv", 0, "run the replicated KV service with this many requests (0 = flow workload)")
		kvMode    = flag.String("kv-mode", "send", "KV RPC wire variant: send | writeimm")
		recovery  = flag.String("recovery", "sack", "IRN loss recovery: sack | gbn | nosack")
		noBDPFC   = flag.Bool("no-bdpfc", false, "disable IRN's BDP-FC")
		overheads = flag.Bool("worst-overheads", false, "model the §6.3 worst-case overheads")
		trials    = flag.Int("trials", 1, "repeat the scenario under derived seeds")
		shards    = flag.Int("shards", 1, "split the single run across this many cores (bit-identical results)")
		shardInfo = flag.Bool("shard-stats", false, "print the windowed runtime's shard report (barriers, windows, wait time)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent trial workers")
		out       = flag.String("out", "", "persist results as JSON (merging into an existing file)")

		faultLoss     = flag.Float64("fault-loss", 0, "per-link random loss rate (0-1)")
		faultCorrupt  = flag.Float64("fault-corrupt", 0, "per-link corruption rate (0-1)")
		flapLinks     = flag.Int("flap-links", 0, "number of fabric links that flap")
		flapDownUs    = flag.Int("flap-down-us", 400, "flap down time in µs")
		flapEveryUs   = flag.Int("flap-every-us", 800, "flap period in µs")
		flapCount     = flag.Int("flap-count", 3, "flaps per chosen link")
		degradeLinks  = flag.Int("degrade-links", 0, "number of fabric links running degraded")
		degradeFactor = flag.Float64("degrade-factor", 0.25, "degraded links' bandwidth fraction (0-1]")
		chaos         = flag.String("chaos", "", "chaos suite to run under: "+strings.Join(fault.SuiteNames(), " | "))
		chaosCycleUs  = flag.Int("chaos-cycle-us", 400, "chaos cycle length in µs")
		chaosCycles   = flag.Int("chaos-cycles", 6, "chaos cycles")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	s := exp.Scenario{
		Arity:       *arity,
		Shards:      *shards,
		Gbps:        *gbps,
		Load:        *load,
		NumFlows:    *flows,
		BufferBytes: *buffer,
		PFC:         *pfc,
		Seed:        *seed,
		IncastM:     *incast,
	}
	if *incast > 0 {
		s.IncastBytes = 15_000_000
	}
	switch *transport {
	case "irn":
		s.Transport = exp.TransportIRN
	case "roce":
		s.Transport = exp.TransportRoCE
	case "iwarp", "tcp":
		s.Transport = exp.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}
	switch *ccName {
	case "none":
	case "timely":
		s.CC = exp.CCTimely
	case "dcqcn":
		s.CC = exp.CCDCQCN
	case "aimd":
		s.CC = exp.CCAIMD
	case "dctcp":
		s.CC = exp.CCDCTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown cc %q\n", *ccName)
		os.Exit(2)
	}
	switch *workload {
	case "heavy":
	case "uniform":
		s.Workload = exp.WorkloadUniform
	case "websearch":
		s.Workload = exp.WorkloadWebSearch
	case "hadoop":
		s.Workload = exp.WorkloadHadoop
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	switch *recovery {
	case "sack":
	case "gbn":
		s.Recovery = core.RecoveryGoBackN
	case "nosack":
		s.Recovery = core.RecoveryNoSACK
	default:
		fmt.Fprintf(os.Stderr, "unknown recovery %q\n", *recovery)
		os.Exit(2)
	}
	if *kvReqs > 0 {
		s.KV.Requests = *kvReqs
		s.NumFlows = 0
		switch *kvMode {
		case "send":
			s.KV.Mode = kv.ModeSend
		case "writeimm":
			s.KV.Mode = kv.ModeWriteImm
		default:
			fmt.Fprintf(os.Stderr, "unknown kv mode %q\n", *kvMode)
			os.Exit(2)
		}
	}
	s.NoBDPFC = *noBDPFC
	if *overheads {
		s.RetxFetchDelay = 2 * sim.Microsecond
		s.ExtraHeader = 16
	}

	// Reject malformed fault flags as usage errors rather than panics
	// from a fleet worker. Rates are validated before anything else —
	// Spec.Enabled would treat a negative (sign-typo) rate as "no
	// faults" and silently ignore it.
	s.Faults.LossRate = *faultLoss
	s.Faults.CorruptRate = *faultCorrupt
	if err := s.Faults.Validate(0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *chaos != "" {
		suite, ok := fault.SuiteByName(*chaos)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown chaos suite %q (have %s)\n", *chaos, strings.Join(fault.SuiteNames(), ", "))
			os.Exit(2)
		}
		t := topo.NewFatTree(*arity)
		sched := suite.Build(t, sim.Time(100*sim.Microsecond),
			sim.Duration(*chaosCycleUs)*sim.Microsecond, *chaosCycles, *seed)
		spec, err := sched.Compile(t)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Keep any -fault-loss/-fault-corrupt base rates underneath the
		// suite's phases.
		spec.LossRate, spec.CorruptRate = s.Faults.LossRate, s.Faults.CorruptRate
		s.Faults = spec
		// KV runs report per-phase availability against the suite's windows.
		if *kvReqs > 0 {
			for _, w := range sched.Windows() {
				s.KV.Phases = append(s.KV.Phases, kv.Phase{Name: w.Name, From: w.From, To: w.To})
			}
		}
	}
	if *flapLinks > 0 || *degradeLinks > 0 {
		t := topo.NewFatTree(*arity)
		if *flapLinks > 0 {
			s.Faults.Flaps = fault.PeriodicFlaps(t, *flapLinks,
				sim.Time(100*sim.Microsecond),
				sim.Duration(*flapEveryUs)*sim.Microsecond,
				sim.Duration(*flapDownUs)*sim.Microsecond,
				*flapCount, *seed)
		}
		if *degradeLinks > 0 {
			s.Faults.Degrades = fault.DegradeLinks(t, *degradeLinks, 0, 0, *degradeFactor, *seed)
		}
		// Catches a zero degrade factor and overlapping flap windows
		// (e.g. -flap-down-us longer than -flap-every-us).
		if err := s.Faults.Validate(len(t.Links())); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// Persisted rows are keyed partly by name; describe the scenario
	// rather than labelling every run "cli".
	s.Name = *transport
	if *ccName != "none" {
		s.Name += "+" + *ccName
	}
	if *pfc {
		s.Name += "+pfc"
	}
	if *incast > 0 {
		s.Name += fmt.Sprintf(" incast M=%d", *incast)
	}
	if *kvReqs > 0 {
		s.Name += fmt.Sprintf(" kv[%s x%d]", *kvMode, *kvReqs)
	}
	if *chaos != "" {
		s.Name += fmt.Sprintf(" chaos[%s x%d]", *chaos, *chaosCycles)
	} else if s.Faults.Enabled() {
		s.Name += fmt.Sprintf(" faults[loss=%g corrupt=%g flaps=%d degraded=%d]",
			*faultLoss, *faultCorrupt, *flapLinks, *degradeLinks)
	}

	e := exp.Experiment{ID: "irnsim", Description: "single-scenario CLI run", Scenarios: []exp.Scenario{s}}
	cfg := exp.FleetConfig{Parallel: *parallel, Trials: *trials}
	if *trials > 1 {
		cfg.BaseSeed = *seed
	}

	stopProfiles := prof.Start(*cpuprofile, *memprofile)
	start := time.Now()
	fr := exp.RunFleet(e, cfg)
	wall := time.Since(start)
	stopProfiles()

	fmt.Printf("transport=%s cc=%s pfc=%v arity=%d gbps=%.0f load=%.2f flows=%d seed=%d trials=%d\n",
		*transport, *ccName, *pfc, *arity, *gbps, *load, *flows, *seed, fr.Config.Trials)

	r := fr.Trials[0][0]
	if *trials > 1 {
		a := fr.Aggregates()[0]
		fmt.Printf("avg_slowdown   %10.2f ± %.2f\n", a.AvgSlowdown.Mean, a.AvgSlowdown.Stddev)
		fmt.Printf("avg_fct_ms     %10.4f ± %.4f\n", a.AvgFCTms.Mean, a.AvgFCTms.Stddev)
		fmt.Printf("p99_fct_ms     %10.4f ± %.4f\n", a.P99FCTms.Mean, a.P99FCTms.Stddev)
		if *incast > 0 {
			fmt.Printf("incast_rct_ms  %10.3f ± %.3f\n", a.RCTms.Mean, a.RCTms.Stddev)
		}
		fmt.Printf("drops          %10.0f ± %.0f\n", a.Drops.Mean, a.Drops.Stddev)
		fmt.Printf("retransmits    %10.0f ± %.0f\n", a.Retransmits.Mean, a.Retransmits.Stddev)
	} else {
		fmt.Printf("avg_slowdown   %10.2f\n", r.AvgSlowdown)
		fmt.Printf("avg_fct_ms     %10.4f\n", r.AvgFCT.Millis())
		fmt.Printf("p99_fct_ms     %10.4f\n", r.TailFCT.Millis())
		if len(r.SinglePktCDF) == 4 {
			fmt.Printf("1pkt_tail_ms   p90=%.4f p95=%.4f p99=%.4f p99.9=%.4f\n",
				r.SinglePktCDF[0].Latency.Millis(), r.SinglePktCDF[1].Latency.Millis(),
				r.SinglePktCDF[2].Latency.Millis(), r.SinglePktCDF[3].Latency.Millis())
		}
		if *incast > 0 {
			fmt.Printf("incast_rct_ms  %10.3f\n", r.RCT.Millis())
		}
		fmt.Printf("flows          %d completed, %d incomplete\n", r.Summary.Flows, r.Summary.Incomplete)
		fmt.Printf("fabric         drops=%d pauses=%d ecn_marked=%d\n", r.Net.Drops, r.Net.PauseFrames, r.Net.ECNMarked)
		if r.Net.FaultDrops+r.Net.Corrupted > 0 {
			fmt.Printf("faults         lost=%d corrupted=%d\n", r.Net.FaultDrops, r.Net.Corrupted)
		}
		fmt.Printf("transport      retransmits=%d timeouts=%d\n", r.Retransmits, r.Timeouts)
		if k := r.KV; k != nil {
			fmt.Printf("kv             %d/%d resolved, availability=%.4f (SLO %v)\n",
				k.Resolved, k.Issued, k.Availability, r.Scenario.KV.SLO)
			fmt.Printf("kv_commit      p50=%v p99=%v (%d Puts committed, %d Gets)\n",
				k.CommitP50, k.CommitP99, k.Committed, k.GetsOK)
			fmt.Printf("kv_robustness  retries=%d timeouts=%d giveups=%d readonly=%d degraded=%d\n",
				k.Retries, k.Timeouts, k.GiveUps, k.ReadOnly, k.DegradedEnters)
			for _, p := range k.Phases {
				if p.Issued == 0 {
					continue
				}
				fmt.Printf("kv_phase       %-14s avail=%.3f (%d issued)\n",
					p.Name, float64(p.WithinSLO)/float64(p.Issued), p.Issued)
			}
		}
	}

	var events uint64
	for _, trials := range fr.Trials {
		for _, res := range trials {
			events += res.Events
		}
	}
	fmt.Printf("simulator      %d events in %v (%.1fM events/s)\n",
		events, wall.Round(time.Millisecond), float64(events)/wall.Seconds()/1e6)

	if *shardInfo {
		if st := r.ShardStats; st != nil {
			fmt.Printf("windows        lookahead=%v barriers=%d wide=%d shards=%d\n",
				st.Lookahead, st.Barriers, st.WideWindows, len(st.Shards))
			for i, sh := range st.Shards {
				fmt.Printf("shard %-2d       windows=%d events=%d drained=%d barrier_wait=%v\n",
					i, sh.Windows, sh.Events, sh.Drained,
					time.Duration(sh.BarrierWaitNs).Round(time.Microsecond))
			}
		}
	}

	if *out != "" {
		st := exp.NewStore()
		st.PutFleet(fr)
		n, err := st.SaveMerged(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "persisting %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("persisted %d rows to %s\n", n, *out)
	}
}
