// Command experiments reproduces every table and figure of the paper's
// evaluation (§4 and Appendix A): it runs the named experiment presets
// and prints the same rows and series the paper reports.
//
//	experiments                 # the full suite
//	experiments -run fig1,fig7  # selected experiments
//	experiments -flows 10000    # closer to paper-scale (slower)
//	experiments -list           # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/irnsim/irn/internal/exp"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment ids (default: all)")
		flows  = flag.Int("flows", 4000, "Poisson flows per run (higher = closer to steady state)")
		incast = flag.Int("incast-bytes", 15_000_000, "incast transfer size in bytes")
		reps   = flag.Int("incast-reps", 3, "incast repetitions per fan-in")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	scale := exp.Scale{Flows: *flows, IncastBytes: *incast, IncastReps: *reps}
	all := exp.All(scale)

	if *list {
		for _, e := range all {
			fmt.Printf("%-14s %s (%d scenarios)\n", e.ID, e.Description, len(e.Scenarios))
		}
		return
	}

	selected := all
	if *runIDs != "" {
		selected = nil
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id), scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	suiteStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		results := exp.RunExperiment(e)
		fmt.Print(exp.Render(e, results))
		fmt.Printf("(%d scenarios in %v)\n\n", len(results), time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("suite completed in %v\n", time.Since(suiteStart).Round(time.Second))
}
