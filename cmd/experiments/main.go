// Command experiments reproduces every table and figure of the paper's
// evaluation (§4 and Appendix A): it runs the named experiment presets
// through the fleet runner and prints the same rows and series the paper
// reports.
//
//	experiments                        # the full suite, GOMAXPROCS-wide
//	experiments -run fig1,fig7         # selected experiments
//	experiments -parallel 8 -trials 5  # 5 seeds per scenario, 8 workers
//	experiments -seed 42 -out r.json   # reseeded sweep persisted as JSON
//	experiments -diff old.json         # compare against a previous run
//	experiments -flows 10000           # closer to paper-scale (slower)
//	experiments -run figloss,figflap   # fault-injection robustness sweeps
//	experiments -run figchaos          # chaos-suite robustness preset
//	experiments -run endurance -shards 4
//	                                   # minutes-long chaos soak with
//	                                   # invariant checks each segment
//	experiments -run fig1 -fault-loss 0.001
//	                                   # overlay 0.1% random loss on fig1
//	experiments -run figscale          # k=10 fat-tree scale-up (1024 flows)
//	experiments -run figscale -shards 4
//	                                   # shard that one run across 4 cores
//	experiments -run figdc             # datacenter scale: k=16, 100k flows
//	                                   # (streaming collectors keep metric
//	                                   # memory O(hosts), not O(flows))
//	experiments -cpuprofile cpu.prof   # pprof the suite (go tool pprof)
//	experiments -list                  # enumerate experiment ids
//
// Results persisted with -out are keyed by experiment id + scenario label
// + seed; re-running with the same -out merges into the existing file, so
// a suite can be accumulated across invocations (or machines) and
// compared across code versions with -diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/irnsim/irn/internal/exp"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/prof"
	"github.com/irnsim/irn/internal/sim"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		flows    = flag.Int("flows", 4000, "Poisson flows per run (higher = closer to steady state)")
		incast   = flag.Int("incast-bytes", 15_000_000, "incast transfer size in bytes")
		reps     = flag.Int("incast-reps", 3, "incast repetitions per fan-in")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent scenario workers")
		trials   = flag.Int("trials", 1, "trials per scenario (derived seeds; >1 reports mean±stddev)")
		shards   = flag.Int("shards", 1, "shard each run across this many cores (fleet caps workers x shards at GOMAXPROCS; results bit-identical)")
		seed     = flag.Uint64("seed", 0, "base seed for derived trial seeds (0 = preset seeds when -trials=1)")
		out      = flag.String("out", "", "persist results as JSON (merging into an existing file)")
		diffPath = flag.String("diff", "", "diff results against a previously saved JSON file")
		list     = flag.Bool("list", false, "list experiment ids and exit")

		faultLoss    = flag.Float64("fault-loss", 0, "overlay a per-link random loss rate on every scenario")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "overlay a per-link corruption rate on every scenario")

		chaosSuite = flag.String("chaos", "rolling", "endurance chaos suite: "+strings.Join(fault.SuiteNames(), " | "))
		segments   = flag.Int("segments", 6, "endurance soak segments")
		horizonMs  = flag.Int("horizon-ms", 20_000, "endurance simulated horizon per segment in ms")
		enduranceK = flag.Int("endurance-arity", 10, "endurance fat-tree arity")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	scale := exp.Scale{Flows: *flows, IncastBytes: *incast, IncastReps: *reps}
	all := exp.All(scale)

	if *list {
		for _, e := range all {
			fmt.Printf("%-14s %s (%d scenarios)\n", e.ID, e.Description, len(e.Scenarios))
		}
		fmt.Printf("%-14s long-horizon chaos soak (-chaos, -segments, -horizon-ms, -endurance-arity)\n", "endurance")
		return
	}

	// The endurance soak is a harness of its own (segmented worker reuse,
	// invariant checks, heap sampling), not a preset experiment; dispatch
	// it before preset lookup. It composes with preset ids: the soak runs
	// after the selected experiments.
	runEndurance := false
	selected := all
	if *runIDs != "" {
		selected = nil
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if id == "endurance" {
				runEndurance = true
				continue
			}
			e, ok := exp.ByID(id, scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	overlay := fault.Spec{LossRate: *faultLoss, CorruptRate: *faultCorrupt}
	if err := overlay.Validate(0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Overlay CLI fault rates on every selected scenario: ad-hoc
	// robustness runs of any figure without a dedicated preset. Scenarios
	// that already set an axis (the figloss sweep) keep their own values —
	// overwriting them would run a different sweep than the labels claim.
	if *faultLoss > 0 || *faultCorrupt > 0 {
		for ei := range selected {
			for si := range selected[ei].Scenarios {
				s := &selected[ei].Scenarios[si]
				if s.Faults.LossRate == 0 {
					s.Faults.LossRate = *faultLoss
				}
				if s.Faults.CorruptRate == 0 {
					s.Faults.CorruptRate = *faultCorrupt
				}
			}
		}
	}

	// Overlay intra-run sharding on every scenario — fault-injection
	// presets included, which shard like any other. RunFleet arbitrates
	// the two parallelism axes (workers x shards <= GOMAXPROCS).
	if *shards > 1 {
		for ei := range selected {
			for si := range selected[ei].Scenarios {
				selected[ei].Scenarios[si].Shards = *shards
			}
		}
	}

	store := exp.NewStore()
	cfg := exp.FleetConfig{Parallel: *parallel, Trials: *trials, BaseSeed: *seed}

	stopProfiles := prof.Start(*cpuprofile, *memprofile)
	suiteStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		fr := exp.RunFleet(e, cfg)
		store.PutFleet(fr)
		if *trials > 1 {
			fmt.Print(exp.RenderAggregates(e, fr.Aggregates()))
		} else {
			fmt.Print(exp.Render(e, fr.First()))
		}
		fmt.Printf("(%d scenarios x %d trials in %v)\n\n",
			len(e.Scenarios), fr.Config.Trials, time.Since(start).Round(time.Millisecond))
	}
	if runEndurance {
		ecfg := exp.EnduranceConfig{
			Arity:    *enduranceK,
			Segments: *segments,
			Horizon:  sim.Duration(*horizonMs) * sim.Millisecond,
			Suite:    *chaosSuite,
			Seed:     *seed,
			Shards:   *shards,
			Log:      func(line string) { fmt.Println("  " + line) },
		}
		fmt.Printf("endurance soak: k=%d suite=%s %d segments x %dms\n",
			ecfg.Arity, ecfg.Suite, ecfg.Segments, *horizonMs)
		start := time.Now()
		rep, err := exp.RunEndurance(ecfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "endurance soak failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("soak held: %.1fs of simulated time, %d segments, %d fabric build(s), invariants clean (%v)\n\n",
			rep.SimTime.Seconds(), len(rep.Segments), rep.Rebuilds, time.Since(start).Round(time.Millisecond))
	}
	stopProfiles()
	fmt.Printf("suite completed in %v\n", time.Since(suiteStart).Round(time.Second))

	// Persist before diffing: a bad -diff file must not cost the results
	// of the sweep that just ran.
	if *out != "" {
		n, err := store.SaveMerged(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "persisting %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("persisted %d rows to %s\n", n, *out)
	}

	if *diffPath != "" {
		prev, err := exp.LoadStore(*diffPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *diffPath, err)
			os.Exit(1)
		}
		// Restrict the baseline to rows this invocation produced, so
		// diffing a partial rerun against a full saved suite compares
		// only what was actually re-run.
		diffs := exp.Diff(prev.Restrict(store), store)
		if len(diffs) == 0 {
			fmt.Printf("no differences vs %s\n", *diffPath)
		} else {
			fmt.Printf("%d differences vs %s:\n", len(diffs), *diffPath)
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
		}
	}
}
