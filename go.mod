module github.com/irnsim/irn

go 1.24
