package irn

// This file regenerates every table and figure of the paper's evaluation
// as Go benchmarks. Each benchmark runs the corresponding experiment
// preset at bench scale (reduced flow counts so the full suite stays
// minutes, not hours — see internal/exp.BenchScale), logs the same
// rows/series the paper reports, and exposes the headline numbers as
// benchmark metrics. cmd/experiments runs the same presets at larger
// scale; EXPERIMENTS.md records paper-vs-measured values.
//
// Absolute numbers are not expected to match the paper (the substrate is
// a reimplemented simulator, not the authors' vendor simulator); the
// comparisons — who wins, by roughly what factor — are the reproduction
// target, and several are asserted as tests in internal/exp.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/irnsim/irn/internal/exp"
	"github.com/irnsim/irn/internal/hwmodel"
	"github.com/irnsim/irn/internal/metrics"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/tcpstack"
	"github.com/irnsim/irn/internal/transport"
)

// benchExperiment runs one experiment preset per benchmark iteration and
// reports the named result metrics. Scenarios shard across the fleet
// runner's GOMAXPROCS workers; results are bit-identical to a serial run.
func benchExperiment(b *testing.B, e exp.Experiment, report func(b *testing.B, rs []exp.Result)) {
	b.Helper()
	var results []exp.Result
	for i := 0; i < b.N; i++ {
		results = exp.RunFleet(e, exp.FleetConfig{}).First()
	}
	b.Log("\n" + exp.Render(e, results))
	if report != nil {
		report(b, results)
	}
}

// reportPair exposes a two-scenario comparison: absolute slowdowns and
// the B/A ratio (scenario order is preset-defined).
func reportPair(aLabel, bLabel string) func(*testing.B, []exp.Result) {
	return func(b *testing.B, rs []exp.Result) {
		if len(rs) < 2 {
			return
		}
		b.ReportMetric(rs[0].AvgSlowdown, aLabel+"_slowdown")
		b.ReportMetric(rs[1].AvgSlowdown, bLabel+"_slowdown")
		b.ReportMetric(metrics.Ratio(rs[0].AvgFCT.Millis(), rs[1].AvgFCT.Millis()), aLabel+"_over_"+bLabel+"_fct")
	}
}

func BenchmarkFig1IRNvsRoCE(b *testing.B) {
	benchExperiment(b, exp.Figure1(exp.BenchScale()), reportPair("roce_pfc", "irn"))
}

func BenchmarkFig2IRNPFC(b *testing.B) {
	benchExperiment(b, exp.Figure2(exp.BenchScale()), reportPair("irn_pfc", "irn"))
}

func BenchmarkFig3RoCEPFC(b *testing.B) {
	benchExperiment(b, exp.Figure3(exp.BenchScale()), reportPair("roce_pfc", "roce_nopfc"))
}

func BenchmarkFig4WithCC(b *testing.B) {
	benchExperiment(b, exp.Figure4(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) == 4 {
			b.ReportMetric(metrics.Ratio(rs[0].AvgFCT.Millis(), rs[1].AvgFCT.Millis()), "timely_roce_over_irn_fct")
			b.ReportMetric(metrics.Ratio(rs[2].AvgFCT.Millis(), rs[3].AvgFCT.Millis()), "dcqcn_roce_over_irn_fct")
		}
	})
}

func BenchmarkFig5IRNPFCWithCC(b *testing.B) {
	benchExperiment(b, exp.Figure5(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) == 4 {
			b.ReportMetric(metrics.Ratio(rs[1].AvgFCT.Millis(), rs[0].AvgFCT.Millis()), "timely_nopfc_over_pfc_fct")
			b.ReportMetric(metrics.Ratio(rs[3].AvgFCT.Millis(), rs[2].AvgFCT.Millis()), "dcqcn_nopfc_over_pfc_fct")
		}
	})
}

func BenchmarkFig6RoCEPFCWithCC(b *testing.B) {
	benchExperiment(b, exp.Figure6(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) == 4 {
			b.ReportMetric(metrics.Ratio(rs[1].AvgFCT.Millis(), rs[0].AvgFCT.Millis()), "timely_nopfc_over_pfc_fct")
			// RoCE+DCQCN without PFC is Resilient RoCE.
			b.ReportMetric(metrics.Ratio(rs[3].AvgFCT.Millis(), rs[2].AvgFCT.Millis()), "dcqcn_nopfc_over_pfc_fct")
		}
	})
}

func BenchmarkFig7FactorAnalysis(b *testing.B) {
	benchExperiment(b, exp.Figure7(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) >= 3 {
			b.ReportMetric(rs[0].AvgFCT.Millis(), "irn_fct_ms")
			b.ReportMetric(rs[1].AvgFCT.Millis(), "gbn_fct_ms")
			b.ReportMetric(rs[2].AvgFCT.Millis(), "nobdpfc_fct_ms")
		}
	})
}

func BenchmarkFig8TailCDF(b *testing.B) {
	benchExperiment(b, exp.Figure8(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		// Report the no-CC p99.9 single-packet latencies (first triple).
		for i, label := range []string{"roce_pfc", "irn_pfc", "irn"} {
			if i < len(rs) && len(rs[i].SinglePktCDF) == 4 {
				b.ReportMetric(rs[i].SinglePktCDF[3].Latency.Millis(), label+"_p999_ms")
			}
		}
	})
}

func BenchmarkFig9Incast(b *testing.B) {
	benchExperiment(b, exp.Figure9(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		// Average RCT ratio across fan-ins (pairs are RoCE, IRN).
		sum, n := 0.0, 0
		for i := 0; i+1 < len(rs); i += 2 {
			if rs[i].RCT > 0 {
				sum += float64(rs[i+1].RCT) / float64(rs[i].RCT)
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "mean_rct_ratio_irn_over_roce")
		}
	})
}

func BenchmarkFig10ResilientRoCE(b *testing.B) {
	benchExperiment(b, exp.Figure10(exp.BenchScale()), reportPair("resilient_roce", "irn"))
}

func BenchmarkFig11IWARP(b *testing.B) {
	benchExperiment(b, exp.Figure11(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) == 3 {
			b.ReportMetric(rs[0].AvgSlowdown, "iwarp_slowdown")
			b.ReportMetric(rs[1].AvgSlowdown, "irn_slowdown")
			b.ReportMetric(rs[2].AvgSlowdown, "irn_aimd_slowdown")
		}
	})
}

func BenchmarkFig12Overheads(b *testing.B) {
	benchExperiment(b, exp.Figure12(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) >= 3 {
			b.ReportMetric(metrics.Ratio(rs[2].AvgFCT.Millis(), rs[1].AvgFCT.Millis()), "overhead_fct_ratio")
			b.ReportMetric(metrics.Ratio(rs[2].AvgFCT.Millis(), rs[0].AvgFCT.Millis()), "irn_worst_over_roce_fct")
		}
	})
}

// BenchmarkFigScale is the scale-up run (k=10 fat-tree, 250 hosts) the
// timing-wheel scheduler makes practical; its bench-scale flow count is
// reduced proportionally (see exp.FigureScale).
func BenchmarkFigScale(b *testing.B) {
	benchExperiment(b, exp.FigureScale(exp.BenchScale()), reportPair("roce_pfc", "irn"))
}

// BenchmarkFigScaleShards is BenchmarkFigScale with each run sharded
// across up to four cores by the conservative-parallel engine. Results
// are bit-identical to the serial preset; the ns/op ratio between the two
// benchmarks is the intra-run speedup (bounded by GOMAXPROCS — on a
// single-core box the two coincide modulo barrier overhead).
func BenchmarkFigScaleShards(b *testing.B) {
	e := exp.FigureScale(exp.BenchScale())
	for i := range e.Scenarios {
		e.Scenarios[i].Shards = 4
	}
	benchExperiment(b, e, reportPair("roce_pfc", "irn"))
}

// BenchmarkFigDC is the datacenter-scale preset (k=16 fat-tree, 1024
// hosts, empirical Hadoop workload) the streaming collectors make
// practical; the bench-scale run keeps its reduced flow count. Its
// bytes/op is the interesting series: metric collection is O(shards),
// so allocation regressions here flag per-flow state creeping back in
// (cmd/benchjson gates bytes/op like ns/op).
func BenchmarkFigDC(b *testing.B) {
	benchExperiment(b, exp.FigureDC(exp.BenchScale()), reportPair("roce_pfc", "irn"))
}

// BenchmarkFigDCShards is BenchmarkFigDC sharded across up to four
// cores — the k=16 intra-run scaling sample. cmd/benchjson derives the
// FigDC÷FigDCShards ns/op ratio as the recorded "speedup" metric and
// the delta gate fails CI when it drops >10% against the previous
// same-box baseline (on a box with fewer than 4 cores the ratio sits
// near 1.0 and the gate still catches barrier-overhead creep).
func BenchmarkFigDCShards(b *testing.B) {
	e := exp.FigureDC(exp.BenchScale())
	for i := range e.Scenarios {
		e.Scenarios[i].Shards = 4
	}
	benchExperiment(b, e, reportPair("roce_pfc", "irn"))
}

// reportKV exposes the figkv headline: mean availability per transport
// across the three chaos schedules (scenarios are RoCE/IRN pairs), the
// flap-storm commit-p99 ratio, and — for sharded runs — the mean
// barrier and widened-window counts from the shard-runtime report, so
// the recorded baselines track barrier-cadence regressions alongside
// wall-clock ones.
func reportKV(b *testing.B, rs []exp.Result) {
	var roceA, irnA float64
	pairs := 0
	for i := 0; i+1 < len(rs); i += 2 {
		if rs[i].KV == nil || rs[i+1].KV == nil {
			continue
		}
		roceA += rs[i].KV.Availability
		irnA += rs[i+1].KV.Availability
		pairs++
	}
	if pairs > 0 {
		b.ReportMetric(roceA/float64(pairs), "roce_pfc_availability")
		b.ReportMetric(irnA/float64(pairs), "irn_availability")
	}
	if len(rs) >= 2 && rs[0].KV != nil && rs[1].KV != nil {
		b.ReportMetric(metrics.Ratio(rs[0].KV.CommitP99.Millis(), rs[1].KV.CommitP99.Millis()),
			"flap_commit_p99_roce_over_irn")
	}
	var barriers, wide uint64
	shardRuns := 0
	for _, r := range rs {
		if r.ShardStats == nil || len(r.ShardStats.Shards) < 2 {
			continue
		}
		barriers += r.ShardStats.Barriers
		wide += r.ShardStats.WideWindows
		shardRuns++
	}
	if shardRuns > 0 {
		b.ReportMetric(float64(barriers)/float64(shardRuns), "barriers_per_run")
		b.ReportMetric(float64(wide)/float64(shardRuns), "wide_windows_per_run")
	}
}

// BenchmarkFigKV runs the replicated-KV chaos preset (leader flap storm,
// rolling drain, pod blackout; IRN vs RoCE+PFC). Its phases are sparse —
// blackout stretches, client backoff — which makes it the preset where
// the adaptive safe windows pay off most.
func BenchmarkFigKV(b *testing.B) {
	benchExperiment(b, exp.FigureKV(exp.BenchScale()), reportKV)
}

// BenchmarkFigKVShards is BenchmarkFigKV sharded across up to four
// cores. cmd/benchjson derives the FigKV÷FigKVShards ns/op ratio as the
// recorded "speedup" metric (like FigDC), and the barriers_per_run /
// wide_windows_per_run metrics here pin the adaptive-window collapse on
// the sparse preset in the checked-in baselines.
func BenchmarkFigKVShards(b *testing.B) {
	e := exp.FigureKV(exp.BenchScale())
	for i := range e.Scenarios {
		e.Scenarios[i].Shards = 4
	}
	benchExperiment(b, e, reportKV)
}

func BenchmarkIncastCrossTraffic(b *testing.B) {
	benchExperiment(b, exp.IncastCrossTraffic(exp.BenchScale()), func(b *testing.B, rs []exp.Result) {
		if len(rs) >= 2 && rs[0].RCT > 0 {
			b.ReportMetric(float64(rs[1].RCT)/float64(rs[0].RCT), "rct_ratio_irn_over_roce")
			b.ReportMetric(metrics.Ratio(rs[0].AvgSlowdown, rs[1].AvgSlowdown), "bg_slowdown_roce_over_irn")
		}
	})
}

func BenchmarkWindowCC(b *testing.B) {
	benchExperiment(b, exp.WindowCC(exp.BenchScale()), nil)
}

// tableScale shrinks the appendix sweeps so the full bench suite stays
// tractable; cmd/experiments runs them bigger.
func tableScale() exp.Scale {
	s := exp.BenchScale()
	s.Flows = 500
	return s
}

func BenchmarkTableA3LoadSweep(b *testing.B) { benchExperiment(b, exp.TableA3(tableScale()), nil) }
func BenchmarkTableA4Bandwidth(b *testing.B) { benchExperiment(b, exp.TableA4(tableScale()), nil) }
func BenchmarkTableA5Scale(b *testing.B)     { benchExperiment(b, exp.TableA5(tableScale()), nil) }
func BenchmarkTableA6Workload(b *testing.B)  { benchExperiment(b, exp.TableA6(tableScale()), nil) }
func BenchmarkTableA7Buffer(b *testing.B)    { benchExperiment(b, exp.TableA7(tableScale()), nil) }
func BenchmarkTableA8RTO(b *testing.B)       { benchExperiment(b, exp.TableA8(tableScale()), nil) }
func BenchmarkTableA9N(b *testing.B)         { benchExperiment(b, exp.TableA9(tableScale()), nil) }
func BenchmarkAblations(b *testing.B)        { benchExperiment(b, exp.Ablations(tableScale()), nil) }

// BenchmarkTable1MessageRate is the Table 1 analogue: per-message datapath
// cost of the iWARP TCP stack versus the RoCE/IRN-style datapath. The
// paper measured raw hardware (iWARP 3.24 Mpps / RoCE 14.7 Mpps on 64 B
// writes); here the comparable, reproducible quantity is the software
// instruction cost of each transport's per-message state machine. The
// shape to preserve: the TCP stack costs several times more per message.
func BenchmarkTable1MessageRate(b *testing.B) {
	b.Run("iwarp-tcp", func(b *testing.B) {
		ep := &nullEndpoint{}
		p := tcpstack.DefaultParams(64)
		for i := 0; i < b.N; i++ {
			fl := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 64, Pkts: 1}
			s := tcpstack.NewSender(ep, fl, p)
			pkt := s.NextPacket(0)
			ack := ackFor(pkt)
			s.HandleControl(ack, 1000)
			if !s.Done() {
				b.Fatal("message incomplete")
			}
		}
		reportMpps(b)
	})
	b.Run("irn", func(b *testing.B) {
		// The IRN datapath per 64 B message: receiveData + receiveAck on
		// the hardware model (the paper's point: IRN keeps RoCE's slim
		// per-message path; its message rate matches current RoCE NICs).
		snd := &hwmodel.QPContext{}
		rcv := &hwmodel.QPContext{}
		for i := 0; i < b.N; i++ {
			out := hwmodel.TxFree(snd, ^uint32(0), 0)
			r := hwmodel.ReceiveData(rcv, out.PSN, true)
			hwmodel.ReceiveAck(snd, r.AckPSN, false, 0)
		}
		reportMpps(b)
	})
}

// BenchmarkTable2Modules regenerates Table 2: per-module packet
// processing cost of the four IRN modules (ns/op; Mpps derived). The
// hardware numbers (45-318 Mpps) came from FPGA synthesis; the
// reproducible shape is that all modules sustain NIC-scale packet rates
// and that timeout is an order of magnitude cheaper than the bitmap
// modules.
func BenchmarkTable2Modules(b *testing.B) {
	b.Run("receiveData", func(b *testing.B) {
		ctx := &hwmodel.QPContext{}
		for i := 0; i < b.N; i++ {
			psn := ctx.Expected
			if i%7 == 3 {
				psn += 2
			}
			hwmodel.ReceiveData(ctx, psn, i%4 == 0)
		}
		reportMpps(b)
	})
	b.Run("txFree", func(b *testing.B) {
		ctx := &hwmodel.QPContext{}
		for i := 0; i < b.N; i++ {
			out := hwmodel.TxFree(ctx, ^uint32(0), hwmodel.Bits)
			if out.HasPacket && i%2 == 0 {
				hwmodel.ReceiveAck(ctx, out.PSN+1, false, 0)
			}
		}
		reportMpps(b)
	})
	b.Run("receiveAck", func(b *testing.B) {
		ctx := &hwmodel.QPContext{NextSeq: 1 << 30}
		cum := uint32(0)
		for i := 0; i < b.N; i++ {
			cum++
			hwmodel.ReceiveAck(ctx, cum, i%16 == 7, cum+3)
		}
		reportMpps(b)
	})
	b.Run("timeout", func(b *testing.B) {
		ctx := &hwmodel.QPContext{RTOLowArm: true, RTOLowN: 3, InFlight: 10, NextSeq: 10}
		for i := 0; i < b.N; i++ {
			ctx.RTOLowArm = true
			hwmodel.Timeout(ctx)
		}
		reportMpps(b)
	})
}

// BenchmarkFleetParallelism measures fleet-runner scaling: the Figure 1
// sweep on one worker versus all of them. The speedup bounds how much
// faster the whole suite runs on a given machine.
func BenchmarkFleetParallelism(b *testing.B) {
	e := exp.Figure1(exp.BenchScale())
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, par := range widths {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp.RunFleet(e, exp.FleetConfig{Parallel: par})
			}
		})
	}
}

// reportMpps converts the benchmark's ns/op into millions of packets (or
// messages) per second, Table 1/2's throughput unit.
func reportMpps(b *testing.B) {
	b.StopTimer()
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if nsPerOp > 0 {
		b.ReportMetric(1e3/nsPerOp, "Mpps")
	}
}

// nullEndpoint satisfies transport.Endpoint for datapath microbenchmarks.
type nullEndpoint struct{ eng *sim.Engine }

func (e *nullEndpoint) Now() sim.Time     { return 0 }
func (e *nullEndpoint) Clock() *sim.Clock { return nil }
func (e *nullEndpoint) Engine() *sim.Engine {
	if e.eng == nil {
		e.eng = sim.NewEngine()
	}
	return e.eng
}
func (e *nullEndpoint) SendControl(*packet.Packet) {}
func (e *nullEndpoint) Pool() *packet.Pool         { return nil }
func (e *nullEndpoint) Wake()                      {}

// ackFor builds the cumulative ACK completing pkt.
func ackFor(pkt *packet.Packet) *packet.Packet {
	ack := packet.NewAck(pkt.Flow, pkt.Dst, pkt.Src, pkt.PSN+1)
	ack.AckedSentAt = 1
	return ack
}
