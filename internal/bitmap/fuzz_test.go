package bitmap

import (
	"testing"
)

// refWindow is a naive reference model of the ring bitmap: a plain boolean
// slice indexed logically from the base. The fuzzer drives both
// implementations with the same operation stream and compares every
// observable.
type refWindow struct {
	bits []bool
	base uint32
}

func newRefWindow(capacity int) *refWindow {
	return &refWindow{bits: make([]bool, capacity)}
}

func (r *refWindow) in(seq uint32) (int, bool) {
	off := int(int32(seq - r.base))
	return off, off >= 0 && off < len(r.bits)
}

func (r *refWindow) set(seq uint32) bool {
	off, ok := r.in(seq)
	if !ok || r.bits[off] {
		return false
	}
	r.bits[off] = true
	return true
}

func (r *refWindow) get(seq uint32) bool {
	off, ok := r.in(seq)
	return ok && r.bits[off]
}

func (r *refWindow) clear(seq uint32) {
	if off, ok := r.in(seq); ok {
		r.bits[off] = false
	}
}

func (r *refWindow) advance(n int) {
	if n >= len(r.bits) {
		for i := range r.bits {
			r.bits[i] = false
		}
	} else {
		copy(r.bits, r.bits[n:])
		for i := len(r.bits) - n; i < len(r.bits); i++ {
			r.bits[i] = false
		}
	}
	r.base += uint32(n)
}

func (r *refWindow) count() int {
	n := 0
	for _, b := range r.bits {
		if b {
			n++
		}
	}
	return n
}

func (r *refWindow) nextZero(from int) int {
	for i := from; i < len(r.bits); i++ {
		if i >= 0 && !r.bits[i] {
			return i
		}
	}
	return len(r.bits)
}

func (r *refWindow) nextOne(from int) int {
	for i := from; i < len(r.bits); i++ {
		if i >= 0 && r.bits[i] {
			return i
		}
	}
	return len(r.bits)
}

func (r *refWindow) countRange(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > len(r.bits) {
		to = len(r.bits)
	}
	n := 0
	for i := from; i < to; i++ {
		if r.bits[i] {
			n++
		}
	}
	return n
}

// FuzzBitmapOps drives the ring bitmap and the reference model with the
// same byte-derived operation stream — the §6.2.1 operation classes
// (set/get/clear, head-advancing shifts, find-first-zero/one, popcount) —
// and fails on any observable divergence. This is the harness that pins
// the NIC state machine's core data structure.
func FuzzBitmapOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{3, 200, 3, 255, 4, 64, 1, 10, 5, 0})
	f.Add([]byte{0, 0, 0, 63, 3, 63, 0, 1, 6, 7, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const capacity = 128 // rounds to itself; two words
		b := New(capacity)
		ref := newRefWindow(b.Cap())

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%8, data[i+1]
			// Offsets may deliberately land outside the window (up to 2x
			// capacity): out-of-window behavior is part of the contract.
			seq := b.Base() + uint32(arg)
			switch op {
			case 0:
				got, err := b.Set(seq)
				want := ref.set(seq)
				if _, in := ref.in(seq); !in {
					if err == nil {
						t.Fatalf("Set(%d) outside window returned no error", seq)
					}
				} else if err != nil {
					t.Fatalf("Set(%d) inside window errored: %v", seq, err)
				}
				if got != want {
					t.Fatalf("Set(%d) = %v, ref %v", seq, got, want)
				}
			case 1:
				if got, want := b.Get(seq), ref.get(seq); got != want {
					t.Fatalf("Get(%d) = %v, ref %v", seq, got, want)
				}
			case 2:
				b.Clear(seq)
				ref.clear(seq)
			case 3:
				n := int(arg) % (b.Cap() + 8) // include full-window shifts
				b.Advance(n)
				ref.advance(n)
			case 4:
				b.AdvanceTo(b.Base() + uint32(arg))
				ref.advance(int(arg))
			case 5:
				if got, want := b.LeadingOnes(), ref.nextZero(0); got != want {
					t.Fatalf("LeadingOnes = %d, ref %d", got, want)
				}
			case 6:
				from := int(arg) % (b.Cap() + 1)
				if got, want := b.NextZero(from), ref.nextZero(from); got != want {
					t.Fatalf("NextZero(%d) = %d, ref %d", from, got, want)
				}
				if got, want := b.NextOne(from), ref.nextOne(from); got != want {
					t.Fatalf("NextOne(%d) = %d, ref %d", from, got, want)
				}
			case 7:
				from := int(arg) % (b.Cap() + 1)
				to := from + int(data[i]/8)
				if got, want := b.CountRange(from, to), ref.countRange(from, to); got != want {
					t.Fatalf("CountRange(%d,%d) = %d, ref %d", from, to, got, want)
				}
			}
			if b.Count() != ref.count() {
				t.Fatalf("after op %d: Count = %d, ref %d", op, b.Count(), ref.count())
			}
			if b.Base() != ref.base {
				t.Fatalf("after op %d: Base = %d, ref %d", op, b.Base(), ref.base)
			}
		}
	})
}
