package bitmap

// TwoBitmap is the responder-side "2-bitmap" of §5.3.3: for every packet
// in the window it tracks (1) whether the packet has arrived and (2)
// whether it is the last packet of a message — the packet whose in-order
// arrival point triggers an MSN update and, for Sends and
// Write-with-immediates, a Receive WQE expiration followed by CQE
// generation.
type TwoBitmap struct {
	arrived *Bitmap
	last    *Bitmap
}

// NewTwo returns a TwoBitmap with the given per-bitmap capacity.
func NewTwo(capacity int) *TwoBitmap {
	return &TwoBitmap{arrived: New(capacity), last: New(capacity)}
}

// Cap returns the window capacity in bits.
func (t *TwoBitmap) Cap() int { return t.arrived.Cap() }

// Base returns the sequence number of the window start.
func (t *TwoBitmap) Base() uint32 { return t.arrived.Base() }

// MarkArrived records the arrival of seq, flagging whether it is the last
// packet of its message. It reports whether the arrival was new.
func (t *TwoBitmap) MarkArrived(seq uint32, lastOfMessage bool) (bool, error) {
	fresh, err := t.arrived.Set(seq)
	if err != nil {
		return false, err
	}
	if lastOfMessage {
		if _, err := t.last.Set(seq); err != nil {
			return fresh, err
		}
	}
	return fresh, nil
}

// Arrived reports whether seq has arrived.
func (t *TwoBitmap) Arrived(seq uint32) bool { return t.arrived.Get(seq) }

// IsLast reports whether seq was flagged as a message boundary.
func (t *TwoBitmap) IsLast(seq uint32) bool { return t.last.Get(seq) }

// AdvanceCumulative pops the maximal in-order prefix: it counts the
// consecutive arrived packets at the head, counts how many of them are
// message boundaries (the MSN increment / number of Receive WQEs to
// expire, computed with popcount as in §6.2.1), advances both bitmaps past
// the prefix, and returns (packets advanced, messages completed).
func (t *TwoBitmap) AdvanceCumulative() (pkts, msgs int) {
	pkts = t.arrived.LeadingOnes()
	if pkts == 0 {
		return 0, 0
	}
	msgs = t.last.CountRange(0, pkts)
	t.arrived.Advance(pkts)
	t.last.Advance(pkts)
	return pkts, msgs
}

// Reset clears both bitmaps and moves the base to seq.
func (t *TwoBitmap) Reset(seq uint32) {
	t.arrived.Reset(seq)
	t.last.Reset(seq)
}
