// Package bitmap implements the ring-buffer bitmaps at the heart of IRN's
// NIC state: fixed-capacity windows of per-packet bits indexed by sequence
// number, supporting the three operation classes the paper identifies
// (§6.2.1) — find-first-zero, popcount, and head-advancing shifts.
//
// A Bitmap tracks one bit per sequence number in the window
// [Base, Base+Cap). The head of the ring corresponds to Base; advancing
// the base is a shift. The same structure backs the sender's SACK bitmap,
// the receiver's arrival bitmap, and (doubled, see TwoBitmap) the
// responder's message-boundary tracking of §5.3.3.
package bitmap

import (
	"fmt"
	"math/bits"
)

// Bitmap is a ring bitmap over the sequence window [Base, Base+Cap).
// The zero value is unusable; call New.
type Bitmap struct {
	words []uint64
	mask  int // size-1; size is a power of two
	size  int
	head  int    // physical bit index corresponding to Base
	base  uint32 // sequence number of the window start
	count int    // number of set bits
}

// New returns a bitmap with capacity for at least capacity bits. Capacity
// is rounded up to a power of two so ring arithmetic stays branch-free.
func New(capacity int) *Bitmap {
	if capacity <= 0 {
		panic("bitmap: non-positive capacity")
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	if size < 64 {
		size = 64
	}
	return &Bitmap{
		words: make([]uint64, size/64),
		mask:  size - 1,
		size:  size,
	}
}

// Cap returns the bitmap capacity in bits.
func (b *Bitmap) Cap() int { return b.size }

// Base returns the sequence number at the window start.
func (b *Bitmap) Base() uint32 { return b.base }

// Count returns the number of set bits in the window.
func (b *Bitmap) Count() int { return b.count }

// phys maps a logical offset (0 = Base) to a physical bit index.
func (b *Bitmap) phys(logical int) int { return (b.head + logical) & b.mask }

// inWindow reports whether seq falls in [Base, Base+Cap) and returns its
// logical offset.
func (b *Bitmap) inWindow(seq uint32) (int, bool) {
	off := int(int32(seq - b.base))
	if off < 0 || off >= b.size {
		return off, false
	}
	return off, true
}

// Set sets the bit for seq. It reports whether the bit was newly set, and
// returns an error if seq falls outside the window (the caller decides
// whether that is a protocol violation or simply a stale duplicate).
func (b *Bitmap) Set(seq uint32) (bool, error) {
	off, ok := b.inWindow(seq)
	if !ok {
		return false, fmt.Errorf("bitmap: seq %d outside window [%d,%d)", seq, b.base, b.base+uint32(b.size))
	}
	p := b.phys(off)
	w, bit := p>>6, uint(p&63)
	if b.words[w]&(1<<bit) != 0 {
		return false, nil
	}
	b.words[w] |= 1 << bit
	b.count++
	return true, nil
}

// Get reports whether the bit for seq is set. Sequence numbers outside the
// window report false.
func (b *Bitmap) Get(seq uint32) bool {
	off, ok := b.inWindow(seq)
	if !ok {
		return false
	}
	p := b.phys(off)
	return b.words[p>>6]&(1<<uint(p&63)) != 0
}

// Clear clears the bit for seq if it is inside the window.
func (b *Bitmap) Clear(seq uint32) {
	off, ok := b.inWindow(seq)
	if !ok {
		return
	}
	p := b.phys(off)
	w, bit := p>>6, uint(p&63)
	if b.words[w]&(1<<bit) != 0 {
		b.words[w] &^= 1 << bit
		b.count--
	}
}

// Advance moves the window start forward by n sequence numbers, clearing
// the bits that fall out of the window. This is the "bit shift to advance
// the bitmap head" operation of §6.2.1.
func (b *Bitmap) Advance(n int) {
	if n < 0 {
		panic("bitmap: negative advance")
	}
	if n >= b.size {
		for i := range b.words {
			b.words[i] = 0
		}
		b.count = 0
		b.head = 0
		b.base += uint32(n)
		return
	}
	// Clear [0, n) logical, word by word.
	cleared := 0
	for cleared < n {
		p := b.phys(cleared)
		w, bit := p>>6, uint(p&63)
		// Clear from bit to min(63, bit + remaining - 1) in this word.
		span := 64 - int(bit)
		if rem := n - cleared; span > rem {
			span = rem
		}
		var m uint64
		if span == 64 {
			m = ^uint64(0)
		} else {
			m = ((uint64(1) << uint(span)) - 1) << bit
		}
		b.count -= bits.OnesCount64(b.words[w] & m)
		b.words[w] &^= m
		cleared += span
	}
	b.head = (b.head + n) & b.mask
	b.base += uint32(n)
}

// AdvanceTo moves the window start to sequence number seq. seq must not be
// behind the current base.
func (b *Bitmap) AdvanceTo(seq uint32) {
	d := int(int32(seq - b.base))
	if d < 0 {
		panic("bitmap: AdvanceTo behind base")
	}
	if d > 0 {
		b.Advance(d)
	}
}

// LeadingOnes returns the number of consecutive set bits starting at the
// window base. For a receiver bitmap this is how far the cumulative
// acknowledgement can advance; it is the find-first-zero of §6.2.1.
func (b *Bitmap) LeadingOnes() int {
	return b.NextZero(0)
}

// NextZero returns the logical offset (>= from) of the first clear bit, or
// Cap() if every bit from from onward is set.
func (b *Bitmap) NextZero(from int) int {
	for off := from; off < b.size; {
		p := b.phys(off)
		w, bit := p>>6, uint(p&63)
		// Invert and mask off bits below 'bit'; any set bit marks a zero.
		inv := ^b.words[w] >> bit
		span := 64 - int(bit)
		if avail := b.size - off; span > avail {
			span = avail
			if span < 64 {
				inv &= (uint64(1) << uint(span)) - 1
			}
		}
		if inv != 0 {
			z := bits.TrailingZeros64(inv)
			if z < span {
				return off + z
			}
		}
		off += span
	}
	return b.size
}

// NextOne returns the logical offset (>= from) of the first set bit, or
// Cap() if no bit from from onward is set. The sender's transmission logic
// uses this to look ahead in the SACK bitmap for the next packet to
// retransmit (§6.2.1 txFree).
func (b *Bitmap) NextOne(from int) int {
	for off := from; off < b.size; {
		p := b.phys(off)
		w, bit := p>>6, uint(p&63)
		v := b.words[w] >> bit
		span := 64 - int(bit)
		if avail := b.size - off; span > avail {
			span = avail
			if span < 64 {
				v &= (uint64(1) << uint(span)) - 1
			}
		}
		if v != 0 {
			z := bits.TrailingZeros64(v)
			if z < span {
				return off + z
			}
		}
		off += span
	}
	return b.size
}

// CountRange returns the number of set bits with logical offsets in
// [from, to). This is the popcount operation of §6.2.1 (MSN increments,
// Receive WQE expiry counts).
func (b *Bitmap) CountRange(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > b.size {
		to = b.size
	}
	n := 0
	for off := from; off < to; {
		p := b.phys(off)
		w, bit := p>>6, uint(p&63)
		v := b.words[w] >> bit
		span := 64 - int(bit)
		if rem := to - off; span > rem {
			span = rem
			if span < 64 {
				v &= (uint64(1) << uint(span)) - 1
			}
		}
		n += bits.OnesCount64(v)
		off += span
	}
	return n
}

// Reset clears all bits and moves the base to seq.
func (b *Bitmap) Reset(seq uint32) {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
	b.head = 0
	b.base = seq
}

// String renders the window as a bit string for debugging (LSB = base).
func (b *Bitmap) String() string {
	buf := make([]byte, 0, b.size+16)
	buf = append(buf, fmt.Sprintf("[%d+", b.base)...)
	for i := 0; i < b.size; i++ {
		p := b.phys(i)
		if b.words[p>>6]&(1<<uint(p&63)) != 0 {
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
	}
	buf = append(buf, ']')
	return string(buf)
}
