package bitmap

import (
	"testing"
	"testing/quick"

	"github.com/irnsim/irn/internal/sim"
)

// refModel is a trivial map-based reference implementation the ring bitmap
// is checked against under random operation sequences.
type refModel struct {
	set  map[uint32]bool
	base uint32
	size int
}

func newRef(size int) *refModel {
	return &refModel{set: make(map[uint32]bool), size: size}
}

func (m *refModel) Set(seq uint32) bool {
	off := int(int32(seq - m.base))
	if off < 0 || off >= m.size {
		return false
	}
	if m.set[seq] {
		return false
	}
	m.set[seq] = true
	return true
}

func (m *refModel) Advance(n int) {
	for i := 0; i < n; i++ {
		delete(m.set, m.base+uint32(i))
	}
	m.base += uint32(n)
}

func (m *refModel) LeadingOnes() int {
	n := 0
	for m.set[m.base+uint32(n)] {
		n++
		if n == m.size {
			break
		}
	}
	return n
}

func (m *refModel) Count() int { return len(m.set) }

func (m *refModel) NextOne(from int) int {
	for off := from; off < m.size; off++ {
		if m.set[m.base+uint32(off)] {
			return off
		}
	}
	return m.size
}

func TestBitmapAgainstModelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		const size = 128
		b := New(size)
		m := newRef(b.Cap())
		for step := 0; step < 2000; step++ {
			switch r.Intn(4) {
			case 0, 1: // set a random bit in the window
				seq := b.Base() + uint32(r.Intn(b.Cap()))
				fresh, err := b.Set(seq)
				if err != nil {
					t.Fatalf("unexpected Set error: %v", err)
				}
				if fresh != m.Set(seq) {
					t.Fatalf("Set(%d) freshness mismatch", seq)
				}
			case 2: // advance by a random amount
				n := r.Intn(20)
				b.Advance(n)
				m.Advance(n)
			case 3: // cross-check queries
				if b.Count() != m.Count() {
					t.Fatalf("Count: %d vs %d", b.Count(), m.Count())
				}
				if b.LeadingOnes() != m.LeadingOnes() {
					t.Fatalf("LeadingOnes: %d vs %d (%s)", b.LeadingOnes(), m.LeadingOnes(), b)
				}
				from := r.Intn(b.Cap())
				if b.NextOne(from) != m.NextOne(from) {
					t.Fatalf("NextOne(%d): %d vs %d", from, b.NextOne(from), m.NextOne(from))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTwoBitmapConservationProperty(t *testing.T) {
	// Property: for any arrival order of a set of messages, the total
	// packets and messages reported by AdvanceCumulative equal the totals
	// delivered, and completion never happens before full arrival.
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		tb := NewTwo(256)
		// Build messages covering seq [0, total).
		type msg struct{ start, n int }
		var msgs []msg
		total := 0
		for total < 200 {
			n := 1 + r.Intn(8)
			msgs = append(msgs, msg{total, n})
			total += n
		}
		order := r.Perm(total)
		lastOf := make(map[int]bool)
		for _, m := range msgs {
			lastOf[m.start+m.n-1] = true
		}
		gotPkts, gotMsgs := 0, 0
		for _, seq := range order {
			fresh, err := tb.MarkArrived(uint32(seq), lastOf[seq])
			if err != nil || !fresh {
				// Out-of-window arrivals can happen because the window is
				// 256 and total <= 207, so errors indicate a real bug.
				t.Fatalf("MarkArrived(%d): fresh=%v err=%v", seq, fresh, err)
			}
			p, m := tb.AdvanceCumulative()
			gotPkts += p
			gotMsgs += m
		}
		return gotPkts == total && gotMsgs == len(msgs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
