package bitmap

import (
	"strings"
	"testing"
)

func TestNewRoundsUp(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 64}, {63, 64}, {64, 64}, {65, 128}, {110, 128}, {1000, 1024},
	} {
		if got := New(c.in).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(0)
}

func TestSetGetClear(t *testing.T) {
	b := New(128)
	if b.Get(5) {
		t.Fatal("bit 5 should start clear")
	}
	fresh, err := b.Set(5)
	if err != nil || !fresh {
		t.Fatalf("Set(5) = %v, %v", fresh, err)
	}
	fresh, err = b.Set(5)
	if err != nil || fresh {
		t.Fatalf("second Set(5) = %v, %v; want false, nil", fresh, err)
	}
	if !b.Get(5) || b.Count() != 1 {
		t.Fatalf("Get(5)=%v Count=%d", b.Get(5), b.Count())
	}
	b.Clear(5)
	if b.Get(5) || b.Count() != 0 {
		t.Fatal("Clear failed")
	}
	b.Clear(5) // double clear is a no-op
	if b.Count() != 0 {
		t.Fatal("double clear corrupted count")
	}
}

func TestSetOutsideWindow(t *testing.T) {
	b := New(128)
	if _, err := b.Set(128); err == nil {
		t.Error("Set beyond window should error")
	}
	b.AdvanceTo(10)
	if _, err := b.Set(9); err == nil {
		t.Error("Set behind base should error")
	}
	if b.Get(9) {
		t.Error("Get behind base should be false")
	}
	if _, err := b.Set(10 + 127); err != nil {
		t.Errorf("Set at window end: %v", err)
	}
}

func TestAdvanceClearsAndShifts(t *testing.T) {
	b := New(128)
	for _, s := range []uint32{0, 1, 2, 5, 100} {
		if _, err := b.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	b.Advance(3)
	if b.Base() != 3 {
		t.Fatalf("base = %d", b.Base())
	}
	if b.Get(0) || b.Get(1) || b.Get(2) {
		t.Error("advanced-past bits must read clear")
	}
	if !b.Get(5) || !b.Get(100) {
		t.Error("remaining bits lost")
	}
	if b.Count() != 2 {
		t.Errorf("count = %d, want 2", b.Count())
	}
	// The freed window tail must be clear and settable.
	if _, err := b.Set(3 + 127); err != nil {
		t.Errorf("tail bit: %v", err)
	}
}

func TestAdvanceFullWindow(t *testing.T) {
	b := New(64)
	for i := uint32(0); i < 64; i++ {
		b.Set(i)
	}
	b.Advance(200)
	if b.Count() != 0 || b.Base() != 200 {
		t.Fatalf("count=%d base=%d", b.Count(), b.Base())
	}
	if b.Get(200) {
		t.Error("fresh window should be clear")
	}
}

func TestAdvanceToPanicsBackwards(t *testing.T) {
	b := New(64)
	b.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b.AdvanceTo(5)
}

func TestLeadingOnes(t *testing.T) {
	b := New(128)
	if b.LeadingOnes() != 0 {
		t.Fatal("empty bitmap should have 0 leading ones")
	}
	b.Set(0)
	b.Set(1)
	b.Set(3)
	if got := b.LeadingOnes(); got != 2 {
		t.Errorf("LeadingOnes = %d, want 2", got)
	}
	b.Set(2)
	if got := b.LeadingOnes(); got != 4 {
		t.Errorf("LeadingOnes = %d, want 4", got)
	}
}

func TestLeadingOnesFullWindow(t *testing.T) {
	b := New(64)
	for i := uint32(0); i < 64; i++ {
		b.Set(i)
	}
	if got := b.LeadingOnes(); got != 64 {
		t.Errorf("LeadingOnes = %d, want 64", got)
	}
}

func TestNextZeroNextOne(t *testing.T) {
	b := New(128)
	b.Set(0)
	b.Set(1)
	b.Set(5)
	b.Set(64)
	b.Set(65)
	if got := b.NextZero(0); got != 2 {
		t.Errorf("NextZero(0) = %d, want 2", got)
	}
	if got := b.NextZero(5); got != 6 {
		t.Errorf("NextZero(5) = %d, want 6", got)
	}
	if got := b.NextOne(2); got != 5 {
		t.Errorf("NextOne(2) = %d, want 5", got)
	}
	if got := b.NextOne(6); got != 64 {
		t.Errorf("NextOne(6) = %d, want 64", got)
	}
	if got := b.NextOne(66); got != b.Cap() {
		t.Errorf("NextOne(66) = %d, want Cap", got)
	}
}

func TestNextZeroAllSet(t *testing.T) {
	b := New(64)
	for i := uint32(0); i < 64; i++ {
		b.Set(i)
	}
	if got := b.NextZero(0); got != 64 {
		t.Errorf("NextZero = %d, want 64", got)
	}
}

func TestWrapAroundBehaviour(t *testing.T) {
	// Exercise the ring: advance until the head wraps the word boundary
	// and the physical layout no longer matches the logical one.
	b := New(64)
	for round := 0; round < 10; round++ {
		base := b.Base()
		// Set a pattern relative to the new base.
		b.Set(base + 1)
		b.Set(base + 3)
		b.Set(base + 63)
		if b.LeadingOnes() != 0 {
			t.Fatalf("round %d: leading ones != 0", round)
		}
		if got := b.NextOne(0); got != 1 {
			t.Fatalf("round %d: NextOne = %d", round, got)
		}
		if got := b.CountRange(0, 64); got != 3 {
			t.Fatalf("round %d: CountRange = %d", round, got)
		}
		b.Advance(37) // not a divisor of 64 → head walks every alignment
		// After advancing 37, bits 1 and 3 fall out; bit 63 is at 26.
		if !b.Get(base + 63) {
			t.Fatalf("round %d: bit lost across advance", round)
		}
		b.Clear(base + 63)
	}
}

func TestCountRange(t *testing.T) {
	b := New(128)
	for i := uint32(0); i < 128; i += 2 {
		b.Set(i)
	}
	if got := b.CountRange(0, 128); got != 64 {
		t.Errorf("CountRange full = %d, want 64", got)
	}
	if got := b.CountRange(0, 10); got != 5 {
		t.Errorf("CountRange(0,10) = %d, want 5", got)
	}
	if got := b.CountRange(1, 2); got != 0 {
		t.Errorf("CountRange(1,2) = %d, want 0", got)
	}
	if got := b.CountRange(-5, 500); got != 64 {
		t.Errorf("CountRange clamped = %d, want 64", got)
	}
}

func TestReset(t *testing.T) {
	b := New(64)
	b.Set(0)
	b.Set(5)
	b.Advance(3)
	b.Reset(1000)
	if b.Base() != 1000 || b.Count() != 0 {
		t.Fatalf("base=%d count=%d", b.Base(), b.Count())
	}
	if b.Get(1000) {
		t.Error("reset bitmap should be clear")
	}
}

func TestString(t *testing.T) {
	b := New(64)
	b.Set(1)
	s := b.String()
	if !strings.HasPrefix(s, "[0+01") {
		t.Errorf("String = %q", s)
	}
}

func TestTwoBitmapMessageCompletion(t *testing.T) {
	tb := NewTwo(128)
	// Message A = packets 0..2 (2 is last), message B = packet 3 (last).
	// Arrive out of order: 3, 2, 1, then 0.
	for _, s := range []struct {
		seq  uint32
		last bool
	}{{3, true}, {2, true}, {1, false}} {
		fresh, err := tb.MarkArrived(s.seq, s.last)
		if err != nil || !fresh {
			t.Fatalf("MarkArrived(%d): %v %v", s.seq, fresh, err)
		}
	}
	if pkts, msgs := tb.AdvanceCumulative(); pkts != 0 || msgs != 0 {
		t.Fatalf("premature advance: %d pkts %d msgs", pkts, msgs)
	}
	if _, err := tb.MarkArrived(0, false); err != nil {
		t.Fatal(err)
	}
	pkts, msgs := tb.AdvanceCumulative()
	if pkts != 4 || msgs != 2 {
		t.Fatalf("AdvanceCumulative = %d pkts, %d msgs; want 4, 2", pkts, msgs)
	}
	if tb.Base() != 4 {
		t.Errorf("base = %d, want 4", tb.Base())
	}
}

func TestTwoBitmapDuplicateArrival(t *testing.T) {
	tb := NewTwo(64)
	if fresh, _ := tb.MarkArrived(0, true); !fresh {
		t.Fatal("first arrival should be fresh")
	}
	if fresh, _ := tb.MarkArrived(0, true); fresh {
		t.Fatal("duplicate arrival should not be fresh")
	}
	if !tb.Arrived(0) || !tb.IsLast(0) {
		t.Error("flags lost")
	}
	pkts, msgs := tb.AdvanceCumulative()
	if pkts != 1 || msgs != 1 {
		t.Errorf("advance = %d, %d", pkts, msgs)
	}
}

func TestTwoBitmapOutOfWindow(t *testing.T) {
	tb := NewTwo(64)
	if _, err := tb.MarkArrived(64, false); err == nil {
		t.Error("expected window error")
	}
	tb.Reset(500)
	if tb.Base() != 500 {
		t.Errorf("base = %d", tb.Base())
	}
	if _, err := tb.MarkArrived(500, true); err != nil {
		t.Error(err)
	}
}
