package topo

import (
	"fmt"

	"github.com/irnsim/irn/internal/packet"
)

// Star is N hosts attached to a single switch — the minimal fabric for
// incast unit tests and transport development.
type Star struct {
	N int
}

// NewStar returns a star topology with n hosts (IDs 0..n-1) and one
// switch (ID n).
func NewStar(n int) *Star {
	if n < 2 {
		panic("topo: star needs at least 2 hosts")
	}
	return &Star{N: n}
}

// Hosts implements Topology.
func (s *Star) Hosts() int { return s.N }

func (s *Star) swID() packet.NodeID { return packet.NodeID(s.N) }

// Nodes implements Topology.
func (s *Star) Nodes() []Node {
	nodes := make([]Node, 0, s.N+1)
	for h := 0; h < s.N; h++ {
		nodes = append(nodes, Node{ID: packet.NodeID(h), Kind: Host, Pod: 0, Idx: h})
	}
	nodes = append(nodes, Node{ID: s.swID(), Kind: EdgeSwitch, Pod: 0, Idx: 0})
	return nodes
}

// Links implements Topology.
func (s *Star) Links() []Link {
	links := make([]Link, 0, s.N)
	for h := 0; h < s.N; h++ {
		links = append(links, Link{A: packet.NodeID(h), B: s.swID()})
	}
	return links
}

// NextHops implements Topology.
func (s *Star) NextHops(from, dst packet.NodeID) []packet.NodeID {
	if from == s.swID() {
		return []packet.NodeID{dst}
	}
	return []packet.NodeID{s.swID()}
}

// LongestPathHops implements Topology.
func (s *Star) LongestPathHops() int { return 2 }

// PathHops implements Topology.
func (s *Star) PathHops(src, dst packet.NodeID) int {
	if src == dst {
		return 0
	}
	return 2
}

var _ Topology = (*Star)(nil)

// Dumbbell is two switches joined by one (bottleneck) link, with half the
// hosts on each side. It produces the classic shared-bottleneck scenarios
// used in PFC head-of-line-blocking unit tests.
type Dumbbell struct {
	PerSide int
}

// NewDumbbell returns a dumbbell with n hosts on each side. Host IDs
// [0, n) sit on the left switch (ID 2n), hosts [n, 2n) on the right
// (ID 2n+1).
func NewDumbbell(n int) *Dumbbell {
	if n < 1 {
		panic("topo: dumbbell needs at least 1 host per side")
	}
	return &Dumbbell{PerSide: n}
}

// Hosts implements Topology.
func (d *Dumbbell) Hosts() int { return 2 * d.PerSide }

func (d *Dumbbell) left() packet.NodeID  { return packet.NodeID(2 * d.PerSide) }
func (d *Dumbbell) right() packet.NodeID { return packet.NodeID(2*d.PerSide + 1) }

// Nodes implements Topology.
func (d *Dumbbell) Nodes() []Node {
	nodes := make([]Node, 0, 2*d.PerSide+2)
	for h := 0; h < 2*d.PerSide; h++ {
		nodes = append(nodes, Node{ID: packet.NodeID(h), Kind: Host, Pod: h / d.PerSide, Idx: h})
	}
	nodes = append(nodes,
		Node{ID: d.left(), Kind: EdgeSwitch, Pod: 0, Idx: 0},
		Node{ID: d.right(), Kind: EdgeSwitch, Pod: 1, Idx: 1},
	)
	return nodes
}

// Links implements Topology.
func (d *Dumbbell) Links() []Link {
	links := make([]Link, 0, 2*d.PerSide+1)
	for h := 0; h < d.PerSide; h++ {
		links = append(links, Link{A: packet.NodeID(h), B: d.left()})
	}
	for h := d.PerSide; h < 2*d.PerSide; h++ {
		links = append(links, Link{A: packet.NodeID(h), B: d.right()})
	}
	links = append(links, Link{A: d.left(), B: d.right()})
	return links
}

// NextHops implements Topology.
func (d *Dumbbell) NextHops(from, dst packet.NodeID) []packet.NodeID {
	dstLeft := int(dst) < d.PerSide
	switch from {
	case d.left():
		if dstLeft {
			return []packet.NodeID{dst}
		}
		return []packet.NodeID{d.right()}
	case d.right():
		if dstLeft {
			return []packet.NodeID{d.left()}
		}
		return []packet.NodeID{dst}
	default:
		if int(from) < d.PerSide {
			return []packet.NodeID{d.left()}
		}
		return []packet.NodeID{d.right()}
	}
}

// LongestPathHops implements Topology.
func (d *Dumbbell) LongestPathHops() int { return 3 }

// PathHops implements Topology.
func (d *Dumbbell) PathHops(src, dst packet.NodeID) int {
	if src == dst {
		return 0
	}
	if (int(src) < d.PerSide) == (int(dst) < d.PerSide) {
		return 2
	}
	return 3
}

var _ Topology = (*Dumbbell)(nil)

// Validate sanity-checks a topology: every host reaches every other host
// by following NextHops, within a bounded hop count. It returns an error
// describing the first routing loop or dead end found. Tests use it for
// every topology size the experiments touch.
func Validate(t Topology) error {
	hosts := t.Hosts()
	maxHops := t.LongestPathHops() + 2
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if src == dst {
				continue
			}
			cur := packet.NodeID(src)
			for hop := 0; ; hop++ {
				if cur == packet.NodeID(dst) {
					break
				}
				if hop > maxHops {
					return fmt.Errorf("topo: no route %d→%d within %d hops", src, dst, maxHops)
				}
				hops := t.NextHops(cur, packet.NodeID(dst))
				if len(hops) == 0 {
					return fmt.Errorf("topo: dead end at %d for %d→%d", cur, src, dst)
				}
				// Always take the first choice: if any single consistent
				// choice loops, ECMP would loop too.
				cur = hops[0]
			}
		}
	}
	return nil
}
