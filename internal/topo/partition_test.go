package topo

import "testing"

// TestFatTreePartitionPodsIntact: every node of a pod shares its pod's
// shard — the invariant that keeps host↔edge and edge↔agg links interior,
// leaving only agg↔core links as shard boundaries.
func TestFatTreePartitionPodsIntact(t *testing.T) {
	for _, k := range []int{4, 6, 10} {
		for _, shards := range []int{2, 3, 4, 8} {
			tr := NewFatTree(k)
			assign, used := PartitionNodes(tr, shards)
			if used < 1 || used > min(shards, k) {
				t.Fatalf("k=%d shards=%d: used %d shards", k, shards, used)
			}
			podShard := map[int]int{}
			for _, n := range tr.Nodes() {
				if n.Pod < 0 {
					continue // core
				}
				if prev, ok := podShard[n.Pod]; ok && prev != assign[n.ID] {
					t.Fatalf("k=%d shards=%d: pod %d split across shards %d and %d",
						k, shards, n.Pod, prev, assign[n.ID])
				}
				podShard[n.Pod] = assign[n.ID]
			}
			// Only agg↔core links may cross shards.
			for _, l := range tr.Links() {
				if assign[l.A] == assign[l.B] {
					continue
				}
				ka := tr.Nodes()[l.A].Kind
				kb := tr.Nodes()[l.B].Kind
				aggCore := (ka == AggSwitch && kb == CoreSwitch) || (ka == CoreSwitch && kb == AggSwitch)
				if !aggCore {
					t.Fatalf("k=%d shards=%d: boundary link %v(%v)–%v(%v) is not agg↔core",
						k, shards, l.A, ka, l.B, kb)
				}
			}
		}
	}
}

// TestFatTreePartitionBalance: pod counts per shard differ by at most
// one (round-robin deal), and shard indexes are dense.
func TestFatTreePartitionBalance(t *testing.T) {
	tr := NewFatTree(10)
	assign, used := PartitionNodes(tr, 4)
	if used != 4 {
		t.Fatalf("used %d shards, want 4", used)
	}
	pods := make(map[int]map[int]bool) // shard → pods
	for _, n := range tr.Nodes() {
		if n.Kind != EdgeSwitch {
			continue
		}
		if pods[assign[n.ID]] == nil {
			pods[assign[n.ID]] = map[int]bool{}
		}
		pods[assign[n.ID]][n.Pod] = true
	}
	lo, hi := 1<<30, 0
	for s := 0; s < used; s++ {
		n := len(pods[s])
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi-lo > 1 {
		t.Fatalf("pod balance off: shard pod counts span %d..%d", lo, hi)
	}
}

// TestPartitionFallbacks: one shard and non-partitionable topologies run
// single-shard.
func TestPartitionFallbacks(t *testing.T) {
	tr := NewFatTree(4)
	if _, used := PartitionNodes(tr, 1); used != 1 {
		t.Fatal("one-shard request must use one shard")
	}
	star := NewStar(4)
	assign, used := PartitionNodes(star, 8)
	if used != 1 {
		t.Fatalf("star partitioned into %d shards; it has no Partitioner", used)
	}
	for _, s := range assign {
		if s != 0 {
			t.Fatal("fallback assignment must be all-zero")
		}
	}
}
