// Package topo builds the network topologies used by the evaluation: the
// paper's three-tier fat-trees (k=6 → 54 hosts, k=8 → 128, k=10 → 250),
// plus small star and dumbbell fabrics for unit tests and examples.
//
// A topology is a set of nodes (hosts and switches), a set of full-duplex
// links, and a next-hop relation. The fat-tree next-hop relation returns
// every equal-cost choice; the fabric layer picks one per flow via ECMP
// hashing (§4.1: "We use ECMP for load-balancing").
package topo

import (
	"fmt"

	"github.com/irnsim/irn/internal/packet"
)

// Kind classifies a node.
type Kind uint8

// Node kinds.
const (
	Host Kind = iota
	EdgeSwitch
	AggSwitch
	CoreSwitch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case EdgeSwitch:
		return "edge"
	case AggSwitch:
		return "agg"
	case CoreSwitch:
		return "core"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node describes one topology node.
type Node struct {
	ID   packet.NodeID
	Kind Kind
	Pod  int // pod number for edge/agg switches and hosts; -1 for core
	Idx  int // index within its tier (and pod, where applicable)
}

// Link is a full-duplex link between two nodes. The fabric instantiates
// one unidirectional queue per direction.
type Link struct {
	A, B packet.NodeID
}

// Topology is the contract the fabric builds a network from.
type Topology interface {
	// Hosts returns the number of hosts; hosts occupy IDs [0, Hosts).
	Hosts() int
	// Nodes lists every node, hosts first.
	Nodes() []Node
	// Links lists every full-duplex link exactly once.
	Links() []Link
	// NextHops returns the equal-cost neighbor choices at node from for
	// traffic destined to host dst. Panics if from is a host other than
	// dst's attachment path start (hosts have exactly one uplink).
	NextHops(from, dst packet.NodeID) []packet.NodeID
	// LongestPathHops returns the maximum number of links on any
	// host-to-host shortest path (6 for a three-tier fat-tree).
	LongestPathHops() int
	// PathHops returns the number of links on the shortest path between
	// two hosts.
	PathHops(src, dst packet.NodeID) int
}

// FatTree is a standard k-ary three-tier fat-tree: k pods each containing
// k/2 edge and k/2 aggregation switches, (k/2)² core switches, k³/4 hosts,
// and full bisection bandwidth. k must be even and ≥ 2.
//
// Node ID layout: hosts [0, k³/4), then edge switches, aggregation
// switches, and core switches.
type FatTree struct {
	K     int
	nodes []Node
	links []Link
}

// NewFatTree constructs the fat-tree. The paper's default scenario uses
// k=6: "a 54-server three-tiered fat-tree topology, connected by a fabric
// with full bisection-bandwidth constructed from 45 6-port switches
// organized into 6 pods."
func NewFatTree(k int) *FatTree {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity %d must be even and >= 2", k))
	}
	t := &FatTree{K: k}
	half := k / 2
	hosts := k * k * k / 4
	edges := k * half
	aggs := k * half
	cores := half * half

	// Hosts.
	for h := 0; h < hosts; h++ {
		pod := h / (half * half)
		t.nodes = append(t.nodes, Node{ID: packet.NodeID(h), Kind: Host, Pod: pod, Idx: h})
	}
	// Edge switches.
	for e := 0; e < edges; e++ {
		t.nodes = append(t.nodes, Node{ID: t.edgeID(e/half, e%half), Kind: EdgeSwitch, Pod: e / half, Idx: e % half})
	}
	// Aggregation switches.
	for a := 0; a < aggs; a++ {
		t.nodes = append(t.nodes, Node{ID: t.aggID(a/half, a%half), Kind: AggSwitch, Pod: a / half, Idx: a % half})
	}
	// Core switches.
	for c := 0; c < cores; c++ {
		t.nodes = append(t.nodes, Node{ID: t.coreID(c), Kind: CoreSwitch, Pod: -1, Idx: c})
	}

	// Host ↔ edge links.
	for h := 0; h < hosts; h++ {
		pod := h / (half * half)
		e := (h / half) % half
		t.links = append(t.links, Link{A: packet.NodeID(h), B: t.edgeID(pod, e)})
	}
	// Edge ↔ agg links (full mesh within a pod).
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				t.links = append(t.links, Link{A: t.edgeID(pod, e), B: t.aggID(pod, a)})
			}
		}
	}
	// Agg ↔ core links: agg switch with in-pod index a connects to core
	// switches [a*half, (a+1)*half).
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				t.links = append(t.links, Link{A: t.aggID(pod, a), B: t.coreID(a*half + i)})
			}
		}
	}
	return t
}

func (t *FatTree) half() int  { return t.K / 2 }
func (t *FatTree) hosts() int { return t.K * t.K * t.K / 4 }

func (t *FatTree) edgeID(pod, idx int) packet.NodeID {
	return packet.NodeID(t.hosts() + pod*t.half() + idx)
}

func (t *FatTree) aggID(pod, idx int) packet.NodeID {
	return packet.NodeID(t.hosts() + t.K*t.half() + pod*t.half() + idx)
}

func (t *FatTree) coreID(idx int) packet.NodeID {
	return packet.NodeID(t.hosts() + 2*t.K*t.half() + idx)
}

// hostPod returns the pod a host belongs to.
func (t *FatTree) hostPod(h packet.NodeID) int { return int(h) / (t.half() * t.half()) }

// hostEdge returns the in-pod edge switch index a host attaches to.
func (t *FatTree) hostEdge(h packet.NodeID) int { return (int(h) / t.half()) % t.half() }

// Hosts implements Topology.
func (t *FatTree) Hosts() int { return t.hosts() }

// Nodes implements Topology.
func (t *FatTree) Nodes() []Node { return t.nodes }

// Links implements Topology.
func (t *FatTree) Links() []Link { return t.links }

// FatTreeLongestPathHops is the longest host-to-host shortest path in any
// three-tier fat-tree (host-edge-agg-core-agg-edge-host), independent of
// arity. Exported so BDP arithmetic can run before a topology is built —
// the experiment worker sizes buffers (part of the fabric cache key)
// without constructing the fat-tree it may be about to reuse.
const FatTreeLongestPathHops = 6

// LongestPathHops implements Topology.
func (t *FatTree) LongestPathHops() int { return FatTreeLongestPathHops }

// PathHops implements Topology.
func (t *FatTree) PathHops(src, dst packet.NodeID) int {
	if src == dst {
		return 0
	}
	if t.hostPod(src) == t.hostPod(dst) {
		if t.hostEdge(src) == t.hostEdge(dst) {
			return 2 // host-edge-host
		}
		return 4 // host-edge-agg-edge-host
	}
	return 6
}

// NextHops implements Topology. The relation is computed arithmetically —
// fat-trees are regular, so no routing tables are needed.
func (t *FatTree) NextHops(from, dst packet.NodeID) []packet.NodeID {
	hosts := packet.NodeID(t.hosts())
	half := t.half()
	dstPod := t.hostPod(dst)
	dstEdge := t.hostEdge(dst)

	switch {
	case from < hosts:
		// Host: single uplink.
		return []packet.NodeID{t.edgeID(t.hostPod(from), t.hostEdge(from))}

	case from < hosts+packet.NodeID(t.K*half):
		// Edge switch.
		e := int(from - hosts)
		pod, idx := e/half, e%half
		if pod == dstPod && idx == dstEdge {
			return []packet.NodeID{dst} // directly attached
		}
		ups := make([]packet.NodeID, half)
		for a := 0; a < half; a++ {
			ups[a] = t.aggID(pod, a)
		}
		return ups

	case from < hosts+packet.NodeID(2*t.K*half):
		// Aggregation switch.
		a := int(from-hosts) - t.K*half
		pod, idx := a/half, a%half
		if pod == dstPod {
			return []packet.NodeID{t.edgeID(pod, dstEdge)}
		}
		ups := make([]packet.NodeID, half)
		for i := 0; i < half; i++ {
			ups[i] = t.coreID(idx*half + i)
		}
		return ups

	default:
		// Core switch c connects to agg with in-pod index c/half in
		// every pod.
		c := int(from-hosts) - 2*t.K*half
		return []packet.NodeID{t.aggID(dstPod, c/half)}
	}
}

var _ Topology = (*FatTree)(nil)
