package topo

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
)

func TestFatTreeCountsMatchPaper(t *testing.T) {
	// §4.1: 54 servers, 45 6-port switches, 6 pods.
	cases := []struct{ k, hosts, switches int }{
		{6, 54, 45},
		{8, 128, 80},
		{10, 250, 125},
	}
	for _, c := range cases {
		ft := NewFatTree(c.k)
		if ft.Hosts() != c.hosts {
			t.Errorf("k=%d hosts = %d, want %d", c.k, ft.Hosts(), c.hosts)
		}
		switches := 0
		for _, n := range ft.Nodes() {
			if n.Kind != Host {
				switches++
			}
		}
		if switches != c.switches {
			t.Errorf("k=%d switches = %d, want %d", c.k, switches, c.switches)
		}
	}
}

func TestFatTreePortCounts(t *testing.T) {
	// Every switch in a k-ary fat-tree has exactly k ports.
	for _, k := range []int{4, 6} {
		ft := NewFatTree(k)
		degree := make(map[packet.NodeID]int)
		for _, l := range ft.Links() {
			degree[l.A]++
			degree[l.B]++
		}
		for _, n := range ft.Nodes() {
			want := k
			if n.Kind == Host {
				want = 1
			}
			if degree[n.ID] != want {
				t.Errorf("k=%d node %d (%v) degree = %d, want %d", k, n.ID, n.Kind, degree[n.ID], want)
			}
		}
	}
}

func TestFatTreeLinkCount(t *testing.T) {
	// Host links k³/4, edge-agg links k·(k/2)², agg-core links k·(k/2)².
	for _, k := range []int{4, 6, 8} {
		ft := NewFatTree(k)
		want := k*k*k/4 + 2*k*(k/2)*(k/2)
		if got := len(ft.Links()); got != want {
			t.Errorf("k=%d links = %d, want %d", k, got, want)
		}
	}
}

func TestFatTreeRoutesValidate(t *testing.T) {
	for _, k := range []int{4, 6} {
		if err := Validate(NewFatTree(k)); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestFatTreeECMPFanout(t *testing.T) {
	ft := NewFatTree(6)
	// Cross-pod traffic from a host's edge switch should offer k/2
	// aggregation choices; from an agg switch, k/2 core choices.
	src, dst := packet.NodeID(0), packet.NodeID(53) // pods 0 and 5
	edge := ft.NextHops(src, dst)
	if len(edge) != 1 {
		t.Fatalf("host fanout = %d, want 1", len(edge))
	}
	aggs := ft.NextHops(edge[0], dst)
	if len(aggs) != 3 {
		t.Errorf("edge fanout = %d, want 3", len(aggs))
	}
	cores := ft.NextHops(aggs[0], dst)
	if len(cores) != 3 {
		t.Errorf("agg fanout = %d, want 3", len(cores))
	}
	// Core switches have exactly one way down.
	down := ft.NextHops(cores[0], dst)
	if len(down) != 1 {
		t.Errorf("core fanout = %d, want 1", len(down))
	}
}

func TestFatTreePathHops(t *testing.T) {
	ft := NewFatTree(6)
	cases := []struct {
		src, dst packet.NodeID
		want     int
	}{
		{0, 0, 0},
		{0, 1, 2},   // same edge switch (hosts 0..2 share edge 0 of pod 0)
		{0, 3, 4},   // same pod, different edge
		{0, 53, 6},  // cross-pod
		{10, 45, 6}, // cross-pod
	}
	for _, c := range cases {
		if got := ft.PathHops(c.src, c.dst); got != c.want {
			t.Errorf("PathHops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	if ft.LongestPathHops() != 6 {
		t.Errorf("LongestPathHops = %d", ft.LongestPathHops())
	}
}

func TestFatTreeRouteHopCountMatchesPathHops(t *testing.T) {
	ft := NewFatTree(6)
	pairs := [][2]packet.NodeID{{0, 1}, {0, 3}, {0, 53}, {20, 40}}
	for _, p := range pairs {
		cur := p[0]
		hops := 0
		for cur != p[1] {
			cur = ft.NextHops(cur, p[1])[0]
			hops++
			if hops > 10 {
				t.Fatalf("route %v loops", p)
			}
		}
		if want := ft.PathHops(p[0], p[1]); hops != want {
			t.Errorf("route %v took %d hops, PathHops says %d", p, hops, want)
		}
	}
}

func TestFatTreePanicsOnBadArity(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			NewFatTree(k)
		}()
	}
}

func TestStar(t *testing.T) {
	s := NewStar(5)
	if s.Hosts() != 5 {
		t.Fatalf("hosts = %d", s.Hosts())
	}
	if len(s.Nodes()) != 6 || len(s.Links()) != 5 {
		t.Fatalf("nodes=%d links=%d", len(s.Nodes()), len(s.Links()))
	}
	if err := Validate(s); err != nil {
		t.Error(err)
	}
	if s.PathHops(0, 1) != 2 || s.PathHops(2, 2) != 0 {
		t.Error("PathHops wrong")
	}
}

func TestDumbbell(t *testing.T) {
	d := NewDumbbell(3)
	if d.Hosts() != 6 {
		t.Fatalf("hosts = %d", d.Hosts())
	}
	if err := Validate(d); err != nil {
		t.Error(err)
	}
	if d.PathHops(0, 1) != 2 {
		t.Error("same-side hops")
	}
	if d.PathHops(0, 5) != 3 {
		t.Error("cross hops")
	}
	if d.LongestPathHops() != 3 {
		t.Error("longest")
	}
}

func TestKindString(t *testing.T) {
	if Host.String() != "host" || CoreSwitch.String() != "core" {
		t.Error("Kind.String broken")
	}
}
