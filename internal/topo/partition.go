package topo

// Partitioning for conservative-parallel execution: a partition assigns
// every node to one shard, and the fabric turns links whose endpoints
// land on different shards into cross-shard channels. The quality of a
// partition is the usual graph-cut trade-off — balanced node (really:
// event-load) counts, few cut links — but correctness never depends on
// it: the (time, rank) ordering key makes results identical for every
// assignment, so the partitioner is free to chase speed alone.

// Partitioner is implemented by topologies that know how to cut
// themselves into balanced shards. Topologies without the method (the
// star and dumbbell test fabrics) run single-shard.
type Partitioner interface {
	// Partition returns a shard index in [0, shards) for every node,
	// indexed by NodeID. Implementations may use fewer shards than
	// requested (a 2-pod tree cannot fill 8), never more.
	Partition(shards int) []int
}

// PartitionNodes cuts a topology into at most the requested number of
// shards, returning the node→shard assignment and the number of distinct
// shards actually used (always ≥ 1, with shard indexes dense in
// [0, used)). Requests of one shard — or a topology that cannot
// partition — yield the all-zero assignment.
func PartitionNodes(t Topology, shards int) ([]int, int) {
	n := len(t.Nodes())
	if shards <= 1 {
		return make([]int, n), 1
	}
	p, ok := t.(Partitioner)
	if !ok {
		return make([]int, n), 1
	}
	assign := p.Partition(shards)
	used := 0
	for _, s := range assign {
		if s >= used {
			used = s + 1
		}
	}
	if used < 1 {
		used = 1
	}
	return assign, used
}

// Partition implements Partitioner for the fat-tree: pods are the cut
// unit. A pod's hosts, edge and aggregation switches always share a
// shard — every host↔edge and edge↔agg link is intra-pod, so only
// agg↔core links can cross shards, and the lookahead window always spans
// at least one link propagation delay of slack. Pods are dealt
// round-robin over the shards (10 pods over 4 shards → 3/3/2/2), and
// each core switch joins the shard it talks to most — cores attach to
// one aggregation index in every pod, so any choice cuts most of their
// links; spreading them round-robin keeps the shard loads level.
func (t *FatTree) Partition(shards int) []int {
	if shards > t.K {
		shards = t.K // more shards than pods would leave shards empty
	}
	assign := make([]int, len(t.nodes))
	if shards <= 1 {
		return assign
	}
	for _, n := range t.nodes {
		switch n.Kind {
		case Host, EdgeSwitch, AggSwitch:
			assign[n.ID] = n.Pod % shards
		case CoreSwitch:
			assign[n.ID] = n.Idx % shards
		}
	}
	return assign
}
