package topo

// Partitioning for conservative-parallel execution: a partition assigns
// every node to one shard, and the fabric turns links whose endpoints
// land on different shards into cross-shard channels. The quality of a
// partition is the usual graph-cut trade-off — balanced node (really:
// event-load) counts, few cut links — but correctness never depends on
// it: the (time, rank) ordering key makes results identical for every
// assignment, so the partitioner is free to chase speed alone.

// Partitioner is implemented by topologies that know how to cut
// themselves into balanced shards. Topologies without the method (the
// star and dumbbell test fabrics) run single-shard.
type Partitioner interface {
	// Partition returns a shard index in [0, shards) for every node,
	// indexed by NodeID. Implementations may use fewer shards than
	// requested (a 2-pod tree cannot fill 8), never more.
	Partition(shards int) []int
}

// PartitionNodes cuts a topology into at most the requested number of
// shards, returning the node→shard assignment and the number of distinct
// shards actually used (always ≥ 1, with shard indexes dense in
// [0, used)). Requests of one shard — or a topology that cannot
// partition — yield the all-zero assignment.
func PartitionNodes(t Topology, shards int) ([]int, int) {
	n := len(t.Nodes())
	if shards <= 1 {
		return make([]int, n), 1
	}
	p, ok := t.(Partitioner)
	if !ok {
		return make([]int, n), 1
	}
	assign := p.Partition(shards)
	used := 0
	for _, s := range assign {
		if s >= used {
			used = s + 1
		}
	}
	if used < 1 {
		used = 1
	}
	return assign, used
}

// Partition implements Partitioner for the fat-tree: pods are the cut
// unit. A pod's hosts, edge and aggregation switches always share a
// shard — every host↔edge and edge↔agg link is intra-pod, so only
// agg↔core links can cross shards, and the lookahead window always spans
// at least one link propagation delay of slack.
//
// Balancing is by expected event rate rather than pod count: hosts carry
// the transports (flow arrivals, timers, per-packet NIC work — traffic is
// launched uniformly over hosts) and weigh several switches' worth of
// events, so each pod's weight is its host count scaled up plus its
// switch count, and pods go to the currently lightest shard in pod order
// (longest-processing-time greedy; on a uniform fat-tree every pod weighs
// the same, so this degenerates to the old round-robin deal — the
// weighting matters for the core tail below and for irregular
// topologies). Core switches join afterwards, each to the lightest shard
// at its turn — cores attach to one aggregation index in every pod, so
// any placement cuts most of their links and the choice is free to chase
// balance alone. Ties break toward the lowest shard index, keeping the
// assignment deterministic and shard indexes dense.
func (t *FatTree) Partition(shards int) []int {
	if shards > t.K {
		shards = t.K // more shards than pods would leave shards empty
	}
	assign := make([]int, len(t.nodes))
	if shards <= 1 {
		return assign
	}

	// Per-pod event-rate weights. hostWeight is a coarse calibration of
	// transport + NIC event load against a switch's forwarding load; the
	// exact ratio only matters when pods are unequal.
	const hostWeight, switchWeight = 4, 1
	podW := make([]int, t.K)
	for _, n := range t.nodes {
		switch n.Kind {
		case Host:
			podW[n.Pod] += hostWeight
		case EdgeSwitch, AggSwitch:
			podW[n.Pod] += switchWeight
		}
	}

	load := make([]int, shards)
	lightest := func() int {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		return best
	}
	podShard := make([]int, t.K)
	for pod := 0; pod < t.K; pod++ {
		s := lightest()
		podShard[pod] = s
		load[s] += podW[pod]
	}
	for _, n := range t.nodes {
		switch n.Kind {
		case Host, EdgeSwitch, AggSwitch:
			assign[n.ID] = podShard[n.Pod]
		case CoreSwitch:
			s := lightest()
			assign[n.ID] = s
			load[s] += switchWeight
		}
	}
	return assign
}
