package sim

import "testing"

// countingHandler counts typed events by kind.
type countingHandler struct {
	fired [4]int
}

func (h *countingHandler) HandleEvent(kind uint8, _ uint64) { h.fired[kind]++ }

// TestScheduleEventZeroAllocs is the allocation-regression guard for the
// tentpole: steady-state scheduling through the typed-handler path must
// not allocate. The engine's event heap is warmed first so the backing
// array has capacity; after that, ScheduleEvent + dispatch is free.
func TestScheduleEventZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{}

	// Warm the heap's backing array.
	for i := 0; i < 256; i++ {
		e.ScheduleEvent(e.Now()+Time(i), h, 0, uint64(i))
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		e.ScheduleEvent(e.Now()+1, h, 1, 42)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleEvent steady state allocates %.1f/op, want 0", allocs)
	}
	if h.fired[1] == 0 {
		t.Fatal("handler never fired")
	}
}

// TestTimerRearmZeroAllocs: arming, re-arming (both pushing the deadline
// later and firing through) a handler timer must not allocate — transports
// re-arm their RTO on nearly every packet.
func TestTimerRearmZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{}
	tm := NewHandlerTimer(e, nil, h, 2)

	// Warm: one full arm/fire cycle.
	tm.Arm(1)
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		tm.Arm(3) // arm
		tm.Arm(7) // push the deadline later (lazy re-arm path)
		e.Run()   // pending event lapses, reschedules, fires
	})
	if allocs != 0 {
		t.Fatalf("Timer re-arm steady state allocates %.1f/op, want 0", allocs)
	}
	if h.fired[2] == 0 {
		t.Fatal("timer never fired")
	}
}

// TestClosureScheduleStillWorks pins the compatibility wrapper: the
// closure path and the typed path interleave in FIFO order at equal times.
func TestClosureScheduleStillWorks(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{}
	var order []int
	e.Schedule(5, func() { order = append(order, 1) })
	e.ScheduleEvent(5, h, 0, 0)
	e.Schedule(5, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 || h.fired[0] != 1 {
		t.Fatalf("mixed dispatch broke ordering: order=%v fired=%v", order, h.fired)
	}
}
