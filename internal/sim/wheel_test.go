package sim

import (
	"encoding/binary"
	"testing"
)

// wheelModel drives a timingWheel and a reference eventHeap side by side
// on the same schedule and asserts identical pop order. The heap's
// (at, rank) ordering is the determinism contract golden fixtures depend
// on; any divergence is a wheel bug by definition.
type wheelModel struct {
	wheel timingWheel
	ref   eventHeap
	rank  uint64
	now   Time
}

func (m *wheelModel) push(at Time) {
	if at < m.now {
		at = m.now
	}
	m.rank++
	ev := event{at: at, rank: m.rank}
	m.wheel.push(ev)
	m.ref.push(ev)
}

// pop pops one event from both structures and compares. Returns false
// when empty.
func (m *wheelModel) pop(t *testing.T) bool {
	t.Helper()
	if len(m.ref) == 0 {
		if m.wheel.size != 0 {
			t.Fatalf("reference heap empty but wheel reports %d pending", m.wheel.size)
		}
		return false
	}
	want := m.ref.pop()
	if got := m.wheel.peekAt(); got != want.at {
		t.Fatalf("peekAt = %d, want %d", got, want.at)
	}
	got := m.wheel.pop()
	if got.at != want.at || got.rank != want.rank {
		t.Fatalf("pop order diverged: wheel (at=%d rank=%d), heap (at=%d rank=%d)",
			got.at, got.rank, want.at, want.rank)
	}
	m.now = got.at
	return true
}

func (m *wheelModel) drainAll(t *testing.T) {
	t.Helper()
	for m.pop(t) {
	}
}

// TestWheelMatchesHeap sweeps schedule shapes that exercise every wheel
// path: same-tick floods (ready ordering), near-future buckets, cascades
// across all levels, far-future overflow with rollover refills, and
// interleaved push/pop so late arrivals land at or behind the cursor.
func TestWheelMatchesHeap(t *testing.T) {
	spans := []int64{
		1,                                        // everything in one tick: pure ready ordering
		1 << wheelTickShift,                      // adjacent level-0 slots
		1 << (wheelTickShift + wheelLevelBits),   // level-1 cascades
		1 << (wheelTickShift + 2*wheelLevelBits), // level-2 cascades
		1 << (wheelTickShift + 3*wheelLevelBits), // level-3 cascades
		1 << (wheelTickShift + wheelSpanBits + 2), // overflow + rollover
	}
	for _, span := range spans {
		for seed := uint64(1); seed <= 3; seed++ {
			m := &wheelModel{}
			r := NewRNG(seed*7919 + uint64(span))
			for i := 0; i < 4000; i++ {
				m.push(m.now + Time(r.Intn(int(span))+1)*Picoseconds(1))
				// Interleave pops so the cursor moves while pushes
				// continue, and occasionally schedule at the exact
				// current time (tick <= cursor path).
				if r.Intn(3) == 0 {
					m.pop(t)
					m.push(m.now)
				}
			}
			m.drainAll(t)
		}
	}
}

// Picoseconds converts an integer count to a Time delta (test helper for
// readability in span arithmetic).
func Picoseconds(n int64) Time { return Time(n) }

// TestWheelRolloverJump: a lone far-future event beyond the wheels' span
// must be reached in one cursor jump, not by stepping windows.
func TestWheelRolloverJump(t *testing.T) {
	m := &wheelModel{}
	m.push(5)
	far := Time(int64(1) << (wheelTickShift + wheelSpanBits + 8))
	m.push(far)
	m.push(far + 3)
	m.drainAll(t)
	if m.now != far+3 {
		t.Fatalf("final time = %d, want %d", m.now, far+3)
	}
}

// FuzzEventOrder is the differential fuzz target: arbitrary byte streams
// decode into push/pop programs over the timing wheel and the reference
// heap, asserting identical pop order. It complements the seeded sweep
// above with adversarial schedules (bucket-boundary deltas, bursts at one
// tick, deep overflow churn).
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 0x80, 8, 9})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x80, 0x80, 0x80})
	seed := make([]byte, 64)
	binary.LittleEndian.PutUint64(seed, uint64(1)<<(wheelTickShift+wheelSpanBits))
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &wheelModel{}
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			if op&0x80 != 0 {
				// Pop a small burst.
				for i := 0; i < int(op&0x07)+1; i++ {
					m.pop(t)
				}
				continue
			}
			// Push: delta magnitude from the op's low 6 bits, capped at
			// 2^48 ps so a single push can land beyond the wheels' 2^46 ps
			// top window (all levels AND the overflow/rollover path are
			// reachable), fine offset from the next two bytes.
			var off uint64
			if len(data) >= 2 {
				off = uint64(binary.LittleEndian.Uint16(data))
				data = data[2:]
			}
			sh := uint(op & 0x3f)
			if sh > 48 {
				sh = 48
			}
			delta := (uint64(1) << sh) + off
			m.push(m.now + Time(delta))
		}
		m.drainAll(t)
	})
}

// TestEngineResetReusable: after Reset, an engine must behave exactly like
// a fresh one — clock, rank-driven FIFO order, executed count, timers.
func TestEngineResetReusable(t *testing.T) {
	run := func(e *Engine) (order []int, now Time, executed uint64) {
		h := &countingHandler{}
		e.ScheduleEvent(40, h, 0, 0)
		e.Schedule(10, func() { order = append(order, 1) })
		e.Schedule(10, func() { order = append(order, 2) })
		tm := NewTimer(e, func() { order = append(order, 3) })
		tm.Arm(25)
		e.Run()
		return order, e.Now(), e.Executed()
	}

	fresh := NewEngine()
	wantOrder, wantNow, wantExec := run(fresh)

	reused := NewEngine()
	// Dirty the engine: leave pending events behind via Stop, advance the
	// clock, arm a timer that never fires.
	reused.Schedule(5, func() { reused.Stop() })
	reused.Schedule(90, func() {})
	lost := NewTimer(reused, func() { t.Error("stale timer fired after Reset") })
	lost.Arm(70)
	reused.Run()
	reused.Reset()
	lost.Reset()
	if reused.Pending() != 0 || reused.Now() != 0 || reused.Executed() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%d executed=%d",
			reused.Pending(), reused.Now(), reused.Executed())
	}

	gotOrder, gotNow, gotExec := run(reused)
	if gotNow != wantNow || gotExec != wantExec || len(gotOrder) != len(wantOrder) {
		t.Fatalf("reset engine diverged: now=%d/%d executed=%d/%d order=%v/%v",
			gotNow, wantNow, gotExec, wantExec, gotOrder, wantOrder)
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order after reset = %v, want %v", gotOrder, wantOrder)
		}
	}
}

// TestTimerResetUnblocksArm: without Timer.Reset after Engine.Reset, the
// stale pending flag would swallow the next Arm (the timer thinks an
// engine event is still queued). This is the exact coupling Engine.Reset's
// doc comment warns about.
func TestTimerResetUnblocksArm(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Arm(100)
	e.RunUntil(50) // timer event still pending in the queue
	e.Reset()
	tm.Reset()
	tm.Arm(10)
	e.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times after engine+timer reset, want 1", fired)
	}
}

// TestRunUntilStopLeavesClock is the regression test for the RunUntil
// stop path: when Stop() fires during an event and the next pending event
// lies beyond the deadline, the clock must stay at the stopping event —
// the deadline assignment belongs only to the deadline-cut path.
func TestRunUntilStopLeavesClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() { e.Stop() })
	e.Schedule(50, func() { t.Error("event past Stop ran") })
	e.RunUntil(30)
	if e.Now() != 5 {
		t.Fatalf("Now = %d after Stop, want 5 (clock must not jump to the deadline)", int64(e.Now()))
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// The deadline-cut path still advances the clock.
	e.RunUntil(40)
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want deadline 40", int64(e.Now()))
	}
}
