package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). We avoid math/rand so that the
// stream is fully under our control: experiment reproducibility must not
// depend on the Go release.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Any seed value is
// acceptable, including zero.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent generator from this one. Used to give each
// host / flow source its own stream so that changing one scenario knob
// does not perturb unrelated random choices.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// DeriveSeed maps (base seed, label, trial) to a scenario seed. The fleet
// runner uses it to give every scenario/trial pair of an experiment sweep
// its own deterministic stream: the derivation depends only on the inputs
// (FNV-1a over the label folded with splitmix64 steps), never on execution
// order, so a sweep shards across any number of workers without changing
// any run's randomness.
func DeriveSeed(base uint64, label string, trial int) uint64 {
	// FNV-1a over the label.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	// Fold base, label hash and trial through splitmix64 finalizers.
	x := base
	for _, v := range [...]uint64{h, uint64(trial) + 1} {
		x += v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	if x == 0 {
		// Scenario.normalize treats seed 0 as "use the default"; avoid it.
		x = 0x9e3779b97f4a7c15
	}
	return x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	v := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, v)
	if lo < v {
		thresh := -v % v
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, v)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float with mean 1.
func (r *RNG) ExpFloat64() float64 {
	// Inverse transform; clamp the argument away from 0 to avoid +Inf.
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes elements via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
