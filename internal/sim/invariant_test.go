package sim_test

// Packet-conservation invariant harness: every figure preset runs at small
// scale and must balance the fabric census —
//
//	injected == delivered + dropped(overflow) + dropped(inject-hook) +
//	            dropped(fault) + corrupted + in-flight-at-end
//
// — and the pool accounting: every packet ever allocated is free, inside
// the fabric, or awaiting first transmission. A census miss means a packet
// died unaccounted (low) or was counted/delivered twice (high); a pool
// miss means a leak. Double releases and double deliveries additionally
// panic inside the pool itself, so any such bug fails these runs loudly.
//
// The harness lives in package sim_test (not sim) so it can drive the
// full exp stack without an import cycle; it pins the death-site contract
// of the pooled datapath across every scenario family the presets cover —
// including the fault-injection figures, whose flaps and random losses
// exercise death sites queue overflow never reaches.

import (
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/exp"
)

// invariantScale keeps the full preset sweep test-suite fast while still
// driving every code path (drops, retransmits, incast, faults).
func invariantScale() exp.Scale {
	return exp.Scale{Flows: 60, IncastBytes: 500_000, IncastReps: 1}
}

func checkConservation(t *testing.T, expID string, r exp.Result) {
	t.Helper()
	c := r.Census
	if c.Injected == 0 {
		t.Errorf("%s / %s: no packets injected — scenario ran nothing", expID, r.Name)
		return
	}
	if want := c.Exits() + uint64(r.InFlight); c.Injected != want {
		t.Errorf("%s / %s: conservation violated: injected %d != delivered %d + overflow %d + inject %d + fault %d + corrupted %d + in-flight %d",
			expID, r.Name, c.Injected, c.Delivered, c.OverflowDrops, c.InjectDrops, c.FaultDrops, c.Corrupted, r.InFlight)
	}
	if r.PoolLive != r.InFlight+r.CtrlBacklog {
		t.Errorf("%s / %s: pool accounting violated: %d live packets != %d in-flight + %d ctrl backlog (leak or double release)",
			expID, r.Name, r.PoolLive, r.InFlight, r.CtrlBacklog)
	}
}

func TestPacketConservationAcrossFigurePresets(t *testing.T) {
	sc := invariantScale()
	ran := 0
	for _, e := range exp.All(sc) {
		if !strings.HasPrefix(e.ID, "fig") {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			for _, s := range e.Scenarios {
				checkConservation(t, e.ID, exp.Run(s))
			}
		})
		ran++
	}
	if ran < 14 {
		t.Errorf("only %d figure presets found, want >= 14 (fig1-fig12, figloss, figflap)", ran)
	}
}

func TestPacketConservationUnderSpray(t *testing.T) {
	// Per-packet spraying reorders heavily; conservation must still hold.
	r := exp.Run(exp.Scenario{NumFlows: 80, Seed: 5, Spray: true, NackThreshold: 3})
	checkConservation(t, "spray", r)
}
