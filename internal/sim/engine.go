package sim

// Handler receives typed events from the engine's closure-free scheduling
// path. One object typically serves several event kinds (a port's
// "serialization done" and "arrival", a congestion controller's two
// timers); kind discriminates them and arg carries a small payload (a
// generation counter, an index, packed node IDs). Kind values are private
// to each Handler implementation.
type Handler interface {
	HandleEvent(kind uint8, arg uint64)
}

// Event is a scheduled callback. The engine's total order is the canonical
// key (at, rank): firing time first, then the rank — a 64-bit value packing
// the scheduling Clock's stable ID above a per-clock sequence number.
// Events scheduled by one clock at equal times run FIFO; events from
// different clocks tie-break by clock ID. Because ranks are derived from
// stable per-node identity rather than a global counter, the order is a
// pure function of simulation state: a sharded run merging events from
// several engines reproduces it bit-for-bit (see RunWindows).
//
// An event fires through exactly one of two paths: the typed handler path
// (h != nil), which allocates nothing, or the legacy closure path (fn).
// Steady-state simulation traffic — port serialization and delivery, timer
// ticks, PFC frames, transport timeouts — runs entirely on the typed path;
// closures remain for one-shot setup work (flow arrivals in tests and
// examples) where an allocation per event is harmless.
type event struct {
	at   Time
	rank uint64
	h    Handler
	fn   func()
	arg  uint64
	kind uint8
}

// Rank layout: the top 24 bits carry the scheduling clock's stable ID, the
// low 40 bits its per-clock sequence. 2^40 events per node per run and
// 2^24 distinct clocks are both orders of magnitude beyond any simulated
// fabric; the engine's own fallback clock sits at the top of the ID space,
// above every topology node.
const (
	rankSeqBits   = 40
	rankSeqMask   = 1<<rankSeqBits - 1
	engineClockID = 1<<24 - 1
)

// Clock is a deterministic rank source for one scheduling entity —
// typically one topology node, shared by everything that schedules on the
// node's behalf (its ports, transports, and timers). The (at, rank)
// ordering key makes event order a function of WHO schedules rather than
// a global insertion counter, which is what lets a partitioned run
// reproduce serial order exactly: each node's clock advances identically
// regardless of how nodes are spread across shard engines.
type Clock struct {
	base uint64
	seq  uint64
}

// NewClock returns a clock with the given stable ID (must be unique among
// the clocks feeding one engine group, and below engineClockID).
func NewClock(id uint64) Clock { return Clock{base: id << rankSeqBits} }

// Next returns the next rank: clock ID above a monotonic sequence.
func (c *Clock) Next() uint64 {
	c.seq++
	return c.base | c.seq&rankSeqMask
}

// Reset rewinds the clock's sequence for a new run.
func (c *Clock) Reset() { c.seq = 0 }

// eventHeap is a binary min-heap ordered by (at, rank), hand-rolled rather
// than built on container/heap to avoid the heap.Interface boxing and
// indirect calls. It is no longer the engine's main queue — the
// hierarchical timing wheel (wheel.go) is — but it remains load-bearing in
// three places: the wheel's execution frontier (`ready`), its far-future
// overflow, and the reference model the wheel is differentially tested
// against (FuzzEventOrder).
type eventHeap []event

// less orders events by the canonical (at, rank) key.
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].rank < h[j].rank
}

// push appends and sifts up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n].fn = nil // release closure and handler for GC
	q[n].h = nil
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// Engine is a single-threaded discrete-event scheduler. A sharded
// simulation runs one Engine per shard under the RunWindows coordinator;
// a serial one drives a single Engine directly. Both order events by the
// same canonical (at, rank) key, which is what keeps serial and sharded
// execution bit-identical.
//
// The zero value is not ready for use; call NewEngine.
type Engine struct {
	now     Time
	clk     Clock // fallback rank source for un-clocked scheduling
	queue   timingWheel
	stopped bool

	// nextAt/nextKnown cache the earliest pending event's firing time, so
	// NextEventTime is an O(1) read at window barriers instead of a
	// peekAt that may cascade the wheel's refill on an engine that is not
	// about to run. RunWindow primes the cache on exit with the peek it
	// already performed (inside the parallel section, on the shard's own
	// goroutine); pushes can only lower it. Pops invalidate it too, but
	// to keep the per-event loop free of cache bookkeeping that is done
	// once at every run-loop entry (Run, RunUntil, RunWindow) rather
	// than in step() — between those boundaries the cache is only ever
	// read at barriers, where the last RunWindow exit has re-primed it.
	nextAt    Time
	nextKnown bool

	// windowEnd is the end of the window RunWindow is currently
	// executing. LimitWindow shrinks it mid-run: the producer-side safety
	// valve for adaptively widened windows (see RunWindows), called by
	// this engine's own execution, so it needs no synchronization.
	windowEnd Time

	// Stats.
	executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{clk: NewClock(engineClockID)}
}

// Reset returns the engine to its just-constructed state — clock at zero,
// empty queue, zeroed counters — while keeping the queue's backing arrays
// warm. The fleet runner resets one engine per worker between trials
// instead of constructing a new one; any Timer attached to the engine must
// be Reset alongside it (its pending event is discarded with the queue).
func (e *Engine) Reset() {
	e.now, e.executed = 0, 0
	e.clk.Reset()
	e.stopped = false
	e.nextAt, e.nextKnown = 0, false
	e.windowEnd = 0
	e.queue.reset()
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled but not yet run.
func (e *Engine) Pending() int { return e.queue.size }

// checkTime panics on scheduling in the past (before the current clock):
// it always indicates a model bug, and silently reordering time corrupts
// results in ways that are very hard to debug.
func (e *Engine) checkTime(at Time) {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
}

// noteSchedule keeps the next-event cache correct across pushes: a new
// event can only lower the cached minimum, never raise it.
func (e *Engine) noteSchedule(at Time) {
	if e.nextKnown && at < e.nextAt {
		e.nextAt = at
	}
}

// ScheduleEventFrom runs h.HandleEvent(kind, arg) at absolute time at,
// ranking the event under clk — the hot path for everything owned by a
// topology node. It performs no allocation beyond amortized growth of the
// timing wheel's bucket arrays, which a warmed-up simulation never
// touches. A nil clk falls back to the engine's own clock; runs that are
// (or may be) sharded must pass the owning node's clock, because the
// engine clock is engine-local and would order differently across shard
// counts.
func (e *Engine) ScheduleEventFrom(clk *Clock, at Time, h Handler, kind uint8, arg uint64) {
	e.checkTime(at)
	if clk == nil {
		clk = &e.clk
	}
	e.noteSchedule(at)
	e.queue.push(event{at: at, rank: clk.Next(), h: h, kind: kind, arg: arg})
}

// AfterEventFrom runs h.HandleEvent(kind, arg) d after the current time,
// ranked under clk.
func (e *Engine) AfterEventFrom(clk *Clock, d Duration, h Handler, kind uint8, arg uint64) {
	e.ScheduleEventFrom(clk, e.now.Add(d), h, kind, arg)
}

// ScheduleEvent runs h.HandleEvent(kind, arg) at absolute time at, ranked
// under the engine's own clock (equal-time calls run FIFO). Convenience
// form for tests and single-engine tools; shard-safe code passes a node
// clock via ScheduleEventFrom.
func (e *Engine) ScheduleEvent(at Time, h Handler, kind uint8, arg uint64) {
	e.ScheduleEventFrom(nil, at, h, kind, arg)
}

// AfterEvent runs h.HandleEvent(kind, arg) d after the current time.
func (e *Engine) AfterEvent(d Duration, h Handler, kind uint8, arg uint64) {
	e.ScheduleEvent(e.now.Add(d), h, kind, arg)
}

// ScheduleRanked inserts an event whose rank was already drawn — by a
// cross-shard channel at production time on another engine. The rank must
// come from a Clock that is not also feeding this engine directly, or
// ordering collides. This is the shard-merge entry point: draining a
// channel re-ranks nothing, so the merged order equals the serial order.
func (e *Engine) ScheduleRanked(at Time, rank uint64, h Handler, kind uint8, arg uint64) {
	e.checkTime(at)
	e.noteSchedule(at)
	e.queue.push(event{at: at, rank: rank, h: h, kind: kind, arg: arg})
}

// RankedEvent is one pre-ranked occurrence for ScheduleRankedBatch: the
// (At, Rank) key plus the handler dispatch payload.
type RankedEvent struct {
	At   Time
	Rank uint64
	Arg  uint64
	Kind uint8
}

// ScheduleRankedBatch inserts a batch of pre-ranked events for a single
// handler in one call — the barrier drain path for cross-shard channels,
// which would otherwise pay per-event call and cache-update overhead for
// every packet that crossed a cut link during the window. Entries may be
// in any order (a boundary channel's push order is nearly sorted, but a
// PFC frame generated mid-serialization is due before the data packet
// pushed ahead of it); one scan finds the batch minimum for the past-time
// check and the next-event cache.
func (e *Engine) ScheduleRankedBatch(h Handler, evs []RankedEvent) {
	if len(evs) == 0 {
		return
	}
	earliest := evs[0].At
	for i := 1; i < len(evs); i++ {
		if evs[i].At < earliest {
			earliest = evs[i].At
		}
	}
	e.checkTime(earliest)
	e.noteSchedule(earliest)
	e.queue.pushBatch(h, evs)
}

// Schedule runs fn at absolute time at. This is the legacy closure path,
// kept for setup work and tests; each call allocates the closure. Hot
// callers use ScheduleEventFrom.
func (e *Engine) Schedule(at Time, fn func()) {
	e.checkTime(at)
	e.noteSchedule(at)
	e.queue.push(event{at: at, rank: e.clk.Next(), fn: fn})
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	e.Schedule(e.now.Add(d), fn)
}

// Run executes events until the queue empties or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	e.nextKnown = false
	for e.queue.size > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events until the queue empties, Stop is called, or the
// next event would fire after deadline. If the deadline cut the run short,
// the clock advances to it; if Stop fired or the queue drained, the clock
// stays at the last executed event.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	e.nextKnown = false
	for e.queue.size > 0 {
		// The stop check must precede the deadline check: when Stop()
		// fired during the previous event, advancing the clock to the
		// deadline would teleport the caller past events that never ran.
		if e.stopped {
			return
		}
		if e.queue.peekAt() > deadline {
			e.now = deadline
			return
		}
		e.step()
	}
}

// RunWindow executes events with firing time strictly before end, in
// (at, rank) order, leaving the clock at the last executed event. This is
// one shard's share of a conservative safe window: end is chosen by the
// RunWindows coordinator so that no event produced concurrently on
// another shard can land inside it. Stop() is honored mid-window for
// symmetry with Run, though windowed runs normally terminate via the
// coordinator's Done hook.
func (e *Engine) RunWindow(end Time) {
	e.stopped = false
	e.nextKnown = false
	e.windowEnd = end
	for e.queue.size > 0 && !e.stopped {
		if at := e.queue.peekAt(); at >= e.windowEnd {
			// Prime the next-event cache with the peek just performed:
			// the refill cost was paid here, on the shard's own goroutine
			// inside the parallel section, so the coordinator's barrier
			// scan reads it for free.
			e.nextAt, e.nextKnown = at, true
			return
		}
		e.step()
	}
}

// NextEventTime reports the firing time of the earliest pending event.
// It is cheap and non-mutating when the cache is warm — which RunWindow
// keeps it between windows — so barrier scans never trigger wheel refill
// cascades on engines that are not about to run.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.queue.size == 0 {
		return 0, false
	}
	if !e.nextKnown {
		e.nextAt, e.nextKnown = e.queue.peekAt(), true
	}
	return e.nextAt, true
}

// AdvanceTo moves the clock forward to t without executing anything —
// the windowed counterpart of RunUntil's deadline semantics. Moving
// backwards is a no-op.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := e.queue.pop()
	e.now = ev.at
	e.executed++
	if ev.h != nil {
		ev.h.HandleEvent(ev.kind, ev.arg)
	} else {
		ev.fn()
	}
}

// Stop halts Run/RunUntil after the current event completes. Pending events
// remain queued.
func (e *Engine) Stop() { e.stopped = true }

// LimitWindow shrinks the end of the window this engine is currently
// executing (RunWindow exits before any event at or past the new end).
// This is the producer-side guarantee behind adaptively widened safe
// windows: when an event on a widened shard pushes a cross-engine
// occurrence due at time d, anything the receiving shard does with it can
// influence this engine no earlier than d plus the minimum cross-engine
// latency — so the producer clamps its own window to that bound at the
// push site (see fabric's boundary channels). Must only be called from
// events executing on this engine; growing the window is not possible.
func (e *Engine) LimitWindow(end Time) {
	if end < e.windowEnd {
		e.windowEnd = end
	}
}

// Timer is a cancellable, re-armable one-shot timer.
//
// Re-arming is lazy: at most one engine event is ever pending per timer.
// Transports re-arm their retransmission timer on nearly every packet
// (pushing the deadline later); scheduling a fresh event each time would
// flood the heap with dead entries. Instead the pending event, when it
// fires, checks the live deadline and reschedules itself if the deadline
// moved. This keeps the event queue proportional to the number of timers,
// not the number of arms.
//
// The timer's engine event rides the typed-handler path (the Timer is its
// own Handler, with the generation counter as the event argument), so
// arming and re-arming never allocate. The fire target is either a typed
// (Handler, kind) pair — NewHandlerTimer, the allocation-free form — or a
// plain func() for convenience.
type Timer struct {
	eng      *Engine
	clk      *Clock // rank source; nil falls back to the engine clock
	fn       func()
	h        Handler // fire target when fn is nil
	kind     uint8
	deadline Time
	armed    bool
	pending  bool   // an engine event is queued for this timer
	pendAt   Time   // when that event fires
	pendGen  uint64 // invalidates superseded events (re-arm to earlier)
}

// NewTimer creates a timer that invokes fn when it fires. The timer starts
// unarmed and ranks its events under the engine's own clock (test and
// example convenience; not shard-safe).
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// NewHandlerTimer creates a timer that invokes h.HandleEvent(kind, 0) when
// it fires, avoiding even the one-time closure allocation of NewTimer.
// The timer starts unarmed and ranks its engine events under clk — the
// owning node's clock, so timer events keep their canonical order under
// sharded execution. A nil clk falls back to the engine clock.
func NewHandlerTimer(eng *Engine, clk *Clock, h Handler, kind uint8) *Timer {
	return &Timer{eng: eng, clk: clk, h: h, kind: kind}
}

// Arm (re)schedules the timer to fire d from now, replacing any previous
// schedule.
func (t *Timer) Arm(d Duration) { t.ArmAt(t.eng.now.Add(d)) }

// ArmAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ArmAt(at Time) {
	t.deadline = at
	t.armed = true
	if t.pending && t.pendAt <= at {
		return // the queued event will notice the new deadline
	}
	t.scheduleAt(at)
}

// scheduleAt queues the pending engine event, superseding any earlier one.
func (t *Timer) scheduleAt(at Time) {
	t.pending = true
	t.pendAt = at
	t.pendGen++
	t.eng.ScheduleEventFrom(t.clk, at, t, 0, t.pendGen)
}

// HandleEvent implements Handler: the queued engine event. arg is the
// generation the event was scheduled under.
func (t *Timer) HandleEvent(_ uint8, arg uint64) { t.tick(arg) }

// tick is the queued engine event: fire, reschedule, or lapse.
func (t *Timer) tick(gen uint64) {
	if gen != t.pendGen {
		return // superseded by a re-arm to an earlier deadline
	}
	t.pending = false
	if !t.armed {
		return
	}
	if t.deadline > t.eng.now {
		t.scheduleAt(t.deadline)
		return
	}
	t.armed = false
	if t.fn != nil {
		t.fn()
	} else {
		t.h.HandleEvent(t.kind, 0)
	}
}

// Cancel disarms the timer. Safe to call when unarmed. The pending engine
// event, if any, lapses harmlessly.
func (t *Timer) Cancel() { t.armed = false }

// Reset returns the timer to its just-created state. Required after
// Engine.Reset, which discards the timer's pending engine event wholesale:
// a stale pending flag would otherwise make the next Arm believe an event
// is already queued and never schedule one.
func (t *Timer) Reset() {
	t.deadline, t.armed = 0, false
	t.pending, t.pendAt, t.pendGen = false, 0, 0
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the time the timer will fire; valid only when Armed.
func (t *Timer) Deadline() Time { return t.deadline }
