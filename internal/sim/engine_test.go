package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", int64(e.Now()))
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: got[%d]=%d", i, got[i])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(7, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 63 {
		t.Errorf("Now = %d, want 63", int64(e.Now()))
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := make(map[int]bool)
	for _, at := range []int{10, 20, 30, 40} {
		at := at
		e.Schedule(Time(at), func() { fired[at] = true })
	}
	e.RunUntil(25)
	if !fired[10] || !fired[20] || fired[30] {
		t.Fatalf("RunUntil fired wrong events: %v", fired)
	}
	if e.Now() != 25 {
		t.Errorf("Now = %d, want 25", int64(e.Now()))
	}
	e.RunUntil(100)
	if !fired[30] || !fired[40] {
		t.Errorf("remaining events did not fire: %v", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (Stop should halt)", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestTimerFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Arm(100)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	e.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Error("timer should be unarmed after firing")
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Arm(100)
	tm.Cancel()
	e.Run()
	if fired != 0 {
		t.Errorf("cancelled timer fired %d times", fired)
	}
}

func TestTimerRearmReplacesSchedule(t *testing.T) {
	e := NewEngine()
	var fireTimes []Time
	tm := NewTimer(e, func() { fireTimes = append(fireTimes, e.Now()) })
	tm.Arm(100)
	tm.Arm(50) // replaces the first schedule
	e.Run()
	if len(fireTimes) != 1 || fireTimes[0] != 50 {
		t.Errorf("fireTimes = %v, want [50]", fireTimes)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		count++
		if count < 5 {
			tm.Arm(10)
		}
	})
	tm.Arm(10)
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tt := Time(0).Add(3 * Microsecond)
	if tt != Time(3_000_000) {
		t.Errorf("3us = %d ps, want 3e6", int64(tt))
	}
	if d := tt.Sub(Time(1_000_000)); d != 2*Microsecond {
		t.Errorf("sub = %v", d)
	}
	if s := Time(Second).Seconds(); s != 1.0 {
		t.Errorf("Seconds = %v", s)
	}
	if ms := Duration(Millisecond).Millis(); ms != 1.0 {
		t.Errorf("Millis = %v", ms)
	}
	if us := Duration(Microsecond).Micros(); us != 1.0 {
		t.Errorf("Micros = %v", us)
	}
}

func TestEngineManyEventsProperty(t *testing.T) {
	// Property: events always execute in non-decreasing time order, and
	// all scheduled events execute.
	f := func(seed uint64, n uint8) bool {
		e := NewEngine()
		r := NewRNG(seed)
		total := int(n)%200 + 1
		var last Time = -1
		executed := 0
		for i := 0; i < total; i++ {
			at := Time(r.Intn(1000))
			e.Schedule(at, func() {
				if e.Now() < last {
					t.Errorf("time went backwards: %d < %d", e.Now(), last)
				}
				last = e.Now()
				executed++
			})
		}
		e.Run()
		return executed == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// BenchmarkEngineScheduleRun measures raw event throughput: the number
// the fabric's packets-per-second ceiling derives from.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if n != b.N && b.N > 0 {
		b.Fatalf("executed %d, want %d", n, b.N)
	}
}

// BenchmarkEngineHeapChurn stresses the heap with a standing population
// of pending events, the simulator's steady-state shape.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine()
	r := NewRNG(1)
	const standing = 4096
	executed := 0
	var spawn func()
	spawn = func() {
		executed++
		if executed+standing <= b.N || executed < b.N {
			e.After(Duration(1+r.Intn(10000)), spawn)
		}
	}
	for i := 0; i < standing; i++ {
		e.After(Duration(1+r.Intn(10000)), spawn)
	}
	e.RunUntil(1 << 60)
	_ = executed
}

// BenchmarkTimerRearm measures the lazy timer's per-arm cost — the path
// transports hit on every packet.
func BenchmarkTimerRearm(b *testing.B) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	for i := 0; i < b.N; i++ {
		tm.Arm(Duration(1000000 + i))
	}
	tm.Cancel()
	e.Run()
}
