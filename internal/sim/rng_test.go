package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v negative", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("exp mean = %v, want ~1.0", mean)
	}
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(17)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 0.05*n/buckets {
			t.Errorf("bucket %d count %d deviates >5%% from %d", b, c, n/buckets)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(23)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams collide: %d/1000", same)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	// Stable: pure function of its inputs.
	if DeriveSeed(1, "fig1/IRN", 0) != DeriveSeed(1, "fig1/IRN", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// Distinct across base seed, label, and trial.
	seen := map[uint64]string{}
	for _, base := range []uint64{0, 1, 42} {
		for _, label := range []string{"", "IRN", "IRN with PFC", "RoCE+PFC incast M=10 rep=0"} {
			for trial := 0; trial < 8; trial++ {
				s := DeriveSeed(base, label, trial)
				if s == 0 {
					t.Errorf("DeriveSeed(%d, %q, %d) = 0 (reserved for defaults)", base, label, trial)
				}
				key := string(rune(trial)) + label
				if prev, dup := seen[s]; dup {
					t.Errorf("seed collision: (%d,%q,%d) and %q -> %d", base, label, trial, prev, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestRNGShuffleIsPermutationProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n)%64 + 1
		r := NewRNG(seed)
		s := make([]int, size)
		for i := range s {
			s[i] = i
		}
		r.Shuffle(size, func(i, j int) { s[i], s[j] = s[j], s[i] })
		seen := make([]bool, size)
		for _, v := range s {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
