package sim

// Conservative-parallel execution: one simulation partitioned across S
// shard engines, advancing in lockstep through safe windows.
//
// The synchronization model is the classic conservative PDES null-message-
// free barrier variant, specialized to a fabric whose only cross-shard
// interactions ride links with a fixed propagation delay (the lookahead):
//
//   - At a barrier every shard is quiescent and every cross-shard event
//     produced so far has been drained into its destination engine.
//   - T = the minimum pending event time across all shards. No event
//     anywhere fires before T.
//   - Any cross-shard event produced by executing an event at time g is
//     due at g + lookahead or later. Since g >= T, nothing produced during
//     the window can land before T + lookahead.
//   - Therefore every shard may execute its events with at < T + lookahead
//     in parallel without ever receiving a straggler into that range.
//
// Determinism does not depend on the window boundaries at all: events
// carry the canonical (at, rank) key, ranks are drawn by the producing
// node's Clock (whose sequence is a pure function of that node's
// deterministic execution), and each engine pops in exact key order. The
// window protocol only has to guarantee that every event is present in
// its engine before the engine's clock reaches it — which the lookahead
// argument above does. Serial execution with the same key visits the same
// events in the same order, so results are bit-identical for any shard
// count, including one.
type WindowConfig struct {
	// Engines are the shard engines, one per partition. A single engine
	// degenerates to windowed serial execution — same barrier cadence,
	// same Done semantics, so results match sharded runs exactly.
	Engines []*Engine
	// Lookahead is the minimum cross-shard event latency (the link
	// propagation delay for a partitioned fabric). Values <= 0 degrade to
	// one-timestep windows, which is only sensible for a single engine.
	Lookahead Duration
	// Deadline bounds the run like Engine.RunUntil: events at or before
	// it execute, and if the run is cut short by it every engine's clock
	// advances to it.
	Deadline Time
	// Drain, when non-nil, is called for every shard index at each
	// barrier, before the next window is sized. It must move that shard's
	// inbound cross-shard events into its engine (see fabric's boundary
	// channels). It runs on the coordinating goroutine; the barrier
	// orders it against all shard execution.
	Drain func(shard int)
	// Done, when non-nil, is polled at each barrier; returning true ends
	// the run. This replaces Engine.Stop for windowed runs: a stop
	// condition raised mid-window takes effect at the window's end, which
	// keeps the set of executed events independent of the shard count.
	Done func() bool
}

// RunWindows executes a group of shard engines to completion under the
// conservative window protocol. It returns true when the run ended via
// the Done hook, false when the event population drained or the deadline
// cut it short (in which case clocks are advanced to the deadline).
//
// Coordination is strictly channel-based — no spinning — so the runner is
// correct (if not parallel) at GOMAXPROCS=1 and under the race detector.
func RunWindows(cfg WindowConfig) bool {
	n := len(cfg.Engines)
	if n == 0 {
		return false
	}

	// Shard goroutines for the parallel case. Shard 0 always runs on the
	// coordinating goroutine: a 1-shard group needs no handoff at all,
	// and wider groups save one round trip per window.
	var (
		starts []chan Time
		acks   chan struct{}
	)
	if n > 1 {
		starts = make([]chan Time, n)
		acks = make(chan struct{}, n-1)
		for i := 1; i < n; i++ {
			ch := make(chan Time)
			starts[i] = ch
			go func(e *Engine) {
				for w := range ch {
					e.RunWindow(w)
					acks <- struct{}{}
				}
			}(cfg.Engines[i])
		}
		defer func() {
			for i := 1; i < n; i++ {
				close(starts[i])
			}
		}()
	}

	for {
		// Barrier: all shards quiescent. Drain cross-shard channels, then
		// decide whether and how far to run.
		if cfg.Drain != nil {
			for i := 0; i < n; i++ {
				cfg.Drain(i)
			}
		}
		if cfg.Done != nil && cfg.Done() {
			return true
		}
		var (
			t    Time
			have bool
		)
		for _, e := range cfg.Engines {
			if at, ok := e.NextEventTime(); ok && (!have || at < t) {
				t, have = at, true
			}
		}
		if !have || t > cfg.Deadline {
			for _, e := range cfg.Engines {
				e.AdvanceTo(cfg.Deadline)
			}
			return false
		}
		w := t.Add(cfg.Lookahead)
		if w <= t {
			w = t + 1 // zero lookahead: single-timestep window
		}
		if w > cfg.Deadline {
			// Events exactly at the deadline still execute (RunUntil
			// semantics); the exclusive window end is deadline+1.
			w = cfg.Deadline + 1
		}
		for i := 1; i < n; i++ {
			starts[i] <- w
		}
		cfg.Engines[0].RunWindow(w)
		for i := 1; i < n; i++ {
			<-acks
		}
	}
}
