package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Conservative-parallel execution: one simulation partitioned across S
// shard engines, advancing in lockstep through safe windows.
//
// The synchronization model is the classic conservative PDES null-message-
// free barrier variant, specialized to a fabric whose only cross-shard
// interactions ride links with a known minimum latency (the lookahead):
//
//   - At a barrier every shard is quiescent and every cross-shard event
//     produced so far has been drained into its destination engine.
//   - T = the minimum pending event time across all shards. No event
//     anywhere fires before T.
//   - Any cross-shard event produced by executing an event at time g is
//     due at g + lookahead or later. Since g >= T, nothing produced during
//     the window can land before T + lookahead.
//   - Therefore every shard may execute its events with at < T + lookahead
//     in parallel without ever receiving a straggler into that range.
//
// The lookahead is whatever minimum the producer can prove: bare link
// propagation always works, and fabric widens it to propagation plus the
// serialization delay of the smallest frame crossing a cut link by pushing
// boundary occurrences at serialization *start* (see fabric.NewPartitioned
// for the full argument).
//
// On top of the fixed-width window the coordinator layers an adaptive
// extension: the shard holding the global minimum event time may run past
// T + lookahead, up to secondMin + lookahead, where secondMin is the
// earliest pending event on any *other* shard — every other shard
// executes at g >= secondMin, so nothing it produces lands before
// secondMin + lookahead — and when no other shard holds any pending
// event at all, the minimum shard may run clear to the deadline. The one
// input that bound does not cover is the widened shard's own output
// bouncing back: a cross-shard occurrence it pushes with arrival time d
// can provoke a response due as early as d plus the minimum cross-shard
// latency, which a window stretching far past d would overrun. Producers
// close that hole themselves: every cross-engine push clamps the pushing
// engine's current window to d + slack via Engine.LimitWindow (see
// fabric's boundary channels), so a widened window survives exactly as
// long as the shard stays cross-shard silent. In sparse phases
// (endurance soaks, fault blackouts, flow-arrival tails) that collapses
// long runs of near-empty fixed windows into one barrier, while under
// dense boundary traffic windows self-clamp back to safety.
//
// Determinism does not depend on the window boundaries at all: events
// carry the canonical (at, rank) key, ranks are drawn by the producing
// node's Clock (whose sequence is a pure function of that node's
// deterministic execution), and each engine pops in exact key order. The
// window protocol only has to guarantee that every event is present in
// its engine before the engine's clock reaches it — which the lookahead
// argument above does. Serial execution with the same key visits the same
// events in the same order, so results are bit-identical for any shard
// count, including one.
type WindowConfig struct {
	// Engines are the shard engines, one per partition. A single engine
	// degenerates to windowed serial execution — same barrier cadence,
	// same Done semantics, so results match sharded runs exactly.
	Engines []*Engine
	// Lookahead is the minimum cross-shard event latency (at least the
	// link propagation delay for a partitioned fabric; see
	// fabric.Network.Lookahead for the widened bound). Values <= 0
	// degrade to one-timestep windows, which is only sensible for a
	// single engine.
	Lookahead Duration
	// Deadline bounds the run like Engine.RunUntil: events at or before
	// it execute, and if the run is cut short by it every engine's clock
	// advances to it. MaxTime means effectively unbounded; the window
	// arithmetic saturates rather than wrapping past it.
	Deadline Time
	// Drain, when non-nil, is called at each barrier, before the next
	// window is sized. It must move every pending inbound cross-shard
	// event into its destination engine (see fabric's boundary channels
	// and their dirty lists). It runs on the coordinating goroutine; the
	// barrier orders it against all shard execution.
	Drain func()
	// Done, when non-nil, is polled at each barrier; returning true ends
	// the run. This replaces Engine.Stop for windowed runs: a stop
	// condition raised mid-window takes effect at a barrier, never
	// mid-window.
	Done func() bool
	// Horizon, when non-nil, is consulted once — at the first barrier
	// where Done reports true — and clamps the remaining run to
	// min(Deadline, Horizon()): the run continues through the window
	// protocol until that final deadline and every engine's clock lands
	// exactly on it. This makes the executed event set, and every
	// engine's final Now, a pure function of simulation state —
	// independent of the shard count AND of the lookahead width (a wider
	// lookahead reaches Done in a different window, but the clamped
	// deadline is the same). Callers derive the horizon from the done
	// condition itself, e.g. "time the last flow completed plus the
	// maximum window width ever usable" (fabric.Network.WindowSlack).
	//
	// When nil, Done ends the run at its barrier immediately; engines
	// are aligned to the maximum shard clock so they at least agree,
	// but the stopping window — and thus the trailing executed-event set
	// — depends on the configured lookahead.
	Horizon func() Time
	// Widen gates the adaptive extension while a Done condition is armed
	// but not yet seen. Done is only polled at barriers, so letting the
	// minimum shard run far past the global safe window could carry it
	// beyond the instant Done first becomes true — executing events the
	// canonical (fixed-window) run would clamp away. Widen(shard) grants
	// the extension anyway; a hook that returns true must arrange for
	// that shard to stop itself (Engine.Stop) no later than the moment
	// the done condition turns true on it, which pins the executed-event
	// set back to the canonical horizon:
	//
	//   - If the last contribution to the done condition lands on the
	//     widened shard, the armed self-stop halts it there, the next
	//     barrier sees Done, and the Horizon clamp takes over.
	//   - If it lands on any other shard, that shard executed at or
	//     after secondMin, so the horizon is at least secondMin plus the
	//     window slack — past everything the widened window could run —
	//     and a stale self-stop either never fires or fires early, which
	//     only costs an extra barrier (pending events keep their turn).
	//
	// The hook runs on the coordinating goroutine at a barrier, so it
	// may read shard-owned completion counters freely. Nil (or Done nil
	// having never armed) means: extend freely once Done has been seen —
	// the deadline is already clamped — and never before.
	Widen func(shard int) bool
	// FixedWindows disables the adaptive extension entirely, restoring
	// fixed lookahead-width windows. Results are bit-identical either
	// way (the executed-event set is window-independent); the knob
	// exists for barrier-count comparisons and as an escape hatch.
	FixedWindows bool
	// Stats, when non-nil, is reset and filled with runtime counters for
	// this run: barrier rounds, widened windows, and per-shard work and
	// wait tallies. The wall-clock wait figures are nondeterministic;
	// everything else is a pure function of the run.
	Stats *WindowStats
}

// WindowStats are one windowed run's runtime counters, filled when
// WindowConfig.Stats is set.
type WindowStats struct {
	// Barriers counts dispatch rounds: barriers at which at least one
	// shard received a window. Fewer barriers for the same event count
	// means less synchronization overhead.
	Barriers uint64
	// WideWindows counts rounds where the adaptive extension actually
	// widened the minimum shard's window past the global safe width.
	WideWindows uint64
	// Shards holds per-shard tallies, indexed by shard.
	Shards []ShardWindowStats
}

// ShardWindowStats are one shard's runtime counters.
type ShardWindowStats struct {
	// Windows counts safe windows this shard actually executed (rounds
	// it was dispatched with pending work).
	Windows uint64
	// Events counts events executed inside those windows.
	Events uint64
	// BarrierWaitNs is wall-clock nanoseconds this shard spent parked at
	// the barrier waiting for the next dispatch — for shard 0 (which
	// runs on the coordinating goroutine), the time spent waiting for
	// the other shards to finish their windows. A skewed column is the
	// signature of partition imbalance. Wall-clock, so nondeterministic.
	BarrierWaitNs int64
}

// ShardPanic is the panic value RunWindows re-raises on the caller's
// goroutine when a shard panics inside its window. The original value and
// the panicking goroutine's stack ride along, so the real failure surfaces
// instead of a coordinator deadlock.
type ShardPanic struct {
	Shard int
	Value any
	Stack string
}

func (p ShardPanic) String() string {
	return fmt.Sprintf("sim: shard %d panicked in window: %v\n%s", p.Shard, p.Value, p.Stack)
}

// shardAck is one shard's end-of-window report to the coordinator.
type shardAck struct {
	shard    int
	panicVal any
	stack    []byte
}

// runWindowRecover runs one shard's window, converting a panic into an
// ack the coordinator can collect. Swallowing the panic here is what
// keeps the barrier protocol alive long enough for every other shard to
// ack; the coordinator re-raises it as a ShardPanic.
func runWindowRecover(e *Engine, shard int, w Time) (ack shardAck) {
	ack.shard = shard
	defer func() {
		if r := recover(); r != nil {
			ack.panicVal = r
			ack.stack = debug.Stack()
		}
	}()
	e.RunWindow(w)
	return
}

// windowEnd sizes the window starting at t: t + lookahead, saturated
// against overflow, clamped to deadline+1 (events exactly at the deadline
// still execute, RunUntil semantics). Caller guarantees t < MaxTime and
// t <= deadline.
func windowEnd(t Time, lookahead Duration, deadline Time) Time {
	w := t + Time(lookahead)
	if w < t {
		w = MaxTime // overflow saturates
	}
	if w <= t {
		w = t + 1 // zero lookahead: single-timestep window
	}
	if w > deadline {
		return deadlineEnd(deadline)
	}
	return w
}

// deadlineEnd is the window end that carries a shard through the deadline
// itself: deadline+1, except at MaxTime where the increment would wrap.
func deadlineEnd(deadline Time) Time {
	if deadline == MaxTime {
		return MaxTime
	}
	return deadline + 1
}

// windowBarrier is the shard rendezvous: an epoch/generation barrier over
// one mutex and two condition variables, replacing a per-window channel
// round trip per shard. The coordinator publishes each round as an epoch
// bump plus a per-shard window-end array (zero = sit this round out) and
// broadcasts; workers park on the work cond between rounds, run their
// window lock-free, then decrement the outstanding count, the last one
// waking the coordinator. One futex wake per side per round, no spinning,
// correct at GOMAXPROCS=1 and under the race detector.
//
// Every shared field is written under mu. Workers touch only their own
// stats slot, but even those writes stay under mu so the coordinator's
// final collect orders them for the caller.
type windowBarrier struct {
	mu   sync.Mutex
	work sync.Cond // workers park here between rounds
	idle sync.Cond // coordinator parks here until outstanding == 0

	epoch       uint64
	ends        []Time // per-shard window end this epoch; 0 = idle round
	outstanding int
	closed      bool
	fail        *shardAck

	stats []ShardWindowStats // nil when stats are off
}

func newWindowBarrier(n int, stats []ShardWindowStats) *windowBarrier {
	b := &windowBarrier{ends: make([]Time, n), stats: stats}
	b.work.L = &b.mu
	b.idle.L = &b.mu
	return b
}

// worker is shard i's goroutine body (shards 1..n-1; shard 0 runs on the
// coordinating goroutine). The closed check precedes any stats write, so
// once close() has run — which only happens after RunWindows' caller has
// the coordinator back — a late-waking worker exits without touching
// memory the caller may now own.
func (b *windowBarrier) worker(e *Engine, shard int) {
	seen := uint64(0)
	b.mu.Lock()
	for {
		var start time.Time
		if b.stats != nil {
			start = time.Now()
		}
		for b.epoch == seen && !b.closed {
			b.work.Wait()
		}
		if b.closed {
			b.mu.Unlock()
			return
		}
		seen = b.epoch
		w := b.ends[shard]
		if b.stats != nil {
			b.stats[shard].BarrierWaitNs += time.Since(start).Nanoseconds()
		}
		b.mu.Unlock()

		var ack shardAck
		ran := w != 0
		before := e.Executed()
		if ran {
			ack = runWindowRecover(e, shard, w)
		}

		b.mu.Lock()
		if ran && b.stats != nil {
			b.stats[shard].Windows++
			b.stats[shard].Events += e.Executed() - before
		}
		if ack.panicVal != nil && b.fail == nil {
			cp := ack
			b.fail = &cp
		}
		b.outstanding--
		if b.outstanding == 0 {
			b.idle.Signal()
		}
	}
}

// round publishes one window round, runs shard 0's share inline, waits for
// every worker to report back, and re-raises the first shard panic (shard
// 0's own taking precedence, since the others still completed their
// windows).
func (b *windowBarrier) round(e0 *Engine, ends []Time) {
	b.mu.Lock()
	copy(b.ends, ends)
	b.epoch++
	b.outstanding = len(ends) - 1
	b.mu.Unlock()
	b.work.Broadcast()

	var failed *shardAck
	if w := ends[0]; w != 0 {
		before := e0.Executed()
		if ack := runWindowRecover(e0, 0, w); ack.panicVal != nil {
			failed = &ack
		}
		if b.stats != nil {
			b.stats[0].Windows++
			b.stats[0].Events += e0.Executed() - before
		}
	}

	b.mu.Lock()
	var start time.Time
	if b.stats != nil {
		start = time.Now()
	}
	for b.outstanding > 0 {
		b.idle.Wait()
	}
	if b.stats != nil {
		b.stats[0].BarrierWaitNs += time.Since(start).Nanoseconds()
	}
	if failed == nil {
		failed = b.fail
	}
	b.fail = nil
	b.mu.Unlock()

	if failed != nil {
		panic(ShardPanic{Shard: failed.shard, Value: failed.panicVal, Stack: string(failed.stack)})
	}
}

// close releases the workers for good. Only called with every round fully
// collected (outstanding == 0), so all workers are parked and exit on the
// wake without writing anything.
func (b *windowBarrier) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.work.Broadcast()
}

// RunWindows executes a group of shard engines to completion under the
// conservative window protocol. It returns true when the run ended via
// the Done hook, false when the event population drained or the deadline
// cut it short; on every exit path the engines' clocks agree (the final
// deadline, or the maximum shard clock on the legacy nil-Horizon Done
// path).
//
// Coordination is an epoch barrier (see windowBarrier) — one broadcast
// out, one wake back per round, no spinning — so the runner is correct
// (if not parallel) at GOMAXPROCS=1 and under the race detector. A window
// is dispatched only to shards whose next pending event falls inside it;
// idle shards wake, see the zero sentinel, and report straight back.
func RunWindows(cfg WindowConfig) bool {
	n := len(cfg.Engines)
	if n == 0 {
		return false
	}
	stats := cfg.Stats
	if stats != nil {
		*stats = WindowStats{Shards: make([]ShardWindowStats, n)}
	}

	// Shard 0 always runs on the coordinating goroutine: a 1-shard group
	// needs no barrier at all, and wider groups save one wake per round.
	var b *windowBarrier
	ends := make([]Time, n)
	if n > 1 {
		var sh []ShardWindowStats
		if stats != nil {
			sh = stats.Shards
		}
		b = newWindowBarrier(n, sh)
		for i := 1; i < n; i++ {
			go b.worker(cfg.Engines[i], i)
		}
		defer b.close()
	}

	doneSeen := false
	for {
		// Barrier: all shards quiescent. Drain cross-shard channels, then
		// decide whether and how far to run.
		if cfg.Drain != nil {
			cfg.Drain()
		}
		if !doneSeen && cfg.Done != nil && cfg.Done() {
			doneSeen = true
			if cfg.Horizon == nil {
				// Legacy immediate stop: align every clock to the
				// furthest shard so Now() agrees across the group.
				var m Time
				for _, e := range cfg.Engines {
					if e.Now() > m {
						m = e.Now()
					}
				}
				for _, e := range cfg.Engines {
					e.AdvanceTo(m)
				}
				return true
			}
			if h := cfg.Horizon(); h < cfg.Deadline {
				cfg.Deadline = h
			}
		}
		// One scan finds the global minimum event time t, the shard m
		// holding it, and the minimum over the *other* shards (the
		// adaptive extension's bound). An idle shard's cached next-event
		// time makes this O(1) per shard.
		var (
			t, second        Time
			have, haveSecond bool
			m                int
		)
		for i, e := range cfg.Engines {
			at, ok := e.NextEventTime()
			if !ok {
				continue
			}
			switch {
			case !have || at < t:
				if have && (!haveSecond || t < second) {
					second, haveSecond = t, true // old minimum demotes
				}
				t, have, m = at, true, i
			case !haveSecond || at < second:
				second, haveSecond = at, true
			}
		}
		if !have || t > cfg.Deadline {
			for _, e := range cfg.Engines {
				e.AdvanceTo(cfg.Deadline)
			}
			return doneSeen
		}
		if t == MaxTime {
			// Final representable instant: no window can extend past it.
			// Every pending event fires at exactly MaxTime, and nothing
			// they produce can be due earlier (or later — scheduling past
			// MaxTime wraps and panics as a past-time model bug), so the
			// shards cannot interact and run sequentially here.
			for _, e := range cfg.Engines {
				e.RunUntil(MaxTime)
			}
			continue
		}
		w := windowEnd(t, cfg.Lookahead, cfg.Deadline)
		// Adaptive extension for the minimum shard. Safe unconditionally
		// when no Done condition is pending (the deadline alone bounds
		// the run, and nothing another shard executes this round lands
		// before second + lookahead); while Done is armed, only a Widen
		// hook that pins the stop point may grant it — see Widen.
		//
		// Single-engine groups never extend: the lookahead argument only
		// covers events crossing *between* engines, and a lone engine's
		// Drain hook may legitimately feed events back into itself one
		// lookahead out (windowed serial execution), which a deadline-wide
		// window would overrun. There is no barrier concurrency to save
		// there anyway.
		wm := w
		if n > 1 && !cfg.FixedWindows && (!haveSecond || second > t) &&
			(cfg.Done == nil || doneSeen || (cfg.Widen != nil && cfg.Widen(m))) {
			wm = deadlineEnd(cfg.Deadline)
			if haveSecond && second < cfg.Deadline {
				wm = windowEnd(second, cfg.Lookahead, cfg.Deadline)
			}
		}
		if stats != nil {
			stats.Barriers++
			if wm > w {
				stats.WideWindows++
			}
		}
		// Dispatch only to shards with work inside the window; the
		// minimum shard m (which always qualifies) gets the extended end.
		for i, e := range cfg.Engines {
			ends[i] = 0
			if at, ok := e.NextEventTime(); !ok || at >= w {
				continue
			}
			ends[i] = w
		}
		ends[m] = wm
		if n == 1 {
			before := cfg.Engines[0].Executed()
			ack := runWindowRecover(cfg.Engines[0], 0, ends[0])
			if stats != nil {
				stats.Shards[0].Windows++
				stats.Shards[0].Events += cfg.Engines[0].Executed() - before
			}
			if ack.panicVal != nil {
				panic(ShardPanic{Shard: 0, Value: ack.panicVal, Stack: string(ack.stack)})
			}
			continue
		}
		b.round(cfg.Engines[0], ends)
	}
}
