package sim

import (
	"fmt"
	"runtime/debug"
)

// Conservative-parallel execution: one simulation partitioned across S
// shard engines, advancing in lockstep through safe windows.
//
// The synchronization model is the classic conservative PDES null-message-
// free barrier variant, specialized to a fabric whose only cross-shard
// interactions ride links with a known minimum latency (the lookahead):
//
//   - At a barrier every shard is quiescent and every cross-shard event
//     produced so far has been drained into its destination engine.
//   - T = the minimum pending event time across all shards. No event
//     anywhere fires before T.
//   - Any cross-shard event produced by executing an event at time g is
//     due at g + lookahead or later. Since g >= T, nothing produced during
//     the window can land before T + lookahead.
//   - Therefore every shard may execute its events with at < T + lookahead
//     in parallel without ever receiving a straggler into that range.
//
// The lookahead is whatever minimum the producer can prove: bare link
// propagation always works, and fabric widens it to propagation plus the
// serialization delay of the smallest frame crossing a cut link by pushing
// boundary occurrences at serialization *start* (see fabric.NewPartitioned
// for the full argument).
//
// Determinism does not depend on the window boundaries at all: events
// carry the canonical (at, rank) key, ranks are drawn by the producing
// node's Clock (whose sequence is a pure function of that node's
// deterministic execution), and each engine pops in exact key order. The
// window protocol only has to guarantee that every event is present in
// its engine before the engine's clock reaches it — which the lookahead
// argument above does. Serial execution with the same key visits the same
// events in the same order, so results are bit-identical for any shard
// count, including one.
type WindowConfig struct {
	// Engines are the shard engines, one per partition. A single engine
	// degenerates to windowed serial execution — same barrier cadence,
	// same Done semantics, so results match sharded runs exactly.
	Engines []*Engine
	// Lookahead is the minimum cross-shard event latency (at least the
	// link propagation delay for a partitioned fabric; see
	// fabric.Network.Lookahead for the widened bound). Values <= 0
	// degrade to one-timestep windows, which is only sensible for a
	// single engine.
	Lookahead Duration
	// Deadline bounds the run like Engine.RunUntil: events at or before
	// it execute, and if the run is cut short by it every engine's clock
	// advances to it. MaxTime means effectively unbounded; the window
	// arithmetic saturates rather than wrapping past it.
	Deadline Time
	// Drain, when non-nil, is called at each barrier, before the next
	// window is sized. It must move every pending inbound cross-shard
	// event into its destination engine (see fabric's boundary channels
	// and their dirty lists). It runs on the coordinating goroutine; the
	// barrier orders it against all shard execution.
	Drain func()
	// Done, when non-nil, is polled at each barrier; returning true ends
	// the run. This replaces Engine.Stop for windowed runs: a stop
	// condition raised mid-window takes effect at a barrier, never
	// mid-window.
	Done func() bool
	// Horizon, when non-nil, is consulted once — at the first barrier
	// where Done reports true — and clamps the remaining run to
	// min(Deadline, Horizon()): the run continues through the window
	// protocol until that final deadline and every engine's clock lands
	// exactly on it. This makes the executed event set, and every
	// engine's final Now, a pure function of simulation state —
	// independent of the shard count AND of the lookahead width (a wider
	// lookahead reaches Done in a different window, but the clamped
	// deadline is the same). Callers derive the horizon from the done
	// condition itself, e.g. "time the last flow completed plus the
	// maximum window width ever usable" (fabric.Network.WindowSlack).
	//
	// When nil, Done ends the run at its barrier immediately; engines
	// are aligned to the maximum shard clock so they at least agree,
	// but the stopping window — and thus the trailing executed-event set
	// — depends on the configured lookahead.
	Horizon func() Time
}

// ShardPanic is the panic value RunWindows re-raises on the caller's
// goroutine when a shard panics inside its window. The original value and
// the panicking goroutine's stack ride along, so the real failure surfaces
// instead of a coordinator deadlock.
type ShardPanic struct {
	Shard int
	Value any
	Stack string
}

func (p ShardPanic) String() string {
	return fmt.Sprintf("sim: shard %d panicked in window: %v\n%s", p.Shard, p.Value, p.Stack)
}

// shardAck is one shard's end-of-window report to the coordinator.
type shardAck struct {
	shard    int
	panicVal any
	stack    []byte
}

// runWindowRecover runs one shard's window, converting a panic into an
// ack the coordinator can collect. Swallowing the panic here is what
// keeps the barrier protocol alive long enough for every other shard to
// ack; the coordinator re-raises it as a ShardPanic.
func runWindowRecover(e *Engine, shard int, w Time) (ack shardAck) {
	ack.shard = shard
	defer func() {
		if r := recover(); r != nil {
			ack.panicVal = r
			ack.stack = debug.Stack()
		}
	}()
	e.RunWindow(w)
	return
}

// windowEnd sizes the window starting at t: t + lookahead, saturated
// against overflow, clamped to deadline+1 (events exactly at the deadline
// still execute, RunUntil semantics). Caller guarantees t < MaxTime and
// t <= deadline.
func windowEnd(t Time, lookahead Duration, deadline Time) Time {
	w := t + Time(lookahead)
	if w < t {
		w = MaxTime // overflow saturates
	}
	if w <= t {
		w = t + 1 // zero lookahead: single-timestep window
	}
	if w > deadline {
		if deadline == MaxTime {
			return MaxTime // deadline+1 would wrap to the distant past
		}
		return deadline + 1
	}
	return w
}

// RunWindows executes a group of shard engines to completion under the
// conservative window protocol. It returns true when the run ended via
// the Done hook, false when the event population drained or the deadline
// cut it short; on every exit path the engines' clocks agree (the final
// deadline, or the maximum shard clock on the legacy nil-Horizon Done
// path).
//
// Coordination is strictly channel-based — no spinning — so the runner is
// correct (if not parallel) at GOMAXPROCS=1 and under the race detector.
// A window is dispatched only to shards whose next pending event falls
// inside it; idle shards skip the handoff round trip entirely.
func RunWindows(cfg WindowConfig) bool {
	n := len(cfg.Engines)
	if n == 0 {
		return false
	}

	// Shard goroutines for the parallel case. Shard 0 always runs on the
	// coordinating goroutine: a 1-shard group needs no handoff at all,
	// and wider groups save one round trip per window.
	var (
		starts []chan Time
		acks   chan shardAck
	)
	if n > 1 {
		starts = make([]chan Time, n)
		acks = make(chan shardAck, n-1)
		for i := 1; i < n; i++ {
			ch := make(chan Time)
			starts[i] = ch
			go func(e *Engine, shard int) {
				for w := range ch {
					acks <- runWindowRecover(e, shard, w)
				}
			}(cfg.Engines[i], i)
		}
		defer func() {
			for i := 1; i < n; i++ {
				close(starts[i])
			}
		}()
	}

	doneSeen := false
	for {
		// Barrier: all shards quiescent. Drain cross-shard channels, then
		// decide whether and how far to run.
		if cfg.Drain != nil {
			cfg.Drain()
		}
		if !doneSeen && cfg.Done != nil && cfg.Done() {
			doneSeen = true
			if cfg.Horizon == nil {
				// Legacy immediate stop: align every clock to the
				// furthest shard so Now() agrees across the group.
				var m Time
				for _, e := range cfg.Engines {
					if e.Now() > m {
						m = e.Now()
					}
				}
				for _, e := range cfg.Engines {
					e.AdvanceTo(m)
				}
				return true
			}
			if h := cfg.Horizon(); h < cfg.Deadline {
				cfg.Deadline = h
			}
		}
		var (
			t    Time
			have bool
		)
		for _, e := range cfg.Engines {
			if at, ok := e.NextEventTime(); ok && (!have || at < t) {
				t, have = at, true
			}
		}
		if !have || t > cfg.Deadline {
			for _, e := range cfg.Engines {
				e.AdvanceTo(cfg.Deadline)
			}
			return doneSeen
		}
		if t == MaxTime {
			// Final representable instant: no window can extend past it.
			// Every pending event fires at exactly MaxTime, and nothing
			// they produce can be due earlier (or later — scheduling past
			// MaxTime wraps and panics as a past-time model bug), so the
			// shards cannot interact and run sequentially here.
			for _, e := range cfg.Engines {
				e.RunUntil(MaxTime)
			}
			continue
		}
		w := windowEnd(t, cfg.Lookahead, cfg.Deadline)
		// Dispatch only to shards with work inside the window; an idle
		// shard's cached next-event time makes this scan O(1) per shard.
		dispatched := 0
		run0 := false
		for i, e := range cfg.Engines {
			if at, ok := e.NextEventTime(); !ok || at >= w {
				continue
			}
			if i == 0 {
				run0 = true
			} else {
				starts[i] <- w
				dispatched++
			}
		}
		var failed *shardAck
		if run0 {
			if ack := runWindowRecover(cfg.Engines[0], 0, w); ack.panicVal != nil {
				failed = &ack
			}
		}
		for j := 0; j < dispatched; j++ {
			ack := <-acks
			if ack.panicVal != nil && failed == nil {
				failed = &ack
			}
		}
		if failed != nil {
			panic(ShardPanic{Shard: failed.shard, Value: failed.panicVal, Stack: string(failed.stack)})
		}
	}
}
