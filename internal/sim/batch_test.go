package sim

import (
	"sort"
	"testing"
)

// Edge-case coverage for Engine.ScheduleRankedBatch — the barrier drain
// path. FuzzShardMerge explores the space randomly; these pin the
// boundary behaviors by name: empty batches, single entries, a batch
// minimum tying the wheel's next pop on the (time, rank) key, and the
// ready-frontier watermark after a window consumed part of a slot.

// TestScheduleRankedBatchEmpty: empty and nil batches are no-ops — no
// past-time check against a phantom minimum, no cache disturbance.
func TestScheduleRankedBatchEmpty(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	e.ScheduleRanked(100, 7, h, 0, 1)
	e.ScheduleRankedBatch(h, nil)
	e.ScheduleRankedBatch(h, []RankedEvent{})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after empty batches, want 1", e.Pending())
	}
	if at, ok := e.NextEventTime(); !ok || at != 100 {
		t.Fatalf("next = %d,%v after empty batches, want 100", at, ok)
	}
	e.RunWindow(200)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("executed %v, want [1]", got)
	}
}

// TestScheduleRankedBatchSingle: a one-entry batch behaves exactly like
// ScheduleRanked — same merge position, same cache update.
func TestScheduleRankedBatchSingle(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	e.ScheduleRanked(100, 20, h, 0, 2)
	e.ScheduleRankedBatch(h, []RankedEvent{{At: 100, Rank: 10, Arg: 1}})
	if at, ok := e.NextEventTime(); !ok || at != 100 {
		t.Fatalf("next = %d,%v, want 100 (cache lowered by batch)", at, ok)
	}
	e.ScheduleRankedBatch(h, []RankedEvent{{At: 50, Rank: 99, Arg: 0}})
	if at, ok := e.NextEventTime(); !ok || at != 50 {
		t.Fatalf("next = %d,%v, want 50", at, ok)
	}
	e.RunWindow(200)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("executed %v, want [0 1 2] — (at, rank) order", got)
	}
}

// TestScheduleRankedBatchTieWithWheelPops: after a window has popped part
// of the queue, a batch lands whose minimum shares its firing *time* with
// the wheel's next pending event, with ranks straddling it. The batch
// events arrive below the advanced cursor (the late path), so this pins
// the late-heap-vs-ready merge at an equal-time key: rank alone must
// decide.
func TestScheduleRankedBatchTieWithWheelPops(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	e.ScheduleRanked(100, 50, h, 0, 1)
	e.ScheduleRanked(200, 10, h, 0, 2)
	e.RunWindow(150) // pops event 1; cursor is at tick 0, next pending (200, 10)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("first window executed %v, want [1]", got)
	}
	e.ScheduleRankedBatch(h, []RankedEvent{
		{At: 200, Rank: 20, Arg: 4}, // same time, higher rank: after
		{At: 300, Rank: 1, Arg: 5},  // later time, lowest rank: last
		{At: 200, Rank: 5, Arg: 3},  // same time, lower rank: before
	})
	e.RunWindow(1000)
	want := []uint64{1, 3, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("executed %v, want %v — equal-time merge must order by rank", got, want)
		}
	}
}

// TestScheduleRankedBatchPartialConsumption: a window consumes part of a
// drained slot (leaving the ready frontier's head watermark mid-array),
// then a batch inserts events both into the partially consumed region's
// tick (below the cursor — the late path) and into untouched future
// slots. Everything remaining must still pop in exact (at, rank) order —
// the watermark cannot hide, duplicate, or reorder survivors.
func TestScheduleRankedBatchPartialConsumption(t *testing.T) {
	const tick = Time(1) << 14 // one wheel tick (see wheel.go)
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}

	type key struct {
		at   Time
		rank uint64
	}
	var all []key
	sched := func(batch []RankedEvent) {
		for _, ev := range batch {
			all = append(all, key{ev.At, ev.Rank})
		}
		e.ScheduleRankedBatch(h, batch)
	}

	// Batch A: a cluster inside one tick around the future cut point,
	// plus a tail spread across higher wheel levels.
	cut := 3*tick + tick/2
	var a []RankedEvent
	rank := uint64(1)
	for _, at := range []Time{
		10, tick + 5, // early, fully consumed
		3*tick + 100, 3*tick + 200, cut + 100, cut + 200, // cluster straddling the cut
		5 * tick, 300 * tick, 70000 * tick, // tail: same level, mid level, cascade
	} {
		a = append(a, RankedEvent{At: at, Rank: rank, Arg: rank})
		rank++
	}
	sched(a)

	// Consume through the cut: the cluster's slot drains into ready and
	// is only partially executed, parking the head watermark mid-array.
	e.RunWindow(cut)

	// Batch B: same tick as the partially consumed cluster (now at or
	// below the cursor — late-path placement) and future slots.
	var b []RankedEvent
	for _, at := range []Time{cut + 150, cut + 250, 4 * tick, 200 * tick, 80000 * tick} {
		b = append(b, RankedEvent{At: at, Rank: rank, Arg: rank})
		rank++
	}
	sched(b)

	e.RunWindow(100000 * tick)
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after the full drain", e.Pending())
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].rank < all[j].rank
	})
	if len(got) != len(all) {
		t.Fatalf("executed %d events, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i] != all[i].rank {
			t.Fatalf("order diverged at %d: got rank %d, want %d (at=%d)", i, got[i], all[i].rank, all[i].at)
		}
	}
}

// TestScheduleRankedBatchRecycledSlots: repeated batch-drain cycles push
// each window's events through the wheel's spare-array recycling
// (drained bucket arrays circulate back to later slots); order must hold
// across many reuse generations.
func TestScheduleRankedBatchRecycledSlots(t *testing.T) {
	const tick = Time(1) << 14
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	rank := uint64(1)
	total := 0
	for round := 0; round < 50; round++ {
		base := Time(round+1) * 7 * tick
		var batch []RankedEvent
		for k := 0; k < 8; k++ {
			batch = append(batch, RankedEvent{At: base + Time(k*200), Rank: rank, Arg: rank})
			rank++
		}
		e.ScheduleRankedBatch(h, batch)
		total += len(batch)
		e.RunWindow(base + 2*tick)
	}
	if len(got) != total {
		t.Fatalf("executed %d events, want %d", len(got), total)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("order diverged at %d: got rank %d after %d", i, got[i], got[i-1])
		}
	}
}

// TestLimitWindow: an event may shrink the window it is executing inside
// — RunWindow must stop before the new end and leave later events
// pending with the cache primed.
func TestLimitWindow(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	clamp := handlerFunc(func(_ uint8, arg uint64) {
		got = append(got, arg)
		e.LimitWindow(150)
		e.LimitWindow(500) // growing is not possible
	})
	e.ScheduleEvent(10, clamp, 0, 1)
	e.ScheduleEvent(100, h, 0, 2)
	e.ScheduleEvent(200, h, 0, 3)
	e.RunWindow(1000)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("executed %v, want [1 2] — clamp must cut the window at 150", got)
	}
	if at, ok := e.NextEventTime(); !ok || at != 200 {
		t.Fatalf("next = %d,%v, want 200 still pending", at, ok)
	}
	// The clamp applies to the current window only.
	e.RunWindow(1000)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("executed %v, want [1 2 3] after a fresh window", got)
	}
}
