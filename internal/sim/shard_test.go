package sim

import (
	"sort"
	"sync"
	"testing"
)

// recHandler records (label, firing time) pairs in execution order.
type recHandler struct {
	got *[]uint64
}

func (h recHandler) HandleEvent(_ uint8, arg uint64) { *h.got = append(*h.got, arg) }

// TestRunWindowsTwoShards drives a ping-pong pair of "nodes" — each with
// its own clock, exchanging events through barrier-drained inboxes (the
// shape of fabric's boundary channels) — once on a single engine and
// once split across two, asserting the merged execution order is
// identical.
func TestRunWindowsTwoShards(t *testing.T) {
	const lookahead = 100

	run := func(engCount int) [2][]uint64 {
		engs := make([]*Engine, engCount)
		for i := range engs {
			engs[i] = NewEngine()
		}
		// Each node records its own observed history: in sharded mode the
		// two nodes execute on different goroutines, so shared recording
		// would itself be a race — per-node slices mirror how real shard
		// state is owned.
		var got [2][]uint64
		h0, h1 := recHandler{&got[0]}, recHandler{&got[1]}

		// Node 0 lives on engine 0, node 1 on the last engine (the same
		// one when engCount == 1).
		clk0, clk1 := NewClock(1), NewClock(2)
		e0 := engs[0]
		e1 := engs[engCount-1]

		// Cross-node sends: produced during windows, drained at barriers.
		type xev struct {
			at   Time
			rank uint64
			arg  uint64
		}
		var inbox0, inbox1 []xev // inboxN feeds node N

		// Each node's handler records the event and volleys back to the
		// peer, one lookahead out, under its own clock. Like fabric's
		// boundary channels, every cross-engine push clamps the producing
		// engine's window to the arrival time plus the minimum crossing
		// latency — the producer-side guarantee that makes adaptively
		// widened windows safe against the volley bouncing back.
		var ping, pong Handler
		ping = handlerFunc(func(_ uint8, arg uint64) { // node 0
			got[0] = append(got[0], arg)
			if arg < 40 {
				at := e0.Now() + lookahead
				inbox1 = append(inbox1, xev{at, clk0.Next(), arg + 1})
				e0.LimitWindow(at + lookahead)
			}
		})
		pong = handlerFunc(func(_ uint8, arg uint64) { // node 1
			got[1] = append(got[1], arg)
			if arg < 40 {
				at := e1.Now() + lookahead
				inbox0 = append(inbox0, xev{at, clk1.Next(), arg + 1})
				e1.LimitWindow(at + lookahead)
			}
		})

		// Seed: the first volley plus local noise on both nodes.
		e0.ScheduleEventFrom(&clk0, 5, ping, 0, 0)
		for i := Time(1); i <= 10; i++ {
			e0.ScheduleEventFrom(&clk0, i*37, h0, 0, 1000+uint64(i))
			e1.ScheduleEventFrom(&clk1, i*53, h1, 0, 2000+uint64(i))
		}

		drainNode0 := func() {
			for _, x := range inbox0 {
				e0.ScheduleRanked(x.at, x.rank, ping, 0, x.arg)
			}
			inbox0 = inbox0[:0]
		}
		drainNode1 := func() {
			for _, x := range inbox1 {
				e1.ScheduleRanked(x.at, x.rank, pong, 0, x.arg)
			}
			inbox1 = inbox1[:0]
		}
		drain := func() {
			drainNode0()
			drainNode1()
		}

		RunWindows(WindowConfig{
			Engines:   engs,
			Lookahead: lookahead,
			Deadline:  1 << 20,
			Drain:     drain,
		})
		return got
	}

	serial := run(1)
	sharded := run(2)
	if len(serial[0])+len(serial[1]) < 50 {
		t.Fatalf("only %d events executed; ping-pong never ran", len(serial[0])+len(serial[1]))
	}
	for n := range serial {
		if len(serial[n]) != len(sharded[n]) {
			t.Fatalf("node %d event counts diverged: serial %d, sharded %d", n, len(serial[n]), len(sharded[n]))
		}
		for i := range serial[n] {
			if serial[n][i] != sharded[n][i] {
				t.Fatalf("node %d history diverged at %d: serial %d, sharded %d", n, i, serial[n][i], sharded[n][i])
			}
		}
	}
}

type handlerFunc func(kind uint8, arg uint64)

func (f handlerFunc) HandleEvent(kind uint8, arg uint64) { f(kind, arg) }

// TestRunWindowsDeadline: a windowed run cut short by the deadline
// advances every engine's clock to it, like RunUntil.
func TestRunWindowsDeadline(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var got []uint64
	h := recHandler{&got}
	a.ScheduleEvent(10, h, 0, 1)
	b.ScheduleEvent(500, h, 0, 2)
	stopped := RunWindows(WindowConfig{
		Engines:   []*Engine{a, b},
		Lookahead: 50,
		Deadline:  100,
	})
	if stopped {
		t.Fatal("run reported a Done stop without a Done hook")
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("executed %v, want just event 1", got)
	}
	if a.Now() != 100 || b.Now() != 100 {
		t.Fatalf("clocks at %d/%d, want deadline 100", a.Now(), b.Now())
	}
}

// TestRunWindowsDoneAtBarrier: Done is evaluated at barriers only, so
// every event of the window that satisfied it still executes — the
// property that makes the executed-event set shard-count-invariant.
func TestRunWindowsDoneAtBarrier(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	done := false
	fire := handlerFunc(func(_ uint8, arg uint64) { got = append(got, arg); done = true })
	e.ScheduleEvent(10, fire, 0, 1)
	e.ScheduleEvent(11, h, 0, 2)  // same window as 1: must still run
	e.ScheduleEvent(500, h, 0, 3) // next window: must not
	stopped := RunWindows(WindowConfig{
		Engines:   []*Engine{e},
		Lookahead: 50,
		Deadline:  1 << 20,
		Done:      func() bool { return done },
	})
	if !stopped {
		t.Fatal("Done stop not reported")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("executed %v, want [1 2]", got)
	}
}

// TestRunWindowsMaxDeadline: a Deadline of MaxTime must not wrap the
// window arithmetic. Before the saturating fix, `w = Deadline + 1`
// overflowed to the most negative Time once `t + lookahead` passed the
// deadline, turning every subsequent window empty and looping forever;
// events at (and near) MaxTime must execute and the run must terminate.
func TestRunWindowsMaxDeadline(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var got []uint64
	h := recHandler{&got}
	a.ScheduleEvent(10, h, 0, 1)
	a.ScheduleEvent(MaxTime-1, h, 0, 2)
	b.ScheduleEvent(MaxTime, h, 0, 3)
	stopped := RunWindows(WindowConfig{
		Engines:   []*Engine{a, b},
		Lookahead: 50,
		Deadline:  MaxTime,
	})
	if stopped {
		t.Fatal("run reported a Done stop without a Done hook")
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("executed %v, want [1 2 3]", got)
	}
	if a.Now() != MaxTime || b.Now() != MaxTime {
		t.Fatalf("clocks at %d/%d, want MaxTime", a.Now(), b.Now())
	}
}

// TestRunWindowsDoneClockAlignment: on the nil-Horizon Done exit path,
// every engine's clock must agree. Before the fix, only the drained and
// deadline paths called AdvanceTo, so a shard that executed nothing in
// the final window reported a stale Now.
func TestRunWindowsDoneClockAlignment(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	// Events 1 and 2 land in the same first window on different shard
	// goroutines, so the record is mutex-guarded (only the clocks are
	// asserted — cross-shard execution order within a window is free).
	var mu sync.Mutex
	var done bool
	record := handlerFunc(func(uint8, uint64) {})
	fire := handlerFunc(func(uint8, uint64) {
		mu.Lock()
		done = true
		mu.Unlock()
	})
	a.ScheduleEvent(40, fire, 0, 1)
	b.ScheduleEvent(5, record, 0, 2)      // b's clock would otherwise stall at 5
	b.ScheduleEvent(90_000, record, 0, 3) // never runs
	stopped := RunWindows(WindowConfig{
		Engines:   []*Engine{a, b},
		Lookahead: 50,
		Deadline:  1 << 20,
		Done:      func() bool { return done },
	})
	if !stopped {
		t.Fatal("Done stop not reported")
	}
	if a.Now() != b.Now() {
		t.Fatalf("clocks disagree on the Done path: %d vs %d", a.Now(), b.Now())
	}
	if a.Now() != 40 {
		t.Fatalf("clocks at %d, want the max shard clock 40", a.Now())
	}
}

// TestRunWindowsHorizon: with a Horizon hook, a Done stop clamps the
// deadline instead of returning immediately — the run continues through
// the window protocol to min(Deadline, Horizon()), executes everything
// due by then (regardless of which window Done happened to surface in),
// and lands every clock exactly on the final deadline. This is what
// makes the executed-event set invariant across lookahead widths, for
// any width up to the horizon's slack past the done condition (here the
// done event fires at 40 and the horizon is 150, so widths <= 110
// qualify; callers guarantee this by deriving the horizon as "done time
// plus the maximum window width in use", e.g. fabric.WindowSlack).
func TestRunWindowsHorizon(t *testing.T) {
	for _, lookahead := range []Duration{3, 50, 110} {
		a, b := NewEngine(), NewEngine()
		// Wide windows run both engines' events concurrently, so the
		// record is mutex-guarded and compared as a set: the invariant
		// is about WHICH events execute, not cross-shard append order.
		var mu sync.Mutex
		var got []uint64
		done := false
		record := handlerFunc(func(_ uint8, arg uint64) {
			mu.Lock()
			got = append(got, arg)
			mu.Unlock()
		})
		fire := handlerFunc(func(_ uint8, arg uint64) {
			mu.Lock()
			got = append(got, arg)
			done = true
			mu.Unlock()
		})
		a.ScheduleEvent(40, fire, 0, 1)
		b.ScheduleEvent(100, record, 0, 2) // inside the horizon: must run
		b.ScheduleEvent(200, record, 0, 3) // outside: must not
		stopped := RunWindows(WindowConfig{
			Engines:   []*Engine{a, b},
			Lookahead: lookahead,
			Deadline:  1 << 20,
			Done:      func() bool { return done },
			Horizon:   func() Time { return 150 },
		})
		if !stopped {
			t.Fatalf("lookahead %d: Done stop not reported", lookahead)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("lookahead %d: executed %v, want {1 2}", lookahead, got)
		}
		if a.Now() != 150 || b.Now() != 150 {
			t.Fatalf("lookahead %d: clocks at %d/%d, want horizon 150", lookahead, a.Now(), b.Now())
		}
	}
}

// TestRunWindowsShardPanic: a panic inside a shard's window must surface
// on the RunWindows caller as a ShardPanic instead of deadlocking the
// barrier (the panicking shard's ack never arrived before the fix). Both
// the coordinator-inline shard 0 and a worker-goroutine shard are
// exercised.
func TestRunWindowsShardPanic(t *testing.T) {
	for _, shard := range []int{0, 1} {
		a, b := NewEngine(), NewEngine()
		engs := []*Engine{a, b}
		var got []uint64
		h := recHandler{&got}
		boom := handlerFunc(func(uint8, uint64) { panic("boom") })
		engs[shard].ScheduleEvent(10, boom, 0, 0)
		engs[1-shard].ScheduleEvent(10, h, 0, 1)
		func() {
			defer func() {
				r := recover()
				sp, ok := r.(ShardPanic)
				if !ok {
					t.Fatalf("shard %d: recovered %v (%T), want ShardPanic", shard, r, r)
				}
				if sp.Shard != shard || sp.Value != "boom" || sp.Stack == "" {
					t.Fatalf("shard %d: ShardPanic = {Shard:%d Value:%v stack:%d bytes}",
						shard, sp.Shard, sp.Value, len(sp.Stack))
				}
			}()
			RunWindows(WindowConfig{
				Engines:   engs,
				Lookahead: 50,
				Deadline:  1 << 20,
			})
			t.Fatalf("shard %d: RunWindows returned instead of panicking", shard)
		}()
	}
}

// TestNextEventTimeCached: NextEventTime must stay correct through the
// cache's lifecycle — primed by RunWindow, lowered by pushes, invalidated
// by pops — since the window coordinator trusts it to size and dispatch
// windows.
func TestNextEventTimeCached(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := recHandler{&got}
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reported a next event")
	}
	e.ScheduleEvent(100, h, 0, 1)
	if at, ok := e.NextEventTime(); !ok || at != 100 {
		t.Fatalf("next = %d,%v, want 100", at, ok)
	}
	e.RunWindow(50) // executes nothing; primes the cache at 100
	if at, ok := e.NextEventTime(); !ok || at != 100 {
		t.Fatalf("next after empty window = %d,%v, want 100", at, ok)
	}
	e.ScheduleRanked(60, 1, h, 0, 2) // must lower the cached value
	if at, ok := e.NextEventTime(); !ok || at != 60 {
		t.Fatalf("next after lower push = %d,%v, want 60", at, ok)
	}
	e.RunWindow(70) // pops event 2; cache re-primed at 100
	if at, ok := e.NextEventTime(); !ok || at != 100 {
		t.Fatalf("next after window = %d,%v, want 100", at, ok)
	}
	e.RunWindow(200)
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained engine reported a next event")
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("executed %v, want [2 1]", got)
	}
}

// FuzzShardMerge is the differential fuzz target for cross-shard event
// merging: arbitrary byte streams decode into per-producer event streams
// plus a drain/pop schedule, driven through ScheduleRanked batches under
// the conservative-window constraint, and the observed pop order must
// equal a single sorted reference queue — the serial order. It is the
// shard-merge counterpart of FuzzEventOrder: that target pins one
// queue's internal order, this one pins that batched cross-engine
// insertion cannot perturb it.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(20))
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0}, uint8(1), uint8(0))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(8), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, nprod uint8, look uint8) {
		producers := int(nprod%8) + 1
		lookahead := Time(look) + 1

		// Decode per-producer streams: time deltas from the bytes, ranks
		// from one clock per producer (as one boundary channel's entries
		// would draw them). Per producer, times are nondecreasing and
		// ranks strictly increasing — the channel push invariant.
		type ev struct {
			at   Time
			rank uint64
		}
		streams := make([][]ev, producers)
		clks := make([]Clock, producers)
		for i := range clks {
			clks[i] = NewClock(uint64(i) + 1)
		}
		now := make([]Time, producers)
		for i := 0; i < len(data); i++ {
			p := int(data[i]) % producers
			var delta Time
			if i+1 < len(data) {
				delta = Time(data[i+1] % 64)
				i++
			}
			now[p] += delta
			streams[p] = append(streams[p], ev{at: now[p], rank: clks[p].Next()})
		}

		// Reference: stable sort of everything by (at, rank).
		var ref []ev
		for _, s := range streams {
			ref = append(ref, s...)
		}
		sort.SliceStable(ref, func(i, j int) bool {
			if ref[i].at != ref[j].at {
				return ref[i].at < ref[j].at
			}
			return ref[i].rank < ref[j].rank
		})
		if len(ref) == 0 {
			return
		}

		// Drive the consumer engine through windows: at each barrier,
		// drain every producer's events due before the window end, then
		// pop the window. This mirrors RunWindows + linkChan.drain under
		// the lookahead guarantee (an event due d exists in its channel
		// by the barrier before the window containing d).
		e := NewEngine()
		var got []uint64
		h := recHandler{&got}
		heads := make([]int, producers)
		for {
			// T = min over engine and stream heads.
			var (
				tmin Time
				have bool
			)
			if at, ok := e.NextEventTime(); ok {
				tmin, have = at, true
			}
			for p := range streams {
				if heads[p] < len(streams[p]) {
					if at := streams[p][heads[p]].at; !have || at < tmin {
						tmin, have = at, true
					}
				}
			}
			if !have {
				break
			}
			w := tmin + lookahead
			var batch []RankedEvent
			for p := range streams {
				batch = batch[:0]
				for heads[p] < len(streams[p]) && streams[p][heads[p]].at < w {
					x := streams[p][heads[p]]
					batch = append(batch, RankedEvent{At: x.at, Rank: x.rank, Arg: x.rank})
					heads[p]++
				}
				e.ScheduleRankedBatch(h, batch)
			}
			e.RunWindow(w)
		}
		if len(got) != len(ref) {
			t.Fatalf("popped %d events, reference has %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i].rank {
				t.Fatalf("merge order diverged at %d: got rank %#x, want %#x (at=%d)",
					i, got[i], ref[i].rank, ref[i].at)
			}
		}
	})
}

// TestRunWindowsAdaptiveCollapsesBarriers: a sparse workload — one shard
// holding events spaced ten lookaheads apart, the other idle until the
// end — must run in a handful of adaptively widened windows where fixed
// windows pay a barrier per gap. The executed work must be identical, and
// the stats must account for every event.
func TestRunWindowsAdaptiveCollapsesBarriers(t *testing.T) {
	const lookahead = 100
	run := func(fixed bool) (WindowStats, []uint64) {
		a, b := NewEngine(), NewEngine()
		var mu sync.Mutex
		var got []uint64
		record := handlerFunc(func(_ uint8, arg uint64) {
			mu.Lock()
			got = append(got, arg)
			mu.Unlock()
		})
		for i := 0; i <= 10; i++ {
			a.ScheduleEvent(Time(i)*10*lookahead, record, 0, uint64(i))
		}
		b.ScheduleEvent(100*lookahead, record, 0, 99)
		var stats WindowStats
		RunWindows(WindowConfig{
			Engines:      []*Engine{a, b},
			Lookahead:    lookahead,
			Deadline:     1 << 30,
			FixedWindows: fixed,
			Stats:        &stats,
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return stats, got
	}

	fixedStats, fixedGot := run(true)
	adaptStats, adaptGot := run(false)

	if len(fixedGot) != 12 || len(adaptGot) != 12 {
		t.Fatalf("executed %d fixed / %d adaptive events, want 12 each", len(fixedGot), len(adaptGot))
	}
	for i := range fixedGot {
		if fixedGot[i] != adaptGot[i] {
			t.Fatalf("executed sets diverge at %d: fixed %d, adaptive %d", i, fixedGot[i], adaptGot[i])
		}
	}
	// Fixed windows pay one barrier per spaced-out event; the adaptive
	// run must collapse the gaps (shard a's whole series fits in one
	// widened window bounded by shard b's event, plus the joint tail).
	if fixedStats.Barriers < 11 {
		t.Fatalf("fixed run took %d barriers, expected at least one per gap (11)", fixedStats.Barriers)
	}
	if adaptStats.Barriers*2 >= fixedStats.Barriers {
		t.Fatalf("adaptive run took %d barriers vs fixed %d — no meaningful collapse",
			adaptStats.Barriers, fixedStats.Barriers)
	}
	if adaptStats.WideWindows == 0 {
		t.Fatal("adaptive run reports zero widened windows")
	}
	if fixedStats.WideWindows != 0 {
		t.Fatalf("fixed run reports %d widened windows, want 0", fixedStats.WideWindows)
	}
	for _, st := range [2]WindowStats{fixedStats, adaptStats} {
		var ev, win uint64
		for _, sh := range st.Shards {
			ev += sh.Events
			win += sh.Windows
		}
		if ev != 12 {
			t.Fatalf("per-shard stats account for %d events, want 12", ev)
		}
		if win == 0 || win > 2*st.Barriers {
			t.Fatalf("windows run (%d) inconsistent with %d barriers on 2 shards", win, st.Barriers)
		}
	}
}

// TestRunWindowsWidenSelfStop: while a Done condition is armed, the
// extension is only granted through the Widen hook, and a hook that arms
// a self-stop at the done event keeps the executed set identical to the
// fixed-window run — the trailing event past the horizon must not leak
// in even though the widened window formally covered it.
func TestRunWindowsWidenSelfStop(t *testing.T) {
	const lookahead = 50
	run := func(fixed bool, widen func(int) bool, armed *bool) (bool, []uint64, Time) {
		a, b := NewEngine(), NewEngine()
		var mu sync.Mutex
		var got []uint64
		done := false
		finish := handlerFunc(func(_ uint8, arg uint64) {
			mu.Lock()
			got = append(got, arg)
			done = true
			mu.Unlock()
			if armed != nil && *armed {
				a.Stop()
			}
		})
		record := handlerFunc(func(_ uint8, arg uint64) {
			mu.Lock()
			got = append(got, arg)
			mu.Unlock()
		})
		a.ScheduleEvent(5, finish, 0, 1)
		a.ScheduleEvent(1000, record, 0, 2) // past the horizon: must never run
		b.ScheduleEvent(2000, record, 0, 3) // the second-minimum bound
		stopped := RunWindows(WindowConfig{
			Engines:      []*Engine{a, b},
			Lookahead:    lookahead,
			Deadline:     1 << 20,
			Done:         func() bool { return done },
			Horizon:      func() Time { return 5 + lookahead },
			Widen:        widen,
			FixedWindows: fixed,
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return stopped, got, a.Now()
	}

	check := func(name string, stopped bool, got []uint64, now Time) {
		t.Helper()
		if !stopped {
			t.Fatalf("%s: Done stop not reported", name)
		}
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("%s: executed %v, want just the done event [1]", name, got)
		}
		if now != 5+lookahead {
			t.Fatalf("%s: clock at %d, want horizon %d", name, now, 5+lookahead)
		}
	}

	stopped, got, now := run(true, nil, nil)
	check("fixed", stopped, got, now)

	// Adaptive without a Widen hook: no extension while Done is armed —
	// identical outcome.
	stopped, got, now = run(false, nil, nil)
	check("adaptive/no-hook", stopped, got, now)

	// Adaptive with a granting hook that arms the self-stop.
	armed := false
	widenCalls := 0
	stopped, got, now = run(false, func(shard int) bool {
		widenCalls++
		armed = true
		return true
	}, &armed)
	check("adaptive/widen", stopped, got, now)
	if widenCalls == 0 {
		t.Fatal("Widen hook was never consulted")
	}
}
