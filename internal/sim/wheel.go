package sim

import "math/bits"

// The engine's event queue is a hierarchical timing wheel. A binary heap
// pays O(log n) sift cost per push and pop against the whole pending
// population (measured ~2300 standing events in a loaded fabric, ~12
// levels of 56-byte swaps each way); the wheel pays O(1) bucket placement
// per push and a bitmap scan per clock advance, because discrete-event
// time lets events be bucketed by firing tick and only the slot at the
// cursor ever needs exact ordering.
//
// Geometry: wheelLevels levels of wheelSlots power-of-two buckets. One
// level-0 slot is one tick (2^wheelTickShift ps), and level 0 *slides*:
// any event within wheelSlots ticks of the cursor maps to slot
// tick mod wheelSlots, so the datapath's short-horizon events (packet
// serialization at ~200 ns, propagation at 2 µs ≈ 134 ticks) always place
// directly at level 0, never through a cascade. Each level above is
// window-aligned and covers wheelSlots× the span below it; an event lands
// at the lowest level whose current window (the aligned range of ticks
// sharing the cursor's upper bits) contains its tick, and events beyond
// the top level's window go to a far-future overflow heap that refills
// the wheels when the cursor rolls into their window. With a 16.4 ns tick
// the spans are ~4.2 µs (sliding) / 1.1 ms / 275 ms / 70 s:
// retransmission timers resolve at level 1, flow arrivals at levels 1–2,
// and the overflow heap is touched only by pathological schedules.
//
// Determinism: pop order is exactly the canonical (at, rank) key —
// bit-identical to the reference heap the wheel is differentially tested
// against. Three facts make this exact rather than approximate: (1) the
// frontier (`ready` plus the `late` heap) holds every pending event with
// tick <= cur, fully ordered by full key, so same-tick events and late
// arrivals interleave exactly; (2) wheels hold only ticks > cur, and the
// cursor visits occupied slots in strictly increasing tick order — the
// sliding level-0 scan goes ahead-then-wrapped, and an aligned cascade due
// at the block boundary merges its bucket into the same sliding slots
// before any wrapped slot drains; (3) a higher-level bucket's window
// start is pinned strictly above the cursor's index at that level, so a
// forward bitmap scan never skips an occupied bucket. TestWheelMatchesHeap
// and FuzzEventOrder drive the wheel and a reference heap side by side on
// randomized schedules to enforce this.
const (
	wheelTickShift = 14 // tick granularity: 2^14 ps ≈ 16.4 ns
	wheelLevelBits = 8
	wheelSlots     = 1 << wheelLevelBits
	wheelSlotMask  = wheelSlots - 1
	wheelLevels    = 4
	wheelSpanBits  = wheelLevels * wheelLevelBits // tick bits the wheels cover
)

// timingWheel is the hierarchical event queue. The zero value is ready for
// use.
type timingWheel struct {
	// cur is the cursor tick: ready holds every pending event with
	// tick <= cur, wheel buckets and the overflow heap everything after.
	cur  uint64
	size int

	// ready[head:] is the execution frontier, sorted ascending by
	// (at, rank): pop reads sequentially and a drained level-0 slot (whose
	// handful of events share one tick) replaces it as one sorted batch.
	// Consumed entries before head are not zeroed — the next drain
	// overwrites them, and the handlers they pin outlive the engine's
	// queue anyway (reset clears everything for the cross-run case).
	ready []event
	head  int

	// late holds stragglers: events scheduled at a tick the cursor has
	// already reached or passed (~0.4% of traffic in a loaded fabric).
	// They cannot join ready without a mid-run memmove, so they sit in a
	// small (at, rank) heap that pop/peek merge against the frontier; on
	// pathological all-same-tick schedules this degrades to exactly the
	// old global heap's O(log n), never worse.
	late eventHeap

	// bucket[lvl][idx] holds events whose tick maps to slot idx of level
	// lvl's current window; occ mirrors non-emptiness as a bitmap so the
	// cursor skips runs of empty slots in a few word reads.
	bucket [wheelLevels][wheelSlots][]event
	occ    [wheelLevels][wheelSlots / 64]uint64

	// spare[lvl] recycles drained bucket arrays. Slot indexes at the
	// upper levels are visited about once per run (a level-1 slot's
	// window recurs only every full level-1 rotation), so arrays pinned
	// per slot would re-grow from nothing at almost every visit — tens of
	// MB of doubling copies per run. Handing a drained array to the next
	// slot that activates instead caps the pool at the peak number of
	// concurrently occupied slots, and growth stops once the circulating
	// arrays reach the peak slot population.
	spare [wheelLevels][][]event

	// overflow holds events beyond the top level's window.
	overflow eventHeap
}

// tickOf maps an absolute time to its wheel tick.
func tickOf(at Time) uint64 { return uint64(at) >> wheelTickShift }

// eventBefore is the engine's total event order.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.rank < b.rank
}

// push enqueues ev.
func (w *timingWheel) push(ev event) {
	w.size++
	w.place(ev)
}

// pushBatch enqueues a batch of pre-ranked events for one handler in a
// single call: one size update and a tight placement loop, the bulk
// counterpart of push for barrier drains of cross-shard channels.
func (w *timingWheel) pushBatch(h Handler, evs []RankedEvent) {
	w.size += len(evs)
	for i := range evs {
		w.place(event{at: evs[i].At, rank: evs[i].Rank, h: h, kind: evs[i].Kind, arg: evs[i].Arg})
	}
}

// place routes ev to ready, a wheel bucket, or the overflow heap. Events
// at or before the cursor go to ready — that is what keeps late arrivals
// (scheduled mid-window after the cursor advanced past their tick) ahead
// of every wheel event, in exact (at, rank) order.
func (w *timingWheel) place(ev event) {
	t := tickOf(ev.at)
	if t <= w.cur {
		w.late.push(ev)
		return
	}
	lvl := 0
	var idx uint64
	if t-w.cur < wheelSlots {
		// Sliding level 0: any tick within wheelSlots of the cursor maps
		// to slot t mod wheelSlots, regardless of window alignment. This
		// is what keeps the datapath's short-horizon events (packet
		// serialization, propagation) out of the cascade path entirely —
		// with aligned windows, every event scheduled past the window
		// edge would detour through a level-1 bulk bucket.
		idx = t & wheelSlotMask
	} else {
		x := t ^ w.cur
		lvl = (bits.Len64(x) - 1) / wheelLevelBits
		if lvl >= wheelLevels {
			w.overflow.push(ev)
			return
		}
		idx = (t >> (lvl * wheelLevelBits)) & wheelSlotMask
	}
	b := w.bucket[lvl][idx]
	if b == nil {
		b = w.takeSpare(lvl)
	}
	w.bucket[lvl][idx] = append(b, ev)
	w.occ[lvl][idx>>6] |= 1 << (idx & 63)
}

// pop removes and returns the earliest pending event. Caller guarantees
// size > 0. Late events hold ticks at or before the cursor and wheel
// events ticks after it, so merging the two orderings is a single
// comparison — and the branch is free whenever late is empty.
func (w *timingWheel) pop() event {
	if w.head == len(w.ready) && len(w.late) == 0 {
		w.refill()
	}
	w.size--
	if len(w.late) > 0 &&
		(w.head == len(w.ready) || eventBefore(&w.late[0], &w.ready[w.head])) {
		return w.late.pop()
	}
	ev := w.ready[w.head]
	w.head++
	return ev
}

// peekAt returns the earliest pending event's firing time without
// removing it. Caller guarantees size > 0. Peeking may advance the
// cursor, which is safe: events scheduled afterwards at a tick the cursor
// already passed are placed into late, not a stale bucket.
func (w *timingWheel) peekAt() Time {
	if w.head == len(w.ready) && len(w.late) == 0 {
		w.refill()
	}
	if len(w.late) > 0 &&
		(w.head == len(w.ready) || eventBefore(&w.late[0], &w.ready[w.head])) {
		return w.late[0].at
	}
	return w.ready[w.head].at
}

// refill advances the cursor until an event is executable.
func (w *timingWheel) refill() {
	for w.head == len(w.ready) && len(w.late) == 0 {
		if !w.advanceOnce() {
			panic("sim: refill on an empty event queue")
		}
	}
}

// advanceOnce moves the cursor to the next occupied slot: draining a
// level-0 slot into ready, cascading a higher-level bucket one level
// down, or — when every wheel is empty — jumping to the overflow heap's
// window and refilling from it. Returns false when nothing is pending.
//
// Level 0 slides, so its scan has two parts: slots above the cursor's
// index hold ticks in the cursor's 256-tick block ("ahead"), wrapped
// slots hold ticks just across the next block boundary. A cascade due at
// an aligned boundary must win against a wrapped slot at or after that
// boundary — the cascaded bucket's events merge into the very same
// sliding slots — which is what the tb/ws comparison decides.
func (w *timingWheel) advanceOnce() bool {
	// Ahead part of sliding level 0: strictly increasing ticks up to the
	// next block boundary. Nothing at any higher level can precede these.
	if idx, ok := w.scan(0, w.cur&wheelSlotMask+1); ok {
		w.cur = w.cur&^wheelSlotMask | idx
		w.drainSlot(idx)
		return true
	}
	// Wrapped part: the earliest remaining level-0 tick, if any, lives at
	// boundary + idx.
	boundary := (w.cur &^ wheelSlotMask) + wheelSlots
	tb, okB := uint64(0), false
	if idx, ok := w.scan(0, 0); ok {
		tb, okB = boundary+idx, true
	}
	// The lowest level with an occupied bucket decides the next cascade;
	// its window start ws can only grow with the level, so the first hit
	// is the earliest. Cascade when it is due at or before the wrapped
	// slot (equal means the bucket's events share the slot's block and
	// must merge in before the slot drains).
	for lvl := 1; lvl < wheelLevels; lvl++ {
		shift := lvl * wheelLevelBits
		idx, ok := w.scan(lvl, w.cur>>shift&wheelSlotMask+1)
		if !ok {
			continue
		}
		ws := w.cur&^(1<<(shift+wheelLevelBits)-1) | idx<<shift
		if okB && tb < ws {
			break
		}
		w.cur = ws
		w.cascade(lvl, idx)
		w.drainCurSlot()
		return true
	}
	if okB {
		w.cur = tb
		w.drainSlot(tb & wheelSlotMask)
		return true
	}
	// Rollover: wheels are empty. Jump the cursor to the start of the
	// overflow minimum's top-level window and pull in every overflow
	// event that window now covers.
	if len(w.overflow) == 0 {
		return false
	}
	w.cur = tickOf(w.overflow[0].at) &^ (1<<wheelSpanBits - 1)
	for len(w.overflow) > 0 && tickOf(w.overflow[0].at)^w.cur < 1<<wheelSpanBits {
		w.place(w.overflow.pop())
	}
	w.drainCurSlot()
	return true
}

// drainCurSlot drains the level-0 slot at the cursor's own index if a
// prior placement left events there (tick == cur, possible only right
// after an aligned cursor jump); the forward scans would otherwise skip
// it.
func (w *timingWheel) drainCurSlot() {
	idx := w.cur & wheelSlotMask
	if w.occ[0][idx>>6]&(1<<(idx&63)) != 0 {
		b := w.take(0, idx)
		for i := range b {
			w.late.push(b[i])
		}
		w.giveBack(0, b)
	}
}

// drainSlot moves level-0 slot idx — the cursor's own tick — into ready
// as one sorted batch. The frontier is empty here (refill only advances
// when it is), so the batch replaces it wholesale. The slot keeps its
// backing array, and a warmed-up wheel never allocates.
func (w *timingWheel) drainSlot(idx uint64) {
	b := w.take(0, idx)
	w.ready = append(w.ready[:0], b...)
	w.head = 0
	w.giveBack(0, b)
	sortEvents(w.ready)
}

// cascade re-places every event of bucket (lvl, idx) one level down.
func (w *timingWheel) cascade(lvl int, idx uint64) {
	b := w.take(lvl, idx)
	for i := range b {
		w.place(b[i])
	}
	w.giveBack(lvl, b)
}

// take detaches bucket (lvl, idx) for draining and clears its occupancy.
func (w *timingWheel) take(lvl int, idx uint64) []event {
	w.occ[lvl][idx>>6] &^= 1 << (idx & 63)
	b := w.bucket[lvl][idx]
	w.bucket[lvl][idx] = nil
	return b
}

// takeSpare pops the largest-capacity spare array of a level. Largest
// matters: slot populations are bimodal (one bulk slot per window plus a
// scatter of timer slots), and a LIFO pool would keep handing a
// timer-sized array to the bulk slot, re-growing it through its doubling
// chain every window. Taking the max lets every circulating array ratchet
// up to the peak population once, after which growth stops for good. The
// pool holds at most the peak number of concurrently occupied slots
// (a few dozen), so the scan is trivial.
func (w *timingWheel) takeSpare(lvl int) []event {
	s := w.spare[lvl]
	n := len(s)
	if n == 0 {
		return nil
	}
	best := 0
	for i := 1; i < n; i++ {
		if cap(s[i]) > cap(s[best]) {
			best = i
		}
	}
	b := s[best]
	s[best] = s[n-1]
	s[n-1] = nil
	w.spare[lvl] = s[:n-1]
	return b
}

// giveBack returns a drained bucket array to the level's spare pool.
func (w *timingWheel) giveBack(lvl int, b []event) {
	if cap(b) > 0 {
		w.spare[lvl] = append(w.spare[lvl], b[:0])
	}
}

// scan returns the first occupied slot index >= from at the given level.
func (w *timingWheel) scan(lvl int, from uint64) (uint64, bool) {
	for from < wheelSlots {
		word := from >> 6
		if m := w.occ[lvl][word] &^ (1<<(from&63) - 1); m != 0 {
			return word<<6 | uint64(bits.TrailingZeros64(m)), true
		}
		from = (word + 1) << 6
	}
	return 0, false
}

// sortEvents orders a drained slot by (at, rank): insertion sort for the
// typical handful of events, in-place heapsort for pathological same-tick
// floods. Both are deterministic — (at, rank) is a total order, so the
// sorted sequence is unique regardless of algorithm.
func sortEvents(evs []event) {
	if len(evs) <= 32 {
		for i := 1; i < len(evs); i++ {
			ev := evs[i]
			j := i
			for j > 0 && eventBefore(&ev, &evs[j-1]) {
				evs[j] = evs[j-1]
				j--
			}
			evs[j] = ev
		}
		return
	}
	// Heapsort: build a max-heap, then repeatedly swap the max to the
	// shrinking tail.
	for i := len(evs)/2 - 1; i >= 0; i-- {
		siftDownMax(evs, i, len(evs))
	}
	for end := len(evs) - 1; end > 0; end-- {
		evs[0], evs[end] = evs[end], evs[0]
		siftDownMax(evs, 0, end)
	}
}

// siftDownMax restores the max-heap property for evs[:n] at root i.
func siftDownMax(evs []event, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && eventBefore(&evs[l], &evs[r]) {
			m = r
		}
		if !eventBefore(&evs[i], &evs[m]) {
			return
		}
		evs[i], evs[m] = evs[m], evs[i]
		i = m
	}
}

// reset empties the wheel while keeping every backing array warm, so a
// reused engine schedules without re-growing its buckets. Unlike the
// steady-state paths, reset zeroes stale entries up to each array's
// capacity: nothing scheduled in the previous run may keep a handler or
// closure alive across trials.
func (w *timingWheel) reset() {
	w.cur, w.size = 0, 0
	clearEvents(w.ready[:cap(w.ready)])
	w.ready, w.head = w.ready[:0], 0
	clearEvents(w.late)
	w.late = w.late[:0]
	clearEvents(w.overflow)
	w.overflow = w.overflow[:0]
	for lvl := range w.bucket {
		for idx := range w.bucket[lvl] {
			if b := w.bucket[lvl][idx]; cap(b) > 0 {
				clearEvents(b[:cap(b)])
				w.bucket[lvl][idx] = nil
				w.spare[lvl] = append(w.spare[lvl], b[:0])
			}
		}
		for _, b := range w.spare[lvl] {
			clearEvents(b[:cap(b)])
		}
		for i := range w.occ[lvl] {
			w.occ[lvl][i] = 0
		}
	}
}

// clearEvents zeroes a slice of events, dropping handler and closure
// references.
func clearEvents(evs []event) {
	for i := range evs {
		evs[i] = event{}
	}
}
