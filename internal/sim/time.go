// Package sim provides the discrete-event simulation engine underlying the
// IRN reproduction: an integer picosecond clock, a hierarchical
// timing-wheel event queue (see wheel.go), cancellable timers, and a
// deterministic random number generator.
//
// The engine is single-threaded by design: network simulation at packet
// granularity is dominated by event ordering, and a lock-free sequential
// queue is both faster and perfectly reproducible. Determinism is a hard
// requirement — every experiment in the paper harness is seeded, and equal
// seeds must yield byte-identical results; the wheel pops events in exact
// (time, scheduling-order) sequence, bit-identical to a priority heap.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation time in integer picoseconds.
//
// Picoseconds make all serialization arithmetic exact: one byte takes
// 200 ps at 40 Gbps, 800 ps at 10 Gbps and 80 ps at 100 Gbps. An int64
// covers ±106 days, far beyond any experiment horizon.
type Time int64

// Duration is a span of simulation time in integer picoseconds.
type Duration int64

// MaxTime is the largest representable simulation time. Callers use it as
// an "effectively unbounded" deadline; the window coordinator saturates
// its arithmetic against it instead of wrapping (see RunWindows).
const MaxTime Time = 1<<63 - 1

// Common durations, mirroring the time package but in picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds (for reporting only).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a time.Duration for human-readable printing.
func (t Time) Std() time.Duration { return time.Duration(t/1000) * time.Nanosecond }

// String renders the time with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%v", t.Std()) }

// Seconds converts d to floating-point seconds (for reporting only).
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration for human-readable printing.
func (d Duration) Std() time.Duration { return time.Duration(d/1000) * time.Nanosecond }

// String renders the duration with nanosecond precision.
func (d Duration) String() string { return fmt.Sprintf("%v", d.Std()) }

// Micros converts d to floating-point microseconds (for reporting only).
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis converts d to floating-point milliseconds (for reporting only).
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }
