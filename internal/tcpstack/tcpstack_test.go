package tcpstack

import (
	"testing"

	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

func runOverFabric(t *testing.T, p Params, pkts int,
	lossFn func(*packet.Packet) bool) (*Sender, *Receiver, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.LossInject = lossFn
	net := fabric.New(eng, topo.NewStar(2), cfg)

	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: pkts * p.MTU, Pkts: pkts}
	snd := NewSender(net.NIC(0), flow, p)
	var doneAt sim.Time
	rcv := NewReceiver(net.NIC(1), flow, p, doneFn(func(now sim.Time) { doneAt = now }))
	net.NIC(1).AttachSink(flow.ID, rcv)
	net.NIC(0).AttachSource(snd)

	eng.RunUntil(sim.Time(1 * sim.Second))
	return snd, rcv, doneAt
}

func TestSlowStartRampUp(t *testing.T) {
	p := DefaultParams(1000)
	snd, _, doneAt := runOverFabric(t, p, 500, nil)
	if doneAt == 0 {
		t.Fatal("did not complete")
	}
	if snd.Stats.Retransmits != 0 {
		t.Errorf("retransmits = %d on lossless path", snd.Stats.Retransmits)
	}
	// Slow start must have grown the window well beyond IW.
	if snd.Cwnd() < 50 {
		t.Errorf("cwnd = %v after 500 acked segments", snd.Cwnd())
	}
}

func TestSlowStartCostsTimeVersusLineRateStart(t *testing.T) {
	// The §4.6 effect: TCP pays slow-start round trips a line-rate
	// starting transport does not. A 100-packet transfer takes several
	// RTTs with IW=4.
	p := DefaultParams(1000)
	_, _, doneAt := runOverFabric(t, p, 100, nil)
	if doneAt == 0 {
		t.Fatal("did not complete")
	}
	// One RTT is ~8.5 µs here; line-rate transfer of 100 packets is
	// ~21 µs + RTT ≈ 26 µs. Slow start from IW=4 needs ~5 window
	// doublings, pushing the FCT well past the line-rate bound.
	minSlowStart := sim.Time(35 * sim.Microsecond)
	if doneAt < minSlowStart {
		t.Errorf("FCT %v too fast; slow start should cost several RTTs", sim.Duration(doneAt))
	}
}

func TestFastRetransmitOnDupAcks(t *testing.T) {
	p := DefaultParams(1000)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && pkt.PSN == 50 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd, _, doneAt := runOverFabric(t, p, 300, lossFn)
	if doneAt == 0 {
		t.Fatal("did not complete")
	}
	if snd.Stats.FastRetransmits == 0 {
		t.Error("expected a fast retransmit")
	}
	if snd.Stats.Timeouts != 0 {
		t.Errorf("timeouts = %d; dupacks should have repaired the loss", snd.Stats.Timeouts)
	}
	if snd.Stats.Retransmits > 5 {
		t.Errorf("SACK recovery retransmitted %d segments for one loss", snd.Stats.Retransmits)
	}
}

func TestTimeoutCollapsesToSlowStart(t *testing.T) {
	p := DefaultParams(1000)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		// Drop the tail: no dupacks possible.
		if pkt.Type == packet.TypeData && pkt.Last && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd, _, doneAt := runOverFabric(t, p, 50, lossFn)
	if doneAt == 0 {
		t.Fatal("did not complete")
	}
	if snd.Stats.Timeouts == 0 {
		t.Error("tail loss must recover via RTO")
	}
	// RTO is >= MinRTO (1 ms): the recovery is visible in the FCT.
	if doneAt < sim.Time(p.MinRTO) {
		t.Errorf("FCT %v below MinRTO", sim.Duration(doneAt))
	}
}

func TestCwndHalvesOnFastRetransmit(t *testing.T) {
	ep := &stubEP{eng: sim.NewEngine()}
	p := DefaultParams(1000)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 1000 * 1000, Pkts: 1000}
	s := NewSender(ep, flow, p)
	// Grow past slow start artificially.
	s.cwnd = 64
	s.ssthresh = 32
	// Fill the window.
	for {
		ready, _ := s.HasData(0)
		if !ready {
			break
		}
		s.NextPacket(0)
	}
	// Three duplicate ACKs (cum stays 0) with SACKs.
	for i := packet.PSN(1); i <= 3; i++ {
		a := packet.NewAck(1, 1, 0, 0)
		a.SackPSN = i
		s.HandleControl(a, 100)
	}
	if !s.inRecovery {
		t.Fatal("3 dupacks must enter fast recovery")
	}
	if s.Cwnd() > 33 {
		t.Errorf("cwnd = %v after fast retransmit, want ~inflight/2", s.Cwnd())
	}
	// The retransmission must be segment 0.
	pkt := s.NextPacket(200)
	if pkt == nil || pkt.PSN != 0 {
		t.Fatalf("fast retransmit = %v, want PSN 0", pkt)
	}
}

type stubEP struct {
	eng  *sim.Engine
	sent []*packet.Packet
}

func (e *stubEP) Now() sim.Time                  { return e.eng.Now() }
func (e *stubEP) Clock() *sim.Clock              { return nil }
func (e *stubEP) Pool() *packet.Pool             { return nil }
func (e *stubEP) Engine() *sim.Engine            { return e.eng }
func (e *stubEP) SendControl(pkt *packet.Packet) { e.sent = append(e.sent, pkt) }
func (e *stubEP) Wake()                          {}

func TestRTOEstimator(t *testing.T) {
	ep := &stubEP{eng: sim.NewEngine()}
	p := DefaultParams(1000)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10000, Pkts: 10}
	s := NewSender(ep, flow, p)
	if s.rtoDuration() != p.InitialRTO {
		t.Errorf("pre-sample RTO = %v, want InitialRTO", s.rtoDuration())
	}
	for i := 0; i < 20; i++ {
		s.updateRTT(100 * sim.Microsecond)
	}
	// Stable RTT of 100 µs → RTO clamps at MinRTO (1 ms).
	if s.rtoDuration() != p.MinRTO {
		t.Errorf("RTO = %v, want MinRTO clamp", s.rtoDuration())
	}
	s.backoff = 3
	if s.rtoDuration() != p.MinRTO<<3 {
		t.Errorf("backoff RTO = %v, want %v", s.rtoDuration(), p.MinRTO<<3)
	}
}

func TestReceiverSACKDupAcks(t *testing.T) {
	ep := &stubEP{eng: sim.NewEngine()}
	p := DefaultParams(1000)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 10 * 1000, Pkts: 10}
	r := NewReceiver(ep, flow, p, nil)
	r.HandleData(packet.NewData(1, 0, 1, 0, 1000, false), 10)
	r.HandleData(packet.NewData(1, 0, 1, 2, 1000, false), 20)
	r.HandleData(packet.NewData(1, 0, 1, 3, 1000, false), 30)
	if len(ep.sent) != 3 {
		t.Fatalf("acks = %d", len(ep.sent))
	}
	if ep.sent[0].CumAck != 1 || ep.sent[0].SackPSN != 0 {
		t.Errorf("in-order ack wrong: %+v", ep.sent[0])
	}
	if ep.sent[1].CumAck != 1 || ep.sent[1].SackPSN != 2 {
		t.Errorf("dup ack 1 wrong: %+v", ep.sent[1])
	}
	if ep.sent[2].CumAck != 1 || ep.sent[2].SackPSN != 3 {
		t.Errorf("dup ack 2 wrong: %+v", ep.sent[2])
	}
	// Filling the hole advances cumulatively.
	r.HandleData(packet.NewData(1, 0, 1, 1, 1000, false), 40)
	if got := ep.sent[3].CumAck; got != 4 {
		t.Errorf("cum after fill = %d, want 4", got)
	}
}

func TestHeavyRandomLossStillCompletes(t *testing.T) {
	p := DefaultParams(1000)
	rng := sim.NewRNG(5)
	lossFn := func(pkt *packet.Packet) bool {
		return pkt.Type == packet.TypeData && rng.Float64() < 0.03
	}
	snd, rcv, doneAt := runOverFabric(t, p, 800, lossFn)
	if doneAt == 0 {
		t.Fatalf("did not complete: recv %d/800 timeouts %d", rcv.Received(), snd.Stats.Timeouts)
	}
	if snd.Stats.Retransmits == 0 {
		t.Error("expected retransmissions")
	}
}

func TestMaxWindowBounds(t *testing.T) {
	p := DefaultParams(1000)
	p.MaxWindow = 8
	snd, _, doneAt := runOverFabric(t, p, 200, nil)
	if doneAt == 0 {
		t.Fatal("did not complete")
	}
	if snd.Cwnd() > 8 {
		t.Errorf("cwnd %v exceeded MaxWindow", snd.Cwnd())
	}
}

// doneFn adapts a closure to transport.Completer, dropping the flow.
func doneFn(f func(now sim.Time)) transport.Completer {
	return transport.CompleterFunc(func(_ *transport.Flow, now sim.Time) { f(now) })
}
