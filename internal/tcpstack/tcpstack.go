// Package tcpstack models the iWARP approach (§2.3, §4.6): the full TCP
// loss-recovery and congestion-control machinery implemented in the NIC.
// Where IRN strips TCP down to SACK recovery + a static BDP window, this
// stack keeps the parts IRN deliberately dropped: slow start, ssthresh,
// AIMD congestion avoidance, duplicate-ACK fast retransmit, NewReno-style
// fast recovery with a SACK scoreboard, and a dynamically computed RTO
// with exponential backoff (RFC 6298).
//
// Segments are modelled at MTU granularity (one PSN = one segment). The
// byte-stream reassembly and the RDMA-message translation layers that make
// real iWARP NICs expensive are modelled in the verbs package; here we
// reproduce the transport dynamics the paper's Figure 11 measures, where
// the difference from IRN is the congestion machinery — most visibly slow
// start, which costs iWARP 21% in average slowdown.
package tcpstack

import (
	"github.com/irnsim/irn/internal/bitmap"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// Params configures a TCP sender/receiver pair.
type Params struct {
	// MTU is the segment payload size.
	MTU int
	// InitialWindow is the slow-start initial congestion window in
	// segments (IW).
	InitialWindow int
	// MinRTO clamps the computed retransmission timeout from below.
	MinRTO sim.Duration
	// MaxRTO clamps it from above.
	MaxRTO sim.Duration
	// InitialRTO applies before the first RTT sample.
	InitialRTO sim.Duration
	// DupAckThreshold triggers fast retransmit (3).
	DupAckThreshold int
	// MaxWindow bounds the congestion window in segments (the receive
	// window / socket buffer); zero means unbounded.
	MaxWindow int
	// ECT marks segments ECN-capable (for DCTCP-style marking; unused in
	// the paper's iWARP comparison).
	ECT bool
}

// DefaultParams returns a conventional datacenter TCP configuration.
func DefaultParams(mtu int) Params {
	return Params{
		MTU:             mtu,
		InitialWindow:   4,
		MinRTO:          1 * sim.Millisecond,
		MaxRTO:          100 * sim.Millisecond,
		InitialRTO:      3 * sim.Millisecond,
		DupAckThreshold: 3,
	}
}

// SenderStats counts transport events.
type SenderStats struct {
	Sent            uint64
	Retransmits     uint64
	Timeouts        uint64
	FastRetransmits uint64
}

// Sender is the TCP sender. It implements transport.Source.
type Sender struct {
	ep   transport.Endpoint
	pool *packet.Pool
	flow *transport.Flow
	p    Params

	total   int
	cumAck  packet.PSN
	nextNew packet.PSN
	sacked  *bitmap.Bitmap

	// Congestion control.
	cwnd     float64
	ssthresh float64

	// Fast recovery.
	dupAcks     int
	inRecovery  bool
	recoverySeq packet.PSN
	retxNext    packet.PSN
	highSack    packet.PSN

	// RTO (RFC 6298).
	srtt, rttvar sim.Duration
	haveRTT      bool
	backoff      uint
	rto          *sim.Timer

	done bool

	Stats SenderStats
}

// NewSender builds a TCP sender for flow.
func NewSender(ep transport.Endpoint, flow *transport.Flow, p Params) *Sender {
	if flow.Pkts == 0 {
		flow.Pkts = transport.NumPackets(flow.Size, p.MTU)
	}
	if p.InitialWindow < 1 {
		p.InitialWindow = 1
	}
	if p.DupAckThreshold < 1 {
		p.DupAckThreshold = 3
	}
	s := &Sender{
		ep:       ep,
		pool:     ep.Pool(),
		flow:     flow,
		p:        p,
		total:    flow.Pkts,
		cwnd:     float64(p.InitialWindow),
		ssthresh: 1 << 30, // slow start until the first loss
	}
	s.sacked = bitmap.New(minInt(s.total, 1<<16) + 1)
	s.rto = sim.NewHandlerTimer(ep.Engine(), ep.Clock(), s, senderRTO)
	return s
}

// senderRTO is the Sender's only sim.Handler event kind: RTO expiry.
const senderRTO uint8 = 0

// HandleEvent implements sim.Handler (the retransmission timer).
func (s *Sender) HandleEvent(uint8, uint64) { s.onTimeout() }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Flow implements transport.Source.
func (s *Sender) Flow() *transport.Flow { return s.flow }

// Done implements transport.Source.
func (s *Sender) Done() bool { return s.done }

// Cwnd exposes the congestion window for tests.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// InSlowStart reports whether the sender is below ssthresh.
func (s *Sender) InSlowStart() bool { return s.cwnd < s.ssthresh }

func (s *Sender) window() int {
	w := int(s.cwnd)
	if w < 1 {
		w = 1
	}
	if s.p.MaxWindow > 0 && w > s.p.MaxWindow {
		w = s.p.MaxWindow
	}
	return w
}

func (s *Sender) inflight() int { return int(s.nextNew - s.cumAck) }

// peekRetx mirrors the SACK scoreboard logic: a segment is retransmitted
// if a higher segment has been SACKed, starting with the cumulative ack.
func (s *Sender) peekRetx() (packet.PSN, bool) {
	if !s.inRecovery {
		return 0, false
	}
	if s.retxNext <= s.cumAck {
		if s.cumAck < packet.PSN(s.total) {
			return s.cumAck, true
		}
		return 0, false
	}
	if s.highSack == 0 || s.retxNext >= s.highSack {
		return 0, false
	}
	off := s.sacked.NextZero(int(s.retxNext - s.cumAck))
	psn := s.cumAck + packet.PSN(off)
	if psn < s.highSack && psn < packet.PSN(s.total) {
		return psn, true
	}
	return 0, false
}

// HasData implements transport.Source.
func (s *Sender) HasData(sim.Time) (bool, sim.Time) {
	if s.done {
		return false, 0
	}
	if _, ok := s.peekRetx(); ok {
		return true, 0
	}
	if s.nextNew < packet.PSN(s.total) && s.inflight() < s.window() {
		return true, 0
	}
	return false, 0
}

// NextPacket implements transport.Source.
func (s *Sender) NextPacket(now sim.Time) *packet.Packet {
	var psn packet.PSN
	if p, ok := s.peekRetx(); ok {
		psn = p
		if s.retxNext <= s.cumAck {
			s.retxNext = s.cumAck + 1
		} else {
			s.retxNext = psn + 1
		}
		s.Stats.Retransmits++
	} else if s.nextNew < packet.PSN(s.total) && s.inflight() < s.window() {
		psn = s.nextNew
		s.nextNew++
	} else {
		return nil
	}
	payload := transport.PayloadOf(s.flow.Size, s.p.MTU, int(psn))
	pkt := s.pool.NewData(s.flow.ID, s.flow.Src, s.flow.Dst, psn, payload, int(psn) == s.total-1)
	pkt.ECT = s.p.ECT
	pkt.SentAt = now
	s.Stats.Sent++
	s.armRTO()
	return pkt
}

// rtoDuration computes SRTT + 4·RTTVAR with exponential backoff.
func (s *Sender) rtoDuration() sim.Duration {
	var base sim.Duration
	if !s.haveRTT {
		base = s.p.InitialRTO
	} else {
		base = s.srtt + 4*s.rttvar
	}
	if base < s.p.MinRTO {
		base = s.p.MinRTO
	}
	d := base << s.backoff
	if d > s.p.MaxRTO {
		d = s.p.MaxRTO
	}
	return d
}

func (s *Sender) armRTO() {
	if s.done {
		s.rto.Cancel()
		return
	}
	s.rto.Arm(s.rtoDuration())
}

// onTimeout is the RTO: collapse to slow start and retransmit from the
// cumulative ack.
func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	if s.cumAck >= s.nextNew {
		return
	}
	s.Stats.Timeouts++
	s.ssthresh = maxF(float64(s.inflight())/2, 2)
	s.cwnd = 1
	s.backoff++
	if s.backoff > 6 {
		s.backoff = 6
	}
	s.inRecovery = true
	s.recoverySeq = s.nextNew - 1
	s.retxNext = s.cumAck
	s.highSack = 0 // scoreboard unreliable after an RTO; rebuild from acks
	s.armRTO()
	s.ep.Wake()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// HandleControl implements transport.Source: TCP ACK processing with
// duplicate-ACK fast retransmit.
func (s *Sender) HandleControl(pkt *packet.Packet, now sim.Time) {
	if s.done || pkt.Type != packet.TypeAck {
		return
	}
	// SACK information rides along on duplicate ACKs.
	if pkt.SackPSN > 0 && pkt.SackPSN >= s.cumAck {
		if fresh, err := s.sacked.Set(pkt.SackPSN); err == nil && fresh {
			if pkt.SackPSN+1 > s.highSack {
				s.highSack = pkt.SackPSN + 1
			}
		}
	}

	switch {
	case pkt.CumAck > s.cumAck:
		newly := int(pkt.CumAck - s.cumAck)
		s.sacked.AdvanceTo(pkt.CumAck)
		s.cumAck = pkt.CumAck
		if s.retxNext < s.cumAck {
			s.retxNext = s.cumAck
		}
		s.dupAcks = 0
		s.backoff = 0
		if pkt.AckedSentAt > 0 {
			s.updateRTT(now.Sub(pkt.AckedSentAt))
		}
		if s.inRecovery {
			if s.cumAck > s.recoverySeq {
				s.inRecovery = false
				s.cwnd = s.ssthresh // deflate to ssthresh on exit
			}
		} else {
			s.growWindow(newly)
		}
		s.armRTO()

	case pkt.CumAck == s.cumAck && s.cumAck < packet.PSN(s.total):
		s.dupAcks++
		if !s.inRecovery && s.dupAcks >= s.p.DupAckThreshold {
			// Fast retransmit + fast recovery.
			s.Stats.FastRetransmits++
			s.ssthresh = maxF(float64(s.inflight())/2, 2)
			s.cwnd = s.ssthresh
			s.inRecovery = true
			s.recoverySeq = s.nextNew - 1
			s.retxNext = s.cumAck
		}
	}

	if s.cumAck >= packet.PSN(s.total) {
		s.done = true
		s.rto.Cancel()
	}
	s.ep.Wake()
}

// growWindow applies slow start or congestion avoidance.
func (s *Sender) growWindow(newly int) {
	for i := 0; i < newly; i++ {
		if s.cwnd < s.ssthresh {
			s.cwnd++
		} else {
			s.cwnd += 1 / s.cwnd
		}
	}
	if s.p.MaxWindow > 0 && s.cwnd > float64(s.p.MaxWindow) {
		s.cwnd = float64(s.p.MaxWindow)
	}
}

// updateRTT is the RFC 6298 estimator.
func (s *Sender) updateRTT(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if !s.haveRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.haveRTT = true
		return
	}
	d := s.srtt - rtt
	if d < 0 {
		d = -d
	}
	s.rttvar = (3*s.rttvar + d) / 4
	s.srtt = (7*s.srtt + rtt) / 8
}

// Receiver is the TCP receiver: it buffers out-of-order segments and acks
// every arrival — cumulative ACKs for in-order data, duplicate ACKs
// carrying SACK information for gaps. It implements transport.Sink.
type Receiver struct {
	ep   transport.Endpoint
	pool *packet.Pool
	flow *transport.Flow
	p    Params

	expected packet.PSN
	rcv      *bitmap.Bitmap
	received int
	total    int

	done transport.Completer

	// Stats.
	Acks, DupAcks uint64
}

// NewReceiver builds a TCP receiver.
func NewReceiver(ep transport.Endpoint, flow *transport.Flow, p Params, done transport.Completer) *Receiver {
	if flow.Pkts == 0 {
		flow.Pkts = transport.NumPackets(flow.Size, p.MTU)
	}
	r := &Receiver{
		ep:    ep,
		pool:  ep.Pool(),
		flow:  flow,
		p:     p,
		total: flow.Pkts,
		done:  done,
	}
	r.rcv = bitmap.New(minInt(r.total, 1<<16) + 1)
	return r
}

// Received reports distinct segments received.
func (r *Receiver) Received() int { return r.received }

// HandleData implements transport.Sink.
func (r *Receiver) HandleData(pkt *packet.Packet, now sim.Time) {
	switch {
	case pkt.PSN < r.expected:
		r.ack(pkt, 0) // duplicate data: re-ack current position

	case pkt.PSN == r.expected:
		if _, err := r.rcv.Set(pkt.PSN); err != nil {
			r.rcv.Reset(pkt.PSN)
			r.rcv.Set(pkt.PSN)
		}
		n := r.rcv.LeadingOnes()
		r.rcv.Advance(n)
		r.expected += packet.PSN(n)
		r.received++
		r.ack(pkt, 0)
		r.maybeComplete(now)

	default:
		fresh, err := r.rcv.Set(pkt.PSN)
		if err != nil {
			// Outside the reassembly window: drop; the sender will
			// retransmit once the window drains.
			return
		}
		if fresh {
			r.received++
		}
		r.DupAcks++
		r.ack(pkt, pkt.PSN) // duplicate ACK with SACK info
		r.maybeComplete(now)
	}
}

// ack emits a cumulative ACK; sack != 0 marks it as a duplicate ACK
// carrying selective-acknowledgement information.
func (r *Receiver) ack(trigger *packet.Packet, sack packet.PSN) {
	a := r.pool.NewAck(r.flow.ID, r.flow.Dst, r.flow.Src, r.expected)
	a.SackPSN = sack
	a.AckedSentAt = trigger.SentAt
	a.ECNEcho = trigger.CE
	r.Acks++
	r.ep.SendControl(a)
}

func (r *Receiver) maybeComplete(now sim.Time) {
	if r.flow.Finished || r.received < r.total {
		return
	}
	r.flow.Finished = true
	r.flow.Finish = now
	if r.done != nil {
		r.done.FlowDone(r.flow, now)
	}
}
