// Package packet defines the simulation's wire model: data packets,
// acknowledgements (cumulative ACKs and IRN NACK/SACKs), DCQCN congestion
// notification packets, and PFC pause/resume frames, together with the
// RoCEv2/IRN header layouts (BTH, RETH, AETH and the IRN extensions) and
// their binary encodings.
//
// The event-driven fabric passes *Packet values around without
// serialization for speed; the verbs layer and the hardware model encode
// and decode the real byte layouts to validate header arithmetic.
package packet

import (
	"fmt"

	"github.com/irnsim/irn/internal/sim"
)

// NodeID identifies a host or switch in the topology.
type NodeID int32

// FlowID uniquely identifies a flow (one message transfer between a
// source/destination queue pair).
type FlowID uint64

// PSN is a 24-bit packet sequence number as used by the RoCE transport.
// We keep it in a uint32 and mask to 24 bits only at the wire-encoding
// boundary; inside the simulator sequence numbers are monotonically
// increasing so window arithmetic never wraps.
type PSN = uint32

// Type discriminates simulation packets.
type Type uint8

// Packet types.
const (
	TypeData   Type = iota // transport payload segment
	TypeAck                // cumulative acknowledgement
	TypeNack               // IRN NACK (cumulative + SACK) or RoCE NACK (expected PSN)
	TypeCNP                // DCQCN congestion notification packet
	TypePause              // PFC X-OFF frame (link-local)
	TypeResume             // PFC X-ON frame (link-local)
)

// String implements fmt.Stringer for packet types.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeAck:
		return "ACK"
	case TypeNack:
		return "NACK"
	case TypeCNP:
		return "CNP"
	case TypePause:
		return "PAUSE"
	case TypeResume:
		return "RESUME"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Wire sizes in bytes. A RoCEv2 data packet carries Ethernet (18 including
// FCS), IPv4 (20), UDP (8), BTH (12) and ICRC (4) around the payload.
// Control packets occupy a minimum Ethernet frame.
const (
	EthOverhead  = 18
	IPv4Header   = 20
	UDPHeader    = 8
	BTHSize      = 12
	ICRCSize     = 4
	RETHSize     = 16 // remote memory address (8) + rkey (4) + length (4)
	AETHSize     = 4
	IRNExtSize   = 6  // recv_WQE_SN (3) + relative offset (3), §5.3.2
	ControlFrame = 64 // ACK/NACK/CNP/PFC minimum frame on the wire

	// DataHeader is the per-packet overhead of a standard RoCEv2 data
	// packet without IRN extensions.
	DataHeader = EthOverhead + IPv4Header + UDPHeader + BTHSize + ICRCSize

	// DefaultMTU is the RDMA payload MTU the paper assumes (1KB).
	DefaultMTU = 1000
)

// Packet is a unit of transmission in the fabric. One struct covers all
// packet types; unused fields are zero. Packets are obtained from a
// per-engine Pool at transmission and returned to it where they die
// (delivery at the destination NIC, a switch drop); they are never mutated
// after send, except for the CE (ECN congestion-experienced) bit which
// switches set in flight.
type Packet struct {
	Type Type
	Flow FlowID
	Src  NodeID // originating host
	Dst  NodeID // destination host

	// PSN is the packet sequence number for data packets, or for ACK
	// family packets the PSN being (n)acked (see CumAck/SackPSN).
	PSN PSN

	// Payload is the number of payload bytes carried (data packets).
	Payload int
	// Wire is the total size on the wire in bytes, including all
	// headers; this is what consumes link capacity and buffer space.
	Wire int

	// Last marks the final packet of a message.
	Last bool

	// CumAck is the receiver's expected sequence number (cumulative
	// acknowledgement) carried by ACK and NACK packets.
	CumAck PSN
	// SackPSN is the out-of-order PSN that triggered an IRN NACK
	// (the simplified selective acknowledgement of §3.1).
	SackPSN PSN

	// ECN bits: ECT is set by senders whose congestion control
	// understands marking; CE is set by a switch when the packet
	// experienced congestion. The receiver echoes CE via CNPs (DCQCN)
	// or the ECE flag on ACKs (DCTCP).
	ECT bool
	CE  bool
	// ECNEcho is set on ACK packets to echo a CE-marked data packet
	// back to the sender (window-based ECN schemes).
	ECNEcho bool

	// SentAt is the transmission timestamp echoed back in ACKs so the
	// sender can compute RTTs (Timely, dynamic RTO).
	SentAt sim.Time
	// AckedSentAt echoes the SentAt of the packet being acknowledged.
	AckedSentAt sim.Time

	// Hash is the ECMP flow hash, computed once at the source NIC.
	Hash uint32

	// PauseClass is reserved for PFC frames; this model pauses the
	// whole link (a single priority class), as does the paper.
	PauseClass uint8

	// Verbs optionally carries a verbs-layer packet (*verbs.VPacket)
	// through the fabric, so the RDMA semantics layer can run end-to-end
	// over the simulated network. The referenced value is owned by the
	// sending QP and is immutable after construction; receivers must
	// extract the pointer before returning (the NIC releases the fabric
	// packet — clearing this field — as soon as the handler returns).
	Verbs any

	// pooled marks a packet currently sitting in a Pool's free list; it
	// exists only to catch lifecycle bugs (double release, use after
	// release via a stale constructor) deterministically instead of as
	// silent state corruption.
	pooled bool
}

// IsControl reports whether the packet is a transport control packet
// (ACK/NACK/CNP). PFC frames are link-local and never routed.
func (p *Packet) IsControl() bool {
	return p.Type == TypeAck || p.Type == TypeNack || p.Type == TypeCNP
}

// String renders a compact human-readable description for debugging.
func (p *Packet) String() string {
	switch p.Type {
	case TypeData:
		last := ""
		if p.Last {
			last = " last"
		}
		return fmt.Sprintf("DATA flow=%d psn=%d payload=%d%s", p.Flow, p.PSN, p.Payload, last)
	case TypeAck:
		return fmt.Sprintf("ACK flow=%d cum=%d", p.Flow, p.CumAck)
	case TypeNack:
		return fmt.Sprintf("NACK flow=%d cum=%d sack=%d", p.Flow, p.CumAck, p.SackPSN)
	case TypeCNP:
		return fmt.Sprintf("CNP flow=%d", p.Flow)
	default:
		return p.Type.String()
	}
}

// Pool is a free-list of Packets owned by one simulation engine. Every
// constructor (NewData/NewAck/NewNack/NewCNP) draws from it and Release
// returns dead packets to it, so a warmed-up simulation allocates no
// packets at all.
//
// The pool is deliberately NOT a sync.Pool: the simulator is
// single-threaded per engine (the fleet runner shards whole scenarios, one
// engine each, across workers), and a plain LIFO slice keeps both the
// reuse order and the resulting pointer graph fully deterministic, which
// the serial ≡ parallel bit-identical-results invariant depends on.
// sync.Pool's per-P caches and GC-driven eviction would make reuse order
// scheduler-dependent and defeat the determinism tests.
//
// All methods are nil-receiver safe: a nil *Pool degrades to plain heap
// allocation with Release as a no-op, which is what the package-level
// constructors (unit tests, microbenchmarks, the verbs examples) use.
type Pool struct {
	free []*Packet

	// Stats.
	Allocs   uint64 // packets newly heap-allocated
	Reuses   uint64 // packets served from the free list
	Releases uint64 // packets returned to the free list
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// get returns a zeroed packet, reusing a released one when possible.
func (p *Pool) get() *Packet {
	if p == nil {
		return &Packet{}
	}
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Reuses++
		pkt.pooled = false
		return pkt
	}
	p.Allocs++
	return &Packet{}
}

// Release returns a dead packet to the free list. Call it exactly once,
// at the point the packet leaves the simulation: delivery to the
// destination host's transport, or a drop at a switch. Releasing the same
// packet twice panics — the aliasing it would create corrupts simulation
// state in ways that are far harder to debug than a crash. Release on a
// nil pool (or of a nil packet) is a no-op, so unpooled packets from the
// package-level constructors may flow through the same code paths.
func (p *Pool) Release(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	if pkt.pooled {
		panic("packet: double release into pool")
	}
	*pkt = Packet{pooled: true}
	p.free = append(p.free, pkt)
	p.Releases++
}

// FreeLen reports how many packets sit in the free list (diagnostics).
func (p *Pool) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// ResetStats zeroes the pool's counters for a new run while keeping the
// free list warm: the zero-rebuild trial path reuses one pool per worker,
// so packets released in one trial are served — without heap allocation —
// to the next. Packets still checked out when the previous run stopped
// (in-flight at the deadline) are simply abandoned to the GC; they were
// never released, so reuse order stays deterministic. Counters restart so
// Live reflects the current run alone. Nil-safe.
func (p *Pool) ResetStats() {
	if p == nil {
		return
	}
	p.Allocs, p.Reuses, p.Releases = 0, 0, 0
}

// Live reports the packets currently checked out of the pool: every get
// (fresh or reused) minus every release since the last ResetStats. For a
// pool used by a single run from empty this equals Allocs - FreeLen();
// unlike that formula it stays correct when the free list carries warm
// packets from a previous trial. Nil-safe.
func (p *Pool) Live() int {
	if p == nil {
		return 0
	}
	return int(p.Allocs + p.Reuses - p.Releases)
}

// NewData builds a data packet with standard RoCEv2 overheads.
func (p *Pool) NewData(flow FlowID, src, dst NodeID, psn PSN, payload int, last bool) *Packet {
	pkt := p.get()
	*pkt = Packet{
		Type:    TypeData,
		Flow:    flow,
		Src:     src,
		Dst:     dst,
		PSN:     psn,
		Payload: payload,
		Wire:    payload + DataHeader,
		Last:    last,
	}
	return pkt
}

// NewAck builds a cumulative ACK.
func (p *Pool) NewAck(flow FlowID, src, dst NodeID, cum PSN) *Packet {
	pkt := p.get()
	*pkt = Packet{
		Type:   TypeAck,
		Flow:   flow,
		Src:    src,
		Dst:    dst,
		CumAck: cum,
		Wire:   ControlFrame,
	}
	return pkt
}

// NewNack builds an IRN NACK carrying both the cumulative acknowledgement
// and the PSN of the out-of-order arrival that triggered it.
func (p *Pool) NewNack(flow FlowID, src, dst NodeID, cum, sack PSN) *Packet {
	pkt := p.get()
	*pkt = Packet{
		Type:    TypeNack,
		Flow:    flow,
		Src:     src,
		Dst:     dst,
		CumAck:  cum,
		SackPSN: sack,
		Wire:    ControlFrame,
	}
	return pkt
}

// NewCNP builds a DCQCN congestion notification packet.
func (p *Pool) NewCNP(flow FlowID, src, dst NodeID) *Packet {
	pkt := p.get()
	*pkt = Packet{Type: TypeCNP, Flow: flow, Src: src, Dst: dst, Wire: ControlFrame}
	return pkt
}

// nilPool backs the package-level constructors: plain heap allocation.
var nilPool *Pool

// NewData builds an unpooled data packet with standard RoCEv2 overheads.
func NewData(flow FlowID, src, dst NodeID, psn PSN, payload int, last bool) *Packet {
	return nilPool.NewData(flow, src, dst, psn, payload, last)
}

// NewAck builds an unpooled cumulative ACK.
func NewAck(flow FlowID, src, dst NodeID, cum PSN) *Packet {
	return nilPool.NewAck(flow, src, dst, cum)
}

// NewNack builds an unpooled IRN NACK carrying both the cumulative
// acknowledgement and the PSN of the out-of-order arrival that triggered
// it.
func NewNack(flow FlowID, src, dst NodeID, cum, sack PSN) *Packet {
	return nilPool.NewNack(flow, src, dst, cum, sack)
}

// NewCNP builds an unpooled DCQCN congestion notification packet.
func NewCNP(flow FlowID, src, dst NodeID) *Packet {
	return nilPool.NewCNP(flow, src, dst)
}
