package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDataWireSize(t *testing.T) {
	p := NewData(1, 2, 3, 7, 1000, true)
	if p.Wire != 1000+DataHeader {
		t.Errorf("Wire = %d, want %d", p.Wire, 1000+DataHeader)
	}
	if !p.Last || p.PSN != 7 || p.Type != TypeData {
		t.Errorf("fields wrong: %+v", p)
	}
	if p.IsControl() {
		t.Error("data packet must not be control")
	}
}

func TestControlPacketSizes(t *testing.T) {
	ack := NewAck(1, 2, 3, 10)
	nack := NewNack(1, 2, 3, 10, 15)
	cnp := NewCNP(1, 2, 3)
	for _, p := range []*Packet{ack, nack, cnp} {
		if p.Wire != ControlFrame {
			t.Errorf("%v Wire = %d, want %d", p.Type, p.Wire, ControlFrame)
		}
		if !p.IsControl() {
			t.Errorf("%v should be control", p.Type)
		}
	}
	if nack.CumAck != 10 || nack.SackPSN != 15 {
		t.Errorf("NACK fields: %+v", nack)
	}
}

func TestPacketString(t *testing.T) {
	cases := []struct {
		p    *Packet
		want string
	}{
		{NewData(1, 2, 3, 7, 100, false), "DATA"},
		{NewData(1, 2, 3, 7, 100, true), "last"},
		{NewAck(1, 2, 3, 9), "ACK"},
		{NewNack(1, 2, 3, 9, 12), "sack=12"},
		{NewCNP(1, 2, 3), "CNP"},
	}
	for _, c := range cases {
		if !strings.Contains(c.p.String(), c.want) {
			t.Errorf("String() = %q, want substring %q", c.p.String(), c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeData.String() != "DATA" || TypePause.String() != "PAUSE" {
		t.Error("Type.String broken")
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Error("unknown type should include numeric value")
	}
}

func TestBTHRoundTrip(t *testing.T) {
	h := BTH{
		Opcode: OpWriteFirst,
		SE:     true,
		AckReq: true,
		PadCnt: 2,
		PKey:   0xffff,
		DestQP: 0x123456,
		PSN:    0xabcdef,
		HdrVer: 1,
	}
	b := h.Marshal(nil)
	if len(b) != BTHSize {
		t.Fatalf("marshalled size %d, want %d", len(b), BTHSize)
	}
	got, err := UnmarshalBTH(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestBTHPSNMasked(t *testing.T) {
	h := BTH{Opcode: OpSendOnly, PSN: 0x1abcdef} // 25 bits set
	got, err := UnmarshalBTH(h.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.PSN != 0xabcdef {
		t.Errorf("PSN = %#x, want 24-bit masked %#x", got.PSN, 0xabcdef)
	}
}

func TestBTHShort(t *testing.T) {
	if _, err := UnmarshalBTH(make([]byte, BTHSize-1)); err == nil {
		t.Error("expected error on short buffer")
	}
}

func TestRETHRoundTrip(t *testing.T) {
	h := RETH{VA: 0xdeadbeefcafe0123, RKey: 0x11223344, DMALen: 1 << 20}
	b := h.Marshal(nil)
	if len(b) != RETHSize {
		t.Fatalf("size %d", len(b))
	}
	got, err := UnmarshalRETH(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v want %+v", got, h)
	}
	if _, err := UnmarshalRETH(b[:RETHSize-1]); err == nil {
		t.Error("expected short-buffer error")
	}
}

func TestAETHRoundTrip(t *testing.T) {
	h := AETH{Syndrome: SyndromeNack, MSN: 0x00ff77}
	got, err := UnmarshalAETH(h.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v want %+v", got, h)
	}
	if _, err := UnmarshalAETH(nil); err == nil {
		t.Error("expected short-buffer error")
	}
}

func TestIRNExtRoundTrip(t *testing.T) {
	h := IRNExt{WQESeq: 0x0a0b0c, RelOffset: 0x112233}
	b := h.Marshal(nil)
	if len(b) != IRNExtSize {
		t.Fatalf("size %d", len(b))
	}
	got, err := UnmarshalIRNExt(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v want %+v", got, h)
	}
	if _, err := UnmarshalIRNExt(b[:2]); err == nil {
		t.Error("expected short-buffer error")
	}
}

func TestBTHRoundTripProperty(t *testing.T) {
	f := func(op uint8, se, ackReq bool, pad uint8, pkey uint16, qp, psn uint32) bool {
		h := BTH{
			Opcode: Opcode(op),
			SE:     se,
			AckReq: ackReq,
			PadCnt: pad & 0x3,
			PKey:   pkey,
			DestQP: qp & 0xffffff,
			PSN:    psn & 0xffffff,
		}
		got, err := UnmarshalBTH(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIRNExtRoundTripProperty(t *testing.T) {
	f := func(wqe, off uint32) bool {
		h := IRNExt{WQESeq: wqe & 0xffffff, RelOffset: off & 0xffffff}
		got, err := UnmarshalIRNExt(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpcodeClassification(t *testing.T) {
	cases := []struct {
		op                Opcode
		first, last, only bool
		imm               bool
	}{
		{OpSendFirst, true, false, false, false},
		{OpSendMiddle, false, false, false, false},
		{OpSendLast, false, true, false, false},
		{OpSendLastImm, false, true, false, true},
		{OpSendOnly, false, true, true, false},
		{OpSendOnlyImm, false, true, true, true},
		{OpWriteFirst, true, false, false, false},
		{OpWriteLastImm, false, true, false, true},
		{OpWriteOnlyImm, false, true, true, true},
		{OpReadRespFirst, true, false, false, false},
		{OpReadRespOnly, false, true, true, false},
		{OpReadRequest, false, false, false, false},
		{OpAcknowledge, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsFirst() != c.first {
			t.Errorf("%v IsFirst = %v", c.op, c.op.IsFirst())
		}
		if c.op.IsLast() != c.last {
			t.Errorf("%v IsLast = %v", c.op, c.op.IsLast())
		}
		if c.op.IsOnly() != c.only {
			t.Errorf("%v IsOnly = %v", c.op, c.op.IsOnly())
		}
		if c.op.HasImmediate() != c.imm {
			t.Errorf("%v HasImmediate = %v", c.op, c.op.HasImmediate())
		}
	}
}

func TestOpcodeString(t *testing.T) {
	if OpReadNack.String() != "READ_NACK" {
		t.Errorf("OpReadNack = %q", OpReadNack.String())
	}
	if !strings.Contains(Opcode(0x3f).String(), "0x3f") {
		t.Errorf("unknown opcode string: %q", Opcode(0x3f).String())
	}
}
