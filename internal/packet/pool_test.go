package packet

import "testing"

// TestPoolRoundTripZeroAllocs is the allocation-regression guard for the
// pooled packet lifecycle: once the free list is warm, a full
// construct → release round trip (one data packet and its ACK, the
// steady-state send/receive pattern) allocates nothing.
func TestPoolRoundTripZeroAllocs(t *testing.T) {
	p := NewPool()

	// Warm the free list and its backing array.
	warm := []*Packet{p.NewData(1, 0, 1, 0, 1000, false), p.NewAck(1, 1, 0, 1)}
	for _, pkt := range warm {
		p.Release(pkt)
	}

	allocs := testing.AllocsPerRun(200, func() {
		d := p.NewData(1, 0, 1, 7, 1000, false)
		a := p.NewAck(1, 1, 0, 8)
		p.Release(d)
		p.Release(a)
	})
	if allocs != 0 {
		t.Fatalf("pooled send/receive round trip allocates %.1f/op, want 0", allocs)
	}
	if p.Allocs != 2 {
		t.Fatalf("pool heap-allocated %d packets, want only the 2 warm-up ones", p.Allocs)
	}
}

// TestPoolReuseIsClean: a recycled packet must carry no state from its
// previous life.
func TestPoolReuseIsClean(t *testing.T) {
	p := NewPool()
	d := p.NewData(9, 3, 4, 100, 1000, true)
	d.CE = true
	d.ECT = true
	d.SentAt = 12345
	p.Release(d)

	a := p.NewAck(2, 4, 3, 5)
	if a != d {
		t.Fatal("expected LIFO reuse of the released packet")
	}
	if a.Type != TypeAck || a.CE || a.ECT || a.SentAt != 0 || a.PSN != 0 || a.Payload != 0 || a.Last {
		t.Fatalf("recycled packet carries stale state: %+v", a)
	}
	if a.CumAck != 5 || a.Flow != 2 || a.Wire != ControlFrame {
		t.Fatalf("recycled packet misconstructed: %+v", a)
	}
}

// TestPoolDoubleReleasePanics: releasing the same packet twice must fail
// loudly rather than corrupt the free list.
func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	d := p.NewData(1, 0, 1, 0, 100, false)
	p.Release(d)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(d)
}

// TestNilPoolDegradesGracefully: package-level constructors and nil pools
// allocate plainly; Release is a no-op.
func TestNilPoolDegradesGracefully(t *testing.T) {
	var p *Pool
	d := p.NewData(1, 0, 1, 0, 500, false)
	if d.Wire != 500+DataHeader {
		t.Fatalf("nil-pool NewData wire = %d", d.Wire)
	}
	p.Release(d) // must not panic
	if p.FreeLen() != 0 {
		t.Fatal("nil pool grew a free list")
	}
	if got := NewCNP(3, 1, 2); got.Type != TypeCNP || got.Wire != ControlFrame {
		t.Fatalf("package-level NewCNP = %+v", got)
	}
}

// TestPoolAbsorbsForeignPackets: packets built by the package-level
// constructors (tests, injected traffic) may die inside a pooled fabric;
// the pool adopts them.
func TestPoolAbsorbsForeignPackets(t *testing.T) {
	p := NewPool()
	d := NewData(1, 0, 1, 0, 100, false)
	p.Release(d)
	if p.FreeLen() != 1 || p.Releases != 1 {
		t.Fatalf("foreign packet not adopted: free=%d releases=%d", p.FreeLen(), p.Releases)
	}
	if got := p.NewCNP(1, 0, 1); got != d {
		t.Fatal("adopted packet not reused")
	}
}
