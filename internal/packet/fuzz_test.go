package packet

import (
	"bytes"
	"testing"
)

// FuzzHeaders decodes every header layout (BTH, RETH, AETH, IRN extension)
// from arbitrary bytes, re-encodes what decoded, and decodes again: the
// second decode must reproduce the first exactly, and the second encode
// must reproduce the first byte-for-byte. This pins the masking rules
// (24-bit PSN/QPN/MSN, flag packing) the verbs layer and hardware model
// rely on: any field that survives a decode must survive the round trip.
func FuzzHeaders(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte{0x04, 0xf0, 0x12, 0x34, 0x00, 0x01, 0x02, 0x03, 0x80, 0x00, 0x00, 0x07})
	bth := BTH{Opcode: OpWriteFirst, SE: true, AckReq: true, PadCnt: 3, PKey: 0xffff, DestQP: 0xabcdef, PSN: 0xfedcba, MigReq: true, HdrVer: 0xf}
	buf := bth.Marshal(nil)
	reth := RETH{VA: 0x0123456789abcdef, RKey: 0xdeadbeef, DMALen: 1 << 30}
	buf = reth.Marshal(buf)
	aeth := AETH{Syndrome: SyndromeNack, MSN: 0x123456}
	buf = aeth.Marshal(buf)
	ext := IRNExt{WQESeq: 0xffffff, RelOffset: 0x000001}
	f.Add(ext.Marshal(buf))

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := UnmarshalBTH(data); err == nil {
			enc := h.Marshal(nil)
			h2, err := UnmarshalBTH(enc)
			if err != nil {
				t.Fatalf("BTH re-decode failed: %v", err)
			}
			if h != h2 {
				t.Fatalf("BTH round trip: %+v != %+v", h, h2)
			}
			if enc2 := h2.Marshal(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("BTH re-encode differs: %x != %x", enc, enc2)
			}
		}
		if h, err := UnmarshalRETH(data); err == nil {
			enc := h.Marshal(nil)
			h2, err := UnmarshalRETH(enc)
			if err != nil || h != h2 {
				t.Fatalf("RETH round trip: %+v != %+v (%v)", h, h2, err)
			}
			if enc2 := h2.Marshal(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("RETH re-encode differs: %x != %x", enc, enc2)
			}
		}
		if h, err := UnmarshalAETH(data); err == nil {
			enc := h.Marshal(nil)
			h2, err := UnmarshalAETH(enc)
			if err != nil || h != h2 {
				t.Fatalf("AETH round trip: %+v != %+v (%v)", h, h2, err)
			}
			if enc2 := h2.Marshal(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("AETH re-encode differs: %x != %x", enc, enc2)
			}
		}
		if h, err := UnmarshalIRNExt(data); err == nil {
			enc := h.Marshal(nil)
			h2, err := UnmarshalIRNExt(enc)
			if err != nil || h != h2 {
				t.Fatalf("IRNExt round trip: %+v != %+v (%v)", h, h2, err)
			}
			if enc2 := h2.Marshal(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("IRNExt re-encode differs: %x != %x", enc, enc2)
			}
		}
	})
}

// FuzzBTHFieldRoundTrip drives encode→decode from structured field values
// (the opposite direction of FuzzHeaders): every in-range field must
// survive, and out-of-range field bits must be masked off consistently.
func FuzzBTHFieldRoundTrip(f *testing.F) {
	f.Add(uint8(0x04), true, false, uint8(1), uint16(7), uint32(42), uint32(99), false, uint8(0))
	f.Fuzz(func(t *testing.T, op uint8, se, ackReq bool, pad uint8, pkey uint16, qp, psn uint32, mig bool, ver uint8) {
		h := BTH{
			Opcode: Opcode(op),
			SE:     se,
			AckReq: ackReq,
			PadCnt: pad & 0x03,
			PKey:   pkey,
			DestQP: qp & 0xffffff,
			PSN:    psn & 0xffffff,
			MigReq: mig,
			HdrVer: ver & 0x0f,
		}
		got, err := UnmarshalBTH(h.Marshal(nil))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != h {
			t.Fatalf("BTH field round trip: %+v != %+v", got, h)
		}
	})
}
