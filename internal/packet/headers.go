package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the byte-level header layouts used by the verbs layer
// and the hardware model: the InfiniBand Base Transport Header (BTH), the
// RDMA Extended Transport Header (RETH), the ACK Extended Transport Header
// (AETH), and the IRN extension header that carries WQE sequence numbers
// and relative offsets so packets can be placed out of order (§5.3.2).
//
// Encodings are big-endian (network order) as on the wire.

// Opcode is the BTH operation code for reliable-connected (RC) QPs.
type Opcode uint8

// RC opcodes (InfiniBand specification, transport class RC = 0b000 in the
// upper 3 bits). IRN adds OpReadNack using one of the eight unused RC
// opcode values (§5.2).
const (
	OpSendFirst         Opcode = 0x00
	OpSendMiddle        Opcode = 0x01
	OpSendLast          Opcode = 0x02
	OpSendLastImm       Opcode = 0x03
	OpSendOnly          Opcode = 0x04
	OpSendOnlyImm       Opcode = 0x05
	OpWriteFirst        Opcode = 0x06
	OpWriteMiddle       Opcode = 0x07
	OpWriteLast         Opcode = 0x08
	OpWriteLastImm      Opcode = 0x09
	OpWriteOnly         Opcode = 0x0a
	OpWriteOnlyImm      Opcode = 0x0b
	OpReadRequest       Opcode = 0x0c
	OpReadRespFirst     Opcode = 0x0d
	OpReadRespMiddle    Opcode = 0x0e
	OpReadRespLast      Opcode = 0x0f
	OpReadRespOnly      Opcode = 0x10
	OpAcknowledge       Opcode = 0x11
	OpAtomicAcknowledge Opcode = 0x12
	OpCompareSwap       Opcode = 0x13
	OpFetchAdd          Opcode = 0x14
	OpSendLastInv       Opcode = 0x16
	OpSendOnlyInv       Opcode = 0x17
	// OpReadNack is IRN's new opcode: a (N)ACK sent by the requester for
	// each Read response packet, using reserved RC opcode 0x18 (§5.2).
	OpReadNack Opcode = 0x18
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	names := map[Opcode]string{
		OpSendFirst: "SEND_FIRST", OpSendMiddle: "SEND_MIDDLE",
		OpSendLast: "SEND_LAST", OpSendLastImm: "SEND_LAST_IMM",
		OpSendOnly: "SEND_ONLY", OpSendOnlyImm: "SEND_ONLY_IMM",
		OpWriteFirst: "WRITE_FIRST", OpWriteMiddle: "WRITE_MIDDLE",
		OpWriteLast: "WRITE_LAST", OpWriteLastImm: "WRITE_LAST_IMM",
		OpWriteOnly: "WRITE_ONLY", OpWriteOnlyImm: "WRITE_ONLY_IMM",
		OpReadRequest: "READ_REQ", OpReadRespFirst: "READ_RESP_FIRST",
		OpReadRespMiddle: "READ_RESP_MIDDLE", OpReadRespLast: "READ_RESP_LAST",
		OpReadRespOnly: "READ_RESP_ONLY", OpAcknowledge: "ACK",
		OpAtomicAcknowledge: "ATOMIC_ACK", OpCompareSwap: "CMP_SWAP",
		OpFetchAdd: "FETCH_ADD", OpSendLastInv: "SEND_LAST_INV",
		OpSendOnlyInv: "SEND_ONLY_INV", OpReadNack: "READ_NACK",
	}
	if s, ok := names[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%#x)", uint8(o))
}

// IsFirst reports whether the opcode starts a multi-packet message.
func (o Opcode) IsFirst() bool {
	switch o {
	case OpSendFirst, OpWriteFirst, OpReadRespFirst:
		return true
	}
	return false
}

// IsLast reports whether the opcode ends a message (including *_ONLY).
func (o Opcode) IsLast() bool {
	switch o {
	case OpSendLast, OpSendLastImm, OpSendLastInv, OpWriteLast, OpWriteLastImm,
		OpReadRespLast, OpSendOnly, OpSendOnlyImm, OpSendOnlyInv,
		OpWriteOnly, OpWriteOnlyImm, OpReadRespOnly:
		return true
	}
	return false
}

// IsOnly reports whether the opcode is a single-packet message.
func (o Opcode) IsOnly() bool {
	switch o {
	case OpSendOnly, OpSendOnlyImm, OpSendOnlyInv, OpWriteOnly, OpWriteOnlyImm,
		OpReadRespOnly:
		return true
	}
	return false
}

// HasImmediate reports whether the packet carries immediate data, which
// consumes a Receive WQE at the responder.
func (o Opcode) HasImmediate() bool {
	switch o {
	case OpSendLastImm, OpSendOnlyImm, OpWriteLastImm, OpWriteOnlyImm:
		return true
	}
	return false
}

// BTH is the 12-byte Base Transport Header.
type BTH struct {
	Opcode  Opcode
	SE      bool   // solicited event
	AckReq  bool   // acknowledgement requested
	PadCnt  uint8  // 0-3 pad bytes
	PKey    uint16 // partition key
	DestQP  uint32 // 24-bit destination queue pair number
	PSN     PSN    // 24-bit packet sequence number
	MigReq  bool
	HdrVer  uint8 // 4-bit transport header version
	Reserve uint8
}

// maskPSN trims a sequence number to the 24-bit wire representation.
func maskPSN(p PSN) uint32 { return p & 0xffffff }

// Marshal appends the wire encoding of the BTH to b.
func (h *BTH) Marshal(b []byte) []byte {
	var buf [BTHSize]byte
	buf[0] = uint8(h.Opcode)
	flags := h.PadCnt << 4
	if h.SE {
		flags |= 0x80
	}
	if h.MigReq {
		flags |= 0x40
	}
	flags |= h.HdrVer & 0x0f
	buf[1] = flags
	binary.BigEndian.PutUint16(buf[2:], h.PKey)
	binary.BigEndian.PutUint32(buf[4:], h.DestQP&0xffffff)
	apsn := maskPSN(h.PSN)
	if h.AckReq {
		apsn |= 1 << 31
	}
	binary.BigEndian.PutUint32(buf[8:], apsn)
	return append(b, buf[:]...)
}

// UnmarshalBTH decodes a BTH from the front of b.
func UnmarshalBTH(b []byte) (BTH, error) {
	if len(b) < BTHSize {
		return BTH{}, errors.New("packet: short BTH")
	}
	var h BTH
	h.Opcode = Opcode(b[0])
	h.SE = b[1]&0x80 != 0
	h.MigReq = b[1]&0x40 != 0
	h.PadCnt = (b[1] >> 4) & 0x03
	h.HdrVer = b[1] & 0x0f
	h.PKey = binary.BigEndian.Uint16(b[2:])
	h.DestQP = binary.BigEndian.Uint32(b[4:]) & 0xffffff
	apsn := binary.BigEndian.Uint32(b[8:])
	h.AckReq = apsn&(1<<31) != 0
	h.PSN = apsn & 0xffffff
	return h, nil
}

// RETH is the 16-byte RDMA Extended Transport Header carrying the remote
// memory location. Standard RoCE includes it only in the first packet of a
// Write; IRN adds it to every packet so data can be placed out of order
// (§5.3.1).
type RETH struct {
	VA     uint64 // remote virtual address
	RKey   uint32 // remote memory key
	DMALen uint32 // total transfer length
}

// Marshal appends the wire encoding of the RETH to b.
func (h *RETH) Marshal(b []byte) []byte {
	var buf [RETHSize]byte
	binary.BigEndian.PutUint64(buf[0:], h.VA)
	binary.BigEndian.PutUint32(buf[8:], h.RKey)
	binary.BigEndian.PutUint32(buf[12:], h.DMALen)
	return append(b, buf[:]...)
}

// UnmarshalRETH decodes a RETH from the front of b.
func UnmarshalRETH(b []byte) (RETH, error) {
	if len(b) < RETHSize {
		return RETH{}, errors.New("packet: short RETH")
	}
	return RETH{
		VA:     binary.BigEndian.Uint64(b[0:]),
		RKey:   binary.BigEndian.Uint32(b[8:]),
		DMALen: binary.BigEndian.Uint32(b[12:]),
	}, nil
}

// AETH syndrome classes (upper 3 bits of the syndrome byte).
const (
	SyndromeAck     = 0x00
	SyndromeRNRNack = 0x20 // receiver not ready
	SyndromeNack    = 0x60 // PSN sequence error NACK
)

// AETH is the 4-byte ACK Extended Transport Header: a syndrome byte and
// the 24-bit message sequence number (MSN) used to expire Request WQEs at
// the requester (§5.3.3).
type AETH struct {
	Syndrome uint8
	MSN      uint32 // 24-bit
}

// Marshal appends the wire encoding of the AETH to b.
func (h *AETH) Marshal(b []byte) []byte {
	var buf [AETHSize]byte
	v := uint32(h.Syndrome)<<24 | (h.MSN & 0xffffff)
	binary.BigEndian.PutUint32(buf[0:], v)
	return append(b, buf[:]...)
}

// UnmarshalAETH decodes an AETH from the front of b.
func UnmarshalAETH(b []byte) (AETH, error) {
	if len(b) < AETHSize {
		return AETH{}, errors.New("packet: short AETH")
	}
	v := binary.BigEndian.Uint32(b)
	return AETH{Syndrome: uint8(v >> 24), MSN: v & 0xffffff}, nil
}

// IRNExt is the IRN extension header: the WQE sequence number used to
// match packets to Receive WQEs (recv_WQE_SN) or Read WQE buffer slots
// (read_WQE_SN), and the relative packet offset within its message used to
// compute the placement address for Sends (§5.3.2). Both are 24-bit.
type IRNExt struct {
	WQESeq    uint32 // 24-bit recv_WQE_SN or read_WQE_SN
	RelOffset uint32 // 24-bit packet offset within the message
}

// Marshal appends the wire encoding of the IRN extension to b.
func (h *IRNExt) Marshal(b []byte) []byte {
	var buf [IRNExtSize]byte
	buf[0] = byte(h.WQESeq >> 16)
	buf[1] = byte(h.WQESeq >> 8)
	buf[2] = byte(h.WQESeq)
	buf[3] = byte(h.RelOffset >> 16)
	buf[4] = byte(h.RelOffset >> 8)
	buf[5] = byte(h.RelOffset)
	return append(b, buf[:]...)
}

// UnmarshalIRNExt decodes an IRN extension header from the front of b.
func UnmarshalIRNExt(b []byte) (IRNExt, error) {
	if len(b) < IRNExtSize {
		return IRNExt{}, errors.New("packet: short IRN extension")
	}
	return IRNExt{
		WQESeq:    uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2]),
		RelOffset: uint32(b[3])<<16 | uint32(b[4])<<8 | uint32(b[5]),
	}, nil
}
