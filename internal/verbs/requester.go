package verbs

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// This file is the requester's control-plane: ACK/NACK processing on the
// sPSN space (including WQE expiry via the MSN), read-response reception
// on the rPSN space with read (N)ACK generation (§5.2), and fence
// release.

// onAck processes an ACK (nack=false) or NACK/RNR (nack=true).
func (q *QP) onAck(p *VPacket, nack bool, now sim.Time) {
	cum := p.BTH.PSN

	if cum > q.txCum {
		for psn := q.txCum; psn != cum; psn++ {
			delete(q.pend, psn)
		}
		q.txSack.AdvanceTo(cum)
		q.txCum = cum
		q.attempts = 0 // cumulative progress refills the retry budget
		if q.retxNext < cum {
			q.retxNext = cum
		}
		if q.inRecov && cum > q.recSeq {
			q.inRecov = false
		}
		q.armTimer()
	}

	// Expire Request WQEs the responder has completed (§5.3.3): the MSN
	// in the AETH identifies them.
	q.expireRequests(p.AETH.MSN, now)

	if nack {
		switch p.AETH.Syndrome {
		case packet.SyndromeRNRNack:
			// Receiver not ready: back off, then resume from the
			// cumulative point (Appendix B.3/B.4: error NACKs trigger
			// go-back-N). Each backoff spends one retry attempt.
			if q.bumpAttempts() {
				return
			}
			q.rnrUntil = now.Add(q.cfg.RNRDelay)
			q.enterRecovery()
			q.retxNext = q.txCum
			q.eng.ScheduleEventFrom(q.clk, q.rnrUntil, q, qpRNRResume, uint64(q.rnrUntil))
			return
		default:
			if !q.cfg.GoBackN && p.SackPSN >= q.txCum {
				// SACK bookkeeping feeds selective retransmission only;
				// the go-back-N baseline ignores the hint and rewinds.
				if fresh, err := q.txSack.Set(p.SackPSN); err == nil && fresh {
					if p.SackPSN+1 > q.highSack {
						q.highSack = p.SackPSN + 1
					}
				}
			}
			if !q.inRecov {
				q.enterRecovery()
				q.retxNext = q.txCum
			}
		}
	}
	q.pump()
}

// expireRequests pops Request WQEs up to the acknowledged MSN, emitting
// CQEs for Writes and Sends (Reads and Atomics complete on data arrival).
func (q *QP) expireRequests(msn uint32, now sim.Time) {
	for q.expired < msn && len(q.reqWQEs) > 0 {
		w := q.reqWQEs[0]
		if w.msgIdx >= msn {
			break
		}
		w.expired = true
		q.reqWQEs = q.reqWQEs[1:]
		q.expired++
		switch w.req.Op {
		case OpWrite, OpWriteImm, OpSend, OpSendInv:
			if !w.completed {
				w.completed = true
				q.cq.push(CQE{WQEID: w.req.ID, Op: w.req.Op, Len: len(w.req.Data), At: now})
			}
		}
	}
	q.releaseFence(now)
}

// releaseFence admits fenced requests once every prior WQE has expired
// and completed (§5.3.4, Appendix B.5).
func (q *QP) releaseFence(now sim.Time) {
	for len(q.fenceQ) > 0 {
		if len(q.reqWQEs) > 0 {
			return
		}
		for _, w := range q.readsOutstanding() {
			if !w.completed {
				return
			}
		}
		next := q.fenceQ[0]
		q.fenceQ = q.fenceQ[1:]
		if err := q.admit(*next); err != nil {
			q.cq.push(CQE{WQEID: next.ID, Op: next.Op, At: now})
		}
	}
}

// readsOutstanding lists read/atomic WQEs still awaiting data.
func (q *QP) readsOutstanding() []*reqWQE {
	var out []*reqWQE
	for _, w := range q.readsOut {
		if w.dataRemaining > 0 {
			out = append(out, w)
		}
	}
	return out
}

// onReadResponse handles a read/atomic response packet on the rPSN space:
// place the data at its final location immediately, send a read (N)ACK on
// the new opcode (§5.2), and complete the read when all packets landed.
func (q *QP) onReadResponse(p *VPacket, now sim.Time) {
	psn := p.BTH.PSN
	if psn < q.rrxExp {
		q.sendReadAck(false, 0) // duplicate: re-ack
		return
	}
	if int(psn-q.rrxExp) >= q.rrx.Cap() {
		q.Drops++
		return
	}
	fresh, err := q.rrx.MarkArrived(psn, p.BTH.Opcode.IsLast())
	if err != nil {
		q.Drops++
		return
	}
	if fresh {
		w, ok := q.readsOut[p.Ext.WQESeq]
		if ok && w.dataRemaining > 0 {
			switch w.req.Op {
			case OpRead:
				off := int(p.Ext.RelOffset) * q.cfg.MTU
				if off+len(p.Payload) <= len(w.req.Local) {
					copy(w.req.Local[off:], p.Payload)
				}
			case OpFetchAdd, OpCmpSwap:
				w.atomicResult(p.AtomicCmp)
			}
			w.dataRemaining--
			if w.dataRemaining == 0 && !w.completed {
				w.completed = true
				q.cq.push(CQE{
					WQEID:  w.req.ID,
					Op:     w.req.Op,
					Len:    len(w.req.Local),
					Atomic: w.atomicVal,
					At:     now,
				})
				q.releaseFence(now)
			}
		}
	}
	if psn == q.rrxExp {
		n, _ := q.rrx.AdvanceCumulative()
		q.rrxExp += uint32(n)
		q.sendReadAck(false, 0)
	} else {
		q.sendReadAck(true, psn)
	}
}

// sendReadAck emits the read (N)ACK (§5.2): cumulative rPSN plus,
// for NACKs, the triggering PSN.
func (q *QP) sendReadAck(nack bool, sack uint32) {
	syn := uint8(packet.SyndromeAck)
	if nack {
		syn = packet.SyndromeNack
	}
	q.wire.Send(&VPacket{
		BTH:     packet.BTH{Opcode: packet.OpReadNack, PSN: q.rrxExp},
		AETH:    packet.AETH{Syndrome: syn},
		SackPSN: sack,
	})
}
