package verbs

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// isAck reports whether a verbs packet rides the ack/control path (and
// so should survive a forward-path blackhole).
func isAck(op packet.Opcode) bool {
	switch op {
	case packet.OpAcknowledge, packet.OpAtomicAcknowledge, packet.OpReadNack:
		return true
	}
	return false
}

// newPipeCfg is newPipe with an explicit requester-side config (the B
// side keeps defaults), for retry-policy tests.
func newPipeCfg(t *testing.T, cfg Config) (*pipe, *QP, *QP, *CQ, *CQ, *Memory, *Memory) {
	t.Helper()
	eng := sim.NewEngine()
	pp := &pipe{eng: eng, delay: 2 * sim.Microsecond}
	memA, memB := NewMemory(), NewMemory()
	cqA, cqB := &CQ{}, &CQ{}
	pp.a = NewQP("A", eng, cfg, WireFunc(func(p *VPacket) { pp.deliver(p, true) }), memA, cqA)
	pp.b = NewQP("B", eng, DefaultConfig(), WireFunc(func(p *VPacket) { pp.deliver(p, false) }), memB, cqB)
	return pp, pp.a, pp.b, cqA, cqB, memA, memB
}

// TestSRQExhaustionRefillRecovers drains a one-buffer SRQ with three
// SENDs: the overflow draws RNR NACKs, and once the application reposts
// buffers the requester's RNR backoff retries must land every message
// exactly once, in order.
func TestSRQExhaustionRefillRecovers(t *testing.T) {
	pp, a, b, cqA, cqB, _, _ := newPipe(t)
	srq := NewSRQ()
	b.UseSRQ(srq)
	bufs := [][]byte{make([]byte, 2000), make([]byte, 2000), make([]byte, 2000)}
	srq.Post(0, bufs[0])
	for i := 0; i < 3; i++ {
		if err := a.PostSend(Request{ID: uint64(10 + i), Op: OpSend, Data: fill(1500, byte(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Refill after the first RNR round-trip has surely happened.
	pp.eng.After(400*sim.Microsecond, func() {
		srq.Post(1, bufs[1])
		srq.Post(2, bufs[2])
	})
	pp.run()
	if b.RNRNacks == 0 {
		t.Error("SRQ overflow produced no RNR NACKs")
	}
	if a.Dead() {
		t.Fatal("requester died; RNR backoff should retry forever by default")
	}
	got := cqB.Poll()
	if len(got) != 3 {
		t.Fatalf("responder CQEs = %d, want 3", len(got))
	}
	for i, c := range got {
		if c.WQEID != uint64(i) || c.Len != 1500 {
			t.Errorf("CQE %d: consumed WQE %d len %d", i, c.WQEID, c.Len)
		}
	}
	sent := cqA.Poll()
	if len(sent) != 3 {
		t.Fatalf("requester CQEs = %d, want 3", len(sent))
	}
	for _, c := range sent {
		if c.Status != StatusOK {
			t.Errorf("WQE %d status %v", c.WQEID, c.Status)
		}
	}
}

// TestRetryExhaustionFlushesWQEs blackholes the forward path with a
// bounded retry budget: instead of hanging, the QP must go dead and
// flush every posted WQE with StatusRetryExceeded, and reject new work.
func TestRetryExhaustionFlushesWQEs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 2
	pp, a, _, cqA, _, _, memB := newPipeCfg(t, cfg)
	memB.Register(7, make([]byte, 8192))
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		return !isAck(p.BTH.Opcode), 0 // drop all requester data
	}
	a.PostSend(Request{ID: 1, Op: OpWrite, Data: fill(1000, 1), RKey: 7})
	a.PostSend(Request{ID: 2, Op: OpWrite, Data: fill(1000, 2), RKey: 7})
	pp.run()
	if !a.Dead() {
		t.Fatal("QP still alive after exhausting its retry budget on a blackhole")
	}
	if a.Timeouts != uint64(cfg.MaxRetries)+1 {
		t.Errorf("Timeouts = %d, want %d", a.Timeouts, cfg.MaxRetries+1)
	}
	got := cqA.Poll()
	if len(got) != 2 {
		t.Fatalf("flushed CQEs = %d, want 2", len(got))
	}
	for i, c := range got {
		if c.WQEID != uint64(i+1) || c.Status != StatusRetryExceeded {
			t.Errorf("CQE %d: WQE %d status %v, want StatusRetryExceeded", i, c.WQEID, c.Status)
		}
	}
	if err := a.PostSend(Request{ID: 3, Op: OpWrite, Data: fill(10, 3), RKey: 7}); err == nil {
		t.Error("PostSend on a dead QP succeeded")
	}
}

// TestRNRExhaustionKillsQP starves a SEND of receive WQEs forever under
// a bounded retry budget: RNR NACKs must count against the budget and
// surface StatusRetryExceeded rather than retrying silently forever.
func TestRNRExhaustionKillsQP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 1
	cfg.RNRDelay = 50 * sim.Microsecond
	pp, a, _, cqA, _, _, _ := newPipeCfg(t, cfg)
	a.PostSend(Request{ID: 9, Op: OpSend, Data: fill(500, 4)})
	pp.run()
	if !a.Dead() {
		t.Fatal("QP survived perpetual receiver-not-ready with MaxRetries=1")
	}
	if pp.b.RNRNacks < 2 {
		t.Errorf("responder RNRNacks = %d, want >= 2 (initial + one retry)", pp.b.RNRNacks)
	}
	got := cqA.Poll()
	if len(got) != 1 || got[0].WQEID != 9 || got[0].Status != StatusRetryExceeded {
		t.Fatalf("flushed CQEs: %+v", got)
	}
}

// TestAttemptsResetOnProgress drops the first two transmissions of every
// PSN with MaxRetries=2: each delivery needs two timeouts, so the run
// accumulates far more timeouts than the budget — but cumulative-ack
// progress must reset the attempt counter, keeping the QP alive.
func TestAttemptsResetOnProgress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 2
	pp, a, _, cqA, _, _, memB := newPipeCfg(t, cfg)
	memB.Register(7, make([]byte, 8192))
	tx := map[uint32]int{}
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		if isAck(p.BTH.Opcode) {
			return false, 0
		}
		tx[p.BTH.PSN]++
		return tx[p.BTH.PSN] <= 2, 0
	}
	a.PostSend(Request{ID: 1, Op: OpWrite, Data: fill(1000, 1), RKey: 7})
	pp.run()
	a.PostSend(Request{ID: 2, Op: OpWrite, Data: fill(1000, 2), RKey: 7})
	pp.eng.RunUntil(sim.Time(2 * sim.Second))
	if a.Dead() {
		t.Fatalf("QP died after %d timeouts; progress should reset the budget", a.Timeouts)
	}
	if a.Timeouts < 4 {
		t.Errorf("Timeouts = %d, want >= 4 (two per write)", a.Timeouts)
	}
	got := cqA.Poll()
	if len(got) != 2 {
		t.Fatalf("completions = %d, want 2", len(got))
	}
	for _, c := range got {
		if c.Status != StatusOK {
			t.Errorf("WQE %d status %v", c.WQEID, c.Status)
		}
	}
}

// TestGoBackNDropsOutOfOrder checks the RoCE baseline path: with GoBackN
// set, an out-of-order arrival is dropped (counted) instead of placed,
// and the whole window is resent — yet the transfer still completes.
func TestGoBackNDropsOutOfOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GoBackN = true
	pp, a, b, cqA, _, _, memB := newPipeCfg(t, cfg)
	memB.Register(7, make([]byte, 16384))
	b.cfg.GoBackN = true
	dropped := false
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		if !isAck(p.BTH.Opcode) && p.BTH.PSN == 1 && !dropped {
			dropped = true
			return true, 0
		}
		return false, 0
	}
	a.PostSend(Request{ID: 1, Op: OpWrite, Data: fill(5000, 1), RKey: 7})
	pp.run()
	if b.Drops == 0 {
		t.Error("go-back-N responder placed out-of-order data instead of dropping")
	}
	if a.Retransmits < 2 {
		t.Errorf("Retransmits = %d; go-back-N should resend the whole tail", a.Retransmits)
	}
	got := cqA.Poll()
	if len(got) != 1 || got[0].Status != StatusOK {
		t.Fatalf("completions: %+v", got)
	}
	if w, ok := memB.ReadWord(7, 0); !ok || w == 0 {
		t.Error("payload not delivered")
	}
}
