package verbs

// This file implements Receive WQE management: the per-QP receive queue,
// and the shared receive queue of Appendix B.2, where recv_WQE_SNs are
// allotted when WQEs are dequeued from the SRQ rather than when posted —
// so a send packet with recv_WQE_SN = k forces dequeuing WQEs up to k.

// recvQueue is the QP-private receive queue: WQEs get consecutive
// sequence numbers at post time.
type recvQueue struct {
	wqes   map[uint32]*RecvWQE
	nextSN uint32
}

func newRecvQueue() *recvQueue {
	return &recvQueue{wqes: make(map[uint32]*RecvWQE)}
}

// post appends a Receive WQE, allotting the next recv_WQE_SN.
func (r *recvQueue) post(w *RecvWQE) {
	w.sn = r.nextSN
	r.nextSN++
	r.wqes[w.sn] = w
}

// get implements recvProvider.
func (r *recvQueue) get(sn uint32) (*RecvWQE, bool) {
	w, ok := r.wqes[sn]
	return w, ok
}

// available implements recvProvider.
func (r *recvQueue) available(sn uint32) bool {
	_, ok := r.wqes[sn]
	return ok
}

// consume implements recvProvider.
func (r *recvQueue) consume(sn uint32) { delete(r.wqes, sn) }

// SRQ is a shared receive queue (Appendix B.2): multiple QPs draw
// Receive WQEs from one pool. Each QP keeps its own recv_WQE_SN space —
// sequence numbers are allotted per QP, when WQEs are dequeued from the
// pool: "rather than allotting it as soon as a new receive WQE is
// posted... with SRQ, we allot it when new recv WQEs are dequeued from
// SRQ." A send packet carrying recv_WQE_SN k forces its QP to dequeue
// WQEs for its sequence numbers up to k.
type SRQ struct {
	queue []*RecvWQE
}

// NewSRQ returns an empty shared receive queue.
func NewSRQ() *SRQ { return &SRQ{} }

// Post appends a Receive WQE to the shared pool (no SN yet).
func (s *SRQ) Post(id uint64, buf []byte) {
	s.queue = append(s.queue, &RecvWQE{ID: id, Buf: buf})
}

// Pending reports WQEs still waiting in the shared pool.
func (s *SRQ) Pending() int { return len(s.queue) }

// dequeue pops the next pooled WQE, or nil if empty.
func (s *SRQ) dequeue() *RecvWQE {
	if len(s.queue) == 0 {
		return nil
	}
	w := s.queue[0]
	s.queue = s.queue[1:]
	return w
}

// srqBinding is one QP's view of a shared receive queue: the QP-local
// recv_WQE_SN space mapped onto WQEs dequeued from the shared pool.
type srqBinding struct {
	srq    *SRQ
	local  map[uint32]*RecvWQE
	nextSN uint32
}

func newSRQBinding(s *SRQ) *srqBinding {
	return &srqBinding{srq: s, local: make(map[uint32]*RecvWQE)}
}

// drainTo dequeues pool WQEs until this QP has allotted local sequence
// number sn (the Appendix B.2 example: recv_WQE_SN 4 forces dequeuing
// WQEs for SNs 1..4).
func (b *srqBinding) drainTo(sn uint32) {
	for b.nextSN <= sn {
		w := b.srq.dequeue()
		if w == nil {
			return
		}
		w.sn = b.nextSN
		b.local[b.nextSN] = w
		b.nextSN++
	}
}

// get implements recvProvider.
func (b *srqBinding) get(sn uint32) (*RecvWQE, bool) {
	b.drainTo(sn)
	w, ok := b.local[sn]
	return w, ok
}

// available implements recvProvider.
func (b *srqBinding) available(sn uint32) bool {
	if _, ok := b.local[sn]; ok {
		return true
	}
	need := int(sn-b.nextSN) + 1
	return need <= b.srq.Pending()
}

// consume implements recvProvider.
func (b *srqBinding) consume(sn uint32) { delete(b.local, sn) }
