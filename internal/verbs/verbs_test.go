package verbs

import (
	"bytes"
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// pipe wires two QPs over the engine with a fixed delay and optional
// per-packet interference (drop / delay jitter), exercising loss and
// reordering paths deterministically.
type pipe struct {
	eng   *sim.Engine
	delay sim.Duration
	// intercept may return (drop, extraDelay).
	intercept func(p *VPacket) (bool, sim.Duration)
	a, b      *QP
	sentAB    int
	sentBA    int
}

func newPipe(t *testing.T) (*pipe, *QP, *QP, *CQ, *CQ, *Memory, *Memory) {
	t.Helper()
	eng := sim.NewEngine()
	pp := &pipe{eng: eng, delay: 2 * sim.Microsecond}
	memA, memB := NewMemory(), NewMemory()
	cqA, cqB := &CQ{}, &CQ{}
	cfg := DefaultConfig()
	pp.a = NewQP("A", eng, cfg, WireFunc(func(p *VPacket) { pp.deliver(p, true) }), memA, cqA)
	pp.b = NewQP("B", eng, cfg, WireFunc(func(p *VPacket) { pp.deliver(p, false) }), memB, cqB)
	return pp, pp.a, pp.b, cqA, cqB, memA, memB
}

func (pp *pipe) deliver(p *VPacket, fromA bool) {
	if fromA {
		pp.sentAB++
	} else {
		pp.sentBA++
	}
	d := pp.delay
	if pp.intercept != nil {
		drop, extra := pp.intercept(p)
		if drop {
			return
		}
		d += extra
	}
	dst := pp.a
	if fromA {
		dst = pp.b
	}
	pp.eng.After(d, func() { dst.Receive(p, pp.eng.Now()) })
}

func (pp *pipe) run() { pp.eng.RunUntil(sim.Time(sim.Second)) }

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestWriteDeliversBytes(t *testing.T) {
	pp, a, _, cqA, _, _, memB := newPipe(t)
	dst := make([]byte, 8192)
	memB.Register(7, dst)
	data := fill(5000, 3)
	if err := a.PostSend(Request{ID: 1, Op: OpWrite, Data: data, RKey: 7, VA: 100}); err != nil {
		t.Fatal(err)
	}
	pp.run()
	if !bytes.Equal(dst[100:100+len(data)], data) {
		t.Fatal("write payload mismatch")
	}
	cqes := cqA.Poll()
	if len(cqes) != 1 || cqes[0].WQEID != 1 || cqes[0].Op != OpWrite {
		t.Fatalf("requester CQEs: %+v", cqes)
	}
	if a.MSN() != 0 && pp.b.MSN() != 1 {
		t.Errorf("responder MSN = %d, want 1", pp.b.MSN())
	}
}

func TestWriteWithImmediateConsumesRecvWQE(t *testing.T) {
	pp, a, b, cqA, cqB, _, memB := newPipe(t)
	dst := make([]byte, 4096)
	memB.Register(7, dst)
	b.PostRecv(100, nil) // Write-with-imm needs a Receive WQE for the CQE
	data := fill(2500, 1)
	a.PostSend(Request{ID: 2, Op: OpWriteImm, Data: data, RKey: 7, VA: 0, Imm: 0xfeed})
	pp.run()
	if !bytes.Equal(dst[:len(data)], data) {
		t.Fatal("payload mismatch")
	}
	got := cqB.Poll()
	if len(got) != 1 || got[0].Imm != 0xfeed || !got[0].Receive || got[0].WQEID != 100 {
		t.Fatalf("responder CQE: %+v", got)
	}
	if len(cqA.Poll()) != 1 {
		t.Fatal("requester completion missing")
	}
}

func TestSendPlacesIntoRecvBuffer(t *testing.T) {
	pp, a, b, _, cqB, _, _ := newPipe(t)
	buf := make([]byte, 4096)
	b.PostRecv(200, buf)
	data := fill(3000, 9)
	a.PostSend(Request{ID: 3, Op: OpSend, Data: data, Imm: 0xabc})
	pp.run()
	if !bytes.Equal(buf[:len(data)], data) {
		t.Fatal("send payload mismatch")
	}
	got := cqB.Poll()
	if len(got) != 1 || got[0].WQEID != 200 || got[0].Len != 3000 {
		t.Fatalf("responder CQE: %+v", got)
	}
}

func TestSendsConsumeRecvWQEsInOrder(t *testing.T) {
	pp, a, b, _, cqB, _, _ := newPipe(t)
	bufs := [][]byte{make([]byte, 2000), make([]byte, 2000), make([]byte, 2000)}
	for i, buf := range bufs {
		b.PostRecv(uint64(300+i), buf)
	}
	for i := 0; i < 3; i++ {
		a.PostSend(Request{ID: uint64(10 + i), Op: OpSend, Data: fill(1500, byte(i))})
	}
	pp.run()
	got := cqB.Poll()
	if len(got) != 3 {
		t.Fatalf("CQEs = %d", len(got))
	}
	for i, c := range got {
		if c.WQEID != uint64(300+i) {
			t.Errorf("CQE %d consumed WQE %d, want %d (posted order)", i, c.WQEID, 300+i)
		}
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i][:1500], fill(1500, byte(i))) {
			t.Errorf("buffer %d payload mismatch", i)
		}
	}
}

func TestReadReturnsData(t *testing.T) {
	pp, a, _, cqA, _, _, memB := newPipe(t)
	src := fill(6000, 5)
	memB.Register(9, src)
	dst := make([]byte, 6000)
	a.PostSend(Request{ID: 4, Op: OpRead, RKey: 9, VA: 0, Local: dst})
	pp.run()
	if !bytes.Equal(dst, src) {
		t.Fatal("read data mismatch")
	}
	got := cqA.Poll()
	if len(got) != 1 || got[0].Op != OpRead {
		t.Fatalf("CQE: %+v", got)
	}
}

func TestFetchAddAtomicity(t *testing.T) {
	pp, a, _, cqA, _, _, memB := newPipe(t)
	word := make([]byte, 8)
	memB.Register(11, word)
	memB.WriteWord(11, 0, 40)
	a.PostSend(Request{ID: 5, Op: OpFetchAdd, RKey: 11, VA: 0, Add: 2})
	pp.run()
	v, _ := memB.ReadWord(11, 0)
	if v != 42 {
		t.Errorf("word = %d, want 42", v)
	}
	got := cqA.Poll()
	if len(got) != 1 || got[0].Atomic != 40 {
		t.Fatalf("atomic CQE: %+v (want original 40)", got)
	}
}

func TestCmpSwap(t *testing.T) {
	pp, a, _, cqA, _, _, memB := newPipe(t)
	word := make([]byte, 8)
	memB.Register(12, word)
	memB.WriteWord(12, 0, 7)
	a.PostSend(Request{ID: 6, Op: OpCmpSwap, RKey: 12, VA: 0, Cmp: 7, Swap: 99})
	a.PostSend(Request{ID: 7, Op: OpCmpSwap, RKey: 12, VA: 0, Cmp: 7, Swap: 1234})
	pp.run()
	v, _ := memB.ReadWord(12, 0)
	if v != 99 {
		t.Errorf("word = %d, want 99 (second CAS must fail)", v)
	}
	got := cqA.Poll()
	if len(got) != 2 {
		t.Fatalf("CQEs = %d", len(got))
	}
	if got[0].Atomic != 7 || got[1].Atomic != 99 {
		t.Errorf("originals: %d, %d", got[0].Atomic, got[1].Atomic)
	}
}

func TestOutOfOrderPlacementDirectToMemory(t *testing.T) {
	// Reorder the middle of a write: data still lands correctly, and the
	// responder NACKs the out-of-order arrivals.
	pp, a, _, _, _, _, memB := newPipe(t)
	dst := make([]byte, 8192)
	memB.Register(7, dst)
	delayed := false
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		if p.BTH.Opcode == packet.OpWriteFirst && !delayed {
			delayed = true
			return false, 50 * sim.Microsecond // first packet arrives last
		}
		return false, 0
	}
	data := fill(5000, 13)
	a.PostSend(Request{ID: 8, Op: OpWrite, Data: data, RKey: 7, VA: 0})
	pp.run()
	if !bytes.Equal(dst[:len(data)], data) {
		t.Fatal("OOO write payload mismatch")
	}
	if pp.b.MSN() != 1 {
		t.Errorf("MSN = %d", pp.b.MSN())
	}
}

func TestPrematureCQEHeldUntilInOrderPoint(t *testing.T) {
	// The last packet of a Send arrives before the others: the CQE must
	// not surface until every packet up to it has arrived (§5.3.3).
	pp, a, b, _, cqB, _, _ := newPipe(t)
	buf := make([]byte, 8192)
	b.PostRecv(400, buf)

	var lastArrived, firstArrived sim.Time
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		switch p.BTH.Opcode {
		case packet.OpSendFirst:
			return false, 80 * sim.Microsecond
		case packet.OpSendLast:
			return false, 0
		}
		return false, 0
	}
	data := fill(5000, 21)
	a.PostSend(Request{ID: 9, Op: OpSend, Data: data})
	// Track CQE timing by polling at two instants.
	pp.eng.Schedule(sim.Time(40*sim.Microsecond), func() {
		if cqB.Len() > 0 {
			t.Error("CQE surfaced before the first packet arrived (premature CQE leaked)")
		}
		lastArrived = pp.eng.Now()
	})
	pp.run()
	if cqB.Len() != 1 {
		t.Fatalf("CQEs = %d", cqB.Len())
	}
	if !bytes.Equal(buf[:len(data)], data) {
		t.Fatal("payload mismatch")
	}
	_ = lastArrived
	_ = firstArrived
}

func TestLossRecoverySelectiveRetransmit(t *testing.T) {
	pp, a, _, cqA, _, _, memB := newPipe(t)
	dst := make([]byte, 20000)
	memB.Register(7, dst)
	dropped := 0
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		// Drop two specific write packets once each.
		if (p.BTH.PSN == 3 || p.BTH.PSN == 7) &&
			p.BTH.Opcode >= packet.OpWriteFirst && p.BTH.Opcode <= packet.OpWriteOnlyImm && dropped < 2 {
			if p.BTH.PSN == 3 && dropped == 0 {
				dropped++
				return true, 0
			}
			if p.BTH.PSN == 7 && dropped == 1 {
				dropped++
				return true, 0
			}
		}
		return false, 0
	}
	data := fill(15000, 2)
	a.PostSend(Request{ID: 10, Op: OpWrite, Data: data, RKey: 7, VA: 0})
	pp.run()
	if !bytes.Equal(dst[:len(data)], data) {
		t.Fatal("payload mismatch after loss recovery")
	}
	if len(cqA.Poll()) != 1 {
		t.Fatal("completion missing")
	}
	if a.Retransmits == 0 {
		t.Error("expected retransmissions")
	}
}

func TestReadResponseLossRecovery(t *testing.T) {
	pp, a, b, cqA, _, _, memB := newPipe(t)
	src := fill(12000, 30)
	memB.Register(9, src)
	dst := make([]byte, 12000)
	droppedOnce := false
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		if p.BTH.Opcode == packet.OpReadRespMiddle && !droppedOnce {
			droppedOnce = true
			return true, 0
		}
		return false, 0
	}
	a.PostSend(Request{ID: 11, Op: OpRead, RKey: 9, VA: 0, Local: dst})
	pp.run()
	if !bytes.Equal(dst, src) {
		t.Fatal("read data mismatch after response loss")
	}
	if len(cqA.Poll()) != 1 {
		t.Fatal("read completion missing")
	}
	if b.Retransmits == 0 {
		t.Error("responder should have retransmitted the lost response")
	}
}

func TestRandomLossAllOps(t *testing.T) {
	pp, a, b, cqA, cqB, memA, memB := newPipe(t)
	_ = memA
	dstW := make([]byte, 65536)
	memB.Register(7, dstW)
	srcR := fill(30000, 44)
	memB.Register(9, srcR)
	word := make([]byte, 8)
	memB.Register(11, word)

	rng := sim.NewRNG(77)
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		if rng.Float64() < 0.03 {
			return true, 0
		}
		if rng.Float64() < 0.1 {
			return false, sim.Duration(rng.Intn(20)) * sim.Microsecond
		}
		return false, 0
	}

	recvBuf := make([]byte, 8192)
	b.PostRecv(500, recvBuf)

	writeData := fill(20000, 50)
	sendData := fill(6000, 60)
	readDst := make([]byte, 30000)
	a.PostSend(Request{ID: 20, Op: OpWrite, Data: writeData, RKey: 7, VA: 64})
	a.PostSend(Request{ID: 21, Op: OpSend, Data: sendData})
	a.PostSend(Request{ID: 22, Op: OpRead, RKey: 9, VA: 0, Local: readDst})
	a.PostSend(Request{ID: 23, Op: OpFetchAdd, RKey: 11, VA: 0, Add: 5})
	pp.run()

	if !bytes.Equal(dstW[64:64+len(writeData)], writeData) {
		t.Error("write corrupted under loss")
	}
	if !bytes.Equal(recvBuf[:len(sendData)], sendData) {
		t.Error("send corrupted under loss")
	}
	if !bytes.Equal(readDst, srcR) {
		t.Error("read corrupted under loss")
	}
	if v, _ := memB.ReadWord(11, 0); v != 5 {
		t.Errorf("atomic word = %d, want 5 (exactly-once)", v)
	}
	if got := len(cqA.Poll()); got != 4 {
		t.Errorf("requester CQEs = %d, want 4", got)
	}
	if got := len(cqB.Poll()); got != 1 {
		t.Errorf("responder CQEs = %d, want 1 (send)", got)
	}
}

func TestRNRNackAndRecovery(t *testing.T) {
	// Send arrives with no Receive WQE: RNR NACK, back-off, then success
	// once the WQE is posted (Appendix B.3).
	pp, a, b, _, cqB, _, _ := newPipe(t)
	data := fill(800, 70)
	a.PostSend(Request{ID: 30, Op: OpSend, Data: data})
	buf := make([]byte, 1024)
	pp.eng.Schedule(sim.Time(150*sim.Microsecond), func() {
		b.PostRecv(600, buf)
	})
	pp.run()
	if b.RNRNacks == 0 {
		t.Error("expected an RNR NACK")
	}
	got := cqB.Poll()
	if len(got) != 1 || got[0].WQEID != 600 {
		t.Fatalf("send never completed after RNR: %+v", got)
	}
	if !bytes.Equal(buf[:len(data)], data) {
		t.Error("payload mismatch")
	}
}

func TestSendWithInvalidateFences(t *testing.T) {
	// A Write followed by Send-with-Invalidate of the same rkey: the
	// invalidate must not revoke the region before the write lands
	// (Appendix B.5 fencing).
	pp, a, b, cqA, _, _, memB := newPipe(t)
	dst := make([]byte, 4096)
	memB.Register(7, dst)
	b.PostRecv(700, make([]byte, 64))

	data := fill(3000, 80)
	a.PostSend(Request{ID: 40, Op: OpWrite, Data: data, RKey: 7, VA: 0})
	a.PostSend(Request{ID: 41, Op: OpSendInv, Data: []byte("inv"), InvKey: 7})
	pp.run()
	if !bytes.Equal(dst[:len(data)], data) {
		t.Fatal("write lost despite fence")
	}
	if memB.Valid(7) {
		t.Error("rkey 7 should be invalidated")
	}
	if got := len(cqA.Poll()); got != 2 {
		t.Errorf("requester CQEs = %d", got)
	}
}

func TestSRQSharedAcrossArrivalOrder(t *testing.T) {
	// Appendix B.2: with an SRQ, WQEs are dequeued (and numbered) on
	// demand — a send packet with recv_WQE_SN 2 drains WQEs 0..2.
	pp, a, b, _, cqB, _, _ := newPipe(t)
	srq := NewSRQ()
	b.UseSRQ(srq)
	bufs := make([][]byte, 3)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
		srq.Post(uint64(800+i), bufs[i])
	}
	for i := 0; i < 3; i++ {
		a.PostSend(Request{ID: uint64(50 + i), Op: OpSend, Data: fill(1200, byte(90+i))})
	}
	pp.run()
	got := cqB.Poll()
	if len(got) != 3 {
		t.Fatalf("CQEs = %d", len(got))
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i][:1200], fill(1200, byte(90+i))) {
			t.Errorf("SRQ buffer %d mismatch", i)
		}
	}
	if srq.Pending() != 0 {
		t.Errorf("SRQ pending = %d", srq.Pending())
	}
}

func TestMSNTracksMessagesNotPackets(t *testing.T) {
	pp, a, _, _, _, _, memB := newPipe(t)
	memB.Register(7, make([]byte, 65536))
	// Three writes of different sizes: MSN must advance by exactly 3.
	for i, n := range []int{500, 5000, 12000} {
		a.PostSend(Request{ID: uint64(60 + i), Op: OpWrite, Data: fill(n, byte(i)), RKey: 7, VA: uint64(i * 16384)})
	}
	pp.run()
	if pp.b.MSN() != 3 {
		t.Errorf("MSN = %d, want 3", pp.b.MSN())
	}
}

func TestVPacketMarshalRoundTrip(t *testing.T) {
	p := &VPacket{
		BTH:     packet.BTH{Opcode: packet.OpWriteMiddle, PSN: 1234, AckReq: true},
		RETH:    packet.RETH{VA: 0xdead, RKey: 7, DMALen: 5000},
		Ext:     packet.IRNExt{WQESeq: 3, RelOffset: 2},
		AETH:    packet.AETH{Syndrome: packet.SyndromeAck, MSN: 9},
		Payload: fill(100, 1),
	}
	got, err := UnmarshalVPacket(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.BTH != p.BTH || got.RETH != p.RETH || got.Ext != p.Ext || got.AETH != p.AETH {
		t.Errorf("header mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload mismatch")
	}
}

func TestWireCodecSurvivesTransit(t *testing.T) {
	// Marshal/unmarshal every packet crossing the wire: header content
	// must survive byte-level encoding (the §5 packet format actually
	// carries everything needed).
	pp, a, _, cqA, _, _, memB := newPipe(t)
	dst := make([]byte, 8192)
	memB.Register(7, dst)
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		enc := p.Marshal()
		dec, err := UnmarshalVPacket(enc)
		if err != nil {
			t.Fatalf("codec: %v", err)
		}
		// Overwrite the in-flight packet's headers from the decoded
		// form; semantic fields like SackPSN/Imm ride outside the test
		// codec and are preserved.
		p.BTH, p.RETH, p.Ext, p.AETH = dec.BTH, dec.RETH, dec.Ext, dec.AETH
		p.Payload = dec.Payload
		return false, 0
	}
	data := fill(5000, 33)
	a.PostSend(Request{ID: 70, Op: OpWrite, Data: data, RKey: 7, VA: 0})
	pp.run()
	if !bytes.Equal(dst[:len(data)], data) {
		t.Fatal("payload corrupted through codec")
	}
	if len(cqA.Poll()) != 1 {
		t.Fatal("completion missing")
	}
}

func TestZeroLengthSend(t *testing.T) {
	// Zero-byte Sends are legal RDMA: they consume a Receive WQE and
	// deliver only the completion (often used as a doorbell).
	pp, a, b, _, cqB, _, _ := newPipe(t)
	b.PostRecv(900, make([]byte, 16))
	if err := a.PostSend(Request{ID: 80, Op: OpSend, Data: nil, Imm: 0x77}); err != nil {
		t.Fatal(err)
	}
	pp.run()
	got := cqB.Poll()
	if len(got) != 1 || got[0].WQEID != 900 || got[0].Imm != 0x77 {
		t.Fatalf("CQE: %+v", got)
	}
}

func TestInterleavedWriteAndRead(t *testing.T) {
	// A Read posted after a Write to the same region: both complete,
	// and the paper's completion semantics (Appendix B.1) hold — here we
	// use an explicit fence so the Read observes the Write.
	pp, a, _, cqA, _, _, memB := newPipe(t)
	region := make([]byte, 4096)
	memB.Register(7, region)
	data := fill(3000, 42)
	a.PostSend(Request{ID: 90, Op: OpWrite, Data: data, RKey: 7, VA: 0})
	dst := make([]byte, 3000)
	a.PostSend(Request{ID: 91, Op: OpRead, RKey: 7, VA: 0, Local: dst, Fence: true})
	pp.run()
	if !bytes.Equal(dst, data) {
		t.Fatal("fenced read did not observe the write")
	}
	if got := len(cqA.Poll()); got != 2 {
		t.Fatalf("CQEs = %d", got)
	}
}

func TestDuplicateReadRequestExecutesOnce(t *testing.T) {
	// Force the read request packet to be retransmitted (drop its ACK so
	// the requester times out): the responder must not re-execute an
	// already-executed atomic (exactly-once via the read_WQE_SN dedupe).
	pp, a, _, cqA, _, _, memB := newPipe(t)
	word := make([]byte, 8)
	memB.Register(11, word)
	ackDrops := 0
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		// Drop the first two read (N)ACK/ACK packets heading back.
		if (p.BTH.Opcode == packet.OpAcknowledge || p.BTH.Opcode == packet.OpReadRespOnly) && ackDrops < 1 {
			ackDrops++
			return true, 0
		}
		return false, 0
	}
	a.PostSend(Request{ID: 95, Op: OpFetchAdd, RKey: 11, VA: 0, Add: 1})
	pp.run()
	if v, _ := memB.ReadWord(11, 0); v != 1 {
		t.Errorf("word = %d, want 1 (atomic must execute exactly once)", v)
	}
	if got := len(cqA.Poll()); got != 1 {
		t.Errorf("CQEs = %d", got)
	}
}

func TestManySmallMessagesUnderChaos(t *testing.T) {
	// A hundred single-packet sends under drops and reordering: all
	// complete, all land in the right buffers in posted order.
	pp, a, b, _, cqB, _, _ := newPipe(t)
	rng := sim.NewRNG(123)
	pp.intercept = func(p *VPacket) (bool, sim.Duration) {
		if rng.Float64() < 0.02 {
			return true, 0
		}
		return false, sim.Duration(rng.Intn(5000)) * sim.Nanosecond
	}
	const n = 100
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 256)
		b.PostRecv(uint64(i), bufs[i])
	}
	for i := 0; i < n; i++ {
		a.PostSend(Request{ID: uint64(i), Op: OpSend, Data: fill(200, byte(i))})
	}
	pp.run()
	got := cqB.Poll()
	if len(got) != n {
		t.Fatalf("completions = %d, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[i].WQEID != uint64(i) {
			t.Fatalf("completion %d consumed WQE %d (order broken)", i, got[i].WQEID)
		}
		if !bytes.Equal(bufs[i][:200], fill(200, byte(i))) {
			t.Fatalf("buffer %d corrupted", i)
		}
	}
}

func TestSRQSharedAcrossTwoQPs(t *testing.T) {
	// Appendix B.2's point: one SRQ feeds Receive WQEs to multiple QPs.
	// Two requesters send to two responder QPs that share a pool; each
	// send drains one WQE, in arrival order across QPs.
	eng := sim.NewEngine()
	srq := NewSRQ()
	memB := NewMemory()
	cqB := &CQ{}

	mkPair := func(delay sim.Duration) (*QP, *QP) {
		var req, resp *QP
		wire := func(dst **QP, d sim.Duration) Wire {
			return WireFunc(func(p *VPacket) {
				pp := p
				eng.After(d, func() { (*dst).Receive(pp, eng.Now()) })
			})
		}
		req = NewQP("req", eng, DefaultConfig(), wire(&resp, delay), NewMemory(), &CQ{})
		resp = NewQP("resp", eng, DefaultConfig(), wire(&req, delay), memB, cqB)
		resp.UseSRQ(srq)
		return req, resp
	}
	// Different wire delays: requester 2's message arrives first.
	req1, _ := mkPair(10 * sim.Microsecond)
	req2, _ := mkPair(2 * sim.Microsecond)

	bufs := make([][]byte, 2)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
		srq.Post(uint64(1000+i), bufs[i])
	}
	req1.PostSend(Request{ID: 1, Op: OpSend, Data: fill(1000, 1)})
	req2.PostSend(Request{ID: 2, Op: OpSend, Data: fill(1000, 2)})
	eng.RunUntil(sim.Time(sim.Second))

	got := cqB.Poll()
	if len(got) != 2 {
		t.Fatalf("completions = %d, want 2", len(got))
	}
	// The faster wire (req2) drained the first SRQ WQE.
	if got[0].WQEID != 1000 || got[1].WQEID != 1001 {
		t.Errorf("SRQ drain order: %d, %d", got[0].WQEID, got[1].WQEID)
	}
	if !bytes.Equal(bufs[0][:1000], fill(1000, 2)) {
		t.Error("first-drained buffer should hold req2's payload")
	}
	if !bytes.Equal(bufs[1][:1000], fill(1000, 1)) {
		t.Error("second-drained buffer should hold req1's payload")
	}
	if srq.Pending() != 0 {
		t.Errorf("SRQ pending = %d", srq.Pending())
	}
}
