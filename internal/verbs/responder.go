package verbs

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// This file is the responder half of the QP: request-packet processing
// with out-of-order DMA placement (§5.3), the Read WQE buffer, premature
// CQEs, MSN maintenance, and read-response transmission on the rPSN space.

// onRequest handles an arriving request packet (Write/Send/Read/Atomic).
func (q *QP) onRequest(p *VPacket, now sim.Time) {
	psn := p.BTH.PSN
	switch {
	case psn < q.rxExp:
		// Duplicate below the window: re-ACK so the requester advances.
		q.sendAck()
		return
	case int(psn-q.rxExp) >= q.rx.Cap():
		q.Drops++ // far beyond the window: BDP-FC violation; drop
		return
	}

	ooo := psn != q.rxExp

	// Go-back-N baseline: no out-of-order placement. OOO arrivals are
	// dropped and NACKed so the requester rewinds from the cumulative
	// point — the RoCE behavior IRN's 2-bitmap replaces.
	if ooo && q.cfg.GoBackN {
		q.Drops++
		q.sendNack(psn)
		return
	}

	// Sends need their Receive WQE to place data; if it is not there:
	// in-order arrivals get an RNR NACK, out-of-order arrivals are
	// silently dropped (Appendix B.3 — the probe case).
	if isSendOpcode(p.BTH.Opcode) {
		if !q.recvQ.available(p.Ext.WQESeq) {
			if ooo {
				q.Drops++
				return
			}
			q.RNRNacks++
			q.sendRNR()
			return
		}
	}

	fresh, err := q.rx.MarkArrived(psn, p.BTH.Opcode.IsLast())
	if err != nil {
		q.Drops++
		return
	}
	if fresh {
		q.placeData(p, now)
	}

	if ooo {
		// NACK with cumulative ack + the PSN that triggered it (§3.1).
		q.sendNack(psn)
	} else {
		q.advanceCumulative(now)
		q.sendAck()
	}
}

// isSendOpcode reports Send-class opcodes (consume Receive WQEs for
// placement).
func isSendOpcode(op packet.Opcode) bool {
	switch op {
	case packet.OpSendFirst, packet.OpSendMiddle, packet.OpSendLast,
		packet.OpSendOnly, packet.OpSendLastImm, packet.OpSendOnlyImm,
		packet.OpSendLastInv, packet.OpSendOnlyInv:
		return true
	}
	return false
}

// placeData DMAs the packet payload to its final location immediately,
// even out of order (§5.3: "the NIC DMAs OOO packets directly to the
// final address in the application memory").
func (q *QP) placeData(p *VPacket, now sim.Time) {
	op := p.BTH.Opcode
	switch {
	case op >= packet.OpWriteFirst && op <= packet.OpWriteOnlyImm:
		// Every IRN write packet carries a RETH addressing its own
		// bytes (§5.3.1).
		if len(p.Payload) > 0 {
			q.mem.Write(p.RETH.RKey, p.RETH.VA, p.Payload)
		}
		if op.IsLast() {
			st := &stagedCQE{imm: p.Imm, length: int(p.RETH.DMALen)}
			if op.HasImmediate() {
				st.hasRecv = true
				st.recvSN = p.Ext.WQESeq
			}
			q.staged[p.BTH.PSN] = st
		}

	case isSendOpcode(op):
		// Placement via recv_WQE_SN + relative offset (§5.3.2).
		if w, ok := q.recvQ.get(p.Ext.WQESeq); ok {
			off := int(p.Ext.RelOffset) * q.cfg.MTU
			if off+len(p.Payload) <= len(w.Buf) {
				copy(w.Buf[off:], p.Payload)
			}
		}
		if op.IsLast() {
			st := &stagedCQE{
				recvSN:  p.Ext.WQESeq,
				imm:     p.Imm,
				hasRecv: true,
				isSend:  true,
				length:  int(p.Ext.RelOffset)*q.cfg.MTU + len(p.Payload),
			}
			if op == packet.OpSendLastInv || op == packet.OpSendOnlyInv {
				st.invKey = p.InvKey
			}
			q.staged[p.BTH.PSN] = st
		}

	case op == packet.OpReadRequest:
		// Park in the Read WQE buffer, indexed by read_WQE_SN (§5.3.2).
		q.parkRead(&pendingRead{
			psn: p.BTH.PSN, sn: p.Ext.WQESeq, op: OpRead,
			rkey: p.RETH.RKey, va: p.RETH.VA, length: int(p.RETH.DMALen),
		})

	case op == packet.OpFetchAdd:
		q.parkRead(&pendingRead{
			psn: p.BTH.PSN, sn: p.Ext.WQESeq, op: OpFetchAdd,
			rkey: p.RETH.RKey, va: p.RETH.VA, length: 8, add: p.AtomicCmp,
		})

	case op == packet.OpCompareSwap:
		q.parkRead(&pendingRead{
			psn: p.BTH.PSN, sn: p.Ext.WQESeq, op: OpCmpSwap,
			rkey: p.RETH.RKey, va: p.RETH.VA, length: 8,
			cmp: p.AtomicCmp, swap: p.AtomicSwap,
		})
	}
	_ = now
}

// parkRead stores a Read/Atomic request for in-order execution; the
// read_WQE_SN map dedupes retransmitted requests.
func (q *QP) parkRead(r *pendingRead) {
	if psn, ok := q.readSNAt[r.sn]; ok {
		if old, ok2 := q.readBuf[psn]; ok2 && old.executed {
			return // already executed; duplicate request
		}
	}
	q.readSNAt[r.sn] = r.psn
	q.readBuf[r.psn] = r
}

// advanceCumulative pops the in-order prefix of the 2-bitmap: bump the
// MSN per completed message, emit staged CQEs in order, execute eligible
// Read/Atomic requests (§5.3.3).
func (q *QP) advanceCumulative(now sim.Time) {
	base := q.rxExp
	pkts, _ := q.rx.AdvanceCumulative()
	if pkts == 0 {
		return
	}
	q.rxExp += uint32(pkts)
	for psn := base; psn != q.rxExp; psn++ {
		if st, ok := q.staged[psn]; ok {
			delete(q.staged, psn)
			q.msn++
			q.emitRecvCQE(st, now)
		}
		if r, ok := q.readBuf[psn]; ok && !r.executed {
			r.executed = true
			q.msn++
			q.executeRead(r, now)
		}
	}
}

// emitRecvCQE delivers a responder-side completion (and the
// Send-with-Invalidate side effect).
func (q *QP) emitRecvCQE(st *stagedCQE, now sim.Time) {
	if st.invKey != 0 {
		q.mem.Invalidate(st.invKey)
	}
	if !st.hasRecv {
		return // plain Writes complete silently at the responder
	}
	var id uint64
	if w, ok := q.recvQ.get(st.recvSN); ok {
		id = w.ID
	}
	q.recvQ.consume(st.recvSN)
	q.cq.push(CQE{
		WQEID:   id,
		Op:      OpSend,
		Imm:     st.imm,
		Len:     st.length,
		Receive: true,
		At:      now,
	})
}

// executeRead runs an eligible Read or Atomic and streams the response
// on the rPSN space.
func (q *QP) executeRead(r *pendingRead, now sim.Time) {
	switch r.op {
	case OpRead:
		data, ok := q.mem.Read(r.rkey, r.va, r.length)
		if !ok {
			data = make([]byte, r.length)
		}
		n := pktsFor(len(data), q.cfg.MTU)
		for i := 0; i < n; i++ {
			lo := i * q.cfg.MTU
			hi := lo + q.cfg.MTU
			if hi > len(data) {
				hi = len(data)
			}
			p := &VPacket{
				BTH:     packet.BTH{Opcode: readRespOpcode(i, n), PSN: q.rtxNext},
				Ext:     packet.IRNExt{WQESeq: r.sn, RelOffset: uint32(i)},
				Payload: data[lo:hi],
			}
			q.sendReadResp(p)
		}
	case OpFetchAdd, OpCmpSwap:
		orig, _ := q.mem.ReadWord(r.rkey, r.va)
		switch r.op {
		case OpFetchAdd:
			q.mem.WriteWord(r.rkey, r.va, orig+r.add)
		case OpCmpSwap:
			if orig == r.cmp {
				q.mem.WriteWord(r.rkey, r.va, r.swap)
			}
		}
		p := &VPacket{
			BTH:       packet.BTH{Opcode: packet.OpReadRespOnly, PSN: q.rtxNext},
			Ext:       packet.IRNExt{WQESeq: r.sn},
			AtomicCmp: orig, // original value rides back to the requester
		}
		q.sendReadResp(p)
	}
	_ = now
}

func readRespOpcode(i, n int) packet.Opcode {
	switch {
	case n == 1:
		return packet.OpReadRespOnly
	case i == 0:
		return packet.OpReadRespFirst
	case i == n-1:
		return packet.OpReadRespLast
	default:
		return packet.OpReadRespMiddle
	}
}

// sendReadResp assigns the next rPSN and transmits, retaining the packet
// for retransmission. The Read responder implements timeouts (§5.2).
func (q *QP) sendReadResp(p *VPacket) {
	p.BTH.PSN = q.rtxNext
	q.rtxNext++
	q.rpend[p.BTH.PSN] = p
	q.wire.Send(p)
	q.armReadTimer()
}

func (q *QP) armReadTimer() {
	if q.rtxCum >= q.rtxNext {
		q.rTimer.Cancel()
		return
	}
	d := q.cfg.RTOHigh
	if int(q.rtxNext-q.rtxCum) < q.cfg.RTOLowN {
		d = q.cfg.RTOLow
	}
	q.rTimer.Arm(d)
}

// onReadTimeout retransmits read responses from the cumulative point.
func (q *QP) onReadTimeout() {
	if q.rtxCum >= q.rtxNext {
		return
	}
	q.Timeouts++
	q.rInRecov = true
	if q.rtxNext > 0 {
		q.rRecSeq = q.rtxNext - 1
	}
	q.rRetxNx = q.rtxCum
	q.pumpReadRetx()
	q.armReadTimer()
}

// onReadNack processes the requester's read (N)ACKs (§5.2): cumulative
// advance plus SACK bookkeeping on the rPSN space.
func (q *QP) onReadNack(p *VPacket) {
	cum := p.BTH.PSN
	isNack := p.AETH.Syndrome == packet.SyndromeNack
	if cum > q.rtxCum {
		for psn := q.rtxCum; psn != cum; psn++ {
			delete(q.rpend, psn)
		}
		q.rtxSack.AdvanceTo(cum)
		q.rtxCum = cum
		if q.rRetxNx < cum {
			q.rRetxNx = cum
		}
		if q.rInRecov && cum > q.rRecSeq {
			q.rInRecov = false
		}
		q.armReadTimer()
	}
	if isNack {
		if p.SackPSN >= q.rtxCum {
			if fresh, err := q.rtxSack.Set(p.SackPSN); err == nil && fresh {
				if p.SackPSN+1 > q.rHigh {
					q.rHigh = p.SackPSN + 1
				}
			}
		}
		if !q.rInRecov {
			q.rInRecov = true
			if q.rtxNext > 0 {
				q.rRecSeq = q.rtxNext - 1
			}
			q.rRetxNx = q.rtxCum
		}
		q.pumpReadRetx()
	}
}

// pumpReadRetx selectively retransmits lost read responses.
func (q *QP) pumpReadRetx() {
	for q.rInRecov {
		var psn uint32
		if q.rRetxNx <= q.rtxCum {
			psn = q.rtxCum
			q.rRetxNx = q.rtxCum + 1
		} else {
			if q.rHigh == 0 || q.rRetxNx >= q.rHigh {
				return
			}
			off := q.rtxSack.NextZero(int(q.rRetxNx - q.rtxCum))
			psn = q.rtxCum + uint32(off)
			if psn >= q.rHigh {
				return
			}
			q.rRetxNx = psn + 1
		}
		if p, ok := q.rpend[psn]; ok {
			q.Retransmits++
			q.wire.Send(p)
		}
	}
}

// sendAck emits a cumulative ACK carrying the MSN (§5.3.3).
func (q *QP) sendAck() {
	q.wire.Send(&VPacket{
		BTH:  packet.BTH{Opcode: packet.OpAcknowledge, PSN: q.rxExp},
		AETH: packet.AETH{Syndrome: packet.SyndromeAck, MSN: q.msn},
	})
}

// sendNack emits an IRN NACK: cumulative ack + triggering PSN.
func (q *QP) sendNack(sack uint32) {
	q.wire.Send(&VPacket{
		BTH:     packet.BTH{Opcode: packet.OpAtomicAcknowledge, PSN: q.rxExp},
		AETH:    packet.AETH{Syndrome: packet.SyndromeNack, MSN: q.msn},
		SackPSN: sack,
	})
}

// sendRNR emits a receiver-not-ready NACK (Appendix B.3/B.4).
func (q *QP) sendRNR() {
	q.wire.Send(&VPacket{
		BTH:  packet.BTH{Opcode: packet.OpAtomicAcknowledge, PSN: q.rxExp},
		AETH: packet.AETH{Syndrome: packet.SyndromeRNRNack, MSN: q.msn},
	})
}
