// Package verbs implements the RDMA semantics layer of §5: queue pairs
// exchanging Write, Write-with-Immediate, Read, Send and Atomic
// operations with IRN's transport extensions — out-of-order packet
// placement directly into application memory, the responder's 2-bitmap
// and premature CQEs (§5.3.3), explicit WQE sequence numbers for matching
// packets to Receive WQEs and Read WQE buffer slots (§5.3.2), the RETH
// carried in every packet (§5.3.1), the split sPSN/rPSN sequence spaces
// (§5.4), read (N)ACKs on the new opcode (§5.2), shared receive queues,
// end-to-end credits with RNR handling, and Send-with-Invalidate fencing
// (Appendix B).
//
// The layer runs over an abstract Wire that may delay, reorder and drop
// packets; tests drive it over both a perfect pipe and adversarial
// channels. It is deliberately self-contained rather than layered on
// internal/core: §5 is precisely about how IRN's loss recovery interacts
// with RDMA message semantics, so the transport logic here operates on
// verbs packets with their real header content.
package verbs

import (
	"fmt"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// OpType is the application-level operation.
type OpType uint8

// Operation types (§5.1).
const (
	OpWrite OpType = iota
	OpWriteImm
	OpRead
	OpSend
	OpSendInv
	OpFetchAdd
	OpCmpSwap
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpSend:
		return "SEND"
	case OpSendInv:
		return "SEND_INV"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCmpSwap:
		return "CMP_SWAP"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(o))
	}
}

// Status is the completion status of a CQE.
type Status uint8

// Completion statuses.
const (
	StatusOK Status = iota
	// StatusRetryExceeded flushes a WQE whose QP exhausted its bounded
	// retry budget (Config.MaxRetries) — the error surface a client uses
	// to fail over instead of hanging on a dead peer.
	StatusRetryExceeded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusRetryExceeded:
		return "RETRY_EXCEEDED"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// CQE is a completion queue entry.
type CQE struct {
	WQEID   uint64
	Op      OpType
	Imm     uint32 // immediate data (receive side of Write-with-Imm / Send)
	Len     int
	Atomic  uint64 // original value returned by atomics
	Receive bool   // true for Receive WQE completions
	Status  Status
	At      sim.Time
}

// CQ is a completion queue.
type CQ struct {
	entries []CQE
	handler func(CQE)
}

// OnComplete registers fn to be invoked synchronously for every
// completion instead of queueing it for Poll. This is the event-driven
// consumption mode the kv service uses: the handler runs on the QP
// owner's simulation shard, inside the event that produced the
// completion, so reactions (reposting receives, sending a response) are
// scheduled through the owner's clock and stay deterministic.
func (q *CQ) OnComplete(fn func(CQE)) { q.handler = fn }

// push appends a completion, or delivers it to the OnComplete handler.
func (q *CQ) push(e CQE) {
	if q.handler != nil {
		q.handler(e)
		return
	}
	q.entries = append(q.entries, e)
}

// Poll drains and returns all pending completions.
func (q *CQ) Poll() []CQE {
	e := q.entries
	q.entries = nil
	return e
}

// Len reports pending completions.
func (q *CQ) Len() int { return len(q.entries) }

// Memory is the simulated host memory exposed to RDMA: a set of
// registered regions addressed by rkey, with byte-granularity DMA.
type Memory struct {
	regions map[uint32][]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{regions: make(map[uint32][]byte)}
}

// Register exposes buf under rkey.
func (m *Memory) Register(rkey uint32, buf []byte) {
	m.regions[rkey] = buf
}

// Invalidate revokes rkey (Send-with-Invalidate, Appendix B.5).
func (m *Memory) Invalidate(rkey uint32) {
	delete(m.regions, rkey)
}

// Valid reports whether rkey is registered.
func (m *Memory) Valid(rkey uint32) bool {
	_, ok := m.regions[rkey]
	return ok
}

// Write DMAs data to rkey at byte offset va. It reports whether the
// access was valid.
func (m *Memory) Write(rkey uint32, va uint64, data []byte) bool {
	buf, ok := m.regions[rkey]
	if !ok || va+uint64(len(data)) > uint64(len(buf)) {
		return false
	}
	copy(buf[va:], data)
	return true
}

// Read DMAs length bytes from rkey at offset va.
func (m *Memory) Read(rkey uint32, va uint64, length int) ([]byte, bool) {
	buf, ok := m.regions[rkey]
	if !ok || va+uint64(length) > uint64(len(buf)) {
		return nil, false
	}
	out := make([]byte, length)
	copy(out, buf[va:])
	return out, true
}

// View returns the registered bytes at rkey/va without copying. The
// slice aliases the region: it is only valid until the next Write to
// the range, so callers must parse (or copy) before returning to the
// event loop — the contract ring consumers use to decode a frame
// in place without a per-delivery allocation.
func (m *Memory) View(rkey uint32, va uint64, length int) ([]byte, bool) {
	buf, ok := m.regions[rkey]
	if !ok || va+uint64(length) > uint64(len(buf)) {
		return nil, false
	}
	return buf[va : va+uint64(length)], true
}

// ReadWord fetches the 8-byte word atomics operate on.
func (m *Memory) ReadWord(rkey uint32, va uint64) (uint64, bool) {
	b, ok := m.Read(rkey, va, 8)
	if !ok {
		return 0, false
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, true
}

// WriteWord stores the 8-byte word.
func (m *Memory) WriteWord(rkey uint32, va uint64, v uint64) bool {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.Write(rkey, va, b)
}

// Wire carries verbs packets between two QPs. Implementations may delay,
// reorder or drop.
type Wire interface {
	Send(p *VPacket)
}

// WireFunc adapts a function to Wire.
type WireFunc func(*VPacket)

// Send implements Wire.
func (f WireFunc) Send(p *VPacket) { f(p) }

// VPacket is a verbs-layer packet: the BTH plus IRN's extensions. IRN
// carries the RETH in every packet of a Write (§5.3.1) and the WQE
// sequence number + relative offset in Sends and Read/Atomic requests
// (§5.3.2).
type VPacket struct {
	BTH  packet.BTH
	RETH packet.RETH   // remote placement (writes; reads carry the source)
	Ext  packet.IRNExt // recv_WQE_SN / read_WQE_SN + relative offset
	AETH packet.AETH   // acks: syndrome + MSN

	// SackPSN is the out-of-order PSN carried by IRN NACKs.
	SackPSN uint32
	// Imm is immediate data (last packet of Write-with-Imm, Sends).
	Imm uint32
	// InvKey is the rkey invalidated by Send-with-Invalidate.
	InvKey uint32
	// Atomic operands (single-packet Atomic requests).
	AtomicCmp, AtomicSwap uint64

	Payload []byte
}

// Marshal encodes the packet's headers plus payload to bytes (big-endian
// wire layout); used by tests to verify the header arithmetic the
// hardware would perform.
func (p *VPacket) Marshal() []byte {
	b := p.BTH.Marshal(nil)
	b = p.RETH.Marshal(b)
	b = p.Ext.Marshal(b)
	b = p.AETH.Marshal(b)
	return append(b, p.Payload...)
}

// UnmarshalVPacket decodes a packet produced by Marshal. SackPSN and the
// atomic operands ride in payload position for simplicity of the test
// codec (the real design assigns them dedicated extension headers).
func UnmarshalVPacket(b []byte) (*VPacket, error) {
	var p VPacket
	var err error
	if p.BTH, err = packet.UnmarshalBTH(b); err != nil {
		return nil, err
	}
	b = b[packet.BTHSize:]
	if p.RETH, err = packet.UnmarshalRETH(b); err != nil {
		return nil, err
	}
	b = b[packet.RETHSize:]
	if p.Ext, err = packet.UnmarshalIRNExt(b); err != nil {
		return nil, err
	}
	b = b[packet.IRNExtSize:]
	if p.AETH, err = packet.UnmarshalAETH(b); err != nil {
		return nil, err
	}
	b = b[packet.AETHSize:]
	if len(b) > 0 {
		p.Payload = append([]byte(nil), b...)
	}
	return &p, nil
}
