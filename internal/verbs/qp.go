package verbs

import (
	"fmt"

	"github.com/irnsim/irn/internal/bitmap"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// Config parameterizes a QP.
type Config struct {
	MTU      int
	BDPCap   int          // request packets in flight (BDP-FC)
	RTOLow   sim.Duration // short timeout (few packets in flight)
	RTOHigh  sim.Duration
	RTOLowN  int
	RNRDelay sim.Duration // back-off after a receiver-not-ready NACK

	// GoBackN selects the baseline RoCE loss recovery instead of IRN's
	// selective retransmission: the responder drops out-of-order
	// arrivals (no OOO placement) and the requester rewinds the whole
	// window from the cumulative ack on every NACK or timeout.
	GoBackN bool

	// MaxRetries bounds consecutive recovery attempts (timeouts + RNR
	// NACKs with no cumulative progress in between). When exceeded the
	// QP goes dead: every incomplete WQE is flushed with
	// StatusRetryExceeded so callers get an error instead of a hang.
	// Zero means retry forever (the pre-existing behavior).
	MaxRetries int
}

// DefaultConfig returns sane defaults for tests and examples.
func DefaultConfig() Config {
	return Config{
		MTU:      1000,
		BDPCap:   110,
		RTOLow:   100 * sim.Microsecond,
		RTOHigh:  320 * sim.Microsecond,
		RTOLowN:  3,
		RNRDelay: 200 * sim.Microsecond,
	}
}

// Request is a work request posted to a QP's send queue.
type Request struct {
	ID    uint64
	Op    OpType
	Data  []byte // payload for Write/Send
	RKey  uint32 // remote region (Write/Read/Atomic)
	VA    uint64 // remote offset
	Local []byte // destination buffer for Read / atomic result landing
	Imm   uint32 // immediate data (WriteImm, Send*)
	// InvKey is the remote rkey revoked by SendInv.
	InvKey uint32
	// Fence delays this request until all prior requests completed
	// (§5.3.4, Appendix B.5). SendInv is always fenced.
	Fence bool
	// Atomic operands.
	Add, Cmp, Swap uint64
}

// reqWQE is an in-flight Request WQE at the requester.
type reqWQE struct {
	req      Request
	msgIdx   uint32 // posted order
	firstPSN uint32
	pkts     int
	// done tracks read/atomic data arrival.
	dataRemaining int
	expired       bool   // request acknowledged via MSN
	completed     bool   // CQE generated
	atomicVal     uint64 // original value returned by an atomic
}

// atomicResult records the original remote value.
func (w *reqWQE) atomicResult(v uint64) { w.atomicVal = v }

// RecvWQE is a Receive WQE: an application buffer consumed by Sends and
// Write-with-Immediates in posted order.
type RecvWQE struct {
	ID  uint64
	Buf []byte
	sn  uint32 // recv_WQE_SN, assigned at post (or SRQ dequeue)
}

// pendingRead is a Read/Atomic request parked in the responder's Read WQE
// buffer (§5.3.2) until all earlier packets have arrived.
type pendingRead struct {
	psn      uint32
	sn       uint32 // read_WQE_SN
	op       OpType
	rkey     uint32
	va       uint64
	length   int
	cmp, add uint64
	swap     uint64
	executed bool
}

// stagedCQE is a premature CQE (§5.3.3): the last packet of a message
// arrived before its predecessors; the completion is staged "in main
// memory" until the cumulative point passes it.
type stagedCQE struct {
	recvSN  uint32
	imm     uint32
	length  int
	invKey  uint32
	hasRecv bool // consumes a Receive WQE (Send*, WriteImm)
	isSend  bool
}

// QP is one end of a reliable connection. Both endpoints are full QPs:
// each side can be requester and responder simultaneously.
type QP struct {
	name string
	eng  *sim.Engine
	clk  *sim.Clock // scheduling clock (nil = engine clock; set for sharded fabrics)
	cfg  Config
	wire Wire
	mem  *Memory
	cq   *CQ

	// attempts counts recovery entries (timeouts, RNR backoffs) since
	// the last cumulative advance; dead is set once it exceeds
	// Config.MaxRetries and the QP has flushed its WQEs.
	attempts int
	dead     bool

	// ---- Requester: request transmission (sPSN space, §5.4) ----
	reqWQEs  []*reqWQE
	posted   uint32 // messages posted
	expired  uint32 // messages expired via MSN
	sendQ    []*VPacket
	fenceQ   []*Request // requests held behind a fence
	pend     map[uint32]*VPacket
	txNext   uint32
	txCum    uint32
	txSack   *bitmap.Bitmap
	inRecov  bool
	recSeq   uint32
	retxNext uint32
	highSack uint32
	rnrUntil sim.Time
	timer    *sim.Timer
	sendSSN  uint32 // recv_WQE_SN allocator (Send*, WriteImm)
	readSSN  uint32 // read_WQE_SN allocator

	// ---- Requester: read/atomic responses (rPSN space) ----
	readsOut map[uint32]*reqWQE // read_WQE_SN → WQE awaiting data
	rrx      *bitmap.TwoBitmap
	rrxExp   uint32

	// ---- Responder: request reception (sPSN space) ----
	rx       *bitmap.TwoBitmap
	rxExp    uint32
	msn      uint32
	staged   map[uint32]*stagedCQE
	recvQ    recvProvider
	readBuf  map[uint32]*pendingRead // keyed by sPSN of the request packet
	readSNAt map[uint32]uint32       // read_WQE_SN → sPSN (dedupe)

	// ---- Responder: read/atomic response transmission (rPSN space) ----
	rtxNext  uint32
	rtxCum   uint32
	rpend    map[uint32]*VPacket
	rtxSack  *bitmap.Bitmap
	rInRecov bool
	rRecSeq  uint32
	rRetxNx  uint32
	rHigh    uint32
	rTimer   *sim.Timer

	// Stats.
	Retransmits, Timeouts, RNRNacks, Drops uint64
}

// recvProvider abstracts the QP's own receive queue vs a shared one.
type recvProvider interface {
	// next dequeues the Receive WQE with the given sequence number,
	// allotting sequence numbers on demand for SRQs (Appendix B.2).
	get(sn uint32) (*RecvWQE, bool)
	// posted reports how many receive WQEs have sequence numbers
	// assigned or assignable right now.
	available(sn uint32) bool
	// consume marks sn consumed (CQE emitted).
	consume(sn uint32)
}

// NewQP builds a QP. wire sends packets toward the peer; mem is the
// memory exposed to the peer; cq receives completions.
func NewQP(name string, eng *sim.Engine, cfg Config, wire Wire, mem *Memory, cq *CQ) *QP {
	return NewQPOn(name, eng, nil, cfg, wire, mem, cq)
}

// NewQPOn builds a QP whose internal events (retransmission timers, RNR
// resume) are ranked by clk rather than the engine's own clock. On a
// sharded fabric every host-owned handler must schedule through the
// host's clock for the (time, rank) order — and therefore the results —
// to be independent of the partition; pass the owning NIC's Clock. A nil
// clk falls back to the engine clock (single-engine runs, tests).
func NewQPOn(name string, eng *sim.Engine, clk *sim.Clock, cfg Config, wire Wire, mem *Memory, cq *CQ) *QP {
	if cfg.MTU <= 0 || cfg.BDPCap <= 0 {
		panic("verbs: bad config")
	}
	q := &QP{
		name:     name,
		eng:      eng,
		clk:      clk,
		cfg:      cfg,
		wire:     wire,
		mem:      mem,
		cq:       cq,
		pend:     make(map[uint32]*VPacket),
		txSack:   bitmap.New(4096),
		readsOut: make(map[uint32]*reqWQE),
		rrx:      bitmap.NewTwo(4096),
		rx:       bitmap.NewTwo(4096),
		staged:   make(map[uint32]*stagedCQE),
		readBuf:  make(map[uint32]*pendingRead),
		readSNAt: make(map[uint32]uint32),
		rpend:    make(map[uint32]*VPacket),
		rtxSack:  bitmap.New(4096),
	}
	q.recvQ = newRecvQueue()
	q.timer = sim.NewHandlerTimer(eng, clk, q, qpTimer)
	q.rTimer = sim.NewHandlerTimer(eng, clk, q, qpReadTimer)
	return q
}

// QP sim.Handler event kinds.
const (
	qpTimer     uint8 = iota // request retransmission timer
	qpReadTimer              // read-response retransmission timer
	qpRNRResume              // RNR backoff elapsed (arg = rnrUntil generation)
)

// HandleEvent implements sim.Handler: timer and RNR-resume dispatch.
func (q *QP) HandleEvent(kind uint8, arg uint64) {
	switch kind {
	case qpTimer:
		q.onTimeout()
	case qpReadTimer:
		q.onReadTimeout()
	case qpRNRResume:
		if q.rnrUntil == sim.Time(arg) {
			q.pump()
		}
	}
}

// UseSRQ attaches a shared receive queue (Appendix B.2). The QP keeps
// its own recv_WQE_SN space over WQEs it dequeues from the pool.
func (q *QP) UseSRQ(srq *SRQ) { q.recvQ = newSRQBinding(srq) }

// PostRecv posts a Receive WQE to the QP's own receive queue.
func (q *QP) PostRecv(id uint64, buf []byte) {
	rq, ok := q.recvQ.(*recvQueue)
	if !ok {
		panic("verbs: QP uses an SRQ; post to the SRQ instead")
	}
	rq.post(&RecvWQE{ID: id, Buf: buf})
}

// MSN exposes the responder's message sequence number (tests).
func (q *QP) MSN() uint32 { return q.msn }

// Expected exposes the responder's expected sPSN (tests).
func (q *QP) Expected() uint32 { return q.rxExp }

// PostSend posts a Request WQE and starts transmission.
func (q *QP) PostSend(req Request) error {
	if q.dead {
		return fmt.Errorf("verbs: %s: qp dead (retry budget exhausted)", q.name)
	}
	if req.Op == OpSendInv {
		req.Fence = true // Appendix B.5
	}
	if (req.Fence && len(q.reqWQEs) > 0) || len(q.fenceQ) > 0 {
		q.fenceQ = append(q.fenceQ, &req)
		return nil
	}
	return q.admit(req)
}

// admit packetizes a request into the send queue.
func (q *QP) admit(req Request) error {
	w := &reqWQE{req: req, msgIdx: q.posted}
	switch req.Op {
	case OpWrite, OpWriteImm:
		if !validLen(len(req.Data)) {
			return fmt.Errorf("verbs: bad write length %d", len(req.Data))
		}
		w.pkts = pktsFor(len(req.Data), q.cfg.MTU)
	case OpSend, OpSendInv:
		if !validLen(len(req.Data)) {
			return fmt.Errorf("verbs: bad send length %d", len(req.Data))
		}
		w.pkts = pktsFor(len(req.Data), q.cfg.MTU)
	case OpRead:
		if len(req.Local) == 0 {
			return fmt.Errorf("verbs: read needs a destination buffer")
		}
		w.pkts = 1
		w.dataRemaining = pktsFor(len(req.Local), q.cfg.MTU)
	case OpFetchAdd, OpCmpSwap:
		w.pkts = 1
		w.dataRemaining = 1 // single response packet
	default:
		return fmt.Errorf("verbs: unknown op %v", req.Op)
	}
	w.firstPSN = q.txNext
	q.posted++
	q.reqWQEs = append(q.reqWQEs, w)
	q.buildPackets(w)
	q.pump()
	return nil
}

func validLen(n int) bool { return n >= 0 }

func pktsFor(n, mtu int) int {
	if n <= 0 {
		return 1
	}
	return (n + mtu - 1) / mtu
}

// buildPackets constructs the wire packets for a WQE, assigning sPSNs.
func (q *QP) buildPackets(w *reqWQE) {
	req := w.req
	switch req.Op {
	case OpWrite, OpWriteImm:
		q.buildSegmented(w, req.Data, true)
	case OpSend, OpSendInv:
		q.buildSegmented(w, req.Data, false)
	case OpRead:
		sn := q.readSSN
		q.readSSN++
		q.readsOut[sn] = w
		p := &VPacket{
			BTH:  packet.BTH{Opcode: packet.OpReadRequest, PSN: q.txNext},
			RETH: packet.RETH{VA: req.VA, RKey: req.RKey, DMALen: uint32(len(req.Local))},
			Ext:  packet.IRNExt{WQESeq: sn},
		}
		q.enqueue(p)
	case OpFetchAdd, OpCmpSwap:
		sn := q.readSSN
		q.readSSN++
		q.readsOut[sn] = w
		op := packet.OpFetchAdd
		if req.Op == OpCmpSwap {
			op = packet.OpCompareSwap
		}
		p := &VPacket{
			BTH:       packet.BTH{Opcode: op, PSN: q.txNext},
			RETH:      packet.RETH{VA: req.VA, RKey: req.RKey, DMALen: 8},
			Ext:       packet.IRNExt{WQESeq: sn},
			AtomicCmp: req.Cmp, AtomicSwap: req.Swap,
		}
		if req.Op == OpFetchAdd {
			p.AtomicCmp = req.Add // add operand rides in the cmp slot
		}
		q.enqueue(p)
	}
}

// buildSegmented splits Write/Send payloads into MTU packets. Writes
// carry a RETH in every packet with the packet's own placement address
// (§5.3.1); Sends carry recv_WQE_SN and the relative offset (§5.3.2).
func (q *QP) buildSegmented(w *reqWQE, data []byte, isWrite bool) {
	req := w.req
	mtu := q.cfg.MTU
	n := w.pkts
	var recvSN uint32
	if req.Op == OpSend || req.Op == OpSendInv || req.Op == OpWriteImm {
		recvSN = q.sendSSN
		q.sendSSN++
	}
	for i := 0; i < n; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(data) {
			hi = len(data)
		}
		var payload []byte
		if lo < len(data) {
			payload = data[lo:hi]
		}
		p := &VPacket{
			BTH:     packet.BTH{Opcode: segOpcode(req.Op, i, n), PSN: q.txNext},
			Payload: payload,
		}
		if isWrite {
			p.RETH = packet.RETH{VA: req.VA + uint64(lo), RKey: req.RKey, DMALen: uint32(len(data))}
		}
		switch req.Op {
		case OpSend, OpSendInv:
			p.Ext = packet.IRNExt{WQESeq: recvSN, RelOffset: uint32(i)}
		case OpWriteImm:
			if i == n-1 {
				p.Ext = packet.IRNExt{WQESeq: recvSN}
			}
		}
		if i == n-1 {
			p.Imm = req.Imm
			p.InvKey = req.InvKey
		}
		q.enqueue(p)
	}
}

// segOpcode picks first/middle/last/only opcodes.
func segOpcode(op OpType, i, n int) packet.Opcode {
	type trio struct{ first, mid, last, only packet.Opcode }
	var t trio
	switch op {
	case OpWrite:
		t = trio{packet.OpWriteFirst, packet.OpWriteMiddle, packet.OpWriteLast, packet.OpWriteOnly}
	case OpWriteImm:
		t = trio{packet.OpWriteFirst, packet.OpWriteMiddle, packet.OpWriteLastImm, packet.OpWriteOnlyImm}
	case OpSend:
		t = trio{packet.OpSendFirst, packet.OpSendMiddle, packet.OpSendLast, packet.OpSendOnly}
	case OpSendInv:
		t = trio{packet.OpSendFirst, packet.OpSendMiddle, packet.OpSendLastInv, packet.OpSendOnlyInv}
	}
	switch {
	case n == 1:
		return t.only
	case i == 0:
		return t.first
	case i == n-1:
		return t.last
	default:
		return t.mid
	}
}

// enqueue assigns the next sPSN and queues the packet for transmission.
func (q *QP) enqueue(p *VPacket) {
	p.BTH.PSN = q.txNext
	q.txNext++
	q.sendQ = append(q.sendQ, p)
}

// pump transmits everything currently allowed: retransmissions first,
// then new packets within BDP-FC.
func (q *QP) pump() {
	if q.dead {
		return
	}
	now := q.eng.Now()
	if now < q.rnrUntil {
		return // backing off after an RNR NACK
	}
	if q.cfg.GoBackN {
		// Go-back-N (baseline RoCE): rewind the whole window from the
		// recovery point; every pending packet at and above it goes out
		// again in PSN order.
		for q.inRecov && q.retxNext < q.txNext {
			if p, ok := q.pend[q.retxNext]; ok {
				q.Retransmits++
				q.wire.Send(p)
			}
			q.retxNext++
		}
	}
	// Retransmissions (selective, §3.1).
	for !q.cfg.GoBackN && q.inRecov {
		psn, ok := q.peekRetx()
		if !ok {
			break
		}
		if q.retxNext <= q.txCum {
			q.retxNext = q.txCum + 1
		} else {
			q.retxNext = psn + 1
		}
		if p, ok := q.pend[psn]; ok {
			q.Retransmits++
			q.wire.Send(p)
		}
	}
	// New packets under BDP-FC.
	for len(q.sendQ) > 0 && int(q.txNext-q.txCum) <= q.cfg.BDPCap+len(q.sendQ) {
		p := q.sendQ[0]
		if int(p.BTH.PSN-q.txCum) >= q.cfg.BDPCap {
			break
		}
		q.sendQ = q.sendQ[1:]
		q.pend[p.BTH.PSN] = p
		q.wire.Send(p)
	}
	q.armTimer()
}

// peekRetx mirrors §3.1: first the cumulative ack, then holes below the
// highest SACK.
func (q *QP) peekRetx() (uint32, bool) {
	if q.retxNext <= q.txCum {
		if _, ok := q.pend[q.txCum]; ok {
			return q.txCum, true
		}
		return 0, false
	}
	if q.highSack == 0 || q.retxNext >= q.highSack {
		return 0, false
	}
	off := q.txSack.NextZero(int(q.retxNext - q.txCum))
	psn := q.txCum + uint32(off)
	if psn < q.highSack {
		if _, ok := q.pend[psn]; ok {
			return psn, true
		}
	}
	return 0, false
}

// armTimer arms the request retransmission timer (§3.1 dual timeouts).
func (q *QP) armTimer() {
	if q.txCum >= q.txNext {
		q.timer.Cancel()
		return
	}
	d := q.cfg.RTOHigh
	if int(q.txNext-q.txCum) < q.cfg.RTOLowN {
		d = q.cfg.RTOLow
	}
	q.timer.Arm(d)
}

// onTimeout restarts recovery from the cumulative ack.
func (q *QP) onTimeout() {
	if q.dead || q.txCum >= q.txNext {
		return
	}
	q.Timeouts++
	if q.bumpAttempts() {
		return
	}
	q.enterRecovery()
	q.retxNext = q.txCum
	q.pump()
}

// bumpAttempts counts one recovery attempt against the bounded retry
// budget; it reports true when the budget is exhausted and the QP died.
func (q *QP) bumpAttempts() bool {
	q.attempts++
	if q.cfg.MaxRetries > 0 && q.attempts > q.cfg.MaxRetries {
		q.fail(q.eng.Now())
		return true
	}
	return false
}

// Dead reports whether the QP exhausted its retry budget and flushed.
func (q *QP) Dead() bool { return q.dead }

// fail kills the QP: cancel timers and flush every incomplete WQE with
// StatusRetryExceeded, in deterministic (posted / sequence-number) order.
func (q *QP) fail(now sim.Time) {
	if q.dead {
		return
	}
	q.dead = true
	q.timer.Cancel()
	q.rTimer.Cancel()
	for _, w := range q.reqWQEs {
		if !w.completed {
			w.completed = true
			q.cq.push(CQE{WQEID: w.req.ID, Op: w.req.Op, Status: StatusRetryExceeded, At: now})
		}
	}
	q.reqWQEs = nil
	// Reads/atomics already expired from reqWQEs but awaiting data:
	// walk the read_WQE_SN space in order, never the map.
	for sn := uint32(0); sn < q.readSSN; sn++ {
		if w, ok := q.readsOut[sn]; ok && !w.completed {
			w.completed = true
			q.cq.push(CQE{WQEID: w.req.ID, Op: w.req.Op, Status: StatusRetryExceeded, At: now})
		}
	}
	for _, r := range q.fenceQ {
		q.cq.push(CQE{WQEID: r.ID, Op: r.Op, Status: StatusRetryExceeded, At: now})
	}
	q.fenceQ = nil
	q.sendQ = nil
}

func (q *QP) enterRecovery() {
	if q.inRecov {
		return
	}
	q.inRecov = true
	if q.txNext > 0 {
		q.recSeq = q.txNext - 1
	}
}

// Receive processes a packet from the peer; the Wire calls this.
func (q *QP) Receive(p *VPacket, now sim.Time) {
	if q.dead {
		return // late packets for a failed QP are dropped silently
	}
	switch p.BTH.Opcode {
	case packet.OpAcknowledge:
		q.onAck(p, false, now)
	case packet.OpAtomicAcknowledge: // used as the NACK carrier
		q.onAck(p, true, now)
	case packet.OpReadRespFirst, packet.OpReadRespMiddle, packet.OpReadRespLast, packet.OpReadRespOnly:
		q.onReadResponse(p, now)
	case packet.OpReadNack:
		q.onReadNack(p)
	default:
		q.onRequest(p, now)
	}
}
