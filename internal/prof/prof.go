// Package prof is the pprof plumbing shared by the CLIs: a
// -cpuprofile/-memprofile pair that brackets the simulation work, so perf
// investigations never hand-roll profiling again (the flags mirror `go
// test`'s).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a
// stop function that ends it and writes the heap profile (when memPath is
// non-empty). Call stop after the simulation work and before any os.Exit
// — os.Exit skips deferred calls, so error paths that exit early simply
// lose the profile rather than corrupt it. Setup or write failures are
// fatal: a perf run with a silently missing profile wastes the whole run.
func Start(cpuPath, memPath string) (stop func()) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal("cpuprofile", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile", err)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fatal("memprofile", err)
		}
		defer f.Close()
		runtime.GC() // materialize the live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("memprofile", err)
		}
	}
}

// fatal reports a profiling setup error and exits.
func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
	os.Exit(1)
}
