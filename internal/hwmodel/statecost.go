package hwmodel

// This file reproduces §6.1's NIC-memory accounting: "The additional
// state that IRN introduces consumes a total of only 3-10% of the current
// NIC cache for a couple of thousands of QPs and tens of thousands of
// WQEs."

// StateCost itemizes IRN's additional NIC state.
type StateCost struct {
	// PerQPStateBits is the per-QP scalar state: 24+24 bits (packet
	// sequence to retransmit + recovery sequence) + 4 flag bits at each
	// end = 104, plus 56 bits at the responder for the Read timeout
	// timer and in-progress Read tracking = 160 bits.
	PerQPStateBits int
	// PerQPBitmapBits is the five BDP-sized bitmaps: the responder's
	// 2-bitmap (2), the requester's Read-response bitmap (1), and one
	// SACK bitmap at each end (2) — 5 × 128 = 640 bits.
	PerQPBitmapBits int
	// PerWQEBytes is the WQE-context growth: 3 bytes of sequence
	// numbers on a 64-byte context.
	PerWQEBytes int
	// SharedBytes is state shared across QPs: the BDP cap, RTOLow and N
	// — 10 bytes total.
	SharedBytes int
}

// PaperStateCost returns the §6.1 numbers.
func PaperStateCost() StateCost {
	return StateCost{
		PerQPStateBits:  160,
		PerQPBitmapBits: 5 * Bits,
		PerWQEBytes:     3,
		SharedBytes:     10,
	}
}

// PerQPBits returns the total additional bits per queue pair.
func (c StateCost) PerQPBits() int { return c.PerQPStateBits + c.PerQPBitmapBits }

// TotalBytes computes the additional NIC memory for a deployment of qps
// queue pairs and wqes outstanding work-queue elements.
func (c StateCost) TotalBytes(qps, wqes int) int {
	bits := qps * c.PerQPBits()
	return (bits+7)/8 + wqes*c.PerWQEBytes + c.SharedBytes
}

// CacheFraction returns the share of a NIC cache of cacheBytes consumed
// by IRN state for the given deployment size. The paper's claim: 3-10%
// for ~2K QPs and tens of thousands of WQEs against the several-MB caches
// of current RoCE NICs.
func (c StateCost) CacheFraction(qps, wqes, cacheBytes int) float64 {
	return float64(c.TotalBytes(qps, wqes)) / float64(cacheBytes)
}

// Bitmap100GBits returns the bitmap width needed at 100 Gbps (2.5× the
// 40 Gbps BDP), used by the §6.2.2 resource-scaling observation.
func Bitmap100GBits() int { return Bits * 100 / 40 }
