package hwmodel

// This file reproduces the paper's hardware-validation methodology
// (§6.2.1): "We validated the correctness of our implementation by
// generating input event traces for each synthesized module from the
// simulations described in §4 and passing them as input in the test
// bench... The output traces, thus generated, were then matched with the
// corresponding output traces obtained from the simulator."
//
// Here: run the real IRN transport over the fabric with injected losses,
// record the receiver's input events (data arrivals) and output events
// (ACK/NACK decisions), then replay the inputs through the hardware
// receiveData module and require identical outputs.

import (
	"testing"

	"github.com/irnsim/irn/internal/core"
	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

// ctrlEvent is one output event of the simulated receiver.
type ctrlEvent struct {
	nack bool
	cum  packet.PSN
	sack packet.PSN
}

// recordingEP wraps the NIC endpoint, taping control-packet emissions.
type recordingEP struct {
	transport.Endpoint
	tape *[]ctrlEvent
}

func (r recordingEP) SendControl(p *packet.Packet) {
	switch p.Type {
	case packet.TypeAck:
		*r.tape = append(*r.tape, ctrlEvent{nack: false, cum: p.CumAck})
	case packet.TypeNack:
		*r.tape = append(*r.tape, ctrlEvent{nack: true, cum: p.CumAck, sack: p.SackPSN})
	}
	r.Endpoint.SendControl(p)
}

// arrival is one input event: a data packet reaching the receiver.
type arrival struct {
	psn  packet.PSN
	last bool
}

// tapSink records arrivals before handing them to the real receiver.
type tapSink struct {
	rcv  transport.Sink
	tape *[]arrival
}

func (t tapSink) HandleData(p *packet.Packet, now sim.Time) {
	*t.tape = append(*t.tape, arrival{psn: p.PSN, last: p.Last})
	t.rcv.HandleData(p, now)
}

func TestReceiveDataMatchesSimulatorTrace(t *testing.T) {
	// 1. Run the §4-style simulation: one IRN flow over a lossy fabric.
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	rng := sim.NewRNG(2024)
	cfg.LossInject = func(pkt *packet.Packet) bool {
		return pkt.Type == packet.TypeData && rng.Float64() < 0.04
	}
	net := fabric.New(eng, topo.NewStar(2), cfg)

	p := core.DefaultParams(1000, 113)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 600 * 1000, Pkts: 600}
	snd := core.NewSender(net.NIC(0), flow, p, nil)

	var outputs []ctrlEvent
	var inputs []arrival
	rcv := core.NewReceiver(recordingEP{net.NIC(1), &outputs}, flow, p, nil)
	net.NIC(1).AttachSink(flow.ID, tapSink{rcv, &inputs})
	net.NIC(0).AttachSource(snd)
	eng.RunUntil(sim.Time(200 * sim.Millisecond))

	if !flow.Finished {
		t.Fatal("flow did not complete")
	}
	if len(inputs) == 0 || len(outputs) == 0 {
		t.Fatal("empty traces")
	}
	if snd.Stats.Retransmits == 0 {
		t.Fatal("trace has no loss recovery; validation would be vacuous")
	}

	// 2. Replay the input trace through the hardware receiveData module.
	ctx := &QPContext{}
	var replayed []ctrlEvent
	for _, in := range inputs {
		out := ReceiveData(ctx, in.psn, in.last)
		switch {
		case out.SendAck:
			replayed = append(replayed, ctrlEvent{nack: false, cum: packet.PSN(out.AckPSN)})
		case out.SendNack:
			replayed = append(replayed, ctrlEvent{nack: true, cum: packet.PSN(out.AckPSN), sack: packet.PSN(out.NackSack)})
		}
	}

	// 3. The output traces must match event for event.
	if len(replayed) != len(outputs) {
		t.Fatalf("output trace length: hardware %d vs simulator %d", len(replayed), len(outputs))
	}
	for i := range outputs {
		if outputs[i] != replayed[i] {
			t.Fatalf("output event %d diverged: simulator %+v, hardware %+v", i, outputs[i], replayed[i])
		}
	}
	if ctx.Expected != packet.PSN(flow.Pkts) {
		t.Errorf("hardware expected = %d, want %d", ctx.Expected, flow.Pkts)
	}
}

func TestReceiveAckMatchesSenderTrace(t *testing.T) {
	// Same idea for the sender side: record the ACK/NACK stream reaching
	// the sender and its retransmission decisions, then replay the
	// control trace through receiveAck + txFree and require the same
	// retransmission PSNs.
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	rng := sim.NewRNG(5150)
	cfg.LossInject = func(pkt *packet.Packet) bool {
		return pkt.Type == packet.TypeData && rng.Float64() < 0.03
	}
	net := fabric.New(eng, topo.NewStar(2), cfg)

	p := core.DefaultParams(1000, 113)
	// Disable timeouts from interfering: timeouts are rare in this run
	// (NACK recovery dominates with many packets in flight), but keep
	// the RTO high so the trace stays NACK-driven.
	p.RTOLow = 50 * sim.Millisecond
	p.RTOHigh = 50 * sim.Millisecond
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 600 * 1000, Pkts: 600}

	var tape []senderEvent

	snd := core.NewSender(net.NIC(0), flow, p, nil)
	rcv := core.NewReceiver(net.NIC(1), flow, p, nil)
	net.NIC(1).AttachSink(flow.ID, rcv)
	// Wrap the sender to tape the merged stream of control arrivals and
	// transmissions — the exact interleaving the NIC executed.
	net.NIC(0).AttachSource(senderTap{snd, &tape})
	eng.RunUntil(sim.Time(400 * sim.Millisecond))

	if !flow.Finished {
		t.Fatal("flow did not complete")
	}

	// Replay the tape: every taped transmission becomes one txFree
	// invocation; every taped control arrival one receiveAck. The
	// hardware must pick the same PSN for every transmission, including
	// every retransmission.
	ctx := &QPContext{}
	retxSeen := 0
	for i, ev := range tape {
		if ev.tx {
			out := TxFree(ctx, uint32(flow.Pkts), 0 /* window enforced by tape */)
			if !out.HasPacket {
				t.Fatalf("event %d: hardware had no packet; simulator sent PSN %d", i, ev.psn)
			}
			if packet.PSN(out.PSN) != ev.psn {
				t.Fatalf("event %d: hardware sent PSN %d, simulator sent %d", i, out.PSN, ev.psn)
			}
			if out.Retransmit != ev.retx {
				t.Fatalf("event %d: retransmit flag %v vs simulator %v (PSN %d)", i, out.Retransmit, ev.retx, ev.psn)
			}
			if ev.retx {
				retxSeen++
			}
		} else {
			ReceiveAck(ctx, uint32(ev.cum), ev.nack, uint32(ev.sack))
		}
	}
	if retxSeen == 0 {
		t.Fatal("no retransmissions in trace; validation vacuous")
	}
	if ctx.CumAck != uint32(flow.Pkts) {
		t.Errorf("hardware cum = %d, want %d", ctx.CumAck, flow.Pkts)
	}
}

// senderEvent is one taped sender event: either a transmission (tx) or a
// control arrival.
type senderEvent struct {
	tx   bool
	psn  packet.PSN // transmissions: the PSN sent
	retx bool       // transmissions: retransmission?
	nack bool       // control: NACK?
	cum  packet.PSN
	sack packet.PSN
}

// senderTap wraps a core.Sender, taping the merged event stream.
type senderTap struct {
	*core.Sender
	tape *[]senderEvent
}

func (s senderTap) HandleControl(p *packet.Packet, now sim.Time) {
	switch p.Type {
	case packet.TypeAck:
		*s.tape = append(*s.tape, senderEvent{nack: false, cum: p.CumAck})
	case packet.TypeNack:
		*s.tape = append(*s.tape, senderEvent{nack: true, cum: p.CumAck, sack: p.SackPSN})
	}
	s.Sender.HandleControl(p, now)
}

func (s senderTap) NextPacket(now sim.Time) *packet.Packet {
	before := s.Sender.Stats.Retransmits
	pkt := s.Sender.NextPacket(now)
	if pkt != nil {
		*s.tape = append(*s.tape, senderEvent{
			tx:   true,
			psn:  pkt.PSN,
			retx: s.Sender.Stats.Retransmits > before,
		})
	}
	return pkt
}
