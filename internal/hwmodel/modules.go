package hwmodel

// This file implements the four packet-processing modules of §6.2.1. Each
// module is a pure function of (packet metadata, QP context) → (outputs,
// updated QP context), matching the synthesis setup: "each module receives
// the relevant packet metadata and the QP context as streamed inputs...
// The updated QP context is passed as streamed output from the module."

// QPContext is the per-QP state streamed into the modules: the §6.1
// additional IRN state. Sequence numbers are ring offsets relative to the
// bitmap heads (the hardware holds 24-bit PSNs; the offset form is what
// the bitmap logic consumes).
type QPContext struct {
	// Responder-side.
	Recv     Bitmap128 // received packets (half of the 2-bitmap)
	LastPkt  Bitmap128 // message-boundary flags (other half)
	Expected uint32    // expected PSN (absolute)
	MSN      uint32    // message sequence number

	// Requester-side.
	SACK     Bitmap128 // selective acks over [CumAck, ...)
	CumAck   uint32    // cumulative acknowledgement (absolute)
	NextSeq  uint32    // next new sequence to transmit
	RecSeq   uint32    // recovery sequence
	HighSack uint32    // highest selectively-acked PSN + 1 (0 = none)
	RetxNext uint32    // retransmission scan pointer
	InRecov  bool

	// Timeout state.
	InFlight  uint32
	RTOLowArm bool // armed with RTOLow (flag checked by the timeout module)
	RTOLowN   uint32
}

// ReceiveDataOut is the receiveData module's output: what is needed "to
// generate an ACK/NACK packet and the number of Receive WQEs to be
// expired".
type ReceiveDataOut struct {
	SendAck    bool
	SendNack   bool
	AckPSN     uint32 // cumulative acknowledgement to send
	NackSack   uint32 // PSN to carry as the selective ack
	ExpireWQEs uint32 // receive WQEs consumed by this advance
	MSNInc     uint32 // message sequence number increment
	Duplicate  bool
}

// ReceiveData processes a data-packet arrival (§6.2.1 module 1). psn is
// absolute; lastOfMsg flags a message boundary.
func ReceiveData(ctx *QPContext, psn uint32, lastOfMsg bool) ReceiveDataOut {
	var out ReceiveDataOut
	off := psn - ctx.Expected
	if int32(off) < 0 {
		// Below the window: duplicate; re-ACK.
		out.Duplicate = true
		out.SendAck = true
		out.AckPSN = ctx.Expected
		return out
	}
	if off >= Bits {
		// Beyond the tracking window (sender violated BDP-FC): NACK.
		out.SendNack = true
		out.AckPSN = ctx.Expected
		out.NackSack = psn
		return out
	}
	if ctx.Recv.get(off) {
		out.Duplicate = true
	}
	ctx.Recv.set(off)
	if lastOfMsg {
		ctx.LastPkt.set(off)
	}
	if off == 0 {
		// In-order: find-first-zero gives the new expected sequence;
		// popcount over the advanced prefix gives the MSN increment and
		// WQE expirations.
		n := ctx.Recv.FirstZero()
		out.MSNInc = ctx.LastPkt.PopcountPrefix(n)
		out.ExpireWQEs = out.MSNInc
		ctx.MSN += out.MSNInc
		ctx.Recv.Shift(n)
		ctx.LastPkt.Shift(n)
		ctx.Expected += n
		out.SendAck = true
		out.AckPSN = ctx.Expected
		return out
	}
	// Out of order: NACK with cumulative ack + triggering PSN.
	out.SendNack = true
	out.AckPSN = ctx.Expected
	out.NackSack = psn
	return out
}

// TxFreeOut is the txFree module's output: "the sequence number of the
// packet to be (re-)transmitted".
type TxFreeOut struct {
	HasPacket  bool
	PSN        uint32
	Retransmit bool
}

// TxFree runs when the link frees up (§6.2.1 module 2): during loss
// recovery it looks ahead in the SACK bitmap for the next sequence to
// retransmit; otherwise it emits the next new sequence (subject to the
// BDP-FC window supplied as wndCap).
func TxFree(ctx *QPContext, totalPkts, wndCap uint32) TxFreeOut {
	if ctx.InRecov {
		if ctx.RetxNext <= ctx.CumAck && ctx.CumAck < totalPkts {
			ctx.RetxNext = ctx.CumAck + 1
			return TxFreeOut{HasPacket: true, PSN: ctx.CumAck, Retransmit: true}
		}
		if ctx.HighSack > 0 && ctx.RetxNext < ctx.HighSack {
			// Look-ahead: first zero in the SACK bitmap at or after the
			// scan pointer.
			off := ctx.RetxNext - ctx.CumAck
			for off < Bits {
				if !ctx.SACK.get(off) {
					break
				}
				off++
			}
			psn := ctx.CumAck + off
			if psn < ctx.HighSack && psn < totalPkts {
				ctx.RetxNext = psn + 1
				return TxFreeOut{HasPacket: true, PSN: psn, Retransmit: true}
			}
		}
	}
	if ctx.NextSeq < totalPkts && (wndCap == 0 || ctx.NextSeq-ctx.CumAck < wndCap) {
		psn := ctx.NextSeq
		ctx.NextSeq++
		ctx.InFlight = ctx.NextSeq - ctx.CumAck
		return TxFreeOut{HasPacket: true, PSN: psn}
	}
	return TxFreeOut{}
}

// ReceiveAckOut is the receiveAck module's output.
type ReceiveAckOut struct {
	NewlyAcked uint32
	EnteredRec bool
	ExitedRec  bool
}

// ReceiveAck processes an ACK or NACK arrival (§6.2.1 module 3): advance
// the cumulative point (bitmap head shift), record the selective ack, and
// maintain recovery state.
func ReceiveAck(ctx *QPContext, cum uint32, nack bool, sack uint32) ReceiveAckOut {
	var out ReceiveAckOut
	if cum > ctx.CumAck {
		out.NewlyAcked = cum - ctx.CumAck
		ctx.SACK.Shift(out.NewlyAcked)
		ctx.CumAck = cum
		if ctx.RetxNext < cum {
			ctx.RetxNext = cum
		}
		if ctx.NextSeq < cum {
			ctx.NextSeq = cum
		}
		if ctx.InRecov && cum > ctx.RecSeq {
			ctx.InRecov = false
			out.ExitedRec = true
		}
		ctx.InFlight = ctx.NextSeq - ctx.CumAck
	}
	if nack {
		if off := sack - ctx.CumAck; int32(off) >= 0 && off < Bits {
			ctx.SACK.set(off)
			if sack+1 > ctx.HighSack {
				ctx.HighSack = sack + 1
			}
		}
		if !ctx.InRecov {
			ctx.InRecov = true
			out.EnteredRec = true
			if ctx.NextSeq > 0 {
				ctx.RecSeq = ctx.NextSeq - 1
			}
			ctx.RetxNext = ctx.CumAck
		}
	}
	return out
}

// TimeoutOut is the timeout module's output.
type TimeoutOut struct {
	// Extend asks the NIC to extend the timer to RTOHigh instead of
	// acting: the RTOLow condition did not hold (§6.2.1 module 4).
	Extend bool
	// Fire executes the timeout action (enter recovery, rescan).
	Fire bool
}

// Timeout runs when the timer expires with the RTOLow value: "it checks
// if the condition for using RTOLow holds. If not, it does not take any
// action and sets an output flag to extend the timeout to RTOHigh."
func Timeout(ctx *QPContext) TimeoutOut {
	if ctx.RTOLowArm && ctx.InFlight >= ctx.RTOLowN {
		ctx.RTOLowArm = false
		return TimeoutOut{Extend: true}
	}
	if ctx.CumAck >= ctx.NextSeq {
		return TimeoutOut{}
	}
	ctx.InRecov = true
	if ctx.NextSeq > 0 {
		ctx.RecSeq = ctx.NextSeq - 1
	}
	ctx.RetxNext = ctx.CumAck
	return TimeoutOut{Fire: true}
}
