package hwmodel

import (
	"testing"
	"testing/quick"

	"github.com/irnsim/irn/internal/sim"
)

func TestBitmap128Basics(t *testing.T) {
	var b Bitmap128
	if b.FirstZero() != 0 {
		t.Fatalf("FirstZero of empty = %d", b.FirstZero())
	}
	b.Set(0)
	b.Set(1)
	b.Set(3)
	if b.FirstZero() != 2 {
		t.Errorf("FirstZero = %d, want 2", b.FirstZero())
	}
	if b.PopcountPrefix(4) != 3 {
		t.Errorf("PopcountPrefix(4) = %d, want 3", b.PopcountPrefix(4))
	}
	if b.PopcountPrefix(2) != 2 {
		t.Errorf("PopcountPrefix(2) = %d", b.PopcountPrefix(2))
	}
	b.Shift(2)
	if b.Get(0) {
		t.Error("offset 0 should be clear after shift (was bit 2)")
	}
	if !b.Get(1) {
		t.Error("offset 1 should be set after shift (was bit 3)")
	}
	if b.Count() != 1 {
		t.Errorf("Count = %d", b.Count())
	}
}

func TestBitmap128FullWindow(t *testing.T) {
	var b Bitmap128
	for i := uint32(0); i < Bits; i++ {
		b.Set(i)
	}
	if b.FirstZero() != Bits {
		t.Errorf("FirstZero of full = %d, want %d", b.FirstZero(), Bits)
	}
	if b.PopcountPrefix(Bits) != Bits {
		t.Errorf("PopcountPrefix full = %d", b.PopcountPrefix(Bits))
	}
	b.Shift(Bits)
	if b.Count() != 0 {
		t.Error("full shift must clear everything")
	}
}

func TestBitmap128RingWrap(t *testing.T) {
	var b Bitmap128
	// Walk the head through several wraps with a fixed pattern.
	for round := 0; round < 20; round++ {
		b.Set(1)
		b.Set(37)
		if b.FirstZero() != 0 {
			t.Fatalf("round %d: FirstZero = %d", round, b.FirstZero())
		}
		b.Set(0)
		if b.FirstZero() != 2 {
			t.Fatalf("round %d: FirstZero = %d, want 2", round, b.FirstZero())
		}
		if b.PopcountPrefix(38) != 3 {
			t.Fatalf("round %d: popcount = %d", round, b.PopcountPrefix(38))
		}
		b.Shift(38) // drops bits 0,1,37
		if b.Count() != 0 {
			t.Fatalf("round %d: residue %d", round, b.Count())
		}
	}
}

func TestBitmap128MatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		var b Bitmap128
		ref := map[uint32]bool{} // absolute positions
		base := uint32(0)
		for step := 0; step < 500; step++ {
			switch rng.Intn(3) {
			case 0:
				off := uint32(rng.Intn(Bits))
				b.Set(off)
				ref[base+off] = true
			case 1:
				n := uint32(rng.Intn(10))
				b.Shift(n)
				for i := uint32(0); i < n; i++ {
					delete(ref, base+i)
				}
				base += n
			case 2:
				// FirstZero cross-check.
				want := uint32(0)
				for ref[base+want] && want < Bits {
					want++
				}
				if got := b.FirstZero(); got != want {
					t.Fatalf("FirstZero = %d, want %d", got, want)
				}
				// PopcountPrefix cross-check.
				n := uint32(rng.Intn(Bits + 1))
				cnt := uint32(0)
				for i := uint32(0); i < n; i++ {
					if ref[base+i] {
						cnt++
					}
				}
				if got := b.PopcountPrefix(n); got != cnt {
					t.Fatalf("PopcountPrefix(%d) = %d, want %d", n, got, cnt)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReceiveDataInOrder(t *testing.T) {
	ctx := &QPContext{Expected: 100}
	out := ReceiveData(ctx, 100, false)
	if !out.SendAck || out.SendNack || out.AckPSN != 101 {
		t.Errorf("in-order: %+v", out)
	}
	if ctx.Expected != 101 {
		t.Errorf("expected = %d", ctx.Expected)
	}
}

func TestReceiveDataOutOfOrderThenFill(t *testing.T) {
	ctx := &QPContext{Expected: 0}
	// Arrivals 2, 3(last-of-msg), then 1, then 0.
	out := ReceiveData(ctx, 2, false)
	if !out.SendNack || out.AckPSN != 0 || out.NackSack != 2 {
		t.Fatalf("OOO: %+v", out)
	}
	ReceiveData(ctx, 3, true)
	ReceiveData(ctx, 1, false)
	out = ReceiveData(ctx, 0, true) // message A = [0], message B = [1..3]
	if !out.SendAck || out.AckPSN != 4 {
		t.Fatalf("fill: %+v", out)
	}
	if out.MSNInc != 2 || out.ExpireWQEs != 2 {
		t.Errorf("MSNInc = %d, ExpireWQEs = %d, want 2/2", out.MSNInc, out.ExpireWQEs)
	}
	if ctx.MSN != 2 {
		t.Errorf("MSN = %d", ctx.MSN)
	}
}

func TestReceiveDataDuplicateAndOverflow(t *testing.T) {
	ctx := &QPContext{Expected: 10}
	out := ReceiveData(ctx, 5, false)
	if !out.Duplicate || !out.SendAck {
		t.Errorf("below window: %+v", out)
	}
	out = ReceiveData(ctx, 10+Bits, false)
	if !out.SendNack {
		t.Errorf("beyond window must NACK: %+v", out)
	}
}

func TestTxFreeNewAndRecovery(t *testing.T) {
	ctx := &QPContext{}
	out := TxFree(ctx, 100, 8)
	if !out.HasPacket || out.PSN != 0 || out.Retransmit {
		t.Fatalf("first tx: %+v", out)
	}
	for i := 0; i < 7; i++ {
		TxFree(ctx, 100, 8)
	}
	// Window (8) exhausted.
	if out := TxFree(ctx, 100, 8); out.HasPacket {
		t.Fatalf("window must be closed: %+v", out)
	}
	// NACK for hole at 0, sacks 1 and 3.
	ReceiveAck(ctx, 0, true, 1)
	ReceiveAck(ctx, 0, true, 3)
	out = TxFree(ctx, 100, 8)
	if !out.Retransmit || out.PSN != 0 {
		t.Fatalf("first retx: %+v", out)
	}
	out = TxFree(ctx, 100, 8)
	if !out.Retransmit || out.PSN != 2 {
		t.Fatalf("look-ahead retx: %+v (want PSN 2)", out)
	}
	// No more losses below HighSack: nothing (window still closed).
	out = TxFree(ctx, 100, 8)
	if out.HasPacket {
		t.Fatalf("no candidates: %+v", out)
	}
}

func TestReceiveAckAdvancesAndExitsRecovery(t *testing.T) {
	ctx := &QPContext{}
	for i := 0; i < 10; i++ {
		TxFree(ctx, 100, 0)
	}
	out := ReceiveAck(ctx, 0, true, 5)
	if !out.EnteredRec || !ctx.InRecov || ctx.RecSeq != 9 {
		t.Fatalf("recovery entry: %+v ctx=%+v", out, ctx)
	}
	out = ReceiveAck(ctx, 9, false, 0)
	if out.ExitedRec || !ctx.InRecov {
		t.Fatal("cum == RecSeq must stay in recovery")
	}
	out = ReceiveAck(ctx, 10, false, 0)
	if !out.ExitedRec || ctx.InRecov {
		t.Fatal("cum > RecSeq must exit recovery")
	}
	if out.NewlyAcked != 1 {
		t.Errorf("newly = %d", out.NewlyAcked)
	}
}

func TestTimeoutModule(t *testing.T) {
	// RTOLow armed but many packets in flight → extend to RTOHigh.
	ctx := &QPContext{RTOLowArm: true, RTOLowN: 3, InFlight: 10, NextSeq: 10}
	out := Timeout(ctx)
	if !out.Extend || out.Fire {
		t.Fatalf("want extend: %+v", out)
	}
	// Few packets in flight → fire.
	ctx2 := &QPContext{RTOLowArm: true, RTOLowN: 3, InFlight: 2, NextSeq: 2}
	out = Timeout(ctx2)
	if !out.Fire || !ctx2.InRecov {
		t.Fatalf("want fire: %+v", out)
	}
	// Nothing outstanding → no action.
	ctx3 := &QPContext{CumAck: 5, NextSeq: 5}
	out = Timeout(ctx3)
	if out.Fire || out.Extend {
		t.Fatalf("want no-op: %+v", out)
	}
}

func TestModulesEndToEndLossRecovery(t *testing.T) {
	// Drive a sender context and a receiver context against each other
	// with a lossy "wire", and verify the contexts converge.
	snd := &QPContext{}
	rcv := &QPContext{}
	const total = 60
	lost := map[uint32]bool{7: true, 23: true}
	delivered := map[uint32]bool{}
	for iter := 0; iter < 10*total; iter++ {
		out := TxFree(snd, total, Bits)
		if !out.HasPacket {
			break
		}
		if lost[out.PSN] && !out.Retransmit {
			delete(lost, out.PSN)
			continue
		}
		delivered[out.PSN] = true
		r := ReceiveData(rcv, out.PSN, out.PSN == total-1)
		if r.SendAck {
			ReceiveAck(snd, r.AckPSN, false, 0)
		}
		if r.SendNack {
			ReceiveAck(snd, r.AckPSN, true, r.NackSack)
		}
	}
	if rcv.Expected != total {
		t.Fatalf("receiver expected = %d, want %d", rcv.Expected, total)
	}
	if snd.CumAck != total {
		t.Fatalf("sender cum = %d, want %d", snd.CumAck, total)
	}
	if len(delivered) != total {
		t.Errorf("delivered %d distinct packets", len(delivered))
	}
}

func TestStateCostMatchesPaper(t *testing.T) {
	c := PaperStateCost()
	// §6.1: 160 bits of per-QP scalar state, 640 bits of bitmaps.
	if c.PerQPStateBits != 160 {
		t.Errorf("PerQPStateBits = %d", c.PerQPStateBits)
	}
	if c.PerQPBitmapBits != 640 {
		t.Errorf("PerQPBitmapBits = %d", c.PerQPBitmapBits)
	}
	if c.PerQPBits() != 800 {
		t.Errorf("PerQPBits = %d", c.PerQPBits())
	}
	// "a couple of thousands of QPs and tens of thousands of WQEs"
	// against several MBs of cache → 3-10%.
	lo := c.CacheFraction(2000, 20_000, 8<<20) // 8 MB cache
	hi := c.CacheFraction(4000, 60_000, 4<<20) // 4 MB cache
	if lo < 0.02 || lo > 0.11 {
		t.Errorf("low-end cache fraction = %.3f, want ~3%%", lo)
	}
	if hi < 0.03 || hi > 0.15 {
		t.Errorf("high-end cache fraction = %.3f, want ~10%%", hi)
	}
}

func TestBitmap100G(t *testing.T) {
	if Bitmap100GBits() != 320 {
		t.Errorf("100G bitmap = %d bits, want 320", Bitmap100GBits())
	}
}

// Benchmarks regenerate Table 2's throughput column in software: ns/op →
// Mpps. The paper's FPGA numbers (receiveData 45.45 Mpps, txFree 47.17,
// receiveAck 46.99, timeout 318.47) are hardware throughputs; the shape
// to preserve is that every module sustains well beyond the NIC's packet
// rate and that timeout is far cheaper than the bitmap modules.

func BenchmarkReceiveData(b *testing.B) {
	ctx := &QPContext{}
	for i := 0; i < b.N; i++ {
		psn := ctx.Expected
		if i%7 == 3 {
			psn += 2 // sprinkle out-of-order arrivals
		}
		ReceiveData(ctx, psn, i%4 == 0)
	}
}

func BenchmarkTxFree(b *testing.B) {
	ctx := &QPContext{}
	for i := 0; i < b.N; i++ {
		if out := TxFree(ctx, ^uint32(0), Bits); out.HasPacket {
			// Ack immediately half the time to keep the window open.
			if i%2 == 0 {
				ReceiveAck(ctx, out.PSN+1, false, 0)
			}
		}
	}
}

func BenchmarkReceiveAck(b *testing.B) {
	ctx := &QPContext{NextSeq: 1 << 30}
	cum := uint32(0)
	for i := 0; i < b.N; i++ {
		cum++
		nack := i%16 == 7
		ReceiveAck(ctx, cum, nack, cum+3)
	}
}

func BenchmarkTimeout(b *testing.B) {
	ctx := &QPContext{RTOLowArm: true, RTOLowN: 3, InFlight: 10, NextSeq: 10}
	for i := 0; i < b.N; i++ {
		ctx.RTOLowArm = true
		Timeout(ctx)
	}
}
