package core

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// stubEP is a transport.Endpoint that records control packets.
type stubEP struct {
	eng   *sim.Engine
	sent  []*packet.Packet
	wakes int
}

func newStubEP() *stubEP { return &stubEP{eng: sim.NewEngine()} }

func (e *stubEP) Now() sim.Time                  { return e.eng.Now() }
func (e *stubEP) Clock() *sim.Clock              { return nil }
func (e *stubEP) Pool() *packet.Pool             { return nil }
func (e *stubEP) Engine() *sim.Engine            { return e.eng }
func (e *stubEP) SendControl(pkt *packet.Packet) { e.sent = append(e.sent, pkt) }
func (e *stubEP) Wake()                          { e.wakes++ }
func (e *stubEP) take() []*packet.Packet         { s := e.sent; e.sent = nil; return s }

func testParams() Params {
	return DefaultParams(1000, 110)
}

func mkFlow(pkts int) *transport.Flow {
	return &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: pkts * 1000, Pkts: pkts}
}

// drain pulls every packet the sender is willing to emit right now.
func drain(s *Sender, now sim.Time) []*packet.Packet {
	var out []*packet.Packet
	for {
		ready, _ := s.HasData(now)
		if !ready {
			return out
		}
		p := s.NextPacket(now)
		if p == nil {
			return out
		}
		out = append(out, p)
	}
}

func TestSenderRespectsBDPFC(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.BDPCap = 10
	s := NewSender(ep, mkFlow(100), p, nil)

	pkts := drain(s, 0)
	if len(pkts) != 10 {
		t.Fatalf("sent %d packets with BDPCap=10", len(pkts))
	}
	// An ack for 4 packets opens exactly 4 slots.
	ack := packet.NewAck(1, 1, 0, 4)
	ack.AckedSentAt = 1
	s.HandleControl(ack, sim.Time(10*sim.Microsecond))
	pkts = drain(s, sim.Time(10*sim.Microsecond))
	if len(pkts) != 4 {
		t.Fatalf("window opened %d slots, want 4", len(pkts))
	}
	if pkts[0].PSN != 10 {
		t.Errorf("first new PSN = %d, want 10", pkts[0].PSN)
	}
}

func TestSenderNoBDPFCSendsEverything(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.BDPCap = 0 // ablation: no BDP-FC
	s := NewSender(ep, mkFlow(500), p, nil)
	if got := len(drain(s, 0)); got != 500 {
		t.Fatalf("sent %d, want all 500 without BDP-FC", got)
	}
}

func TestSenderCCWindowApplies(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	s := NewSender(ep, mkFlow(100), p, fixedWindow(7))
	if got := len(drain(s, 0)); got != 7 {
		t.Fatalf("sent %d, want 7 (CC window)", got)
	}
}

// fixedWindow is a Controller with a constant window.
type fixedWindow int

func (fixedWindow) OnAck(sim.Time, sim.Duration, int, bool) {}
func (fixedWindow) OnCNP(sim.Time)                          {}
func (fixedWindow) OnLoss(sim.Time)                         {}
func (fixedWindow) SendDelay(int) sim.Duration              { return 0 }
func (w fixedWindow) WindowPackets() int                    { return int(w) }

func TestSenderPacingDelays(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	s := NewSender(ep, mkFlow(10), p, pacer(1000)) // 1000 ps per packet send
	ready, _ := s.HasData(0)
	if !ready {
		t.Fatal("should be ready at t=0")
	}
	s.NextPacket(0)
	ready, at := s.HasData(0)
	if ready {
		t.Fatal("must be paced after send")
	}
	if at != 1000 {
		t.Fatalf("wake at %d, want 1000", int64(at))
	}
	ready, _ = s.HasData(1000)
	if !ready {
		t.Fatal("pacing must expire")
	}
}

// pacer is a Controller with a fixed per-send delay in ps.
type pacer sim.Duration

func (pacer) OnAck(sim.Time, sim.Duration, int, bool) {}
func (pacer) OnCNP(sim.Time)                          {}
func (pacer) OnLoss(sim.Time)                         {}
func (p pacer) SendDelay(int) sim.Duration            { return sim.Duration(p) }
func (pacer) WindowPackets() int                      { return 0 }

func TestSenderSelectiveRetransmitOrder(t *testing.T) {
	// Holes at 2 and 5, SACKs up to 7: recovery must retransmit exactly
	// 2 then 5, then resume new transmission.
	ep := newStubEP()
	p := testParams()
	p.BDPCap = 20
	s := NewSender(ep, mkFlow(100), p, nil)
	drain(s, 0) // sends 0..19

	// Receiver got 0,1 then 3,4 (NACK sack=3, then 4), then 6,7 (sack 6,7).
	nack := func(cum, sack packet.PSN, at sim.Time) {
		n := packet.NewNack(1, 1, 0, cum, sack)
		n.AckedSentAt = 1
		s.HandleControl(n, at)
	}
	nack(2, 3, 100)
	if !s.inRecovery {
		t.Fatal("NACK must enter recovery")
	}
	nack(2, 4, 200)
	nack(2, 6, 300)
	nack(2, 7, 400)

	pkts := drain(s, 500)
	if len(pkts) < 2 {
		t.Fatalf("drained %d packets, want >= 2", len(pkts))
	}
	if pkts[0].PSN != 2 {
		t.Errorf("first retransmission PSN = %d, want 2 (the cumulative ack)", pkts[0].PSN)
	}
	if pkts[1].PSN != 5 {
		t.Errorf("second retransmission PSN = %d, want 5 (hole below highest SACK)", pkts[1].PSN)
	}
	// Everything after the holes is new transmission (BDP-FC window: the
	// cum ack is still 2, so inflight limits apply).
	for _, pk := range pkts[2:] {
		if pk.PSN < 20 {
			t.Errorf("unexpected retransmission of PSN %d", pk.PSN)
		}
	}
	if s.Stats.Retransmits != 2 {
		t.Errorf("Retransmits = %d, want 2", s.Stats.Retransmits)
	}
}

func TestSenderExitsRecoveryPastRecoverySeq(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.BDPCap = 10
	s := NewSender(ep, mkFlow(100), p, nil)
	drain(s, 0) // 0..9 in flight; recoverySeq will be 9

	nack := packet.NewNack(1, 1, 0, 3, 5)
	nack.AckedSentAt = 1
	s.HandleControl(nack, 100)
	if !s.inRecovery || s.recoverySeq != 9 {
		t.Fatalf("recovery state: in=%v seq=%d", s.inRecovery, s.recoverySeq)
	}
	// Cumulative ack up to 9 (== recoverySeq) keeps recovery; must
	// exceed it.
	ack := packet.NewAck(1, 1, 0, 9)
	ack.AckedSentAt = 1
	s.HandleControl(ack, 200)
	if !s.inRecovery {
		t.Fatal("cum == recoverySeq must not exit recovery")
	}
	ack2 := packet.NewAck(1, 1, 0, 10)
	ack2.AckedSentAt = 1
	s.HandleControl(ack2, 300)
	if s.inRecovery {
		t.Fatal("cum > recoverySeq must exit recovery")
	}
}

func TestSenderGoBackNRewinds(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.Recovery = RecoveryGoBackN
	p.BDPCap = 10
	s := NewSender(ep, mkFlow(50), p, nil)
	first := drain(s, 0)
	if len(first) != 10 {
		t.Fatalf("initial burst %d", len(first))
	}
	nack := packet.NewNack(1, 1, 0, 4, 0)
	nack.AckedSentAt = 1
	s.HandleControl(nack, 100)
	pkts := drain(s, 100)
	if len(pkts) == 0 || pkts[0].PSN != 4 {
		t.Fatalf("go-back-N must rewind to 4, got %v", pkts)
	}
	// Everything from 4 is resent in order.
	for i, pk := range pkts {
		if pk.PSN != packet.PSN(4+i) {
			t.Errorf("packet %d PSN = %d, want %d", i, pk.PSN, 4+i)
		}
	}
}

func TestSenderNoSACKRetransmitsOnlyCumAck(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.Recovery = RecoveryNoSACK
	p.BDPCap = 20
	s := NewSender(ep, mkFlow(100), p, nil)
	drain(s, 0)

	nack := packet.NewNack(1, 1, 0, 2, 7)
	nack.AckedSentAt = 1
	s.HandleControl(nack, 100)
	pkts := drain(s, 100)
	if len(pkts) == 0 || pkts[0].PSN != 2 {
		t.Fatalf("first retransmission must be 2, got %v", pkts)
	}
	for _, pk := range pkts[1:] {
		if pk.PSN < 20 {
			t.Errorf("NoSACK mode retransmitted %d beyond the cum ack", pk.PSN)
		}
	}
	// A second NACK with the same cum ack must not retransmit again.
	s.HandleControl(nack, 200)
	pkts = drain(s, 200)
	for _, pk := range pkts {
		if pk.PSN < 20 {
			t.Errorf("duplicate NACK retransmitted %d", pk.PSN)
		}
	}
	// But advancing the cum ack to the next hole does.
	n2 := packet.NewNack(1, 1, 0, 5, 9)
	n2.AckedSentAt = 1
	s.HandleControl(n2, 300)
	pkts = drain(s, 300)
	if len(pkts) == 0 || pkts[0].PSN != 5 {
		t.Fatalf("next hole must be retransmitted after cum advance, got %v", pkts)
	}
}

func TestSenderNackThreshold(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.NackThreshold = 3
	p.BDPCap = 20
	s := NewSender(ep, mkFlow(100), p, nil)
	drain(s, 0)

	nack := func(at sim.Time, sack packet.PSN) {
		n := packet.NewNack(1, 1, 0, 2, sack)
		n.AckedSentAt = 1
		s.HandleControl(n, at)
	}
	nack(100, 3)
	nack(200, 4)
	if s.inRecovery {
		t.Fatal("recovery before threshold")
	}
	nack(300, 5)
	if !s.inRecovery {
		t.Fatal("recovery must engage at the third NACK")
	}
}

func TestSenderTimeoutEntersRecovery(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	s := NewSender(ep, mkFlow(5), p, nil)
	drain(s, 0)
	// Run the engine past RTOHigh (5 packets in flight ≥ N=3).
	ep.eng.RunUntil(sim.Time(p.RTOHigh) + 1000)
	if s.Stats.Timeouts == 0 {
		t.Fatal("timeout did not fire")
	}
	if !s.inRecovery {
		t.Fatal("timeout must enter recovery")
	}
	pkts := drain(s, ep.eng.Now())
	if len(pkts) == 0 || pkts[0].PSN != 0 {
		t.Fatalf("timeout must retransmit the cumulative ack, got %v", pkts)
	}
}

func TestSenderRTOLowForFewPackets(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	s := NewSender(ep, mkFlow(2), p, nil) // 2 < N=3 → RTOLow
	drain(s, 0)
	ep.eng.RunUntil(sim.Time(p.RTOLow) + 1000)
	if s.Stats.Timeouts == 0 {
		t.Fatal("RTOLow timeout did not fire for a short message")
	}
}

func TestSenderRTOHighForManyPackets(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	s := NewSender(ep, mkFlow(50), p, nil)
	drain(s, 0)
	// After RTOLow but before RTOHigh: no timeout yet.
	ep.eng.RunUntil(sim.Time(p.RTOLow) + 1000)
	if s.Stats.Timeouts != 0 {
		t.Fatal("RTOLow fired despite many packets in flight")
	}
	ep.eng.RunUntil(sim.Time(p.RTOHigh) + 1000)
	if s.Stats.Timeouts == 0 {
		t.Fatal("RTOHigh did not fire")
	}
}

func TestSenderDynamicRTO(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.DynamicRTO = true
	s := NewSender(ep, mkFlow(100), p, nil)
	if s.rtoDuration() != p.RTOHigh {
		t.Error("dynamic RTO before samples must fall back to RTOHigh")
	}
	// Feed a stable 50 µs RTT.
	for i := 0; i < 20; i++ {
		s.updateRTT(50 * sim.Microsecond)
	}
	rto := s.rtoDuration()
	if rto < 50*sim.Microsecond || rto > 200*sim.Microsecond {
		t.Errorf("dynamic RTO = %v, want ~[50us, 200us]", rto)
	}
}

func TestSenderDoneAfterFullAck(t *testing.T) {
	ep := newStubEP()
	s := NewSender(ep, mkFlow(3), testParams(), nil)
	drain(s, 0)
	ack := packet.NewAck(1, 1, 0, 3)
	ack.AckedSentAt = 1
	s.HandleControl(ack, 100)
	if !s.Done() {
		t.Fatal("sender not done after full ack")
	}
	ready, _ := s.HasData(200)
	if ready {
		t.Error("done sender must not offer data")
	}
	// The RTO must be disarmed: running the engine forward fires nothing.
	before := s.Stats.Timeouts
	ep.eng.RunUntil(sim.Time(10 * sim.Millisecond))
	if s.Stats.Timeouts != before {
		t.Error("timer fired after done")
	}
}

func TestSenderStaleAckIgnored(t *testing.T) {
	ep := newStubEP()
	s := NewSender(ep, mkFlow(50), testParams(), nil)
	drain(s, 0)
	a1 := packet.NewAck(1, 1, 0, 10)
	a1.AckedSentAt = 1
	s.HandleControl(a1, 100)
	// A reordered, stale cumulative ack must not move anything backwards.
	a2 := packet.NewAck(1, 1, 0, 4)
	a2.AckedSentAt = 1
	s.HandleControl(a2, 200)
	if s.cumAck != 10 {
		t.Errorf("cumAck = %d, want 10", s.cumAck)
	}
}

func TestReceiverInOrderAcksEveryPacket(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	var doneAt sim.Time
	r := NewReceiver(ep, mkFlow(3), p, doneFn(func(now sim.Time) { doneAt = now }))
	for i := 0; i < 3; i++ {
		pkt := packet.NewData(1, 0, 1, packet.PSN(i), 1000, i == 2)
		pkt.SentAt = sim.Time(i + 1)
		r.HandleData(pkt, sim.Time(100*(i+1)))
	}
	acks := ep.take()
	if len(acks) != 3 {
		t.Fatalf("acks = %d, want 3 (per-packet)", len(acks))
	}
	for i, a := range acks {
		if a.Type != packet.TypeAck || a.CumAck != packet.PSN(i+1) {
			t.Errorf("ack %d: %v cum=%d", i, a.Type, a.CumAck)
		}
	}
	if doneAt != 300 {
		t.Errorf("completion at %d, want 300", int64(doneAt))
	}
	if r.Expected() != 3 {
		t.Errorf("expected = %d", r.Expected())
	}
}

func TestReceiverOONackCarriesCumAndSack(t *testing.T) {
	ep := newStubEP()
	r := NewReceiver(ep, mkFlow(10), testParams(), nil)
	// Deliver 0, then 3 (gap at 1,2).
	r.HandleData(packet.NewData(1, 0, 1, 0, 1000, false), 10)
	ep.take()
	r.HandleData(packet.NewData(1, 0, 1, 3, 1000, false), 20)
	out := ep.take()
	if len(out) != 1 || out[0].Type != packet.TypeNack {
		t.Fatalf("want 1 NACK, got %v", out)
	}
	if out[0].CumAck != 1 || out[0].SackPSN != 3 {
		t.Errorf("NACK cum=%d sack=%d, want 1/3", out[0].CumAck, out[0].SackPSN)
	}
	// Every further OOO arrival NACKs again (§3.1).
	r.HandleData(packet.NewData(1, 0, 1, 5, 1000, false), 30)
	out = ep.take()
	if len(out) != 1 || out[0].Type != packet.TypeNack || out[0].SackPSN != 5 {
		t.Fatalf("second OOO must NACK with sack=5: %v", out)
	}
}

func TestReceiverFillsGapAndJumps(t *testing.T) {
	ep := newStubEP()
	r := NewReceiver(ep, mkFlow(5), testParams(), nil)
	for _, psn := range []packet.PSN{1, 2, 4} {
		r.HandleData(packet.NewData(1, 0, 1, psn, 1000, psn == 4), 10)
	}
	ep.take()
	// Delivering 0 should advance expected straight to 3.
	r.HandleData(packet.NewData(1, 0, 1, 0, 1000, false), 20)
	out := ep.take()
	if len(out) != 1 || out[0].CumAck != 3 {
		t.Fatalf("cumulative jump: got %v", out)
	}
	// Then 3 completes the message (0..4).
	var done bool
	r.done = doneFn(func(sim.Time) { done = true })
	r.HandleData(packet.NewData(1, 0, 1, 3, 1000, false), 30)
	out = ep.take()
	if len(out) != 1 || out[0].CumAck != 5 {
		t.Fatalf("final ack: %v", out)
	}
	if !done {
		t.Error("completion must fire when all packets arrived")
	}
}

func TestReceiverKeepsOOOUnderGBNAblation(t *testing.T) {
	// The §4.3 go-back-N ablation changes only the sender; the receiver
	// still places out-of-order packets and NACKs every OOO arrival.
	ep := newStubEP()
	p := testParams()
	p.Recovery = RecoveryGoBackN
	r := NewReceiver(ep, mkFlow(10), p, nil)
	r.HandleData(packet.NewData(1, 0, 1, 0, 1000, false), 10)
	ep.take()
	r.HandleData(packet.NewData(1, 0, 1, 2, 1000, false), 20)
	r.HandleData(packet.NewData(1, 0, 1, 3, 1000, false), 30)
	out := ep.take()
	if len(out) != 2 || out[0].Type != packet.TypeNack || out[1].Type != packet.TypeNack {
		t.Fatalf("want a NACK per OOO arrival, got %v", out)
	}
	if r.Received() != 3 {
		t.Errorf("received = %d; OOO must be kept", r.Received())
	}
	// Filling the hole advances past the buffered packets.
	r.HandleData(packet.NewData(1, 0, 1, 1, 1000, false), 40)
	out = ep.take()
	if len(out) != 1 || out[0].CumAck != 4 {
		t.Fatalf("cumulative jump: %v", out)
	}
}

func TestSenderGBNRewindsOnEveryNackInRecovery(t *testing.T) {
	ep := newStubEP()
	p := testParams()
	p.Recovery = RecoveryGoBackN
	p.BDPCap = 10
	s := NewSender(ep, mkFlow(50), p, nil)
	drain(s, 0) // 0..9
	nack := func(cum packet.PSN, at sim.Time) {
		n := packet.NewNack(1, 1, 0, cum, cum+1)
		n.AckedSentAt = 1
		s.HandleControl(n, at)
	}
	nack(4, 100)
	got := drain(s, 100) // resends 4..9 then new 10..13 (window 10 from cum 4)
	if got[0].PSN != 4 {
		t.Fatalf("rewind to %d, want 4", got[0].PSN)
	}
	// A second NACK with the same cum while in recovery rewinds again.
	nack(4, 200)
	got = drain(s, 200)
	if len(got) == 0 || got[0].PSN != 4 {
		t.Fatalf("second NACK must rewind again, got %v", got)
	}
	if s.Stats.Retransmits < 10 {
		t.Errorf("Retransmits = %d, want >= 10 across two rewinds", s.Stats.Retransmits)
	}
}

func TestReceiverDuplicateReAcks(t *testing.T) {
	ep := newStubEP()
	r := NewReceiver(ep, mkFlow(5), testParams(), nil)
	r.HandleData(packet.NewData(1, 0, 1, 0, 1000, false), 10)
	ep.take()
	r.HandleData(packet.NewData(1, 0, 1, 0, 1000, false), 20)
	out := ep.take()
	if len(out) != 1 || out[0].Type != packet.TypeAck || out[0].CumAck != 1 {
		t.Fatalf("duplicate must re-ACK cum=1: %v", out)
	}
	if r.Duplicates != 1 {
		t.Errorf("Duplicates = %d", r.Duplicates)
	}
}

func TestReceiverCNPGeneration(t *testing.T) {
	ep := newStubEP()
	r := NewReceiver(ep, mkFlow(1000), testParams(), nil)
	mk := func(psn packet.PSN, at sim.Time) {
		pkt := packet.NewData(1, 0, 1, psn, 1000, false)
		pkt.ECT, pkt.CE = true, true
		r.HandleData(pkt, at)
	}
	mk(0, 0)
	mk(1, sim.Time(10*sim.Microsecond))
	mk(2, sim.Time(60*sim.Microsecond))
	cnps := 0
	for _, p := range ep.take() {
		if p.Type == packet.TypeCNP {
			cnps++
		}
	}
	// 3 marked arrivals within 60 µs → 2 CNPs (50 µs min interval).
	if cnps != 2 {
		t.Errorf("CNPs = %d, want 2", cnps)
	}
}

func TestReceiverEchoesECNOnAcks(t *testing.T) {
	ep := newStubEP()
	r := NewReceiver(ep, mkFlow(5), testParams(), nil)
	pkt := packet.NewData(1, 0, 1, 0, 1000, false)
	pkt.ECT, pkt.CE = true, true
	pkt.SentAt = 5
	r.HandleData(pkt, 10)
	out := ep.take()
	// First control packet may be a CNP; find the ACK.
	var ack *packet.Packet
	for _, p := range out {
		if p.Type == packet.TypeAck {
			ack = p
		}
	}
	if ack == nil || !ack.ECNEcho {
		t.Fatalf("ACK must echo CE: %v", out)
	}
	if ack.AckedSentAt != 5 {
		t.Errorf("ACK must echo SentAt for RTT: %v", ack.AckedSentAt)
	}
}

// doneFn adapts a closure to transport.Completer, dropping the flow.
func doneFn(f func(now sim.Time)) transport.Completer {
	return transport.CompleterFunc(func(_ *transport.Flow, now sim.Time) { f(now) })
}
