// Package core implements IRN, the paper's primary contribution (§3): a
// RoCE NIC transport with (1) efficient, SACK-based selective-retransmit
// loss recovery and (2) BDP-FC, a static end-to-end cap on in-flight
// packets equal to the bandwidth-delay product of the network — the two
// incremental changes that together eliminate the need for PFC.
//
// The package also implements the design-space ablations of §4.3 (pure
// go-back-N, selective retransmit without SACKs, go-back-N with loss
// backoff, dynamically computed timeouts), the reordering-robustness NACK
// threshold sketched in §7, and the worst-case implementation overheads of
// §6.3 (retransmission fetch delay, per-packet header growth), each behind
// a Params knob so the experiment harness can reproduce the corresponding
// figures.
package core

import (
	"github.com/irnsim/irn/internal/sim"
)

// RecoveryMode selects the loss-recovery algorithm.
type RecoveryMode uint8

// Recovery modes.
const (
	// RecoverySACK is IRN's default: receiver keeps out-of-order packets
	// and NACKs carry (cumulative ack, triggering PSN); the sender
	// selectively retransmits using a bitmap (§3.1).
	RecoverySACK RecoveryMode = iota
	// RecoveryGoBackN discards out-of-order arrivals at the receiver and
	// rewinds the sender to the cumulative ack — the loss recovery of
	// current RoCE NICs, used for the Figure 7 ablation.
	RecoveryGoBackN
	// RecoveryNoSACK is selective retransmission without the SACK
	// bitmap: only the packet at the cumulative ack is ever
	// retransmitted, so each additional loss in a window costs a round
	// trip (§4.3 question 2).
	RecoveryNoSACK
)

// String implements fmt.Stringer.
func (m RecoveryMode) String() string {
	switch m {
	case RecoverySACK:
		return "sack"
	case RecoveryGoBackN:
		return "go-back-n"
	case RecoveryNoSACK:
		return "no-sack"
	default:
		return "unknown"
	}
}

// Params configures an IRN sender/receiver pair.
type Params struct {
	// MTU is the payload bytes per packet.
	MTU int
	// BDPCap bounds packets in flight (BDP-FC, §3.2). Zero disables the
	// cap (the Figure 7 "IRN without BDP-FC" ablation).
	BDPCap int
	// Recovery selects the loss-recovery algorithm.
	Recovery RecoveryMode
	// RTOLow is the short timeout used when fewer than RTOLowThreshold
	// packets are in flight (100 µs default, §4.1).
	RTOLow sim.Duration
	// RTOHigh is the standard timeout (320 µs default: longest-path
	// propagation plus the worst-case queuing of one full buffer, §4.1).
	RTOHigh sim.Duration
	// RTOLowThreshold is N: use RTOLow when in-flight < N (default 3).
	RTOLowThreshold int
	// DynamicRTO replaces the two static timeouts with a TCP-style
	// SRTT + 4·RTTVAR estimate (§4.3 question 3).
	DynamicRTO bool
	// NackThreshold is how many NACKs must arrive before loss recovery
	// engages; values above 1 tolerate reordering from packet-spraying
	// load balancers (§7). Default 1.
	NackThreshold int
	// BackoffOnLoss reports NACK/timeout loss events to the congestion
	// controller (the go-back-N-with-backoff ablation of §4.3, and the
	// natural setting for AIMD/DCTCP window control).
	BackoffOnLoss bool
	// RetxFetchDelay models the worst-case PCIe fetch of a
	// retransmission: a retransmitted packet may leave no earlier than
	// this long after it was identified as lost (2 µs in §6.3).
	RetxFetchDelay sim.Duration
	// ExtraHeaderBytes grows every data packet, modelling IRN's header
	// extensions (worst case: 16 B of RETH on every packet, §6.3).
	ExtraHeaderBytes int
	// ECT marks data packets ECN-capable; enable with DCQCN or DCTCP.
	ECT bool
}

// DefaultParams returns the paper's IRN configuration for a given BDP cap.
func DefaultParams(mtu, bdpCap int) Params {
	return Params{
		MTU:             mtu,
		BDPCap:          bdpCap,
		Recovery:        RecoverySACK,
		RTOLow:          100 * sim.Microsecond,
		RTOHigh:         320 * sim.Microsecond,
		RTOLowThreshold: 3,
		NackThreshold:   1,
	}
}

// SenderStats counts transport events for diagnostics and experiments.
type SenderStats struct {
	Sent        uint64 // data packets transmitted (including retransmits)
	Retransmits uint64
	Timeouts    uint64
	Nacks       uint64 // NACKs received
	Recoveries  uint64 // times loss recovery was entered
}
