package core

import (
	"testing"

	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

// runOverFabric wires one IRN flow across a 2-host star and runs to
// completion (or the deadline). lossFn may be nil.
func runOverFabric(t *testing.T, p Params, ctrl transport.Controller, pkts int,
	lossFn func(*packet.Packet) bool) (*Sender, *Receiver, *fabric.Network, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.LossInject = lossFn
	net := fabric.New(eng, topo.NewStar(2), cfg)

	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: pkts * p.MTU, Pkts: pkts}
	snd := NewSender(net.NIC(0), flow, p, ctrl)
	var doneAt sim.Time
	rcv := NewReceiver(net.NIC(1), flow, p, doneFn(func(now sim.Time) { doneAt = now }))
	net.NIC(1).AttachSink(flow.ID, rcv)
	net.NIC(0).AttachSource(snd)

	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	return snd, rcv, net, doneAt
}

func TestLosslessTransferCompletes(t *testing.T) {
	p := DefaultParams(1000, 113)
	snd, rcv, net, doneAt := runOverFabric(t, p, nil, 500, nil)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Retransmits != 0 || snd.Stats.Timeouts != 0 {
		t.Errorf("lossless run had %d retransmits, %d timeouts", snd.Stats.Retransmits, snd.Stats.Timeouts)
	}
	if rcv.Received() != 500 {
		t.Errorf("received %d", rcv.Received())
	}
	// Sanity: per-packet ACKs flowed.
	if rcv.Acks != 500 {
		t.Errorf("acks = %d, want 500", rcv.Acks)
	}
	// FCT must beat a naive serial (unpipelined) bound and respect the
	// ideal lower bound.
	ideal := net.IdealFCT(0, 1, 500*1000)
	if sim.Duration(doneAt) < ideal {
		t.Errorf("FCT %v below ideal %v", sim.Duration(doneAt), ideal)
	}
	if sim.Duration(doneAt) > 2*ideal {
		t.Errorf("FCT %v more than 2x ideal %v on an empty network", sim.Duration(doneAt), ideal)
	}
}

func TestSingleLossRecoversViaSACK(t *testing.T) {
	p := DefaultParams(1000, 113)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && pkt.PSN == 5 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, nil, 300, lossFn)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want exactly 1 (selective)", snd.Stats.Retransmits)
	}
	if snd.Stats.Timeouts != 0 {
		t.Errorf("timeouts = %d; NACK recovery should beat the RTO", snd.Stats.Timeouts)
	}
}

func TestBurstLossRecoversSelectively(t *testing.T) {
	// Drop 10 scattered packets once each. SACK recovery retransmits
	// each of them; a handful of duplicates are permitted when recovery
	// re-enters with a new recovery sequence (the paper's rule: on each
	// recovery entry the cumulative-ack packet is retransmitted first),
	// but nothing near go-back-N's full-window redundancy.
	p := DefaultParams(1000, 113)
	drops := map[packet.PSN]bool{}
	for _, psn := range []packet.PSN{3, 9, 17, 31, 42, 55, 60, 71, 88, 99} {
		drops[psn] = true
	}
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && drops[pkt.PSN] {
			delete(drops, pkt.PSN)
			return true
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, nil, 300, lossFn)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Retransmits < 10 {
		t.Errorf("Retransmits = %d, want >= 10 (every loss repaired)", snd.Stats.Retransmits)
	}
	if snd.Stats.Retransmits > 20 {
		t.Errorf("Retransmits = %d, selective recovery should stay near 10", snd.Stats.Retransmits)
	}
	if snd.Stats.Timeouts != 0 {
		t.Errorf("timeouts = %d, SACK recovery should avoid RTOs here", snd.Stats.Timeouts)
	}
}

func TestLastPacketLossRecoversViaRTOLow(t *testing.T) {
	p := DefaultParams(1000, 113)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && pkt.Last && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, nil, 50, lossFn)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Timeouts == 0 {
		t.Error("tail loss must recover via timeout")
	}
	// The timeout should have been RTOLow (few packets in flight), so
	// total time stays well under RTOHigh + transfer time.
	if doneAt > sim.Time(60*sim.Microsecond+2*p.RTOLow) {
		t.Errorf("tail-loss FCT %v too slow for RTOLow recovery", sim.Duration(doneAt))
	}
}

func TestSinglePacketMessageLossRecovery(t *testing.T) {
	p := DefaultParams(1000, 113)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, nil, 1, lossFn)
	if doneAt == 0 {
		t.Fatal("single-packet flow did not complete")
	}
	if snd.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", snd.Stats.Timeouts)
	}
	// RTOLow (100 µs) + one RTT, with margin.
	if doneAt > sim.Time(120*sim.Microsecond) {
		t.Errorf("FCT %v too slow; RTOLow should bound tail latency", sim.Duration(doneAt))
	}
}

func TestGoBackNRedundantRetransmissions(t *testing.T) {
	// The same single loss under go-back-N retransmits everything sent
	// after the hole — the §4.2.3 pathology. Compare directly against
	// SACK recovery under an identical loss pattern.
	mkLoss := func() func(*packet.Packet) bool {
		dropped := false
		return func(pkt *packet.Packet) bool {
			if pkt.Type == packet.TypeData && pkt.PSN == 5 && !dropped {
				dropped = true
				return true
			}
			return false
		}
	}
	pSack := DefaultParams(1000, 113)
	sackSnd, _, _, sackDone := runOverFabric(t, pSack, nil, 300, mkLoss())

	pGBN := DefaultParams(1000, 113)
	pGBN.Recovery = RecoveryGoBackN
	gbnSnd, _, _, gbnDone := runOverFabric(t, pGBN, nil, 300, mkLoss())

	if sackDone == 0 || gbnDone == 0 {
		t.Fatal("flows did not complete")
	}
	// SACK: 1 retransmission. GBN: everything in flight behind the hole
	// (tens of packets at this bandwidth-delay product).
	if gbnSnd.Stats.Sent < sackSnd.Stats.Sent+20 {
		t.Errorf("go-back-N sent %d vs SACK %d; expected >= %d",
			gbnSnd.Stats.Sent, sackSnd.Stats.Sent, sackSnd.Stats.Sent+20)
	}
}

func TestSACKBeatsNoSACKUnderMultipleLosses(t *testing.T) {
	mkLoss := func() func(*packet.Packet) bool {
		drops := map[packet.PSN]bool{5: true, 6: true, 7: true, 8: true, 20: true, 40: true}
		return func(pkt *packet.Packet) bool {
			if pkt.Type == packet.TypeData && drops[pkt.PSN] {
				delete(drops, pkt.PSN)
				return true
			}
			return false
		}
	}
	pSack := DefaultParams(1000, 113)
	_, _, _, sackDone := runOverFabric(t, pSack, nil, 200, mkLoss())

	pNo := DefaultParams(1000, 113)
	pNo.Recovery = RecoveryNoSACK
	_, _, _, noDone := runOverFabric(t, pNo, nil, 200, mkLoss())

	if sackDone == 0 || noDone == 0 {
		t.Fatal("flows did not complete")
	}
	if noDone <= sackDone {
		t.Errorf("NoSACK (%v) should be slower than SACK (%v) with multiple losses",
			sim.Duration(noDone), sim.Duration(sackDone))
	}
}

func TestAckLossIsHarmless(t *testing.T) {
	// Dropping every third ACK must not prevent completion (cumulative
	// acks are self-repairing) nor trigger mass retransmission.
	p := DefaultParams(1000, 113)
	n := 0
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeAck {
			n++
			return n%3 == 0
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, nil, 300, lossFn)
	if doneAt == 0 {
		t.Fatal("flow did not complete despite ACK losses")
	}
	if snd.Stats.Retransmits > 5 {
		t.Errorf("ACK losses caused %d retransmits", snd.Stats.Retransmits)
	}
}

func TestRandomLossStorm(t *testing.T) {
	// 5% random data loss: the flow must still complete, exercising
	// mixed NACK and timeout recovery paths.
	p := DefaultParams(1000, 113)
	rng := sim.NewRNG(99)
	lossFn := func(pkt *packet.Packet) bool {
		return pkt.Type == packet.TypeData && rng.Float64() < 0.05
	}
	snd, rcv, _, doneAt := runOverFabric(t, p, nil, 1000, lossFn)
	if doneAt == 0 {
		t.Fatalf("flow did not complete under random loss (recv %d/1000, retx %d, to %d)",
			rcv.Received(), snd.Stats.Retransmits, snd.Stats.Timeouts)
	}
	if snd.Stats.Retransmits == 0 {
		t.Error("expected retransmissions under 5% loss")
	}
}

func TestBDPFCBoundsReceiverBuffering(t *testing.T) {
	// With BDP-FC, the receiver never tracks more than BDPCap packets of
	// out-of-order state — the §6.1 memory argument. Drop the very first
	// packet and watch the OOO buildup while the window drains.
	p := DefaultParams(1000, 50)
	dropped := false
	maxOOO := 0
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && pkt.PSN == 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.LossInject = lossFn
	net := fabric.New(eng, topo.NewStar(2), cfg)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 500 * 1000, Pkts: 500}
	snd := NewSender(net.NIC(0), flow, p, nil)
	rcv := NewReceiver(net.NIC(1), flow, p, nil)
	probe := sinkProbe{rcv: rcv, maxOOO: &maxOOO}
	net.NIC(1).AttachSink(flow.ID, probe)
	net.NIC(0).AttachSource(snd)
	eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !flow.Finished {
		t.Fatal("flow did not complete")
	}
	if maxOOO > 50 {
		t.Errorf("receiver OOO state reached %d packets, above the BDP cap 50", maxOOO)
	}
}

// sinkProbe wraps a Receiver, tracking the largest out-of-order window
// (received − delivered-in-order distance).
type sinkProbe struct {
	rcv    *Receiver
	maxOOO *int
}

func (p sinkProbe) HandleData(pkt *packet.Packet, now sim.Time) {
	p.rcv.HandleData(pkt, now)
	ooo := p.rcv.Received() - int(p.rcv.Expected())
	if ooo < 0 {
		ooo = 0
	}
	if ooo > *p.maxOOO {
		*p.maxOOO = ooo
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, sim.Time) {
		p := DefaultParams(1000, 113)
		rng := sim.NewRNG(7)
		lossFn := func(pkt *packet.Packet) bool {
			return pkt.Type == packet.TypeData && rng.Float64() < 0.02
		}
		snd, _, _, doneAt := runOverFabric(t, p, nil, 500, lossFn)
		return snd.Stats.Sent, doneAt
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("identical seeds diverged: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
	}
}

func TestRetxFetchDelayImposed(t *testing.T) {
	p := DefaultParams(1000, 113)
	p.RetxFetchDelay = 2 * sim.Microsecond
	drops := map[packet.PSN]bool{5: true, 6: true, 7: true}
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && drops[pkt.PSN] {
			delete(drops, pkt.PSN)
			return true
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, nil, 100, lossFn)
	if doneAt == 0 {
		t.Fatal("did not complete")
	}
	if snd.Stats.Retransmits != 3 {
		t.Errorf("Retransmits = %d", snd.Stats.Retransmits)
	}
}

func TestExtraHeaderOverheadSlowsTransfer(t *testing.T) {
	p1 := DefaultParams(1000, 113)
	_, _, _, base := runOverFabric(t, p1, nil, 2000, nil)
	p2 := DefaultParams(1000, 113)
	p2.ExtraHeaderBytes = 16
	_, _, _, withHdr := runOverFabric(t, p2, nil, 2000, nil)
	if withHdr <= base {
		t.Errorf("16B/packet overhead should slow the transfer: %v vs %v", withHdr, base)
	}
	// But only by roughly 16/1062 ≈ 1.5%.
	ratio := float64(withHdr) / float64(base)
	if ratio > 1.05 {
		t.Errorf("overhead ratio %v too large", ratio)
	}
}

func TestNackThresholdToleratesReordering(t *testing.T) {
	// §7: "IRN's loss recovery mechanism can be made more robust to
	// reordering by triggering loss recovery only after a certain
	// threshold of NACKs are received." Swap adjacent packets in flight
	// (no losses) and compare spurious retransmissions.
	run := func(threshold int) uint64 {
		eng := sim.NewEngine()
		cfg := fabric.DefaultConfig()
		net := fabric.New(eng, topo.NewStar(2), cfg)

		p := DefaultParams(1000, 113)
		p.NackThreshold = threshold
		flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 400 * 1000, Pkts: 400}
		snd := NewSender(net.NIC(0), flow, p, nil)
		rcv := NewReceiver(net.NIC(1), flow, p, nil)
		// Reorder by swapping delivery of every 20th packet with its
		// successor: the sink sees ... 19, 21, 20, 22 ...  The held packet
		// must be copied: the NIC returns the original to the fabric's
		// packet pool as soon as HandleData returns, so retaining the
		// pointer would alias a recycled packet.
		var held *packet.Packet
		swapper := sinkFunc2(func(pkt *packet.Packet, now sim.Time) {
			switch {
			case held != nil:
				rcv.HandleData(pkt, now)
				rcv.HandleData(held, now)
				held = nil
			case pkt.PSN%20 == 19 && !pkt.Last:
				cp := *pkt
				held = &cp
			default:
				rcv.HandleData(pkt, now)
			}
		})
		net.NIC(1).AttachSink(flow.ID, swapper)
		net.NIC(0).AttachSource(snd)
		eng.RunUntil(sim.Time(100 * sim.Millisecond))
		if !flow.Finished {
			t.Fatalf("threshold=%d: flow did not complete", threshold)
		}
		return snd.Stats.Retransmits
	}

	eager := run(1)
	tolerant := run(3)
	if eager == 0 {
		t.Error("threshold=1 should retransmit spuriously under reordering")
	}
	if tolerant != 0 {
		t.Errorf("threshold=3 retransmitted %d times under pure reordering", tolerant)
	}
}

// sinkFunc2 adapts a function to transport.Sink.
type sinkFunc2 func(*packet.Packet, sim.Time)

func (f sinkFunc2) HandleData(p *packet.Packet, now sim.Time) { f(p, now) }

func TestRandomizedFlowsAlwaysComplete(t *testing.T) {
	// Property: for random flow sizes, loss rates and recovery modes,
	// the transfer always completes and the receiver sees every packet
	// exactly once (no livelock, no lost completion).
	modes := []RecoveryMode{RecoverySACK, RecoveryGoBackN, RecoveryNoSACK}
	rng := sim.NewRNG(20260611)
	for trial := 0; trial < 25; trial++ {
		pkts := 1 + rng.Intn(400)
		lossPct := rng.Float64() * 0.08
		mode := modes[rng.Intn(len(modes))]
		lossRng := sim.NewRNG(rng.Uint64())
		lossFn := func(pkt *packet.Packet) bool {
			return pkt.Type == packet.TypeData && lossRng.Float64() < lossPct
		}
		p := DefaultParams(1000, 113)
		p.Recovery = mode
		snd, rcv, _, doneAt := runOverFabric(t, p, nil, pkts, lossFn)
		if doneAt == 0 {
			t.Fatalf("trial %d (pkts=%d loss=%.2f mode=%v): did not complete (recv %d, retx %d, to %d)",
				trial, pkts, lossPct, mode, rcv.Received(), snd.Stats.Retransmits, snd.Stats.Timeouts)
		}
		if rcv.Received() != pkts {
			t.Fatalf("trial %d: received %d, want %d", trial, rcv.Received(), pkts)
		}
		if !snd.Done() {
			t.Fatalf("trial %d: sender not done after completion", trial)
		}
	}
}
