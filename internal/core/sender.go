package core

import (
	"github.com/irnsim/irn/internal/bitmap"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// Sender is the IRN sender state machine of §3.1/§3.2. It implements
// transport.Source.
//
// Loss recovery: the sender tracks cumulative and selective
// acknowledgements in a bitmap over [cumAck, cumAck+window). It enters
// recovery on a NACK or timeout. The first retransmission is the packet
// at the cumulative ack; any later packet counts as lost only if a higher
// PSN has been selectively acked. When no lost packet remains, new packets
// flow again (subject to BDP-FC), and recovery ends once the cumulative
// ack passes the recovery sequence — the last regular packet sent before
// the first retransmission.
type Sender struct {
	ep   transport.Endpoint
	pool *packet.Pool
	flow *transport.Flow
	p    Params
	cc   transport.Controller

	total   int
	cumAck  packet.PSN
	nextNew packet.PSN
	maxSent packet.PSN     // highest PSN ever transmitted + 1
	acked   *bitmap.Bitmap // selective acks over [cumAck, ...)

	inRecovery  bool
	recoverySeq packet.PSN // last regular PSN sent before first retransmission
	retxNext    packet.PSN // scan pointer for the next retransmission
	highSack    packet.PSN // highest selectively-acked PSN (0 = none; stores PSN+1)

	nackCount int // NACKs since last recovery entry (NackThreshold)

	paceUntil  sim.Time
	retxEligAt sim.Time // earliest next retransmission (fetch-delay model)

	rto *sim.Timer
	// Dynamic RTO estimator state (§4.3 question 3).
	srtt, rttvar sim.Duration
	haveRTT      bool

	done bool

	Stats SenderStats
}

// stopper is implemented by controllers with background timers (DCQCN).
type stopper interface{ Stop() }

// NewSender builds an IRN sender for flow on endpoint ep. cc may be nil
// for no explicit congestion control.
func NewSender(ep transport.Endpoint, flow *transport.Flow, p Params, ctrl transport.Controller) *Sender {
	if ctrl == nil {
		ctrl = transport.None{}
	}
	if flow.Pkts == 0 {
		flow.Pkts = transport.NumPackets(flow.Size, p.MTU)
	}
	if p.NackThreshold < 1 {
		p.NackThreshold = 1
	}
	s := &Sender{
		ep:    ep,
		pool:  ep.Pool(),
		flow:  flow,
		p:     p,
		cc:    ctrl,
		total: flow.Pkts,
	}
	capPkts := p.BDPCap
	if capPkts <= 0 || capPkts > s.total {
		capPkts = s.total
	}
	if p.BDPCap <= 0 {
		capPkts = s.total // uncapped window: bitmap must cover the message
	}
	s.acked = bitmap.New(capPkts + 1)
	s.rto = sim.NewHandlerTimer(ep.Engine(), ep.Clock(), s, senderRTO)
	return s
}

// senderRTO is the Sender's only sim.Handler event kind: RTO expiry.
const senderRTO uint8 = 0

// HandleEvent implements sim.Handler (the retransmission timer).
func (s *Sender) HandleEvent(uint8, uint64) { s.onTimeout() }

// Flow implements transport.Source.
func (s *Sender) Flow() *transport.Flow { return s.flow }

// Done implements transport.Source.
func (s *Sender) Done() bool { return s.done }

// inflight is the BDP-FC quantity: distance between the next new sequence
// number and the last acknowledged one (§3.2).
func (s *Sender) inflight() int { return int(s.nextNew - s.cumAck) }

// windowOpen reports whether BDP-FC and the congestion window admit a new
// (non-retransmitted) packet.
func (s *Sender) windowOpen() bool {
	inf := s.inflight()
	if s.p.BDPCap > 0 && inf >= s.p.BDPCap {
		return false
	}
	if w := s.cc.WindowPackets(); w > 0 && inf >= w {
		return false
	}
	return true
}

// peekRetx reports the next retransmission candidate without consuming it.
func (s *Sender) peekRetx() (packet.PSN, bool) {
	if !s.inRecovery {
		return 0, false
	}
	if s.p.Recovery == RecoveryGoBackN {
		// Go-back-N rewinds nextNew instead of tracking retransmissions.
		return 0, false
	}
	if s.retxNext <= s.cumAck {
		// The cumulative ack itself is always the first retransmission.
		if s.cumAck < packet.PSN(s.total) {
			return s.cumAck, true
		}
		return 0, false
	}
	if s.p.Recovery == RecoveryNoSACK {
		// Without SACK state only the cumulative-ack packet is ever
		// retransmitted; retxNext > cumAck means it already was.
		return 0, false
	}
	// A packet is lost only if a higher PSN was selectively acked.
	if s.highSack == 0 || s.retxNext >= s.highSack {
		return 0, false
	}
	off := s.acked.NextZero(int(s.retxNext - s.cumAck))
	psn := s.cumAck + packet.PSN(off)
	if psn < s.highSack && psn < packet.PSN(s.total) {
		return psn, true
	}
	return 0, false
}

// HasData implements transport.Source.
func (s *Sender) HasData(now sim.Time) (bool, sim.Time) {
	if s.done {
		return false, 0
	}
	if now < s.paceUntil {
		return false, s.paceUntil
	}
	if _, ok := s.peekRetx(); ok {
		if now < s.retxEligAt {
			return false, s.retxEligAt
		}
		return true, 0
	}
	if s.nextNew < packet.PSN(s.total) && s.windowOpen() {
		return true, 0
	}
	return false, 0
}

// NextPacket implements transport.Source.
func (s *Sender) NextPacket(now sim.Time) *packet.Packet {
	var psn packet.PSN
	if p, ok := s.peekRetx(); ok && now >= s.retxEligAt {
		psn = p
		if s.retxNext <= s.cumAck {
			s.retxNext = s.cumAck + 1
		} else {
			s.retxNext = psn + 1
		}
		if s.p.RetxFetchDelay > 0 {
			// The next retransmission must be identified by a fresh
			// look-ahead, costing another fetch (§6.3 worst case).
			s.retxEligAt = now.Add(s.p.RetxFetchDelay)
		}
		s.Stats.Retransmits++
	} else if s.nextNew < packet.PSN(s.total) && s.windowOpen() {
		psn = s.nextNew
		s.nextNew++
		if psn < s.maxSent {
			s.Stats.Retransmits++ // go-back-N rewind resend
		}
	} else {
		return nil
	}
	if psn+1 > s.maxSent {
		s.maxSent = psn + 1
	}

	payload := transport.PayloadOf(s.flow.Size, s.p.MTU, int(psn))
	pkt := s.pool.NewData(s.flow.ID, s.flow.Src, s.flow.Dst, psn, payload, int(psn) == s.total-1)
	pkt.Wire += s.p.ExtraHeaderBytes
	pkt.ECT = s.p.ECT
	pkt.SentAt = now
	s.Stats.Sent++

	if d := s.cc.SendDelay(pkt.Wire); d > 0 {
		s.paceUntil = now.Add(d)
	}
	s.armRTO(now)
	return pkt
}

// rtoDuration picks the timeout per §3.1: RTOLow while few packets are in
// flight (so single-packet messages recover quickly without spurious
// retransmissions elsewhere), RTOHigh otherwise; or the dynamic estimate.
func (s *Sender) rtoDuration() sim.Duration {
	if s.p.DynamicRTO {
		if !s.haveRTT {
			return s.p.RTOHigh
		}
		rto := s.srtt + 4*s.rttvar
		if rto < s.p.RTOLow {
			rto = s.p.RTOLow
		}
		if rto > 4*s.p.RTOHigh {
			rto = 4 * s.p.RTOHigh
		}
		return rto
	}
	if s.inflight() < s.p.RTOLowThreshold {
		return s.p.RTOLow
	}
	return s.p.RTOHigh
}

// armRTO (re)arms the retransmission timer.
func (s *Sender) armRTO(sim.Time) {
	if s.done {
		s.rto.Cancel()
		return
	}
	s.rto.Arm(s.rtoDuration())
}

// onTimeout handles RTO expiry: enter (or restart) loss recovery from the
// cumulative ack.
func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	if s.cumAck >= s.maxSent {
		// Nothing outstanding; nothing to recover. Do not re-arm — the
		// next transmission re-arms the timer.
		return
	}
	s.Stats.Timeouts++
	s.enterRecovery()
	s.retxNext = s.cumAck // rescan from the start on timeout
	if s.p.Recovery == RecoveryGoBackN {
		s.goBackTo(s.cumAck)
	}
	if s.p.BackoffOnLoss {
		s.cc.OnLoss(s.ep.Now())
	}
	s.armRTO(s.ep.Now())
	s.ep.Wake()
}

// enterRecovery transitions into loss recovery if not already there.
func (s *Sender) enterRecovery() {
	if s.inRecovery {
		return
	}
	s.inRecovery = true
	s.Stats.Recoveries++
	// "The recovery sequence corresponds to the last regular packet that
	// was sent before the retransmission of a lost packet" — the highest
	// PSN ever transmitted, which survives go-back-N rewinds.
	if s.maxSent > 0 {
		s.recoverySeq = s.maxSent - 1
	} else {
		s.recoverySeq = 0
	}
	s.nackCount = 0
}

// goBackTo rewinds the transmission point for go-back-N recovery.
func (s *Sender) goBackTo(psn packet.PSN) {
	if psn < s.nextNew {
		s.nextNew = psn
	}
}

// HandleControl implements transport.Source.
func (s *Sender) HandleControl(pkt *packet.Packet, now sim.Time) {
	switch pkt.Type {
	case packet.TypeAck:
		s.handleAck(pkt, now, false)
	case packet.TypeNack:
		s.handleAck(pkt, now, true)
	case packet.TypeCNP:
		s.cc.OnCNP(now)
	}
}

// handleAck processes the cumulative portion shared by ACKs and NACKs,
// then NACK-specific recovery state.
func (s *Sender) handleAck(pkt *packet.Packet, now sim.Time, nack bool) {
	if s.done {
		return
	}
	// RTT sample from the echoed transmit timestamp.
	if pkt.AckedSentAt > 0 {
		rtt := now.Sub(pkt.AckedSentAt)
		s.updateRTT(rtt)
		newly := 0
		if pkt.CumAck > s.cumAck {
			newly = int(pkt.CumAck - s.cumAck)
		}
		if newly > 0 || !nack {
			s.cc.OnAck(now, rtt, newly, pkt.ECNEcho)
		}
	}

	if pkt.CumAck > s.cumAck {
		s.acked.AdvanceTo(pkt.CumAck)
		s.cumAck = pkt.CumAck
		if s.retxNext < s.cumAck {
			s.retxNext = s.cumAck
		}
		if s.nextNew < s.cumAck {
			// A go-back-N rewind was overtaken by the cumulative ack
			// (the receiver already had the rewound range buffered);
			// never resend delivered packets.
			s.nextNew = s.cumAck
		}
		s.nackCount = 0
		if s.inRecovery && s.cumAck > s.recoverySeq {
			s.inRecovery = false
		}
		s.armRTO(now)
	}

	if nack {
		s.Stats.Nacks++
		if s.p.Recovery == RecoverySACK && pkt.SackPSN >= s.cumAck {
			if fresh, err := s.acked.Set(pkt.SackPSN); err == nil && fresh {
				if pkt.SackPSN+1 > s.highSack {
					s.highSack = pkt.SackPSN + 1
				}
			}
		}
		entered := false
		if !s.inRecovery {
			s.nackCount++
			if s.nackCount >= s.p.NackThreshold {
				s.enterRecovery()
				entered = true
				s.retxNext = s.cumAck
				if s.p.RetxFetchDelay > 0 {
					s.retxEligAt = now.Add(s.p.RetxFetchDelay)
				}
				if s.p.BackoffOnLoss {
					s.cc.OnLoss(now)
				}
			}
		}
		// Go-back-N ablation (§4.3): the sender ignores the selective
		// acknowledgement and rewinds to the cumulative ack on every
		// NACK — the redundant-retransmission pathology of §4.2.3.
		if s.p.Recovery == RecoveryGoBackN && (s.inRecovery || entered) {
			s.goBackTo(s.cumAck)
		}
	}

	if s.cumAck >= packet.PSN(s.total) {
		s.finish()
		return
	}
	s.ep.Wake()
}

// updateRTT feeds the dynamic RTO estimator (RFC 6298 shape).
func (s *Sender) updateRTT(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if !s.haveRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.haveRTT = true
		return
	}
	d := s.srtt - rtt
	if d < 0 {
		d = -d
	}
	s.rttvar = (3*s.rttvar + d) / 4
	s.srtt = (7*s.srtt + rtt) / 8
}

// finish marks the flow fully acknowledged and releases resources.
func (s *Sender) finish() {
	s.done = true
	s.rto.Cancel()
	if st, ok := s.cc.(stopper); ok {
		st.Stop()
	}
	s.ep.Wake() // let the NIC reap this source
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
