package core

import (
	"github.com/irnsim/irn/internal/bitmap"
	"github.com/irnsim/irn/internal/cc"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// Receiver is the IRN receiver of §3.1: it keeps out-of-order packets
// (tracking them in a BDP-sized bitmap), sends a cumulative ACK for every
// in-order arrival, and on every out-of-order arrival sends a NACK
// carrying both the cumulative acknowledgement and the sequence number
// that triggered it.
//
// The receiver behaves identically across the §4.3 sender-side recovery
// ablations (go-back-N, no-SACK): those change only what the sender does
// with the NACKs. The RoCE-style receiver that discards out-of-order
// packets lives in internal/rocev2.
//
// It also hosts the DCQCN notification point: CE-marked arrivals generate
// CNPs, rate-limited to one per 50 µs per flow.
type Receiver struct {
	ep   transport.Endpoint
	pool *packet.Pool
	flow *transport.Flow
	p    Params

	expected packet.PSN
	rcv      *bitmap.Bitmap // out-of-order arrivals beyond expected
	received int            // distinct data packets received
	total    int

	cnp *cc.CNPGenerator

	done transport.Completer

	// Stats.
	Acks, Nacks, CNPs, Duplicates uint64
}

// NewReceiver builds an IRN receiver for flow. done (may be nil) is
// notified exactly once, when every packet of the message has arrived;
// taking an interface instead of a closure keeps flow start allocation-
// free on the launcher's hot path.
func NewReceiver(ep transport.Endpoint, flow *transport.Flow, p Params, done transport.Completer) *Receiver {
	if flow.Pkts == 0 {
		flow.Pkts = transport.NumPackets(flow.Size, p.MTU)
	}
	r := &Receiver{
		ep:    ep,
		pool:  ep.Pool(),
		flow:  flow,
		p:     p,
		total: flow.Pkts,
		cnp:   cc.NewCNPGenerator(),
		done:  done,
	}
	capPkts := p.BDPCap
	if capPkts <= 0 || capPkts > r.total {
		capPkts = r.total
	}
	r.rcv = bitmap.New(capPkts + 1)
	return r
}

// Received reports distinct data packets received so far.
func (r *Receiver) Received() int { return r.received }

// Expected returns the next expected sequence number.
func (r *Receiver) Expected() packet.PSN { return r.expected }

// HandleData implements transport.Sink.
func (r *Receiver) HandleData(pkt *packet.Packet, now sim.Time) {
	// DCQCN notification point.
	if pkt.CE && r.cnp.OnMarked(now) {
		r.CNPs++
		r.ep.SendControl(r.pool.NewCNP(pkt.Flow, r.flow.Dst, r.flow.Src))
	}

	switch {
	case pkt.PSN < r.expected:
		// Duplicate of an already-delivered packet (a spurious or
		// crossed retransmission). Re-ACK so the sender advances.
		r.Duplicates++
		r.sendAck(pkt, now)

	case pkt.PSN == r.expected:
		r.deliverInOrder(pkt, now)

	default: // out of order
		fresh, err := r.rcv.Set(pkt.PSN)
		if err != nil {
			// Beyond the tracking window: only possible when the sender
			// violates BDP-FC; drop and NACK to resynchronize.
			r.sendNack(pkt, now)
			return
		}
		if fresh {
			r.received++
		} else {
			r.Duplicates++
		}
		// "Upon every out-of-order packet arrival, an IRN receiver
		// sends a NACK" (§3.1).
		r.sendNack(pkt, now)
		r.maybeComplete(now)
	}
}

// deliverInOrder accepts the expected packet and advances past any
// previously buffered out-of-order packets.
func (r *Receiver) deliverInOrder(pkt *packet.Packet, now sim.Time) {
	r.received++
	if _, err := r.rcv.Set(pkt.PSN); err != nil {
		// Window bookkeeping failed; this cannot happen when the
		// sender honors the cap, but recover defensively.
		r.rcv.Reset(pkt.PSN + 1)
		r.expected = pkt.PSN + 1
		r.sendAck(pkt, now)
		r.maybeComplete(now)
		return
	}
	n := r.rcv.LeadingOnes()
	r.rcv.Advance(n)
	r.expected += packet.PSN(n)
	r.sendAck(pkt, now)
	r.maybeComplete(now)
}

// sendAck emits a cumulative ACK echoing the triggering packet's
// timestamp and congestion marking.
func (r *Receiver) sendAck(trigger *packet.Packet, _ sim.Time) {
	ack := r.pool.NewAck(r.flow.ID, r.flow.Dst, r.flow.Src, r.expected)
	ack.AckedSentAt = trigger.SentAt
	ack.ECNEcho = trigger.CE
	r.Acks++
	r.ep.SendControl(ack)
}

// sendNack emits an IRN NACK: cumulative ack plus the PSN that triggered
// it (the simplified SACK).
func (r *Receiver) sendNack(trigger *packet.Packet, _ sim.Time) {
	n := r.pool.NewNack(r.flow.ID, r.flow.Dst, r.flow.Src, r.expected, trigger.PSN)
	n.AckedSentAt = trigger.SentAt
	n.ECNEcho = trigger.CE
	r.Nacks++
	r.ep.SendControl(n)
}

// maybeComplete fires the completion callback when the whole message has
// arrived.
func (r *Receiver) maybeComplete(now sim.Time) {
	if r.flow.Finished || r.received < r.total {
		return
	}
	r.flow.Finished = true
	r.flow.Finish = now
	if r.done != nil {
		r.done.FlowDone(r.flow, now)
	}
}
