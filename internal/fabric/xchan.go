package fabric

import (
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// linkChan is the cross-shard channel of one boundary link direction: the
// deterministic replacement for direct event scheduling when a link's
// transmitter and receiver live on different shard engines. The producer
// (the transmitting port's shard) appends occurrences during its safe
// window; the coordinator drains them into the consumer engine at the
// next barrier, re-using the rank each occurrence drew — from the
// producing node's clock, at exactly the call site where serial execution
// would have drawn it — so the merged order is the serial order, bit for
// bit.
//
// Two occurrence kinds share the channel: packet arrivals, pushed at
// serialization *start* and due one serialization plus one propagation
// delay out (the early push is what lets the lookahead include the
// minimum frame serialization — see Network.computeLookahead), and PFC
// frames, pushed at generation and due one ControlFrame serialization
// plus one propagation delay out — at least serMin+prop, like every
// other frame, which is what keeps PFC fabrics on the widened lookahead.
//
// Occurrence pushes are *nearly* sorted by (at, rank) — ranks are one
// clock's sequence, and due times grow with push time — with one
// exception: a PFC frame generated while a data packet is serializing on
// the same direction is pushed after it but may be due before it (the
// frame bypasses the packet queue, and its 64-byte serialization is far
// shorter than a data packet's). The consumer therefore does not pop a
// FIFO head;
// each drained occurrence's engine event carries the occurrence's
// absolute index as its argument, so firing order and push order are
// free to differ.
//
// Concurrency: inbox is touched by the producer shard during windows and
// by the coordinator at barriers; fifo and delivered by the consumer
// shard during windows and the coordinator at barriers. The window
// barrier's channel operations order every access; nothing here needs a
// lock.
type linkChan struct {
	dst  node          // receiving node
	from packet.NodeID // transmitting node (receive/pfcFrame source)
	eng  *sim.Engine   // consumer shard's engine
	clk  *sim.Clock    // producing node's clock
	net  *Network      // owning fabric, for the producer window clamp

	// part is the consumer partition: boundary fault deaths count in its
	// stats/census and release into its pool, the same side an interior
	// link's portDeliver would use after the handoff.
	part *partition
	// flt is this direction's fault state, nil on healthy links. The
	// consumer resolves faults from the *static* schedule (fault.StateAt)
	// rather than the producer port's event-mutated down/curLoss fields,
	// which live on the other shard. An arrival at exactly a transition's
	// timestamp sees the post-transition state either way: the environment
	// clock's rank (id 0) orders fault events before any same-instant
	// packet event, and StateAt applies entries with At <= t. The RNG
	// draws are consumer-exclusive and happen in FIFO arrival order — the
	// per-link serial order — so the stream stays bit-identical.
	flt *fault.Link

	// prod is the producer partition; the first push of a window
	// registers the channel on its dirty list so the barrier drain
	// visits only channels that actually carry occurrences.
	prod   *partition
	queued bool // on prod's dirty list

	inbox []chanEntry // produced this window, not yet drained

	// drained holds occurrences whose engine events are scheduled but
	// have not yet fired; base is the absolute index of drained[0] (the
	// count of entries compacted away), pending the live entries, and
	// prefix the consumed entries at the head. Under sustained traffic a
	// channel is never fully idle, so compaction cannot wait for
	// pending == 0: each drain slides the live tail over the consumed
	// prefix (amortized O(1) per occurrence — in-flight entries number
	// about one link BDP), keeping the array at in-flight size instead
	// of growing with every packet that ever crossed.
	drained []chanEntry
	base    uint64
	prefix  int
	pending int

	batch []sim.RankedEvent // drain scratch, reused across barriers

	sent      int // data packets pushed (producer-owned)
	delivered int // data packets handed to dst (consumer-owned)
	killed    int // data packets dead to faults on arrival (consumer-owned)
}

// chanEntry is one cross-shard occurrence. A zero entry marks a consumed
// slot in drained; at == 0 is the discriminator, which is unambiguous
// because every occurrence is due at least one positive propagation
// delay after a non-negative push instant.
type chanEntry struct {
	at    sim.Time
	rank  uint64
	pkt   *packet.Packet // nil → PFC frame
	pause bool
}

// mark registers the channel on the producer partition's dirty list on
// its first push since the last drain, and clamps the producer's current
// safe window: the occurrence arrives at the consumer at time at, and
// nothing the consumer does with it can influence the producer earlier
// than at plus the fabric's minimum cross-shard latency (one propagation
// plus the smallest frame serialization — the window slack). An
// adaptively widened window (see sim.RunWindows) must therefore end by
// at + slack, or the bounce-back could land in this shard's executed
// past. Runs on the producing shard.
func (c *linkChan) mark(at sim.Time) {
	if !c.queued {
		c.queued = true
		c.prod.dirty = append(c.prod.dirty, c)
	}
	c.prod.eng.LimitWindow(at.Add(c.net.slack))
}

// send pushes a packet arrival due at. Called by the producing port at
// serialization start, in place of scheduling portDeliver.
func (c *linkChan) send(at sim.Time, pkt *packet.Packet) {
	c.mark(at)
	c.inbox = append(c.inbox, chanEntry{at: at, rank: c.clk.Next(), pkt: pkt})
	c.sent++
}

// sendPFC pushes a PFC frame due at.
func (c *linkChan) sendPFC(at sim.Time, pause bool) {
	c.mark(at)
	c.inbox = append(c.inbox, chanEntry{at: at, rank: c.clk.Next(), pause: pause})
}

// drain moves pending occurrences into the consumer engine as one batch
// insert, payloads kept in the channel's drained array with each event
// carrying its occurrence's absolute index. Runs on the coordinator at a
// window barrier.
func (c *linkChan) drain() {
	c.queued = false
	if c.prefix > 0 {
		// Slide live entries over the consumed prefix. Scheduled events
		// reference absolute indexes, so advancing base by the same
		// amount keeps every outstanding arg resolving to its entry.
		n := copy(c.drained, c.drained[c.prefix:])
		for i := n; i < len(c.drained); i++ {
			c.drained[i] = chanEntry{}
		}
		c.drained = c.drained[:n]
		c.base += uint64(c.prefix)
		c.prefix = 0
	}
	c.batch = c.batch[:0]
	for i := range c.inbox {
		e := c.inbox[i]
		c.inbox[i] = chanEntry{}
		c.batch = append(c.batch, sim.RankedEvent{
			At: e.at, Rank: e.rank, Arg: c.base + uint64(len(c.drained)),
		})
		c.drained = append(c.drained, e)
	}
	c.inbox = c.inbox[:0]
	c.pending += len(c.batch)
	c.part.drained += uint64(len(c.batch))
	c.eng.ScheduleRankedBatch(c, c.batch)
}

// HandleEvent implements sim.Handler: one drained occurrence coming due
// on the consumer engine, identified by its absolute index.
func (c *linkChan) HandleEvent(_ uint8, arg uint64) {
	i := int(arg - c.base)
	e := c.drained[i]
	c.drained[i] = chanEntry{}
	c.pending--
	if c.pending == 0 {
		c.base += uint64(len(c.drained))
		c.drained = c.drained[:0]
		c.prefix = 0
	} else if i == c.prefix {
		for c.prefix < len(c.drained) && c.drained[c.prefix].at == 0 {
			c.prefix++
		}
	}
	if e.pkt == nil {
		c.dst.pfcFrame(c.from, e.pause)
		return
	}
	// Fault resolution at the receiving end, mirroring portDeliver: a
	// downed link kills the packets in flight when it failed, then the
	// in-flight loss draw, then the CRC check.
	if c.flt != nil {
		down, loss := c.flt.StateAt(c.eng.Now())
		if down {
			c.die(e.pkt, &c.part.stats.FaultDrops, &c.part.census.FaultDrops)
			return
		}
		if c.flt.Drop(loss) {
			c.die(e.pkt, &c.part.stats.FaultDrops, &c.part.census.FaultDrops)
			return
		}
		if c.flt.DropCorrupt() {
			c.die(e.pkt, &c.part.stats.Corrupted, &c.part.census.Corrupted)
			return
		}
	}
	c.delivered++
	c.dst.receive(e.pkt, c.from)
}

// die is the boundary-link fault death site: stat + census stay paired
// and the packet releases into the consumer pool, exactly like
// outPort.die.
func (c *linkChan) die(pkt *packet.Packet, stat, census *uint64) {
	*stat++
	*census++
	c.killed++
	c.part.pool.Release(pkt)
}

// resident counts the data packets inside the channel — pushed (at
// serialization start) but not yet handed to the receiving node or killed
// by a fault on arrival. They are in flight for conservation purposes,
// exactly like packets riding an interior port's in-flight ring: a
// boundary packet lives here from kick to arrival instead of in the
// ring. Only meaningful at quiescence.
func (c *linkChan) resident() int { return c.sent - c.delivered - c.killed }

// reset empties the channel for a new run, dropping packet references but
// keeping the arrays warm.
func (c *linkChan) reset() {
	for i := range c.inbox {
		c.inbox[i] = chanEntry{}
	}
	for i := range c.drained {
		c.drained[i] = chanEntry{}
	}
	c.inbox, c.drained = c.inbox[:0], c.drained[:0]
	c.base, c.prefix, c.pending, c.queued = 0, 0, 0, false
	c.sent, c.delivered, c.killed = 0, 0, 0
}
