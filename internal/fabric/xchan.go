package fabric

import (
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// linkChan is the cross-shard channel of one boundary link direction: the
// deterministic replacement for direct event scheduling when a link's
// transmitter and receiver live on different shard engines. The producer
// (the transmitting port's shard) appends occurrences during its safe
// window; the coordinator drains them into the consumer engine at the
// next barrier, re-using the rank each occurrence drew — from the
// producing node's clock, at exactly the call site where serial execution
// would have drawn it — so the merged order is the serial order, bit for
// bit.
//
// Two occurrence kinds share the channel, both of which travel this link
// direction with one propagation delay of latency (the lookahead that
// makes the window protocol sound): packet arrivals, pushed at
// serialization end, and PFC frames, pushed at generation.
//
// Occurrences are pushed in strictly increasing (at, rank) order — `at`
// is producer-now plus a constant and ranks are one clock's sequence — so
// the consumer-side FIFO pops in exactly the order the consumer engine
// fires the matching events.
//
// Concurrency: inbox is touched by the producer shard during windows and
// by the coordinator at barriers; fifo and delivered by the consumer
// shard during windows and the coordinator at barriers. The window
// barrier's channel operations order every access; nothing here needs a
// lock.
type linkChan struct {
	dst  node          // receiving node
	from packet.NodeID // transmitting node (receive/pfcFrame source)
	eng  *sim.Engine   // consumer shard's engine
	clk  *sim.Clock    // producing node's clock

	// part is the consumer partition: boundary fault deaths count in its
	// stats/census and release into its pool, the same side an interior
	// link's portDeliver would use after the handoff.
	part *partition
	// flt is this direction's fault state, nil on healthy links. The
	// consumer resolves faults from the *static* schedule (fault.StateAt)
	// rather than the producer port's event-mutated down/curLoss fields,
	// which live on the other shard. An arrival at exactly a transition's
	// timestamp sees the post-transition state either way: the environment
	// clock's rank (id 0) orders fault events before any same-instant
	// packet event, and StateAt applies entries with At <= t. The RNG
	// draws are consumer-exclusive and happen in FIFO arrival order — the
	// per-link serial order — so the stream stays bit-identical.
	flt *fault.Link

	inbox []chanEntry // produced this window, not yet drained
	fifo  []chanEntry // drained, awaiting their engine events
	head  int

	sent      int // data packets pushed (producer-owned)
	delivered int // data packets handed to dst (consumer-owned)
	killed    int // data packets dead to faults on arrival (consumer-owned)
}

// chanEntry is one cross-shard occurrence.
type chanEntry struct {
	at    sim.Time
	rank  uint64
	pkt   *packet.Packet // nil → PFC frame
	pause bool
}

// send pushes a packet arrival due at. Called by the producing port at
// serialization end, in place of scheduling portDeliver.
func (c *linkChan) send(at sim.Time, pkt *packet.Packet) {
	c.inbox = append(c.inbox, chanEntry{at: at, rank: c.clk.Next(), pkt: pkt})
	c.sent++
}

// sendPFC pushes a PFC frame due at.
func (c *linkChan) sendPFC(at sim.Time, pause bool) {
	c.inbox = append(c.inbox, chanEntry{at: at, rank: c.clk.Next(), pause: pause})
}

// drain moves pending occurrences into the consumer engine: one ranked
// event per occurrence, payload kept in the channel's FIFO. Runs on the
// coordinator at a window barrier.
func (c *linkChan) drain() {
	for i := range c.inbox {
		e := c.inbox[i]
		c.inbox[i] = chanEntry{}
		c.fifo = append(c.fifo, e)
		c.eng.ScheduleRanked(e.at, e.rank, c, 0, 0)
	}
	c.inbox = c.inbox[:0]
}

// HandleEvent implements sim.Handler: one drained occurrence coming due
// on the consumer engine. Events fire in push order (see ordering note
// above), so the FIFO head is always the matching occurrence.
func (c *linkChan) HandleEvent(uint8, uint64) {
	e := c.fifo[c.head]
	c.fifo[c.head] = chanEntry{}
	c.head++
	if c.head == len(c.fifo) {
		c.fifo, c.head = c.fifo[:0], 0
	}
	if e.pkt == nil {
		c.dst.pfcFrame(c.from, e.pause)
		return
	}
	// Fault resolution at the receiving end, mirroring portDeliver: a
	// downed link kills the packets in flight when it failed, then the
	// in-flight loss draw, then the CRC check.
	if c.flt != nil {
		down, loss := c.flt.StateAt(c.eng.Now())
		if down {
			c.die(e.pkt, &c.part.stats.FaultDrops, &c.part.census.FaultDrops)
			return
		}
		if c.flt.Drop(loss) {
			c.die(e.pkt, &c.part.stats.FaultDrops, &c.part.census.FaultDrops)
			return
		}
		if c.flt.DropCorrupt() {
			c.die(e.pkt, &c.part.stats.Corrupted, &c.part.census.Corrupted)
			return
		}
	}
	c.delivered++
	c.dst.receive(e.pkt, c.from)
}

// die is the boundary-link fault death site: stat + census stay paired
// and the packet releases into the consumer pool, exactly like
// outPort.die.
func (c *linkChan) die(pkt *packet.Packet, stat, census *uint64) {
	*stat++
	*census++
	c.killed++
	c.part.pool.Release(pkt)
}

// resident counts the data packets inside the channel — pushed but not
// yet handed to the receiving node or killed by a fault on arrival. They
// are in flight for conservation purposes, exactly like packets riding an
// interior port's in-flight ring. Only meaningful at quiescence.
func (c *linkChan) resident() int { return c.sent - c.delivered - c.killed }

// reset empties the channel for a new run, dropping packet references but
// keeping the arrays warm.
func (c *linkChan) reset() {
	for i := range c.inbox {
		c.inbox[i] = chanEntry{}
	}
	for i := range c.fifo {
		c.fifo[i] = chanEntry{}
	}
	c.inbox, c.fifo, c.head = c.inbox[:0], c.fifo[:0], 0
	c.sent, c.delivered, c.killed = 0, 0, 0
}
