package fabric

import (
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// ECNConfig is RED-style marking at switch egress queues, the signal DCQCN
// and DCTCP react to. Marking probability rises linearly from 0 at KMin to
// PMax at KMax, then 1 above KMax.
type ECNConfig struct {
	Enabled bool
	KMin    int // bytes
	KMax    int // bytes
	PMax    float64
}

// Config sets the fabric-wide parameters of a simulation. The defaults
// (see DefaultConfig) correspond to the paper's default case scenario:
// 40 Gbps links, 2 µs propagation delay, per-port buffers of twice the
// 120 KB longest-path BDP, and a PFC threshold leaving headroom for one
// upstream-link BDP.
type Config struct {
	// Rate is the link rate for every link in the fabric.
	Rate Rate
	// Prop is the per-link propagation delay.
	Prop sim.Duration
	// BufferBytes is the per-input-port buffer at switches.
	BufferBytes int
	// PFC enables priority flow control. When false, a full input buffer
	// drops packets (drop-tail).
	PFC bool
	// PFCHeadroom is subtracted from BufferBytes to get the pause
	// threshold: it must absorb the packets in flight on the upstream
	// link after the pause frame is sent (§4.1).
	PFCHeadroom int
	// PFCHysteresis is how far below the threshold the buffer must drain
	// before resuming, limiting pause/resume flapping.
	PFCHysteresis int
	// ECN configures marking.
	ECN ECNConfig
	// MTU is the data payload size per packet.
	MTU int
	// Seed drives ECN marking randomness.
	Seed uint64
	// LossInject, when non-nil, is consulted for every packet arriving
	// at a switch; returning true discards the packet (counted as a
	// drop). Tests and failure-injection experiments use it to create
	// deterministic or random losses independent of buffer pressure.
	LossInject func(pkt *packet.Packet) bool
	// Faults, when non-nil, is the compiled fault model for this run:
	// per-link random loss and corruption rates plus the link flap and
	// degradation schedule. Faults resolve at the arrival end of each
	// link (see outPort); scheduled transitions run as typed engine
	// events. Nil injects nothing.
	Faults *fault.Model
	// Spray selects per-packet (instead of per-flow) multipathing: each
	// packet picks an equal-cost path independently, as fine-grained
	// load balancers do (DRILL, packet spraying — §7 "Reordering due to
	// load-balancing"). It reorders packets within a flow; IRN tolerates
	// this with NackThreshold > 1.
	Spray bool
	// SharedBuffer pools each switch's buffer across its input ports
	// instead of partitioning it per port (§A.5: "We expect to see
	// similar behaviour in shared buffer switches"). BufferBytes then
	// sizes the shared pool per port (total = ports × BufferBytes), and
	// PFC asserts against per-input occupancy of the shared pool.
	SharedBuffer bool
}

// DefaultConfig returns the paper's default-case fabric: 40 Gbps, 2 µs
// links; 6-hop BDP 120 KB; buffer 2×BDP = 240 KB; PFC threshold ≈ 217 KB.
// The headroom is the paper's "upstream link's bandwidth-delay product"
// (one link RTT of in-flight data, 20 KB) plus serialization slack: the
// packet in flight when X-OFF is generated and the packet that may
// overshoot the threshold check.
func DefaultConfig() Config {
	rate := Gbps(40)
	prop := 2 * sim.Microsecond
	bdp := BDPBytes(rate, prop, 6) // 120 KB
	linkBDP := BDPBytes(rate, prop, 1)
	const mtu = 1000
	wire := mtu + packet.DataHeader
	return Config{
		Rate:          rate,
		Prop:          prop,
		BufferBytes:   2 * bdp,
		PFC:           false,
		PFCHeadroom:   linkBDP + 3*wire,
		PFCHysteresis: 2 * wire,
		MTU:           mtu,
		Seed:          1,
	}
}

// PFCThreshold returns the input-buffer occupancy above which a switch
// sends X-OFF upstream.
func (c *Config) PFCThreshold() int { return c.BufferBytes - c.PFCHeadroom }

// Stats aggregates fabric-wide counters for a run.
type Stats struct {
	Delivered    uint64 // data packets delivered to hosts
	CtrlDeliv    uint64 // control packets delivered to hosts
	Drops        uint64 // packets dropped at full input buffers
	FaultDrops   uint64 // packets lost to injected faults (random loss, downed links)
	Corrupted    uint64 // packets dropped by the receiving port's CRC check
	ECNMarked    uint64 // packets CE-marked
	PauseFrames  uint64 // X-OFF frames sent
	ResumeFrames uint64 // X-ON frames sent
	DataBytes    uint64 // data wire bytes delivered at hosts
}
