package fabric

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

// blaster is a minimal transport.Source that emits n packets back to back
// at line rate, ignoring all control traffic.
type blaster struct {
	flow *transport.Flow
	mtu  int
	sent int
}

func newBlaster(id packet.FlowID, src, dst packet.NodeID, pkts, mtu int) *blaster {
	return &blaster{
		flow: &transport.Flow{ID: id, Src: src, Dst: dst, Size: pkts * mtu, Pkts: pkts},
		mtu:  mtu,
	}
}

func (b *blaster) Flow() *transport.Flow { return b.flow }

func (b *blaster) HasData(sim.Time) (bool, sim.Time) { return b.sent < b.flow.Pkts, 0 }

func (b *blaster) NextPacket(now sim.Time) *packet.Packet {
	p := packet.NewData(b.flow.ID, b.flow.Src, b.flow.Dst, packet.PSN(b.sent), b.mtu, b.sent == b.flow.Pkts-1)
	p.SentAt = now
	b.sent++
	return p
}

func (b *blaster) HandleControl(*packet.Packet, sim.Time) {}

func (b *blaster) Done() bool { return b.sent >= b.flow.Pkts }

// recorder is a Sink that records arrival times and PSNs.
type recorder struct {
	times []sim.Time
	psns  []packet.PSN
}

func (r *recorder) HandleData(p *packet.Packet, now sim.Time) {
	r.times = append(r.times, now)
	r.psns = append(r.psns, p.PSN)
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MTU = 1000
	return cfg
}

func TestGbpsConversions(t *testing.T) {
	cases := []struct {
		g    float64
		want Rate
	}{{40, 200}, {10, 800}, {100, 80}}
	for _, c := range cases {
		if got := Gbps(c.g); got != c.want {
			t.Errorf("Gbps(%v) = %d, want %d", c.g, got, c.want)
		}
	}
	if v := Gbps(40).GbpsValue(); v != 40 {
		t.Errorf("GbpsValue = %v", v)
	}
	if d := Gbps(40).Serialize(1000); d != 200_000 {
		t.Errorf("Serialize = %v ps, want 200000", int64(d))
	}
}

func TestBDPMatchesPaper(t *testing.T) {
	// §4.1: 40 Gbps links, 2 µs propagation, 6-hop longest path → 120 KB.
	bdp := BDPBytes(Gbps(40), 2*sim.Microsecond, 6)
	if bdp != 120_000 {
		t.Errorf("BDP = %d, want 120000", bdp)
	}
}

func TestBDPCapNear110(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, topo.NewFatTree(6), testConfig())
	cap := net.BDPCap()
	// "This corresponds to ∼110 MTU-sized packets."
	if cap < 105 || cap > 120 {
		t.Errorf("BDPCap = %d, want ~110", cap)
	}
}

func TestPktQueue(t *testing.T) {
	var q pktQueue
	if !q.empty() || q.pop() != nil || q.peek() != nil {
		t.Fatal("fresh queue should be empty")
	}
	for i := 0; i < 200; i++ {
		q.push(packet.NewData(1, 0, 1, packet.PSN(i), 100, false))
	}
	if q.len() != 200 {
		t.Fatalf("len = %d", q.len())
	}
	wantBytes := 200 * (100 + packet.DataHeader)
	if q.bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", q.bytes, wantBytes)
	}
	for i := 0; i < 200; i++ {
		p := q.pop()
		if p == nil || p.PSN != packet.PSN(i) {
			t.Fatalf("pop %d = %v", i, p)
		}
	}
	if !q.empty() || q.bytes != 0 {
		t.Fatal("queue should be empty after draining")
	}
}

func TestPktQueueInterleaved(t *testing.T) {
	var q pktQueue
	next, popped := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.push(packet.NewData(1, 0, 1, packet.PSN(next), 10, false))
			next++
		}
		for i := 0; i < 7; i++ {
			p := q.pop()
			if p.PSN != packet.PSN(popped) {
				t.Fatalf("pop order broken: got %d want %d", p.PSN, popped)
			}
			popped++
		}
	}
	if q.len() != next-popped {
		t.Fatalf("len = %d, want %d", q.len(), next-popped)
	}
}

func TestSinglePacketDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	net := New(eng, topo.NewStar(2), cfg)

	rec := &recorder{}
	net.NIC(1).AttachSink(1, rec)
	net.NIC(0).AttachSource(newBlaster(1, 0, 1, 1, cfg.MTU))
	eng.Run()

	if len(rec.times) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rec.times))
	}
	// Store-and-forward across 2 hops: 2×serialization + 2×propagation.
	wire := cfg.MTU + packet.DataHeader
	want := sim.Time(2*int64(cfg.Rate.Serialize(wire)) + 2*int64(cfg.Prop))
	if rec.times[0] != want {
		t.Errorf("arrival = %d ps, want %d ps", int64(rec.times[0]), int64(want))
	}
	if net.Stats().Delivered != 1 || net.Stats().Drops != 0 {
		t.Errorf("stats: %+v", net.Stats())
	}
}

func TestPipelinedThroughput(t *testing.T) {
	// A long stream across one switch should finish in about
	// N×serialization + one store-and-forward stage + 2 props.
	eng := sim.NewEngine()
	cfg := testConfig()
	net := New(eng, topo.NewStar(2), cfg)

	const pkts = 1000
	rec := &recorder{}
	net.NIC(1).AttachSink(1, rec)
	net.NIC(0).AttachSource(newBlaster(1, 0, 1, pkts, cfg.MTU))
	eng.Run()

	if len(rec.times) != pkts {
		t.Fatalf("delivered %d packets, want %d", len(rec.times), pkts)
	}
	wire := cfg.MTU + packet.DataHeader
	ser := int64(cfg.Rate.Serialize(wire))
	want := pkts*ser + ser + 2*int64(cfg.Prop)
	got := int64(rec.times[len(rec.times)-1])
	if got != want {
		t.Errorf("last arrival = %d, want %d", got, want)
	}
}

func TestDropTailWithoutPFC(t *testing.T) {
	// Two hosts blast a third at line rate: the shared output port can
	// only drain half the offered load, the input buffers fill, and
	// drop-tail must engage.
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.PFC = false
	net := New(eng, topo.NewStar(3), cfg)

	rec := &recorder{}
	net.NIC(2).AttachSink(1, rec)
	net.NIC(2).AttachSink(2, rec)
	net.NIC(0).AttachSource(newBlaster(1, 0, 2, 2000, cfg.MTU))
	net.NIC(1).AttachSource(newBlaster(2, 1, 2, 2000, cfg.MTU))
	eng.Run()

	if net.Stats().Drops == 0 {
		t.Error("expected drops under 2:1 overload without PFC")
	}
	if len(rec.times)+int(net.Stats().Drops) != 4000 {
		t.Errorf("delivered %d + dropped %d != 4000", len(rec.times), net.Stats().Drops)
	}
}

func TestPFCPreventsDrops(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.PFC = true
	net := New(eng, topo.NewStar(3), cfg)

	rec := &recorder{}
	net.NIC(2).AttachSink(1, rec)
	net.NIC(2).AttachSink(2, rec)
	net.NIC(0).AttachSource(newBlaster(1, 0, 2, 2000, cfg.MTU))
	net.NIC(1).AttachSource(newBlaster(2, 1, 2, 2000, cfg.MTU))
	eng.Run()

	if net.Stats().Drops != 0 {
		t.Errorf("PFC enabled but %d drops", net.Stats().Drops)
	}
	if net.Stats().PauseFrames == 0 {
		t.Error("expected pause frames under overload")
	}
	if net.Stats().ResumeFrames == 0 {
		t.Error("expected resume frames as buffers drain")
	}
	if len(rec.times) != 4000 {
		t.Errorf("delivered %d, want all 4000", len(rec.times))
	}
}

func TestECNMarking(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.ECN = ECNConfig{Enabled: true, KMin: 5_000, KMax: 50_000, PMax: 1.0}
	net := New(eng, topo.NewStar(3), cfg)

	marked := 0
	counter := sinkFunc(func(p *packet.Packet, _ sim.Time) {
		if p.CE {
			marked++
		}
	})
	net.NIC(2).AttachSink(1, counter)
	net.NIC(2).AttachSink(2, counter)
	b1 := newBlaster(1, 0, 2, 1000, cfg.MTU)
	b2 := newBlaster(2, 1, 2, 1000, cfg.MTU)
	net.NIC(0).AttachSource(&ectSource{b1})
	net.NIC(1).AttachSource(&ectSource{b2})
	eng.Run()

	if marked == 0 {
		t.Error("no packets CE-marked despite persistent congestion")
	}
	if uint64(marked) != net.Stats().ECNMarked {
		t.Errorf("marked %d != stats %d", marked, net.Stats().ECNMarked)
	}
}

// ectSource wraps a blaster, setting ECT on every packet.
type ectSource struct{ *blaster }

func (e *ectSource) NextPacket(now sim.Time) *packet.Packet {
	p := e.blaster.NextPacket(now)
	p.ECT = true
	return p
}

type sinkFunc func(*packet.Packet, sim.Time)

func (f sinkFunc) HandleData(p *packet.Packet, now sim.Time) { f(p, now) }

func TestNICRoundRobinFairness(t *testing.T) {
	// Two equal flows sharing one NIC should finish within one packet
	// time of each other.
	eng := sim.NewEngine()
	cfg := testConfig()
	net := New(eng, topo.NewStar(3), cfg)

	last := map[packet.FlowID]sim.Time{}
	mk := func(id packet.FlowID) transport.Sink {
		return sinkFunc(func(p *packet.Packet, now sim.Time) { last[id] = now })
	}
	net.NIC(1).AttachSink(1, mk(1))
	net.NIC(2).AttachSink(2, mk(2))
	net.NIC(0).AttachSource(newBlaster(1, 0, 1, 500, cfg.MTU))
	net.NIC(0).AttachSource(newBlaster(2, 0, 2, 500, cfg.MTU))
	eng.Run()

	diff := int64(last[1]) - int64(last[2])
	if diff < 0 {
		diff = -diff
	}
	wire := int64(cfg.Rate.Serialize(cfg.MTU + packet.DataHeader))
	if diff > 2*wire {
		t.Errorf("finish skew %d ps exceeds 2 packet times (%d ps)", diff, 2*wire)
	}
}

// ctrlObserver is a Source that never sends but records control arrivals.
type ctrlObserver struct {
	flow    *transport.Flow
	arrived []sim.Time
}

func (c *ctrlObserver) Flow() *transport.Flow              { return c.flow }
func (c *ctrlObserver) HasData(sim.Time) (bool, sim.Time)  { return false, 0 }
func (c *ctrlObserver) NextPacket(sim.Time) *packet.Packet { return nil }
func (c *ctrlObserver) Done() bool                         { return false }
func (c *ctrlObserver) HandleControl(_ *packet.Packet, now sim.Time) {
	c.arrived = append(c.arrived, now)
}

func TestControlPriorityAtNIC(t *testing.T) {
	// A control packet queued behind a data backlog at the NIC must be
	// the next frame on the wire (strict priority), so it arrives far
	// sooner than the data backlog would allow.
	eng := sim.NewEngine()
	cfg := testConfig()
	net := New(eng, topo.NewStar(2), cfg)

	net.NIC(1).AttachSink(1, sinkFunc(func(*packet.Packet, sim.Time) {}))
	net.NIC(0).AttachSource(newBlaster(1, 0, 1, 1000, cfg.MTU))

	// Host 1 owns flow 2 as a sender, so control packets for flow 2
	// arriving at host 1 are delivered to this observer.
	obs := &ctrlObserver{flow: &transport.Flow{ID: 2, Src: 1, Dst: 0, Pkts: 1}}
	net.NIC(1).AttachSource(obs)

	inject := 10 * sim.Microsecond
	eng.After(inject, func() {
		net.NIC(0).SendControl(packet.NewAck(2, 0, 1, 5))
	})
	eng.Run()

	if len(obs.arrived) != 1 {
		t.Fatalf("control packet arrivals = %d, want 1", len(obs.arrived))
	}
	// Upper bound: one in-progress data packet at the NIC, the control
	// frame, one store-and-forward at the switch behind at most one data
	// packet, plus two propagation delays.
	wire := int64(cfg.Rate.Serialize(cfg.MTU + packet.DataHeader))
	ctrl := int64(cfg.Rate.Serialize(packet.ControlFrame))
	bound := sim.Time(int64(inject) + 2*wire + 2*ctrl + 2*int64(cfg.Prop) + wire)
	if obs.arrived[0] > bound {
		t.Errorf("control packet arrived at %d ps, bound %d ps", int64(obs.arrived[0]), int64(bound))
	}
}

func TestIdealFCT(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	net := New(eng, topo.NewFatTree(6), cfg)

	// Single packet, 2-hop path: 2×ser + 2×prop.
	one := net.IdealFCT(0, 1, 100)
	wire := int64(cfg.Rate.Serialize(100 + packet.DataHeader))
	want := 2*wire + 2*int64(cfg.Prop)
	if int64(one) != want {
		t.Errorf("IdealFCT(1pkt,2hop) = %d, want %d", int64(one), want)
	}

	// Larger message, longest path: must exceed the single-hop ideal and
	// the pure serialization time.
	big := net.IdealFCT(0, 53, 1_000_000)
	serAll := int64(cfg.Rate.Serialize(1_000_000 + 1000*packet.DataHeader))
	if int64(big) <= serAll {
		t.Errorf("IdealFCT must include store-and-forward and propagation")
	}
	// And the measured fabric should never beat it (checked in transport
	// integration tests).
}

func TestNetworkPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on MTU=0")
		}
	}()
	cfg := testConfig()
	cfg.MTU = 0
	New(sim.NewEngine(), topo.NewStar(2), cfg)
}

func TestNICPanicsOnSwitchID(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, topo.NewStar(2), testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for switch id")
		}
	}()
	net.NIC(2) // node 2 is the switch
}

func TestECMPSpreadsAcrossCorePaths(t *testing.T) {
	// Many flows between the same pod pair should not all hash onto one
	// aggregation/core path. We detect spreading via switch occupancy:
	// run enough flows and confirm more than one core switch forwarded.
	eng := sim.NewEngine()
	cfg := testConfig()
	net := New(eng, topo.NewFatTree(4), cfg)

	seen := map[packet.FlowID]bool{}
	for f := packet.FlowID(1); f <= 32; f++ {
		src := packet.NodeID(0)
		dst := packet.NodeID(15) // different pod in k=4 (hosts 0..15)
		rec := sinkFunc(func(p *packet.Packet, _ sim.Time) { seen[p.Flow] = true })
		net.NIC(dst).AttachSink(f, rec)
		net.NIC(src).AttachSource(newBlaster(f, src, dst, 2, cfg.MTU))
	}
	eng.Run()
	if len(seen) != 32 {
		t.Fatalf("only %d/32 flows arrived", len(seen))
	}
}
