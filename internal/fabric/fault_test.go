package fabric

import (
	"testing"

	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

// checkCensus asserts packet conservation and pool accounting after a run.
func checkCensus(t *testing.T, net *Network) {
	t.Helper()
	cv := net.Census()
	c := &cv
	inFlight := uint64(net.InFlightPackets())
	if c.Injected != c.Exits()+inFlight {
		t.Errorf("census: injected %d != exits %d + in-flight %d (%+v)",
			c.Injected, c.Exits(), inFlight, *c)
	}
	live := net.Pool().Allocs - uint64(net.Pool().FreeLen())
	want := inFlight + uint64(net.CtrlBacklog())
	if live != want {
		t.Errorf("pool: %d live packets, want %d (in-flight + ctrl backlog)", live, want)
	}
}

// faultNet builds a star fabric with the given fault spec compiled against
// its links.
func faultNet(t *testing.T, hosts int, spec fault.Spec, seed uint64) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := testConfig()
	top := topo.NewStar(hosts)
	m, err := fault.New(spec, len(top.Links()), seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = m
	return eng, New(eng, top, cfg)
}

// newPooledBlaster builds a pooledBlaster (see perf_test.go) — fault
// death sites release into the network pool, so fault tests must allocate
// from it too.
func newPooledBlaster(net *Network, id packet.FlowID, src, dst packet.NodeID, pkts, mtu int) *pooledBlaster {
	return &pooledBlaster{
		pool: net.Pool(),
		flow: &transport.Flow{ID: id, Src: src, Dst: dst, Size: pkts * mtu, Pkts: pkts},
		mtu:  mtu,
	}
}

func TestTotalLossDropsEverything(t *testing.T) {
	eng, net := faultNet(t, 2, fault.Spec{LossRate: 1}, 1)
	rec := &recorder{}
	net.NIC(1).AttachSink(1, rec)
	net.NIC(0).AttachSource(newPooledBlaster(net, 1, 0, 1, 100, net.Cfg.MTU))
	eng.Run()

	if len(rec.times) != 0 {
		t.Fatalf("delivered %d packets across a fully lossy link", len(rec.times))
	}
	if net.Stats().FaultDrops != 100 {
		t.Errorf("fault drops = %d, want 100", net.Stats().FaultDrops)
	}
	checkCensus(t, net)
}

func TestCorruptionCountedSeparately(t *testing.T) {
	eng, net := faultNet(t, 2, fault.Spec{CorruptRate: 0.3}, 7)
	const pkts = 2000
	rec := &recorder{}
	net.NIC(1).AttachSink(1, rec)
	net.NIC(0).AttachSource(newPooledBlaster(net, 1, 0, 1, pkts, net.Cfg.MTU))
	eng.Run()

	if net.Stats().Corrupted == 0 {
		t.Fatal("no packets corrupted at 30% rate")
	}
	if net.Stats().FaultDrops != 0 {
		t.Errorf("corruption leaked into FaultDrops (%d)", net.Stats().FaultDrops)
	}
	if got := len(rec.times) + int(net.Stats().Corrupted); got != pkts {
		t.Errorf("delivered %d + corrupted %d != %d", len(rec.times), net.Stats().Corrupted, pkts)
	}
	// ~30% per link direction over 2 hops ⇒ ~51% end-to-end; allow slack.
	if frac := float64(net.Stats().Corrupted) / pkts; frac < 0.35 || frac > 0.65 {
		t.Errorf("corrupted fraction %.2f outside [0.35, 0.65]", frac)
	}
	checkCensus(t, net)
}

func TestLinkFlapKillsInFlightAndRecovers(t *testing.T) {
	// The host 0 uplink goes down mid-stream and comes back. Packets in
	// flight (or arriving on the dead link) die; transmission halts during
	// the outage; the stream completes after the link returns.
	cfg := testConfig()
	wire := cfg.MTU + packet.DataHeader
	ser := cfg.Rate.Serialize(wire)
	down := sim.Time(10 * int64(ser))
	up := down.Add(50 * sim.Microsecond)
	eng, net := faultNet(t, 2, fault.Spec{
		Flaps: []fault.Flap{{Link: 0, DownAt: down, UpAt: up}},
	}, 1)

	const pkts = 100
	rec := &recorder{}
	net.NIC(1).AttachSink(1, rec)
	net.NIC(0).AttachSource(newPooledBlaster(net, 1, 0, 1, pkts, net.Cfg.MTU))
	eng.Run()

	if net.Stats().FaultDrops == 0 {
		t.Error("flap killed no in-flight packets")
	}
	if got := len(rec.times) + int(net.Stats().FaultDrops); got != pkts {
		t.Errorf("delivered %d + killed %d != %d", len(rec.times), net.Stats().FaultDrops, pkts)
	}
	// No arrival during the outage window (plus the propagation tail).
	for _, at := range rec.times {
		if at > down.Add(cfg.Prop) && at < up {
			t.Errorf("packet arrived at %v inside the outage [%v, %v]", at, down, up)
		}
	}
	// The stream must resume after the link comes back.
	last := rec.times[len(rec.times)-1]
	if last <= up {
		t.Errorf("stream never resumed after link-up (last arrival %v <= %v)", last, up)
	}
	checkCensus(t, net)
}

func TestDegradedLinkSlowsDelivery(t *testing.T) {
	// Run the whole stream with host 0's uplink at quarter rate: the last
	// arrival lands ~4× later than at full rate.
	run := func(factor float64) sim.Time {
		spec := fault.Spec{}
		if factor != 0 {
			spec.Degrades = []fault.Degrade{{Link: 0, Factor: factor}}
		}
		eng, net := faultNet(t, 2, spec, 1)
		rec := &recorder{}
		net.NIC(1).AttachSink(1, rec)
		net.NIC(0).AttachSource(newPooledBlaster(net, 1, 0, 1, 500, net.Cfg.MTU))
		eng.Run()
		if len(rec.times) != 500 {
			t.Fatalf("factor %v: delivered %d/500", factor, len(rec.times))
		}
		checkCensus(t, net)
		return rec.times[len(rec.times)-1]
	}
	full := run(0)
	slow := run(0.25)
	ratio := float64(slow) / float64(full)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("quarter-rate stream took %.2fx the full-rate time, want ~4x", ratio)
	}
}

func TestECMPAvoidsDownedLink(t *testing.T) {
	// k=4 fat-tree: host 0's edge switch has two agg uplinks. With one
	// down from the start, inter-pod flows must still fully deliver over
	// the surviving path.
	eng := sim.NewEngine()
	cfg := testConfig()
	top := topo.NewFatTree(4)
	// Find an uplink of host 0's edge switch (pod 0, edge 0).
	hosts := top.Hosts()
	downLink := -1
	for i, l := range top.Links() {
		if int(l.A) == hosts && int(l.B) > hosts { // edge(0,0) → an agg
			downLink = i
			break
		}
	}
	if downLink < 0 {
		t.Fatal("no edge uplink found")
	}
	m, err := fault.New(fault.Spec{Flaps: []fault.Flap{{Link: downLink, DownAt: 0}}}, len(top.Links()), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = m
	net := New(eng, top, cfg)

	const flows = 16
	const pkts = 20
	delivered := 0
	for f := packet.FlowID(1); f <= flows; f++ {
		src, dst := packet.NodeID(0), packet.NodeID(15) // pod 0 → pod 3
		net.NIC(dst).AttachSink(f, sinkFunc(func(*packet.Packet, sim.Time) { delivered++ }))
		net.NIC(src).AttachSource(newPooledBlaster(net, f, src, dst, pkts, cfg.MTU))
	}
	eng.Run()

	if delivered != flows*pkts {
		t.Errorf("delivered %d/%d packets around the downed uplink (faultdrops=%d, drops=%d)",
			delivered, flows*pkts, net.Stats().FaultDrops, net.Stats().Drops)
	}
	checkCensus(t, net)
}
