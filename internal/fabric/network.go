package fabric

import (
	"fmt"

	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// node is anything attached to links: a Switch or a NIC.
type node interface {
	receive(pkt *packet.Packet, from packet.NodeID)
	pfcFrame(from packet.NodeID, pause bool)
}

// Network instantiates a topology into a running fabric on an engine.
type Network struct {
	Eng  *sim.Engine
	Topo topo.Topology
	Cfg  Config

	nodes    []node // indexed by NodeID
	nics     []*NIC // indexed by host NodeID
	switches []*Switch
	ports    []*outPort // indexed by directed-link index (2*link, 2*link+1)
	rng      *sim.RNG
	pool     *packet.Pool
	// downPorts counts the directed links currently down (maintained by
	// applyChange): ECMP scans port down state only while it is non-zero,
	// keeping the fault-free and between-flap datapath at full speed.
	downPorts int

	Stats  Stats
	Census Census
}

// New builds the fabric: one NIC per host, one Switch per switch node, and
// two unidirectional ports per link.
func New(eng *sim.Engine, t topo.Topology, cfg Config) *Network {
	if cfg.MTU <= 0 {
		panic("fabric: config MTU must be positive")
	}
	net := &Network{
		Eng:  eng,
		Topo: t,
		Cfg:  cfg,
		rng:  sim.NewRNG(cfg.Seed ^ 0xfab51c),
		pool: packet.NewPool(),
	}

	nodes := t.Nodes()
	net.nodes = make([]node, len(nodes))
	net.nics = make([]*NIC, t.Hosts())
	for _, n := range nodes {
		if n.Kind == topo.Host {
			nic := newNIC(n.ID, net)
			net.nodes[n.ID] = nic
			net.nics[n.ID] = nic
		} else {
			sw := newSwitch(n.ID, net)
			net.nodes[n.ID] = sw
			net.switches = append(net.switches, sw)
		}
	}

	// Wire both directions of every link, attaching each direction's
	// fault state (nil on healthy links).
	for i, l := range t.Links() {
		net.ports = append(net.ports,
			net.wire(l.A, l.B, cfg.Faults.Dir(i, false)),
			net.wire(l.B, l.A, cfg.Faults.Dir(i, true)))
	}
	for _, sw := range net.switches {
		sw.finalize()
	}

	// Schedule the fault model's link transitions (flaps, degradations) as
	// typed events. They are queued before any packet event, so at equal
	// timestamps a transition applies first — deterministically.
	for d, fl := range cfg.Faults.Dirs() {
		if fl == nil {
			continue
		}
		for ci, ch := range fl.Sched {
			eng.ScheduleEvent(ch.At, net, netFault, uint64(d)<<32|uint64(ci))
		}
	}
	return net
}

// wire creates the unidirectional port from → to and returns it.
func (net *Network) wire(from, to packet.NodeID, flt *fault.Link) *outPort {
	dst := net.nodes[to]
	deliver := func(pkt *packet.Packet) { dst.receive(pkt, from) }

	switch n := net.nodes[from].(type) {
	case *NIC:
		n.egress = outPort{
			eng:     net.Eng,
			net:     net,
			rate:    net.Cfg.Rate,
			curRate: net.Cfg.Rate,
			prop:    net.Cfg.Prop,
			flt:     flt,
			origin:  true,
			deliver: deliver,
			source:  n.nextPacket,
		}
		return &n.egress
	case *Switch:
		idx := n.addPort(to)
		o := n.out[idx]
		o.port = outPort{
			eng:     net.Eng,
			net:     net,
			rate:    net.Cfg.Rate,
			curRate: net.Cfg.Rate,
			prop:    net.Cfg.Prop,
			flt:     flt,
			deliver: deliver,
			source:  o.nextPacket,
		}
		return &o.port
	default:
		panic(fmt.Sprintf("fabric: unknown node type %T", n))
	}
}

// Reset returns the fabric to its just-built state for a new run on the
// same engine and topology, under a new seed and fault model: every port,
// switch and NIC resets, stats and census zero, the ECN RNG reseeds, and
// the fault schedule is re-queued as typed events — exactly the sequence
// New performs, so a reset run is bit-identical to a freshly constructed
// one. The caller must Engine.Reset() first (Reset schedules fault events
// on the engine's clean queue). The packet pool keeps its free list warm
// across runs; only its counters restart.
//
// This is the zero-rebuild trial path: the fleet runner reuses one
// fabric per worker across the trials of a scenario instead of
// reconstructing topology, routing tables, VOQ matrices and port arrays
// per trial.
func (net *Network) Reset(seed uint64, faults *fault.Model) {
	net.Cfg.Seed = seed
	net.Cfg.Faults = faults
	net.rng = sim.NewRNG(seed ^ 0xfab51c)
	net.pool.ResetStats()
	net.Stats = Stats{}
	net.Census = Census{}
	net.downPorts = 0
	for i, l := 0, len(net.ports)/2; i < l; i++ {
		net.ports[2*i].flt = faults.Dir(i, false)
		net.ports[2*i+1].flt = faults.Dir(i, true)
	}
	for _, nic := range net.nics {
		if nic != nil {
			nic.reset()
		}
	}
	for _, sw := range net.switches {
		sw.reset()
	}
	for d, fl := range faults.Dirs() {
		if fl == nil {
			continue
		}
		for ci, ch := range fl.Sched {
			net.Eng.ScheduleEvent(ch.At, net, netFault, uint64(d)<<32|uint64(ci))
		}
	}
}

// NIC returns the NIC of host h.
func (net *Network) NIC(h packet.NodeID) *NIC {
	if int(h) >= len(net.nics) || net.nics[h] == nil {
		panic(fmt.Sprintf("fabric: node %d is not a host", h))
	}
	return net.nics[h]
}

// Pool returns the fabric's per-engine packet free-list.
func (net *Network) Pool() *packet.Pool { return net.pool }

// Network sim.Handler event kinds: a PFC frame arriving at its target
// (arg packs (from, to, pause) — see sendPFC) and a scheduled fault-model
// transition (arg packs directed-link index << 32 | schedule index). In
// both cases the payload rides in the argument, so no frame or event
// object exists per occurrence.
const (
	netPFC uint8 = iota
	netFault
)

// sendPFC delivers a PFC frame from a switch to neighbor `to`. PFC frames
// are link-local flow control below the packet queues: they are modelled
// as arriving one propagation delay after generation, without competing
// for queue space. The configured headroom absorbs the data still in
// flight during that delay plus the packet being serialized.
func (net *Network) sendPFC(from, to packet.NodeID, pause bool) {
	arg := uint64(uint32(from))<<33 | uint64(uint32(to))<<1
	if pause {
		arg |= 1
	}
	net.Eng.AfterEvent(net.Cfg.Prop, net, netPFC, arg)
}

// HandleEvent implements sim.Handler: PFC frame arrival or a fault-model
// link transition.
func (net *Network) HandleEvent(kind uint8, arg uint64) {
	if kind == netFault {
		d := int(arg >> 32)
		net.ports[d].applyChange(net.Cfg.Faults.Dirs()[d].Sched[arg&0xffffffff])
		return
	}
	from := packet.NodeID(int32(arg >> 33))
	to := packet.NodeID(int32(arg >> 1 & 0xffffffff))
	net.nodes[to].pfcFrame(from, arg&1 != 0)
}

// markECN samples the RED marking decision for an egress backlog of
// queued bytes.
func (net *Network) markECN(queued int) bool {
	e := &net.Cfg.ECN
	if queued <= e.KMin {
		return false
	}
	if queued >= e.KMax {
		return true
	}
	p := e.PMax * float64(queued-e.KMin) / float64(e.KMax-e.KMin)
	return net.rng.Float64() < p
}

// QueuedBytes reports total bytes buffered across all switches — a
// diagnostic for congestion-spreading experiments.
func (net *Network) QueuedBytes() int {
	total := 0
	for _, sw := range net.switches {
		total += sw.queuedBytes()
	}
	return total
}

// BDPCap returns IRN's BDP-FC cap in packets for this fabric: the
// longest-path BDP in bytes divided by the wire MTU (§3.2). For the
// default 40 Gbps / 2 µs / 6-hop fabric with a 1000 B MTU this is ~113
// packets, matching the paper's "∼110 MTU-sized packets".
func (net *Network) BDPCap() int {
	bdp := BDPBytes(net.Cfg.Rate, net.Cfg.Prop, net.Topo.LongestPathHops())
	cap := bdp / (net.Cfg.MTU + packet.DataHeader)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// IdealFCT returns the empty-network completion time for a message of
// size bytes between two hosts: full-message serialization at line rate,
// plus per-hop store-and-forward of one MTU packet, plus path propagation.
// Slowdown metrics divide measured FCTs by this (§4.1 Metrics).
func (net *Network) IdealFCT(src, dst packet.NodeID, size int) sim.Duration {
	hops := net.Topo.PathHops(src, dst)
	pkts := (size + net.Cfg.MTU - 1) / net.Cfg.MTU
	if pkts < 1 {
		pkts = 1
	}
	wire := size + pkts*packet.DataHeader
	last := net.Cfg.MTU + packet.DataHeader
	if pkts == 1 {
		last = wire
	}
	d := net.Cfg.Rate.Serialize(wire)                        // source serialization
	d += sim.Duration(hops-1) * net.Cfg.Rate.Serialize(last) // store-and-forward of final packet
	d += sim.Duration(hops) * net.Cfg.Prop                   // propagation
	return d
}
