package fabric

import (
	"fmt"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// node is anything attached to links: a Switch or a NIC.
type node interface {
	receive(pkt *packet.Packet, from packet.NodeID)
	pfcFrame(from packet.NodeID, pause bool)
}

// Network instantiates a topology into a running fabric on an engine.
type Network struct {
	Eng  *sim.Engine
	Topo topo.Topology
	Cfg  Config

	nodes    []node // indexed by NodeID
	nics     []*NIC // indexed by host NodeID
	switches []*Switch
	rng      *sim.RNG
	pool     *packet.Pool

	Stats Stats
}

// New builds the fabric: one NIC per host, one Switch per switch node, and
// two unidirectional ports per link.
func New(eng *sim.Engine, t topo.Topology, cfg Config) *Network {
	if cfg.MTU <= 0 {
		panic("fabric: config MTU must be positive")
	}
	net := &Network{
		Eng:  eng,
		Topo: t,
		Cfg:  cfg,
		rng:  sim.NewRNG(cfg.Seed ^ 0xfab51c),
		pool: packet.NewPool(),
	}

	nodes := t.Nodes()
	net.nodes = make([]node, len(nodes))
	net.nics = make([]*NIC, t.Hosts())
	for _, n := range nodes {
		if n.Kind == topo.Host {
			nic := newNIC(n.ID, net)
			net.nodes[n.ID] = nic
			net.nics[n.ID] = nic
		} else {
			sw := newSwitch(n.ID, net)
			net.nodes[n.ID] = sw
			net.switches = append(net.switches, sw)
		}
	}

	// Wire both directions of every link.
	for _, l := range t.Links() {
		net.wire(l.A, l.B)
		net.wire(l.B, l.A)
	}
	for _, sw := range net.switches {
		sw.finalize()
	}
	return net
}

// wire creates the unidirectional port from → to.
func (net *Network) wire(from, to packet.NodeID) {
	dst := net.nodes[to]
	deliver := func(pkt *packet.Packet) { dst.receive(pkt, from) }

	switch n := net.nodes[from].(type) {
	case *NIC:
		n.egress = outPort{
			eng:     net.Eng,
			rate:    net.Cfg.Rate,
			prop:    net.Cfg.Prop,
			deliver: deliver,
			source:  n.nextPacket,
		}
	case *Switch:
		idx := n.addPort(to)
		o := n.out[idx]
		o.port = outPort{
			eng:     net.Eng,
			rate:    net.Cfg.Rate,
			prop:    net.Cfg.Prop,
			deliver: deliver,
			source:  o.nextPacket,
		}
	default:
		panic(fmt.Sprintf("fabric: unknown node type %T", n))
	}
}

// NIC returns the NIC of host h.
func (net *Network) NIC(h packet.NodeID) *NIC {
	if int(h) >= len(net.nics) || net.nics[h] == nil {
		panic(fmt.Sprintf("fabric: node %d is not a host", h))
	}
	return net.nics[h]
}

// Pool returns the fabric's per-engine packet free-list.
func (net *Network) Pool() *packet.Pool { return net.pool }

// netPFC is the Network's only sim.Handler event kind: a PFC frame
// arriving at its target. The argument packs (from, to, pause) — see
// sendPFC — so no frame object or closure exists per pause/resume.
const netPFC uint8 = 0

// sendPFC delivers a PFC frame from a switch to neighbor `to`. PFC frames
// are link-local flow control below the packet queues: they are modelled
// as arriving one propagation delay after generation, without competing
// for queue space. The configured headroom absorbs the data still in
// flight during that delay plus the packet being serialized.
func (net *Network) sendPFC(from, to packet.NodeID, pause bool) {
	arg := uint64(uint32(from))<<33 | uint64(uint32(to))<<1
	if pause {
		arg |= 1
	}
	net.Eng.AfterEvent(net.Cfg.Prop, net, netPFC, arg)
}

// HandleEvent implements sim.Handler: PFC frame arrival.
func (net *Network) HandleEvent(_ uint8, arg uint64) {
	from := packet.NodeID(int32(arg >> 33))
	to := packet.NodeID(int32(arg >> 1 & 0xffffffff))
	net.nodes[to].pfcFrame(from, arg&1 != 0)
}

// markECN samples the RED marking decision for an egress backlog of
// queued bytes.
func (net *Network) markECN(queued int) bool {
	e := &net.Cfg.ECN
	if queued <= e.KMin {
		return false
	}
	if queued >= e.KMax {
		return true
	}
	p := e.PMax * float64(queued-e.KMin) / float64(e.KMax-e.KMin)
	return net.rng.Float64() < p
}

// QueuedBytes reports total bytes buffered across all switches — a
// diagnostic for congestion-spreading experiments.
func (net *Network) QueuedBytes() int {
	total := 0
	for _, sw := range net.switches {
		total += sw.queuedBytes()
	}
	return total
}

// BDPCap returns IRN's BDP-FC cap in packets for this fabric: the
// longest-path BDP in bytes divided by the wire MTU (§3.2). For the
// default 40 Gbps / 2 µs / 6-hop fabric with a 1000 B MTU this is ~113
// packets, matching the paper's "∼110 MTU-sized packets".
func (net *Network) BDPCap() int {
	bdp := BDPBytes(net.Cfg.Rate, net.Cfg.Prop, net.Topo.LongestPathHops())
	cap := bdp / (net.Cfg.MTU + packet.DataHeader)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// IdealFCT returns the empty-network completion time for a message of
// size bytes between two hosts: full-message serialization at line rate,
// plus per-hop store-and-forward of one MTU packet, plus path propagation.
// Slowdown metrics divide measured FCTs by this (§4.1 Metrics).
func (net *Network) IdealFCT(src, dst packet.NodeID, size int) sim.Duration {
	hops := net.Topo.PathHops(src, dst)
	pkts := (size + net.Cfg.MTU - 1) / net.Cfg.MTU
	if pkts < 1 {
		pkts = 1
	}
	wire := size + pkts*packet.DataHeader
	last := net.Cfg.MTU + packet.DataHeader
	if pkts == 1 {
		last = wire
	}
	d := net.Cfg.Rate.Serialize(wire)                        // source serialization
	d += sim.Duration(hops-1) * net.Cfg.Rate.Serialize(last) // store-and-forward of final packet
	d += sim.Duration(hops) * net.Cfg.Prop                   // propagation
	return d
}
