package fabric

import (
	"fmt"

	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// node is anything attached to links: a Switch or a NIC.
type node interface {
	receive(pkt *packet.Packet, from packet.NodeID)
	pfcFrame(from packet.NodeID, pause bool)
}

// partition is one shard's slice of the fabric: the nodes assigned to one
// engine, plus everything those nodes touch on the datapath — packet
// pool, stats, census, the down-port count gating ECMP rescans — so that
// a shard goroutine never writes state owned by another shard. A
// single-shard fabric has exactly one partition and runs the exact same
// code paths.
type partition struct {
	eng  *sim.Engine
	pool *packet.Pool

	stats     Stats
	census    Census
	downPorts int

	// drained counts boundary occurrences drained into this partition's
	// engine across the run — shard-runtime observability (Result.
	// ShardStats). Written only by the coordinator at barriers.
	drained uint64

	// inbox lists the boundary channels this partition consumes; kept
	// for reset bookkeeping and diagnostics.
	inbox []*linkChan

	// dirty lists the boundary channels this partition *produced into*
	// during the current window and that are not yet drained. Appended by
	// the producing shard (single-writer: a channel's transmitting port
	// lives on exactly one shard), read and cleared by the coordinator at
	// the barrier — so DrainAll visits only channels holding occurrences
	// instead of scanning every boundary channel every barrier.
	dirty []*linkChan
}

// Network instantiates a topology into a running fabric over one or more
// shard engines.
type Network struct {
	// Eng is partition 0's engine — the only engine of a single-shard
	// fabric, which is how tests and examples drive the network directly.
	Eng  *sim.Engine
	Topo topo.Topology
	Cfg  Config

	parts  []*partition
	partOf []int       // node → partition index
	clks   []sim.Clock // node → rank clock (id = node+1)
	envClk sim.Clock   // id 0: fault-model transitions, ordered before any node's events
	chans  []*linkChan // boundary channels (empty when single-shard)

	nodes    []node // indexed by NodeID
	nics     []*NIC // indexed by host NodeID
	switches []*Switch
	ports    []*outPort // indexed by directed-link index (2*link, 2*link+1)

	// lookahead and slack are fixed at construction (see the computation
	// in NewPartitioned): the safe-window width this partitioning
	// supports, and the canonical maximum width any partitioning of this
	// config could support (used as the Done-horizon slack).
	lookahead sim.Duration
	slack     sim.Duration
}

// New builds a single-shard fabric: one NIC per host, one Switch per
// switch node, and two unidirectional ports per link, all on one engine.
func New(eng *sim.Engine, t topo.Topology, cfg Config) *Network {
	return NewPartitioned([]*sim.Engine{eng}, nil, t, cfg)
}

// NewPartitioned builds the fabric across one engine per shard. assign
// maps every node to an engine index (nil assigns everything to engine
// 0); links between nodes on different engines become cross-shard
// channels, drained by DrainAll at the window barriers of sim.RunWindows
// under the lookahead this partitioning supports (see computeLookahead).
//
// The fault model is shard-safe: each direction's scheduled transitions
// fire on the shard owning the transmitting port, and boundary links
// resolve arrival-side faults on the consumer shard from the static
// schedule (see linkChan). The LossInject test hook is not — it mutates
// arbitrary link state from outside the engines — so it still requires a
// single-shard fabric.
func NewPartitioned(engs []*sim.Engine, assign []int, t topo.Topology, cfg Config) *Network {
	if cfg.MTU <= 0 {
		panic("fabric: config MTU must be positive")
	}
	if len(engs) == 0 {
		panic("fabric: need at least one engine")
	}
	if len(engs) > 1 && cfg.LossInject != nil {
		panic("fabric: the LossInject hook requires a single-shard fabric")
	}
	nodes := t.Nodes()
	if assign == nil {
		assign = make([]int, len(nodes))
	}

	net := &Network{
		Eng:    engs[0],
		Topo:   t,
		Cfg:    cfg,
		partOf: assign,
		clks:   make([]sim.Clock, len(nodes)),
		envClk: sim.NewClock(0),
		nodes:  make([]node, len(nodes)),
		nics:   make([]*NIC, t.Hosts()),
	}
	for i := range net.clks {
		net.clks[i] = sim.NewClock(uint64(i) + 1)
	}
	net.parts = make([]*partition, len(engs))
	for i, eng := range engs {
		net.parts[i] = &partition{eng: eng, pool: packet.NewPool()}
	}

	for _, n := range nodes {
		part := net.parts[assign[n.ID]]
		if n.Kind == topo.Host {
			nic := newNIC(n.ID, net, part)
			net.nodes[n.ID] = nic
			net.nics[n.ID] = nic
		} else {
			sw := newSwitch(n.ID, net, part)
			net.nodes[n.ID] = sw
			net.switches = append(net.switches, sw)
		}
	}

	// Wire both directions of every link, attaching each direction's
	// fault state (nil on healthy links).
	for i, l := range t.Links() {
		net.ports = append(net.ports,
			net.wire(l.A, l.B, cfg.Faults.Dir(i, false)),
			net.wire(l.B, l.A, cfg.Faults.Dir(i, true)))
	}
	for _, sw := range net.switches {
		sw.finalize()
	}

	net.computeLookahead()
	net.scheduleFaults(cfg.Faults)
	return net
}

// minWire is the smallest frame the fabric ever serializes: control
// frames (ACK/NACK/CNP) are fixed-size, and the smallest data packet is a
// one-byte payload behind the data header.
func minWire() int {
	w := packet.ControlFrame
	if packet.DataHeader+1 < w {
		w = packet.DataHeader + 1
	}
	return w
}

// computeLookahead fixes the safe-window width for this partitioning.
//
// Bare link propagation is always a sound lookahead: a cross-shard
// occurrence produced at time g arrives at g+prop at the earliest. The
// widened bound adds the serialization delay of the smallest frame that
// can cross a cut link, and is sound because boundary ports push their
// occurrence at serialization *start* (outPort.kick): a packet whose
// serialization starts at k is due k + ser(pkt) + prop >= k + serMin +
// prop, so with windows opening at T, every occurrence produced during
// the window (k >= T) lands at or after T + serMin + prop — and
// occurrences from serializations started before T were already pushed,
// hence drained at the barrier. The minimum is taken over cut links
// (links whose endpoints live on different shards); per-link rates would
// make this a genuine minimum, with today's uniform config every cut
// link contributes the same bound. Fault-model degradations only *slow*
// serialization (fault.Degrade validates Factor in (0,1]), so the
// base-rate bound stays a lower bound under any fault schedule — the
// lookahead is seed- and fault-independent, which is why Reset never
// recomputes it.
//
// PFC frames are no exception: pause/resume frames are fixed-size
// control frames whose serialization (sendPFC folds it into the arrival
// delay at generation time) is at least serMin, so a PFC-enabled fabric
// gets the same widened bound as any other — a frame generated at g >= T
// lands at g + ser(ControlFrame) + prop >= T + serMin + prop.
//
// slack is the same bound ignoring the partitioning: the widest window
// any configuration of this fabric could use, canonical across shard
// counts and lookahead choices — the Done-horizon slack (see
// WindowSlack).
func (net *Network) computeLookahead() {
	serMin := net.Cfg.Rate.Serialize(minWire())
	net.slack = net.Cfg.Prop + serMin

	cut := false
	var la sim.Duration
	for _, l := range net.Topo.Links() {
		if net.partOf[l.A] == net.partOf[l.B] {
			continue
		}
		cand := net.Cfg.Prop + serMin // per-link rate, if links ever differ
		if !cut || cand < la {
			cut, la = true, cand
		}
	}
	if !cut {
		// No cut links (single shard): windows are bounded only by the
		// canonical slack.
		net.lookahead = net.slack
		return
	}
	net.lookahead = la
}

// Lookahead reports the safe-window width this partitioning supports —
// the value to pass as sim.WindowConfig.Lookahead.
func (net *Network) Lookahead() sim.Duration { return net.lookahead }

// WindowSlack reports the canonical maximum window width for this config,
// independent of partitioning, shard count and PFC: link propagation plus
// the minimum frame serialization. Done-horizon hooks add it to the
// done-condition's timestamp so the final deadline — and with it the
// executed-event set and final clocks — is identical for every shard
// count and every lookahead at or below it.
func (net *Network) WindowSlack() sim.Duration { return net.slack }

// scheduleFaults queues the fault model's link transitions (flaps,
// degradations, loss bursts) as typed events on the engine owning each
// directed link's transmitting port — the shard whose state the
// transition mutates. They ride the environment clock (rank ID 0, below
// every node), so at equal timestamps a transition applies before any
// packet event — deterministically; the ranks are drawn here, serially in
// a fixed (direction, schedule-index) order, so they are identical for
// every shard count.
func (net *Network) scheduleFaults(m *fault.Model) {
	for d, fl := range m.Dirs() {
		if fl == nil {
			continue
		}
		for ci, ch := range fl.Sched {
			net.ports[d].eng.ScheduleEventFrom(&net.envClk, ch.At, net, netFault, uint64(d)<<32|uint64(ci))
		}
	}
}

// wire creates the unidirectional port from → to and returns it. A
// boundary crossing (endpoints on different partitions) gets a
// cross-shard channel in place of direct delivery.
func (net *Network) wire(from, to packet.NodeID, flt *fault.Link) *outPort {
	owner := net.parts[net.partOf[from]]
	dst := net.nodes[to]
	clk := &net.clks[from]

	var (
		deliver func(pkt *packet.Packet)
		xchan   *linkChan
	)
	if net.partOf[from] != net.partOf[to] {
		consumer := net.parts[net.partOf[to]]
		xchan = &linkChan{
			dst:  dst,
			from: from,
			eng:  consumer.eng,
			clk:  clk,
			net:  net,
			part: consumer,
			prod: net.parts[net.partOf[from]],
			flt:  flt,
		}
		consumer.inbox = append(consumer.inbox, xchan)
		net.chans = append(net.chans, xchan)
	} else {
		deliver = func(pkt *packet.Packet) { dst.receive(pkt, from) }
	}

	baseLoss := 0.0
	if flt != nil {
		baseLoss = flt.Loss
	}
	switch n := net.nodes[from].(type) {
	case *NIC:
		n.egress = outPort{
			eng:     owner.eng,
			clk:     clk,
			part:    owner,
			rate:    net.Cfg.Rate,
			curRate: net.Cfg.Rate,
			curLoss: baseLoss,
			prop:    net.Cfg.Prop,
			flt:     flt,
			origin:  true,
			xchan:   xchan,
			deliver: deliver,
			source:  n.nextPacket,
		}
		return &n.egress
	case *Switch:
		idx := n.addPort(to)
		o := n.out[idx]
		o.port = outPort{
			eng:     owner.eng,
			clk:     clk,
			part:    owner,
			rate:    net.Cfg.Rate,
			curRate: net.Cfg.Rate,
			curLoss: baseLoss,
			prop:    net.Cfg.Prop,
			flt:     flt,
			xchan:   xchan,
			deliver: deliver,
			source:  o.nextPacket,
		}
		return &o.port
	default:
		panic(fmt.Sprintf("fabric: unknown node type %T", n))
	}
}

// Reset returns the fabric to its just-built state for a new run on the
// same engines and topology, under a new seed and fault model: every
// port, switch and NIC resets, stats and census zero, the per-switch ECN
// RNG streams reseed, boundary channels empty, and the fault schedule is
// re-queued as typed events — exactly the sequence NewPartitioned
// performs, so a reset run is bit-identical to a freshly constructed one.
// The caller must Engine.Reset() every shard engine first (Reset
// schedules fault events on clean queues). The packet pools keep their
// free lists warm across runs; only their counters restart.
//
// This is the zero-rebuild trial path: the fleet runner reuses one
// fabric per worker across the trials of a scenario instead of
// reconstructing topology, routing tables, VOQ matrices and port arrays
// per trial.
func (net *Network) Reset(seed uint64, faults *fault.Model) {
	net.Cfg.Seed = seed
	net.Cfg.Faults = faults
	for i := range net.clks {
		net.clks[i].Reset()
	}
	net.envClk.Reset()
	for _, p := range net.parts {
		p.pool.ResetStats()
		p.stats = Stats{}
		p.census = Census{}
		p.downPorts = 0
		p.drained = 0
	}
	for _, c := range net.chans {
		c.reset()
	}
	for _, p := range net.parts {
		for i := range p.dirty {
			p.dirty[i] = nil
		}
		p.dirty = p.dirty[:0]
	}
	for i, l := 0, len(net.ports)/2; i < l; i++ {
		net.ports[2*i].flt = faults.Dir(i, false)
		net.ports[2*i+1].flt = faults.Dir(i, true)
		// Boundary channels resolve consumer-side faults from the same
		// per-direction state.
		if x := net.ports[2*i].xchan; x != nil {
			x.flt = net.ports[2*i].flt
		}
		if x := net.ports[2*i+1].xchan; x != nil {
			x.flt = net.ports[2*i+1].flt
		}
	}
	for _, nic := range net.nics {
		if nic != nil {
			nic.reset()
		}
	}
	for _, sw := range net.switches {
		sw.reset()
		sw.rng = ecnRNG(seed, sw.id)
	}
	net.scheduleFaults(faults)
}

// ecnRNG seeds one switch's ECN marking stream. Per-switch streams (not
// one fabric-wide RNG) keep the marking decisions of each switch a pure
// function of that switch's own traffic, which is what lets shards run
// switches concurrently without perturbing results.
func ecnRNG(seed uint64, id packet.NodeID) *sim.RNG {
	return sim.NewRNG(sim.DeriveSeed(seed^0xfab51c, "ecn", int(id)))
}

// Shards reports the number of partitions the fabric runs across.
func (net *Network) Shards() int { return len(net.parts) }

// ShardOf returns the partition index owning a node.
func (net *Network) ShardOf(n packet.NodeID) int { return net.partOf[n] }

// EngineOf returns the engine owning a node's partition.
func (net *Network) EngineOf(n packet.NodeID) *sim.Engine { return net.parts[net.partOf[n]].eng }

// Clock returns a node's rank clock: external schedulers (the experiment
// launcher's flow arrivals) rank their events under the node they touch,
// keeping the canonical order shard-invariant.
func (net *Network) Clock(n packet.NodeID) *sim.Clock { return &net.clks[n] }

// DrainedBy reports how many boundary occurrences have been drained into
// shard i's engine so far this run — a shard-runtime diagnostic (zero on
// a single-shard fabric, which has no boundary channels).
func (net *Network) DrainedBy(i int) uint64 { return net.parts[i].drained }

// DrainAll moves every pending inbound cross-shard event into its
// consumer engine — the sim.RunWindows barrier hook. Must only run while
// every shard is quiescent. Only channels on a producer's dirty list are
// visited: a barrier where nothing crossed any boundary costs one
// empty-slice check per partition.
func (net *Network) DrainAll() {
	for _, p := range net.parts {
		if len(p.dirty) == 0 {
			continue
		}
		for i, c := range p.dirty {
			c.drain()
			p.dirty[i] = nil
		}
		p.dirty = p.dirty[:0]
	}
}

// NIC returns the NIC of host h.
func (net *Network) NIC(h packet.NodeID) *NIC {
	if int(h) >= len(net.nics) || net.nics[h] == nil {
		panic(fmt.Sprintf("fabric: node %d is not a host", h))
	}
	return net.nics[h]
}

// Pool returns the packet free-list of partition 0 — the fabric's only
// pool when single-shard. Transports never call this; they use their
// NIC's Pool, which is partition-correct.
func (net *Network) Pool() *packet.Pool { return net.parts[0].pool }

// PoolLive sums the packets currently checked out across every
// partition's pool. Packets may die on a different shard than they were
// allocated on (a boundary crossing hands the pointer over), making a
// single pool's Live signed; the sum is the fabric-wide total.
func (net *Network) PoolLive() int {
	n := 0
	for _, p := range net.parts {
		n += p.pool.Live()
	}
	return n
}

// Stats sums the per-partition fabric counters.
func (net *Network) Stats() Stats {
	var t Stats
	for _, p := range net.parts {
		s := &p.stats
		t.Delivered += s.Delivered
		t.CtrlDeliv += s.CtrlDeliv
		t.Drops += s.Drops
		t.FaultDrops += s.FaultDrops
		t.Corrupted += s.Corrupted
		t.ECNMarked += s.ECNMarked
		t.PauseFrames += s.PauseFrames
		t.ResumeFrames += s.ResumeFrames
		t.DataBytes += s.DataBytes
	}
	return t
}

// Census sums the per-partition conservation counters.
func (net *Network) Census() Census {
	var t Census
	for _, p := range net.parts {
		c := &p.census
		t.Injected += c.Injected
		t.Delivered += c.Delivered
		t.OverflowDrops += c.OverflowDrops
		t.InjectDrops += c.InjectDrops
		t.FaultDrops += c.FaultDrops
		t.Corrupted += c.Corrupted
	}
	return t
}

// Network sim.Handler event kinds: a PFC frame arriving at its target
// (arg packs (from, to, pause) — see sendPFC) and a scheduled fault-model
// transition (arg packs directed-link index << 32 | schedule index). In
// both cases the payload rides in the argument, so no frame or event
// object exists per occurrence.
const (
	netPFC uint8 = iota
	netFault
)

// sendPFC delivers a PFC frame from a switch to neighbor `to`. PFC frames
// are link-local flow control below the packet queues: they are modelled
// as arriving one control-frame serialization plus one propagation delay
// after generation, without competing for queue space. The configured
// headroom absorbs the data still in flight during that delay plus the
// packet being serialized. A frame crossing a shard boundary rides the
// from→to link's channel; either way it is ranked under the generating
// switch's clock, so serial and sharded runs order it identically.
//
// Folding the ControlFrame serialization into the arrival delay here is
// what keeps PFC fabrics on the widened prop+serMin lookahead: every
// frame that can cross a cut link — data, ACK family, PFC — is now due
// at least serMin+prop after the instant it is pushed, so
// computeLookahead needs no PFC special case.
func (net *Network) sendPFC(from, to packet.NodeID, pause bool) {
	sw := net.nodes[from].(*Switch)
	port := &sw.out[sw.portOf[to]].port
	delay := net.Cfg.Rate.Serialize(packet.ControlFrame) + net.Cfg.Prop
	if port.xchan != nil {
		port.xchan.sendPFC(port.eng.Now().Add(delay), pause)
		return
	}
	arg := uint64(uint32(from))<<33 | uint64(uint32(to))<<1
	if pause {
		arg |= 1
	}
	port.eng.AfterEventFrom(port.clk, delay, net, netPFC, arg)
}

// HandleEvent implements sim.Handler: PFC frame arrival or a fault-model
// link transition.
func (net *Network) HandleEvent(kind uint8, arg uint64) {
	if kind == netFault {
		d := int(arg >> 32)
		net.ports[d].applyChange(net.Cfg.Faults.Dirs()[d].Sched[arg&0xffffffff])
		return
	}
	from := packet.NodeID(int32(arg >> 33))
	to := packet.NodeID(int32(arg >> 1 & 0xffffffff))
	net.nodes[to].pfcFrame(from, arg&1 != 0)
}

// QueuedBytes reports total bytes buffered across all switches — a
// diagnostic for congestion-spreading experiments.
func (net *Network) QueuedBytes() int {
	total := 0
	for _, sw := range net.switches {
		total += sw.queuedBytes()
	}
	return total
}

// BDPCap returns IRN's BDP-FC cap in packets for this fabric: the
// longest-path BDP in bytes divided by the wire MTU (§3.2). For the
// default 40 Gbps / 2 µs / 6-hop fabric with a 1000 B MTU this is ~113
// packets, matching the paper's "∼110 MTU-sized packets".
func (net *Network) BDPCap() int {
	bdp := BDPBytes(net.Cfg.Rate, net.Cfg.Prop, net.Topo.LongestPathHops())
	cap := bdp / (net.Cfg.MTU + packet.DataHeader)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// IdealFCT returns the empty-network completion time for a message of
// size bytes between two hosts: full-message serialization at line rate,
// plus per-hop store-and-forward of one MTU packet, plus path propagation.
// Slowdown metrics divide measured FCTs by this (§4.1 Metrics).
func (net *Network) IdealFCT(src, dst packet.NodeID, size int) sim.Duration {
	hops := net.Topo.PathHops(src, dst)
	pkts := (size + net.Cfg.MTU - 1) / net.Cfg.MTU
	if pkts < 1 {
		pkts = 1
	}
	wire := size + pkts*packet.DataHeader
	last := net.Cfg.MTU + packet.DataHeader
	if pkts == 1 {
		last = wire
	}
	d := net.Cfg.Rate.Serialize(wire)                        // source serialization
	d += sim.Duration(hops-1) * net.Cfg.Rate.Serialize(last) // store-and-forward of final packet
	d += sim.Duration(hops) * net.Cfg.Prop                   // propagation
	return d
}
