package fabric

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

// TestPktQueueShrinksAfterBurst: a VOQ that absorbed an incast burst must
// not pin its peak backing array for the rest of the run.
func TestPktQueueShrinksAfterBurst(t *testing.T) {
	var q pktQueue
	const burst = 16384
	for i := 0; i < burst; i++ {
		q.push(packet.NewData(1, 0, 1, packet.PSN(i), 100, false))
	}
	peak := cap(q.buf)
	if peak < burst {
		t.Fatalf("burst did not grow the queue: cap=%d", peak)
	}
	for i := 0; i < burst; i++ {
		if q.pop() == nil {
			t.Fatalf("queue drained early at %d", i)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after drain: len=%d", q.len())
	}
	if cap(q.buf) > shrinkMinCap {
		t.Fatalf("drained queue still pins cap=%d (peak %d), want <= %d", cap(q.buf), peak, shrinkMinCap)
	}
}

// TestPktQueueShrinkPreservesFIFO: shrinking must never reorder or lose
// packets while the queue stays partially full.
func TestPktQueueShrinkPreservesFIFO(t *testing.T) {
	var q pktQueue
	next := 0   // next PSN to push
	expect := 0 // next PSN expected from pop
	push := func(n int) {
		for i := 0; i < n; i++ {
			q.push(packet.NewData(1, 0, 1, packet.PSN(next), 100, false))
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			p := q.pop()
			if p == nil || p.PSN != packet.PSN(expect) {
				t.Fatalf("pop = %v, want PSN %d", p, expect)
			}
			expect++
		}
	}
	push(10000) // burst
	pop(9900)   // drain most of it — triggers compaction + shrink
	push(50)    // steady trickle across the shrunk buffer
	pop(150)
	if !q.empty() || q.bytes != 0 {
		t.Fatalf("queue should be empty: len=%d bytes=%d", q.len(), q.bytes)
	}
}

// pooledBlaster is a blaster that draws its packets from the fabric's
// pool, as the real transports do.
type pooledBlaster struct {
	pool *packet.Pool
	flow *transport.Flow
	mtu  int
	sent int
}

func (b *pooledBlaster) Flow() *transport.Flow                  { return b.flow }
func (b *pooledBlaster) HasData(sim.Time) (bool, sim.Time)      { return b.sent < b.flow.Pkts, 0 }
func (b *pooledBlaster) HandleControl(*packet.Packet, sim.Time) {}
func (b *pooledBlaster) Done() bool                             { return b.sent >= b.flow.Pkts }

func (b *pooledBlaster) NextPacket(now sim.Time) *packet.Packet {
	p := b.pool.NewData(b.flow.ID, b.flow.Src, b.flow.Dst, packet.PSN(b.sent), b.mtu, b.sent == b.flow.Pkts-1)
	p.SentAt = now
	b.sent++
	return p
}

// TestFabricSteadyStateReusesPackets: after warm-up, the fabric serves
// its packet churn from the pool. The flow below delivers thousands of
// packets while only a link's worth can be alive at once, so heap
// allocations must stay a small fraction of deliveries.
func TestFabricSteadyStateReusesPackets(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, topo.NewStar(2), testConfig())
	const pkts = 4000
	src := &pooledBlaster{
		pool: net.Pool(),
		flow: &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: pkts * 1000, Pkts: pkts},
		mtu:  1000,
	}
	rec := &recorder{}
	net.NIC(1).AttachSink(1, rec)
	net.NIC(0).AttachSource(src)
	eng.Run()

	pool := net.Pool()
	if got := net.Stats().Delivered; got < pkts {
		t.Fatalf("delivered %d, want >= %d", got, pkts)
	}
	if pool.Allocs > pkts/4 {
		t.Fatalf("pool heap-allocated %d packets for %d deliveries; free-list reuse is broken (reuses=%d)",
			pool.Allocs, net.Stats().Delivered, pool.Reuses)
	}
	if pool.Reuses == 0 {
		t.Fatal("pool never reused a packet")
	}
}
