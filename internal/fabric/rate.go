// Package fabric implements the packet-level network substrate the
// evaluation runs on: unidirectional links with exact serialization and
// propagation timing, input-queued switches with virtual output queues and
// round-robin scheduling, per-input-port buffer accounting, PFC pause and
// resume with threshold + headroom, RED/ECN marking for DCQCN and DCTCP,
// ECMP forwarding, and host NICs that arbitrate among queue pairs.
//
// The paper's simulator (§4.1) extends INET/OMNET++ to model a Mellanox
// ConnectX-4 NIC; this package is the equivalent substrate built from
// scratch. All switches are "input-queued with virtual output ports, that
// are scheduled using round-robin" and "can be configured to generate PFC
// frames by setting appropriate buffer thresholds".
package fabric

import (
	"github.com/irnsim/irn/internal/sim"
)

// Rate is a link rate expressed as picoseconds per byte, which keeps all
// serialization arithmetic in exact integers: 40 Gbps is 200 ps/B,
// 10 Gbps is 800 ps/B, 100 Gbps is 80 ps/B.
type Rate int64

// Gbps converts a rate in gigabits per second to ps/byte. Rates that do
// not divide 8000 evenly are rounded to the nearest picosecond.
func Gbps(g float64) Rate {
	return Rate(8000.0/g + 0.5)
}

// GbpsValue converts back to gigabits per second for reporting.
func (r Rate) GbpsValue() float64 { return 8000.0 / float64(r) }

// Serialize returns the time to place wire bytes on a link at this rate.
func (r Rate) Serialize(wire int) sim.Duration {
	return sim.Duration(int64(wire) * int64(r))
}

// BytesIn returns how many bytes the link carries in duration d.
func (r Rate) BytesIn(d sim.Duration) int {
	return int(int64(d) / int64(r))
}

// BDPBytes returns the bandwidth-delay product for a round-trip time of
// 2·hops·prop, the quantity IRN's BDP-FC cap is computed from (§3.2). For
// the paper's default (40 Gbps, 2 µs propagation, 6-hop longest path) this
// is 120 KB.
func BDPBytes(r Rate, prop sim.Duration, hops int) int {
	rtt := sim.Duration(2 * hops * int(prop))
	return r.BytesIn(rtt)
}
