package fabric

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// NIC is a host network interface: a single egress port toward the host's
// edge switch, shared by all of the host's queue pairs. Data sources are
// arbitrated round-robin ("the sender QP... periodically polls the MAC
// layer until the link is available", §4.1); transport control packets
// (ACK/NACK/CNP) take strict priority since they are latency-critical and
// tiny — their bandwidth is still consumed on the wire.
//
// Host ingress is modelled with infinite drain rate: arriving packets are
// handed to the destination transport immediately, so hosts never assert
// PFC toward the fabric. Hosts do obey PFC asserted by their switch.
type NIC struct {
	id   packet.NodeID
	net  *Network
	part *partition // the shard slice this host belongs to

	egress outPort
	ctrl   pktQueue

	sources   []transport.Source
	rr        int
	srcByFlow map[packet.FlowID]transport.Source
	sinks     map[packet.FlowID]transport.Sink

	wake *sim.Timer

	// Stray counts packets that arrived for an unknown flow (e.g. late
	// duplicate ACKs after the source detached); they are dropped.
	Stray uint64
}

// nicWake is the NIC's only sim.Handler event kind: the egress wake-up
// timer expiring.
const nicWake uint8 = 0

func newNIC(id packet.NodeID, net *Network, part *partition) *NIC {
	n := &NIC{
		id:        id,
		net:       net,
		part:      part,
		srcByFlow: make(map[packet.FlowID]transport.Source),
		sinks:     make(map[packet.FlowID]transport.Sink),
	}
	n.wake = sim.NewHandlerTimer(part.eng, &net.clks[id], n, nicWake)
	return n
}

// HandleEvent implements sim.Handler: the wake timer fired.
func (n *NIC) HandleEvent(uint8, uint64) { n.egress.kick() }

// reset returns the NIC to its just-built state for a new run: no
// attached transports, an empty control queue, and the wake timer
// disarmed (its pending engine event was discarded by Engine.Reset, so
// the timer's own bookkeeping must be cleared with it).
func (n *NIC) reset() {
	n.egress.reset()
	n.ctrl.reset()
	for i := range n.sources {
		n.sources[i] = nil
	}
	n.sources = n.sources[:0]
	n.rr = 0
	clear(n.srcByFlow)
	clear(n.sinks)
	n.wake.Reset()
	n.Stray = 0
}

// ID returns the host node ID.
func (n *NIC) ID() packet.NodeID { return n.id }

// Now implements transport.Endpoint.
func (n *NIC) Now() sim.Time { return n.part.eng.Now() }

// Engine implements transport.Endpoint: the engine of the shard owning
// this host.
func (n *NIC) Engine() *sim.Engine { return n.part.eng }

// Clock implements transport.Endpoint: the host node's rank clock.
func (n *NIC) Clock() *sim.Clock { return &n.net.clks[n.id] }

// Pool implements transport.Endpoint: the owning shard's packet
// free-list.
func (n *NIC) Pool() *packet.Pool { return n.part.pool }

// SendControl implements transport.Endpoint: queues a control packet with
// strict priority on the egress port.
func (n *NIC) SendControl(pkt *packet.Packet) {
	pkt.Hash = uint32(mix64(uint64(pkt.Flow)))
	n.ctrl.push(pkt)
	n.egress.kick()
}

// Wake implements transport.Endpoint.
func (n *NIC) Wake() { n.egress.kick() }

// AttachSource registers a sender on this NIC and kicks the scheduler.
func (n *NIC) AttachSource(s transport.Source) {
	n.sources = append(n.sources, s)
	n.srcByFlow[s.Flow().ID] = s
	n.egress.kick()
}

// AttachSink registers a receiver for a flow.
func (n *NIC) AttachSink(id packet.FlowID, s transport.Sink) {
	n.sinks[id] = s
}

// DetachSink removes a receiver.
func (n *NIC) DetachSink(id packet.FlowID) { delete(n.sinks, id) }

// ActiveSources reports how many senders are attached (including ones
// that finished but have not been reaped yet).
func (n *NIC) ActiveSources() int { return len(n.sources) }

// nextPacket is the egress port's source callback.
func (n *NIC) nextPacket() *packet.Packet {
	if pkt := n.ctrl.pop(); pkt != nil {
		return pkt
	}
	now := n.part.eng.Now()
	var earliest sim.Time
	haveWake := false

	cnt := len(n.sources)
	idx := n.rr
	if idx >= cnt {
		idx = 0
	}
	// Conditional wrap instead of modulo, as in swOut.nextPacket: this
	// arbitration scan runs once per transmitted packet.
	for i := 0; i < cnt; i++ {
		src := n.sources[idx]
		cur := idx
		if idx++; idx == cnt {
			idx = 0
		}
		if src.Done() {
			continue // reaped below
		}
		ready, at := src.HasData(now)
		if ready {
			n.rr = cur + 1
			pkt := src.NextPacket(now)
			if pkt == nil {
				continue
			}
			pkt.Hash = uint32(mix64(uint64(pkt.Flow)))
			n.reap()
			return pkt
		}
		if at > now && (!haveWake || at < earliest) {
			earliest, haveWake = at, true
		}
	}
	n.reap()
	if haveWake {
		n.wake.ArmAt(earliest)
	}
	return nil
}

// reap removes completed sources. Called outside the arbitration scan.
func (n *NIC) reap() {
	keep := n.sources[:0]
	removed := false
	for _, s := range n.sources {
		if s.Done() {
			delete(n.srcByFlow, s.Flow().ID)
			removed = true
			continue
		}
		keep = append(keep, s)
	}
	if removed {
		for i := len(keep); i < len(n.sources); i++ {
			n.sources[i] = nil
		}
		n.sources = keep
		if len(n.sources) > 0 {
			n.rr %= len(n.sources)
		} else {
			n.rr = 0
		}
	}
}

// receive handles a packet arriving from the fabric. Delivery is where
// packets die: once the transport handler returns, the packet goes back to
// the pool. Transports therefore must not retain the *Packet past
// HandleData/HandleControl — they read the fields they need and emit fresh
// control packets instead, which every transport in this repo does.
func (n *NIC) receive(pkt *packet.Packet, _ packet.NodeID) {
	now := n.part.eng.Now()
	n.part.census.Delivered++
	switch pkt.Type {
	case packet.TypeData:
		n.part.stats.Delivered++
		n.part.stats.DataBytes += uint64(pkt.Wire)
		if sink, ok := n.sinks[pkt.Flow]; ok {
			sink.HandleData(pkt, now)
		} else {
			n.Stray++
		}
	case packet.TypeAck, packet.TypeNack, packet.TypeCNP:
		n.part.stats.CtrlDeliv++
		if src, ok := n.srcByFlow[pkt.Flow]; ok {
			src.HandleControl(pkt, now)
		} else {
			n.Stray++
		}
	default:
		n.Stray++
	}
	n.part.pool.Release(pkt)
}

// pfcFrame pauses or resumes the NIC egress (PFC asserted by the edge
// switch).
func (n *NIC) pfcFrame(_ packet.NodeID, pause bool) {
	if pause {
		n.egress.pause()
	} else {
		n.egress.resume()
	}
}
