package fabric

// Census tracks packet conservation across one fabric: every packet that
// enters the fabric must end in exactly one of the exit counters or still
// be inside it when the run stops. The invariant harness asserts
//
//	Injected == Delivered + OverflowDrops + InjectDrops +
//	            FaultDrops + Corrupted + InFlightPackets()
//
// after every run. A miss on the low side means a packet died without
// being accounted (and, with the pool, usually leaked); a miss on the high
// side means a packet was counted — or delivered — twice. Together with
// the pool's double-release panic this pins the ownership contract of the
// pooled datapath.
type Census struct {
	// Injected counts packets that entered the fabric: each transmission
	// start at a NIC egress port. (Control packets sitting in a NIC's
	// priority queue at run end were never injected and are excluded —
	// see CtrlBacklog.)
	Injected uint64
	// Delivered counts packets handed to a host: data, control, and
	// strays alike — delivery is a packet death regardless of whether a
	// transport claimed it.
	Delivered uint64
	// OverflowDrops counts drop-tail deaths at full switch buffers.
	OverflowDrops uint64
	// InjectDrops counts deaths via the Config.LossInject test hook.
	InjectDrops uint64
	// FaultDrops counts deaths from the fault model's random in-flight
	// loss and from links that went down with packets in flight.
	FaultDrops uint64
	// Corrupted counts deaths at a receiving port's CRC check (the fault
	// model's corruption rate).
	Corrupted uint64
}

// Exits sums every death counter: the packets that left the fabric.
func (c *Census) Exits() uint64 {
	return c.Delivered + c.OverflowDrops + c.InjectDrops + c.FaultDrops + c.Corrupted
}

// InFlightPackets counts the packets currently inside the fabric:
// buffered in switch virtual output queues, riding a link's in-flight
// window (including NIC egress links), or resident in a cross-shard
// boundary channel between serialization start and hand-off to the
// receiving node (a boundary packet is pushed at kick and never enters
// the port's in-flight ring, so the two never double-count). With Census.Exits it closes the conservation equation
// at any quiescent instant (between events serially; at a window barrier
// sharded).
func (net *Network) InFlightPackets() int {
	n := 0
	for _, nic := range net.nics {
		if nic != nil {
			n += nic.egress.inflight.n
		}
	}
	for _, sw := range net.switches {
		for _, o := range sw.out {
			n += o.port.inflight.n
			for i := range o.voq {
				n += o.voq[i].len()
			}
		}
	}
	for _, c := range net.chans {
		n += c.resident()
	}
	return n
}

// CtrlBacklog counts control packets queued at NIC egress priority queues
// that have not begun transmission: allocated but not yet injected. The
// pool-accounting invariant is
//
//	pool.Allocs - pool.FreeLen() == InFlightPackets() + CtrlBacklog()
//
// i.e. every packet ever allocated is either free, inside the fabric, or
// awaiting its first transmission.
func (net *Network) CtrlBacklog() int {
	n := 0
	for _, nic := range net.nics {
		if nic != nil {
			n += nic.ctrl.len()
		}
	}
	return n
}
