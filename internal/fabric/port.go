package fabric

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// outPort serializes packets onto one unidirectional link. Both switch
// output ports and NIC egress ports are outPorts; they differ only in the
// source callback that supplies the next packet.
//
// Timing model: a packet occupies the transmitter for Wire×rate
// picoseconds (serialization), then arrives at the peer after the
// propagation delay. Store-and-forward: the next hop sees the packet only
// after its last byte arrives.
type outPort struct {
	eng  *sim.Engine
	rate Rate
	prop sim.Duration

	// source supplies the next packet to transmit, or nil if none is
	// ready. Called only when the port is idle and unpaused.
	source func() *packet.Packet
	// deliver hands a packet to the remote end; called at arrival time.
	deliver func(*packet.Packet)

	busy   bool
	paused bool // PFC X-OFF received from downstream
}

// kick starts a transmission if the port is idle, unpaused, and a packet
// is available. It reschedules itself after each completed serialization,
// so one kick keeps the port busy as long as the source has packets.
func (o *outPort) kick() {
	if o.busy || o.paused {
		return
	}
	pkt := o.source()
	if pkt == nil {
		return
	}
	o.busy = true
	ser := o.rate.Serialize(pkt.Wire)
	o.eng.After(ser, func() {
		o.busy = false
		// Arrival at the peer is one propagation delay after the last
		// byte leaves.
		o.eng.After(o.prop, func() { o.deliver(pkt) })
		o.kick()
	})
}

// pause handles a PFC X-OFF: the packet currently being serialized
// completes (that in-flight data is what the headroom absorbs), then the
// port stays silent until resume.
func (o *outPort) pause() { o.paused = true }

// resume handles a PFC X-ON.
func (o *outPort) resume() {
	if !o.paused {
		return
	}
	o.paused = false
	o.kick()
}
