package fabric

import (
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// outPort event kinds (sim.Handler dispatch).
const (
	portTxDone  uint8 = iota // last byte left the transmitter
	portDeliver              // last byte arrived at the peer
)

// outPort serializes packets onto one unidirectional link. Both switch
// output ports and NIC egress ports are outPorts; they differ only in the
// source callback that supplies the next packet.
//
// Timing model: a packet occupies the transmitter for Wire×rate
// picoseconds (serialization), then arrives at the peer after the
// propagation delay. Store-and-forward: the next hop sees the packet only
// after its last byte arrives.
//
// The port is a sim.Handler: serialization-done and arrival are typed
// events, so steady-state forwarding schedules nothing on the heap. The
// packet riding each event lives in the port's in-flight FIFO rather than
// a closure: serialization is strictly ordered and the propagation delay
// is constant per link, so packets arrive in exactly the order they were
// queued — popping the ring head at each portDeliver event is equivalent
// to capturing the packet per event, without the capture.
//
// Fault injection happens at the arrival end of the link: random in-flight
// loss, the receiving port's CRC check (corruption), and downed links all
// resolve at portDeliver, where the packet either dies (released to the
// pool, counted in Stats/Census) or is handed on. Keeping every pushed
// packet paired with exactly one portDeliver event — even across link
// flaps — is what keeps the in-flight ring and the event queue in sync.
type outPort struct {
	eng  *sim.Engine // the owning node's shard engine
	clk  *sim.Clock  // the owning node's rank clock
	part *partition  // stats, census, and the pool faults release into
	rate Rate        // configured rate; curRate applies degradation
	prop sim.Duration

	// curRate is the effective serialization rate: rate normally, scaled
	// while a fault.ChangeRate degradation phase is active.
	curRate Rate

	// curLoss is the effective random loss rate: the fault link's base
	// rate normally, moved by fault.ChangeLoss while a loss burst is
	// active. Zero when flt is nil.
	curLoss float64

	// flt is this direction's fault state, nil on healthy links.
	flt *fault.Link

	// source supplies the next packet to transmit, or nil if none is
	// ready. Called only when the port is idle and unpaused.
	source func() *packet.Packet
	// deliver hands a packet to the remote end; called at arrival time.
	// Nil on boundary ports, whose arrivals ride xchan instead.
	deliver func(*packet.Packet)
	// xchan, when non-nil, marks a boundary port: the link's receiver
	// lives on another shard, and serialization *start* pushes the packet
	// into this cross-shard channel — due one serialization plus one
	// propagation delay out — instead of scheduling portDeliver. The
	// early push is what widens the group's lookahead by the minimum
	// frame serialization (see Network.computeLookahead); the arrival
	// instant is identical to the interior path's.
	xchan *linkChan

	// inflight holds interior packets between transmission start and
	// arrival at the peer: the tail is serializing, earlier entries are
	// propagating. Boundary packets live in xchan instead.
	inflight pktRing

	// serRank is the arrival rank of the packet currently serializing on
	// an interior port, drawn at serialization start. Both paths draw the
	// arrival rank at kick — boundary ports inside xchan.send, interior
	// ports here — so a node's clock sequence is identical under every
	// partitioning; portTxDone consumes it before the next kick overwrites
	// it (at most one packet serializes per port at a time).
	serRank uint64

	// origin marks a NIC egress port: packets transmitted here enter the
	// fabric and are counted in Census.Injected. Packed with the flag
	// bytes below so the struct stays within the same cache-line budget
	// it had before curLoss was added.
	origin bool

	busy   bool
	paused bool // PFC X-OFF received from downstream
	down   bool // link failed (fault.ChangeDown); nothing transmits
}

// kick starts a transmission if the port is idle, unpaused, up, and a
// packet is available. It reschedules itself after each completed
// serialization, so one kick keeps the port busy as long as the source has
// packets.
func (o *outPort) kick() {
	if o.busy || o.paused || o.down {
		return
	}
	pkt := o.source()
	if pkt == nil {
		return
	}
	if o.origin {
		o.part.census.Injected++
	}
	o.busy = true
	ser := o.curRate.Serialize(pkt.Wire)
	// The arrival rank is drawn first, then the txdone rank — on both
	// paths, so the node's clock sequence is partitioning-invariant.
	if o.xchan != nil {
		// Boundary link: hand the packet to the cross-shard channel now,
		// due at serialization end plus one propagation delay — the same
		// arrival instant, same rank draw, as the interior path. A rate
		// change mid-serialization cannot invalidate the due time (the
		// packet being serialized keeps its timing, see applyChange), a
		// PFC pause lets the current serialization complete, and a link
		// death resolves consumer-side at arrival (linkChan.HandleEvent).
		o.xchan.send(o.eng.Now().Add(ser+o.prop), pkt)
	} else {
		o.serRank = o.clk.Next()
		o.inflight.push(pkt)
	}
	o.eng.AfterEventFrom(o.clk, ser, o, portTxDone, 0)
}

// HandleEvent implements sim.Handler: port timing events.
func (o *outPort) HandleEvent(kind uint8, _ uint64) {
	switch kind {
	case portTxDone:
		o.busy = false
		if o.xchan == nil {
			// Arrival at the peer is one propagation delay after the
			// last byte leaves; the rank was drawn at serialization
			// start (kick). Boundary ports already pushed their packet
			// into the channel at kick.
			o.eng.ScheduleRanked(o.eng.Now().Add(o.prop), o.serRank, o, portDeliver, 0)
		}
		o.kick()
	case portDeliver:
		pkt := o.inflight.pop()
		// Fault resolution at the receiving end. A downed link kills the
		// packets that were in flight when it failed; then the in-flight
		// loss draw; then the CRC check.
		if o.down {
			o.die(pkt, &o.part.stats.FaultDrops, &o.part.census.FaultDrops)
			return
		}
		if o.flt != nil {
			if o.flt.Drop(o.curLoss) {
				o.die(pkt, &o.part.stats.FaultDrops, &o.part.census.FaultDrops)
				return
			}
			if o.flt.DropCorrupt() {
				o.die(pkt, &o.part.stats.Corrupted, &o.part.census.Corrupted)
				return
			}
		}
		o.deliver(pkt)
	}
}

// die is a fault death site: the packet leaves the simulation here, so it
// is counted (stat + census must stay paired, or the conservation
// invariant breaks) and released back to the pool — dropping without
// releasing would leak, releasing twice panics.
func (o *outPort) die(pkt *packet.Packet, stat, census *uint64) {
	*stat++
	*census++
	o.part.pool.Release(pkt)
}

// applyChange executes one scheduled fault transition on this link
// direction, keeping the network's count of currently-down directions
// (which gates the ECMP down-state scan) in step.
func (o *outPort) applyChange(ch fault.Change) {
	switch ch.Kind {
	case fault.ChangeDown:
		if !o.down {
			o.down = true
			o.part.downPorts++
		}
	case fault.ChangeUp:
		if o.down {
			o.down = false
			o.part.downPorts--
		}
		o.kick()
	case fault.ChangeRate:
		if ch.Factor == 1 {
			o.curRate = o.rate
		} else {
			// ps/byte grows as bandwidth shrinks. The packet currently
			// serializing keeps its old timing; the next kick sees the new
			// rate.
			o.curRate = Rate(float64(o.rate)/ch.Factor + 0.5)
		}
	case fault.ChangeLoss:
		// A loss burst begins or ends; the restoring entry carries the
		// base rate, so no special case is needed here.
		o.curLoss = ch.Factor
	}
}

// reset returns the port to its just-wired state for a new run: idle,
// unpaused, up, at the configured rate and base loss rate, with the
// in-flight window empty. The fault-link pointer is reassigned by
// Network.Reset before the per-node resets run, so reading flt here sees
// the fresh model.
func (o *outPort) reset() {
	o.curRate = o.rate
	o.curLoss = 0
	if o.flt != nil {
		o.curLoss = o.flt.Loss
	}
	o.inflight.reset()
	o.busy, o.paused, o.down = false, false, false
}

// pause handles a PFC X-OFF: the packet currently being serialized
// completes (that in-flight data is what the headroom absorbs), then the
// port stays silent until resume.
func (o *outPort) pause() { o.paused = true }

// resume handles a PFC X-ON.
func (o *outPort) resume() {
	if !o.paused {
		return
	}
	o.paused = false
	o.kick()
}

// pktRing is a small FIFO ring of packets that grows on demand and never
// allocates afterwards. A link holds at most ceil(prop/serialization)+1
// packets in flight, so rings stay tiny; the zero value is ready for use.
// Capacity is always a power of two so indexing is a bitmask — this ring
// is touched twice per packet per hop, where an integer modulo is
// measurable.
type pktRing struct {
	buf  []*packet.Packet // len(buf) is 0 or a power of two
	head int
	n    int
}

// push appends p to the tail.
func (r *pktRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		grown := make([]*packet.Packet, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// pop removes and returns the head, or nil if empty.
func (r *pktRing) pop() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// reset empties the ring for a new run, dropping packet references but
// keeping the array warm.
func (r *pktRing) reset() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = nil
	}
	r.head, r.n = 0, 0
}
