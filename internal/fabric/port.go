package fabric

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// outPort event kinds (sim.Handler dispatch).
const (
	portTxDone  uint8 = iota // last byte left the transmitter
	portDeliver              // last byte arrived at the peer
)

// outPort serializes packets onto one unidirectional link. Both switch
// output ports and NIC egress ports are outPorts; they differ only in the
// source callback that supplies the next packet.
//
// Timing model: a packet occupies the transmitter for Wire×rate
// picoseconds (serialization), then arrives at the peer after the
// propagation delay. Store-and-forward: the next hop sees the packet only
// after its last byte arrives.
//
// The port is a sim.Handler: serialization-done and arrival are typed
// events, so steady-state forwarding schedules nothing on the heap. The
// packet riding each event lives in the port's in-flight FIFO rather than
// a closure: serialization is strictly ordered and the propagation delay
// is constant per link, so packets arrive in exactly the order they were
// queued — popping the ring head at each portDeliver event is equivalent
// to capturing the packet per event, without the capture.
type outPort struct {
	eng  *sim.Engine
	rate Rate
	prop sim.Duration

	// source supplies the next packet to transmit, or nil if none is
	// ready. Called only when the port is idle and unpaused.
	source func() *packet.Packet
	// deliver hands a packet to the remote end; called at arrival time.
	deliver func(*packet.Packet)

	// inflight holds packets between transmission start and arrival at
	// the peer: the tail is serializing, earlier entries are propagating.
	inflight pktRing

	busy   bool
	paused bool // PFC X-OFF received from downstream
}

// kick starts a transmission if the port is idle, unpaused, and a packet
// is available. It reschedules itself after each completed serialization,
// so one kick keeps the port busy as long as the source has packets.
func (o *outPort) kick() {
	if o.busy || o.paused {
		return
	}
	pkt := o.source()
	if pkt == nil {
		return
	}
	o.busy = true
	o.inflight.push(pkt)
	o.eng.AfterEvent(o.rate.Serialize(pkt.Wire), o, portTxDone, 0)
}

// HandleEvent implements sim.Handler: port timing events.
func (o *outPort) HandleEvent(kind uint8, _ uint64) {
	switch kind {
	case portTxDone:
		o.busy = false
		// Arrival at the peer is one propagation delay after the last
		// byte leaves.
		o.eng.AfterEvent(o.prop, o, portDeliver, 0)
		o.kick()
	case portDeliver:
		o.deliver(o.inflight.pop())
	}
}

// pause handles a PFC X-OFF: the packet currently being serialized
// completes (that in-flight data is what the headroom absorbs), then the
// port stays silent until resume.
func (o *outPort) pause() { o.paused = true }

// resume handles a PFC X-ON.
func (o *outPort) resume() {
	if !o.paused {
		return
	}
	o.paused = false
	o.kick()
}

// pktRing is a small FIFO ring of packets that grows on demand and never
// allocates afterwards. A link holds at most ceil(prop/serialization)+1
// packets in flight, so rings stay tiny; the zero value is ready for use.
type pktRing struct {
	buf  []*packet.Packet
	head int
	n    int
}

// push appends p to the tail.
func (r *pktRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		grown := make([]*packet.Packet, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

// pop removes and returns the head, or nil if empty.
func (r *pktRing) pop() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}
