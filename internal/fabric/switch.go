package fabric

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// Switch is an input-queued switch with virtual output queues (one FIFO
// per input at every output) scheduled round-robin, per-input-port buffer
// accounting, optional PFC generation, and RED/ECN marking — the switch
// model of §4.1.
type Switch struct {
	id   packet.NodeID
	net  *Network
	part *partition // the shard slice this switch belongs to
	rng  *sim.RNG   // per-switch ECN marking stream

	neighbors []packet.NodeID       // port index → neighbor node
	portOf    map[packet.NodeID]int // neighbor node → port index
	in        []inState             // per input port
	out       []*swOut              // per output port
	routes    [][]int               // dst host → candidate output ports
	salt      uint64                // per-switch ECMP salt
	sprayCtr  uint64                // per-packet path counter (Spray mode)
	shared    int                   // shared-buffer occupancy (SharedBuffer mode)
}

type inState struct {
	bytes  int  // buffered bytes received on this port, across all VOQs
	paused bool // X-OFF currently asserted upstream
}

type swOut struct {
	sw     *Switch
	port   outPort
	voq    []pktQueue // per input port
	rr     int
	queued int // total bytes queued at this output (for ECN marking)
}

// newSwitch wires a switch shell; ports are attached by the Network.
func newSwitch(id packet.NodeID, net *Network, part *partition) *Switch {
	return &Switch{
		id:     id,
		net:    net,
		part:   part,
		rng:    ecnRNG(net.Cfg.Seed, id),
		portOf: make(map[packet.NodeID]int),
		salt:   mix64(uint64(id) + 0x5151_7eb5_c0de),
	}
}

// addPort registers a neighbor and returns the new port index.
func (s *Switch) addPort(neighbor packet.NodeID) int {
	idx := len(s.neighbors)
	s.neighbors = append(s.neighbors, neighbor)
	s.portOf[neighbor] = idx
	s.in = append(s.in, inState{})
	o := &swOut{sw: s}
	s.out = append(s.out, o)
	return idx
}

// finalize sizes the VOQ matrices and routing table once all ports exist.
func (s *Switch) finalize() {
	n := len(s.neighbors)
	for _, o := range s.out {
		o.voq = make([]pktQueue, n)
	}
	hosts := s.net.Topo.Hosts()
	s.routes = make([][]int, hosts)
	for dst := 0; dst < hosts; dst++ {
		hops := s.net.Topo.NextHops(s.id, packet.NodeID(dst))
		ports := make([]int, len(hops))
		for i, h := range hops {
			ports[i] = s.portOf[h]
		}
		s.routes[dst] = ports
	}
}

// reset returns the switch to its just-built state for a new run: empty
// VOQs, zeroed buffer accounting, PFC deasserted, round-robin pointers and
// the spray counter at their initial positions. Structural state (ports,
// routes, the ECMP salt) is topology-derived and survives.
func (s *Switch) reset() {
	for i := range s.in {
		s.in[i] = inState{}
	}
	for _, o := range s.out {
		o.rr, o.queued = 0, 0
		for i := range o.voq {
			o.voq[i].reset()
		}
		o.port.reset()
	}
	s.sprayCtr = 0
	s.shared = 0
}

// receive handles a packet arriving on the link from neighbor `from`.
func (s *Switch) receive(pkt *packet.Packet, from packet.NodeID) {
	inIdx := s.portOf[from]
	cfg := &s.net.Cfg

	// Injected losses (tests, failure-injection experiments). A drop is
	// a packet death: the packet returns to the pool right here.
	if cfg.LossInject != nil && cfg.LossInject(pkt) {
		s.part.stats.Drops++
		s.part.census.InjectDrops++
		s.part.pool.Release(pkt)
		return
	}

	// Drop-tail on a full buffer. With PFC configured correctly this
	// should not trigger; without PFC it is the loss the transports
	// must recover from. In shared-buffer mode the pool spans all input
	// ports (total = ports × BufferBytes).
	if cfg.SharedBuffer {
		if s.shared+pkt.Wire > cfg.BufferBytes*len(s.in) {
			s.part.stats.Drops++
			s.part.census.OverflowDrops++
			s.part.pool.Release(pkt)
			return
		}
	} else if s.in[inIdx].bytes+pkt.Wire > cfg.BufferBytes {
		s.part.stats.Drops++
		s.part.census.OverflowDrops++
		s.part.pool.Release(pkt)
		return
	}

	outIdx := s.pickOutput(pkt)
	o := s.out[outIdx]

	// RED/ECN marking against this output's backlog.
	if cfg.ECN.Enabled && pkt.ECT && !pkt.CE && s.markECN(o.queued) {
		pkt.CE = true
		s.part.stats.ECNMarked++
	}

	o.voq[inIdx].push(pkt)
	o.queued += pkt.Wire
	s.in[inIdx].bytes += pkt.Wire
	s.shared += pkt.Wire

	// PFC: assert X-OFF upstream when this input crosses the threshold.
	if cfg.PFC && !s.in[inIdx].paused && s.in[inIdx].bytes > cfg.PFCThreshold() {
		s.in[inIdx].paused = true
		s.part.stats.PauseFrames++
		s.net.sendPFC(s.id, from, true)
	}

	o.port.kick()
}

// pickOutput chooses the output port for pkt: flow-hash ECMP by default,
// or an independent per-packet choice in spray mode. Next-hop selection
// honors link state: output ports whose link is down are skipped while an
// equal-cost alternative is up (the routing reconvergence a real fabric
// performs, collapsed to instantaneous). If every choice is down the
// hashed pick stands — the packet queues at the dead port and its loss is
// recovered like any other.
func (s *Switch) pickOutput(pkt *packet.Packet) int {
	ports := s.routes[pkt.Dst]
	if len(ports) == 1 {
		return ports[0]
	}
	h := uint64(pkt.Hash)
	if s.net.Cfg.Spray {
		s.sprayCtr++
		h ^= s.sprayCtr * 0x9e3779b97f4a7c15
	}
	hv := mix64(h ^ s.salt)
	if s.part.downPorts > 0 {
		up := 0
		for _, p := range ports {
			if !s.out[p].port.down {
				up++
			}
		}
		if up > 0 && up < len(ports) {
			k := int(hv % uint64(up))
			for _, p := range ports {
				if !s.out[p].port.down {
					if k == 0 {
						return p
					}
					k--
				}
			}
		}
	}
	return ports[hv%uint64(len(ports))]
}

// nextPacket is the output port's source callback: round-robin over the
// input VOQs feeding this output.
func (o *swOut) nextPacket() *packet.Packet {
	n := len(o.voq)
	idx := o.rr
	if idx >= n {
		idx = 0
	}
	// Conditional wrap instead of modulo: this scan runs once per
	// forwarded packet and port counts are not powers of two.
	for i := 0; i < n; i++ {
		if pkt := o.voq[idx].pop(); pkt != nil {
			o.rr = idx + 1
			o.queued -= pkt.Wire
			o.sw.dequeued(idx, pkt)
			return pkt
		}
		if idx++; idx == n {
			idx = 0
		}
	}
	return nil
}

// dequeued updates input accounting after a packet leaves input inIdx's
// buffer, releasing PFC if the buffer drained far enough.
func (s *Switch) dequeued(inIdx int, pkt *packet.Packet) {
	s.in[inIdx].bytes -= pkt.Wire
	s.shared -= pkt.Wire
	cfg := &s.net.Cfg
	if cfg.PFC && s.in[inIdx].paused &&
		s.in[inIdx].bytes <= cfg.PFCThreshold()-cfg.PFCHysteresis {
		s.in[inIdx].paused = false
		s.part.stats.ResumeFrames++
		s.net.sendPFC(s.id, s.neighbors[inIdx], false)
	}
}

// pfcFrame handles an X-OFF/X-ON received from a downstream neighbor: it
// pauses or resumes this switch's output port facing that neighbor.
func (s *Switch) pfcFrame(from packet.NodeID, pause bool) {
	o := s.out[s.portOf[from]]
	if pause {
		o.port.pause()
	} else {
		o.port.resume()
	}
}

// markECN samples the RED marking decision for an egress backlog of
// queued bytes, against this switch's own deterministic RNG stream.
func (s *Switch) markECN(queued int) bool {
	e := &s.net.Cfg.ECN
	if queued <= e.KMin {
		return false
	}
	if queued >= e.KMax {
		return true
	}
	p := e.PMax * float64(queued-e.KMin) / float64(e.KMax-e.KMin)
	return s.rng.Float64() < p
}

// queuedBytes reports the total bytes buffered at the switch (all inputs).
func (s *Switch) queuedBytes() int {
	total := 0
	for i := range s.in {
		total += s.in[i].bytes
	}
	return total
}

// mix64 is splitmix64's finalizer, used for ECMP hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
