package fabric

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// analyticLookahead recomputes the safe-window width from first
// principles — the minimum over cut links of propagation plus the
// serialization delay of the smallest frame that can cross — so the
// tests below pin computeLookahead against an independent derivation
// rather than against itself.
func analyticLookahead(t topo.Topology, assign []int, cfg Config) (sim.Duration, bool) {
	smallest := packet.ControlFrame
	if packet.DataHeader+1 < smallest {
		smallest = packet.DataHeader + 1
	}
	serMin := cfg.Rate.Serialize(smallest)
	best, cut := sim.Duration(0), false
	for _, l := range t.Links() {
		if assign[l.A] == assign[l.B] {
			continue
		}
		if cand := cfg.Prop + serMin; !cut || cand < best {
			best, cut = cand, true
		}
	}
	return best, cut
}

// TestLookaheadMatchesAnalyticMinimum: the lookahead NewPartitioned
// fixes at construction must equal the analytic minimum over this
// partitioning's cut links.
func TestLookaheadMatchesAnalyticMinimum(t *testing.T) {
	tree := topo.NewFatTree(4)
	cfg := testConfig()
	cfg.PFC = false
	for _, shards := range []int{2, 4} {
		assign, used := topo.PartitionNodes(tree, shards)
		if used < 2 {
			t.Fatalf("shards=%d: partitioner used %d shards", shards, used)
		}
		engs := make([]*sim.Engine, used)
		for i := range engs {
			engs[i] = sim.NewEngine()
		}
		net := NewPartitioned(engs, assign, tree, cfg)
		want, cut := analyticLookahead(tree, assign, cfg)
		if !cut {
			t.Fatalf("shards=%d: no cut links in a multi-shard partitioning", shards)
		}
		if got := net.Lookahead(); got != want {
			t.Errorf("shards=%d: Lookahead() = %d, want analytic minimum %d", shards, got, want)
		}
		if got := net.Lookahead(); got <= cfg.Prop {
			t.Errorf("shards=%d: Lookahead() = %d not widened past bare propagation %d", shards, got, cfg.Prop)
		}
		smallest := packet.ControlFrame
		if packet.DataHeader+1 < smallest {
			smallest = packet.DataHeader + 1
		}
		if want := cfg.Prop + cfg.Rate.Serialize(smallest); net.WindowSlack() != want {
			t.Errorf("shards=%d: WindowSlack() = %d, want prop+serMin %d", shards, net.WindowSlack(), want)
		}
	}
}

// TestLookaheadPFCWidened: PFC pause frames serialize like any other
// fixed-size control frame (sendPFC folds the ControlFrame delay into
// the arrival time), so a PFC-enabled fabric with cut links gets the
// same prop+serMin widening as everything else — no bare-propagation
// fallback remains.
func TestLookaheadPFCWidened(t *testing.T) {
	tree := topo.NewFatTree(4)
	cfg := testConfig()
	cfg.PFC = true
	assign, used := topo.PartitionNodes(tree, 2)
	engs := make([]*sim.Engine, used)
	for i := range engs {
		engs[i] = sim.NewEngine()
	}
	net := NewPartitioned(engs, assign, tree, cfg)
	want, cut := analyticLookahead(tree, assign, cfg)
	if !cut {
		t.Fatal("no cut links in a multi-shard partitioning")
	}
	if got := net.Lookahead(); got != want {
		t.Errorf("PFC Lookahead() = %d, want analytic minimum %d", got, want)
	}
	if got := net.Lookahead(); got <= cfg.Prop {
		t.Errorf("PFC Lookahead() = %d not widened past bare propagation %d", got, cfg.Prop)
	}
}

// TestLookaheadSingleShard: with no cut links the window width is
// bounded only by the canonical slack, and the slack itself is
// partitioning-independent.
func TestLookaheadSingleShard(t *testing.T) {
	tree := topo.NewFatTree(4)
	cfg := testConfig()
	net := New(sim.NewEngine(), tree, cfg)
	if net.Lookahead() != net.WindowSlack() {
		t.Errorf("single-shard Lookahead() = %d, want WindowSlack() %d", net.Lookahead(), net.WindowSlack())
	}
	assign, used := topo.PartitionNodes(tree, 4)
	engs := make([]*sim.Engine, used)
	for i := range engs {
		engs[i] = sim.NewEngine()
	}
	sharded := NewPartitioned(engs, assign, tree, cfg)
	if sharded.WindowSlack() != net.WindowSlack() {
		t.Errorf("WindowSlack differs across partitionings: %d vs %d", sharded.WindowSlack(), net.WindowSlack())
	}
}
