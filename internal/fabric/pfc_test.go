package fabric

import (
	"testing"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// TestPFCHeadOfLineBlocking demonstrates the §2.2 pathology the paper is
// built around. Dumbbell, hosts 0..2 left, 3..5 right. Hosts 0, 4 and 5
// converge on host 3 (3:1 overload), so the right switch's input from the
// shared link fills and PFC pauses the shared link itself. A victim flow
// from host 1 to the completely idle host 4's receive side must cross
// that paused link: its completion time balloons compared to running
// without the hotspot — head-of-line blocking by traffic to a different
// destination.
func TestPFCHeadOfLineBlocking(t *testing.T) {
	victimFCT := func(hotspot bool) (sim.Time, Stats) {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.PFC = true
		net := New(eng, topo.NewDumbbell(3), cfg)

		if hotspot {
			net.NIC(3).AttachSink(1, sinkFunc(func(*packet.Packet, sim.Time) {}))
			net.NIC(3).AttachSink(2, sinkFunc(func(*packet.Packet, sim.Time) {}))
			net.NIC(3).AttachSink(3, sinkFunc(func(*packet.Packet, sim.Time) {}))
			net.NIC(0).AttachSource(newBlaster(1, 0, 3, 3000, cfg.MTU))
			net.NIC(4).AttachSource(newBlaster(2, 4, 3, 3000, cfg.MTU))
			net.NIC(5).AttachSource(newBlaster(3, 5, 3, 3000, cfg.MTU))
		}

		// Victim: host 1 → host 4 (host 4's receive path is idle).
		var done sim.Time
		net.NIC(4).AttachSink(9, sinkFunc(func(p *packet.Packet, now sim.Time) {
			if p.Last {
				done = now
			}
		}))
		start := sim.Time(100 * sim.Microsecond)
		eng.Schedule(start, func() {
			net.NIC(1).AttachSource(newBlaster(9, 1, 4, 50, cfg.MTU))
		})
		eng.Run()
		if done == 0 {
			t.Fatal("victim flow never completed")
		}
		return done - start, net.Stats()
	}

	blocked, stats := victimFCT(true)
	clean, _ := victimFCT(false)
	if stats.PauseFrames == 0 {
		t.Fatal("hotspot generated no pauses; test setup broken")
	}
	// The victim's only contention is the shared link, which PFC keeps
	// pausing on the hotspot's behalf; its completion time should grow
	// well beyond fair sharing.
	if blocked < clean*3/2 {
		t.Errorf("victim FCT with hotspot %v vs clean %v: expected head-of-line blocking",
			sim.Duration(blocked), sim.Duration(clean))
	}
	if stats.Drops != 0 {
		t.Errorf("drops = %d under PFC", stats.Drops)
	}
}

// TestPFCCascadesUpstream verifies pause propagation: with sustained
// overload, pauses are not confined to the edge switch but propagate to
// the upstream switch's output as well (congestion spreading).
func TestPFCCascadesUpstream(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.PFC = true
	net := New(eng, topo.NewDumbbell(3), cfg)

	net.NIC(3).AttachSink(1, sinkFunc(func(*packet.Packet, sim.Time) {}))
	net.NIC(3).AttachSink(2, sinkFunc(func(*packet.Packet, sim.Time) {}))
	net.NIC(4).AttachSink(3, sinkFunc(func(*packet.Packet, sim.Time) {}))
	net.NIC(0).AttachSource(newBlaster(1, 0, 3, 4000, cfg.MTU))
	net.NIC(1).AttachSource(newBlaster(2, 1, 3, 4000, cfg.MTU))
	net.NIC(2).AttachSource(newBlaster(3, 2, 4, 4000, cfg.MTU))
	eng.Run()

	// 2:1 overload at host 3 for ~1.7 ms of traffic against a 240 KB
	// buffer: the right switch must pause the left switch (shared link),
	// and the left switch must in turn pause the sending hosts.
	if net.Stats().PauseFrames < 4 {
		t.Errorf("pause frames = %d; expected a cascade", net.Stats().PauseFrames)
	}
	if net.Stats().Drops != 0 {
		t.Errorf("drops = %d under PFC", net.Stats().Drops)
	}
}

// TestFabricDeterminism runs a full mixed workload twice and requires
// bit-identical statistics.
func TestFabricDeterminism(t *testing.T) {
	run := func() Stats {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.ECN = ECNConfig{Enabled: true, KMin: 10_000, KMax: 100_000, PMax: 0.5}
		cfg.Seed = 99
		net := New(eng, topo.NewFatTree(4), cfg)
		for f := packet.FlowID(1); f <= 10; f++ {
			src := packet.NodeID(int(f) % 16)
			dst := packet.NodeID((int(f) + 7) % 16)
			if src == dst {
				dst = (dst + 1) % 16
			}
			net.NIC(dst).AttachSink(f, sinkFunc(func(*packet.Packet, sim.Time) {}))
			src2 := src
			b := &ectSource{newBlaster(f, src2, dst, 500, cfg.MTU)}
			net.NIC(src).AttachSource(b)
		}
		eng.Run()
		return net.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("fabric nondeterministic:\n%+v\n%+v", a, b)
	}
}

// TestPFCThresholdRespectsHeadroom floods one port and confirms the
// buffer never exceeds its configured size (the headroom absorbs all
// in-flight data after X-OFF).
func TestPFCHeadroomSufficient(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.PFC = true
	cfg.PFCHeadroom = BDPBytes(cfg.Rate, cfg.Prop, 1) + 3*(cfg.MTU+packet.DataHeader)
	net := New(eng, topo.NewStar(5), cfg)

	for f := packet.FlowID(1); f <= 4; f++ {
		net.NIC(4).AttachSink(f, sinkFunc(func(*packet.Packet, sim.Time) {}))
	}
	for h := 0; h < 4; h++ {
		net.NIC(packet.NodeID(h)).AttachSource(newBlaster(packet.FlowID(h+1), packet.NodeID(h), 4, 2000, cfg.MTU))
	}
	eng.Run()
	if net.Stats().Drops != 0 {
		t.Errorf("4:1 overload dropped %d packets despite PFC", net.Stats().Drops)
	}
	if net.Stats().Delivered != 8000 {
		t.Errorf("delivered %d, want 8000", net.Stats().Delivered)
	}
}

// TestSprayReordersWithinFlow verifies per-packet multipathing: packets
// of one flow take different equal-cost paths, arriving out of order —
// the reordering §7 discusses.
func TestSprayReordersWithinFlow(t *testing.T) {
	outOfOrder := func(spray bool) int {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Spray = spray
		net := New(eng, topo.NewFatTree(4), cfg)
		// Cross-pod flow with background traffic loading the equal-cost
		// paths unevenly — queueing differentials are what turn
		// per-packet spraying into reordering.
		var prev packet.PSN
		ooo := 0
		first := true
		net.NIC(15).AttachSink(1, sinkFunc(func(p *packet.Packet, _ sim.Time) {
			if !first && p.PSN < prev {
				ooo++
			}
			prev = p.PSN
			first = false
		}))
		net.NIC(14).AttachSink(2, sinkFunc(func(*packet.Packet, sim.Time) {}))
		net.NIC(13).AttachSink(3, sinkFunc(func(*packet.Packet, sim.Time) {}))
		net.NIC(0).AttachSource(newBlaster(1, 0, 15, 500, cfg.MTU))
		net.NIC(1).AttachSource(newBlaster(2, 1, 14, 800, cfg.MTU))
		net.NIC(2).AttachSource(newBlaster(3, 2, 13, 800, cfg.MTU))
		eng.Run()
		return ooo
	}
	if got := outOfOrder(false); got != 0 {
		t.Errorf("flow-hash ECMP reordered %d packets", got)
	}
	if got := outOfOrder(true); got == 0 {
		t.Error("spraying produced no reordering on a multi-path topology")
	}
}

// TestSharedBufferAbsorbsBursts verifies the shared-buffer mode: a burst
// that overflows one partitioned input port fits in the shared pool.
func TestSharedBufferAbsorbsBursts(t *testing.T) {
	drops := func(shared bool) uint64 {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.SharedBuffer = shared
		cfg.BufferBytes = 30_000 // tiny per-port budget
		net := New(eng, topo.NewStar(5), cfg)
		for f := packet.FlowID(1); f <= 4; f++ {
			net.NIC(4).AttachSink(f, sinkFunc(func(*packet.Packet, sim.Time) {}))
		}
		// One host bursts hard into the shared switch; with partitioned
		// buffers its single input port overflows, while the shared pool
		// (5 ports x 30 KB) absorbs it.
		net.NIC(0).AttachSource(newBlaster(1, 0, 4, 2000, cfg.MTU))
		net.NIC(1).AttachSource(newBlaster(2, 1, 4, 2000, cfg.MTU))
		eng.Run()
		return net.Stats().Drops
	}
	part := drops(false)
	shared := drops(true)
	if part == 0 {
		t.Fatal("partitioned tiny buffer did not overflow; test setup broken")
	}
	if shared >= part {
		t.Errorf("shared buffer drops %d !< partitioned %d", shared, part)
	}
}
