package fabric

import "github.com/irnsim/irn/internal/packet"

// pktQueue is a FIFO ring of packets with O(1) push/pop and without
// unbounded backing-array growth. Virtual output queues are long-lived and
// churn millions of packets, so popping by re-slicing (which pins the
// backing array) is not acceptable. The ring's capacity is always a power
// of two so head/tail indexing is a bitmask — on the per-packet path that
// beats both the old compacting copy and an integer modulo.
type pktQueue struct {
	buf   []*packet.Packet // ring storage; len(buf) is 0 or a power of two
	head  int              // index of the first packet
	n     int              // packets queued
	bytes int
}

// queueMinCap is the capacity a queue starts from (and the floor below
// which pop never shrinks it): large enough that steady-state depths never
// realloc, small enough that a fat-tree's thousands of VOQs stay cheap.
const queueMinCap = 64

// shrinkMinCap is the capacity above which pop considers shrinking a
// mostly-empty queue, and the capacity a shrunk queue restarts from.
const shrinkMinCap = 1024

// push appends a packet.
func (q *pktQueue) push(p *packet.Packet) {
	if q.n == len(q.buf) {
		q.regrow(max(queueMinCap, 2*len(q.buf)))
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
	q.bytes += p.Wire
}

// pop removes and returns the packet at the head, or nil if empty.
func (q *pktQueue) pop() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.bytes -= p.Wire
	// A ring that absorbed an incast burst would otherwise pin its peak
	// footprint for the rest of the run (across every VOQ of every
	// switch). Once capacity greatly exceeds the live count, reallocate
	// small and let the burst-sized array go to GC.
	if len(q.buf) > shrinkMinCap && len(q.buf) > 4*q.n {
		q.regrow(max(ceilPow2(q.n), shrinkMinCap))
	}
	return p
}

// regrow moves the ring into a fresh power-of-two array of size newCap.
func (q *pktQueue) regrow(newCap int) {
	grown := make([]*packet.Packet, newCap)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		grown[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = grown
	q.head = 0
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// peek returns the head packet without removing it.
func (q *pktQueue) peek() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// len returns the number of queued packets.
func (q *pktQueue) len() int { return q.n }

// empty reports whether the queue holds no packets.
func (q *pktQueue) empty() bool { return q.n == 0 }

// reset empties the queue for a new run, dropping packet references (the
// packets belong to the previous trial) but keeping the ring array warm.
func (q *pktQueue) reset() {
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&mask] = nil
	}
	q.head, q.n, q.bytes = 0, 0, 0
}
