package fabric

import "github.com/irnsim/irn/internal/packet"

// pktQueue is a FIFO of packets with O(1) amortized push/pop and without
// unbounded backing-array growth. Virtual output queues are long-lived and
// churn millions of packets, so popping by re-slicing (which pins the
// backing array) is not acceptable.
type pktQueue struct {
	buf   []*packet.Packet
	head  int
	bytes int
}

// push appends a packet.
func (q *pktQueue) push(p *packet.Packet) {
	q.buf = append(q.buf, p)
	q.bytes += p.Wire
}

// pop removes and returns the packet at the head, or nil if empty.
func (q *pktQueue) pop() *packet.Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head++
	q.bytes -= p.Wire
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
		// In-place compaction pins the backing array at its high-water
		// capacity forever: one incast burst through a VOQ would hold its
		// peak footprint for the rest of the run (across every VOQ of
		// every switch). Once capacity greatly exceeds the live length,
		// reallocate small and let the burst-sized array go to GC.
		if cap(q.buf) > shrinkMinCap && cap(q.buf) > 4*n {
			shrunk := make([]*packet.Packet, n, max(n, shrinkMinCap))
			copy(shrunk, q.buf)
			q.buf = shrunk
		}
	}
	return p
}

// shrinkMinCap is both the capacity floor below which pop never shrinks a
// queue (avoiding realloc churn at normal depths) and the capacity a
// shrunk queue restarts from.
const shrinkMinCap = 1024

// peek returns the head packet without removing it.
func (q *pktQueue) peek() *packet.Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	return q.buf[q.head]
}

// len returns the number of queued packets.
func (q *pktQueue) len() int { return len(q.buf) - q.head }

// empty reports whether the queue holds no packets.
func (q *pktQueue) empty() bool { return q.head >= len(q.buf) }
