// Package cc implements the congestion-control schemes the paper layers
// over IRN and RoCE: DCQCN (rate-based, ECN/CNP-driven) and Timely
// (rate-based, RTT-gradient-driven) from §4.2.4, plus the window-based
// TCP-AIMD and DCTCP variants of §4.4.4.
//
// All controllers satisfy transport.Controller. Rate-based controllers
// express their decisions as per-packet pacing delays; window-based ones
// as an in-flight packet cap. Flows start at line rate in every scheme,
// matching §4.1: "For fair comparison with PFC-based proposals, the flow
// starts at line-rate for all cases."
package cc

import (
	"github.com/irnsim/irn/internal/sim"
)

// rateToDelay converts a rate in Gbps to the pacing delay for wire bytes.
func rateToDelay(wire int, gbps float64) sim.Duration {
	if gbps <= 0 {
		return sim.Duration(1<<62 - 1)
	}
	return sim.Duration(float64(wire) * 8000.0 / gbps) // ps
}

// clamp bounds a rate to [min, max] Gbps.
func clamp(r, min, max float64) float64 {
	if r < min {
		return min
	}
	if r > max {
		return max
	}
	return r
}

// CNPGenerator implements the receiver half of DCQCN: when CE-marked data
// packets arrive, it emits at most one congestion notification packet per
// flow per MinInterval (50 µs on ConnectX-4).
type CNPGenerator struct {
	MinInterval sim.Duration
	last        sim.Time
	armed       bool
}

// NewCNPGenerator returns a generator with the ConnectX-4 default 50 µs
// interval.
func NewCNPGenerator() *CNPGenerator {
	return &CNPGenerator{MinInterval: 50 * sim.Microsecond}
}

// OnMarked reports whether a CNP should be sent for a CE-marked arrival
// at time now.
func (g *CNPGenerator) OnMarked(now sim.Time) bool {
	if g.armed && now.Sub(g.last) < g.MinInterval {
		return false
	}
	g.last = now
	g.armed = true
	return true
}
