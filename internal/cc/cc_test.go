package cc

import (
	"testing"

	"github.com/irnsim/irn/internal/sim"
)

func TestRateToDelay(t *testing.T) {
	// 1000 bytes at 40 Gbps = 200 ns = 200_000 ps.
	if d := rateToDelay(1000, 40); d != 200_000 {
		t.Errorf("delay = %d ps, want 200000", int64(d))
	}
	// Zero/negative rate → effectively infinite.
	if d := rateToDelay(1000, 0); d < sim.Duration(1)<<60 {
		t.Errorf("zero rate delay too small: %d", int64(d))
	}
}

func TestCNPGeneratorRateLimit(t *testing.T) {
	g := NewCNPGenerator()
	if !g.OnMarked(0) {
		t.Fatal("first mark must emit a CNP")
	}
	if g.OnMarked(sim.Time(10 * sim.Microsecond)) {
		t.Error("CNP within 50us must be suppressed")
	}
	if !g.OnMarked(sim.Time(60 * sim.Microsecond)) {
		t.Error("CNP after 50us must be emitted")
	}
}

func TestTimelyStartsAtLineRate(t *testing.T) {
	cfg := DefaultTimelyConfig(40, 24*sim.Microsecond)
	tm := NewTimely(cfg)
	if tm.RateGbps() != 40 {
		t.Errorf("initial rate = %v", tm.RateGbps())
	}
	if tm.WindowPackets() != 0 {
		t.Error("Timely must not impose a window")
	}
}

func TestTimelyDecreasesOnRisingRTT(t *testing.T) {
	cfg := DefaultTimelyConfig(40, 24*sim.Microsecond)
	tm := NewTimely(cfg)
	// Feed steadily rising RTT samples between TLow and THigh: positive
	// gradient → multiplicative decrease.
	rtt := 100 * sim.Microsecond
	for i := 0; i < 20; i++ {
		tm.OnAck(0, rtt, 1, false)
		rtt += 20 * sim.Microsecond
		if rtt > 450*sim.Microsecond {
			rtt = 450 * sim.Microsecond
		}
	}
	if tm.RateGbps() >= 40 {
		t.Errorf("rate did not decrease: %v", tm.RateGbps())
	}
}

func TestTimelyIncreasesOnLowRTT(t *testing.T) {
	cfg := DefaultTimelyConfig(40, 24*sim.Microsecond)
	tm := NewTimely(cfg)
	// Push the rate down first.
	for i := 0; i < 30; i++ {
		tm.OnAck(0, sim.Duration(100+i*30)*sim.Microsecond, 1, false)
	}
	low := tm.RateGbps()
	// RTT below TLow: additive increase regardless of gradient.
	for i := 0; i < 50; i++ {
		tm.OnAck(0, 30*sim.Microsecond, 1, false)
	}
	if tm.RateGbps() <= low {
		t.Errorf("rate did not recover: %v <= %v", tm.RateGbps(), low)
	}
}

func TestTimelyHAIKicksIn(t *testing.T) {
	cfg := DefaultTimelyConfig(40, 24*sim.Microsecond)
	cfg.AddStepGbps = 0.1
	tm := NewTimely(cfg)
	for i := 0; i < 40; i++ {
		tm.OnAck(0, sim.Duration(100+i*30)*sim.Microsecond, 1, false)
	}
	start := tm.RateGbps()
	// Flat RTT in the stable band → non-positive gradient. After
	// HAIAfter events, each step should be 5×AddStep.
	for i := 0; i < 4; i++ {
		tm.OnAck(0, 100*sim.Microsecond, 1, false)
	}
	base := tm.RateGbps()
	for i := 0; i < 10; i++ {
		tm.OnAck(0, 100*sim.Microsecond, 1, false)
	}
	haiGain := tm.RateGbps() - base
	if haiGain < 10*cfg.AddStepGbps*0.9 {
		t.Errorf("HAI gain %v over 10 events too small (start %v)", haiGain, start)
	}
}

func TestTimelyTHighAlwaysDecreases(t *testing.T) {
	cfg := DefaultTimelyConfig(40, 24*sim.Microsecond)
	tm := NewTimely(cfg)
	tm.OnAck(0, 100*sim.Microsecond, 1, false)
	// Even a falling RTT must decrease the rate when above THigh.
	tm.OnAck(0, 900*sim.Microsecond, 1, false)
	r1 := tm.RateGbps()
	tm.OnAck(0, 800*sim.Microsecond, 1, false)
	if tm.RateGbps() >= r1 {
		t.Errorf("rate above THigh must keep decreasing: %v >= %v", tm.RateGbps(), r1)
	}
}

func TestTimelyLossBackoff(t *testing.T) {
	cfg := DefaultTimelyConfig(40, 24*sim.Microsecond)
	tm := NewTimely(cfg)
	tm.OnLoss(0)
	if tm.RateGbps() != 40 {
		t.Error("backoff disabled: loss must not cut rate")
	}
	tm.LossBackoff = true
	tm.OnLoss(0)
	if tm.RateGbps() != 20 {
		t.Errorf("backoff enabled: rate = %v, want 20", tm.RateGbps())
	}
}

func TestDCQCNDecreaseOnCNP(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDCQCN(eng, nil, DefaultDCQCNConfig(40))
	if d.RateGbps() != 40 {
		t.Fatalf("initial rate = %v", d.RateGbps())
	}
	d.OnCNP(0)
	// α starts at 1 → first cut halves the rate.
	if d.RateGbps() != 20 {
		t.Errorf("rate after first CNP = %v, want 20", d.RateGbps())
	}
	if d.Decreases != 1 {
		t.Errorf("Decreases = %d", d.Decreases)
	}
	d.Stop()
}

func TestDCQCNAlphaDecays(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDCQCNConfig(40)
	d := NewDCQCN(eng, nil, cfg)
	d.OnCNP(0)
	a0 := d.Alpha()
	// Run the engine forward ~10 alpha periods with no CNPs.
	eng.RunUntil(sim.Time(10 * cfg.AlphaTimer))
	if d.Alpha() >= a0 {
		t.Errorf("alpha did not decay: %v >= %v", d.Alpha(), a0)
	}
	d.Stop()
}

func TestDCQCNRecoversViaTimer(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDCQCNConfig(40)
	d := NewDCQCN(eng, nil, cfg)
	d.OnCNP(0)
	cut := d.RateGbps()
	// Timer-driven fast recovery should move rc halfway back to rt
	// repeatedly: after a few periods the rate approaches the target.
	eng.RunUntil(sim.Time(4 * cfg.IncreaseTimer))
	if d.RateGbps() <= cut {
		t.Errorf("rate did not recover: %v <= %v", d.RateGbps(), cut)
	}
	d.Stop()
}

func TestDCQCNByteCounterIncrease(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDCQCNConfig(40)
	cfg.ByteCounter = 10_000
	d := NewDCQCN(eng, nil, cfg)
	d.OnCNP(0)
	cut := d.RateGbps()
	for i := 0; i < 20; i++ {
		d.OnSendBytes(1000)
	}
	if d.RateGbps() <= cut {
		t.Errorf("byte counter did not drive recovery: %v", d.RateGbps())
	}
	d.Stop()
}

func TestDCQCNHyperIncreaseEngages(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDCQCNConfig(40)
	cfg.ByteCounter = 1000
	d := NewDCQCN(eng, nil, cfg)
	d.OnCNP(0)
	// Drive both byte and timer stages past F.
	for i := 0; i < cfg.F+3; i++ {
		d.OnSendBytes(1000)
	}
	eng.RunUntil(sim.Time(sim.Duration(cfg.F+3) * cfg.IncreaseTimer))
	r := d.RateGbps()
	for i := 0; i < 5; i++ {
		d.OnSendBytes(1000)
	}
	gain := d.RateGbps() - r
	if gain <= 0 {
		t.Errorf("hyper increase did not raise rate (gain %v)", gain)
	}
	d.Stop()
}

func TestAIMD(t *testing.T) {
	a := NewAIMD(100)
	if a.WindowPackets() != 100 {
		t.Fatalf("initial window = %d", a.WindowPackets())
	}
	// ~100 acked packets ≈ +1 window.
	for i := 0; i < 100; i++ {
		a.OnAck(0, 0, 1, false)
	}
	if w := a.WindowPackets(); w < 100 || w > 102 {
		t.Errorf("window after one RTT of acks = %d, want ~101", w)
	}
	a.OnLoss(0)
	if w := a.WindowPackets(); w > 51 {
		t.Errorf("window after loss = %d, want ~halved", w)
	}
	for i := 0; i < 1000; i++ {
		a.OnLoss(0)
	}
	if a.WindowPackets() < 1 {
		t.Error("window must not fall below 1")
	}
	if a.SendDelay(1000) != 0 {
		t.Error("AIMD must not pace")
	}
}

func TestAIMDECNEchoActsAsLoss(t *testing.T) {
	a := NewAIMD(64)
	a.OnAck(0, 0, 1, true)
	if w := a.WindowPackets(); w != 32 {
		t.Errorf("window after ECN echo = %d, want 32", w)
	}
}

func TestDCTCPGentleDecrease(t *testing.T) {
	d := NewDCTCP(100)
	// One observation window with 50% marks: alpha ≈ g·0.5, cut is
	// gentler than halving.
	for i := 0; i < 100; i++ {
		d.OnAck(0, 0, 1, i%2 == 0)
	}
	w := d.WindowPackets()
	if w <= 50 || w >= 100 {
		t.Errorf("DCTCP window = %d, want gentle cut between 50 and 100", w)
	}
	if d.Alpha() <= 0 {
		t.Error("alpha should be positive after marks")
	}
}

func TestDCTCPGrowsWithoutMarks(t *testing.T) {
	d := NewDCTCP(10)
	for i := 0; i < 100; i++ {
		d.OnAck(0, 0, 1, false)
	}
	if d.WindowPackets() <= 10 {
		t.Errorf("window did not grow: %d", d.WindowPackets())
	}
	d.OnLoss(0)
	if d.WindowPackets() > 10 {
		t.Errorf("loss must halve the window: %d", d.WindowPackets())
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 10) != 5 || clamp(0, 1, 10) != 1 || clamp(20, 1, 10) != 10 {
		t.Error("clamp broken")
	}
}
