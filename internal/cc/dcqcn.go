package cc

import (
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// DCQCNConfig holds the DCQCN reaction-point parameters (Zhu et al.,
// SIGCOMM 2015), with ConnectX-4-style defaults. The simulator in the IRN
// paper "implements DCQCN as implemented in the Mellanox ConnectX-4 RoCE
// NIC".
type DCQCNConfig struct {
	LineRateGbps float64
	MinRateGbps  float64
	// G is the α EWMA gain g (1/256).
	G float64
	// AlphaTimer is the α update period when no CNP arrives (55 µs).
	AlphaTimer sim.Duration
	// IncreaseTimer is the rate-increase timer period.
	IncreaseTimer sim.Duration
	// ByteCounter is the rate-increase byte threshold (10 MB).
	ByteCounter int
	// F is the number of fast-recovery stages (5).
	F int
	// RAIGbps is the additive-increase step.
	RAIGbps float64
	// RHAIGbps is the hyper-increase step.
	RHAIGbps float64
}

// DefaultDCQCNConfig returns defaults scaled to the line rate.
func DefaultDCQCNConfig(lineGbps float64) DCQCNConfig {
	return DCQCNConfig{
		LineRateGbps:  lineGbps,
		MinRateGbps:   0.01,
		G:             1.0 / 256.0,
		AlphaTimer:    55 * sim.Microsecond,
		IncreaseTimer: 300 * sim.Microsecond,
		ByteCounter:   10 << 20,
		F:             5,
		RAIGbps:       lineGbps / 1000, // 40 Mbps at 40G
		RHAIGbps:      lineGbps / 100,  // 400 Mbps at 40G
	}
}

// DCQCN is the reaction-point state machine: multiplicative decrease on
// CNP arrival with an EWMA-estimated congestion level α, and staged rate
// recovery (fast recovery → additive increase → hyper increase) driven by
// a timer and a byte counter.
type DCQCN struct {
	cfg DCQCNConfig
	eng *sim.Engine

	rc    float64 // current rate, Gbps
	rt    float64 // target rate, Gbps
	alpha float64

	bytesSinceUp int
	timerStage   int // timer cycles since last decrease
	byteStage    int // byte-counter cycles since last decrease

	alphaTimer *sim.Timer
	incTimer   *sim.Timer

	// Decreases counts CNP-triggered rate cuts (diagnostics).
	Decreases uint64
}

// DCQCN sim.Handler event kinds: the two reaction-point timers.
const (
	dcqcnAlpha uint8 = iota // α-decay period elapsed without a CNP
	dcqcnIncrease
)

// NewDCQCN returns a controller starting at line rate. The engine powers
// the α-decay and rate-increase timers; clk is the owning host's rank
// clock (nil falls back to the engine clock), which keeps the timers'
// events in canonical order under sharded execution.
func NewDCQCN(eng *sim.Engine, clk *sim.Clock, cfg DCQCNConfig) *DCQCN {
	d := &DCQCN{
		cfg:   cfg,
		eng:   eng,
		rc:    cfg.LineRateGbps,
		rt:    cfg.LineRateGbps,
		alpha: 1,
	}
	d.alphaTimer = sim.NewHandlerTimer(eng, clk, d, dcqcnAlpha)
	d.incTimer = sim.NewHandlerTimer(eng, clk, d, dcqcnIncrease)
	d.alphaTimer.Arm(cfg.AlphaTimer)
	d.incTimer.Arm(cfg.IncreaseTimer)
	return d
}

// HandleEvent implements sim.Handler: timer dispatch.
func (d *DCQCN) HandleEvent(kind uint8, _ uint64) {
	if kind == dcqcnAlpha {
		d.alphaDecay()
	} else {
		d.timerIncrease()
	}
}

// RateGbps exposes the current rate.
func (d *DCQCN) RateGbps() float64 { return d.rc }

// Alpha exposes the congestion estimate for tests.
func (d *DCQCN) Alpha() float64 { return d.alpha }

// OnCNP implements transport.Controller: the rate decrease of the DCQCN
// reaction point.
func (d *DCQCN) OnCNP(sim.Time) {
	d.rt = d.rc
	d.rc = clamp(d.rc*(1-d.alpha/2), d.cfg.MinRateGbps, d.cfg.LineRateGbps)
	d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G
	d.timerStage = 0
	d.byteStage = 0
	d.bytesSinceUp = 0
	d.Decreases++
	d.alphaTimer.Arm(d.cfg.AlphaTimer)
	d.incTimer.Arm(d.cfg.IncreaseTimer)
}

// alphaDecay runs when AlphaTimer elapses with no CNP.
func (d *DCQCN) alphaDecay() {
	d.alpha = (1 - d.cfg.G) * d.alpha
	d.alphaTimer.Arm(d.cfg.AlphaTimer)
}

// timerIncrease runs on each IncreaseTimer expiry.
func (d *DCQCN) timerIncrease() {
	d.timerStage++
	d.increase()
	d.incTimer.Arm(d.cfg.IncreaseTimer)
}

// OnSendBytes advances the byte counter; senders call it per transmitted
// packet.
func (d *DCQCN) OnSendBytes(n int) {
	d.bytesSinceUp += n
	for d.bytesSinceUp >= d.cfg.ByteCounter {
		d.bytesSinceUp -= d.cfg.ByteCounter
		d.byteStage++
		d.increase()
	}
}

// increase applies one rate-increase event according to the stage the
// reaction point is in (DCQCN §5.2).
func (d *DCQCN) increase() {
	maxStage := d.timerStage
	if d.byteStage > maxStage {
		maxStage = d.byteStage
	}
	minStage := d.timerStage
	if d.byteStage < minStage {
		minStage = d.byteStage
	}
	switch {
	case maxStage <= d.cfg.F: // fast recovery
		// rc moves halfway back to rt; rt unchanged.
	case minStage > d.cfg.F: // hyper increase
		d.rt += d.cfg.RHAIGbps
	default: // additive increase
		d.rt += d.cfg.RAIGbps
	}
	d.rt = clamp(d.rt, d.cfg.MinRateGbps, d.cfg.LineRateGbps)
	d.rc = clamp((d.rt+d.rc)/2, d.cfg.MinRateGbps, d.cfg.LineRateGbps)
}

// OnAck implements transport.Controller. DCQCN ignores ACKs; the byte
// counter advances via OnSendBytes from SendDelay accounting.
func (d *DCQCN) OnAck(sim.Time, sim.Duration, int, bool) {}

// OnLoss implements transport.Controller. Losses are not a DCQCN signal;
// the go-back-N-with-backoff ablation (§4.3) found backoff did not help
// DCQCN, so this is a no-op.
func (d *DCQCN) OnLoss(sim.Time) {}

// SendDelay implements transport.Controller and drives the byte counter.
func (d *DCQCN) SendDelay(wire int) sim.Duration {
	d.OnSendBytes(wire)
	return rateToDelay(wire, d.rc)
}

// WindowPackets implements transport.Controller.
func (d *DCQCN) WindowPackets() int { return 0 }

// Stop cancels the controller's timers; call when the flow completes so
// the engine's event queue can drain.
func (d *DCQCN) Stop() {
	d.alphaTimer.Cancel()
	d.incTimer.Cancel()
}

var _ transport.Controller = (*DCQCN)(nil)
