package cc

import (
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// TimelyConfig holds the TIMELY parameters (Mittal et al., SIGCOMM 2015).
// The IRN paper uses "the same congestion control parameters as specified
// in [29]".
type TimelyConfig struct {
	LineRateGbps float64
	MinRateGbps  float64
	// EWMA is the gradient filter weight α.
	EWMA float64
	// Beta is the multiplicative decrease factor β.
	Beta float64
	// AddStepGbps is the additive increase step δ.
	AddStepGbps float64
	// TLow: below this RTT, increase aggressively regardless of gradient.
	TLow sim.Duration
	// THigh: above this RTT, decrease regardless of gradient.
	THigh sim.Duration
	// MinRTT normalizes the gradient.
	MinRTT sim.Duration
	// HAIAfter is the number of consecutive non-positive gradients
	// before hyperactive increase engages (5 in the paper).
	HAIAfter int
}

// DefaultTimelyConfig returns the TIMELY paper's parameters scaled to the
// given line rate.
func DefaultTimelyConfig(lineGbps float64, minRTT sim.Duration) TimelyConfig {
	return TimelyConfig{
		LineRateGbps: lineGbps,
		MinRateGbps:  0.01,
		EWMA:         0.875,
		Beta:         0.8,
		AddStepGbps:  lineGbps / 1000, // δ = 10 Mbps at 10 Gbps, scaled
		TLow:         50 * sim.Microsecond,
		THigh:        500 * sim.Microsecond,
		MinRTT:       minRTT,
		HAIAfter:     5,
	}
}

// Timely is the RTT-gradient rate controller. It reacts to per-ACK RTT
// samples only — no ECN, no loss signal (losses surface indirectly via
// RTT inflation and, for go-back-N-with-backoff ablations, OnLoss).
type Timely struct {
	cfg TimelyConfig

	rate       float64 // Gbps
	prevRTT    sim.Duration
	rttDiff    float64 // EWMA of RTT differences, in ps
	negStreak  int     // consecutive completion events with gradient <= 0
	haveSample bool

	// LossBackoff, when true, halves the rate on loss events. Used by
	// the §4.3 go-back-N-with-backoff ablation.
	LossBackoff bool
}

// NewTimely returns a Timely controller starting at line rate.
func NewTimely(cfg TimelyConfig) *Timely {
	return &Timely{cfg: cfg, rate: cfg.LineRateGbps}
}

// RateGbps exposes the current rate for tests and diagnostics.
func (t *Timely) RateGbps() float64 { return t.rate }

// OnAck implements transport.Controller with TIMELY's Algorithm 1.
func (t *Timely) OnAck(_ sim.Time, rtt sim.Duration, _ int, _ bool) {
	if rtt <= 0 {
		return
	}
	if !t.haveSample {
		t.haveSample = true
		t.prevRTT = rtt
		return
	}
	newDiff := float64(rtt - t.prevRTT)
	t.prevRTT = rtt
	t.rttDiff = (1-t.cfg.EWMA)*t.rttDiff + t.cfg.EWMA*newDiff
	normGrad := t.rttDiff / float64(t.cfg.MinRTT)

	switch {
	case rtt < t.cfg.TLow:
		t.negStreak = 0
		t.rate += t.cfg.AddStepGbps
	case rtt > t.cfg.THigh:
		t.negStreak = 0
		t.rate *= 1 - t.cfg.Beta*(1-float64(t.cfg.THigh)/float64(rtt))
	case normGrad <= 0:
		t.negStreak++
		n := 1.0
		if t.negStreak >= t.cfg.HAIAfter {
			n = 5.0 // hyperactive increase
		}
		t.rate += n * t.cfg.AddStepGbps
	default:
		t.negStreak = 0
		t.rate *= 1 - t.cfg.Beta*normGrad
	}
	t.rate = clamp(t.rate, t.cfg.MinRateGbps, t.cfg.LineRateGbps)
}

// OnCNP implements transport.Controller (ignored: Timely is RTT-based).
func (t *Timely) OnCNP(sim.Time) {}

// OnLoss implements transport.Controller.
func (t *Timely) OnLoss(sim.Time) {
	if t.LossBackoff {
		t.rate = clamp(t.rate/2, t.cfg.MinRateGbps, t.cfg.LineRateGbps)
	}
}

// SendDelay implements transport.Controller.
func (t *Timely) SendDelay(wire int) sim.Duration { return rateToDelay(wire, t.rate) }

// WindowPackets implements transport.Controller.
func (t *Timely) WindowPackets() int { return 0 }

var _ transport.Controller = (*Timely)(nil)
