package cc

import (
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// AIMD is TCP's additive-increase/multiplicative-decrease window logic
// grafted onto IRN (§4.4.4, §4.6): the window grows by one packet per
// window's worth of ACKs and halves on loss. Following §4.6, the flow
// starts at line rate — the initial window is the BDP cap, with BDP-FC
// still bounding the total (IRN's cap is the stricter of the two).
type AIMD struct {
	cwnd    float64
	initial float64
	minW    float64

	// Losses counts multiplicative decreases (diagnostics).
	Losses uint64
}

// NewAIMD returns an AIMD window starting at initialPackets.
func NewAIMD(initialPackets int) *AIMD {
	if initialPackets < 1 {
		initialPackets = 1
	}
	return &AIMD{cwnd: float64(initialPackets), initial: float64(initialPackets), minW: 1}
}

// OnAck implements transport.Controller: +1 packet per RTT, approximated
// by cwnd += acked/cwnd.
func (a *AIMD) OnAck(_ sim.Time, _ sim.Duration, acked int, ecnEcho bool) {
	if ecnEcho {
		// Treat ECN echo like loss, once per window at most — callers
		// using pure AIMD typically run without ECN, so keep it simple
		// and halve.
		a.OnLoss(0)
		return
	}
	a.cwnd += float64(acked) / a.cwnd
}

// OnCNP implements transport.Controller.
func (a *AIMD) OnCNP(sim.Time) {}

// OnLoss implements transport.Controller.
func (a *AIMD) OnLoss(sim.Time) {
	a.Losses++
	a.cwnd /= 2
	if a.cwnd < a.minW {
		a.cwnd = a.minW
	}
}

// SendDelay implements transport.Controller.
func (a *AIMD) SendDelay(int) sim.Duration { return 0 }

// WindowPackets implements transport.Controller.
func (a *AIMD) WindowPackets() int { return int(a.cwnd) }

var _ transport.Controller = (*AIMD)(nil)

// DCTCP is the DCTCP window controller (Alizadeh et al., SIGCOMM 2010)
// used with IRN in §4.4.4: it estimates the fraction of ECN-marked ACKs
// per observation window and scales the congestion window by (1 − α/2)
// once per window when marks were seen.
type DCTCP struct {
	cwnd  float64
	alpha float64
	g     float64
	minW  float64

	ackedInWin  int
	markedInWin int
	winTarget   int // acks per observation window ≈ cwnd at window start
}

// NewDCTCP returns a DCTCP window starting at initialPackets with the
// standard g = 1/16 gain.
func NewDCTCP(initialPackets int) *DCTCP {
	if initialPackets < 1 {
		initialPackets = 1
	}
	d := &DCTCP{cwnd: float64(initialPackets), g: 1.0 / 16.0, minW: 1}
	d.winTarget = initialPackets
	return d
}

// Alpha exposes the marking estimate for tests.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements transport.Controller.
func (d *DCTCP) OnAck(_ sim.Time, _ sim.Duration, acked int, ecnEcho bool) {
	d.ackedInWin += acked
	if ecnEcho {
		d.markedInWin += acked
	}
	if d.ackedInWin >= d.winTarget {
		frac := float64(d.markedInWin) / float64(d.ackedInWin)
		d.alpha = (1-d.g)*d.alpha + d.g*frac
		if d.markedInWin > 0 {
			d.cwnd *= 1 - d.alpha/2
			if d.cwnd < d.minW {
				d.cwnd = d.minW
			}
		} else {
			d.cwnd++
		}
		d.ackedInWin = 0
		d.markedInWin = 0
		d.winTarget = int(d.cwnd)
		if d.winTarget < 1 {
			d.winTarget = 1
		}
	}
}

// OnCNP implements transport.Controller.
func (d *DCTCP) OnCNP(sim.Time) {}

// OnLoss implements transport.Controller: fall back to halving, as TCP
// does on loss.
func (d *DCTCP) OnLoss(sim.Time) {
	d.cwnd /= 2
	if d.cwnd < d.minW {
		d.cwnd = d.minW
	}
}

// SendDelay implements transport.Controller.
func (d *DCTCP) SendDelay(int) sim.Duration { return 0 }

// WindowPackets implements transport.Controller.
func (d *DCTCP) WindowPackets() int { return int(d.cwnd) }

var _ transport.Controller = (*DCTCP)(nil)
