package rocev2

import (
	"testing"

	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
)

func runOverFabric(t *testing.T, p Params, pfc bool, pkts int,
	lossFn func(*packet.Packet) bool) (*Sender, *Receiver, *fabric.Network, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.PFC = pfc
	cfg.LossInject = lossFn
	net := fabric.New(eng, topo.NewStar(2), cfg)

	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: pkts * p.MTU, Pkts: pkts}
	snd := NewSender(net.NIC(0), flow, p, nil)
	var doneAt sim.Time
	rcv := NewReceiver(net.NIC(1), flow, p, doneFn(func(now sim.Time) { doneAt = now }))
	net.NIC(1).AttachSink(flow.ID, rcv)
	net.NIC(0).AttachSource(snd)

	eng.RunUntil(sim.Time(200 * sim.Millisecond))
	return snd, rcv, net, doneAt
}

func TestLosslessTransfer(t *testing.T) {
	p := DefaultParams(1000)
	snd, rcv, _, doneAt := runOverFabric(t, p, false, 500, nil)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Retransmits != 0 {
		t.Errorf("retransmits = %d on lossless path", snd.Stats.Retransmits)
	}
	if rcv.Discards != 0 {
		t.Errorf("discards = %d", rcv.Discards)
	}
	if !snd.Done() {
		t.Error("sender should be done after completion ack")
	}
}

func TestNoPerPacketAcksByDefault(t *testing.T) {
	// The ACK-free baseline (§5.2): only the completion ACK flows back.
	p := DefaultParams(1000)
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	net := fabric.New(eng, topo.NewStar(2), cfg)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 100 * 1000, Pkts: 100}
	snd := NewSender(net.NIC(0), flow, p, nil)
	rcv := NewReceiver(net.NIC(1), flow, p, nil)
	net.NIC(1).AttachSink(flow.ID, rcv)
	net.NIC(0).AttachSource(snd)
	eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !flow.Finished {
		t.Fatal("did not finish")
	}
	if net.Stats().CtrlDeliv != 1 {
		t.Errorf("control packets delivered = %d, want 1 (completion only)", net.Stats().CtrlDeliv)
	}
}

func TestGoBackNOnLoss(t *testing.T) {
	p := DefaultParams(1000)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && pkt.PSN == 10 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd, rcv, _, doneAt := runOverFabric(t, p, false, 300, lossFn)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Retransmits < 20 {
		t.Errorf("go-back-N retransmits = %d; expected the whole in-flight window", snd.Stats.Retransmits)
	}
	if rcv.Nacks == 0 {
		t.Error("receiver never NACKed")
	}
	if rcv.TimeoutNacks != 0 {
		t.Error("NACK-driven recovery should not need the stall timer")
	}
}

func TestTailLossRecoversViaTimeoutNack(t *testing.T) {
	p := DefaultParams(1000)
	dropped := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeData && pkt.Last && !dropped {
			dropped = true
			return true
		}
		return false
	}
	_, rcv, _, doneAt := runOverFabric(t, p, false, 50, lossFn)
	if doneAt == 0 {
		t.Fatal("flow did not complete")
	}
	if rcv.TimeoutNacks == 0 {
		t.Error("tail loss must recover via the stall timer")
	}
	// RTOHigh-scale recovery: well above the lossless FCT, which is the
	// penalty §4.1 describes for RoCE's fixed high timeout.
	if doneAt < sim.Time(p.RTOHigh) {
		t.Errorf("FCT %v suspiciously fast for a timeout recovery", sim.Duration(doneAt))
	}
}

func TestTimeoutDisabledUnderPFC(t *testing.T) {
	p := DefaultParams(1000)
	p.DisableTimeout = true
	snd, rcv, net, doneAt := runOverFabric(t, p, true, 500, nil)
	if doneAt == 0 {
		t.Fatal("flow did not complete under PFC")
	}
	if rcv.TimeoutNacks != 0 {
		t.Errorf("timeout NACKs = %d with timeouts disabled", rcv.TimeoutNacks)
	}
	if snd.Stats.Retransmits != 0 {
		t.Errorf("retransmits = %d under PFC", snd.Stats.Retransmits)
	}
	if net.Stats().Drops != 0 {
		t.Errorf("drops = %d under PFC", net.Stats().Drops)
	}
}

func TestPerPacketAckMode(t *testing.T) {
	p := DefaultParams(1000)
	p.PerPacketAck = true
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	net := fabric.New(eng, topo.NewStar(2), cfg)
	flow := &transport.Flow{ID: 1, Src: 0, Dst: 1, Size: 100 * 1000, Pkts: 100}
	snd := NewSender(net.NIC(0), flow, p, nil)
	rcv := NewReceiver(net.NIC(1), flow, p, nil)
	net.NIC(1).AttachSink(flow.ID, rcv)
	net.NIC(0).AttachSource(snd)
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	if !flow.Finished {
		t.Fatal("did not finish")
	}
	if net.Stats().CtrlDeliv < 90 {
		t.Errorf("per-packet ACK mode delivered only %d control packets", net.Stats().CtrlDeliv)
	}
	_ = snd
}

func TestDuplicateAfterCompletionReAcks(t *testing.T) {
	// If the completion ACK is lost, the sender's next stall probe (here:
	// a duplicate triggered by the receiver's own timeout NACK) elicits a
	// fresh completion ACK. Simulate by dropping the first completion.
	p := DefaultParams(1000)
	droppedAck := false
	lossFn := func(pkt *packet.Packet) bool {
		if pkt.Type == packet.TypeAck && !droppedAck {
			droppedAck = true
			return true
		}
		return false
	}
	snd, _, _, doneAt := runOverFabric(t, p, false, 20, lossFn)
	if doneAt == 0 {
		t.Fatal("receiver never completed")
	}
	if !snd.Done() {
		t.Error("sender must eventually learn of completion despite the lost ACK")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, sim.Time) {
		p := DefaultParams(1000)
		rng := sim.NewRNG(3)
		lossFn := func(pkt *packet.Packet) bool {
			return pkt.Type == packet.TypeData && rng.Float64() < 0.01
		}
		snd, _, _, doneAt := runOverFabric(t, p, false, 400, lossFn)
		return snd.Stats.Sent, doneAt
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", s1, d1, s2, d2)
	}
}

// doneFn adapts a closure to transport.Completer, dropping the flow.
func doneFn(f func(now sim.Time)) transport.Completer {
	return transport.CompleterFunc(func(_ *transport.Flow, now sim.Time) { f(now) })
}
