// Package rocev2 models the transport of current RoCE NICs (§2.1): an
// Infiniband-style reliable-connected flow with go-back-N loss recovery —
// the receiver discards out-of-order packets and NACKs the expected
// sequence number; the sender rewinds and retransmits everything from
// there — no end-to-end flow control, and optional explicit congestion
// control (DCQCN, Timely).
//
// Following §5.2, the baseline models the extreme case of all Reads: no
// per-packet ACKs flow back for data (so RoCE pays no ACK bandwidth,
// unlike IRN whose results include that overhead). Loss recovery is
// receiver-driven, as it is for RDMA Reads, where the requester is the
// data sink: a gap triggers a NACK, and a stalled transfer triggers a
// timeout NACK that models the requester re-issuing the Read. The paper
// uses a fixed RTOHigh timeout when PFC is off and disables timeouts when
// PFC is on (§4.1); PerPacketAck exists for Timely, which needs RTT
// samples.
//
// RoCE + DCQCN with PFC disabled is exactly Resilient RoCE [33] (§4.5).
package rocev2

import (
	"github.com/irnsim/irn/internal/cc"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
)

// Params configures a RoCE sender/receiver pair.
type Params struct {
	// MTU is the payload bytes per packet.
	MTU int
	// RTOHigh is the fixed receiver-side timeout that re-requests a
	// stalled transfer (320 µs default, §4.1). Ignored when
	// DisableTimeout is set.
	RTOHigh sim.Duration
	// DisableTimeout turns timeouts off, "to prevent spurious
	// retransmissions" when PFC guarantees losslessness (§4.1).
	DisableTimeout bool
	// PerPacketAck makes the receiver acknowledge every in-order packet.
	// The ACK-free baseline models all-Reads (§5.2); Timely requires RTT
	// samples, so it runs with ACKs enabled.
	PerPacketAck bool
	// ECT marks data packets ECN-capable (enable with DCQCN).
	ECT bool
}

// DefaultParams returns the paper's RoCE configuration.
func DefaultParams(mtu int) Params {
	return Params{MTU: mtu, RTOHigh: 320 * sim.Microsecond}
}

// SenderStats counts sender events.
type SenderStats struct {
	Sent        uint64
	Retransmits uint64
	Nacks       uint64
}

// Sender is the RoCE go-back-N sender. It implements transport.Source.
type Sender struct {
	ep   transport.Endpoint
	pool *packet.Pool
	flow *transport.Flow
	p    Params
	cc   transport.Controller

	total   int
	cumAck  packet.PSN // highest in-order point reported by the receiver
	nextPSN packet.PSN
	highest packet.PSN // highest PSN ever sent (for retransmit accounting)

	paceUntil sim.Time
	done      bool
	// probe re-sends the final packet if the completion ACK never
	// arrives (it can only be lost when PFC is off).
	probe *sim.Timer

	Stats SenderStats
}

type stopper interface{ Stop() }

// NewSender builds a RoCE sender; ctrl may be nil.
func NewSender(ep transport.Endpoint, flow *transport.Flow, p Params, ctrl transport.Controller) *Sender {
	if ctrl == nil {
		ctrl = transport.None{}
	}
	if flow.Pkts == 0 {
		flow.Pkts = transport.NumPackets(flow.Size, p.MTU)
	}
	s := &Sender{ep: ep, pool: ep.Pool(), flow: flow, p: p, cc: ctrl, total: flow.Pkts}
	s.probe = sim.NewHandlerTimer(ep.Engine(), ep.Clock(), s, senderProbe)
	return s
}

// senderProbe is the Sender's only sim.Handler event kind: the completion
// probe timer.
const senderProbe uint8 = 0

// HandleEvent implements sim.Handler (the probe timer).
func (s *Sender) HandleEvent(uint8, uint64) { s.onProbe() }

// onProbe fires when the completion ACK has not arrived long after the
// last packet went out: rewind by one packet so the receiver re-announces
// completion (or NACKs its actual position).
func (s *Sender) onProbe() {
	if s.done || s.p.DisableTimeout {
		return
	}
	if s.nextPSN >= packet.PSN(s.total) && s.total > 0 {
		s.nextPSN = packet.PSN(s.total - 1)
		s.ep.Wake()
	}
}

// Flow implements transport.Source.
func (s *Sender) Flow() *transport.Flow { return s.flow }

// Done implements transport.Source.
func (s *Sender) Done() bool { return s.done }

// HasData implements transport.Source. RoCE has no transport window: the
// sender streams at the congestion-controlled rate until the message is
// sent, then idles awaiting the completion (or a NACK rewind).
func (s *Sender) HasData(now sim.Time) (bool, sim.Time) {
	if s.done {
		return false, 0
	}
	if now < s.paceUntil {
		return false, s.paceUntil
	}
	if s.nextPSN < packet.PSN(s.total) {
		if w := s.cc.WindowPackets(); w > 0 && int(s.nextPSN-s.cumAck) >= w {
			return false, 0
		}
		return true, 0
	}
	return false, 0
}

// NextPacket implements transport.Source.
func (s *Sender) NextPacket(now sim.Time) *packet.Packet {
	if s.done || s.nextPSN >= packet.PSN(s.total) {
		return nil
	}
	psn := s.nextPSN
	s.nextPSN++
	if psn < s.highest {
		s.Stats.Retransmits++
	} else {
		s.highest = psn + 1
	}
	payload := transport.PayloadOf(s.flow.Size, s.p.MTU, int(psn))
	pkt := s.pool.NewData(s.flow.ID, s.flow.Src, s.flow.Dst, psn, payload, int(psn) == s.total-1)
	pkt.ECT = s.p.ECT
	pkt.SentAt = now
	s.Stats.Sent++
	if d := s.cc.SendDelay(pkt.Wire); d > 0 {
		s.paceUntil = now.Add(d)
	}
	if s.nextPSN >= packet.PSN(s.total) && !s.p.DisableTimeout {
		s.probe.Arm(2 * s.p.RTOHigh)
	}
	return pkt
}

// HandleControl implements transport.Source.
func (s *Sender) HandleControl(pkt *packet.Packet, now sim.Time) {
	switch pkt.Type {
	case packet.TypeCNP:
		s.cc.OnCNP(now)
		return
	case packet.TypeAck:
		if pkt.AckedSentAt > 0 {
			newly := 0
			if pkt.CumAck > s.cumAck {
				newly = int(pkt.CumAck - s.cumAck)
			}
			s.cc.OnAck(now, now.Sub(pkt.AckedSentAt), newly, pkt.ECNEcho)
		}
		if pkt.CumAck > s.cumAck {
			s.cumAck = pkt.CumAck
		}
		if s.cumAck >= packet.PSN(s.total) {
			s.finish()
		}
		s.ep.Wake()
	case packet.TypeNack:
		s.Stats.Nacks++
		if pkt.CumAck > s.cumAck {
			s.cumAck = pkt.CumAck
		}
		s.cc.OnLoss(now)
		// Go-back-N: rewind to the receiver's expected sequence number
		// and retransmit everything after it.
		if pkt.CumAck < s.nextPSN {
			s.nextPSN = pkt.CumAck
		}
		s.ep.Wake()
	}
}

func (s *Sender) finish() {
	if s.done {
		return
	}
	s.done = true
	s.probe.Cancel()
	if st, ok := s.cc.(stopper); ok {
		st.Stop()
	}
	s.ep.Wake()
}

// Receiver is the RoCE receiver: strict in-order delivery. It implements
// transport.Sink and drives loss recovery (NACK on gap, timeout NACK on
// stall — the Read re-request).
type Receiver struct {
	ep   transport.Endpoint
	pool *packet.Pool
	flow *transport.Flow
	p    Params

	expected packet.PSN
	total    int

	nackedFor packet.PSN // expected value already NACKed this episode (+1; 0 = none)
	rto       *sim.Timer
	complete  bool
	done      transport.Completer
	cnp       *cc.CNPGenerator

	// Stats.
	Nacks, TimeoutNacks, Discards uint64
}

// NewReceiver builds a RoCE receiver. Its stall timer starts armed (the
// requester knows the transfer is outstanding).
func NewReceiver(ep transport.Endpoint, flow *transport.Flow, p Params, done transport.Completer) *Receiver {
	if flow.Pkts == 0 {
		flow.Pkts = transport.NumPackets(flow.Size, p.MTU)
	}
	r := &Receiver{
		ep:    ep,
		pool:  ep.Pool(),
		flow:  flow,
		p:     p,
		total: flow.Pkts,
		done:  done,
		cnp:   cc.NewCNPGenerator(),
	}
	r.rto = sim.NewHandlerTimer(ep.Engine(), ep.Clock(), r, receiverRTO)
	if !p.DisableTimeout {
		r.rto.Arm(p.RTOHigh)
	}
	return r
}

// receiverRTO is the Receiver's only sim.Handler event kind: the stall
// timer (the Read re-request).
const receiverRTO uint8 = 0

// HandleEvent implements sim.Handler (the stall timer).
func (r *Receiver) HandleEvent(uint8, uint64) { r.onTimeout() }

// Expected returns the next expected PSN.
func (r *Receiver) Expected() packet.PSN { return r.expected }

// HandleData implements transport.Sink.
func (r *Receiver) HandleData(pkt *packet.Packet, now sim.Time) {
	if pkt.CE && r.cnp.OnMarked(now) {
		r.ep.SendControl(r.pool.NewCNP(pkt.Flow, r.flow.Dst, r.flow.Src))
	}
	if !r.p.DisableTimeout && !r.complete {
		r.rto.Arm(r.p.RTOHigh) // any arrival is progress; reset the stall timer
	}

	switch {
	case pkt.PSN < r.expected:
		// Duplicate from a rewind that overshot. If we already finished,
		// re-announce completion so the sender can stop.
		if r.complete {
			r.sendCompletion(pkt)
		}

	case pkt.PSN == r.expected:
		r.expected++
		r.nackedFor = 0
		if r.p.PerPacketAck && !r.complete && r.expected < packet.PSN(r.total) {
			ack := r.pool.NewAck(r.flow.ID, r.flow.Dst, r.flow.Src, r.expected)
			ack.AckedSentAt = pkt.SentAt
			ack.ECNEcho = pkt.CE
			r.ep.SendControl(ack)
		}
		if int(r.expected) >= r.total {
			r.finish(pkt, now)
		}

	default:
		// Out of order: discard, NACK once per gap episode (§2.1).
		r.Discards++
		if r.nackedFor != r.expected+1 {
			r.nackedFor = r.expected + 1
			r.Nacks++
			n := r.pool.NewNack(r.flow.ID, r.flow.Dst, r.flow.Src, r.expected, pkt.PSN)
			n.AckedSentAt = pkt.SentAt
			r.ep.SendControl(n)
		}
	}
}

// onTimeout fires when the transfer stalls: model of the requester
// re-issuing the Read from its current offset (a go-back-N NACK).
func (r *Receiver) onTimeout() {
	if r.complete {
		return
	}
	r.TimeoutNacks++
	r.nackedFor = r.expected + 1
	r.ep.SendControl(r.pool.NewNack(r.flow.ID, r.flow.Dst, r.flow.Src, r.expected, r.expected))
	r.rto.Arm(r.p.RTOHigh)
}

// finish records completion and tells the sender.
func (r *Receiver) finish(last *packet.Packet, now sim.Time) {
	r.complete = true
	r.rto.Cancel()
	r.flow.Finished = true
	r.flow.Finish = now
	r.sendCompletion(last)
	if r.done != nil {
		r.done.FlowDone(r.flow, now)
	}
}

// sendCompletion acknowledges the whole message.
func (r *Receiver) sendCompletion(trigger *packet.Packet) {
	ack := r.pool.NewAck(r.flow.ID, r.flow.Dst, r.flow.Src, packet.PSN(r.total))
	ack.AckedSentAt = trigger.SentAt
	ack.ECNEcho = trigger.CE
	r.ep.SendControl(ack)
}
