// Package workload generates the traffic patterns of §4.1 and §4.4: flows
// with Poisson inter-arrival times whose sizes come from a realistic
// heavy-tailed distribution (50% single-packet RPCs of 32 B–1 KB, 35%
// mid-size 1 KB–200 KB, 15% large 200 KB–3 MB background/storage
// transfers, derived from [19]), a uniform 500 KB–5 MB alternative
// representing pure storage traffic, and the incast pattern of §4.4.3
// (a transfer striped across M senders toward one destination).
package workload

import (
	"math"
	"sort"

	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// SizeDist samples message sizes in bytes.
type SizeDist interface {
	// Sample draws one message size.
	Sample(rng *sim.RNG) int
	// Mean returns the expected message size (analytic).
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// logUniform draws from [lo, hi] with density ∝ 1/x, the standard model
// for flow sizes within a band.
func logUniform(rng *sim.RNG, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// logUniformMean is the analytic mean (b−a)/ln(b/a).
func logUniformMean(a, b float64) float64 {
	if a == b {
		return a
	}
	return (b - a) / math.Log(b/a)
}

// band is one segment of a piecewise distribution.
type band struct {
	p      float64 // probability mass
	lo, hi float64 // size range in bytes
}

// HeavyTailed is the paper's default workload: "Most flows are small (50%
// of the flows are single packet messages with sizes ranging between 32
// bytes-1KB...), and most of the bytes are in large flows (15% of the
// flows are between 200KB-3MB)". The remaining 35% occupy the middle.
type HeavyTailed struct {
	bands []band
}

// NewHeavyTailed returns the default heavy-tailed distribution.
func NewHeavyTailed() *HeavyTailed {
	return &HeavyTailed{bands: []band{
		{0.50, 32, 1_000},
		{0.35, 1_000, 200_000},
		{0.15, 200_000, 3_000_000},
	}}
}

// Sample implements SizeDist.
func (h *HeavyTailed) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	acc := 0.0
	for _, b := range h.bands {
		acc += b.p
		if u < acc {
			return int(logUniform(rng, b.lo, b.hi))
		}
	}
	last := h.bands[len(h.bands)-1]
	return int(logUniform(rng, last.lo, last.hi))
}

// Mean implements SizeDist.
func (h *HeavyTailed) Mean() float64 {
	m := 0.0
	for _, b := range h.bands {
		m += b.p * logUniformMean(b.lo, b.hi)
	}
	return m
}

// Name implements SizeDist.
func (h *HeavyTailed) Name() string { return "heavy-tailed(32B-3MB)" }

// Uniform is the §4.4 alternative: sizes uniform in [Lo, Hi] bytes
// (500 KB–5 MB for the storage/background workload).
type Uniform struct {
	Lo, Hi int
}

// NewUniform returns the paper's uniform storage workload.
func NewUniform() *Uniform { return &Uniform{Lo: 500_000, Hi: 5_000_000} }

// Sample implements SizeDist.
func (u *Uniform) Sample(rng *sim.RNG) int {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Intn(u.Hi-u.Lo+1)
}

// Mean implements SizeDist.
func (u *Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// Name implements SizeDist.
func (u *Uniform) Name() string { return "uniform(500KB-5MB)" }

// Empirical is a piecewise-linear inverse-CDF distribution defined by
// measured (size, cumulative-probability) points — the form datacenter
// traffic studies publish their flow-size distributions in. Sampling
// draws u ~ U(0,1) and linearly interpolates the size between the two
// bracketing CDF points, so within each segment sizes are uniform and
// the analytic mean is the trapezoid sum Σ Δp·(sᵢ+sᵢ₊₁)/2.
type Empirical struct {
	name string
	size []float64 // strictly increasing sizes in bytes
	cum  []float64 // cumulative probability at each size; cum[0]=0, last=1
}

// NewEmpirical builds a distribution from CDF points. The first point's
// probability must be 0 and the last 1, sizes strictly increasing.
func NewEmpirical(name string, pts [][2]float64) *Empirical {
	if len(pts) < 2 || pts[0][1] != 0 || pts[len(pts)-1][1] != 1 {
		panic("workload: empirical CDF must run from p=0 to p=1")
	}
	e := &Empirical{name: name}
	for i, p := range pts {
		if i > 0 && (p[0] <= pts[i-1][0] || p[1] < pts[i-1][1]) {
			panic("workload: empirical CDF points must be increasing")
		}
		e.size = append(e.size, p[0])
		e.cum = append(e.cum, p[1])
	}
	return e
}

// NewWebSearch returns the DCTCP-style web-search workload: a bimodal
// mix of short queries and multi-megabyte background flows (mean ≈ 1.7 MB).
func NewWebSearch() *Empirical {
	return NewEmpirical("websearch", [][2]float64{
		{100, 0}, {10_000, 0.15}, {20_000, 0.20}, {30_000, 0.30},
		{50_000, 0.40}, {80_000, 0.53}, {200_000, 0.60}, {1_000_000, 0.70},
		{2_000_000, 0.80}, {5_000_000, 0.90}, {10_000_000, 0.97},
		{30_000_000, 1},
	})
}

// NewHadoop returns the Facebook-Hadoop-style workload: dominated by
// sub-2KB RPCs with a thin multi-megabyte tail (mean ≈ 200 KB) — the
// figdc datacenter preset's default, light enough per flow that 10⁵
// flows stay tractable in a serial run.
func NewHadoop() *Empirical {
	return NewEmpirical("hadoop", [][2]float64{
		{130, 0}, {250, 0.20}, {600, 0.40}, {1_500, 0.60},
		{10_000, 0.70}, {50_000, 0.80}, {300_000, 0.90},
		{1_000_000, 0.96}, {5_000_000, 0.995}, {10_000_000, 1},
	})
}

// Sample implements SizeDist.
func (e *Empirical) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i == 0 {
		i = 1
	}
	if i >= len(e.cum) {
		i = len(e.cum) - 1
	}
	lo, hi := e.size[i-1], e.size[i]
	f := 1.0
	if e.cum[i] > e.cum[i-1] {
		f = (u - e.cum[i-1]) / (e.cum[i] - e.cum[i-1])
	}
	return int(lo + f*(hi-lo))
}

// Mean implements SizeDist (trapezoid sum over CDF segments).
func (e *Empirical) Mean() float64 {
	m := 0.0
	for i := 1; i < len(e.size); i++ {
		m += (e.cum[i] - e.cum[i-1]) * (e.size[i] + e.size[i-1]) / 2
	}
	return m
}

// Name implements SizeDist.
func (e *Empirical) Name() string { return "empirical(" + e.name + ")" }

// Fixed always returns the same size (microbenchmarks).
type Fixed int

// Sample implements SizeDist.
func (f Fixed) Sample(*sim.RNG) int { return int(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements SizeDist.
func (f Fixed) Name() string { return "fixed" }

// Spec describes one generated flow.
type Spec struct {
	Src, Dst packet.NodeID
	Size     int
	Start    sim.Time
}

// PoissonConfig drives Generate.
type PoissonConfig struct {
	Hosts int
	// Load is the target average utilization of host access links.
	Load float64
	// RatePsPerByte is the link rate (fabric.Rate).
	RatePsPerByte int64
	// MTU and HeaderBytes size the wire overhead included in the load
	// computation.
	MTU         int
	HeaderBytes int
	// NumFlows is how many flows to generate.
	NumFlows int
	// Dist samples flow sizes.
	Dist SizeDist
	// Seed makes the workload reproducible.
	Seed uint64
}

// meanWireBytes estimates the mean bytes-on-wire per flow, including
// per-packet headers.
func (c *PoissonConfig) meanWireBytes() float64 {
	mean := c.Dist.Mean()
	pkts := mean / float64(c.MTU)
	if pkts < 1 {
		pkts = 1
	}
	return mean + pkts*float64(c.HeaderBytes)
}

// ExpectedSpan returns the expected arrival span of the generated flow
// sequence: NumFlows times the mean Poisson inter-arrival gap. The span
// scales as 1/Load, which is the lever the endurance harness inverts to
// stretch a fixed flow budget across a target simulated horizon.
func (c *PoissonConfig) ExpectedSpan() sim.Duration {
	return sim.Duration(float64(c.NumFlows) * float64(c.RatePsPerByte) * c.meanWireBytes() / (float64(c.Hosts) * c.Load))
}

// Generate produces flows with Poisson inter-arrival times at the
// aggregate rate that hits the configured load, uniformly random sources
// and destinations (src ≠ dst), and sizes from the distribution.
func Generate(c PoissonConfig) []Spec {
	if c.Hosts < 2 || c.NumFlows <= 0 || c.Load <= 0 {
		panic("workload: bad Poisson config")
	}
	rng := sim.NewRNG(c.Seed ^ 0x9e3779b97f4a7c15)

	// Per-host injection rate in bytes per picosecond is load/rate.
	// Aggregate flow arrival rate: hosts·load/(rate·meanWire) flows/ps →
	// mean inter-arrival = rate·meanWire/(hosts·load).
	meanGap := float64(c.RatePsPerByte) * c.meanWireBytes() / (float64(c.Hosts) * c.Load)

	flows := make([]Spec, 0, c.NumFlows)
	t := 0.0
	for i := 0; i < c.NumFlows; i++ {
		t += rng.ExpFloat64() * meanGap
		src := rng.Intn(c.Hosts)
		dst := rng.Intn(c.Hosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, Spec{
			Src:   packet.NodeID(src),
			Dst:   packet.NodeID(dst),
			Size:  c.Dist.Sample(rng),
			Start: sim.Time(t),
		})
	}
	return flows
}

// Incast builds the §4.4.3 pattern: totalBytes striped evenly across m
// randomly chosen senders, all transmitting to one randomly chosen
// destination starting at time 0.
func Incast(hosts, m, totalBytes int, seed uint64) []Spec {
	if m < 1 || m >= hosts {
		panic("workload: incast fan-in must be in [1, hosts)")
	}
	rng := sim.NewRNG(seed ^ 0x1ca57)
	perm := rng.Perm(hosts)
	dst := packet.NodeID(perm[0])
	per := totalBytes / m
	flows := make([]Spec, 0, m)
	for i := 0; i < m; i++ {
		flows = append(flows, Spec{
			Src:   packet.NodeID(perm[i+1]),
			Dst:   dst,
			Size:  per,
			Start: 0,
		})
	}
	return flows
}
