package workload

import (
	"math"
	"testing"

	"github.com/irnsim/irn/internal/sim"
)

func TestHeavyTailedShape(t *testing.T) {
	d := NewHeavyTailed()
	rng := sim.NewRNG(1)
	const n = 200000
	var small, mid, large int
	sum := 0.0
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 32 || s > 3_000_000 {
			t.Fatalf("sample %d out of range", s)
		}
		switch {
		case s <= 1000:
			small++
		case s <= 200_000:
			mid++
		default:
			large++
		}
		sum += float64(s)
	}
	// §4.1: 50% single-packet (<=1KB), 15% in 200KB-3MB.
	if f := float64(small) / n; math.Abs(f-0.50) > 0.02 {
		t.Errorf("small fraction = %v, want ~0.50", f)
	}
	if f := float64(large) / n; math.Abs(f-0.15) > 0.02 {
		t.Errorf("large fraction = %v, want ~0.15", f)
	}
	// Empirical mean matches the analytic mean.
	if m := sum / n; math.Abs(m-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("empirical mean %v vs analytic %v", m, d.Mean())
	}
	// Most bytes come from large flows (the heavy tail).
	if d.Mean() < 100_000 {
		t.Errorf("mean %v suspiciously small", d.Mean())
	}
}

func TestUniformDist(t *testing.T) {
	d := NewUniform()
	rng := sim.NewRNG(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 500_000 || s > 5_000_000 {
			t.Fatalf("sample %d out of range", s)
		}
		sum += float64(s)
	}
	if m := sum / n; math.Abs(m-d.Mean())/d.Mean() > 0.02 {
		t.Errorf("mean %v vs %v", m, d.Mean())
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(4096)
	if d.Sample(nil) != 4096 || d.Mean() != 4096 {
		t.Error("Fixed broken")
	}
}

func TestGeneratePoissonLoad(t *testing.T) {
	c := PoissonConfig{
		Hosts:         54,
		Load:          0.7,
		RatePsPerByte: 200, // 40 Gbps
		MTU:           1000,
		HeaderBytes:   62,
		NumFlows:      20000,
		Dist:          NewHeavyTailed(),
		Seed:          7,
	}
	flows := Generate(c)
	if len(flows) != c.NumFlows {
		t.Fatalf("flows = %d", len(flows))
	}
	// Arrival times strictly increasing, src != dst, all in range.
	var last sim.Time
	totalBytes := 0.0
	for _, f := range flows {
		if f.Start < last {
			t.Fatal("arrivals not sorted")
		}
		last = f.Start
		if f.Src == f.Dst || int(f.Src) >= c.Hosts || int(f.Dst) >= c.Hosts {
			t.Fatalf("bad endpoints %v", f)
		}
		pkts := float64((f.Size + c.MTU - 1) / c.MTU)
		totalBytes += float64(f.Size) + pkts*float64(c.HeaderBytes)
	}
	// Achieved load over the generation horizon should approximate the
	// target: injected bytes / (hosts × capacity × horizon).
	horizon := float64(last)
	capacity := float64(c.Hosts) * horizon / float64(c.RatePsPerByte)
	load := totalBytes / capacity
	if math.Abs(load-0.7) > 0.07 {
		t.Errorf("achieved load %v, want ~0.7", load)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := PoissonConfig{
		Hosts: 10, Load: 0.5, RatePsPerByte: 200, MTU: 1000, HeaderBytes: 62,
		NumFlows: 100, Dist: NewHeavyTailed(), Seed: 42,
	}
	a := Generate(c)
	b := Generate(c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c.Seed = 43
	d := Generate(c)
	same := 0
	for i := range a {
		if a[i] == d[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Generate(PoissonConfig{Hosts: 1, NumFlows: 10, Load: 0.5})
}

func TestIncast(t *testing.T) {
	flows := Incast(54, 30, 150_000_000, 9)
	if len(flows) != 30 {
		t.Fatalf("flows = %d", len(flows))
	}
	dst := flows[0].Dst
	seen := map[int]bool{int(dst): true}
	for _, f := range flows {
		if f.Dst != dst {
			t.Error("incast must share one destination")
		}
		if f.Src == dst {
			t.Error("sender equals destination")
		}
		if seen[int(f.Src)] {
			t.Errorf("duplicate sender %d", f.Src)
		}
		seen[int(f.Src)] = true
		if f.Size != 5_000_000 {
			t.Errorf("stripe size %d, want 5MB", f.Size)
		}
		if f.Start != 0 {
			t.Error("incast flows start together")
		}
	}
}

func TestIncastPanicsOnBadFanIn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Incast(10, 10, 1000, 1)
}

func TestEmpiricalDists(t *testing.T) {
	for _, d := range []*Empirical{NewWebSearch(), NewHadoop()} {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			lo, hi := d.size[0], d.size[len(d.size)-1]
			rng := sim.NewRNG(3)
			const n = 200000
			sum := 0.0
			for i := 0; i < n; i++ {
				s := d.Sample(rng)
				if float64(s) < lo || float64(s) > hi {
					t.Fatalf("sample %d outside CDF range [%v, %v]", s, lo, hi)
				}
				sum += float64(s)
			}
			// The empirical sample mean converges to the analytic
			// trapezoid mean.
			mean := sum / n
			if math.Abs(mean-d.Mean())/d.Mean() > 0.05 {
				t.Errorf("sample mean %.0f vs analytic %.0f", mean, d.Mean())
			}
		})
	}
	// The means that size the presets: websearch is megabyte-heavy,
	// hadoop stays light enough for the 10⁵-flow figdc run.
	if m := NewWebSearch().Mean(); m < 1e6 || m > 3e6 {
		t.Errorf("websearch mean %.0f outside [1MB, 3MB]", m)
	}
	if m := NewHadoop().Mean(); m < 100_000 || m > 400_000 {
		t.Errorf("hadoop mean %.0f outside [100KB, 400KB]", m)
	}
}

func TestEmpiricalQuantileInterpolation(t *testing.T) {
	// A two-point CDF is uniform on its range under linear
	// interpolation; the analytic mean is the midpoint.
	d := NewEmpirical("flat", [][2]float64{{100, 0}, {200, 1}})
	if d.Mean() != 150 {
		t.Fatalf("mean = %v, want 150", d.Mean())
	}
	rng := sim.NewRNG(9)
	for i := 0; i < 1000; i++ {
		if s := d.Sample(rng); s < 100 || s > 200 {
			t.Fatalf("sample %d outside [100, 200]", s)
		}
	}
}

func TestEmpiricalRejectsBadCDF(t *testing.T) {
	for name, pts := range map[string][][2]float64{
		"no-zero-start":   {{100, 0.5}, {200, 1}},
		"no-one-end":      {{100, 0}, {200, 0.9}},
		"single-point":    {{100, 0}},
		"decreasing-size": {{200, 0}, {100, 1}},
		"decreasing-prob": {{100, 0}, {150, 0.8}, {200, 0.5}, {300, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			NewEmpirical(name, pts)
		}()
	}
}
