// Package metrics collects and summarizes the paper's three performance
// metrics (§4.1): average slowdown (FCT divided by the empty-network ideal
// along the same path — dominated by latency-sensitive short flows),
// average flow completion time, and 99th-percentile (tail) FCT — plus the
// 90–99.9%ile single-packet-message latency CDF of Figure 8 and the incast
// request completion time of Figure 9.
//
// The collector is streaming: O(1) state per metric — integer sums, two
// fixed-size log-scale histograms (hist.go), and Welford accumulators —
// regardless of flow count, so datacenter-scale presets (figdc: 10⁵+
// flows) don't hold a per-flow record slice alive. Collectors merge
// deterministically: every aggregate that lands in an exp.Result is an
// integer (or derived from integers by a fixed arithmetic sequence), so
// folding per-shard collectors in any grouping reproduces the serial
// run bit for bit. An exact mode (NewExact) additionally retains raw
// records and exposes the old sort-based reference computations; the
// differential harness in internal/exp runs both side by side and pins
// the streaming quantiles within QuantileEpsilon of exact.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/irnsim/irn/internal/sim"
)

// FlowRecord captures one completed flow.
type FlowRecord struct {
	Size         int
	Pkts         int
	FCT          sim.Duration
	Ideal        sim.Duration
	Slowdown     float64
	SinglePacket bool
}

// slowdownScale quantizes per-flow slowdowns onto an integer micro-unit
// grid before summing. Integer addition is exact and order-independent,
// so the mean slowdown — unlike a float sum — is identical for every
// sharding of the flow stream. The quantization error per flow is at
// most 5e-7, far below anything the reports print.
const slowdownScale = 1e6

// Collector accumulates flow records as streaming aggregates. The zero
// value is an empty streaming collector; NewExact returns one that also
// retains records for reference computations.
type Collector struct {
	count      uint64
	incomplete int

	fctSum    int64 // exact picosecond sum
	slowMicro int64 // quantized slowdown sum (slowdownScale units)

	fct    Histogram // all completed flows' FCTs
	onePkt Histogram // single-packet-message FCTs (Figure 8)

	// Diagnostic spread statistics (not part of the deterministic
	// Result surface — see Welford's doc comment).
	slowStats Welford
	fctStats  Welford

	exact   bool
	records []FlowRecord // exact mode only
}

// NewExact returns a collector that additionally keeps every record, so
// the Exact* reference methods (sorted-order statistics, float-sum
// means) are available for differential testing. Memory is O(flows)
// again in this mode — it exists for harnesses, not for runs.
func NewExact() *Collector { return &Collector{exact: true} }

// Exact reports whether the collector retains raw records.
func (c *Collector) Exact() bool { return c.exact }

// Add records a completed flow.
func (c *Collector) Add(r FlowRecord) {
	if r.Ideal > 0 && r.Slowdown == 0 {
		r.Slowdown = float64(r.FCT) / float64(r.Ideal)
	}
	c.count++
	c.fctSum += int64(r.FCT)
	c.slowMicro += int64(math.Round(r.Slowdown * slowdownScale))
	c.fct.Observe(int64(r.FCT))
	if r.SinglePacket {
		c.onePkt.Observe(int64(r.FCT))
	}
	c.slowStats.Add(r.Slowdown)
	c.fctStats.Add(float64(r.FCT))
	if c.exact {
		c.records = append(c.records, r)
	}
}

// AddIncomplete counts a flow that failed to finish before the deadline.
func (c *Collector) AddIncomplete() { c.incomplete++ }

// Merge folds another collector into c — the sharded launcher's fold.
// Integer state merges exactly in any order; records append (exact mode
// on both sides only) in call order.
func (c *Collector) Merge(o *Collector) {
	c.count += o.count
	c.incomplete += o.incomplete
	c.fctSum += o.fctSum
	c.slowMicro += o.slowMicro
	c.fct.Merge(&o.fct)
	c.onePkt.Merge(&o.onePkt)
	c.slowStats.Merge(o.slowStats)
	c.fctStats.Merge(o.fctStats)
	if c.exact && o.exact {
		c.records = append(c.records, o.records...)
	}
}

// Count returns the number of completed flows.
func (c *Collector) Count() int { return int(c.count) }

// Incomplete returns the number of unfinished flows.
func (c *Collector) Incomplete() int { return c.incomplete }

// Records returns a copy of the retained records (exact mode), or nil
// for a streaming collector, which keeps none. The copy is deliberate:
// callers sort and slice report data freely without aliasing collector
// state.
func (c *Collector) Records() []FlowRecord {
	if c.records == nil {
		return nil
	}
	out := make([]FlowRecord, len(c.records))
	copy(out, c.records)
	return out
}

// AvgSlowdown returns the mean slowdown (micro-unit quantized).
func (c *Collector) AvgSlowdown() float64 {
	if c.count == 0 {
		return 0
	}
	return float64(c.slowMicro) / slowdownScale / float64(c.count)
}

// AvgFCT returns the mean flow completion time (integer division of the
// exact picosecond sum — the historical convention, preserved so golden
// fixtures survive the streaming rewrite unchanged on this field).
func (c *Collector) AvgFCT() sim.Duration {
	if c.count == 0 {
		return 0
	}
	return sim.Duration(c.fctSum / int64(c.count))
}

// TailFCT returns the 99th-percentile FCT.
func (c *Collector) TailFCT() sim.Duration { return c.PercentileFCT(99) }

// PercentileFCT returns the p-th percentile FCT (p in (0,100]) from the
// streaming sketch, within QuantileEpsilon of the exact order statistic.
func (c *Collector) PercentileFCT(p float64) sim.Duration {
	return sim.Duration(c.fct.Quantile(p))
}

// FCTHistogram exposes the FCT sketch (persisted by the exp store).
func (c *Collector) FCTHistogram() *Histogram { return &c.fct }

// SinglePacketHistogram exposes the single-packet latency sketch.
func (c *Collector) SinglePacketHistogram() *Histogram { return &c.onePkt }

// SlowdownStats returns the online slowdown spread statistics.
func (c *Collector) SlowdownStats() Welford { return c.slowStats }

// FCTStats returns the online FCT spread statistics (picoseconds).
func (c *Collector) FCTStats() Welford { return c.fctStats }

// SinglePacketTail returns the latency CDF points for single-packet
// messages at the given percentiles — the Figure 8 series.
func (c *Collector) SinglePacketTail(percentiles []float64) []CDFPoint {
	if c.onePkt.N() == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, len(percentiles))
	for _, p := range percentiles {
		pts = append(pts, CDFPoint{
			Percentile: p,
			Latency:    sim.Duration(c.onePkt.Quantile(p)),
		})
	}
	return pts
}

// MemFootprint approximates the collector's live heap bytes: the two
// fixed-size sketches plus any retained records. For a streaming
// collector this is a constant (~18 KB once both sketches have
// observations) independent of flow count — the memory-bound regression
// tests assert exactly that.
func (c *Collector) MemFootprint() int {
	const recordSize = 48 // unsafe.Sizeof(FlowRecord{}) on 64-bit
	return c.fct.footprint() + c.onePkt.footprint() + 128 + cap(c.records)*recordSize
}

// ExactAvgSlowdown is the reference mean: a float sum over records in
// collection order (exact mode only; 0 otherwise).
func (c *Collector) ExactAvgSlowdown() float64 {
	if len(c.records) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range c.records {
		s += r.Slowdown
	}
	return s / float64(len(c.records))
}

// ExactAvgFCT is the reference mean FCT over retained records (exact
// mode only; 0 otherwise).
func (c *Collector) ExactAvgFCT() sim.Duration {
	if len(c.records) == 0 {
		return 0
	}
	var s int64
	for _, r := range c.records {
		s += int64(r.FCT)
	}
	return sim.Duration(s / int64(len(c.records)))
}

// ExactPercentileFCT is the reference quantile: sort all retained FCTs
// and take the nearest rank (exact mode only; 0 otherwise).
func (c *Collector) ExactPercentileFCT(p float64) sim.Duration {
	if len(c.records) == 0 {
		return 0
	}
	fcts := make([]int64, len(c.records))
	for i, r := range c.records {
		fcts[i] = int64(r.FCT)
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	return sim.Duration(fcts[percentileIndex(len(fcts), p)])
}

// percentileIndex maps a percentile to a sorted-slice index (nearest-rank).
func percentileIndex(n int, p float64) int {
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// ExactSinglePacketTail is the reference Figure 8 series from retained
// records (exact mode only; nil otherwise).
func (c *Collector) ExactSinglePacketTail(percentiles []float64) []CDFPoint {
	var fcts []int64
	for _, r := range c.records {
		if r.SinglePacket {
			fcts = append(fcts, int64(r.FCT))
		}
	}
	if len(fcts) == 0 {
		return nil
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	pts := make([]CDFPoint, 0, len(percentiles))
	for _, p := range percentiles {
		pts = append(pts, CDFPoint{
			Percentile: p,
			Latency:    sim.Duration(fcts[percentileIndex(len(fcts), p)]),
		})
	}
	return pts
}

// CDFPoint is one point of a latency CDF.
type CDFPoint struct {
	Percentile float64
	Latency    sim.Duration
}

// Summary bundles the headline metrics. Every field is reproduced
// bit-identically for any shard count (integer accumulators and
// sketches only).
type Summary struct {
	Flows       int
	Incomplete  int
	AvgSlowdown float64
	AvgFCT      sim.Duration
	TailFCT     sim.Duration
	// P50FCT/P90FCT/P999FCT widen the tail picture now that quantiles
	// are O(1) to read; the store persists them alongside p99.
	P50FCT  sim.Duration
	P90FCT  sim.Duration
	P999FCT sim.Duration
}

// Summarize computes the headline metrics.
func (c *Collector) Summarize() Summary {
	return Summary{
		Flows:       c.Count(),
		Incomplete:  c.Incomplete(),
		AvgSlowdown: c.AvgSlowdown(),
		AvgFCT:      c.AvgFCT(),
		TailFCT:     c.TailFCT(),
		P50FCT:      c.PercentileFCT(50),
		P90FCT:      c.PercentileFCT(90),
		P999FCT:     c.PercentileFCT(99.9),
	}
}

// String renders the summary in the paper's reporting units.
func (s Summary) String() string {
	return fmt.Sprintf("flows=%d incomplete=%d avg_slowdown=%.2f avg_fct=%.4fms p99_fct=%.4fms",
		s.Flows, s.Incomplete, s.AvgSlowdown, s.AvgFCT.Millis(), s.TailFCT.Millis())
}

// Ratio returns a/b guarding against division by zero; used for the
// appendix tables' IRN/(IRN+PFC) and IRN/(RoCE+PFC) rows.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
