// Package metrics collects and summarizes the paper's three performance
// metrics (§4.1): average slowdown (FCT divided by the empty-network ideal
// along the same path — dominated by latency-sensitive short flows),
// average flow completion time, and 99th-percentile (tail) FCT — plus the
// 90–99.9%ile single-packet-message latency CDF of Figure 8 and the incast
// request completion time of Figure 9.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/irnsim/irn/internal/sim"
)

// FlowRecord captures one completed flow.
type FlowRecord struct {
	Size         int
	Pkts         int
	FCT          sim.Duration
	Ideal        sim.Duration
	Slowdown     float64
	SinglePacket bool
}

// Collector accumulates flow records.
type Collector struct {
	records    []FlowRecord
	incomplete int
}

// Add records a completed flow.
func (c *Collector) Add(r FlowRecord) {
	if r.Ideal > 0 && r.Slowdown == 0 {
		r.Slowdown = float64(r.FCT) / float64(r.Ideal)
	}
	c.records = append(c.records, r)
}

// AddIncomplete counts a flow that failed to finish before the deadline.
func (c *Collector) AddIncomplete() { c.incomplete++ }

// Count returns the number of completed flows.
func (c *Collector) Count() int { return len(c.records) }

// Incomplete returns the number of unfinished flows.
func (c *Collector) Incomplete() int { return c.incomplete }

// Records exposes the raw records.
func (c *Collector) Records() []FlowRecord { return c.records }

// AvgSlowdown returns the mean slowdown.
func (c *Collector) AvgSlowdown() float64 {
	if len(c.records) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range c.records {
		s += r.Slowdown
	}
	return s / float64(len(c.records))
}

// AvgFCT returns the mean flow completion time.
func (c *Collector) AvgFCT() sim.Duration {
	if len(c.records) == 0 {
		return 0
	}
	var s int64
	for _, r := range c.records {
		s += int64(r.FCT)
	}
	return sim.Duration(s / int64(len(c.records)))
}

// TailFCT returns the 99th-percentile FCT.
func (c *Collector) TailFCT() sim.Duration { return c.PercentileFCT(99) }

// PercentileFCT returns the p-th percentile FCT (p in (0,100]).
func (c *Collector) PercentileFCT(p float64) sim.Duration {
	if len(c.records) == 0 {
		return 0
	}
	fcts := make([]int64, len(c.records))
	for i, r := range c.records {
		fcts[i] = int64(r.FCT)
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	return sim.Duration(fcts[percentileIndex(len(fcts), p)])
}

// percentileIndex maps a percentile to a sorted-slice index (nearest-rank).
func percentileIndex(n int, p float64) int {
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// SinglePacketTail returns the latency CDF points for single-packet
// messages at the given percentiles — the Figure 8 series.
func (c *Collector) SinglePacketTail(percentiles []float64) []CDFPoint {
	var fcts []int64
	for _, r := range c.records {
		if r.SinglePacket {
			fcts = append(fcts, int64(r.FCT))
		}
	}
	if len(fcts) == 0 {
		return nil
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	pts := make([]CDFPoint, 0, len(percentiles))
	for _, p := range percentiles {
		pts = append(pts, CDFPoint{
			Percentile: p,
			Latency:    sim.Duration(fcts[percentileIndex(len(fcts), p)]),
		})
	}
	return pts
}

// CDFPoint is one point of a latency CDF.
type CDFPoint struct {
	Percentile float64
	Latency    sim.Duration
}

// Summary bundles the three headline metrics.
type Summary struct {
	Flows       int
	Incomplete  int
	AvgSlowdown float64
	AvgFCT      sim.Duration
	TailFCT     sim.Duration
}

// Summarize computes the headline metrics.
func (c *Collector) Summarize() Summary {
	return Summary{
		Flows:       c.Count(),
		Incomplete:  c.Incomplete(),
		AvgSlowdown: c.AvgSlowdown(),
		AvgFCT:      c.AvgFCT(),
		TailFCT:     c.TailFCT(),
	}
}

// String renders the summary in the paper's reporting units.
func (s Summary) String() string {
	return fmt.Sprintf("flows=%d incomplete=%d avg_slowdown=%.2f avg_fct=%.4fms p99_fct=%.4fms",
		s.Flows, s.Incomplete, s.AvgSlowdown, s.AvgFCT.Millis(), s.TailFCT.Millis())
}

// Ratio returns a/b guarding against division by zero; used for the
// appendix tables' IRN/(IRN+PFC) and IRN/(RoCE+PFC) rows.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
