package metrics

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzHistogramMerge checks the algebraic laws the sharded launcher's
// fold relies on: merging per-shard histograms is associative,
// commutative, and order-independent — any sharding of one observation
// stream reproduces the single histogram exactly — and quantiles read
// from the merged sketch form a monotone CDF. Mirrors the differential
// style of FuzzShardMerge in internal/exp.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 255, 255, 255, 255, 255, 255, 255, 255}, uint8(3))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, nShards uint8) {
		shards := int(nShards%8) + 1
		// Decode the fuzz input as a stream of int64 observations.
		var vals []int64
		for len(data) >= 8 {
			vals = append(vals, int64(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}

		var single Histogram
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = &Histogram{}
		}
		for i, v := range vals {
			single.Observe(v)
			parts[i%shards].Observe(v)
		}

		// Left fold and reversed fold must both equal the single sketch.
		var fwd, rev Histogram
		for i := range parts {
			fwd.Merge(parts[i])
			rev.Merge(parts[len(parts)-1-i])
		}
		if len(vals) > 0 {
			if !reflect.DeepEqual(&fwd, &single) {
				t.Fatalf("forward merge diverged from single\nmerged: %+v\nsingle: %+v", fwd, single)
			}
			if !reflect.DeepEqual(&rev, &single) {
				t.Fatal("reversed merge order diverged from single")
			}
		} else if fwd.N() != 0 || rev.N() != 0 {
			t.Fatal("empty stream produced observations")
		}

		// Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for a 3-way split.
		if shards >= 3 {
			var ab Histogram
			ab.Merge(parts[0])
			ab.Merge(parts[1])
			ab.Merge(parts[2])
			var bc Histogram
			bc.Merge(parts[1])
			bc.Merge(parts[2])
			var a Histogram
			a.Merge(parts[0])
			a.Merge(&bc)
			if !reflect.DeepEqual(&ab, &a) {
				t.Fatal("merge is not associative")
			}
		}

		// Monotone CDF: Quantile must be non-decreasing in p.
		if single.N() > 0 {
			prev := single.Quantile(0.001)
			for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
				q := single.Quantile(p)
				if q < prev {
					t.Fatalf("quantile not monotone: p%v=%d < previous %d", p, q, prev)
				}
				prev = q
			}
			if single.Quantile(100) != single.Max() {
				t.Fatalf("p100 %d != exact max %d", single.Quantile(100), single.Max())
			}
		}
	})
}
