package metrics

import "math"

// Welford is an online mean/variance accumulator (Welford's algorithm)
// with the Chan et al. parallel combination rule for Merge. It is the
// collector's side-channel statistic for slowdown and FCT spread:
// numerically stable at any count, O(1) memory, no record retention.
//
// Unlike the histogram sketch and the integer sums, Welford state is
// floating point and its Merge is grouping-sensitive in the last ulps —
// so it deliberately feeds only diagnostic accessors, never the Result
// fields covered by the bit-identical shard-determinism contract (see
// the streaming-metrics section of ARCHITECTURE.md).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another accumulator into w (Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / n
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/n
	w.n += o.n
}

// N returns the number of observations.
func (w Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 when empty).
func (w Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected variance (0 when n < 2).
func (w Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the population standard deviation.
func (w Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
