package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/irnsim/irn/internal/sim"
)

func TestHistBoundsConstruction(t *testing.T) {
	if histBounds[0] != 1 {
		t.Fatalf("first bound = %d", histBounds[0])
	}
	if len(histBounds) != len(histReps) {
		t.Fatal("bounds/reps length mismatch")
	}
	for i := 1; i < len(histBounds); i++ {
		lo, hi := histBounds[i-1], histBounds[i]
		if hi <= lo {
			t.Fatalf("bounds not strictly increasing at %d: %d -> %d", i, lo, hi)
		}
		rep := histReps[i-1]
		if rep < lo || rep >= hi {
			t.Fatalf("rep %d outside bucket [%d, %d)", rep, lo, hi)
		}
		// The construction's error guarantee: every value in [lo, hi)
		// is within QuantileEpsilon relative error of the rep. Worst
		// case is the bucket's smallest value.
		if worst := float64(rep-lo) / float64(lo); worst > QuantileEpsilon {
			t.Fatalf("bucket [%d,%d) rep %d: rel err %v > ε", lo, hi, rep, worst)
		}
		far := float64(hi-1-rep) / float64(hi-1)
		if far > QuantileEpsilon {
			t.Fatalf("bucket [%d,%d) rep %d: far-end rel err %v > ε", lo, hi, rep, far)
		}
	}
	if last := histBounds[len(histBounds)-1]; last < 1<<61 {
		t.Fatalf("bounds stop too early: %d", last)
	}
	if len(histBounds) > 2000 {
		t.Fatalf("unexpectedly many buckets: %d", len(histBounds))
	}
}

func TestHistBucketIndex(t *testing.T) {
	for _, v := range []int64{1, 2, 26, 52, 53, 1000, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		if histBounds[i] > v {
			t.Errorf("v=%d landed below its bucket [%d,...)", v, histBounds[i])
		}
		if i+1 < len(histBounds) && histBounds[i+1] <= v {
			t.Errorf("v=%d landed before its bucket (next bound %d)", v, histBounds[i+1])
		}
	}
	if bucketIndex(0) != 0 || bucketIndex(-5) != 0 {
		t.Error("non-positive values must collapse into bucket 0")
	}
}

func TestHistQuantileAgainstSorted(t *testing.T) {
	// Randomized differential check on a log-uniform-ish distribution
	// spanning six decades.
	rng := sim.NewRNG(7)
	var h Histogram
	var vals []int64
	for i := 0; i < 20000; i++ {
		v := int64(math.Exp(rng.Float64()*14)) + 1 // 1 .. ~1.2e6
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0.1, 1, 10, 50, 90, 99, 99.9, 100} {
		want := float64(vals[percentileIndex(len(vals), p)])
		got := float64(h.Quantile(p))
		if math.Abs(got-want)/want > QuantileEpsilon {
			t.Errorf("p%v: sketch %v vs exact %v", p, got, want)
		}
	}
	if h.Min() != vals[0] || h.Max() != vals[len(vals)-1] {
		t.Errorf("min/max not exact: %d/%d vs %d/%d", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
	}
}

func TestHistMergeEmptyAndNil(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	a.Merge(nil)
	a.Merge(&b) // empty
	if a.N() != 1 || a.Quantile(50) != 100 {
		t.Errorf("merge with empty corrupted state: n=%d q50=%d", a.N(), a.Quantile(50))
	}
	b.Merge(&a)
	if b.N() != 1 || b.Min() != 100 || b.Max() != 100 {
		t.Errorf("merge into empty lost state: %+v", b)
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 5, 5, 90_000, 1 << 50} {
		h.Observe(v)
	}
	buf, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&h, &back) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", h, back)
	}

	// Empty histograms round-trip to empty (no counts allocation).
	var empty, emptyBack Histogram
	buf, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&empty, &emptyBack) {
		t.Fatal("empty round trip diverged")
	}

	// A foreign bucket scheme must be rejected, not misread.
	if err := json.Unmarshal([]byte(`{"scheme":"geo2-v9","n":1}`), &back); err == nil {
		t.Fatal("want error for unknown bucket scheme")
	}
}

func TestWelford(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Fatalf("mean = %v (n=%d), want 5", w.Mean(), w.N())
	}
	if v := w.Variance(); math.Abs(v-4) > 1e-12 {
		t.Errorf("variance = %v, want 4", v)
	}
	if s := w.Stddev(); math.Abs(s-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s)
	}
	if v := w.SampleVariance(); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("sample variance = %v, want 32/7", v)
	}

	// Merge of halves matches the whole.
	var a, b Welford
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != w.N() || math.Abs(a.Mean()-w.Mean()) > 1e-12 || math.Abs(a.Variance()-w.Variance()) > 1e-12 {
		t.Errorf("merged stats %+v diverge from single %+v", a, w)
	}

	// Empty edge cases.
	var e Welford
	if e.Mean() != 0 || e.Variance() != 0 || e.SampleVariance() != 0 {
		t.Error("empty Welford must report zeros")
	}
	e.Merge(w)
	if e.Mean() != w.Mean() || e.N() != w.N() {
		t.Error("merge into empty must copy")
	}
}
