package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Log-scale histogram with a priori bounded relative quantile error.
//
// Bucket boundaries are fixed at package init and shared by every
// Histogram: starting from 1, each bucket's width is max(1, lo/26), i.e.
// the boundaries grow by a factor of ~1+1/26 ≈ 1.0385 once buckets are
// wider than one unit. Small integers (1..51) get exact width-1 buckets.
// A bucket [lo, hi) is reported as its integer midpoint lo+(hi-lo-1)/2,
// so the distance from the reported value to any value in the bucket is
// at most ceil((w-1)/2) ≤ w/2 ≤ lo/52 — a guaranteed relative error of
// at most 1/52 ≈ 1.93%, within the documented ε = 2% (QuantileEpsilon).
// Quantiles are additionally clamped to the exact observed [min, max],
// so extreme quantiles (p→0, p→100) are exact.
//
// The scheme is pure integer arithmetic: bucket placement, counts, and
// reported values are identical on every platform and in every merge
// order, which is what lets sharded collectors fold deterministically
// (the engine's bit-identical-across-shard-counts contract covers the
// sketch state too).
//
// ~1100 buckets cover [1, 2^62] (picoseconds → ~53 simulated days), 8 KB
// of counts per histogram — the fixed footprint that replaces the old
// O(flows) record slice.

// QuantileEpsilon is the documented relative-error bound on streaming
// quantiles: |streaming − exact| ≤ QuantileEpsilon × exact. The bucket
// scheme guarantees 1/52 ≈ 1.93%; the differential harness asserts the
// rounder 2% across every figure preset.
const QuantileEpsilon = 0.02

// histSchemeID names the bucket layout inside persisted sketches, so a
// future change to the boundaries cannot silently misread old files.
const histSchemeID = "lin26-v1"

var (
	histBounds []int64 // bucket lower bounds; strictly increasing, histBounds[0] = 1
	histReps   []int64 // reported representative value per bucket
)

func init() {
	const maxBound = int64(1) << 62
	lo := int64(1)
	for lo <= maxBound {
		w := lo / 26
		if w < 1 {
			w = 1
		}
		histBounds = append(histBounds, lo)
		histReps = append(histReps, lo+(w-1)/2)
		lo += w
	}
}

// bucketIndex maps a value to its bucket. Values below the first bound
// (v ≤ 0) collapse into bucket 0.
func bucketIndex(v int64) int {
	// First bound strictly greater than v, minus one.
	i := sort.Search(len(histBounds), func(i int) bool { return histBounds[i] > v })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Histogram is a fixed-bucket log-scale sketch of a duration (or any
// non-negative int64) distribution. The zero value is empty and ready to
// use; counts are allocated on first Observe. Merging is exact (integer
// bucket counts), associative, commutative, and order-independent.
type Histogram struct {
	counts   []uint64
	n        uint64
	min, max int64 // exact observed extrema; valid when n > 0
}

// Observe adds one value to the sketch.
func (h *Histogram) Observe(v int64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(histBounds))
	}
	h.counts[bucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// N returns the number of observed values.
func (h *Histogram) N() uint64 { return h.n }

// Min returns the exact smallest observed value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observed value (0 when empty).
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Merge folds o into h. Counts add exactly, so any merge order — and any
// sharding of one observation stream across histograms — produces the
// same state as a single histogram observing everything.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, len(histBounds))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
}

// Quantile returns the p-th percentile (p in (0, 100]) under the same
// nearest-rank convention the old sort-based path used: the value whose
// cumulative count first reaches ceil(p/100 × n). The result is a bucket
// representative clamped to the exact [min, max], so it is within
// QuantileEpsilon relative error of the exact order statistic.
func (h *Histogram) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(ceilFrac(p, h.n))
	if rank <= 1 {
		return h.min // exact first order statistic
	}
	if rank >= h.n {
		return h.max // exact last order statistic
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histReps[i]
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// ceilFrac computes ceil(p/100 × n) in floats — the same arithmetic as
// the historical percentileIndex, so streaming and exact paths pick the
// same rank.
func ceilFrac(p float64, n uint64) int64 {
	r := p / 100 * float64(n)
	i := int64(r)
	if float64(i) < r {
		i++
	}
	return i
}

// histJSON is the sparse persisted form of a Histogram (store schema v2).
type histJSON struct {
	Scheme  string     `json:"scheme"`
	N       uint64     `json:"n"`
	Min     int64      `json:"min,omitempty"`
	Max     int64      `json:"max,omitempty"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes only non-empty buckets, tagged with the bucket-
// scheme id so layout changes are detected at load time.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	j := histJSON{Scheme: histSchemeID, N: h.n}
	if h.n > 0 {
		j.Min, j.Max = h.min, h.max
		for i, c := range h.counts {
			if c > 0 {
				j.Buckets = append(j.Buckets, [2]int64{int64(i), int64(c)})
			}
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON reconstructs the sketch written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Scheme != histSchemeID {
		return fmt.Errorf("metrics: histogram bucket scheme %q, want %q", j.Scheme, histSchemeID)
	}
	*h = Histogram{n: j.N, min: j.Min, max: j.Max}
	if j.N == 0 {
		return nil
	}
	h.counts = make([]uint64, len(histBounds))
	for _, b := range j.Buckets {
		if b[0] < 0 || b[0] >= int64(len(histBounds)) {
			return fmt.Errorf("metrics: histogram bucket index %d out of range", b[0])
		}
		h.counts[b[0]] = uint64(b[1])
	}
	return nil
}

// footprint approximates the live heap bytes held by the sketch.
func (h *Histogram) footprint() int {
	return 8*len(h.counts) + 32
}
