package metrics

import (
	"math"
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/sim"
)

func TestCollectorBasics(t *testing.T) {
	var c Collector
	if c.AvgSlowdown() != 0 || c.AvgFCT() != 0 || c.TailFCT() != 0 {
		t.Error("empty collector must report zeros")
	}
	c.Add(FlowRecord{Size: 1000, FCT: 200, Ideal: 100})
	c.Add(FlowRecord{Size: 1000, FCT: 300, Ideal: 100})
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.AvgSlowdown(); got != 2.5 {
		t.Errorf("avg slowdown = %v, want 2.5", got)
	}
	if got := c.AvgFCT(); got != 250 {
		t.Errorf("avg fct = %v, want 250", got)
	}
}

func TestSlowdownPrecomputedWins(t *testing.T) {
	var c Collector
	c.Add(FlowRecord{FCT: 500, Ideal: 100, Slowdown: 7})
	if c.AvgSlowdown() != 7 {
		t.Error("explicit slowdown must not be recomputed")
	}
}

func TestPercentiles(t *testing.T) {
	var c Collector
	for i := 1; i <= 100; i++ {
		c.Add(FlowRecord{FCT: sim.Duration(i), Ideal: 1})
	}
	if got := c.PercentileFCT(99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := c.PercentileFCT(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := c.PercentileFCT(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := c.TailFCT(); got != 99 {
		t.Errorf("tail = %v", got)
	}
}

func TestSinglePacketTail(t *testing.T) {
	var c Collector
	for i := 1; i <= 1000; i++ {
		c.Add(FlowRecord{FCT: sim.Duration(i), Ideal: 1, SinglePacket: i%2 == 0})
	}
	pts := c.SinglePacketTail([]float64{90, 99, 99.9})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Percentile != 90 || pts[0].Latency < 850 || pts[0].Latency > 950 {
		t.Errorf("p90 = %+v", pts[0])
	}
	if pts[2].Latency < pts[1].Latency || pts[1].Latency < pts[0].Latency {
		t.Error("CDF must be monotone")
	}
	// No single-packet records → nil.
	var empty Collector
	empty.Add(FlowRecord{FCT: 5, Ideal: 1})
	if empty.SinglePacketTail([]float64{99}) != nil {
		t.Error("want nil with no single-packet flows")
	}
}

func TestSummaryString(t *testing.T) {
	var c Collector
	c.Add(FlowRecord{FCT: sim.Duration(2 * sim.Millisecond), Ideal: sim.Duration(1 * sim.Millisecond)})
	c.AddIncomplete()
	s := c.Summarize()
	if s.Flows != 1 || s.Incomplete != 1 {
		t.Errorf("summary %+v", s)
	}
	str := s.String()
	for _, want := range []string{"avg_slowdown=2.00", "incomplete=1", "avg_fct=2.0000ms"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary %q missing %q", str, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Error("ratio broken")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("ratio by zero must be NaN")
	}
}
