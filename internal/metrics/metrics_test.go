package metrics

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/sim"
)

// relErr is the relative error of got against a non-zero want.
func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestCollectorBasics(t *testing.T) {
	var c Collector
	if c.AvgSlowdown() != 0 || c.AvgFCT() != 0 || c.TailFCT() != 0 {
		t.Error("empty collector must report zeros")
	}
	c.Add(FlowRecord{Size: 1000, FCT: 200, Ideal: 100})
	c.Add(FlowRecord{Size: 1000, FCT: 300, Ideal: 100})
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.AvgSlowdown(); got != 2.5 {
		t.Errorf("avg slowdown = %v, want 2.5", got)
	}
	if got := c.AvgFCT(); got != 250 {
		t.Errorf("avg fct = %v, want 250", got)
	}
}

func TestSlowdownPrecomputedWins(t *testing.T) {
	var c Collector
	c.Add(FlowRecord{FCT: 500, Ideal: 100, Slowdown: 7})
	if c.AvgSlowdown() != 7 {
		t.Error("explicit slowdown must not be recomputed")
	}
}

func TestPercentiles(t *testing.T) {
	var c Collector
	for i := 1; i <= 100; i++ {
		c.Add(FlowRecord{FCT: sim.Duration(i), Ideal: 1})
	}
	// Streaming quantiles land within the documented ε of the exact
	// order statistic; the extremes are exact (min/max clamping).
	for _, tc := range []struct {
		p     float64
		exact float64
	}{{50, 50}, {90, 90}, {99, 99}} {
		got := float64(c.PercentileFCT(tc.p))
		if relErr(got, tc.exact) > QuantileEpsilon {
			t.Errorf("p%v = %v, want %v ± %v%%", tc.p, got, tc.exact, QuantileEpsilon*100)
		}
	}
	if got := c.PercentileFCT(100); got != 100 {
		t.Errorf("p100 = %v, want exact max 100", got)
	}
	if got := float64(c.TailFCT()); relErr(got, 99) > QuantileEpsilon {
		t.Errorf("tail = %v", got)
	}
}

func TestExactReferenceSemantics(t *testing.T) {
	// Exact mode preserves the historical sort-based behavior bit for
	// bit — the reference the differential harness compares against.
	c := NewExact()
	for i := 1; i <= 100; i++ {
		c.Add(FlowRecord{FCT: sim.Duration(i), Ideal: 1})
	}
	if got := c.ExactPercentileFCT(99); got != 99 {
		t.Errorf("exact p99 = %v, want 99", got)
	}
	if got := c.ExactPercentileFCT(50); got != 50 {
		t.Errorf("exact p50 = %v, want 50", got)
	}
	if got := c.ExactPercentileFCT(100); got != 100 {
		t.Errorf("exact p100 = %v, want 100", got)
	}
	if got := c.ExactAvgFCT(); got != c.AvgFCT() {
		t.Errorf("exact avg %v != streaming avg %v", got, c.AvgFCT())
	}
	if relErr(c.ExactAvgSlowdown(), c.AvgSlowdown()) > 1e-6 {
		t.Errorf("exact slowdown %v vs streaming %v", c.ExactAvgSlowdown(), c.AvgSlowdown())
	}
}

func TestRecordsCopied(t *testing.T) {
	// Streaming collectors retain nothing; exact collectors hand out a
	// copy that callers may sort or truncate freely.
	var stream Collector
	stream.Add(FlowRecord{FCT: 5, Ideal: 1})
	if stream.Records() != nil {
		t.Error("streaming collector must not retain records")
	}
	ex := NewExact()
	ex.Add(FlowRecord{FCT: 5, Ideal: 1})
	ex.Add(FlowRecord{FCT: 9, Ideal: 1})
	recs := ex.Records()
	recs[0].FCT = 12345
	if got := ex.Records()[0].FCT; got != 5 {
		t.Errorf("mutating the returned slice leaked into the collector: %v", got)
	}
}

func TestSinglePacketTail(t *testing.T) {
	var c Collector
	for i := 1; i <= 1000; i++ {
		c.Add(FlowRecord{FCT: sim.Duration(i), Ideal: 1, SinglePacket: i%2 == 0})
	}
	pts := c.SinglePacketTail([]float64{90, 99, 99.9})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Percentile != 90 || pts[0].Latency < 850 || pts[0].Latency > 950 {
		t.Errorf("p90 = %+v", pts[0])
	}
	if pts[2].Latency < pts[1].Latency || pts[1].Latency < pts[0].Latency {
		t.Error("CDF must be monotone")
	}
	// No single-packet records → nil.
	var empty Collector
	empty.Add(FlowRecord{FCT: 5, Ideal: 1})
	if empty.SinglePacketTail([]float64{99}) != nil {
		t.Error("want nil with no single-packet flows")
	}
}

func TestSummaryString(t *testing.T) {
	var c Collector
	c.Add(FlowRecord{FCT: sim.Duration(2 * sim.Millisecond), Ideal: sim.Duration(1 * sim.Millisecond)})
	c.AddIncomplete()
	s := c.Summarize()
	if s.Flows != 1 || s.Incomplete != 1 {
		t.Errorf("summary %+v", s)
	}
	str := s.String()
	for _, want := range []string{"avg_slowdown=2.00", "incomplete=1", "avg_fct=2.0000ms"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary %q missing %q", str, want)
		}
	}
}

func TestCollectorMergeMatchesSingle(t *testing.T) {
	// Sharding a record stream across collectors and merging in any
	// grouping must reproduce the single collector's aggregates exactly
	// — the contract the sharded launcher's fold depends on.
	recs := syntheticRecords(999)
	var single Collector
	for _, r := range recs {
		single.Add(r)
	}
	shards := []*Collector{{}, {}, {}}
	for i, r := range recs {
		shards[i%3].Add(r)
	}
	// Two different merge groupings.
	var m1 Collector
	for _, s := range shards {
		m1.Merge(s)
	}
	var m2 Collector
	m2.Merge(shards[2])
	m2.Merge(shards[0])
	m2.Merge(shards[1])
	for _, m := range []*Collector{&m1, &m2} {
		if m.Summarize() != single.Summarize() {
			t.Fatalf("merged summary %+v != single %+v", m.Summarize(), single.Summarize())
		}
		if m.AvgSlowdown() != single.AvgSlowdown() {
			t.Fatalf("merged slowdown %v != single %v", m.AvgSlowdown(), single.AvgSlowdown())
		}
	}
	// Welford side statistics agree to float tolerance (not bit-exact).
	if relErr(m1.SlowdownStats().Mean(), single.SlowdownStats().Mean()) > 1e-12 {
		t.Errorf("welford mean diverged: %v vs %v", m1.SlowdownStats().Mean(), single.SlowdownStats().Mean())
	}
	if single.SlowdownStats().Variance() > 0 &&
		relErr(m1.SlowdownStats().Variance(), single.SlowdownStats().Variance()) > 1e-9 {
		t.Errorf("welford variance diverged: %v vs %v", m1.SlowdownStats().Variance(), single.SlowdownStats().Variance())
	}
}

// syntheticRecords builds a deterministic heavy-tail-ish record stream
// with realistic FCT magnitudes (tens of µs to tens of ms).
func syntheticRecords(n int) []FlowRecord {
	rng := sim.NewRNG(42)
	recs := make([]FlowRecord, 0, n)
	for i := 0; i < n; i++ {
		fct := sim.Duration(20_000_000 + rng.Intn(1_000_000_000)) // 20 µs .. ~1 ms
		if i%17 == 0 {
			fct *= 31 // tail
		}
		ideal := fct / sim.Duration(1+rng.Intn(9))
		recs = append(recs, FlowRecord{
			Size:         1000 * (i + 1),
			Pkts:         1 + i%64,
			FCT:          fct,
			Ideal:        ideal,
			SinglePacket: i%3 == 0,
		})
	}
	return recs
}

func TestStreamingQuantilesWithinEpsilon(t *testing.T) {
	// Differential property at the package level: streaming quantiles
	// against the exact sorted reference on a realistic distribution.
	c := NewExact()
	for _, r := range syntheticRecords(5000) {
		c.Add(r)
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
		got := float64(c.PercentileFCT(p))
		want := float64(c.ExactPercentileFCT(p))
		if relErr(got, want) > QuantileEpsilon {
			t.Errorf("p%v: streaming %v vs exact %v (rel err %v)", p, got, want, relErr(got, want))
		}
	}
	sp := c.SinglePacketTail([]float64{90, 95, 99, 99.9})
	ref := c.ExactSinglePacketTail([]float64{90, 95, 99, 99.9})
	for i := range sp {
		if relErr(float64(sp[i].Latency), float64(ref[i].Latency)) > QuantileEpsilon {
			t.Errorf("single-packet p%v: %v vs %v", sp[i].Percentile, sp[i].Latency, ref[i].Latency)
		}
	}
}

func TestCollectorAddAllocsO1(t *testing.T) {
	// Steady-state Add must not allocate: the sketches are fixed-size
	// and lazily allocated exactly once. (The warm-up run AllocsPerRun
	// performs absorbs the one-time counts allocation.)
	var c Collector
	r := FlowRecord{FCT: 123_456_789, Ideal: 1_000_000, SinglePacket: true}
	if n := testing.AllocsPerRun(1000, func() { c.Add(r) }); n != 0 {
		t.Errorf("Add allocates %v per call, want 0", n)
	}
}

func TestCollectorMemoryBounded(t *testing.T) {
	// Hard byte budget via MemStats delta: 100k flows through a
	// streaming collector must not grow the live heap beyond the two
	// fixed sketches (≈18 KB) plus slack — nothing per-flow survives.
	recs := syntheticRecords(1000)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	c := &Collector{}
	for i := 0; i < 100_000; i++ {
		c.Add(recs[i%len(recs)])
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const budget = 256 << 10
	if delta > budget {
		t.Errorf("live heap grew by %d bytes for 100k flows, budget %d", delta, budget)
	}
	if c.Count() != 100_000 {
		t.Fatalf("count = %d", c.Count())
	}
	if fp := c.MemFootprint(); fp > 64<<10 {
		t.Errorf("MemFootprint = %d, want O(sketches) < 64KB", fp)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Error("ratio broken")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("ratio by zero must be NaN")
	}
}
