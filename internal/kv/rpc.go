package kv

import (
	"encoding/binary"
	"fmt"
)

// This file is the RPC wire framing: fixed big-endian headers with an
// explicit value length, so frames decode from the front of a ring slot
// (which is larger than the frame) and round-trip byte-exactly — the
// property FuzzKVRPCFraming checks differentially.

// Op is the key-value operation carried by a request.
type Op uint8

// Request operations.
const (
	OpGet Op = iota
	OpPut

	opCount
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// RespStatus is the outcome carried by a response.
type RespStatus uint8

// Response statuses.
const (
	RespOK RespStatus = iota
	RespNotFound
	// RespReadOnly rejects a Put because the leader lost its quorum and
	// degraded to read-only service.
	RespReadOnly

	respStatusCount
)

// String implements fmt.Stringer.
func (s RespStatus) String() string {
	switch s {
	case RespOK:
		return "OK"
	case RespNotFound:
		return "NOT_FOUND"
	case RespReadOnly:
		return "READ_ONLY"
	default:
		return fmt.Sprintf("RespStatus(%d)", uint8(s))
	}
}

// Frame layout constants.
const (
	reqHeaderLen  = 1 + 4 + 8 + 8 + 4 // op, client, seq, key, vlen
	respHeaderLen = 1 + 4 + 8 + 4     // status, client, seq, vlen

	// maxValueLen bounds decoded values; it exists to keep the fuzzer
	// (and a corrupted ring slot) from demanding absurd allocations.
	maxValueLen = 1 << 20
)

// Request is the client→leader RPC frame.
type Request struct {
	Client uint32
	Seq    uint64 // request id; unique per client and monotone
	Op     Op
	Key    uint64
	Value  []byte // Put payload; nil for Get
}

// MarshalRequest appends r's canonical encoding to dst.
func MarshalRequest(dst []byte, r Request) []byte {
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint32(dst, r.Client)
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, r.Key)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Value)))
	return append(dst, r.Value...)
}

// UnmarshalRequest decodes a request from the front of b, returning the
// number of bytes consumed. MarshalRequest(nil, req) == b[:n] for every
// successful decode — the encoding is canonical.
func UnmarshalRequest(b []byte) (req Request, n int, err error) {
	if len(b) < reqHeaderLen {
		return Request{}, 0, fmt.Errorf("kv: request frame truncated at %d bytes", len(b))
	}
	if b[0] >= byte(opCount) {
		return Request{}, 0, fmt.Errorf("kv: bad request op %d", b[0])
	}
	req.Op = Op(b[0])
	req.Client = binary.BigEndian.Uint32(b[1:])
	req.Seq = binary.BigEndian.Uint64(b[5:])
	req.Key = binary.BigEndian.Uint64(b[13:])
	vlen := binary.BigEndian.Uint32(b[21:])
	if vlen > maxValueLen {
		return Request{}, 0, fmt.Errorf("kv: request value length %d exceeds cap", vlen)
	}
	n = reqHeaderLen + int(vlen)
	if len(b) < n {
		return Request{}, 0, fmt.Errorf("kv: request value truncated: want %d, have %d", n, len(b))
	}
	if vlen > 0 {
		req.Value = append([]byte(nil), b[reqHeaderLen:n]...)
	}
	return req, n, nil
}

// Response is the leader→client RPC frame.
type Response struct {
	Client uint32
	Seq    uint64
	Status RespStatus
	Value  []byte // Get result; nil otherwise
}

// MarshalResponse appends r's canonical encoding to dst.
func MarshalResponse(dst []byte, r Response) []byte {
	dst = append(dst, byte(r.Status))
	dst = binary.BigEndian.AppendUint32(dst, r.Client)
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Value)))
	return append(dst, r.Value...)
}

// UnmarshalResponse decodes a response from the front of b, returning
// the number of bytes consumed.
func UnmarshalResponse(b []byte) (resp Response, n int, err error) {
	if len(b) < respHeaderLen {
		return Response{}, 0, fmt.Errorf("kv: response frame truncated at %d bytes", len(b))
	}
	if b[0] >= byte(respStatusCount) {
		return Response{}, 0, fmt.Errorf("kv: bad response status %d", b[0])
	}
	resp.Status = RespStatus(b[0])
	resp.Client = binary.BigEndian.Uint32(b[1:])
	resp.Seq = binary.BigEndian.Uint64(b[5:])
	vlen := binary.BigEndian.Uint32(b[13:])
	if vlen > maxValueLen {
		return Response{}, 0, fmt.Errorf("kv: response value length %d exceeds cap", vlen)
	}
	n = respHeaderLen + int(vlen)
	if len(b) < n {
		return Response{}, 0, fmt.Errorf("kv: response value truncated: want %d, have %d", n, len(b))
	}
	if vlen > 0 {
		resp.Value = append([]byte(nil), b[respHeaderLen:n]...)
	}
	return resp, n, nil
}
