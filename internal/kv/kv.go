// Package kv is a replicated key-value service running end-to-end on the
// simulated RDMA fabric: one leader and f followers, an RPC layer over
// internal/verbs with two wire variants (send/recv through an SRQ-backed
// server, and RDMA-write-with-immediate into per-client rings),
// leader-driven replication (the log entry is WRITTEN to every follower
// and commits on quorum acks), and an explicit client-side robustness
// policy — per-request timeouts, bounded retries with exponential
// backoff and deterministic jitter, and graceful degradation to
// read-only service when the leader loses its quorum.
//
// The service exists to measure robustness: the experiment harness
// drives open-loop client load against the replica group while chaos
// schedules flap, drain, and brown out the leader's links, and reports
// per-phase availability (fraction of requests answered within an SLO),
// commit-latency histograms, and retry/timeout/give-up counts for IRN
// versus RoCE+PFC go-back-N transports.
//
// Everything is deterministic: request arrivals, keys, and backoff
// jitter derive from sim.DeriveSeed streams; all cross-host interaction
// rides the fabric's canonical (time, rank) event order; and per-client
// state merges in client-index order — so serial and sharded runs are
// bit-identical.
package kv

import (
	"github.com/irnsim/irn/internal/metrics"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// Mode selects the RPC wire variant.
type Mode uint8

// RPC wire variants.
const (
	// ModeSend carries requests as two-sided SEND messages into the
	// leader's shared receive queue (SRQ-backed server; responses are
	// SENDs back into client-posted receive buffers).
	ModeSend Mode = iota
	// ModeWriteImm carries requests as RDMA WRITE-with-immediate into a
	// per-client ring in leader memory (responses likewise write a
	// per-client response ring on the client).
	ModeWriteImm
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeWriteImm {
		return "writeimm"
	}
	return "send"
}

// Phase is a named absolute time window, mirrored from the chaos
// schedule (fault.Schedule.Windows): requests bucket into the phase
// their *scheduled issue time* falls in, so availability can be reported
// per chaos phase. A zero To is open-ended.
type Phase struct {
	Name string
	From sim.Time
	To   sim.Time
}

// Options parameterizes one kv run. The zero value is not runnable;
// WithDefaults fills every unset knob.
type Options struct {
	// Requests is the total request count across all clients; zero
	// disables the kv scenario entirely (the experiment harness keys on
	// it).
	Requests  int
	Clients   int
	Followers int
	Mode      Mode

	ValueBytes  int     // Put payload size
	KeySpace    int     // keys drawn uniformly from [0, KeySpace)
	PutFraction float64 // fraction of requests that are Puts

	// Client robustness policy.
	SLO            sim.Duration // a request answered within this is "available"
	RequestTimeout sim.Duration // per-attempt timeout
	BackoffBase    sim.Duration // backoff after attempt k is base·2^k, jittered ±50%
	MaxRetries     int          // attempts beyond the first before giving up

	// QuorumTimeout is how long the oldest uncommitted entry may age
	// before the leader degrades to read-only service.
	QuorumTimeout sim.Duration

	// Open-loop arrival process: per-client exponential interarrivals
	// with mean IssueGap, starting at IssueStart.
	IssueStart sim.Time
	IssueGap   sim.Duration

	// Phases labels time windows for per-phase availability reporting.
	Phases []Phase
}

// WithDefaults fills unset fields with the standard configuration.
func (o Options) WithDefaults() Options {
	if o.Clients == 0 {
		o.Clients = 6
	}
	if o.Followers == 0 {
		o.Followers = 2
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 2000
	}
	if o.KeySpace == 0 {
		o.KeySpace = 64
	}
	if o.PutFraction == 0 {
		o.PutFraction = 0.5
	}
	if o.SLO == 0 {
		o.SLO = 150 * sim.Microsecond
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 100 * sim.Microsecond
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 40 * sim.Microsecond
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.QuorumTimeout == 0 {
		o.QuorumTimeout = 150 * sim.Microsecond
	}
	if o.IssueStart == 0 {
		o.IssueStart = sim.Time(20 * sim.Microsecond)
	}
	if o.IssueGap == 0 {
		o.IssueGap = 50 * sim.Microsecond
	}
	return o
}

// Placement pins the replica group and clients to hosts.
type Placement struct {
	Leader    packet.NodeID
	Followers []packet.NodeID
	Clients   []packet.NodeID
}

// Place spreads a replica group and clients across a host list laid out
// pod-major (hostsPerPod consecutive hosts per pod, the fat-tree
// convention): the leader takes the first host of pod 0, follower j the
// first host of pod j+1, and clients fill remaining hosts round-robin
// across pods — so client↔leader and replication traffic crosses the
// core, where the chaos schedules strike.
func Place(hosts []packet.NodeID, hostsPerPod, followers, clients int) Placement {
	if hostsPerPod <= 0 {
		hostsPerPod = 1
	}
	pods := (len(hosts) + hostsPerPod - 1) / hostsPerPod
	pl := Placement{Leader: hosts[0]}
	used := map[packet.NodeID]bool{pl.Leader: true}
	for j := 0; j < followers; j++ {
		idx := ((j + 1) * hostsPerPod) % len(hosts)
		for used[hosts[idx]] {
			idx = (idx + 1) % len(hosts)
		}
		used[hosts[idx]] = true
		pl.Followers = append(pl.Followers, hosts[idx])
	}
	next := make([]int, pods)
	for len(pl.Clients) < clients {
		progress := false
		for p := 0; p < pods && len(pl.Clients) < clients; p++ {
			for next[p] < hostsPerPod {
				i := p*hostsPerPod + next[p]
				next[p]++
				if i >= len(hosts) || used[hosts[i]] {
					continue
				}
				used[hosts[i]] = true
				pl.Clients = append(pl.Clients, hosts[i])
				progress = true
				break
			}
		}
		if !progress {
			// More clients than free hosts: share hosts round-robin.
			pl.Clients = append(pl.Clients, hosts[len(pl.Clients)%len(hosts)])
		}
	}
	return pl
}

// Stats are the client-side robustness counters, summed across clients
// in client-index order.
type Stats struct {
	Issued    uint64 // requests handed to clients
	Resolved  uint64 // requests that reached a terminal outcome
	Committed uint64 // Puts acknowledged by a quorum
	GetsOK    uint64 // Gets answered (found or not-found)
	WithinSLO uint64 // successful requests answered within the SLO
	Retries   uint64 // resends after a per-attempt timeout
	Timeouts  uint64 // per-attempt timeouts observed
	GiveUps   uint64 // requests abandoned after MaxRetries
	ReadOnly  uint64 // Puts rejected by a degraded (quorum-less) leader
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Issued += o.Issued
	s.Resolved += o.Resolved
	s.Committed += o.Committed
	s.GetsOK += o.GetsOK
	s.WithinSLO += o.WithinSLO
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.GiveUps += o.GiveUps
	s.ReadOnly += o.ReadOnly
}

// PhaseStat is availability bucketed by chaos phase name: of the
// requests issued during windows with this name, how many were answered
// within the SLO. Bucket 0 ("steady") collects requests issued outside
// every labeled window.
type PhaseStat struct {
	Name      string
	Issued    uint64
	WithinSLO uint64
}

// Report is the run's full kv result: aggregate counters, latency
// sketches (the streaming histograms the rest of the harness uses), and
// per-phase availability.
type Report struct {
	Mode      string
	Clients   int
	Followers int

	Stats

	// DegradedEnters counts leader transitions into read-only service;
	// LeaderReadOnly counts Put rejections it issued while degraded.
	DegradedEnters uint64
	LeaderReadOnly uint64

	// Availability is WithinSLO / Resolved.
	Availability float64

	// Commit sketches committed-Put latency (scheduled issue → commit
	// ack); RPC sketches all successful request latencies.
	Commit *metrics.Histogram
	RPC    *metrics.Histogram

	CommitP50 sim.Duration
	CommitP99 sim.Duration

	Phases []PhaseStat
}
