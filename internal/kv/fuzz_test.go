package kv

import (
	"bytes"
	"testing"
)

// FuzzKVRPCFraming differentially checks the RPC framing: any byte slice
// either fails to decode, or decodes to a message whose re-encoding is
// byte-identical to the consumed prefix (canonical encoding), decodes
// again to the same message, and reports a sane consumed length. Both
// request and response framings run against the same input.
func FuzzKVRPCFraming(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalRequest(nil, Request{Client: 3, Seq: 9, Op: OpGet, Key: 42}))
	f.Add(MarshalRequest(nil, Request{Client: 1, Seq: 1, Op: OpPut, Key: 7, Value: []byte("hello")}))
	f.Add(MarshalResponse(nil, Response{Client: 3, Seq: 9, Status: RespOK, Value: []byte{0, 1, 2}}))
	f.Add(MarshalResponse(nil, Response{Client: 0, Seq: 0, Status: RespReadOnly}))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		if req, n, err := UnmarshalRequest(b); err == nil {
			if n < reqHeaderLen || n > len(b) {
				t.Fatalf("request consumed %d of %d", n, len(b))
			}
			re := MarshalRequest(nil, req)
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("request re-encode mismatch:\n got %x\nwant %x", re, b[:n])
			}
			req2, n2, err2 := UnmarshalRequest(re)
			if err2 != nil || n2 != n {
				t.Fatalf("request re-decode failed: %v (n=%d want %d)", err2, n2, n)
			}
			if req2.Client != req.Client || req2.Seq != req.Seq || req2.Op != req.Op ||
				req2.Key != req.Key || !bytes.Equal(req2.Value, req.Value) {
				t.Fatalf("request round-trip drift: %+v vs %+v", req2, req)
			}
		}
		if resp, n, err := UnmarshalResponse(b); err == nil {
			if n < respHeaderLen || n > len(b) {
				t.Fatalf("response consumed %d of %d", n, len(b))
			}
			re := MarshalResponse(nil, resp)
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("response re-encode mismatch:\n got %x\nwant %x", re, b[:n])
			}
			resp2, n2, err2 := UnmarshalResponse(re)
			if err2 != nil || n2 != n {
				t.Fatalf("response re-decode failed: %v (n=%d want %d)", err2, n2, n)
			}
			if resp2.Client != resp.Client || resp2.Seq != resp.Seq ||
				resp2.Status != resp.Status || !bytes.Equal(resp2.Value, resp.Value) {
				t.Fatalf("response round-trip drift: %+v vs %+v", resp2, resp)
			}
		}
	})
}
