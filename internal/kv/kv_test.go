package kv

import (
	"reflect"
	"testing"

	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/verbs"
)

// runKV spins up a service on a single-switch star and runs it to
// completion (or the deadline). lossFn may be nil.
func runKV(t *testing.T, o Options, lossFn func(*packet.Packet) bool) (*Service, *Report) {
	t.Helper()
	o = o.WithDefaults()
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.LossInject = lossFn
	hosts := 1 + o.Followers + o.Clients
	net := fabric.New(eng, topo.NewStar(hosts), cfg)

	pl := Placement{Leader: 0}
	for j := 0; j < o.Followers; j++ {
		pl.Followers = append(pl.Followers, packet.NodeID(1+j))
	}
	for i := 0; i < o.Clients; i++ {
		pl.Clients = append(pl.Clients, packet.NodeID(1+o.Followers+i))
	}

	svc := New(net, pl, verbs.DefaultConfig(), o, 7)
	svc.Start()
	eng.RunUntil(sim.Time(200 * sim.Millisecond))
	return svc, svc.Report()
}

func testOptions(mode Mode) Options {
	return Options{
		Requests: 48,
		Mode:     mode,
	}
}

func checkHealthy(t *testing.T, svc *Service, rep *Report) {
	t.Helper()
	if !svc.Done() {
		t.Fatalf("service not done: %d/%d resolved", rep.Resolved, rep.Issued)
	}
	if rep.Resolved != uint64(len(svc.issues)) {
		t.Fatalf("resolved %d of %d", rep.Resolved, len(svc.issues))
	}
	if rep.Committed == 0 {
		t.Error("no Puts committed")
	}
	if rep.GetsOK == 0 {
		t.Error("no Gets answered")
	}
	if rep.GiveUps != 0 || rep.ReadOnly != 0 {
		t.Errorf("healthy fabric saw %d give-ups, %d read-only rejections", rep.GiveUps, rep.ReadOnly)
	}
	if rep.Availability < 0.95 {
		t.Errorf("availability %.3f on a healthy fabric", rep.Availability)
	}
	if rep.Commit.N() == 0 || rep.CommitP99 == 0 {
		t.Error("commit latency histogram empty")
	}
	// Replication really happened: every committed key on the leader is
	// present on every follower with the same bytes (followers apply on
	// arrival, so their stores are supersets of the committed state only
	// when uncommitted tails exist — here everything committed).
	srv := svc.leader
	for j, f := range svc.followers {
		for k, v := range srv.store {
			fv, ok := f.store[k]
			if !ok {
				t.Fatalf("follower %d missing committed key %d", j, k)
			}
			if !reflect.DeepEqual(v, fv) {
				t.Fatalf("follower %d diverged on key %d", j, k)
			}
		}
	}
}

func TestKVEndToEndSend(t *testing.T) {
	svc, rep := runKV(t, testOptions(ModeSend), nil)
	checkHealthy(t, svc, rep)
}

func TestKVEndToEndWriteImm(t *testing.T) {
	svc, rep := runKV(t, testOptions(ModeWriteImm), nil)
	checkHealthy(t, svc, rep)
}

// TestKVDegradesToReadOnly severs replication (drops every data packet
// on the leader→follower flows) and checks the failover state machine:
// the leader must degrade, reject Puts read-only, keep serving Gets, and
// the client whose Put is stuck in the log must exhaust its retries and
// give up — all without hanging the run.
func TestKVDegradesToReadOnly(t *testing.T) {
	o := testOptions(ModeSend)
	o = o.WithDefaults()
	repBase := packet.FlowID(2 * o.Clients)
	lossFn := func(pk *packet.Packet) bool {
		return pk.Type == packet.TypeData && pk.Flow > repBase && pk.Flow%2 == 1
	}
	svc, rep := runKV(t, o, lossFn)
	if !svc.Done() {
		t.Fatalf("service hung: %d/%d resolved", rep.Resolved, rep.Issued)
	}
	if rep.DegradedEnters == 0 {
		t.Error("leader never degraded despite severed replication")
	}
	if rep.ReadOnly == 0 {
		t.Error("no read-only rejections while degraded")
	}
	if rep.GiveUps == 0 {
		t.Error("the stuck Put's client never gave up")
	}
	if rep.GetsOK == 0 {
		t.Error("degraded leader stopped serving Gets")
	}
}

// TestKVDeterministic runs the same configuration twice and demands a
// bit-identical report, for both wire variants.
func TestKVDeterministic(t *testing.T) {
	for _, mode := range []Mode{ModeSend, ModeWriteImm} {
		_, a := runKV(t, testOptions(mode), nil)
		_, b := runKV(t, testOptions(mode), nil)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %s: reports differ across identical runs", mode)
		}
	}
}

// TestPlaceSpreadsReplicas checks the pod-aware placement: replicas land
// in distinct pods, nothing collides, and oversubscription falls back to
// shared hosts instead of spinning.
func TestPlaceSpreadsReplicas(t *testing.T) {
	hosts := make([]packet.NodeID, 16)
	for i := range hosts {
		hosts[i] = packet.NodeID(i)
	}
	pl := Place(hosts, 4, 2, 6)
	if pl.Leader != 0 {
		t.Errorf("leader = %d", pl.Leader)
	}
	used := map[packet.NodeID]bool{pl.Leader: true}
	for _, h := range append(append([]packet.NodeID{}, pl.Followers...), pl.Clients...) {
		if used[h] {
			t.Fatalf("host %d reused", h)
		}
		used[h] = true
	}
	pod := func(h packet.NodeID) int { return int(h) / 4 }
	if pod(pl.Followers[0]) == 0 || pod(pl.Followers[1]) == 0 || pod(pl.Followers[0]) == pod(pl.Followers[1]) {
		t.Errorf("followers not spread across pods: %v", pl.Followers)
	}
	// Oversubscribed: more participants than hosts must still terminate.
	small := Place(hosts[:4], 4, 2, 6)
	if len(small.Clients) != 6 {
		t.Errorf("oversubscribed placement returned %d clients", len(small.Clients))
	}
}
