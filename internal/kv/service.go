package kv

// This file is the service proper: the leader (RPC server + replication
// driver + failover state machine), the followers (apply + ack), and the
// clients (open-loop issue queue + timeout/backoff/give-up policy).
//
// Construction discipline for sharded determinism: every host-owned
// object (QP, ring, timer) is built inside an attach event scheduled at
// t=0 under the owning host's clock, so the owning shard creates and
// exclusively drives it. The coordinator only reads client/leader state
// at window barriers (Done/Horizon/Report), which the windowed runner
// orders against all shard execution.

import (
	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/metrics"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/verbs"
)

// Ring geometry. Slots comfortably exceed the maximum in-flight count
// (clients run one outstanding request; the leader's replication window
// is bounded by the clients'), so slot reuse never overwrites an
// unconsumed frame.
const (
	reqSlots  = 16 // per-client request ring (ModeWriteImm)
	respSlots = 16 // per-client response ring
	logSlots  = 64 // per-follower replication log ring
)

// rkeys. Memories are per-host, so only the leader's (which serves all
// clients) needs per-client keys.
const (
	rkLog  = 1 // follower memory: replication log ring
	rkResp = 2 // client memory: response ring
	rkReq  = 0x100
)

// Service is one configured kv deployment bound to a fabric.
type Service struct {
	net  *fabric.Network
	pl   Placement
	o    Options
	qcfg verbs.Config
	seed uint64

	issues     []issue
	phaseNames []string

	leader    *server
	followers []*follower
	clients   []*client
	// shard[k] is shard k's resolution bookkeeping, written by that
	// shard's clients during windows and read (and armed) by the
	// coordinator at barriers — the same split-ownership discipline as
	// the flow launcher's per-shard slots.
	shard []kvShard
}

// kvShard is one shard's completion counters for the windowed runtime's
// adaptive extension. target, when positive, is the shard-local resolved
// count at which the shard self-stops its engine — the Widen grant's
// promise that the shard halts no later than Done turning true. Padded
// so two shards' counters never share a cache line.
type kvShard struct {
	resolved uint64
	target   uint64
	_        [6]uint64
}

// Widen is the sim.WindowConfig.Widen hook: consulted at a barrier when
// shard uniquely holds the minimum pending event and its window could
// extend past the uniform lookahead bound. Done is a pure resolved
// count, so the grant arms shard's target at "every request not yet
// resolved elsewhere" — exactly the count at which this shard's
// resolutions make Done true — and clears every other shard's target.
// If shard hosts no clients the target is unreachable and the run falls
// back to the deadline exit, identical to fixed windows; if other
// shards resolve requests during the widened window, the global last
// resolve only moves later and the horizon still covers the window.
func (s *Service) Widen(shard int) bool {
	var others uint64
	for k := range s.shard {
		if k != shard {
			others += s.shard[k].resolved
			s.shard[k].target = 0
		}
	}
	s.shard[shard].target = uint64(len(s.issues)) - others
	return true
}

// issue is one precomputed request: who issues it, when, and what.
type issue struct {
	client int
	at     sim.Time
	put    bool
	key    uint64
}

// Service event kinds.
const (
	evAttachLeader uint8 = iota
	evAttachFollower
	evAttachClient
	evIssue
)

// New builds a service over net with the given placement. qcfg is the
// verbs transport configuration every QP uses (MaxRetries is forced to
// zero: the retry budget lives in the client policy, not the transport).
// The request schedule — arrival times, op mix, keys — is derived here,
// deterministically, from seed.
func New(net *fabric.Network, pl Placement, qcfg verbs.Config, o Options, seed uint64) *Service {
	o = o.WithDefaults()
	if len(pl.Followers) != o.Followers || len(pl.Clients) != o.Clients {
		panic("kv: placement does not match options")
	}
	qcfg.MaxRetries = 0
	s := &Service{
		net:       net,
		pl:        pl,
		o:         o,
		qcfg:      qcfg,
		seed:      seed,
		followers: make([]*follower, o.Followers),
		clients:   make([]*client, o.Clients),
		shard:     make([]kvShard, net.Shards()),
	}
	s.phaseNames = []string{"steady"}
	for _, w := range o.Phases {
		known := false
		for _, n := range s.phaseNames {
			if n == w.Name {
				known = true
				break
			}
		}
		if !known {
			s.phaseNames = append(s.phaseNames, w.Name)
		}
	}
	s.issues = make([]issue, o.Requests)
	rngs := make([]*sim.RNG, o.Clients)
	ts := make([]sim.Time, o.Clients)
	for i := range rngs {
		rngs[i] = sim.NewRNG(sim.DeriveSeed(seed, "kv/arrivals", i))
		ts[i] = o.IssueStart
	}
	for r := range s.issues {
		i := r % o.Clients
		gap := sim.Duration(float64(o.IssueGap) * rngs[i].ExpFloat64())
		ts[i] = ts[i].Add(gap)
		s.issues[r] = issue{
			client: i,
			at:     ts[i],
			put:    rngs[i].Float64() < o.PutFraction,
			key:    uint64(rngs[i].Intn(o.KeySpace)),
		}
	}
	return s
}

// slotBytes is the ring-slot size: the largest frame plus header slack.
func (s *Service) slotBytes() int { return 32 + s.o.ValueBytes }

// bucketOf maps a scheduled issue time to its phase bucket.
func (s *Service) bucketOf(t sim.Time) int {
	for _, w := range s.o.Phases {
		if t >= w.From && (w.To == 0 || t < w.To) {
			for b, n := range s.phaseNames {
				if n == w.Name {
					return b
				}
			}
		}
	}
	return 0
}

// Start schedules the attach events (t=0, one per host, under the
// host's clock) and every request issue event, and returns the last
// scheduled issue time (the deadline anchor).
func (s *Service) Start() (lastIssue sim.Time) {
	net := s.net
	lh := s.pl.Leader
	net.EngineOf(lh).ScheduleEventFrom(net.Clock(lh), 0, s, evAttachLeader, 0)
	for j, h := range s.pl.Followers {
		net.EngineOf(h).ScheduleEventFrom(net.Clock(h), 0, s, evAttachFollower, uint64(j))
	}
	for i, h := range s.pl.Clients {
		net.EngineOf(h).ScheduleEventFrom(net.Clock(h), 0, s, evAttachClient, uint64(i))
	}
	for r := range s.issues {
		is := &s.issues[r]
		h := s.pl.Clients[is.client]
		net.EngineOf(h).ScheduleEventFrom(net.Clock(h), is.at, s, evIssue, uint64(r))
		if is.at > lastIssue {
			lastIssue = is.at
		}
	}
	return lastIssue
}

// HandleEvent implements sim.Handler; each event runs on the shard
// owning the host it addresses.
func (s *Service) HandleEvent(kind uint8, arg uint64) {
	switch kind {
	case evAttachLeader:
		s.attachLeader()
	case evAttachFollower:
		s.attachFollower(int(arg))
	case evAttachClient:
		s.attachClient(int(arg))
	case evIssue:
		r := int(arg)
		s.clients[s.issues[r].client].enqueue(r)
	}
}

// Flow-ID layout: two flows per QP pair, clients first, then followers.
func (s *Service) clientFlows(i int) (c2l, l2c packet.FlowID) {
	return packet.FlowID(1 + 2*i), packet.FlowID(2 + 2*i)
}

func (s *Service) followerFlows(j int) (l2f, f2l packet.FlowID) {
	base := 2 * s.o.Clients
	return packet.FlowID(base + 1 + 2*j), packet.FlowID(base + 2 + 2*j)
}

// Done reports whether every request reached a terminal outcome; polled
// at window barriers.
func (s *Service) Done() bool {
	var n uint64
	for _, c := range s.clients {
		if c == nil {
			return false
		}
		n += c.st.Resolved
	}
	return n == uint64(len(s.issues))
}

// LastResolve returns the time the final request resolved; with the
// fabric's window slack added it is the canonical run horizon.
func (s *Service) LastResolve() sim.Time {
	var last sim.Time
	for _, c := range s.clients {
		if c != nil && c.lastResolve > last {
			last = c.lastResolve
		}
	}
	return last
}

// TransportStats sums the verbs-level counters over every QP, in
// deterministic order (clients, then the leader's client- and
// follower-facing QPs, then followers).
func (s *Service) TransportStats() (retransmits, timeouts, rnrNacks, drops uint64) {
	add := func(q *verbs.QP) {
		retransmits += q.Retransmits
		timeouts += q.Timeouts
		rnrNacks += q.RNRNacks
		drops += q.Drops
	}
	for _, c := range s.clients {
		if c != nil {
			add(c.ep.qp)
		}
	}
	if s.leader != nil {
		for _, ep := range s.leader.chalves {
			add(ep.qp)
		}
		for _, ep := range s.leader.fhalves {
			add(ep.qp)
		}
	}
	for _, f := range s.followers {
		if f != nil {
			add(f.ep.qp)
		}
	}
	return
}

// Report aggregates the run, merging per-client state in client-index
// order. Call only after the run completes.
func (s *Service) Report() *Report {
	rep := &Report{
		Mode:      s.o.Mode.String(),
		Clients:   s.o.Clients,
		Followers: s.o.Followers,
		Commit:    &metrics.Histogram{},
		RPC:       &metrics.Histogram{},
		Phases:    make([]PhaseStat, len(s.phaseNames)),
	}
	for b, n := range s.phaseNames {
		rep.Phases[b].Name = n
	}
	for _, c := range s.clients {
		if c == nil {
			continue
		}
		rep.Stats.add(c.st)
		rep.Commit.Merge(&c.commitHist)
		rep.RPC.Merge(&c.rpcHist)
		for b := range c.phase {
			rep.Phases[b].Issued += c.phase[b].Issued
			rep.Phases[b].WithinSLO += c.phase[b].WithinSLO
		}
	}
	if s.leader != nil {
		rep.DegradedEnters = s.leader.degradedEnters
		rep.LeaderReadOnly = s.leader.readOnlyResp
	}
	if rep.Resolved > 0 {
		rep.Availability = float64(rep.WithinSLO) / float64(rep.Resolved)
	}
	if rep.Commit.N() > 0 {
		rep.CommitP50 = sim.Duration(rep.Commit.Quantile(50))
		rep.CommitP99 = sim.Duration(rep.Commit.Quantile(99))
	}
	return rep
}

// ---------------------------------------------------------------------
// Leader.

// logEntry is one uncommitted-or-committed Put in the leader's log.
type logEntry struct {
	client int
	seq    uint64
	key    uint64
	val    []byte
	at     sim.Time // append time; ages against QuorumTimeout
	acks   int
}

// cached is the per-client dedup record: the last answered request and
// its response frame, resent verbatim on duplicate arrivals.
type cached struct {
	seq   uint64
	resp  []byte
	valid bool
}

// server is the leader: RPC endpoint, replication driver, and the
// degraded/read-only failover state machine.
type server struct {
	s   *Service
	nic *fabric.NIC
	mem *verbs.Memory

	srq     *verbs.SRQ
	srqBufs [][]byte

	chalves  []*endpoint // client-facing QPs, by client index
	fhalves  []*endpoint // follower-facing QPs, by follower index
	respSeq  []uint32    // per-client response ring sequence (ModeWriteImm)
	lastDone []cached

	store  map[uint64][]byte
	log    []logEntry
	commit int // committed prefix length
	need   int // follower acks required per entry (quorum − leader)

	degraded       bool
	degradedEnters uint64
	readOnlyResp   uint64
}

func (s *Service) attachLeader() {
	nic := s.net.NIC(s.pl.Leader)
	srv := &server{
		s:        s,
		nic:      nic,
		mem:      verbs.NewMemory(),
		chalves:  make([]*endpoint, s.o.Clients),
		fhalves:  make([]*endpoint, s.o.Followers),
		respSeq:  make([]uint32, s.o.Clients),
		lastDone: make([]cached, s.o.Clients),
		store:    make(map[uint64][]byte),
		need:     (s.o.Followers + 1) / 2,
	}
	slot := s.slotBytes()
	if s.o.Mode == ModeSend {
		srv.srq = verbs.NewSRQ()
		n := 4 * s.o.Clients
		srv.srqBufs = make([][]byte, n)
		for id := 0; id < n; id++ {
			srv.srqBufs[id] = make([]byte, slot)
			srv.srq.Post(uint64(id), srv.srqBufs[id])
		}
	}
	for i := 0; i < s.o.Clients; i++ {
		i := i
		cq := &verbs.CQ{}
		cq.OnComplete(func(e verbs.CQE) { srv.onClientCQE(i, e) })
		out, in := s.clientFlows(i)
		ep := attachEndpoint(nic, s.pl.Clients[i], in, out, s.qcfg, srv.mem, cq, "leader-c")
		srv.chalves[i] = ep
		if s.o.Mode == ModeSend {
			ep.qp.UseSRQ(srv.srq)
		} else {
			srv.mem.Register(rkReq+uint32(i), make([]byte, reqSlots*slot))
			for k := 0; k < 2*reqSlots; k++ {
				ep.qp.PostRecv(0, nil)
			}
		}
	}
	for j := 0; j < s.o.Followers; j++ {
		j := j
		cq := &verbs.CQ{}
		cq.OnComplete(func(e verbs.CQE) { srv.onFollowerCQE(j, e) })
		out, in := s.followerFlows(j)
		ep := attachEndpoint(nic, s.pl.Followers[j], out, in, s.qcfg, srv.mem, cq, "leader-f")
		srv.fhalves[j] = ep
		for k := 0; k < 2*logSlots; k++ {
			ep.qp.PostRecv(0, nil)
		}
	}
	s.leader = srv
}

// onClientCQE consumes one completion on client i's QP: requests in,
// plus our own response-send completions (ignored).
func (srv *server) onClientCQE(i int, e verbs.CQE) {
	if !e.Receive {
		return
	}
	var req Request
	var err error
	switch srv.s.o.Mode {
	case ModeSend:
		id := int(e.WQEID)
		buf := srv.srqBufs[id]
		req, _, err = UnmarshalRequest(buf[:e.Len])
		srv.srq.Post(e.WQEID, buf) // repost the consumed SRQ WQE
	default: // ModeWriteImm
		slot := int(e.Imm) % reqSlots
		// Zero-copy: UnmarshalRequest copies the value out, so the ring
		// bytes are done with before the next slot write can land.
		ring, _ := srv.mem.View(rkReq+uint32(i), uint64(slot*srv.s.slotBytes()), srv.s.slotBytes())
		req, _, err = UnmarshalRequest(ring)
		srv.chalves[i].qp.PostRecv(0, nil)
	}
	if err != nil {
		return
	}
	srv.handle(i, req, e.At)
}

// handle processes one decoded client request on the leader.
func (srv *server) handle(i int, req Request, now sim.Time) {
	ld := &srv.lastDone[i]
	if ld.valid && req.Seq == ld.seq {
		srv.sendResp(i, ld.resp) // duplicate of the answered request
		return
	}
	if ld.valid && req.Seq < ld.seq {
		return // stale retry the client already abandoned
	}
	if req.Op == OpGet {
		st := RespOK
		val, ok := srv.store[req.Key]
		if !ok {
			st = RespNotFound
		}
		srv.reply(i, Response{Client: uint32(i), Seq: req.Seq, Status: st, Value: val})
		return
	}
	// Put: drop duplicates of an entry still in flight (its response
	// comes at commit), then run the failover state machine.
	for k := srv.commit; k < len(srv.log); k++ {
		if srv.log[k].client == i && srv.log[k].seq == req.Seq {
			return
		}
	}
	srv.refreshDegraded(now)
	if srv.degraded {
		srv.readOnlyResp++
		srv.reply(i, Response{Client: uint32(i), Seq: req.Seq, Status: RespReadOnly})
		return
	}
	idx := len(srv.log)
	srv.log = append(srv.log, logEntry{
		client: i,
		seq:    req.Seq,
		key:    req.Key,
		// UnmarshalRequest allocated this value fresh; the log entry
		// takes ownership instead of copying it a second time.
		val: req.Value,
		at:  now,
	})
	if srv.need == 0 {
		srv.advanceCommit(now)
		return
	}
	frame := MarshalRequest(nil, req)
	slot := uint64(idx%logSlots) * uint64(srv.s.slotBytes())
	for j := range srv.fhalves {
		_ = srv.fhalves[j].qp.PostSend(verbs.Request{
			ID:   uint64(idx),
			Op:   verbs.OpWriteImm,
			Data: frame,
			RKey: rkLog,
			VA:   slot,
			Imm:  uint32(idx),
		})
	}
}

// refreshDegraded runs the failover state machine: recover when the
// commit point caught up; degrade when the oldest uncommitted entry has
// aged past the quorum timeout.
func (srv *server) refreshDegraded(now sim.Time) {
	if srv.commit == len(srv.log) {
		srv.degraded = false
		return
	}
	if !srv.degraded && now.Sub(srv.log[srv.commit].at) > srv.s.o.QuorumTimeout {
		srv.degraded = true
		srv.degradedEnters++
	}
}

// onFollowerCQE consumes follower j's ack (a zero-length WRITE-with-imm
// whose immediate is the log index).
func (srv *server) onFollowerCQE(j int, e verbs.CQE) {
	if !e.Receive {
		return
	}
	srv.fhalves[j].qp.PostRecv(0, nil)
	idx := int(e.Imm)
	if idx >= len(srv.log) {
		return
	}
	srv.log[idx].acks++
	srv.advanceCommit(e.At)
}

// advanceCommit applies and answers the quorum-acked log prefix, and
// clears degradation once fully caught up.
func (srv *server) advanceCommit(now sim.Time) {
	for srv.commit < len(srv.log) && srv.log[srv.commit].acks >= srv.need {
		en := &srv.log[srv.commit]
		srv.store[en.key] = en.val
		srv.commit++
		srv.reply(en.client, Response{Client: uint32(en.client), Seq: en.seq, Status: RespOK})
	}
	if srv.degraded && srv.commit == len(srv.log) {
		srv.degraded = false
	}
}

// reply caches the response for duplicate suppression and transmits it.
func (srv *server) reply(i int, resp Response) {
	frame := MarshalResponse(nil, resp)
	srv.lastDone[i] = cached{seq: resp.Seq, resp: frame, valid: true}
	srv.sendResp(i, frame)
}

// sendResp transmits a response frame on the chosen wire variant.
func (srv *server) sendResp(i int, frame []byte) {
	switch srv.s.o.Mode {
	case ModeSend:
		_ = srv.chalves[i].qp.PostSend(verbs.Request{Op: verbs.OpSend, Data: frame})
	default: // ModeWriteImm
		srv.respSeq[i]++
		sq := srv.respSeq[i]
		_ = srv.chalves[i].qp.PostSend(verbs.Request{
			Op:   verbs.OpWriteImm,
			Data: frame,
			RKey: rkResp,
			VA:   uint64(sq%respSlots) * uint64(srv.s.slotBytes()),
			Imm:  sq,
		})
	}
}

// ---------------------------------------------------------------------
// Follower.

// follower applies replicated entries from its log ring and acks each
// with a zero-length WRITE-with-imm carrying the log index.
type follower struct {
	s     *Service
	j     int
	ep    *endpoint
	mem   *verbs.Memory
	store map[uint64][]byte
}

func (s *Service) attachFollower(j int) {
	nic := s.net.NIC(s.pl.Followers[j])
	f := &follower{s: s, j: j, mem: verbs.NewMemory(), store: make(map[uint64][]byte)}
	f.mem.Register(rkLog, make([]byte, logSlots*s.slotBytes()))
	cq := &verbs.CQ{}
	cq.OnComplete(f.onCQE)
	out, in := s.followerFlows(j)
	f.ep = attachEndpoint(nic, s.pl.Leader, in, out, s.qcfg, f.mem, cq, "follower")
	for k := 0; k < 2*logSlots; k++ {
		f.ep.qp.PostRecv(0, nil)
	}
	s.followers[j] = f
}

func (f *follower) onCQE(e verbs.CQE) {
	if !e.Receive {
		return
	}
	f.ep.qp.PostRecv(0, nil)
	idx := int(e.Imm)
	slot := uint64(idx%logSlots) * uint64(f.s.slotBytes())
	ring, _ := f.mem.View(rkLog, slot, f.s.slotBytes())
	if en, _, err := UnmarshalRequest(ring); err == nil {
		f.store[en.Key] = en.Value
	}
	_ = f.ep.qp.PostSend(verbs.Request{ID: uint64(idx), Op: verbs.OpWriteImm, Imm: uint32(idx)})
}

// ---------------------------------------------------------------------
// Client.

// phaseCount is one client's per-phase availability tally.
type phaseCount struct {
	Issued    uint64
	WithinSLO uint64
}

// client runs the robustness policy: one outstanding request, a FIFO
// backlog of scheduled issues, per-attempt timeouts, exponential backoff
// with deterministic jitter, bounded retries, give-up.
type client struct {
	s     *Service
	idx   int
	shard int // owning shard: index into Service.shard
	nic   *fabric.NIC
	ep    *endpoint
	mem   *verbs.Memory
	rng   *sim.RNG
	timer *sim.Timer

	recvBufs [][]byte // posted response buffers (ModeSend)
	val      []byte   // Put-payload scratch, rewritten per send

	queue     []int
	cur       int // outstanding request index; -1 when idle
	attempt   int
	inBackoff bool
	seq       uint32 // wire sequence for request-ring slots

	st          Stats
	phase       []phaseCount
	commitHist  metrics.Histogram
	rpcHist     metrics.Histogram
	lastResolve sim.Time
}

// ckTimer is the client's only event kind: per-attempt timeout, or
// backoff expiry when inBackoff.
const ckTimer uint8 = 0

func (s *Service) attachClient(i int) {
	nic := s.net.NIC(s.pl.Clients[i])
	c := &client{
		s:     s,
		idx:   i,
		shard: s.net.ShardOf(s.pl.Clients[i]),
		nic:   nic,
		mem:   verbs.NewMemory(),
		rng:   sim.NewRNG(sim.DeriveSeed(s.seed, "kv/backoff", i)),
		cur:   -1,
		phase: make([]phaseCount, len(s.phaseNames)),
	}
	slot := s.slotBytes()
	cq := &verbs.CQ{}
	cq.OnComplete(c.onCQE)
	out, in := s.clientFlows(i)
	c.ep = attachEndpoint(nic, s.pl.Leader, out, in, s.qcfg, c.mem, cq, "client")
	if s.o.Mode == ModeSend {
		c.recvBufs = make([][]byte, 8)
		for id := range c.recvBufs {
			c.recvBufs[id] = make([]byte, slot)
			c.ep.qp.PostRecv(uint64(id), c.recvBufs[id])
		}
	} else {
		c.mem.Register(rkResp, make([]byte, respSlots*slot))
		for k := 0; k < 2*respSlots; k++ {
			c.ep.qp.PostRecv(0, nil)
		}
	}
	c.timer = sim.NewHandlerTimer(nic.Engine(), nic.Clock(), c, ckTimer)
	s.clients[i] = c
}

// enqueue hands the client a scheduled request (the evIssue event).
func (c *client) enqueue(r int) {
	c.st.Issued++
	c.queue = append(c.queue, r)
	if c.cur < 0 && !c.inBackoff {
		c.startNext(c.nic.Now())
	}
}

// startNext pops the backlog and transmits.
func (c *client) startNext(now sim.Time) {
	if len(c.queue) == 0 {
		c.cur = -1
		return
	}
	c.cur = c.queue[0]
	c.queue = c.queue[1:]
	c.attempt = 0
	c.send(now)
}

// valueFor generates the deterministic Put payload for request r into
// the client's scratch buffer — safe to reuse across sends because
// MarshalRequest copies it into the wire frame and nothing else retains
// it.
func (c *client) valueFor(r int) []byte {
	if c.val == nil {
		c.val = make([]byte, c.s.o.ValueBytes)
	}
	for i := range c.val {
		c.val[i] = byte(r*31 + i)
	}
	return c.val
}

// send transmits the current request (attempt c.attempt) and arms the
// per-attempt timeout.
func (c *client) send(now sim.Time) {
	r := c.cur
	is := &c.s.issues[r]
	req := Request{Client: uint32(c.idx), Seq: uint64(r), Key: is.key}
	if is.put {
		req.Op = OpPut
		req.Value = c.valueFor(r)
	}
	if c.attempt > 0 {
		c.st.Retries++
	}
	frame := MarshalRequest(nil, req)
	switch c.s.o.Mode {
	case ModeSend:
		_ = c.ep.qp.PostSend(verbs.Request{ID: uint64(r), Op: verbs.OpSend, Data: frame})
	default: // ModeWriteImm
		c.seq++
		_ = c.ep.qp.PostSend(verbs.Request{
			ID:   uint64(r),
			Op:   verbs.OpWriteImm,
			Data: frame,
			RKey: rkReq + uint32(c.idx),
			VA:   uint64(c.seq%reqSlots) * uint64(c.s.slotBytes()),
			Imm:  c.seq,
		})
	}
	c.timer.Arm(c.s.o.RequestTimeout)
}

// HandleEvent implements sim.Handler: the shared timer fires either a
// backoff expiry (resend now) or a per-attempt timeout.
func (c *client) HandleEvent(kind uint8, arg uint64) {
	now := c.nic.Now()
	if c.cur < 0 {
		return
	}
	if c.inBackoff {
		c.inBackoff = false
		c.send(now)
		return
	}
	c.attempt++
	if c.attempt > c.s.o.MaxRetries {
		c.giveUp(now)
		return
	}
	c.st.Timeouts++
	d := c.s.o.BackoffBase * sim.Duration(1<<(c.attempt-1))
	jitter := sim.Duration(c.rng.Uint64() % uint64(d))
	c.inBackoff = true
	c.timer.Arm(d/2 + jitter) // delay in [d/2, 3d/2)
}

// onCQE consumes completions on the client QP; only Receive completions
// (responses) matter.
func (c *client) onCQE(e verbs.CQE) {
	if !e.Receive {
		return
	}
	var resp Response
	var err error
	switch c.s.o.Mode {
	case ModeSend:
		id := int(e.WQEID)
		buf := c.recvBufs[id]
		resp, _, err = UnmarshalResponse(buf[:e.Len])
		c.ep.qp.PostRecv(e.WQEID, buf)
	default: // ModeWriteImm
		slot := int(e.Imm) % respSlots
		ring, _ := c.mem.View(rkResp, uint64(slot*c.s.slotBytes()), c.s.slotBytes())
		resp, _, err = UnmarshalResponse(ring)
		c.ep.qp.PostRecv(0, nil)
	}
	if err != nil {
		return
	}
	if c.cur < 0 || resp.Seq != uint64(c.cur) {
		return // late response for a request we already moved past
	}
	c.resolve(resp.Status, e.At)
}

// resolve finishes the outstanding request with a response outcome.
func (c *client) resolve(status RespStatus, now sim.Time) {
	r := c.cur
	c.timer.Cancel()
	c.inBackoff = false
	is := &c.s.issues[r]
	lat := now.Sub(is.at) // measured from the *scheduled* issue time
	c.st.Resolved++
	c.noteResolved()
	b := c.s.bucketOf(is.at)
	c.phase[b].Issued++
	switch status {
	case RespOK, RespNotFound:
		if is.put {
			c.st.Committed++
			c.commitHist.Observe(int64(lat))
		} else {
			c.st.GetsOK++
		}
		c.rpcHist.Observe(int64(lat))
		if lat <= c.s.o.SLO {
			c.st.WithinSLO++
			c.phase[b].WithinSLO++
		}
	case RespReadOnly:
		c.st.ReadOnly++
	}
	if now > c.lastResolve {
		c.lastResolve = now
	}
	c.cur = -1
	c.startNext(now)
}

// noteResolved folds a terminal outcome into the owning shard's counter
// and, when a Widen grant armed a target, self-stops the engine once
// this shard's resolutions make the global Done condition true. The
// engine resumes in later windows if the armed snapshot was stale.
func (c *client) noteResolved() {
	sh := &c.s.shard[c.shard]
	sh.resolved++
	if sh.target > 0 && sh.resolved >= sh.target {
		c.nic.Engine().Stop()
	}
}

// giveUp abandons the outstanding request after the retry budget.
func (c *client) giveUp(now sim.Time) {
	r := c.cur
	c.timer.Cancel()
	c.inBackoff = false
	is := &c.s.issues[r]
	c.st.Resolved++
	c.noteResolved()
	c.st.GiveUps++
	c.phase[c.s.bucketOf(is.at)].Issued++
	if now > c.lastResolve {
		c.lastResolve = now
	}
	c.cur = -1
	c.startNext(now)
}
