package kv

// This file bridges the verbs layer onto the simulated fabric: a QP's
// abstract Wire becomes real packets on the network, so RDMA messages
// ride the same switches, buffers, PFC pauses, and fault schedules as
// every other flow.
//
// Each QP pair maps onto two fabric flows, one per data direction. A
// host's outbound verbs data queues in a vsource attached to its NIC
// (the NIC's egress scheduler pulls and paces it like any transport
// source); ack-family packets go out on the *peer's* data flow via
// SendControl, so the peer's NIC routes them back to the peer's source
// half — exactly how the native transports receive their ACKs.
//
// Packet-pool ownership contract: the fabric packet only ferries a
// pointer to the verbs packet (Packet.Verbs). The VPacket itself is
// owned by the sending QP (which retains it for retransmission) and is
// immutable after construction, so the same pointer can cross a shard
// boundary or be resent safely. Receivers must extract the pointer
// inside HandleData/HandleControl: the NIC releases the fabric packet —
// wiping Verbs — the moment the handler returns.

import (
	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/transport"
	"github.com/irnsim/irn/internal/verbs"
)

// endpoint is one host's end of a bridged QP pair.
type endpoint struct {
	src *vsource
	qp  *verbs.QP
}

// attachEndpoint builds this host's half of a QP pair: the QP itself
// (clocked by the owning NIC so sharded runs stay canonical), the egress
// source carrying its data flow `out`, and the sink receiving the peer's
// data flow `in`. Must run on the host's owning shard (inside an attach
// event), like every NIC mutation.
func attachEndpoint(nic *fabric.NIC, peer packet.NodeID, out, in packet.FlowID,
	cfg verbs.Config, mem *verbs.Memory, cq *verbs.CQ, name string) *endpoint {
	src := &vsource{
		nic: nic,
		fl:  transport.Flow{ID: out, Src: nic.ID(), Dst: peer},
	}
	pt := &port{nic: nic, peer: peer, src: src, inFlow: in}
	qp := verbs.NewQPOn(name, nic.Engine(), nic.Clock(), cfg, pt, mem, cq)
	src.qp = qp
	nic.AttachSource(src)
	nic.AttachSink(in, &vsink{qp: qp})
	return &endpoint{src: src, qp: qp}
}

// port implements verbs.Wire over a NIC: data-class packets queue on the
// host's egress source; ack-class packets ride the control path (strict
// priority at the NIC, same links and buffers in the network).
type port struct {
	nic    *fabric.NIC
	peer   packet.NodeID
	src    *vsource
	inFlow packet.FlowID // the flow the peer's data arrives on; our acks answer on it
}

// Send implements verbs.Wire.
func (pt *port) Send(vp *verbs.VPacket) {
	switch vp.BTH.Opcode {
	case packet.OpAcknowledge, packet.OpAtomicAcknowledge, packet.OpReadNack:
		pk := pt.nic.Pool().NewAck(pt.inFlow, pt.nic.ID(), pt.peer, vp.BTH.PSN)
		pk.Verbs = vp
		pt.nic.SendControl(pk)
	default:
		pt.src.push(vp)
	}
}

// vsource queues a QP's outbound data packets for the NIC egress
// scheduler. It never finishes: verbs connections are long-lived, and a
// zero wakeAt keeps the NIC event-driven (push calls Wake).
type vsource struct {
	nic *fabric.NIC
	fl  transport.Flow
	qp  *verbs.QP

	// q/head form a reusable FIFO: consumed entries advance head instead
	// of re-slicing the array away (q = q[1:] discards capacity, so a
	// long-lived connection reallocates the queue once per wrap). The
	// array is reclaimed whole whenever the queue drains.
	q    []*verbs.VPacket
	head int
}

// push enqueues an outbound verbs packet and kicks the NIC.
func (s *vsource) push(vp *verbs.VPacket) {
	s.q = append(s.q, vp)
	s.nic.Wake()
}

// Flow implements transport.Source.
func (s *vsource) Flow() *transport.Flow { return &s.fl }

// HasData implements transport.Source.
func (s *vsource) HasData(now sim.Time) (bool, sim.Time) {
	return s.head < len(s.q), 0
}

// NextPacket implements transport.Source: wrap the next verbs packet in
// a fabric data packet. The wire size counts the IRN headers (RETH in
// every packet, the IRN extension) on top of the standard RoCEv2 frame.
func (s *vsource) NextPacket(now sim.Time) *packet.Packet {
	vp := s.q[s.head]
	s.q[s.head] = nil
	s.head++
	if s.head == len(s.q) {
		s.q, s.head = s.q[:0], 0
	}
	pk := s.nic.Pool().NewData(s.fl.ID, s.fl.Src, s.fl.Dst, vp.BTH.PSN,
		len(vp.Payload), vp.BTH.Opcode.IsLast())
	pk.Wire = len(vp.Payload) + packet.DataHeader + packet.RETHSize + packet.IRNExtSize
	pk.Verbs = vp
	return pk
}

// HandleControl implements transport.Source: ack-family packets for our
// data flow carry the peer's verbs (N)ACK.
func (s *vsource) HandleControl(pk *packet.Packet, now sim.Time) {
	if vp, ok := pk.Verbs.(*verbs.VPacket); ok {
		s.qp.Receive(vp, now)
	}
}

// Done implements transport.Source; verbs connections never detach.
func (s *vsource) Done() bool { return false }

// vsink delivers the peer's data packets into our QP.
type vsink struct {
	qp *verbs.QP
}

// HandleData implements transport.Sink.
func (k *vsink) HandleData(pk *packet.Packet, now sim.Time) {
	if vp, ok := pk.Verbs.(*verbs.VPacket); ok {
		k.qp.Receive(vp, now)
	}
}
