package transport

import (
	"testing"
	"testing/quick"
)

func TestNumPackets(t *testing.T) {
	cases := []struct{ size, mtu, want int }{
		{0, 1000, 1}, // zero-length RDMA message still sends one packet
		{1, 1000, 1},
		{999, 1000, 1},
		{1000, 1000, 1},
		{1001, 1000, 2},
		{3_000_000, 1000, 3000},
		{32, 1000, 1},
	}
	for _, c := range cases {
		if got := NumPackets(c.size, c.mtu); got != c.want {
			t.Errorf("NumPackets(%d,%d) = %d, want %d", c.size, c.mtu, got, c.want)
		}
	}
}

func TestPayloadOf(t *testing.T) {
	// 2500 bytes at MTU 1000: payloads 1000, 1000, 500.
	if PayloadOf(2500, 1000, 0) != 1000 || PayloadOf(2500, 1000, 1) != 1000 || PayloadOf(2500, 1000, 2) != 500 {
		t.Error("PayloadOf segmentation wrong")
	}
	if PayloadOf(0, 1000, 0) != 0 {
		t.Error("zero-length message payload")
	}
	if PayloadOf(1000, 1000, 0) != 1000 {
		t.Error("exact MTU")
	}
}

func TestPayloadsSumToSizeProperty(t *testing.T) {
	f := func(sz uint16, mtuSeed uint8) bool {
		size := int(sz)
		mtu := int(mtuSeed)%1400 + 64
		n := NumPackets(size, mtu)
		sum := 0
		for i := 0; i < n; i++ {
			p := PayloadOf(size, mtu, i)
			if p < 0 || p > mtu {
				return false
			}
			sum += p
		}
		if size <= 0 {
			return sum == 0
		}
		return sum == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoneController(t *testing.T) {
	var c Controller = None{}
	c.OnAck(0, 0, 1, false)
	c.OnCNP(0)
	c.OnLoss(0)
	if c.SendDelay(1000) != 0 {
		t.Error("None must not pace")
	}
	if c.WindowPackets() != 0 {
		t.Error("None must not impose a window")
	}
}
