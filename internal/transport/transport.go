// Package transport defines the contracts between the fabric's host NICs
// and the transport implementations that ride on them (IRN in
// internal/core, RoCE go-back-N in internal/rocev2, the iWARP TCP stack in
// internal/tcpstack), plus the flow bookkeeping they all share.
//
// The model follows the paper's simulator (§4.1): "RDMA queue-pairs (QPs)
// are modelled as UDP applications with either RoCE or IRN transport layer
// logic... When the sender QP is ready to transmit data packets, it
// periodically polls the MAC layer until the link is available for
// transmission." Here the polling inverts into a pull: the NIC's egress
// scheduler asks each registered Source for its next packet, and sources
// wake the NIC when new transmission credit arrives (ACKs, timeouts,
// congestion-control timers).
package transport

import (
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
)

// Flow is one unit of data transfer — one message between a
// source-destination queue pair, as in the paper's workload model.
type Flow struct {
	ID    packet.FlowID
	Src   packet.NodeID
	Dst   packet.NodeID
	Size  int // payload bytes
	Pkts  int // number of MTU-sized packets
	Start sim.Time

	// Filled in by the receiving transport at completion.
	Finished bool
	Finish   sim.Time
}

// NumPackets computes how many MTU payloads a message of size bytes
// occupies (minimum one: zero-length RDMA messages still send a packet).
func NumPackets(size, mtu int) int {
	if size <= 0 {
		return 1
	}
	return (size + mtu - 1) / mtu
}

// PayloadOf returns the payload length of packet psn (0-based) in a
// message of size bytes split at mtu.
func PayloadOf(size, mtu int, psn int) int {
	if size <= 0 {
		return 0
	}
	last := (size-1)/mtu == psn
	if last {
		return size - psn*mtu
	}
	return mtu
}

// Endpoint is the NIC-side interface handed to transports: a clock, a way
// to emit control packets (ACK/NACK/CNP) onto the host's egress link, and
// a wake signal for the egress scheduler.
type Endpoint interface {
	// Now returns the current simulation time.
	Now() sim.Time
	// Engine exposes the event engine for timers. In a sharded fabric
	// this is the engine of the shard owning the endpoint's host.
	Engine() *sim.Engine
	// Clock returns the host node's rank clock. Everything a transport
	// schedules — timers, RNR resumes — must be ranked under it so the
	// canonical (time, rank) event order is identical whether the fabric
	// runs serial or sharded. Nil is legal (unit tests) and falls back to
	// the engine's own clock.
	Clock() *sim.Clock
	// SendControl queues a control packet on the host's egress port.
	// Control packets get strict priority over data at the NIC but share
	// the same links and buffers in the network, so their bandwidth cost
	// is fully modelled (the paper's IRN results "take into account the
	// overhead of per-packet ACKs", §5.2).
	SendControl(pkt *packet.Packet)
	// Wake tells the NIC egress scheduler that a source may have become
	// ready (window opened, pacing expired, recovery entered).
	Wake()
	// Pool returns the engine's packet free-list; transports route all
	// packet construction through it so steady-state traffic allocates
	// nothing. A nil pool is legal (unit tests, microbenchmarks) and
	// degrades to plain heap allocation.
	Pool() *packet.Pool
}

// Source is the sender half of a transport attached to a NIC.
type Source interface {
	// Flow returns the flow this source transmits.
	Flow() *Flow
	// HasData reports whether a packet can be sent now. If not ready
	// because of pacing, wakeAt gives the earliest send time and the NIC
	// arms a wake-up; wakeAt zero means "event-driven" (the source will
	// call Endpoint.Wake when it becomes ready).
	HasData(now sim.Time) (ready bool, wakeAt sim.Time)
	// NextPacket pops the next packet to transmit. Only called after
	// HasData reported ready.
	NextPacket(now sim.Time) *packet.Packet
	// HandleControl processes an ACK/NACK/CNP addressed to this sender.
	HandleControl(pkt *packet.Packet, now sim.Time)
	// Done reports whether the flow is fully acknowledged and the source
	// can be detached.
	Done() bool
}

// Completer receives flow-completion notifications from receiving
// transports. It replaces the old per-flow onComplete closure: the
// experiment launcher registers one Completer for every flow, so starting
// a flow allocates no closure, and the flow pointer carries enough
// identity (ID, Dst) to route the completion to per-shard bookkeeping.
type Completer interface {
	// FlowDone fires exactly once per flow, when the last packet of the
	// message arrives, on the goroutine of the shard owning the flow's
	// destination host.
	FlowDone(fl *Flow, now sim.Time)
}

// CompleterFunc adapts a function to the Completer interface (tests,
// examples).
type CompleterFunc func(fl *Flow, now sim.Time)

// FlowDone implements Completer.
func (f CompleterFunc) FlowDone(fl *Flow, now sim.Time) { f(fl, now) }

// Sink is the receiver half of a transport attached to a NIC.
type Sink interface {
	// HandleData processes an arriving data packet and emits whatever
	// control traffic the protocol calls for via the Endpoint.
	HandleData(pkt *packet.Packet, now sim.Time)
}

// Controller is the congestion-control hook senders drive. Rate-based
// schemes (Timely, DCQCN) express themselves through SendDelay; window-
// based schemes (TCP AIMD, DCTCP) through WindowPackets. A controller may
// use both. The no-op controller (nil or None) sends at line rate, as the
// paper's base IRN and RoCE configurations do.
type Controller interface {
	// OnAck is invoked for every cumulative-ACK advance with the RTT
	// sample of the acknowledged packet, the number of packets newly
	// acknowledged, and whether the ACK carried an ECN echo.
	OnAck(now sim.Time, rtt sim.Duration, acked int, ecnEcho bool)
	// OnCNP is invoked when a DCQCN congestion notification arrives.
	OnCNP(now sim.Time)
	// OnLoss is invoked when the sender detects a loss (NACK or timeout).
	OnLoss(now sim.Time)
	// SendDelay returns the pacing delay to impose after transmitting
	// wire bytes (zero = line rate).
	SendDelay(wire int) sim.Duration
	// WindowPackets returns the window limit in packets (zero = none).
	WindowPackets() int
}

// None is the absence of explicit congestion control: line-rate sending,
// no window. ("The flow starts at line-rate for all cases", §4.1.)
type None struct{}

// OnAck implements Controller.
func (None) OnAck(sim.Time, sim.Duration, int, bool) {}

// OnCNP implements Controller.
func (None) OnCNP(sim.Time) {}

// OnLoss implements Controller.
func (None) OnLoss(sim.Time) {}

// SendDelay implements Controller.
func (None) SendDelay(int) sim.Duration { return 0 }

// WindowPackets implements Controller.
func (None) WindowPackets() int { return 0 }

var _ Controller = None{}
