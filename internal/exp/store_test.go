package exp

import (
	"path/filepath"
	"reflect"
	"testing"
)

func testRows() []Row {
	return []Row{
		{Exp: "fig1", Name: "IRN", Seed: 1, Flows: 100, AvgSlowdown: 1.5, AvgFCTms: 0.2, Drops: 3},
		{Exp: "fig1", Name: "RoCE+PFC", Seed: 1, Flows: 100, AvgSlowdown: 2.5, AvgFCTms: 0.4, PauseFrames: 9},
		{Exp: "fig9", Name: "IRN incast M=10", Seed: 10001, RCTms: 3.25, Events: 12345},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	// save → load → diff must be empty: the determinism contract the
	// cross-run comparison workflow depends on.
	st := NewStore()
	for _, r := range testRows() {
		st.Put(r)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(st, loaded); len(d) != 0 {
		t.Fatalf("round-trip diff not empty: %v", d)
	}
	if !reflect.DeepEqual(st.Rows(), loaded.Rows()) {
		t.Fatal("round-trip rows differ")
	}
}

func TestStorePutReplacesByKey(t *testing.T) {
	st := NewStore()
	r := testRows()[0]
	st.Put(r)
	r.AvgSlowdown = 9
	st.Put(r)
	if st.Len() != 1 {
		t.Fatalf("len = %d, want 1", st.Len())
	}
	if got := st.Rows()[0].AvgSlowdown; got != 9 {
		t.Errorf("replacement lost: avg_slowdown = %v", got)
	}
}

func TestStoreMergeAndDiff(t *testing.T) {
	a, b := NewStore(), NewStore()
	rows := testRows()
	a.Put(rows[0])
	a.Put(rows[1])
	b.Put(rows[1])
	changed := rows[0]
	changed.AvgSlowdown += 1
	b.Put(changed)
	b.Put(rows[2])

	diffs := Diff(a, b)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v, want metric change + extra row", diffs)
	}

	// Merge b into a: b wins on collisions, diff against b goes quiet.
	if n := a.Merge(b); n != 3 {
		t.Errorf("merged %d rows, want 3", n)
	}
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("post-merge diff not empty: %v", d)
	}
}

func TestStoreRestrict(t *testing.T) {
	a, b := NewStore(), NewStore()
	rows := testRows()
	for _, r := range rows {
		a.Put(r)
	}
	b.Put(rows[1])
	sub := a.Restrict(b)
	if sub.Len() != 1 || sub.Rows()[0].Key() != rows[1].Key() {
		t.Fatalf("Restrict = %v, want only %q", sub.Rows(), rows[1].Key())
	}
	// Diffing a partial rerun through Restrict is quiet when it matches.
	if d := Diff(a.Restrict(b), b); len(d) != 0 {
		t.Errorf("restricted diff not empty: %v", d)
	}
}

func TestFingerprintSeparatesConfigs(t *testing.T) {
	base := Scenario{NumFlows: 100, Seed: 1}
	if Fingerprint(base) != Fingerprint(base) {
		t.Fatal("fingerprint not stable")
	}
	variants := []Scenario{
		{NumFlows: 200, Seed: 1},
		{NumFlows: 100, Seed: 1, PFC: true},
		{NumFlows: 100, Seed: 1, Transport: TransportRoCE},
		{NumFlows: 100, Seed: 1, Load: 0.9},
	}
	for _, v := range variants {
		if Fingerprint(v) == Fingerprint(base) {
			t.Errorf("config %+v fingerprints like the base scenario", v)
		}
	}
}

func TestSaveMergedAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acc.json")
	rows := testRows()

	first := NewStore()
	first.Put(rows[0])
	if n, err := first.SaveMerged(path); err != nil || n != 1 {
		t.Fatalf("first SaveMerged = %d, %v", n, err)
	}
	second := NewStore()
	second.Put(rows[1])
	second.Put(rows[2])
	if n, err := second.SaveMerged(path); err != nil || n != 3 {
		t.Fatalf("second SaveMerged = %d, %v; want 3 accumulated rows", n, err)
	}
	loaded, err := LoadStore(path)
	if err != nil || loaded.Len() != 3 {
		t.Fatalf("loaded %d rows (%v), want 3", loaded.Len(), err)
	}
}

func TestLoadOrNewStoreMissingFile(t *testing.T) {
	st, err := LoadOrNewStore(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || st.Len() != 0 {
		t.Fatalf("LoadOrNewStore = %v, %v; want empty store", st, err)
	}
}

func TestStoreFleetRoundTrip(t *testing.T) {
	// End-to-end: fleet run → store → save → load → diff empty, and a
	// rerun of the same fleet persists to identical rows.
	e := fleetExperiment()
	cfg := FleetConfig{Parallel: 4, Trials: 2, BaseSeed: 3}

	st := NewStore()
	st.PutFleet(RunFleet(e, cfg))
	if st.Len() != len(e.Scenarios)*cfg.Trials {
		t.Fatalf("len = %d, want %d", st.Len(), len(e.Scenarios)*cfg.Trials)
	}

	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(st, loaded); len(d) != 0 {
		t.Fatalf("round-trip diff not empty: %v", d)
	}

	rerun := NewStore()
	rerun.PutFleet(RunFleet(e, cfg))
	if d := Diff(loaded, rerun); len(d) != 0 {
		t.Fatalf("rerun diff not empty: %v", d)
	}
}
