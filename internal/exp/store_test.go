package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testRows() []Row {
	return []Row{
		{Exp: "fig1", Name: "IRN", Seed: 1, Flows: 100, AvgSlowdown: 1.5, AvgFCTms: 0.2, Drops: 3},
		{Exp: "fig1", Name: "RoCE+PFC", Seed: 1, Flows: 100, AvgSlowdown: 2.5, AvgFCTms: 0.4, PauseFrames: 9},
		{Exp: "fig9", Name: "IRN incast M=10", Seed: 10001, RCTms: 3.25, Events: 12345},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	// save → load → diff must be empty: the determinism contract the
	// cross-run comparison workflow depends on.
	st := NewStore()
	for _, r := range testRows() {
		st.Put(r)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(st, loaded); len(d) != 0 {
		t.Fatalf("round-trip diff not empty: %v", d)
	}
	if !reflect.DeepEqual(st.Rows(), loaded.Rows()) {
		t.Fatal("round-trip rows differ")
	}
}

func TestStorePutReplacesByKey(t *testing.T) {
	st := NewStore()
	r := testRows()[0]
	st.Put(r)
	r.AvgSlowdown = 9
	st.Put(r)
	if st.Len() != 1 {
		t.Fatalf("len = %d, want 1", st.Len())
	}
	if got := st.Rows()[0].AvgSlowdown; got != 9 {
		t.Errorf("replacement lost: avg_slowdown = %v", got)
	}
}

func TestStoreMergeAndDiff(t *testing.T) {
	a, b := NewStore(), NewStore()
	rows := testRows()
	a.Put(rows[0])
	a.Put(rows[1])
	b.Put(rows[1])
	changed := rows[0]
	changed.AvgSlowdown += 1
	b.Put(changed)
	b.Put(rows[2])

	diffs := Diff(a, b)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v, want metric change + extra row", diffs)
	}

	// Merge b into a: b wins on collisions, diff against b goes quiet.
	if n := a.Merge(b); n != 3 {
		t.Errorf("merged %d rows, want 3", n)
	}
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("post-merge diff not empty: %v", d)
	}
}

func TestStoreRestrict(t *testing.T) {
	a, b := NewStore(), NewStore()
	rows := testRows()
	for _, r := range rows {
		a.Put(r)
	}
	b.Put(rows[1])
	sub := a.Restrict(b)
	if sub.Len() != 1 || sub.Rows()[0].Key() != rows[1].Key() {
		t.Fatalf("Restrict = %v, want only %q", sub.Rows(), rows[1].Key())
	}
	// Diffing a partial rerun through Restrict is quiet when it matches.
	if d := Diff(a.Restrict(b), b); len(d) != 0 {
		t.Errorf("restricted diff not empty: %v", d)
	}
}

func TestFingerprintSeparatesConfigs(t *testing.T) {
	base := Scenario{NumFlows: 100, Seed: 1}
	if Fingerprint(base) != Fingerprint(base) {
		t.Fatal("fingerprint not stable")
	}
	variants := []Scenario{
		{NumFlows: 200, Seed: 1},
		{NumFlows: 100, Seed: 1, PFC: true},
		{NumFlows: 100, Seed: 1, Transport: TransportRoCE},
		{NumFlows: 100, Seed: 1, Load: 0.9},
	}
	for _, v := range variants {
		if Fingerprint(v) == Fingerprint(base) {
			t.Errorf("config %+v fingerprints like the base scenario", v)
		}
	}
}

func TestSaveMergedAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acc.json")
	rows := testRows()

	first := NewStore()
	first.Put(rows[0])
	if n, err := first.SaveMerged(path); err != nil || n != 1 {
		t.Fatalf("first SaveMerged = %d, %v", n, err)
	}
	second := NewStore()
	second.Put(rows[1])
	second.Put(rows[2])
	if n, err := second.SaveMerged(path); err != nil || n != 3 {
		t.Fatalf("second SaveMerged = %d, %v; want 3 accumulated rows", n, err)
	}
	loaded, err := LoadStore(path)
	if err != nil || loaded.Len() != 3 {
		t.Fatalf("loaded %d rows (%v), want 3", loaded.Len(), err)
	}
}

func TestLoadOrNewStoreMissingFile(t *testing.T) {
	st, err := LoadOrNewStore(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || st.Len() != 0 {
		t.Fatalf("LoadOrNewStore = %v, %v; want empty store", st, err)
	}
}

func TestStoreFleetRoundTrip(t *testing.T) {
	// End-to-end: fleet run → store → save → load → diff empty, and a
	// rerun of the same fleet persists to identical rows.
	e := fleetExperiment()
	cfg := FleetConfig{Parallel: 4, Trials: 2, BaseSeed: 3}

	st := NewStore()
	st.PutFleet(RunFleet(e, cfg))
	if st.Len() != len(e.Scenarios)*cfg.Trials {
		t.Fatalf("len = %d, want %d", st.Len(), len(e.Scenarios)*cfg.Trials)
	}

	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(st, loaded); len(d) != 0 {
		t.Fatalf("round-trip diff not empty: %v", d)
	}

	rerun := NewStore()
	rerun.PutFleet(RunFleet(e, cfg))
	if d := Diff(loaded, rerun); len(d) != 0 {
		t.Fatalf("rerun diff not empty: %v", d)
	}
}

func TestStoreSchemaMigration(t *testing.T) {
	dir := t.TempDir()

	// A v1 file — written before the version field and the sketch
	// existed — must load cleanly, with the v2 columns simply absent.
	v1 := filepath.Join(dir, "v1.json")
	old := `{"rows":[{"exp":"fig1","name":"IRN","seed":1,"trial":0,"cfg":"deadbeef",` +
		`"flows":100,"incomplete":0,"avg_slowdown":1.5,"avg_fct_ms":0.2,"p99_fct_ms":0.9,` +
		`"drops":3,"pause_frames":0,"ecn_marked":0,"retransmits":0,"timeouts":0,"events":42}]}`
	if err := os.WriteFile(v1, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadStore(v1)
	if err != nil {
		t.Fatalf("v1 store must load: %v", err)
	}
	rows := st.Rows()
	if len(rows) != 1 || rows[0].Flows != 100 || rows[0].FCTSketch != nil || rows[0].P50FCTms != 0 {
		t.Fatalf("migrated row wrong: %+v", rows)
	}

	// Re-saving upgrades the envelope to the current version.
	if err := st.Save(v1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 2`) {
		t.Error("re-saved store must carry the current schema version")
	}

	// A file from a future schema must refuse to load rather than be
	// silently misread.
	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"version":3,"rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStore(future); err == nil {
		t.Fatal("want error loading a v3 store")
	}
}

func TestStoreSketchRoundTrip(t *testing.T) {
	// A real run's sketch must survive save → load bucket for bucket —
	// Diff compares it with DeepEqual, so any codec loss shows up here.
	e, _ := ByID("fig1", Scale{Flows: 30, IncastBytes: 1, IncastReps: 1})
	res := Run(e.Scenarios[0])
	if res.FCTSketch == nil || res.FCTSketch.N() == 0 {
		t.Fatal("run produced no sketch")
	}
	st := NewStore()
	st.Put(RowFromResult("fig1", 0, res))
	path := filepath.Join(t.TempDir(), "sketch.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(st, loaded); len(d) != 0 {
		t.Fatalf("sketch round-trip diff: %v", d)
	}
	got := loaded.Rows()[0].FCTSketch
	if !reflect.DeepEqual(got, res.FCTSketch) {
		t.Fatal("sketch buckets diverged through the store")
	}
	if got.Quantile(99) != res.FCTSketch.Quantile(99) {
		t.Fatal("persisted sketch answers a different p99")
	}
}
