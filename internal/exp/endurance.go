package exp

import (
	"fmt"
	"runtime"

	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/workload"
)

// EnduranceConfig drives a long-horizon soak: segments of simulated time
// on one large fat-tree, each under a freshly sampled cycle of a named
// chaos suite, run back to back on a single Worker so the zero-rebuild
// reuse path carries the whole soak. The zero value (after normalization)
// soaks a k=10 fat-tree for six 20-second segments — two minutes of
// simulated time — under the "rolling" suite.
type EnduranceConfig struct {
	Arity     int          // fat-tree arity; default 10 (250 hosts)
	Segments  int          // default 6
	Flows     int          // flows per segment; default 3000
	Horizon   sim.Duration // target simulated time per segment; default 20 s
	Cycles    int          // chaos cycles per segment; default 6
	Suite     string       // chaos suite name; default "rolling"
	Seed      uint64       // default 1
	Shards    int          // intra-run sharding; default 1
	Transport Transport    // default IRN
	PFC       bool
	// Log, when set, receives one progress line per segment.
	Log func(string)
}

// normalize fills defaults.
func (c EnduranceConfig) normalize() EnduranceConfig {
	if c.Arity == 0 {
		c.Arity = 10
	}
	if c.Segments == 0 {
		c.Segments = 6
	}
	if c.Flows == 0 {
		c.Flows = 3000
	}
	if c.Horizon == 0 {
		c.Horizon = 20 * sim.Second
	}
	if c.Cycles == 0 {
		c.Cycles = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// EnduranceSegment is one soak segment's outcome plus the live heap
// observed after it (post-GC), the bounded-memory series the soak
// asserts on.
type EnduranceSegment struct {
	Result
	HeapLive uint64
}

// EnduranceReport aggregates a soak.
type EnduranceReport struct {
	Segments []EnduranceSegment
	// SimTime is the total simulated time across segments.
	SimTime sim.Duration
	// Rebuilds is how many fabrics the worker constructed: 1 when the
	// zero-rebuild path held for every segment after the first.
	Rebuilds int
}

// RunEndurance executes the soak and verifies, after every segment, the
// packet-conservation census and the pool accounting — the same equations
// the invariant harness asserts — failing fast with a descriptive error
// on the first violation. Memory stays bounded by construction (streaming
// collectors, pooled packets, zero-rebuild fabric reuse); the per-segment
// HeapLive series in the report is what tests assert a budget over.
//
// The chaos schedule of segment i is the configured suite with link
// samples drawn from DeriveSeed(seed, "endurance/segment", i), compiled
// against the soak topology; its cycles span the segment's expected
// arrival horizon, which the workload's Load is chosen to stretch to
// cfg.Horizon (low load = long horizon at a fixed flow budget — the soak
// measures sustained robustness, not congestion).
func RunEndurance(cfg EnduranceConfig) (EnduranceReport, error) {
	cfg = cfg.normalize()
	var rep EnduranceReport

	t := topo.NewFatTree(cfg.Arity)
	suite, ok := fault.SuiteByName(cfg.Suite)
	if !ok {
		return rep, fmt.Errorf("exp: unknown chaos suite %q (have %v)", cfg.Suite, fault.SuiteNames())
	}

	// Invert the Poisson arrival math: span scales as 1/Load, so the load
	// that stretches the flow budget across the horizon is span(load=1)
	// divided by the horizon. The scenario's fabric defaults (40 Gbps,
	// 1000 B MTU, heavy-tailed sizes) are fixed here so the computation
	// matches what Run generates.
	pc := workload.PoissonConfig{
		Hosts:         t.Hosts(),
		Load:          1,
		RatePsPerByte: int64(fabric.Gbps(40)),
		MTU:           1000,
		HeaderBytes:   packet.DataHeader,
		NumFlows:      cfg.Flows,
		Dist:          workload.NewHeavyTailed(),
	}
	load := float64(pc.ExpectedSpan()) / float64(cfg.Horizon)
	if load > 0.9 {
		return rep, fmt.Errorf("exp: endurance horizon %v needs load %.2f > 0.9; raise Horizon or lower Flows", cfg.Horizon, load)
	}

	// Chaos cycles tile the horizon, truncated to the 2 µs lookahead grid
	// so transitions land on safe-window boundaries; the first cycle
	// starts one grid step in.
	lookahead := 2 * sim.Microsecond
	cycle := cfg.Horizon / sim.Duration(cfg.Cycles) / lookahead * lookahead
	if cycle < 24*lookahead {
		return rep, fmt.Errorf("exp: endurance cycle %v too short for the suite's subdivisions; raise Horizon or lower Cycles", cycle)
	}

	w := NewWorker()
	for seg := 0; seg < cfg.Segments; seg++ {
		segSeed := sim.DeriveSeed(cfg.Seed, "endurance/segment", seg)
		spec := suite.Build(t, sim.Time(lookahead), cycle, cfg.Cycles, segSeed).MustCompile(t)
		s := Scenario{
			Name:      fmt.Sprintf("endurance %s seg=%d", cfg.Suite, seg),
			Arity:     cfg.Arity,
			NumFlows:  cfg.Flows,
			Load:      load,
			Seed:      segSeed,
			Shards:    cfg.Shards,
			Transport: cfg.Transport,
			PFC:       cfg.PFC,
			Faults:    spec,
			// Pin the transport config across suites and segment counts,
			// like the fault sweeps do.
			RoCETimeouts: true,
		}
		r := w.Run(s)
		if err := checkSoakInvariants(r); err != nil {
			return rep, fmt.Errorf("segment %d: %w", seg, err)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rep.Segments = append(rep.Segments, EnduranceSegment{Result: r, HeapLive: ms.HeapAlloc})
		rep.SimTime += sim.Duration(r.SimTime)
		rep.Rebuilds = w.Rebuilds()
		if cfg.Log != nil {
			cfg.Log(fmt.Sprintf("segment %d/%d: simtime=%.2fs events=%d flows=%d incomplete=%d faultdrops=%d heap=%.1fMB",
				seg+1, cfg.Segments, sim.Duration(r.SimTime).Seconds(), r.Events,
				r.Summary.Flows, r.Summary.Incomplete, r.Census.FaultDrops,
				float64(ms.HeapAlloc)/1e6))
		}
	}
	return rep, nil
}

// checkSoakInvariants verifies one segment's packet-conservation census
// and pool accounting — the equations internal/sim/invariant_test.go
// asserts across presets, here enforced mid-soak.
func checkSoakInvariants(r Result) error {
	c := r.Census
	if c.Injected == 0 {
		return fmt.Errorf("%s: no packets injected — segment ran nothing", r.Name)
	}
	if want := c.Exits() + uint64(r.InFlight); c.Injected != want {
		return fmt.Errorf("%s: conservation violated: injected %d != delivered %d + overflow %d + inject %d + fault %d + corrupted %d + in-flight %d",
			r.Name, c.Injected, c.Delivered, c.OverflowDrops, c.InjectDrops, c.FaultDrops, c.Corrupted, r.InFlight)
	}
	if r.PoolLive != r.InFlight+r.CtrlBacklog {
		return fmt.Errorf("%s: pool accounting violated: %d live packets != %d in-flight + %d ctrl backlog",
			r.Name, r.PoolLive, r.InFlight, r.CtrlBacklog)
	}
	return nil
}
