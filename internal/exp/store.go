package exp

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"reflect"
	"sort"

	"github.com/irnsim/irn/internal/metrics"
)

// Row is one persisted result: the headline metrics of a single
// scenario/trial run, keyed by experiment id + scenario label + seed (plus
// a configuration fingerprint, so runs of the same label under different
// knobs — scale, transport, load — never overwrite each other) so runs
// from different invocations (or machines) can be merged and compared
// without re-simulating.
type Row struct {
	Exp   string `json:"exp"`
	Name  string `json:"name"`
	Seed  uint64 `json:"seed"`
	Trial int    `json:"trial"`
	// Cfg fingerprints the full normalized Scenario.
	Cfg string `json:"cfg"`

	Flows       int     `json:"flows"`
	Incomplete  int     `json:"incomplete"`
	AvgSlowdown float64 `json:"avg_slowdown"`
	AvgFCTms    float64 `json:"avg_fct_ms"`
	P99FCTms    float64 `json:"p99_fct_ms"`
	// Quantile columns beyond p99 (schema v2; absent in v0/v1 rows).
	P50FCTms  float64 `json:"p50_fct_ms,omitempty"`
	P90FCTms  float64 `json:"p90_fct_ms,omitempty"`
	P999FCTms float64 `json:"p999_fct_ms,omitempty"`
	RCTms     float64 `json:"rct_ms,omitempty"`
	// FCTSketch persists the full streaming histogram (schema v2), so
	// any quantile — not just the flattened columns — can be re-read
	// from a saved store, and sketches from sharded reruns can be
	// compared bucket for bucket.
	FCTSketch   *metrics.Histogram `json:"fct_sketch,omitempty"`
	Drops       uint64             `json:"drops"`
	FaultDrops  uint64             `json:"fault_drops,omitempty"`
	Corrupted   uint64             `json:"corrupted,omitempty"`
	PauseFrames uint64             `json:"pause_frames"`
	ECNMarked   uint64             `json:"ecn_marked"`
	Retransmits uint64             `json:"retransmits"`
	Timeouts    uint64             `json:"timeouts"`
	Events      uint64             `json:"events"`
	// KV columns (schema v2), present only on replicated-KV rows.
	KVAvail       float64 `json:"kv_avail,omitempty"`
	KVCommitP50ms float64 `json:"kv_commit_p50_ms,omitempty"`
	KVCommitP99ms float64 `json:"kv_commit_p99_ms,omitempty"`
	KVRetries     uint64  `json:"kv_retries,omitempty"`
	KVGiveUps     uint64  `json:"kv_giveups,omitempty"`
	KVDegraded    uint64  `json:"kv_degraded,omitempty"`
	KVReadOnly    uint64  `json:"kv_readonly,omitempty"`
}

// Key identifies a row within a store.
func (r Row) Key() string {
	return fmt.Sprintf("%s/%s/%d/%d/%s", r.Exp, r.Name, r.Seed, r.Trial, r.Cfg)
}

// Fingerprint hashes a scenario's full normalized configuration (FNV-1a
// over its JSON form, which covers every knob — they are all exported
// plain fields) into a short stable token for row keys.
func Fingerprint(s Scenario) string {
	n := s.normalize()
	// Intra-run sharding is a wall-clock knob with bit-identical results
	// (the determinism tests pin it), so it is not part of a result's
	// configuration identity: a sharded rerun must land on — and compare
	// against — the serial run's row. ExactMetrics likewise: it only adds
	// reference state on the side, never changes a streaming aggregate.
	n.Shards = 0
	n.ExactMetrics = false
	// BareLookahead narrows the safe windows without changing the
	// executed-event set (the lookahead differential test pins it).
	n.BareLookahead = false
	// FixedWindows disables the adaptive window extension — barrier
	// cadence only, never the executed-event set (the barrier-count
	// regression test pins the former, the determinism suites the
	// latter).
	n.FixedWindows = false
	data, err := json.Marshal(n)
	if err != nil {
		// Scenario is a plain struct; Marshal cannot fail on it.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(data)
	sum := h.Sum64()
	return fmt.Sprintf("%08x", uint32(sum)^uint32(sum>>32))
}

// RowFromResult flattens a Result into its persisted form.
func RowFromResult(expID string, trial int, res Result) Row {
	row := Row{
		Exp:         expID,
		Name:        res.Name,
		Seed:        res.Scenario.normalize().Seed,
		Trial:       trial,
		Cfg:         Fingerprint(res.Scenario),
		Flows:       res.Summary.Flows,
		Incomplete:  res.Summary.Incomplete,
		AvgSlowdown: res.AvgSlowdown,
		AvgFCTms:    res.AvgFCT.Millis(),
		P99FCTms:    res.TailFCT.Millis(),
		P50FCTms:    res.Summary.P50FCT.Millis(),
		P90FCTms:    res.Summary.P90FCT.Millis(),
		P999FCTms:   res.Summary.P999FCT.Millis(),
		RCTms:       res.RCT.Millis(),
		FCTSketch:   res.FCTSketch,
		Drops:       res.Net.Drops,
		FaultDrops:  res.Net.FaultDrops,
		Corrupted:   res.Net.Corrupted,
		PauseFrames: res.Net.PauseFrames,
		ECNMarked:   res.Net.ECNMarked,
		Retransmits: res.Retransmits,
		Timeouts:    res.Timeouts,
		Events:      res.Events,
	}
	if k := res.KV; k != nil {
		row.KVAvail = k.Availability
		row.KVCommitP50ms = k.CommitP50.Millis()
		row.KVCommitP99ms = k.CommitP99.Millis()
		row.KVRetries = k.Retries
		row.KVGiveUps = k.GiveUps
		row.KVDegraded = k.DegradedEnters
		row.KVReadOnly = k.ReadOnly
	}
	return row
}

// Store holds result rows indexed by key. The zero value is usable.
type Store struct {
	rows map[string]Row
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{rows: map[string]Row{}} }

// Put inserts a row, replacing any existing row with the same key.
func (st *Store) Put(r Row) {
	if st.rows == nil {
		st.rows = map[string]Row{}
	}
	st.rows[r.Key()] = r
}

// PutFleet inserts every trial of a fleet run.
func (st *Store) PutFleet(fr FleetResult) {
	for _, trials := range fr.Trials {
		for t, res := range trials {
			st.Put(RowFromResult(fr.ExpID, t, res))
		}
	}
}

// Len returns the number of rows.
func (st *Store) Len() int { return len(st.rows) }

// Rows returns every row sorted by key — the stable order used for
// persistence and diffing.
func (st *Store) Rows() []Row {
	out := make([]Row, 0, len(st.rows))
	for _, r := range st.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Merge copies every row of other into st (other wins on key collisions)
// and returns how many rows were added or replaced.
func (st *Store) Merge(other *Store) int {
	n := 0
	for _, r := range other.Rows() {
		st.Put(r)
		n++
	}
	return n
}

// Restrict returns the subset of st whose keys also appear in other.
// Diffing a full saved suite against a partial rerun goes through this,
// so rows the rerun never touched don't flood the report.
func (st *Store) Restrict(other *Store) *Store {
	sub := NewStore()
	for _, r := range st.Rows() {
		if _, ok := other.rows[r.Key()]; ok {
			sub.Put(r)
		}
	}
	return sub
}

// storeVersion is the current on-disk schema. v2 added the quantile
// columns and the persisted FCT sketch; v0/v1 rows (no version field, or
// version 1) load unchanged with those fields simply absent.
const storeVersion = 2

// storeFile is the on-disk JSON envelope.
type storeFile struct {
	Version int   `json:"version,omitempty"`
	Rows    []Row `json:"rows"`
}

// Save writes the store as indented JSON with rows in key order, so
// reruns of identical experiments produce byte-identical files.
func (st *Store) Save(path string) error {
	data, err := json.MarshalIndent(storeFile{Version: storeVersion, Rows: st.Rows()}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadStore reads a store written by Save.
func LoadStore(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("exp: parsing %s: %w", path, err)
	}
	if f.Version > storeVersion {
		return nil, fmt.Errorf("exp: %s is store schema v%d, this build reads ≤ v%d", path, f.Version, storeVersion)
	}
	st := NewStore()
	for _, r := range f.Rows {
		st.Put(r)
	}
	return st, nil
}

// LoadOrNewStore reads an existing store, or returns an empty one when
// the file does not exist yet (the first -out run of a sweep).
func LoadOrNewStore(path string) (*Store, error) {
	st, err := LoadStore(path)
	if os.IsNotExist(err) {
		return NewStore(), nil
	}
	return st, err
}

// SaveMerged merges st into the store persisted at path (creating it if
// absent) and returns the total row count — the CLIs' -out behavior.
func (st *Store) SaveMerged(path string) (int, error) {
	merged, err := LoadOrNewStore(path)
	if err != nil {
		return 0, err
	}
	merged.Merge(st)
	if err := merged.Save(path); err != nil {
		return 0, err
	}
	return merged.Len(), nil
}

// Diff compares two stores row by row and returns one human-readable
// line per difference: rows present on only one side, and rows whose
// metrics moved. An empty slice means the stores agree — the determinism
// check `save → load → diff` relies on this.
func Diff(a, b *Store) []string {
	var out []string
	seen := map[string]bool{}
	for _, ra := range a.Rows() {
		seen[ra.Key()] = true
		rb, ok := b.rows[ra.Key()]
		if !ok {
			out = append(out, fmt.Sprintf("- %s (only in first)", ra.Key()))
			continue
		}
		out = append(out, diffRow(ra, rb)...)
	}
	for _, rb := range b.Rows() {
		if !seen[rb.Key()] {
			out = append(out, fmt.Sprintf("+ %s (only in second)", rb.Key()))
		}
	}
	return out
}

// diffRow lists the metric deltas between two rows with the same key.
func diffRow(a, b Row) []string {
	var out []string
	numeric := func(field string, va, vb float64) {
		if va == vb || (math.IsNaN(va) && math.IsNaN(vb)) {
			return
		}
		out = append(out, fmt.Sprintf("~ %s %s: %g -> %g", a.Key(), field, va, vb))
	}
	numeric("flows", float64(a.Flows), float64(b.Flows))
	numeric("incomplete", float64(a.Incomplete), float64(b.Incomplete))
	numeric("avg_slowdown", a.AvgSlowdown, b.AvgSlowdown)
	numeric("avg_fct_ms", a.AvgFCTms, b.AvgFCTms)
	numeric("p99_fct_ms", a.P99FCTms, b.P99FCTms)
	numeric("p50_fct_ms", a.P50FCTms, b.P50FCTms)
	numeric("p90_fct_ms", a.P90FCTms, b.P90FCTms)
	numeric("p999_fct_ms", a.P999FCTms, b.P999FCTms)
	numeric("rct_ms", a.RCTms, b.RCTms)
	if !reflect.DeepEqual(a.FCTSketch, b.FCTSketch) {
		out = append(out, fmt.Sprintf("~ %s fct_sketch: bucket counts differ", a.Key()))
	}
	numeric("drops", float64(a.Drops), float64(b.Drops))
	numeric("fault_drops", float64(a.FaultDrops), float64(b.FaultDrops))
	numeric("corrupted", float64(a.Corrupted), float64(b.Corrupted))
	numeric("pause_frames", float64(a.PauseFrames), float64(b.PauseFrames))
	numeric("ecn_marked", float64(a.ECNMarked), float64(b.ECNMarked))
	numeric("retransmits", float64(a.Retransmits), float64(b.Retransmits))
	numeric("timeouts", float64(a.Timeouts), float64(b.Timeouts))
	numeric("events", float64(a.Events), float64(b.Events))
	numeric("kv_avail", a.KVAvail, b.KVAvail)
	numeric("kv_commit_p50_ms", a.KVCommitP50ms, b.KVCommitP50ms)
	numeric("kv_commit_p99_ms", a.KVCommitP99ms, b.KVCommitP99ms)
	numeric("kv_retries", float64(a.KVRetries), float64(b.KVRetries))
	numeric("kv_giveups", float64(a.KVGiveUps), float64(b.KVGiveUps))
	numeric("kv_degraded", float64(a.KVDegraded), float64(b.KVDegraded))
	numeric("kv_readonly", float64(a.KVReadOnly), float64(b.KVReadOnly))
	return out
}
