package exp

import (
	"reflect"
	"testing"

	"github.com/irnsim/irn/internal/kv"
)

// figkvScenario pulls one scenario of the figkv preset at a test scale.
func figkvScenario(t *testing.T, sc Scale, name string) Scenario {
	t.Helper()
	e := FigureKV(sc)
	for _, s := range e.Scenarios {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figkv has no scenario %q", name)
	return Scenario{}
}

// TestFigKVShardDeterminismUnderChaos is the kv determinism regression:
// the figkv flap-storm point (chaos schedule active, faults dropping
// packets) must be bit-identical across shard counts — including the
// full KV report — and a sharded rerun must land on the serial run's
// store row (Fingerprint ignores Shards).
func TestFigKVShardDeterminismUnderChaos(t *testing.T) {
	base := figkvScenario(t, Scale{Flows: 40}, "IRN kv flap-leader send")

	serial := Run(base)
	if serial.ShardsUsed != 1 {
		t.Fatalf("serial run reports ShardsUsed=%d", serial.ShardsUsed)
	}
	if serial.KV == nil {
		t.Fatal("kv scenario produced no KV report")
	}
	if serial.KV.Resolved != serial.KV.Issued {
		t.Fatalf("kv run incomplete: %d/%d resolved", serial.KV.Resolved, serial.KV.Issued)
	}
	if serial.Census.FaultDrops == 0 {
		t.Fatal("chaos schedule injected no drops; the scenario is inert")
	}
	serialRow := RowFromResult("figkv", 0, serial)
	for _, shards := range []int{2, 4} {
		s := base
		s.Shards = shards
		got := Run(s)
		if got.ShardsUsed != shards {
			t.Errorf("requested %d shards, run spanned %d", shards, got.ShardsUsed)
		}
		if Fingerprint(s) != Fingerprint(base) {
			t.Errorf("fingerprint at %d shards differs from serial", shards)
		}
		row := RowFromResult("figkv", 0, got)
		if row.Key() != serialRow.Key() {
			t.Errorf("sharded rerun row key %q misses serial row %q", row.Key(), serialRow.Key())
		}
		if !reflect.DeepEqual(stripShards(got), stripShards(serial)) {
			t.Errorf("kv run at %d shards diverged from serial", shards)
		}
	}
}

// TestFigKVBlackoutDegrades pins the graceful-degradation point of the
// preset: under the sustained leader-uplink blackout the leader must
// enter read-only mode and reject Puts, clients must exhaust their
// retry budgets, and every request must still resolve (no hangs).
func TestFigKVBlackoutDegrades(t *testing.T) {
	s := figkvScenario(t, Scale{Flows: 40}, "IRN kv blackout send")
	res := Run(s)
	k := res.KV
	if k == nil {
		t.Fatal("no KV report")
	}
	if k.Resolved != k.Issued {
		t.Fatalf("blackout run hung: %d/%d resolved", k.Resolved, k.Issued)
	}
	if k.DegradedEnters == 0 {
		t.Error("leader never degraded under a replication blackout")
	}
	if k.ReadOnly == 0 {
		t.Error("no read-only rejections while degraded")
	}
	if k.GiveUps == 0 {
		t.Error("no client exhausted its retry budget during the blackout")
	}
}

// TestFigKVIRNBeatsRoCEUnderFlap pins the headline comparison at the
// default suite scale: under the leader flap storm IRN's selective
// retransmission must deliver strictly higher availability and strictly
// lower p99 commit latency than RoCE+PFC go-back-N.
func TestFigKVIRNBeatsRoCEUnderFlap(t *testing.T) {
	sc := Scale{Flows: 4000}
	roce := Run(figkvScenario(t, sc, "RoCE+PFC kv flap-leader send"))
	irn := Run(figkvScenario(t, sc, "IRN kv flap-leader send"))
	if roce.KV == nil || irn.KV == nil {
		t.Fatal("missing KV reports")
	}
	if irn.KV.Availability <= roce.KV.Availability {
		t.Errorf("availability: IRN %.4f vs RoCE %.4f, want IRN strictly higher",
			irn.KV.Availability, roce.KV.Availability)
	}
	if irn.KV.CommitP99 >= roce.KV.CommitP99 {
		t.Errorf("commit p99: IRN %v vs RoCE %v, want IRN strictly lower",
			irn.KV.CommitP99, roce.KV.CommitP99)
	}
}

// TestKVMarginalAllocs pins the steady-state allocation cost of the kv
// datapath. Fabric and service construction dominate any single run, so
// the assertion is on the *marginal* cost: the allocation difference
// between a 2R-request run and an R-request run, divided by R. The
// ring-delivery paths decode in place (verbs.Memory.View), the Put
// payload comes from a per-client scratch, and the NIC egress queue
// recycles its array, so what remains per request is the wire frames
// (which verbs retains for retransmission and cannot pool), their
// VPackets, and the decoded value copies — a small constant. A
// regression that copies per delivery or reallocates per queue head
// multiplies it.
func TestKVMarginalAllocs(t *testing.T) {
	measure := func(requests int) float64 {
		s := Scenario{
			Name:      "kv-alloc",
			Transport: TransportIRN,
			Seed:      7,
			KV:        kv.Options{Requests: requests, Mode: kv.ModeWriteImm},
		}
		return testing.AllocsPerRun(2, func() { Run(s) })
	}
	const r = 60
	base := measure(r)
	double := measure(2 * r)
	perReq := (double - base) / r
	t.Logf("allocs: %.0f @ %d requests, %.0f @ %d, marginal %.1f/request", base, r, double, 2*r, perReq)
	// Measured ~56 allocs/request after the in-place decode work; the
	// budget leaves ~50% headroom so only a structural regression (a new
	// per-delivery copy, per-head queue realloc) trips it, not noise.
	if perReq > 84 {
		t.Fatalf("marginal kv allocation cost %.1f allocs/request exceeds the 84 budget", perReq)
	}
	if perReq <= 0 {
		t.Fatalf("marginal kv allocation cost %.1f/request — the workload did not scale", perReq)
	}
}
