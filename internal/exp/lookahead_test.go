package exp

import (
	"reflect"
	"strings"
	"testing"
)

// stripLookahead erases the one field allowed to differ between a
// bare-lookahead and a widened-lookahead Result: the knob itself.
func stripLookahead(r Result) Result {
	r.Scenario.BareLookahead = false
	return stripShards(r)
}

// TestLookaheadDifferentialAcrossPresets pins the widened-lookahead
// safety argument end to end: for every fig* preset and every shard
// count, forcing the windows back to the bare link-propagation width
// (BareLookahead) produces Results bit-identical to the widened runs —
// metrics, event counts, census, pool accounting, everything. Wider
// windows may only change how the executed events are grouped into
// barriers, never which events execute or in what canonical order.
func TestLookaheadDifferentialAcrossPresets(t *testing.T) {
	sc := shardScale()
	for _, e := range All(sc) {
		if !strings.HasPrefix(e.ID, "fig") {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			for _, s := range e.Scenarios {
				for _, shards := range []int{1, 2, 4} {
					wide := s
					wide.Shards = shards
					ref := stripLookahead(Run(wide))
					bare := wide
					bare.BareLookahead = true
					got := stripLookahead(Run(bare))
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("%s at %d shards: bare lookahead diverged from widened:\nwidened: %+v\nbare:    %+v",
							s.Name, shards, ref, got)
					}
				}
			}
		})
	}
}
