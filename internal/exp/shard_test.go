package exp

import (
	"reflect"
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/fault"
)

// shardMatrix is the determinism matrix of the sharded engine: every
// shard count a run might use, asserted bit-identical to serial. 8 on a
// k=6 tree also exercises the partitioner's clamp-to-pods path.
var shardMatrix = []int{1, 2, 4, 8}

// shardScale keeps the full preset sweep fast while still driving drops,
// retransmissions, PFC (cross-shard pause frames), ECN marking and
// incast through the partitioned datapath.
func shardScale() Scale {
	return Scale{Flows: 40, IncastBytes: 300_000, IncastReps: 1}
}

// stripShards erases the fields allowed to differ between a sharded and
// a serial Result: the knob itself and its wall-clock reflections.
func stripShards(r Result) Result {
	r.Scenario.Shards = 0
	// Collector footprint is O(shards) by design, and ShardsUsed reports
	// the partitioning itself — the Result fields that legitimately vary
	// with the shard count.
	r.MetricsBytes = 0
	r.ShardsUsed = 0
	// The shard-runtime report is all wall-clock and partitioning
	// reflections: barrier counts, per-shard window/event splits,
	// wait-time nanoseconds.
	r.ShardStats = nil
	return r
}

// TestShardDeterminismAcrossPresets pins the tentpole contract: for every
// fig* preset, running each scenario at every shard count produces
// Results — metrics, event counts, census, pool accounting, everything —
// bit-identical to the serial run. Fault presets (figloss, figflap,
// figchaos) shard like any other since the per-owner fault-event lift:
// transitions fire on the shard owning each directed link and boundary
// (agg-core) links resolve arrival faults on the consumer shard, so the
// same assertion covers flap/degrade/loss-burst transitions landing on
// cut links and on safe-window boundaries.
//
// CI runs this under -race as well: the per-shard ownership story
// (disjoint launcher slots, partitioned stats, barrier-ordered channel
// drains) is checked by the race detector on every sharded preset run.
func TestShardDeterminismAcrossPresets(t *testing.T) {
	sc := shardScale()
	for _, e := range All(sc) {
		if !strings.HasPrefix(e.ID, "fig") {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			for _, s := range e.Scenarios {
				serial := stripShards(Run(s))
				for _, shards := range shardMatrix {
					if shards == 1 {
						continue
					}
					ss := s
					ss.Shards = shards
					got := stripShards(Run(ss))
					if !reflect.DeepEqual(got, serial) {
						t.Fatalf("%s at %d shards diverged from serial:\nserial:  %+v\nsharded: %+v",
							s.Name, shards, serial, got)
					}
				}
			}
		})
	}
}

// TestShardWorkerReuse: the zero-rebuild path must hold for sharded
// fabrics too — a worker alternating shard counts (rebuild) and
// repeating one (reset) stays bit-identical to fresh construction.
func TestShardWorkerReuse(t *testing.T) {
	seq := []Scenario{
		{Name: "s2", NumFlows: 100, Seed: 11, Shards: 2},
		{Name: "s2b", NumFlows: 100, Seed: 23, Shards: 2}, // same key: reset path
		{Name: "s4", NumFlows: 100, Seed: 11, Shards: 4},  // shard count changes the key
		{Name: "s1", NumFlows: 100, Seed: 11},             // back to serial
		{Name: "pfc2", NumFlows: 100, Seed: 7, Shards: 2, PFC: true, Transport: TransportRoCE},
		// Faults don't enter the fabric key: a faulted run must reuse the
		// fault-free fabric above (reset re-applies the model) and shard.
		{Name: "fault2", NumFlows: 100, Seed: 7, Shards: 2, PFC: true, Transport: TransportRoCE,
			Faults: fault.Spec{LossRate: 0.001}},
	}
	w := NewWorker()
	for i, s := range seq {
		fresh := Run(s)
		reused := w.Run(s)
		// Barrier wait times are wall-clock; every other shard-runtime
		// counter (barriers, windows, events, drains) must reproduce.
		for _, r := range []*Result{&fresh, &reused} {
			for k := range r.ShardStats.Shards {
				r.ShardStats.Shards[k].BarrierWaitNs = 0
			}
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("step %d (%s): sharded worker reuse diverged from fresh run", i, s.Name)
		}
	}
}

// TestFleetShardArbitration pins the CPU arbitration rule: workers ×
// shards never exceeds GOMAXPROCS, and the capped fleet still returns
// bit-identical results.
func TestFleetShardArbitration(t *testing.T) {
	mk := func(name string, shards int) Scenario {
		return Scenario{Name: name, NumFlows: 80, Seed: 5, Shards: shards}
	}
	e := Experiment{ID: "arb", Scenarios: []Scenario{mk("a", 4), mk("b", 4)}}
	wide := RunFleet(e, FleetConfig{Parallel: 64})
	serial := RunFleet(e, FleetConfig{Parallel: 1})
	for _, fr := range []*FleetResult{&wide, &serial} {
		for _, trials := range fr.Trials {
			for i := range trials {
				// Wall-clock; the sibling counters stay in the compare.
				for k := range trials[i].ShardStats.Shards {
					trials[i].ShardStats.Shards[k].BarrierWaitNs = 0
				}
			}
		}
	}
	if !reflect.DeepEqual(wide.Trials, serial.Trials) {
		t.Fatal("capped fleet diverged from serial fleet")
	}
}

// TestAdaptiveWindowsCollapseBarriers pins the adaptive safe-window
// extension's payoff at 4 shards, asserted through the shard-stats
// counters. Two regimes:
//
//   - Saturated fabrics (figscale, figdc): every shard holds events
//     inside every lookahead window, so span/lookahead barriers is the
//     conservative floor and no sound windowing can beat it by much. The
//     extension must engage (wide windows granted), never pay MORE
//     barriers than fixed windows, and leave the Result bit-identical —
//     the Done horizon pins the executed-event set regardless of window
//     boundaries.
//
//   - Sparse phases (the figkv chaos scenarios: blackouts, flaps, client
//     backoff stretches): the extension must collapse the barrier count
//     measurably — at least 10% below the fixed-window run, against the
//     19–37% observed — because a lone shard holding the next timer
//     event no longer drags every other shard through empty
//     lookahead-wide windows.
func TestAdaptiveWindowsCollapseBarriers(t *testing.T) {
	sc := shardScale()
	compare := func(t *testing.T, s Scenario) (bf, ba uint64) {
		t.Helper()
		s.Shards = 4
		fixed := s
		fixed.FixedWindows = true
		rf := Run(fixed)
		ra := Run(s)

		af, aa := stripShards(rf), stripShards(ra)
		af.Scenario.FixedWindows = false
		if !reflect.DeepEqual(af, aa) {
			t.Fatalf("%s: adaptive windows changed the Result", s.Name)
		}
		if rf.ShardStats.WideWindows != 0 {
			t.Fatalf("%s: fixed run reports %d widened windows, want 0",
				s.Name, rf.ShardStats.WideWindows)
		}
		if ra.ShardStats.WideWindows == 0 {
			t.Fatalf("%s: adaptive run widened no windows", s.Name)
		}
		bf, ba = rf.ShardStats.Barriers, ra.ShardStats.Barriers
		t.Logf("%s: barriers fixed=%d adaptive=%d (%.0f%%), wide=%d",
			s.Name, bf, ba, 100*float64(ba)/float64(bf), ra.ShardStats.WideWindows)
		return bf, ba
	}

	for _, e := range []Experiment{FigureScale(sc), FigureDC(sc)} {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			for _, s := range e.Scenarios {
				bf, ba := compare(t, s)
				if ba > bf {
					t.Fatalf("%s: adaptive run paid %d barriers vs fixed %d — extension made it worse",
						s.Name, ba, bf)
				}
			}
		})
	}
	t.Run("figkv", func(t *testing.T) {
		t.Parallel()
		for _, s := range FigureKV(sc).Scenarios {
			bf, ba := compare(t, s)
			if ba*10 > bf*9 {
				t.Fatalf("%s: adaptive run paid %d barriers vs fixed %d — want at least a 10%% collapse",
					s.Name, ba, bf)
			}
		}
	})
}
