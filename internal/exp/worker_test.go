package exp

import (
	"reflect"
	"testing"

	"github.com/irnsim/irn/internal/fault"
)

// TestWorkerReuseBitIdentical pins the zero-rebuild contract: a Worker
// that has already run other scenarios — same fabric key (reset path) or
// different (rebuild path), with and without faults — must produce
// byte-identical Results to a fresh construction for every subsequent
// run.
func TestWorkerReuseBitIdentical(t *testing.T) {
	seq := []Scenario{
		{Name: "irn-a", NumFlows: 120, Seed: 11},
		{Name: "irn-b", NumFlows: 120, Seed: 23}, // same key: reset path
		{Name: "roce", NumFlows: 120, Seed: 11, PFC: true, // different key: rebuild
			Transport: TransportRoCE},
		{Name: "irn-faults", NumFlows: 120, Seed: 7, // same key as irn-a, plus faults
			Faults: fault.Spec{LossRate: 0.002, CorruptRate: 0.001}},
		{Name: "irn-c", NumFlows: 120, Seed: 31},              // faults cleared again
		{Name: "dcqcn", NumFlows: 120, Seed: 11, CC: CCDCQCN}, // ECN config changes the key
		{Name: "incast", IncastM: 12, IncastBytes: 400_000, Seed: 5},
	}

	w := NewWorker()
	for i, s := range seq {
		fresh := Run(s)
		reused := w.Run(s)
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("step %d (%s): worker reuse diverged from fresh run\nfresh:  %+v\nreused: %+v",
				i, s.Name, fresh, reused)
		}
	}

	// The same scenario back-to-back on one worker (the trial-sweep
	// shape) must also be self-identical.
	a := w.Run(seq[0])
	b := w.Run(seq[0])
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated run of one scenario on a reused worker diverged")
	}
}

// TestWorkerPoolWarmReuse: the second trial on a worker must serve its
// packets from the pool's warm free list, not the heap — the point of
// keeping the pool across trials.
func TestWorkerPoolWarmReuse(t *testing.T) {
	w := NewWorker()
	s := Scenario{Name: "warm", NumFlows: 150, Seed: 3}
	first := w.Run(s)
	second := w.Run(s)
	if !reflect.DeepEqual(first.Summary, second.Summary) {
		t.Fatal("warm trial changed results")
	}
	// After the first trial the free list holds every packet the run
	// released; the second trial must allocate a small fraction of what
	// the first did.
	// (Allocs counters reset per run, so Result-level comparison works.)
	firstAllocs := first.Census.Injected // proxy: every injected packet was allocated or reused
	if firstAllocs == 0 {
		t.Fatal("no packets injected")
	}
	pool := w.net.Pool()
	if pool.Reuses == 0 {
		t.Fatal("second trial never reused a pooled packet")
	}
	if pool.Allocs*4 > pool.Reuses {
		t.Fatalf("second trial heap-allocated %d packets vs %d reuses; pool warmth lost",
			pool.Allocs, pool.Reuses)
	}
}
