// Package exp is the experiment harness: it instantiates a scenario (the
// paper's default case or any of its §4.4 variations), wires the chosen
// transport and congestion control onto every generated flow, runs the
// simulation, and reports the paper's metrics. Each figure and table of
// the evaluation has a named preset in presets.go.
package exp

import (
	"fmt"

	"github.com/irnsim/irn/internal/cc"
	"github.com/irnsim/irn/internal/core"
	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/metrics"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/rocev2"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/tcpstack"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
	"github.com/irnsim/irn/internal/workload"
)

// Transport selects the NIC transport under test.
type Transport uint8

// Transports.
const (
	TransportIRN Transport = iota
	TransportRoCE
	TransportTCP // iWARP
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportIRN:
		return "IRN"
	case TransportRoCE:
		return "RoCE"
	case TransportTCP:
		return "iWARP/TCP"
	default:
		return "?"
	}
}

// CCKind selects explicit congestion control.
type CCKind uint8

// Congestion-control kinds.
const (
	CCNone CCKind = iota
	CCTimely
	CCDCQCN
	CCAIMD
	CCDCTCP
)

// String implements fmt.Stringer.
func (c CCKind) String() string {
	switch c {
	case CCNone:
		return "none"
	case CCTimely:
		return "Timely"
	case CCDCQCN:
		return "DCQCN"
	case CCAIMD:
		return "AIMD"
	case CCDCTCP:
		return "DCTCP"
	default:
		return "?"
	}
}

// WorkloadKind selects the flow-size distribution.
type WorkloadKind uint8

// Workload kinds.
const (
	WorkloadHeavyTailed WorkloadKind = iota // §4.1 default
	WorkloadUniform                         // §4.4 storage (500KB-5MB)
)

// Scenario fully describes one simulation run. Zero values select the
// paper's defaults (filled in by normalize).
type Scenario struct {
	Name string

	// Fabric.
	Arity       int          // fat-tree arity; default 6 (54 hosts)
	Gbps        float64      // link rate; default 40
	Prop        sim.Duration // per-link propagation; default 2 µs
	BufferBytes int          // per-input-port buffer; default 2×BDP
	PFC         bool
	MTU         int // default 1000

	// Transport and congestion control.
	Transport Transport
	CC        CCKind

	// Workload.
	Load     float64 // default 0.7
	Workload WorkloadKind
	NumFlows int // default 1000
	Seed     uint64

	// Incast mode (Figure 9): when IncastM > 0 the Poisson workload is
	// replaced with IncastBytes striped over M senders; cross-traffic
	// can be layered on top with NumFlows > 0 and Load > 0.
	IncastM     int
	IncastBytes int

	// IRN knobs (§3, §4.3 ablations, §6.3 overheads).
	Recovery       core.RecoveryMode
	NoBDPFC        bool
	RTOLow         sim.Duration // default 100 µs
	RTOHigh        sim.Duration // default 320 µs
	RTOLowN        int          // default 3
	NackThreshold  int          // default 1
	DynamicRTO     bool
	BackoffOnLoss  bool // forced on for AIMD/DCTCP
	RetxFetchDelay sim.Duration
	ExtraHeader    int
	// BDPCapScale multiplies the computed BDP cap (the §3.2 footnote:
	// over-estimating the BDP must stay safe). Zero means 1.
	BDPCapScale float64
	// Spray enables per-packet multipathing (§7 reordering study).
	Spray bool
	// SharedBuffer pools switch buffers across input ports (§A.5 note).
	SharedBuffer bool

	// Faults injects link-level failures — random loss, corruption, link
	// flaps, degraded links — the robustness axes of the extended paper's
	// appendix. The fault model is compiled against this scenario's
	// topology and seed at run start.
	Faults fault.Spec
	// RoCETimeouts forces the RoCE receiver's stall timer on even when
	// PFC would normally disable it (§4.1). Fault sweeps set it on every
	// point — including the fault-free baseline — so the series varies
	// only the fault axis, never the transport configuration.
	RoCETimeouts bool

	// Grace is how long past the last flow arrival the simulation may
	// run before unfinished flows are declared incomplete.
	Grace sim.Duration
}

// normalize fills defaults.
func (s Scenario) normalize() Scenario {
	if s.Arity == 0 {
		s.Arity = 6
	}
	if s.Gbps == 0 {
		s.Gbps = 40
	}
	if s.Prop == 0 {
		s.Prop = 2 * sim.Microsecond
	}
	if s.MTU == 0 {
		s.MTU = 1000
	}
	if s.Load == 0 {
		s.Load = 0.7
	}
	if s.NumFlows == 0 && s.IncastM == 0 {
		s.NumFlows = 1000
	}
	if s.RTOLow == 0 {
		s.RTOLow = 100 * sim.Microsecond
	}
	if s.RTOHigh == 0 {
		s.RTOHigh = 320 * sim.Microsecond
	}
	if s.RTOLowN == 0 {
		s.RTOLowN = 3
	}
	if s.NackThreshold == 0 {
		s.NackThreshold = 1
	}
	if s.BDPCapScale == 0 {
		s.BDPCapScale = 1
	}
	if s.Grace == 0 {
		s.Grace = 500 * sim.Millisecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Result is the outcome of one scenario run.
type Result struct {
	Name     string
	Scenario Scenario
	metrics.Summary
	// SinglePktCDF is the Figure 8 tail series (90–99.9%ile).
	SinglePktCDF []metrics.CDFPoint
	// RCT is the incast request completion time (last flow finishes).
	RCT sim.Duration
	// Net carries fabric counters (drops, pauses, marks).
	Net fabric.Stats
	// Census carries the packet-conservation counters, and InFlight the
	// fabric backlog at run end; together they close the conservation
	// equation the invariant harness asserts.
	Census   fabric.Census
	InFlight int
	// PoolLive is the number of packets still allocated out of the pool
	// at run end and CtrlBacklog the control packets queued at NICs that
	// never began transmission. Pool accounting demands
	// PoolLive == InFlight + CtrlBacklog: anything above is a leak,
	// anything below a double release (which also panics in the pool).
	PoolLive    int
	CtrlBacklog int
	// Retransmits and Timeouts aggregate sender recovery activity.
	Retransmits uint64
	Timeouts    uint64
	// Events is the number of simulator events executed.
	Events uint64
	// SimTime is the simulated time at which the run ended.
	SimTime sim.Time
}

// senderStats abstracts per-transport counters.
type senderStats interface {
	retransmits() uint64
	timeouts() uint64
}

type irnStats struct{ s *core.Sender }

func (w irnStats) retransmits() uint64 { return w.s.Stats.Retransmits }
func (w irnStats) timeouts() uint64    { return w.s.Stats.Timeouts }

type roceStats struct {
	s *rocev2.Sender
	r *rocev2.Receiver
}

func (w roceStats) retransmits() uint64 { return w.s.Stats.Retransmits }
func (w roceStats) timeouts() uint64    { return w.r.TimeoutNacks }

type tcpStats struct{ s *tcpstack.Sender }

func (w tcpStats) retransmits() uint64 { return w.s.Stats.Retransmits }
func (w tcpStats) timeouts() uint64    { return w.s.Stats.Timeouts }

// Worker runs scenarios on one long-lived engine, reusing simulation
// infrastructure across runs. The engine (and its timing-wheel bucket
// arrays) is reset and reused for every run; the fabric — topology,
// routing tables, VOQ matrices, port wiring — and the packet pool are
// reused whenever the next scenario is structurally identical to the
// previous one (same fabricKey) and rebuilt otherwise. Trials of one
// scenario always share a key, so a trial sweep constructs its fat-tree
// exactly once per worker.
//
// A Worker is single-threaded, like the engine it owns; the fleet runner
// gives each of its goroutines a private Worker. Results are bit-identical
// to fresh construction — the golden-fixture and serial≡parallel tests
// hold across the reuse path.
type Worker struct {
	eng   *sim.Engine
	net   *fabric.Network
	top   topo.Topology
	key   fabricKey
	built bool
}

// NewWorker returns a Worker with a fresh engine and no cached fabric.
func NewWorker() *Worker { return &Worker{eng: sim.NewEngine()} }

// fabricKey is the structural identity of a fabric: every input to its
// construction except the seed and the fault model, which Network.Reset
// re-applies per run. Two scenarios with equal keys run on identical
// topologies and configs. (It mirrors fabric.Config field by field rather
// than embedding it because Config's LossInject hook makes the struct
// non-comparable; scenarios never set that hook.)
type fabricKey struct {
	arity         int
	rate          fabric.Rate
	prop          sim.Duration
	bufferBytes   int
	pfc           bool
	pfcHeadroom   int
	pfcHysteresis int
	ecn           fabric.ECNConfig
	mtu           int
	spray         bool
	sharedBuffer  bool
}

// keyOf extracts the structural identity of a scenario's fabric.
func keyOf(arity int, cfg fabric.Config) fabricKey {
	return fabricKey{
		arity:         arity,
		rate:          cfg.Rate,
		prop:          cfg.Prop,
		bufferBytes:   cfg.BufferBytes,
		pfc:           cfg.PFC,
		pfcHeadroom:   cfg.PFCHeadroom,
		pfcHysteresis: cfg.PFCHysteresis,
		ecn:           cfg.ECN,
		mtu:           cfg.MTU,
		spray:         cfg.Spray,
		sharedBuffer:  cfg.SharedBuffer,
	}
}

// Run executes a scenario to completion (all flows finished or grace
// period exhausted) and returns its metrics. Package-level Run constructs
// a throwaway Worker; the fleet runner calls Worker.Run to reuse one.
func Run(s Scenario) Result { return NewWorker().Run(s) }

// Run executes a scenario on this worker, reusing the engine always and
// the fabric when the scenario is structurally identical to the previous
// run's.
func (w *Worker) Run(s Scenario) Result {
	s = s.normalize()

	rate := fabric.Gbps(s.Gbps)
	bdp := fabric.BDPBytes(rate, s.Prop, topo.FatTreeLongestPathHops)
	linkBDP := fabric.BDPBytes(rate, s.Prop, 1)

	// Headroom must absorb everything in flight when X-OFF takes hold:
	// one link RTT of data (the paper's "upstream link's bandwidth-delay
	// product") plus the packet serializing at the pause instant and the
	// packet that may overshoot the threshold check.
	wire := s.MTU + packet.DataHeader + s.ExtraHeader
	cfg := fabric.Config{
		Rate:          rate,
		Prop:          s.Prop,
		BufferBytes:   s.BufferBytes,
		PFC:           s.PFC,
		PFCHeadroom:   linkBDP + 3*wire,
		PFCHysteresis: 2 * wire,
		MTU:           s.MTU,
		Seed:          s.Seed,
		Spray:         s.Spray,
		SharedBuffer:  s.SharedBuffer,
	}
	if cfg.BufferBytes == 0 {
		cfg.BufferBytes = 2 * bdp
	}
	if cfg.PFCHeadroom >= cfg.BufferBytes {
		// Tiny-buffer sweeps: keep a sane threshold at half the buffer.
		cfg.PFCHeadroom = cfg.BufferBytes / 2
	}
	scale := s.Gbps / 40.0
	switch s.CC {
	case CCDCQCN:
		cfg.ECN = fabric.ECNConfig{
			Enabled: true,
			KMin:    int(40_000 * scale),
			KMax:    int(160_000 * scale),
			PMax:    0.2,
		}
	case CCDCTCP:
		k := int(80_000 * scale)
		cfg.ECN = fabric.ECNConfig{Enabled: true, KMin: k, KMax: k + 1, PMax: 1.0}
	}

	// Zero-rebuild path: reset the engine unconditionally; reset the
	// cached fabric under the new seed and fault model when the structure
	// matches, rebuild it otherwise.
	key := keyOf(s.Arity, cfg)
	w.eng.Reset()
	if !w.built || w.key != key {
		w.top = topo.NewFatTree(s.Arity)
	}
	var faults *fault.Model
	if s.Faults.Enabled() {
		m, err := fault.New(s.Faults, len(w.top.Links()), s.Seed)
		if err != nil {
			panic(fmt.Sprintf("exp: scenario %q: %v", s.Name, err))
		}
		faults = m
	}
	var net *fabric.Network
	if w.built && w.key == key {
		net = w.net
		net.Reset(s.Seed, faults)
	} else {
		cfg.Faults = faults
		net = fabric.New(w.eng, w.top, cfg)
		w.net, w.key, w.built = net, key, true
	}

	eng := w.eng
	top := w.top
	bdpCap := int(float64(net.BDPCap()) * s.BDPCapScale)
	if bdpCap < 1 {
		bdpCap = 1
	}

	// Build the flow list.
	var specs []workload.Spec
	if s.IncastM > 0 {
		specs = workload.Incast(top.Hosts(), s.IncastM, s.IncastBytes, s.Seed)
	}
	incastFlows := len(specs)
	if s.NumFlows > 0 {
		var dist workload.SizeDist
		switch s.Workload {
		case WorkloadUniform:
			dist = workload.NewUniform()
		default:
			dist = workload.NewHeavyTailed()
		}
		specs = append(specs, workload.Generate(workload.PoissonConfig{
			Hosts:         top.Hosts(),
			Load:          s.Load,
			RatePsPerByte: int64(rate),
			MTU:           s.MTU,
			HeaderBytes:   packet.DataHeader + s.ExtraHeader,
			NumFlows:      s.NumFlows,
			Dist:          dist,
			Seed:          s.Seed,
		})...)
	}

	l := &launcher{
		s:           s,
		eng:         eng,
		net:         net,
		bdpCap:      bdpCap,
		minRTT:      sim.Duration(2*top.LongestPathHops()) * (s.Prop + rate.Serialize(s.MTU+packet.DataHeader)),
		specs:       specs,
		flows:       make([]*transport.Flow, len(specs)),
		stats:       make([]senderStats, len(specs)),
		remaining:   len(specs),
		incastFlows: incastFlows,
	}

	var lastArrival sim.Time
	for i, spec := range specs {
		l.flows[i] = &transport.Flow{
			ID:    packet.FlowID(i + 1),
			Src:   spec.Src,
			Dst:   spec.Dst,
			Size:  spec.Size,
			Pkts:  transport.NumPackets(spec.Size, s.MTU),
			Start: spec.Start,
		}
		if spec.Start > lastArrival {
			lastArrival = spec.Start
		}
		eng.ScheduleEvent(spec.Start, l, 0, uint64(i))
	}

	eng.RunUntil(lastArrival.Add(s.Grace))

	res := Result{
		Name:        s.Name,
		Scenario:    s,
		RCT:         sim.Duration(l.incastDone),
		Net:         net.Stats,
		Census:      net.Census,
		InFlight:    net.InFlightPackets(),
		PoolLive:    net.Pool().Live(),
		CtrlBacklog: net.CtrlBacklog(),
		Events:      eng.Executed(),
		SimTime:     eng.Now(),
	}
	for i, fl := range l.flows {
		if !fl.Finished {
			l.col.AddIncomplete()
		}
		if st := l.stats[i]; st != nil {
			res.Retransmits += st.retransmits()
			res.Timeouts += st.timeouts()
		}
	}
	res.Summary = l.col.Summarize()
	res.SinglePktCDF = l.col.SinglePacketTail([]float64{90, 95, 99, 99.9})
	return res
}

// launcher wires each flow's transport at its arrival time. It is a
// sim.Handler (arg = flow index), so scheduling a thousand flow arrivals
// costs no closures; each flow's completion callback remains a closure
// created once at flow start.
type launcher struct {
	s      Scenario
	eng    *sim.Engine
	net    *fabric.Network
	bdpCap int
	minRTT sim.Duration

	specs       []workload.Spec
	flows       []*transport.Flow
	stats       []senderStats
	col         metrics.Collector
	remaining   int
	incastFlows int
	incastDone  sim.Time
}

// HandleEvent implements sim.Handler: flow arg arrives.
func (l *launcher) HandleEvent(_ uint8, arg uint64) { l.start(int(arg)) }

// start attaches flow i's sender and receiver to their NICs.
func (l *launcher) start(i int) {
	s := l.s
	spec := l.specs[i]
	fl := l.flows[i]
	net := l.net
	isIncast := i < l.incastFlows

	onDone := func(now sim.Time) {
		l.col.Add(metrics.FlowRecord{
			Size:         spec.Size,
			Pkts:         fl.Pkts,
			FCT:          now.Sub(spec.Start),
			Ideal:        net.IdealFCT(spec.Src, spec.Dst, spec.Size),
			SinglePacket: fl.Pkts == 1,
		})
		if isIncast && now > l.incastDone {
			l.incastDone = now
		}
		l.remaining--
		if l.remaining == 0 {
			l.eng.Stop()
		}
	}

	ctrl := buildCC(l.eng, s, l.bdpCap, l.minRTT)
	switch s.Transport {
	case TransportIRN:
		p := core.Params{
			MTU:              s.MTU,
			BDPCap:           l.bdpCap,
			Recovery:         s.Recovery,
			RTOLow:           s.RTOLow,
			RTOHigh:          s.RTOHigh,
			RTOLowThreshold:  s.RTOLowN,
			DynamicRTO:       s.DynamicRTO,
			NackThreshold:    s.NackThreshold,
			BackoffOnLoss:    s.BackoffOnLoss || s.CC == CCAIMD || s.CC == CCDCTCP,
			RetxFetchDelay:   s.RetxFetchDelay,
			ExtraHeaderBytes: s.ExtraHeader,
			ECT:              s.CC == CCDCQCN || s.CC == CCDCTCP,
		}
		if s.NoBDPFC {
			p.BDPCap = 0
		}
		snd := core.NewSender(net.NIC(spec.Src), fl, p, ctrl)
		rcv := core.NewReceiver(net.NIC(spec.Dst), fl, p, onDone)
		net.NIC(spec.Dst).AttachSink(fl.ID, rcv)
		net.NIC(spec.Src).AttachSource(snd)
		l.stats[i] = irnStats{snd}

	case TransportRoCE:
		p := rocev2.Params{
			MTU:     s.MTU,
			RTOHigh: s.RTOHigh,
			// The paper disables RoCE timeouts when PFC guarantees
			// losslessness (§4.1); injected faults break that guarantee,
			// so fault scenarios keep timeouts even under PFC.
			DisableTimeout: s.PFC && !s.Faults.Enabled() && !s.RoCETimeouts,
			PerPacketAck:   s.CC == CCTimely,
			ECT:            s.CC == CCDCQCN,
		}
		snd := rocev2.NewSender(net.NIC(spec.Src), fl, p, ctrl)
		rcv := rocev2.NewReceiver(net.NIC(spec.Dst), fl, p, onDone)
		net.NIC(spec.Dst).AttachSink(fl.ID, rcv)
		net.NIC(spec.Src).AttachSource(snd)
		l.stats[i] = roceStats{snd, rcv}

	case TransportTCP:
		p := tcpstack.DefaultParams(s.MTU)
		snd := tcpstack.NewSender(net.NIC(spec.Src), fl, p)
		rcv := tcpstack.NewReceiver(net.NIC(spec.Dst), fl, p, onDone)
		net.NIC(spec.Dst).AttachSink(fl.ID, rcv)
		net.NIC(spec.Src).AttachSource(snd)
		l.stats[i] = tcpStats{snd}
	}
}

// buildCC constructs the per-flow congestion controller.
func buildCC(eng *sim.Engine, s Scenario, bdpCap int, minRTT sim.Duration) transport.Controller {
	switch s.CC {
	case CCTimely:
		return cc.NewTimely(cc.DefaultTimelyConfig(s.Gbps, minRTT))
	case CCDCQCN:
		return cc.NewDCQCN(eng, cc.DefaultDCQCNConfig(s.Gbps))
	case CCAIMD:
		return cc.NewAIMD(bdpCap)
	case CCDCTCP:
		return cc.NewDCTCP(bdpCap)
	default:
		return nil
	}
}

// String renders a result line in the paper's units.
func (r Result) String() string {
	return fmt.Sprintf("%-34s %s drops=%d pauses=%d retx=%d", r.Name, r.Summary, r.Net.Drops, r.Net.PauseFrames, r.Retransmits)
}
