// Package exp is the experiment harness: it instantiates a scenario (the
// paper's default case or any of its §4.4 variations), wires the chosen
// transport and congestion control onto every generated flow, runs the
// simulation, and reports the paper's metrics. Each figure and table of
// the evaluation has a named preset in presets.go.
package exp

import (
	"fmt"

	"github.com/irnsim/irn/internal/cc"
	"github.com/irnsim/irn/internal/core"
	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/kv"
	"github.com/irnsim/irn/internal/metrics"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/rocev2"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/tcpstack"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/transport"
	"github.com/irnsim/irn/internal/workload"
)

// Transport selects the NIC transport under test.
type Transport uint8

// Transports.
const (
	TransportIRN Transport = iota
	TransportRoCE
	TransportTCP // iWARP
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportIRN:
		return "IRN"
	case TransportRoCE:
		return "RoCE"
	case TransportTCP:
		return "iWARP/TCP"
	default:
		return "?"
	}
}

// CCKind selects explicit congestion control.
type CCKind uint8

// Congestion-control kinds.
const (
	CCNone CCKind = iota
	CCTimely
	CCDCQCN
	CCAIMD
	CCDCTCP
)

// String implements fmt.Stringer.
func (c CCKind) String() string {
	switch c {
	case CCNone:
		return "none"
	case CCTimely:
		return "Timely"
	case CCDCQCN:
		return "DCQCN"
	case CCAIMD:
		return "AIMD"
	case CCDCTCP:
		return "DCTCP"
	default:
		return "?"
	}
}

// WorkloadKind selects the flow-size distribution.
type WorkloadKind uint8

// Workload kinds.
const (
	WorkloadHeavyTailed WorkloadKind = iota // §4.1 default
	WorkloadUniform                         // §4.4 storage (500KB-5MB)
	WorkloadWebSearch                       // empirical web-search CDF (DCTCP-style)
	WorkloadHadoop                          // empirical Hadoop CDF (FB-style); figdc default
)

// Scenario fully describes one simulation run. Zero values select the
// paper's defaults (filled in by normalize).
type Scenario struct {
	Name string

	// Fabric.
	Arity       int          // fat-tree arity; default 6 (54 hosts)
	Gbps        float64      // link rate; default 40
	Prop        sim.Duration // per-link propagation; default 2 µs
	BufferBytes int          // per-input-port buffer; default 2×BDP
	PFC         bool
	MTU         int // default 1000

	// Transport and congestion control.
	Transport Transport
	CC        CCKind

	// Workload.
	Load     float64 // default 0.7
	Workload WorkloadKind
	NumFlows int // default 1000
	Seed     uint64

	// Incast mode (Figure 9): when IncastM > 0 the Poisson workload is
	// replaced with IncastBytes striped over M senders; cross-traffic
	// can be layered on top with NumFlows > 0 and Load > 0.
	IncastM     int
	IncastBytes int

	// Shards splits this single run across that many engines, one shard
	// goroutine each, partitioned pod-wise along inter-pod links under
	// the conservative lookahead the fabric proves for the partitioning
	// (link propagation plus minimum-frame serialization; bare
	// propagation under PFC — see fabric.Network.Lookahead). Results are
	// bit-identical for every value — including 1 and 0 (serial) — by the
	// (time, rank) event-ordering contract; shards only buy wall-clock
	// time on multi-core machines. Fault-injection scenarios shard like
	// any other: transitions fire on the shard owning each directed link
	// and boundary links resolve faults on the consumer side.
	Shards int

	// IRN knobs (§3, §4.3 ablations, §6.3 overheads).
	Recovery       core.RecoveryMode
	NoBDPFC        bool
	RTOLow         sim.Duration // default 100 µs
	RTOHigh        sim.Duration // default 320 µs
	RTOLowN        int          // default 3
	NackThreshold  int          // default 1
	DynamicRTO     bool
	BackoffOnLoss  bool // forced on for AIMD/DCTCP
	RetxFetchDelay sim.Duration
	ExtraHeader    int
	// BDPCapScale multiplies the computed BDP cap (the §3.2 footnote:
	// over-estimating the BDP must stay safe). Zero means 1.
	BDPCapScale float64
	// Spray enables per-packet multipathing (§7 reordering study).
	Spray bool
	// SharedBuffer pools switch buffers across input ports (§A.5 note).
	SharedBuffer bool

	// Faults injects link-level failures — random loss, corruption, link
	// flaps, degraded links — the robustness axes of the extended paper's
	// appendix. The fault model is compiled against this scenario's
	// topology and seed at run start.
	Faults fault.Spec
	// RoCETimeouts forces the RoCE receiver's stall timer on even when
	// PFC would normally disable it (§4.1). Fault sweeps set it on every
	// point — including the fault-free baseline — so the series varies
	// only the fault axis, never the transport configuration.
	RoCETimeouts bool

	// KV replaces the flow workload with the replicated key-value
	// service (internal/kv) when KV.Requests > 0: a leader, KV.Followers
	// replicas and KV.Clients RPC clients are placed across the
	// fat-tree's pods and driven open-loop while this scenario's fault
	// schedule runs, measuring per-phase availability and commit latency
	// instead of FCTs. The verbs transport follows Transport: IRN runs
	// selective retransmission, RoCE go-back-N.
	KV kv.Options

	// Grace is how long past the last flow arrival the simulation may
	// run before unfinished flows are declared incomplete.
	Grace sim.Duration

	// ExactMetrics switches the run's collectors into exact mode: every
	// flow record is retained (O(flows) memory again) and the Result
	// carries the merged collector so the sort-based reference statistics
	// are available next to the streaming ones. Only the differential
	// test harness sets this; it is excluded from the store fingerprint
	// like Shards, since it cannot change any streaming aggregate.
	ExactMetrics bool

	// BareLookahead forces the conservative windows back to the bare
	// link-propagation lookahead instead of the widened propagation +
	// minimum-frame-serialization bound the fabric computes. Results are
	// bit-identical either way — the Done horizon pins the executed-event
	// set independently of the window width — which the lookahead
	// differential test asserts; like Shards and ExactMetrics it is
	// excluded from the store fingerprint.
	BareLookahead bool

	// FixedWindows disables the adaptive safe-window extension (see
	// sim.RunWindows): every window spans exactly one lookahead past the
	// global minimum, paying a barrier per window even through sparse
	// phases. Results are bit-identical either way — the Done horizon
	// pins the executed-event set independently of window boundaries —
	// so, like Shards and BareLookahead, it is excluded from the store
	// fingerprint. The barrier-count regression tests set it to measure
	// the collapse the adaptive extension buys.
	FixedWindows bool
}

// normalize fills defaults.
func (s Scenario) normalize() Scenario {
	if s.Arity == 0 {
		s.Arity = 6
	}
	if s.Gbps == 0 {
		s.Gbps = 40
	}
	if s.Prop == 0 {
		s.Prop = 2 * sim.Microsecond
	}
	if s.MTU == 0 {
		s.MTU = 1000
	}
	if s.Load == 0 {
		s.Load = 0.7
	}
	if s.NumFlows == 0 && s.IncastM == 0 && s.KV.Requests == 0 {
		s.NumFlows = 1000
	}
	if s.KV.Requests > 0 {
		s.KV = s.KV.WithDefaults()
	}
	if s.RTOLow == 0 {
		s.RTOLow = 100 * sim.Microsecond
	}
	if s.RTOHigh == 0 {
		s.RTOHigh = 320 * sim.Microsecond
	}
	if s.RTOLowN == 0 {
		s.RTOLowN = 3
	}
	if s.NackThreshold == 0 {
		s.NackThreshold = 1
	}
	if s.BDPCapScale == 0 {
		s.BDPCapScale = 1
	}
	if s.Grace == 0 {
		s.Grace = 500 * sim.Millisecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	return s
}

// Result is the outcome of one scenario run.
type Result struct {
	Name     string
	Scenario Scenario
	metrics.Summary
	// SinglePktCDF is the Figure 8 tail series (90–99.9%ile).
	SinglePktCDF []metrics.CDFPoint
	// RCT is the incast request completion time (last flow finishes).
	RCT sim.Duration
	// Net carries fabric counters (drops, pauses, marks).
	Net fabric.Stats
	// Census carries the packet-conservation counters, and InFlight the
	// fabric backlog at run end; together they close the conservation
	// equation the invariant harness asserts.
	Census   fabric.Census
	InFlight int
	// PoolLive is the number of packets still allocated out of the pool
	// at run end and CtrlBacklog the control packets queued at NICs that
	// never began transmission. Pool accounting demands
	// PoolLive == InFlight + CtrlBacklog: anything above is a leak,
	// anything below a double release (which also panics in the pool).
	PoolLive    int
	CtrlBacklog int
	// Retransmits and Timeouts aggregate sender recovery activity.
	Retransmits uint64
	Timeouts    uint64
	// Events is the number of simulator events executed.
	Events uint64
	// SimTime is the simulated time at which the run ended.
	SimTime sim.Time
	// ShardsUsed is the number of shard engines the run actually spanned
	// (the partitioner may use fewer than requested on small topologies).
	// A wall-clock fact like MetricsBytes, zeroed by the shard-determinism
	// tests; the regression test for the former faults-force-serial
	// downgrade asserts on it.
	ShardsUsed int
	// FCTSketch is the merged FCT histogram of all completed flows —
	// exact integer bucket counts, so it is bit-identical for every shard
	// count and persists losslessly through the store (schema v2).
	FCTSketch *metrics.Histogram
	// MetricsBytes is the approximate live-heap footprint of the run's
	// collectors (per-shard plus the merged aggregate). For streaming
	// runs it is O(shards), independent of flow count — the figdc
	// memory-bound tests assert on it. It varies with the shard count, so
	// the shard-determinism tests zero it alongside Scenario.Shards.
	MetricsBytes int
	// ExactCollector is the merged exact-mode collector (records
	// retained), set only when Scenario.ExactMetrics is on; nil
	// otherwise. The differential harness reads its Exact* reference
	// statistics.
	ExactCollector *metrics.Collector
	// KV is the replicated key-value service report, set only when the
	// scenario ran the kv workload (Scenario.KV.Requests > 0).
	KV *kv.Report
	// ShardStats is the shard-runtime report for the run: the lookahead
	// in force, barrier counts and per-shard window/event/drain
	// counters. BarrierWaitNs is wall-clock — like MetricsBytes it
	// varies run to run, so the determinism tests strip the whole
	// report. Not persisted by the store.
	ShardStats *ShardStats
}

// ShardStats reports how the conservative windowed runtime behaved for
// one run: which lookahead was in force, how many barriers the run paid,
// how many windows the adaptive extension widened, and what each shard
// did between barriers. Surfaced by `irnsim -shard-stats` and the bench
// suite's ReportMetric columns.
type ShardStats struct {
	// Lookahead is the safe-window width in force (the fabric's proven
	// bound, or bare Prop under Scenario.BareLookahead).
	Lookahead sim.Duration
	// Barriers is the number of window barriers the run paid and
	// WideWindows how many of those adaptively extended a shard's window
	// past the uniform lookahead bound.
	Barriers    uint64
	WideWindows uint64
	// Shards holds one entry per shard engine, index-aligned with the
	// partitioning.
	Shards []ShardStat
}

// buildShardStats folds the windowed runtime's counters and the fabric's
// per-shard boundary drain counts into the Result's shard-runtime report.
func buildShardStats(net *fabric.Network, lookahead sim.Duration, w *sim.WindowStats) *ShardStats {
	st := &ShardStats{
		Lookahead:   lookahead,
		Barriers:    w.Barriers,
		WideWindows: w.WideWindows,
		Shards:      make([]ShardStat, len(w.Shards)),
	}
	for i, sh := range w.Shards {
		st.Shards[i] = ShardStat{
			Windows:       sh.Windows,
			Events:        sh.Events,
			BarrierWaitNs: sh.BarrierWaitNs,
			Drained:       net.DrainedBy(i),
		}
	}
	return st
}

// ShardStat is one shard's runtime counters.
type ShardStat struct {
	// Windows is the number of non-empty windows the shard ran and
	// Events how many events those windows executed.
	Windows uint64
	Events  uint64
	// BarrierWaitNs is wall-clock time the shard's goroutine spent
	// parked at barriers waiting for work — load-imbalance made visible.
	// Nondeterministic by nature.
	BarrierWaitNs int64
	// Drained counts cross-shard boundary occurrences (packets and PFC
	// frames) drained into this shard at barriers.
	Drained uint64
}

// senderStats abstracts per-transport counters.
type senderStats interface {
	retransmits() uint64
	timeouts() uint64
}

type irnStats struct{ s *core.Sender }

func (w irnStats) retransmits() uint64 { return w.s.Stats.Retransmits }
func (w irnStats) timeouts() uint64    { return w.s.Stats.Timeouts }

// roceStats wraps only the sender half: RoCE's timeout count lives on
// the receiver, which may be attached by a different shard — the
// launcher tracks receivers in a slice of their own (rcvs) so each slot
// has exactly one writing shard.
type roceStats struct{ s *rocev2.Sender }

func (w roceStats) retransmits() uint64 { return w.s.Stats.Retransmits }
func (w roceStats) timeouts() uint64    { return 0 }

type tcpStats struct{ s *tcpstack.Sender }

func (w tcpStats) retransmits() uint64 { return w.s.Stats.Retransmits }
func (w tcpStats) timeouts() uint64    { return w.s.Stats.Timeouts }

// Worker runs scenarios on one long-lived engine, reusing simulation
// infrastructure across runs. The engine (and its timing-wheel bucket
// arrays) is reset and reused for every run; the fabric — topology,
// routing tables, VOQ matrices, port wiring — and the packet pool are
// reused whenever the next scenario is structurally identical to the
// previous one (same fabricKey) and rebuilt otherwise. Trials of one
// scenario always share a key, so a trial sweep constructs its fat-tree
// exactly once per worker.
//
// A Worker is single-threaded, like the engine it owns; the fleet runner
// gives each of its goroutines a private Worker. Results are bit-identical
// to fresh construction — the golden-fixture and serial≡parallel tests
// hold across the reuse path.
type Worker struct {
	engs     []*sim.Engine // engs[:shards] drive a run; grown on demand
	net      *fabric.Network
	top      topo.Topology
	key      fabricKey
	used     int // shard engines the cached fabric spans
	built    bool
	rebuilds int // fabrics constructed over the worker's lifetime
}

// Rebuilds reports how many times this worker constructed a fabric from
// scratch. The endurance soak asserts it stays at 1 across segments —
// proof the zero-rebuild reuse path carries the whole run.
func (w *Worker) Rebuilds() int { return w.rebuilds }

// NewWorker returns a Worker with a fresh engine and no cached fabric.
func NewWorker() *Worker { return &Worker{engs: []*sim.Engine{sim.NewEngine()}} }

// engines returns the worker's first n engines, creating any missing
// ones. Engines persist across runs like the fabric does: their timing-
// wheel bucket arrays stay warm.
func (w *Worker) engines(n int) []*sim.Engine {
	for len(w.engs) < n {
		w.engs = append(w.engs, sim.NewEngine())
	}
	return w.engs[:n]
}

// fabricKey is the structural identity of a fabric: every input to its
// construction except the seed and the fault model, which Network.Reset
// re-applies per run. Two scenarios with equal keys run on identical
// topologies and configs. (It mirrors fabric.Config field by field rather
// than embedding it because Config's LossInject hook makes the struct
// non-comparable; scenarios never set that hook.)
type fabricKey struct {
	arity         int
	shards        int
	rate          fabric.Rate
	prop          sim.Duration
	bufferBytes   int
	pfc           bool
	pfcHeadroom   int
	pfcHysteresis int
	ecn           fabric.ECNConfig
	mtu           int
	spray         bool
	sharedBuffer  bool
}

// keyOf extracts the structural identity of a scenario's fabric.
func keyOf(arity, shards int, cfg fabric.Config) fabricKey {
	return fabricKey{
		arity:         arity,
		shards:        shards,
		rate:          cfg.Rate,
		prop:          cfg.Prop,
		bufferBytes:   cfg.BufferBytes,
		pfc:           cfg.PFC,
		pfcHeadroom:   cfg.PFCHeadroom,
		pfcHysteresis: cfg.PFCHysteresis,
		ecn:           cfg.ECN,
		mtu:           cfg.MTU,
		spray:         cfg.Spray,
		sharedBuffer:  cfg.SharedBuffer,
	}
}

// Run executes a scenario to completion (all flows finished or grace
// period exhausted) and returns its metrics. Package-level Run constructs
// a throwaway Worker; the fleet runner calls Worker.Run to reuse one.
func Run(s Scenario) Result { return NewWorker().Run(s) }

// Run executes a scenario on this worker, reusing the engine always and
// the fabric when the scenario is structurally identical to the previous
// run's.
func (w *Worker) Run(s Scenario) Result {
	s = s.normalize()

	rate := fabric.Gbps(s.Gbps)
	bdp := fabric.BDPBytes(rate, s.Prop, topo.FatTreeLongestPathHops)
	linkBDP := fabric.BDPBytes(rate, s.Prop, 1)

	// Headroom must absorb everything in flight when X-OFF takes hold:
	// one link RTT of data (the paper's "upstream link's bandwidth-delay
	// product") plus the packet serializing at the pause instant and the
	// packet that may overshoot the threshold check.
	wire := s.MTU + packet.DataHeader + s.ExtraHeader
	cfg := fabric.Config{
		Rate:          rate,
		Prop:          s.Prop,
		BufferBytes:   s.BufferBytes,
		PFC:           s.PFC,
		PFCHeadroom:   linkBDP + 3*wire,
		PFCHysteresis: 2 * wire,
		MTU:           s.MTU,
		Seed:          s.Seed,
		Spray:         s.Spray,
		SharedBuffer:  s.SharedBuffer,
	}
	if cfg.BufferBytes == 0 {
		cfg.BufferBytes = 2 * bdp
	}
	if cfg.PFCHeadroom >= cfg.BufferBytes {
		// Tiny-buffer sweeps: keep a sane threshold at half the buffer.
		cfg.PFCHeadroom = cfg.BufferBytes / 2
	}
	scale := s.Gbps / 40.0
	switch s.CC {
	case CCDCQCN:
		cfg.ECN = fabric.ECNConfig{
			Enabled: true,
			KMin:    int(40_000 * scale),
			KMax:    int(160_000 * scale),
			PMax:    0.2,
		}
	case CCDCTCP:
		k := int(80_000 * scale)
		cfg.ECN = fabric.ECNConfig{Enabled: true, KMin: k, KMax: k + 1, PMax: 1.0}
	}

	// Zero-rebuild path: reset the shard engines unconditionally (fault
	// scheduling below needs clean queues); reset the cached fabric under
	// the new seed and fault model when the structure matches, rebuild it
	// otherwise. The requested shard count is part of the structure: a
	// different partitioning is a different port/channel wiring.
	shards := s.Shards
	key := keyOf(s.Arity, shards, cfg)
	if !w.built || w.key != key {
		w.top = topo.NewFatTree(s.Arity)
	}
	var faults *fault.Model
	if s.Faults.Enabled() {
		m, err := fault.New(s.Faults, len(w.top.Links()), s.Seed)
		if err != nil {
			panic(fmt.Sprintf("exp: scenario %q: %v", s.Name, err))
		}
		faults = m
	}
	var net *fabric.Network
	if w.built && w.key == key {
		for _, e := range w.engs[:w.used] {
			e.Reset()
		}
		net = w.net
		net.Reset(s.Seed, faults)
	} else {
		assign, used := topo.PartitionNodes(w.top, shards)
		engs := w.engines(used)
		for _, e := range engs {
			e.Reset()
		}
		cfg.Faults = faults
		net = fabric.NewPartitioned(engs, assign, w.top, cfg)
		w.net, w.key, w.used, w.built = net, key, used, true
		w.rebuilds++
	}
	engines := w.engs[:w.used]
	top := w.top
	bdpCap := int(float64(net.BDPCap()) * s.BDPCapScale)
	if bdpCap < 1 {
		bdpCap = 1
	}

	if s.KV.Requests > 0 {
		return w.runKV(s, net, engines, top, bdpCap)
	}

	// Build the flow list.
	var specs []workload.Spec
	if s.IncastM > 0 {
		specs = workload.Incast(top.Hosts(), s.IncastM, s.IncastBytes, s.Seed)
	}
	incastFlows := len(specs)
	if s.NumFlows > 0 {
		var dist workload.SizeDist
		switch s.Workload {
		case WorkloadUniform:
			dist = workload.NewUniform()
		case WorkloadWebSearch:
			dist = workload.NewWebSearch()
		case WorkloadHadoop:
			dist = workload.NewHadoop()
		default:
			dist = workload.NewHeavyTailed()
		}
		specs = append(specs, workload.Generate(workload.PoissonConfig{
			Hosts:         top.Hosts(),
			Load:          s.Load,
			RatePsPerByte: int64(rate),
			MTU:           s.MTU,
			HeaderBytes:   packet.DataHeader + s.ExtraHeader,
			NumFlows:      s.NumFlows,
			Dist:          dist,
			Seed:          s.Seed,
		})...)
	}

	l := &launcher{
		s:           s,
		net:         net,
		bdpCap:      bdpCap,
		minRTT:      sim.Duration(2*top.LongestPathHops()) * (s.Prop + rate.Serialize(s.MTU+packet.DataHeader)),
		specs:       specs,
		flows:       make([]*transport.Flow, len(specs)),
		stats:       make([]senderStats, len(specs)),
		rcvs:        make([]*rocev2.Receiver, len(specs)),
		cols:        make([]*metrics.Collector, net.Shards()),
		shard:       make([]launcherShard, net.Shards()),
		incastFlows: incastFlows,
	}
	for i := range l.cols {
		if s.ExactMetrics {
			l.cols[i] = metrics.NewExact()
		} else {
			l.cols[i] = &metrics.Collector{}
		}
	}

	// Each flow arrives as two typed events: the sender attaches on the
	// shard owning the source host, the receiver on the shard owning the
	// destination. Both are ranked under the touched node's clock at
	// setup time, so arrival order is a constant of the scenario, not of
	// the partitioning. (The receiver is in place well before the first
	// data packet: data needs at least one propagation delay — the
	// lookahead — to reach the destination.)
	var lastArrival sim.Time
	for i, spec := range specs {
		l.flows[i] = &transport.Flow{
			ID:    packet.FlowID(i + 1),
			Src:   spec.Src,
			Dst:   spec.Dst,
			Size:  spec.Size,
			Pkts:  transport.NumPackets(spec.Size, s.MTU),
			Start: spec.Start,
		}
		if spec.Start > lastArrival {
			lastArrival = spec.Start
		}
		net.EngineOf(spec.Src).ScheduleEventFrom(net.Clock(spec.Src), spec.Start, l, launchSrc, uint64(i))
		net.EngineOf(spec.Dst).ScheduleEventFrom(net.Clock(spec.Dst), spec.Start, l, launchDst, uint64(i))
	}

	// Conservative windowed execution, serial included: the run always
	// advances through lookahead-bounded safe windows with completion
	// checked at barriers. The Done horizon clamps the run to "last
	// completion plus the canonical window slack", so the set of executed
	// events — and with it every counter below — is identical for every
	// shard count AND every lookahead width up to the slack.
	lookahead := net.Lookahead()
	if s.BareLookahead {
		lookahead = s.Prop
	}
	deadline := lastArrival.Add(s.Grace)
	var wstats sim.WindowStats
	sim.RunWindows(sim.WindowConfig{
		Engines:      engines,
		Lookahead:    lookahead,
		Deadline:     deadline,
		Drain:        net.DrainAll,
		Done:         l.allDone,
		Horizon:      l.horizon,
		Widen:        l.widen,
		FixedWindows: s.FixedWindows,
		Stats:        &wstats,
	})

	res := Result{
		Name:        s.Name,
		Scenario:    s,
		Net:         net.Stats(),
		Census:      net.Census(),
		InFlight:    net.InFlightPackets(),
		PoolLive:    net.PoolLive(),
		CtrlBacklog: net.CtrlBacklog(),
		ShardsUsed:  net.Shards(),
	}
	for _, e := range engines {
		res.Events += e.Executed()
		if t := e.Now(); t > res.SimTime {
			res.SimTime = t
		}
	}
	res.ShardStats = buildShardStats(net, lookahead, &wstats)
	var incastDone sim.Time
	for i := range l.shard {
		if t := l.shard[i].incastDone; t > incastDone {
			incastDone = t
		}
	}
	res.RCT = sim.Duration(incastDone)
	// Completions streamed into per-shard collectors during the run
	// (each written only by the shard owning the flow's destination);
	// merge them in shard order. Every merged aggregate is exact-integer
	// state, so the fold reproduces the serial run bit for bit.
	agg := &metrics.Collector{}
	if s.ExactMetrics {
		agg = metrics.NewExact()
	}
	for _, c := range l.cols {
		res.MetricsBytes += c.MemFootprint()
		agg.Merge(c)
	}
	for i, fl := range l.flows {
		if !fl.Finished {
			agg.AddIncomplete()
		}
		if st := l.stats[i]; st != nil {
			res.Retransmits += st.retransmits()
			res.Timeouts += st.timeouts()
		}
		if rcv := l.rcvs[i]; rcv != nil {
			res.Timeouts += rcv.TimeoutNacks
		}
	}
	res.MetricsBytes += agg.MemFootprint()
	res.Summary = agg.Summarize()
	res.SinglePktCDF = agg.SinglePacketTail([]float64{90, 95, 99, 99.9})
	res.FCTSketch = agg.FCTHistogram()
	if s.ExactMetrics {
		res.ExactCollector = agg
	}
	return res
}

// launcher event kinds: attach flow arg's sender (on the source host's
// shard) or its receiver (on the destination host's shard).
const (
	launchSrc uint8 = iota
	launchDst
)

// launcherShard is one shard's completion bookkeeping, written only by
// that shard's goroutine during windows and read by the coordinator at
// barriers. Padded so two shards' counters never share a cache line.
type launcherShard struct {
	done       int      // flows whose destination lives on this shard
	incastDone sim.Time // latest incast completion seen on this shard
	lastDone   sim.Time // latest completion of any flow on this shard
	// stopTarget, when positive, is the done count at which this shard
	// self-stops its engine: the widen grant's promise that the shard
	// halts no later than the run's Done condition turning true. Written
	// by the coordinator at barriers (widen), read by the shard during
	// windows (FlowDone) — barrier ordering covers both.
	stopTarget int
	_          [4]uint64
}

// launcher wires each flow's transports at the flow's arrival time and
// collects completions. It is a sim.Handler (arg = flow index) and the
// flows' transport.Completer, so launching and completing a thousand
// flows schedules no closures; per-flow state lives in index-addressed
// slices whose slots are each written by exactly one shard.
type launcher struct {
	s      Scenario
	net    *fabric.Network
	bdpCap int
	minRTT sim.Duration

	specs []workload.Spec
	flows []*transport.Flow
	stats []senderStats      // [i] written by the shard of flow i's source
	rcvs  []*rocev2.Receiver // [i] written by the shard of flow i's destination
	// cols[k] is shard k's streaming collector: each completion folds
	// into the collector of the shard owning the flow's destination as it
	// happens, so a run holds O(shards) metric state instead of a
	// per-flow record slice. The coordinator merges them in shard order
	// after the run; every merged aggregate is integer-derived, so the
	// fold is bit-identical for any shard count.
	cols        []*metrics.Collector
	shard       []launcherShard
	incastFlows int
}

// HandleEvent implements sim.Handler: flow arg arrives.
func (l *launcher) HandleEvent(kind uint8, arg uint64) {
	if kind == launchSrc {
		l.startSender(int(arg))
	} else {
		l.startReceiver(int(arg))
	}
}

// allDone reports whether every flow completed — the windowed run's stop
// condition, polled at barriers where all shards are quiescent.
func (l *launcher) allDone() bool {
	done := 0
	for i := range l.shard {
		done += l.shard[i].done
	}
	return done == len(l.specs)
}

// FlowDone implements transport.Completer: flow fl's last packet arrived.
// Runs on the shard owning the flow's destination host; every slot it
// writes is owned by that shard.
func (l *launcher) FlowDone(fl *transport.Flow, now sim.Time) {
	i := int(fl.ID) - 1
	spec := l.specs[i]
	k := l.net.ShardOf(fl.Dst)
	l.cols[k].Add(metrics.FlowRecord{
		Size:         spec.Size,
		Pkts:         fl.Pkts,
		FCT:          now.Sub(spec.Start),
		Ideal:        l.net.IdealFCT(spec.Src, spec.Dst, spec.Size),
		SinglePacket: fl.Pkts == 1,
	})
	sh := &l.shard[k]
	if i < l.incastFlows && now > sh.incastDone {
		sh.incastDone = now
	}
	if now > sh.lastDone {
		sh.lastDone = now
	}
	sh.done++
	if sh.stopTarget > 0 && sh.done >= sh.stopTarget {
		// An adaptively widened window is in force and this shard just
		// hit the flow count that makes the run's Done condition true:
		// stop the engine so the barrier can evaluate it. The engine may
		// resume in later windows if the snapshot was stale.
		l.net.EngineOf(fl.Dst).Stop()
	}
}

// widen is the sim.WindowConfig.Widen hook: consulted at a barrier when
// shard is the unique minimum-holding shard and the run could extend its
// window past the uniform lookahead bound. The grant's obligation is a
// self-stop firing no later than allDone turning true, so the extension
// cannot run past the completion the Done horizon would clamp to: allDone
// is a pure flow count, so the hook arms shard's stopTarget at "every
// flow not yet done elsewhere" — exactly the count at which this shard's
// completions make allDone true. Stale snapshots are safe: if other
// shards complete flows during the widened window, the global last
// completion only moves later, and the horizon still covers the window.
func (l *launcher) widen(shard int) bool {
	others := 0
	for i := range l.shard {
		if i != shard {
			others += l.shard[i].done
			l.shard[i].stopTarget = 0
		}
	}
	l.shard[shard].stopTarget = len(l.specs) - others
	return true
}

// horizon is the sim.WindowConfig.Horizon hook: once every flow has
// completed, the run is clamped to the last completion time plus the
// canonical window slack — the latest instant any window containing that
// completion could reach, for any shard count and any lookahead at or
// below the slack. Clamping to a canonical instant (rather than stopping
// at whatever barrier noticed completion) is what keeps Events, SimTime
// and the trailing census identical across partitionings and lookahead
// widths. Called at a barrier, so reading the shard slots is ordered.
func (l *launcher) horizon() sim.Time {
	var last sim.Time
	for i := range l.shard {
		if t := l.shard[i].lastDone; t > last {
			last = t
		}
	}
	return last.Add(l.net.WindowSlack())
}

// startSender attaches flow i's sender (and its congestion controller) to
// the source NIC. Runs on the source host's shard.
func (l *launcher) startSender(i int) {
	s := l.s
	spec := l.specs[i]
	fl := l.flows[i]
	src := l.net.NIC(spec.Src)

	ctrl := buildCC(src, s, l.bdpCap, l.minRTT)
	switch s.Transport {
	case TransportIRN:
		snd := core.NewSender(src, fl, l.irnParams(), ctrl)
		src.AttachSource(snd)
		l.stats[i] = irnStats{snd}
	case TransportRoCE:
		snd := rocev2.NewSender(src, fl, l.roceParams(), ctrl)
		src.AttachSource(snd)
		l.stats[i] = roceStats{s: snd}
	case TransportTCP:
		snd := tcpstack.NewSender(src, fl, tcpstack.DefaultParams(s.MTU))
		src.AttachSource(snd)
		l.stats[i] = tcpStats{snd}
	}
}

// startReceiver attaches flow i's receiver to the destination NIC. Runs
// on the destination host's shard — which may differ from the sender's;
// splitting the attachment keeps each shard touching only its own nodes.
func (l *launcher) startReceiver(i int) {
	s := l.s
	fl := l.flows[i]
	dst := l.net.NIC(fl.Dst)

	switch s.Transport {
	case TransportIRN:
		dst.AttachSink(fl.ID, core.NewReceiver(dst, fl, l.irnParams(), l))
	case TransportRoCE:
		rcv := rocev2.NewReceiver(dst, fl, l.roceParams(), l)
		dst.AttachSink(fl.ID, rcv)
		l.rcvs[i] = rcv
	case TransportTCP:
		dst.AttachSink(fl.ID, tcpstack.NewReceiver(dst, fl, tcpstack.DefaultParams(s.MTU), l))
	}
}

// irnParams derives the IRN transport parameters from the scenario.
func (l *launcher) irnParams() core.Params {
	s := l.s
	p := core.Params{
		MTU:              s.MTU,
		BDPCap:           l.bdpCap,
		Recovery:         s.Recovery,
		RTOLow:           s.RTOLow,
		RTOHigh:          s.RTOHigh,
		RTOLowThreshold:  s.RTOLowN,
		DynamicRTO:       s.DynamicRTO,
		NackThreshold:    s.NackThreshold,
		BackoffOnLoss:    s.BackoffOnLoss || s.CC == CCAIMD || s.CC == CCDCTCP,
		RetxFetchDelay:   s.RetxFetchDelay,
		ExtraHeaderBytes: s.ExtraHeader,
		ECT:              s.CC == CCDCQCN || s.CC == CCDCTCP,
	}
	if s.NoBDPFC {
		p.BDPCap = 0
	}
	return p
}

// roceParams derives the RoCE transport parameters from the scenario.
func (l *launcher) roceParams() rocev2.Params {
	s := l.s
	return rocev2.Params{
		MTU:     s.MTU,
		RTOHigh: s.RTOHigh,
		// The paper disables RoCE timeouts when PFC guarantees
		// losslessness (§4.1); injected faults break that guarantee,
		// so fault scenarios keep timeouts even under PFC.
		DisableTimeout: s.PFC && !s.Faults.Enabled() && !s.RoCETimeouts,
		PerPacketAck:   s.CC == CCTimely,
		ECT:            s.CC == CCDCQCN,
	}
}

// buildCC constructs the per-flow congestion controller on the sender's
// endpoint (engine and rank clock of the source host's shard).
func buildCC(ep transport.Endpoint, s Scenario, bdpCap int, minRTT sim.Duration) transport.Controller {
	switch s.CC {
	case CCTimely:
		return cc.NewTimely(cc.DefaultTimelyConfig(s.Gbps, minRTT))
	case CCDCQCN:
		return cc.NewDCQCN(ep.Engine(), ep.Clock(), cc.DefaultDCQCNConfig(s.Gbps))
	case CCAIMD:
		return cc.NewAIMD(bdpCap)
	case CCDCTCP:
		return cc.NewDCTCP(bdpCap)
	default:
		return nil
	}
}

// String renders a result line in the paper's units.
func (r Result) String() string {
	return fmt.Sprintf("%-34s %s drops=%d pauses=%d retx=%d", r.Name, r.Summary, r.Net.Drops, r.Net.PauseFrames, r.Retransmits)
}
