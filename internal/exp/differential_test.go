package exp

import (
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/metrics"
)

// diffScale keeps the sketch-vs-exact sweep fast: every fig* preset runs
// once per scenario with a small flow population — enough completions
// for the quantile comparison to be meaningful, small enough that the
// whole sweep stays in seconds.
func diffScale() Scale {
	return Scale{Flows: 24, IncastBytes: 200_000, IncastReps: 1}
}

// TestSketchMatchesExact is the differential harness: every fig* preset
// runs with dual-mode collection (streaming sketches and the historical
// record-retaining reference side by side) and every streaming statistic
// must land within its documented tolerance of the exact computation —
// means to float tolerance, quantiles within metrics.QuantileEpsilon.
func TestSketchMatchesExact(t *testing.T) {
	relErr := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / math.Abs(want)
	}
	ran := 0
	for _, e := range All(diffScale()) {
		if !strings.HasPrefix(e.ID, "fig") {
			continue
		}
		for _, s := range e.Scenarios {
			s := s
			s.ExactMetrics = true
			t.Run(e.ID+"/"+s.Name, func(t *testing.T) {
				ran++
				res := Run(s)
				ex := res.ExactCollector
				if ex == nil || !ex.Exact() {
					t.Fatal("ExactMetrics run must carry the exact collector")
				}
				if ex.Count() != res.Summary.Flows {
					t.Fatalf("collector count %d != summary flows %d", ex.Count(), res.Summary.Flows)
				}
				if res.Summary.Flows == 0 {
					return
				}
				// Means: the streaming integer accumulators against the
				// float-sum / sort-free references.
				if got, want := ex.AvgFCT(), ex.ExactAvgFCT(); got != want {
					t.Errorf("avg fct: streaming %v != exact %v", got, want)
				}
				if re := relErr(ex.AvgSlowdown(), ex.ExactAvgSlowdown()); re > 1e-6 {
					t.Errorf("avg slowdown: streaming %v vs exact %v (rel err %v)",
						ex.AvgSlowdown(), ex.ExactAvgSlowdown(), re)
				}
				// Quantiles: within the documented ε at every headline
				// percentile.
				for _, p := range []float64{50, 90, 99, 99.9} {
					got := float64(ex.PercentileFCT(p))
					want := float64(ex.ExactPercentileFCT(p))
					if relErr(got, want) > metrics.QuantileEpsilon {
						t.Errorf("p%v fct: streaming %v vs exact %v (rel err %v)",
							p, got, want, relErr(got, want))
					}
				}
				// The Figure 8 single-packet tail series, point for point.
				sp := ex.SinglePacketTail([]float64{90, 95, 99, 99.9})
				ref := ex.ExactSinglePacketTail([]float64{90, 95, 99, 99.9})
				if len(sp) != len(ref) {
					t.Fatalf("single-packet series length %d vs %d", len(sp), len(ref))
				}
				for i := range sp {
					if relErr(float64(sp[i].Latency), float64(ref[i].Latency)) > metrics.QuantileEpsilon {
						t.Errorf("single-packet p%v: streaming %v vs exact %v",
							sp[i].Percentile, sp[i].Latency, ref[i].Latency)
					}
				}
				// The Result surface is wired from the same collector.
				if res.Summary != ex.Summarize() {
					t.Errorf("result summary %+v != collector summary %+v", res.Summary, ex.Summarize())
				}
				if res.FCTSketch.N() != uint64(res.Summary.Flows) {
					t.Errorf("sketch n %d != flows %d", res.FCTSketch.N(), res.Summary.Flows)
				}
			})
		}
	}
	if ran < 14 {
		t.Fatalf("differential sweep covered only %d scenarios", ran)
	}
}

// TestFigDCPreset pins the datacenter preset's shape: k=16 (1024 hosts),
// the empirical Hadoop workload, and the flow multiplier that turns the
// CLI default scale into a 10⁵-flow run without slowing test-scale
// sweeps.
func TestFigDCPreset(t *testing.T) {
	e, ok := ByID("figdc", DefaultScale())
	if !ok {
		t.Fatal("figdc not registered")
	}
	if len(e.Scenarios) != 2 {
		t.Fatalf("want RoCE+PFC vs IRN pair, got %d scenarios", len(e.Scenarios))
	}
	for _, s := range e.Scenarios {
		if s.Arity != 16 {
			t.Errorf("%s: arity %d, want 16", s.Name, s.Arity)
		}
		if s.Workload != WorkloadHadoop {
			t.Errorf("%s: workload %d, want hadoop", s.Name, s.Workload)
		}
		if s.NumFlows != 100_000 {
			t.Errorf("%s: %d flows at default scale, want 100000", s.Name, s.NumFlows)
		}
		if s.Load != 0.6 {
			t.Errorf("%s: load %v, want 0.6", s.Name, s.Load)
		}
	}
	// Reduced scales run their raw flow count (floored), so the preset
	// can ride every fig* sweep.
	small, _ := ByID("figdc", Scale{Flows: 40, IncastBytes: 1, IncastReps: 1})
	if got := small.Scenarios[0].NumFlows; got != 64 {
		t.Errorf("small-scale flows = %d, want floor 64", got)
	}
}

// TestFigDCCollectorMemoryBounded is the memory-regression guard: the
// run's collector footprint must be a constant in the flow count —
// O(shards) sketches, no per-flow retention. Doubling the flows must not
// move MetricsBytes at all, and the absolute footprint must stay under a
// hard byte budget.
func TestFigDCCollectorMemoryBounded(t *testing.T) {
	run := func(flows int) Result {
		e, _ := ByID("figdc", Scale{Flows: flows, IncastBytes: 1, IncastReps: 1})
		return Run(e.Scenarios[1]) // IRN side
	}
	a := run(100)
	b := run(200)
	if a.Summary.Flows != 100 || b.Summary.Flows != 200 {
		t.Fatalf("runs completed %d and %d flows", a.Summary.Flows, b.Summary.Flows)
	}
	if a.MetricsBytes != b.MetricsBytes {
		t.Errorf("collector footprint moved with flow count: %d -> %d bytes", a.MetricsBytes, b.MetricsBytes)
	}
	const budget = 200 << 10
	if a.MetricsBytes <= 0 || a.MetricsBytes > budget {
		t.Errorf("MetricsBytes = %d, want (0, %d]", a.MetricsBytes, budget)
	}
	// Exact mode is the deliberate exception: it retains records.
	e, _ := ByID("figdc", Scale{Flows: 200, IncastBytes: 1, IncastReps: 1})
	s := e.Scenarios[1]
	s.ExactMetrics = true
	if ex := Run(s); ex.MetricsBytes <= b.MetricsBytes {
		t.Errorf("exact mode footprint %d should exceed streaming %d", ex.MetricsBytes, b.MetricsBytes)
	}
}

// TestFigDCFullScale runs the headline 10⁵-flow datacenter scenario end
// to end — minutes of wall clock, so it is opt-in via IRNSIM_FIGDC_FULL=1
// (the CI smoke job runs a reduced-flow variant instead).
func TestFigDCFullScale(t *testing.T) {
	if os.Getenv("IRNSIM_FIGDC_FULL") == "" {
		t.Skip("set IRNSIM_FIGDC_FULL=1 to run the full 100k-flow scenario")
	}
	e, _ := ByID("figdc", DefaultScale())
	s := e.Scenarios[1] // IRN side
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res := Run(s)
	runtime.GC()
	runtime.ReadMemStats(&after)
	t.Logf("figdc full scale: %s events=%d heap_delta=%dKB metrics_bytes=%d",
		res.Summary, res.Events, (int64(after.HeapAlloc)-int64(before.HeapAlloc))>>10, res.MetricsBytes)
	if res.Summary.Flows+res.Summary.Incomplete != 100_000 {
		t.Fatalf("accounted flows = %d, want 100000", res.Summary.Flows+res.Summary.Incomplete)
	}
	if res.MetricsBytes > 200<<10 {
		t.Errorf("collector footprint %d bytes at 100k flows, budget 200KB", res.MetricsBytes)
	}
}
