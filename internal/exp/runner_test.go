package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// fleetExperiment is a small multi-scenario sweep for runner tests: big
// enough to exercise drops and retransmissions, small enough to keep the
// suite fast.
func fleetExperiment() Experiment {
	mk := func(name string, mut func(*Scenario)) Scenario {
		s := Scenario{NumFlows: 150, Seed: 11}
		s.Name = name
		if mut != nil {
			mut(&s)
		}
		return s
	}
	return Experiment{
		ID:          "fleet-test",
		Description: "runner determinism sweep",
		Scenarios: []Scenario{
			mk("IRN", nil),
			mk("IRN+PFC", func(s *Scenario) { s.PFC = true }),
			mk("RoCE+PFC", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
		},
	}
}

func TestFleetSerialParallelIdentical(t *testing.T) {
	// The headline determinism contract: the same base seed produces
	// bit-identical Results (and therefore aggregates) whether the fleet
	// runs on one worker or eight.
	e := fleetExperiment()
	serial := RunFleet(e, FleetConfig{Parallel: 1, Trials: 3, BaseSeed: 7})
	wide := RunFleet(e, FleetConfig{Parallel: 8, Trials: 3, BaseSeed: 7})
	if !reflect.DeepEqual(serial.Trials, wide.Trials) {
		t.Fatal("serial and parallel fleets diverged")
	}
	if !reflect.DeepEqual(serial.Aggregates(), wide.Aggregates()) {
		t.Fatal("serial and parallel aggregates diverged")
	}
}

// faultExperiment exercises every fault axis at once: random loss,
// corruption, flapping links, and a degraded-bandwidth phase.
func faultExperiment() Experiment {
	t := topo.NewFatTree(6)
	flaps := fault.PeriodicFlaps(t, 6, sim.Time(50*sim.Microsecond), 400*sim.Microsecond, 150*sim.Microsecond, 3, 21)
	degrades := fault.DegradeLinks(t, 4, sim.Time(100*sim.Microsecond), 0, 0.25, 21)
	mk := func(name string, mut func(*Scenario)) Scenario {
		s := Scenario{NumFlows: 150, Seed: 11}
		s.Faults = fault.Spec{
			LossRate:    0.002,
			CorruptRate: 0.0005,
			Flaps:       flaps,
			Degrades:    degrades,
		}
		s.Name = name
		if mut != nil {
			mut(&s)
		}
		return s
	}
	return Experiment{
		ID:          "fault-fleet-test",
		Description: "runner determinism sweep under fault injection",
		Scenarios: []Scenario{
			mk("IRN faults", nil),
			mk("IRN+PFC faults", func(s *Scenario) { s.PFC = true }),
			mk("RoCE+PFC faults", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
		},
	}
}

func TestFleetSerialParallelIdenticalWithFaults(t *testing.T) {
	// The determinism contract must survive fault injection: fault RNG
	// streams derive from (scenario seed, link direction) alone, so
	// sharding the fleet across workers cannot perturb them.
	e := faultExperiment()
	serial := RunFleet(e, FleetConfig{Parallel: 1, Trials: 2, BaseSeed: 7})
	wide := RunFleet(e, FleetConfig{Parallel: 8, Trials: 2, BaseSeed: 7})
	if !reflect.DeepEqual(serial.Trials, wide.Trials) {
		t.Fatal("serial and parallel fleets diverged under fault injection")
	}
	// The faults must actually have fired, or the test proves nothing.
	for i, trials := range serial.Trials {
		for tr, r := range trials {
			if r.Net.FaultDrops == 0 || r.Net.Corrupted == 0 {
				t.Errorf("scenario %d trial %d: faultdrops=%d corrupted=%d, want both > 0",
					i, tr, r.Net.FaultDrops, r.Net.Corrupted)
			}
		}
	}
}

func TestFleetMatchesSerialRunExperiment(t *testing.T) {
	// With one trial and no base seed the fleet must reproduce a plain
	// serial loop over Run exactly (preset seeds untouched).
	e := fleetExperiment()
	var want []Result
	for _, s := range e.Scenarios {
		want = append(want, Run(s))
	}
	got := RunExperiment(e)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RunExperiment diverged from a serial Run loop")
	}
}

func TestFleetTrialSeedsDistinct(t *testing.T) {
	e := fleetExperiment()
	fr := RunFleet(e, FleetConfig{Parallel: 4, Trials: 3, BaseSeed: 5})
	seen := map[uint64]bool{}
	for i, trials := range fr.Trials {
		if len(trials) != 3 {
			t.Fatalf("scenario %d: %d trials, want 3", i, len(trials))
		}
		for _, r := range trials {
			if seen[r.Scenario.Seed] {
				t.Errorf("duplicate derived seed %d", r.Scenario.Seed)
			}
			seen[r.Scenario.Seed] = true
			if r.Summary.Flows == 0 {
				t.Errorf("scenario %q completed no flows", r.Name)
			}
		}
	}
	// Different trials must actually perturb the workload.
	a, b := fr.Trials[0][0], fr.Trials[0][1]
	if a.AvgFCT == b.AvgFCT && a.Events == b.Events {
		t.Error("distinct trial seeds produced identical runs")
	}
}

func TestFleetFirstPreservesScenarioOrder(t *testing.T) {
	e := fleetExperiment()
	first := RunFleet(e, FleetConfig{Parallel: 8}).First()
	if len(first) != len(e.Scenarios) {
		t.Fatalf("First() = %d results, want %d", len(first), len(e.Scenarios))
	}
	for i, r := range first {
		if r.Name != e.Scenarios[i].Name {
			t.Errorf("result %d = %q, want %q", i, r.Name, e.Scenarios[i].Name)
		}
	}
}

func TestNewStat(t *testing.T) {
	st := NewStat([]float64{2, 4, 6})
	if st.N != 3 || st.Mean != 4 {
		t.Errorf("mean = %v n = %d, want 4, 3", st.Mean, st.N)
	}
	if math.Abs(st.Stddev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", st.Stddev)
	}
	wantCI := 1.96 * 2 / math.Sqrt(3)
	if math.Abs(st.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", st.CI95, wantCI)
	}
	if one := NewStat([]float64{5}); one.Mean != 5 || one.Stddev != 0 || one.CI95 != 0 {
		t.Errorf("single-sample stat = %+v", one)
	}
	if zero := NewStat(nil); zero.N != 0 || zero.Mean != 0 {
		t.Errorf("empty stat = %+v", zero)
	}
}

func TestRenderAggregates(t *testing.T) {
	e := Experiment{ID: "agg", Description: "d"}
	aggs := []Aggregate{{
		Name:        "IRN",
		Trials:      3,
		AvgSlowdown: NewStat([]float64{1, 2, 3}),
		AvgFCTms:    NewStat([]float64{0.5, 0.6, 0.7}),
		P99FCTms:    NewStat([]float64{5, 6, 7}),
		Drops:       NewStat([]float64{10, 20, 30}),
	}}
	out := RenderAggregates(e, aggs)
	for _, want := range []string{"=== agg", "3 trials", "avg_slowdown", "IRN", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate render missing %q:\n%s", want, out)
		}
	}

	// Incast experiments lead with RCT, their headline metric.
	aggs[0].RCTms = NewStat([]float64{3.1, 3.2, 3.3})
	incast := RenderAggregates(Experiment{ID: "inc", Description: "d", Kind: ReportIncast}, aggs)
	if !strings.Contains(incast, "rct_ms") || strings.Contains(incast, "avg_fct_ms") {
		t.Errorf("incast aggregate render wrong columns:\n%s", incast)
	}
}
