package exp

// The kv scenario path: instead of a flow workload, the run deploys the
// replicated key-value service (internal/kv) over the fabric and drives
// open-loop client load while the scenario's fault schedule executes.
// The windowed-execution contract is the same as the flow path: issue
// events are scheduled at setup under the owning hosts' clocks, the Done
// horizon clamps the run to "last resolution plus window slack", and all
// per-client state merges in client-index order — so kv runs are
// bit-identical across shard counts and lookahead widths like every
// other scenario, and figkv joins the preset-wide determinism sweeps.

import (
	"fmt"
	"strings"

	"github.com/irnsim/irn/internal/fabric"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/kv"
	"github.com/irnsim/irn/internal/metrics"
	"github.com/irnsim/irn/internal/packet"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
	"github.com/irnsim/irn/internal/verbs"
)

// runKV executes the replicated-KV workload on an already-built fabric.
// Called from Worker.Run once the net/engines/faults are in place.
func (w *Worker) runKV(s Scenario, net *fabric.Network, engines []*sim.Engine, top topo.Topology, bdpCap int) Result {
	o := s.KV // normalized by Scenario.normalize
	hosts := make([]packet.NodeID, top.Hosts())
	for i := range hosts {
		hosts[i] = packet.NodeID(i)
	}
	hostsPerPod := (s.Arity / 2) * (s.Arity / 2)
	pl := kv.Place(hosts, hostsPerPod, o.Followers, o.Clients)

	qcfg := verbs.Config{
		MTU:      s.MTU,
		BDPCap:   bdpCap,
		RTOLow:   s.RTOLow,
		RTOHigh:  s.RTOHigh,
		RTOLowN:  s.RTOLowN,
		RNRDelay: 20 * sim.Microsecond,
		// The RoCE baseline runs go-back-N recovery with the classic
		// single conservative timeout; IRN keeps the two-tier RTO (§3).
		GoBackN: s.Transport == TransportRoCE,
	}
	if qcfg.GoBackN {
		qcfg.RTOLow = s.RTOHigh
	}

	svc := kv.New(net, pl, qcfg, o, s.Seed)
	lastIssue := svc.Start()

	lookahead := net.Lookahead()
	if s.BareLookahead {
		lookahead = s.Prop
	}
	var wstats sim.WindowStats
	sim.RunWindows(sim.WindowConfig{
		Engines:   engines,
		Lookahead: lookahead,
		Deadline:  lastIssue.Add(s.Grace),
		Drain:     net.DrainAll,
		Done:      svc.Done,
		Horizon: func() sim.Time {
			return svc.LastResolve().Add(net.WindowSlack())
		},
		Widen:        svc.Widen,
		FixedWindows: s.FixedWindows,
		Stats:        &wstats,
	})

	res := Result{
		Name:        s.Name,
		Scenario:    s,
		Net:         net.Stats(),
		Census:      net.Census(),
		InFlight:    net.InFlightPackets(),
		PoolLive:    net.PoolLive(),
		CtrlBacklog: net.CtrlBacklog(),
		ShardsUsed:  net.Shards(),
	}
	for _, e := range engines {
		res.Events += e.Executed()
		if t := e.Now(); t > res.SimTime {
			res.SimTime = t
		}
	}
	res.ShardStats = buildShardStats(net, lookahead, &wstats)
	// The FCT collector surface stays wired (empty — no flows ran) so the
	// differential and store paths treat kv results uniformly.
	agg := &metrics.Collector{}
	if s.ExactMetrics {
		agg = metrics.NewExact()
	}
	res.MetricsBytes = agg.MemFootprint()
	res.Summary = agg.Summarize()
	res.SinglePktCDF = agg.SinglePacketTail([]float64{90, 95, 99, 99.9})
	res.FCTSketch = agg.FCTHistogram()
	if s.ExactMetrics {
		res.ExactCollector = agg
	}
	retx, tos, _, _ := svc.TransportStats()
	res.Retransmits = retx
	res.Timeouts = tos
	res.KV = svc.Report()
	return res
}

// kvChaosSeed fixes the chaos-suite link sampling across the FigureKV
// pairs so both transports see the same failure sequence.
const kvChaosSeed = 9001

// kvPhases converts a chaos schedule's phase windows into the kv
// service's availability buckets.
func kvPhases(sched *fault.Schedule) []kv.Phase {
	ws := sched.Windows()
	out := make([]kv.Phase, len(ws))
	for i, w := range ws {
		out[i] = kv.Phase{Name: w.Name, From: w.From, To: w.To}
	}
	return out
}

// FigureKV is the replicated-KV availability experiment: a leader, two
// followers and six clients run the RPC+replication service over the
// fault fabric while chaos hits the leader's pod, IRN against RoCE+PFC
// go-back-N. Three failure regimes, covering both RPC wire variants:
//
//   - a flap storm on pod-0 (leader) uplinks, send/recv RPC — the
//     headline availability/commit-latency comparison;
//   - the rolling-drain suite across pods, write-with-imm RPC;
//   - a sustained pod-0 uplink blackout long enough to exhaust client
//     retry budgets and the leader's replication quorum — the graceful-
//     degradation point (read-only service, give-ups).
//
// Requests scale with the experiment Scale so the preset rides the fig*
// determinism/differential sweeps at test scales.
func FigureKV(sc Scale) Experiment {
	const kvArity = 6
	t := topo.NewFatTree(kvArity)
	requests := sc.Flows / 10
	if requests < 24 {
		requests = 24
	}
	if requests > 400 {
		requests = 400
	}
	// The open-loop issue span at 6 clients and the default 50 µs mean
	// gap, used to size the chaos suite's cycle count.
	span := sim.Duration(requests/6) * 50 * sim.Microsecond
	cycles := int(span / (96 * sim.Microsecond))
	if cycles < 2 {
		cycles = 2
	}
	if cycles > 24 {
		cycles = 24
	}

	// Flap storm pinned to the leader's uplinks: 48 µs storm/recover
	// phases (every subdivision a multiple of the 2 µs lookahead, like
	// figchaos), three 6 µs blinks per storm on three sampled uplinks.
	storm := fault.NewSchedule("kv-flap-leader").At(sim.Time(100 * sim.Microsecond))
	for c := 0; c < cycles; c++ {
		storm.Phase(fmt.Sprintf("storm%d", c), 48*sim.Microsecond,
			fault.Blink(fault.Sample(fault.Uplinks(0), 3, kvChaosSeed+uint64(c)), 3, 6*sim.Microsecond))
		storm.Quiet(fmt.Sprintf("recover%d", c), 48*sim.Microsecond)
	}

	drainSuite, ok := fault.SuiteByName("rolling-drain")
	if !ok {
		panic("exp: chaos suite \"rolling-drain\" missing")
	}
	drain := drainSuite.Build(t, sim.Time(100*sim.Microsecond), 48*sim.Microsecond, cycles, kvChaosSeed)

	// Blackout: pod-0 uplinks hard down for 1.2 ms from t=60 µs — longer
	// than any client's full retry budget and far past the leader's
	// quorum timeout, so cross-pod clients exhaust their retries and the
	// leader degrades to read-only for same-pod writers.
	blackout := fault.NewSchedule("kv-blackout").At(sim.Time(60*sim.Microsecond)).
		Phase("blackout", 1200*sim.Microsecond, fault.Down(fault.Uplinks(0))).
		Quiet("recover", 400*sim.Microsecond)

	mk := func(name string, sched *fault.Schedule, mode kv.Mode, mut func(*Scenario)) Scenario {
		return named(Scenario{
			Arity: kvArity,
			KV: kv.Options{
				Requests: requests,
				Mode:     mode,
				Phases:   kvPhases(sched),
			},
			Faults: sched.MustCompile(t),
			// Identical transport config across each pair (see FigureFlap).
			RoCETimeouts: true,
		}, name, mut)
	}
	roce := func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }
	irn := func(s *Scenario) { s.Transport = TransportIRN }
	return Experiment{
		ID:          "figkv",
		Description: fmt.Sprintf("Replicated KV availability under chaos (leader flap-storm, rolling drain, blackout) — IRN vs RoCE+PFC, %d requests", requests),
		Kind:        ReportKV,
		Scenarios: []Scenario{
			mk("RoCE+PFC kv flap-leader send", storm, kv.ModeSend, roce),
			mk("IRN kv flap-leader send", storm, kv.ModeSend, irn),
			mk("RoCE+PFC kv rolling-drain writeimm", drain, kv.ModeWriteImm, roce),
			mk("IRN kv rolling-drain writeimm", drain, kv.ModeWriteImm, irn),
			mk("RoCE+PFC kv blackout send", blackout, kv.ModeSend, roce),
			mk("IRN kv blackout send", blackout, kv.ModeSend, irn),
		},
	}
}

// renderKV prints the kv availability report: per scenario the headline
// availability, commit-latency quantiles and robustness counters, then
// the per-phase availability series, and an IRN-vs-RoCE pairing summary.
func renderKV(b *strings.Builder, results []Result) {
	fmt.Fprintf(b, "%-42s %8s %14s %14s %8s %8s %8s %9s %9s\n",
		"scenario", "avail", "commit_p50_ms", "commit_p99_ms",
		"retries", "giveups", "rdonly", "degraded", "timeouts")
	for _, r := range results {
		k := r.KV
		if k == nil {
			continue
		}
		fmt.Fprintf(b, "%-42s %8.4f %14.4f %14.4f %8d %8d %8d %9d %9d\n",
			r.Name, k.Availability, k.CommitP50.Millis(), k.CommitP99.Millis(),
			k.Retries, k.GiveUps, k.ReadOnly, k.DegradedEnters, k.Timeouts)
	}
	// Per-phase availability, one block per scenario.
	for _, r := range results {
		k := r.KV
		if k == nil || len(k.Phases) == 0 {
			continue
		}
		fmt.Fprintf(b, "phases %-35s", r.Name)
		for _, p := range k.Phases {
			if p.Issued == 0 {
				continue
			}
			fmt.Fprintf(b, " %s=%.3f(%d)", p.Name, float64(p.WithinSLO)/float64(p.Issued), p.Issued)
		}
		fmt.Fprintln(b)
	}
	// Pair IRN against RoCE rows that share a fault schedule.
	type side struct {
		avail float64
		p99   float64
		ok    bool
	}
	pairKey := func(r Result) string {
		name := r.Name
		name = strings.TrimPrefix(name, "RoCE+PFC ")
		name = strings.TrimPrefix(name, "IRN ")
		return name
	}
	acc := map[string][2]side{}
	var order []string
	for _, r := range results {
		if r.KV == nil {
			continue
		}
		key := pairKey(r)
		pair, seen := acc[key]
		if !seen {
			order = append(order, key)
		}
		i := 0 // RoCE side
		if r.Scenario.Transport == TransportIRN {
			i = 1
		}
		pair[i] = side{avail: r.KV.Availability, p99: r.KV.CommitP99.Millis(), ok: true}
		acc[key] = pair
	}
	for _, key := range order {
		pair := acc[key]
		if !pair[0].ok || !pair[1].ok {
			continue
		}
		fmt.Fprintf(b, "pair %-30s avail IRN %.4f vs RoCE %.4f; commit p99 IRN %.4fms vs RoCE %.4fms\n",
			key, pair[1].avail, pair[0].avail, pair[1].p99, pair[0].p99)
	}
}
