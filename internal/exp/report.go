package exp

import (
	"fmt"
	"sort"
	"strings"

	"github.com/irnsim/irn/internal/metrics"
)

// RunExperiment executes every scenario of an experiment once with its
// preset seed, sharded across GOMAXPROCS workers. The results are
// bit-identical to a serial loop over Run: parallelism only changes
// wall-clock time (see RunFleet for multi-trial sweeps).
func RunExperiment(e Experiment) []Result {
	return RunFleet(e, FleetConfig{}).First()
}

// Render produces the experiment's report: the same rows/series the
// paper's figure or table presents.
func Render(e Experiment, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", e.ID, e.Description)
	switch e.Kind {
	case ReportCDF:
		renderCDF(&b, results)
	case ReportIncast:
		renderIncast(&b, results)
	case ReportRatios:
		renderRatios(&b, results)
	case ReportFlap:
		renderFlap(&b, results)
	case ReportKV:
		renderKV(&b, results)
	default:
		renderBars(&b, results)
	}
	return b.String()
}

// RenderAggregates produces the multi-trial report: per scenario, each
// headline metric as mean ± stddev with the 95% confidence half-width of
// the mean — the error bars the paper's figures carry.
func RenderAggregates(e Experiment, aggs []Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", e.ID, e.Description)
	if len(aggs) == 0 {
		return b.String()
	}
	trials := aggs[0].Trials
	fmt.Fprintf(&b, "%d trials per scenario; mean ± stddev (95%% CI half-width)\n", trials)
	if e.Kind == ReportIncast || e.Kind == ReportFlap {
		// Incast-style experiments (including the flap sweep, which runs
		// an incast per scenario) are judged on request completion time;
		// scenario names carry the fan-in or flapped-link count.
		fmt.Fprintf(&b, "%-42s %24s %22s %16s\n",
			"scenario", "rct_ms", "avg_slowdown", "drops")
		for _, a := range aggs {
			fmt.Fprintf(&b, "%-42s %s %s %16s\n",
				a.Name,
				formatStat(a.RCTms, 24, 3),
				formatStat(a.AvgSlowdown, 22, 2),
				fmt.Sprintf("%.0f±%.0f", a.Drops.Mean, a.Drops.Stddev))
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-42s %22s %24s %24s %16s\n",
		"scenario", "avg_slowdown", "avg_fct_ms", "p99_fct_ms", "drops")
	for _, a := range aggs {
		fmt.Fprintf(&b, "%-42s %s %s %s %16s\n",
			a.Name,
			formatStat(a.AvgSlowdown, 22, 2),
			formatStat(a.AvgFCTms, 24, 4),
			formatStat(a.P99FCTms, 24, 4),
			fmt.Sprintf("%.0f±%.0f", a.Drops.Mean, a.Drops.Stddev))
	}
	return b.String()
}

// formatStat renders "mean±stddev (ci)" right-aligned in width columns.
func formatStat(s Stat, width, prec int) string {
	var cell string
	if s.N > 1 {
		cell = fmt.Sprintf("%.*f±%.*f (%.*f)", prec, s.Mean, prec, s.Stddev, prec, s.CI95)
	} else {
		cell = fmt.Sprintf("%.*f", prec, s.Mean)
	}
	return fmt.Sprintf("%*s", width, cell)
}

// renderBars prints the three headline metrics per scenario, the format
// of Figures 1-7 and 10-12. The faultdrops column (injected losses plus
// corruption) appears only when some scenario injects faults.
func renderBars(b *strings.Builder, results []Result) {
	faults := false
	for _, r := range results {
		if r.Net.FaultDrops+r.Net.Corrupted > 0 {
			faults = true
			break
		}
	}
	fmt.Fprintf(b, "%-42s %14s %14s %14s %10s %10s",
		"scenario", "avg_slowdown", "avg_fct_ms", "p99_fct_ms", "drops", "incomplete")
	if faults {
		fmt.Fprintf(b, " %10s", "faultdrops")
	}
	fmt.Fprintln(b)
	for _, r := range results {
		fmt.Fprintf(b, "%-42s %14.2f %14.4f %14.4f %10d %10d",
			r.Name, r.AvgSlowdown, r.AvgFCT.Millis(), r.TailFCT.Millis(),
			r.Net.Drops, r.Summary.Incomplete)
		if faults {
			fmt.Fprintf(b, " %10d", r.Net.FaultDrops+r.Net.Corrupted)
		}
		fmt.Fprintln(b)
	}
}

// renderFlap prints the FigureFlap series: per flapped-link count, the IRN
// and RoCE incast request completion times and their ratio. The flapped
// count is recovered from each scenario's fault spec (distinct links).
func renderFlap(b *strings.Builder, results []Result) {
	type acc struct {
		irnRCT, roceRCT   float64
		irnSlow, roceSlow float64
		nIRN, nRoCE       int
	}
	byN := map[int]*acc{}
	var ns []int
	for _, r := range results {
		links := map[int]bool{}
		for _, f := range r.Scenario.Faults.Flaps {
			links[f.Link] = true
		}
		n := len(links)
		a, ok := byN[n]
		if !ok {
			a = &acc{}
			byN[n] = a
			ns = append(ns, n)
		}
		if r.Scenario.Transport == TransportIRN {
			a.irnRCT += r.RCT.Millis()
			a.irnSlow += r.AvgSlowdown
			a.nIRN++
		} else {
			a.roceRCT += r.RCT.Millis()
			a.roceSlow += r.AvgSlowdown
			a.nRoCE++
		}
	}
	sort.Ints(ns)
	fmt.Fprintf(b, "%14s %14s %14s %14s %14s %20s\n",
		"flapped_links", "IRN_rct_ms", "RoCE_rct_ms", "IRN_slowdown", "RoCE_slowdown", "RCT ratio IRN/RoCE")
	for _, n := range ns {
		a := byN[n]
		if a.nIRN == 0 || a.nRoCE == 0 {
			continue
		}
		irn := a.irnRCT / float64(a.nIRN)
		roce := a.roceRCT / float64(a.nRoCE)
		fmt.Fprintf(b, "%14d %14.3f %14.3f %14.2f %14.2f %20.3f\n", n, irn, roce,
			a.irnSlow/float64(a.nIRN), a.roceSlow/float64(a.nRoCE), metrics.Ratio(irn, roce))
	}
}

// renderCDF prints the Figure 8 single-packet tail series.
func renderCDF(b *strings.Builder, results []Result) {
	fmt.Fprintf(b, "%-42s %12s %12s %12s %12s\n",
		"scenario", "p90_ms", "p95_ms", "p99_ms", "p99.9_ms")
	for _, r := range results {
		fmt.Fprintf(b, "%-42s", r.Name)
		for _, pt := range r.SinglePktCDF {
			fmt.Fprintf(b, " %12.4f", pt.Latency.Millis())
		}
		fmt.Fprintln(b)
	}
}

// renderIncast prints per-fan-in RCTs and the IRN/RoCE ratio — the
// Figure 9 series. Scenario names carry "M=<m>"; pairs are matched by M
// and averaged across repetitions.
func renderIncast(b *strings.Builder, results []Result) {
	type acc struct {
		irn, roce float64
		nIRN      int
		nRoCE     int
	}
	byM := map[int]*acc{}
	var ms []int
	for _, r := range results {
		m := r.Scenario.IncastM
		a, ok := byM[m]
		if !ok {
			a = &acc{}
			byM[m] = a
			ms = append(ms, m)
		}
		if r.Scenario.Transport == TransportIRN {
			a.irn += r.RCT.Millis()
			a.nIRN++
		} else {
			a.roce += r.RCT.Millis()
			a.nRoCE++
		}
	}
	sort.Ints(ms)
	fmt.Fprintf(b, "%8s %16s %16s %16s\n", "M", "IRN_rct_ms", "RoCE_rct_ms", "RCT ratio IRN/RoCE")
	for _, m := range ms {
		a := byM[m]
		if a.nIRN == 0 || a.nRoCE == 0 {
			continue
		}
		irn := a.irn / float64(a.nIRN)
		roce := a.roce / float64(a.nRoCE)
		fmt.Fprintf(b, "%8d %16.3f %16.3f %16.3f\n", m, irn, roce, metrics.Ratio(irn, roce))
	}
}

// renderRatios prints the appendix-table format: absolute IRN numbers and
// the IRN/(IRN+PFC) and IRN/(RoCE+PFC) ratios per parameter setting and
// congestion control. Scenarios arrive in irnTriple order.
func renderRatios(b *strings.Builder, results []Result) {
	fmt.Fprintf(b, "%-44s %14s %14s %14s\n", "variant", "avg_slowdown", "avg_fct_ms", "p99_fct_ms")
	for i := 0; i+2 < len(results); i += 3 {
		irn, irnPFC, rocePFC := results[i], results[i+1], results[i+2]
		fmt.Fprintf(b, "%-44s %14.2f %14.4f %14.4f\n",
			irn.Name, irn.AvgSlowdown, irn.AvgFCT.Millis(), irn.TailFCT.Millis())
		fmt.Fprintf(b, "%-44s %14.3f %14.3f %14.3f\n",
			"  ratio IRN/(IRN+PFC)",
			metrics.Ratio(irn.AvgSlowdown, irnPFC.AvgSlowdown),
			metrics.Ratio(irn.AvgFCT.Millis(), irnPFC.AvgFCT.Millis()),
			metrics.Ratio(irn.TailFCT.Millis(), irnPFC.TailFCT.Millis()))
		fmt.Fprintf(b, "%-44s %14.3f %14.3f %14.3f\n",
			"  ratio IRN/(RoCE+PFC)",
			metrics.Ratio(irn.AvgSlowdown, rocePFC.AvgSlowdown),
			metrics.Ratio(irn.AvgFCT.Millis(), rocePFC.AvgFCT.Millis()),
			metrics.Ratio(irn.TailFCT.Millis(), rocePFC.TailFCT.Millis()))
	}
}
