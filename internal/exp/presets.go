package exp

import (
	"fmt"

	"github.com/irnsim/irn/internal/core"
	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// Experiment groups the scenario variants that regenerate one figure or
// table of the paper.
type Experiment struct {
	ID          string
	Description string
	Scenarios   []Scenario
	// Kind hints the report renderer (comparison bars, ratio table,
	// CDF, incast series).
	Kind ReportKind
}

// ReportKind selects the rendering of an experiment's results.
type ReportKind uint8

// Report kinds.
const (
	ReportBars   ReportKind = iota // side-by-side metric comparison
	ReportRatios                   // appendix-style ratio tables
	ReportCDF                      // Figure 8 tail CDFs
	ReportIncast                   // Figure 9 RCT ratios
	ReportFlap                     // FigureFlap RCT-vs-flapped-links series
	ReportKV                       // FigureKV availability / commit-latency tables
)

// Scale globally adjusts experiment size: the number of Poisson flows per
// run. The paper's runs use tens of thousands of flows on a testbed-grade
// simulator; the default here keeps a full suite run in minutes. Results
// converge (slowly) toward steady state as this grows.
type Scale struct {
	Flows       int
	IncastBytes int
	IncastReps  int
}

// DefaultScale is used by cmd/experiments (plausible fidelity in minutes).
func DefaultScale() Scale {
	return Scale{Flows: 4000, IncastBytes: 15_000_000, IncastReps: 3}
}

// BenchScale is used by bench_test.go (fast regression signal).
func BenchScale() Scale {
	return Scale{Flows: 1000, IncastBytes: 6_000_000, IncastReps: 1}
}

// base returns the paper's default-case scenario at the given scale.
func base(sc Scale) Scenario {
	return Scenario{NumFlows: sc.Flows}
}

func named(s Scenario, name string, mut func(*Scenario)) Scenario {
	s.Name = name
	if mut != nil {
		mut(&s)
	}
	return s
}

// Figure1 compares IRN (without PFC) against RoCE (with PFC).
func Figure1(sc Scale) Experiment {
	return Experiment{
		ID:          "fig1",
		Description: "IRN vs RoCE (no explicit congestion control)",
		Scenarios: []Scenario{
			named(base(sc), "RoCE (with PFC)", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
			named(base(sc), "IRN (without PFC)", func(s *Scenario) { s.Transport = TransportIRN }),
		},
	}
}

// Figure2 measures the impact of enabling PFC with IRN.
func Figure2(sc Scale) Experiment {
	return Experiment{
		ID:          "fig2",
		Description: "Impact of enabling PFC with IRN",
		Scenarios: []Scenario{
			named(base(sc), "IRN with PFC", func(s *Scenario) { s.Transport = TransportIRN; s.PFC = true }),
			named(base(sc), "IRN (without PFC)", func(s *Scenario) { s.Transport = TransportIRN }),
		},
	}
}

// Figure3 measures the impact of disabling PFC with RoCE.
func Figure3(sc Scale) Experiment {
	return Experiment{
		ID:          "fig3",
		Description: "Impact of disabling PFC with RoCE",
		Scenarios: []Scenario{
			named(base(sc), "RoCE (with PFC)", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
			named(base(sc), "RoCE without PFC", func(s *Scenario) { s.Transport = TransportRoCE }),
		},
	}
}

// Figure4 compares IRN and RoCE under Timely and DCQCN.
func Figure4(sc Scale) Experiment {
	e := Experiment{ID: "fig4", Description: "IRN vs RoCE with explicit congestion control (Timely, DCQCN)"}
	for _, kind := range []CCKind{CCTimely, CCDCQCN} {
		e.Scenarios = append(e.Scenarios,
			named(base(sc), fmt.Sprintf("RoCE+%s (with PFC)", kind), func(s *Scenario) {
				s.Transport = TransportRoCE
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), fmt.Sprintf("IRN+%s (without PFC)", kind), func(s *Scenario) {
				s.Transport = TransportIRN
				s.CC = kind
			}),
		)
	}
	return e
}

// Figure5 measures PFC's impact on IRN under Timely and DCQCN.
func Figure5(sc Scale) Experiment {
	e := Experiment{ID: "fig5", Description: "Impact of enabling PFC with IRN under Timely/DCQCN"}
	for _, kind := range []CCKind{CCTimely, CCDCQCN} {
		e.Scenarios = append(e.Scenarios,
			named(base(sc), fmt.Sprintf("IRN+%s with PFC", kind), func(s *Scenario) {
				s.Transport = TransportIRN
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), fmt.Sprintf("IRN+%s (without PFC)", kind), func(s *Scenario) {
				s.Transport = TransportIRN
				s.CC = kind
			}),
		)
	}
	return e
}

// Figure6 measures PFC's impact on RoCE under Timely and DCQCN. The
// RoCE+DCQCN-without-PFC row is Resilient RoCE (§4.5, footnote 3).
func Figure6(sc Scale) Experiment {
	e := Experiment{ID: "fig6", Description: "Impact of disabling PFC with RoCE under Timely/DCQCN"}
	for _, kind := range []CCKind{CCTimely, CCDCQCN} {
		e.Scenarios = append(e.Scenarios,
			named(base(sc), fmt.Sprintf("RoCE+%s (with PFC)", kind), func(s *Scenario) {
				s.Transport = TransportRoCE
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), fmt.Sprintf("RoCE+%s without PFC", kind), func(s *Scenario) {
				s.Transport = TransportRoCE
				s.CC = kind
			}),
		)
	}
	return e
}

// Figure7 is the factor analysis: default IRN vs go-back-N recovery vs
// disabled BDP-FC, for each congestion-control setting.
func Figure7(sc Scale) Experiment {
	e := Experiment{ID: "fig7", Description: "Factor analysis of IRN (loss recovery vs BDP-FC)"}
	for _, kind := range []CCKind{CCNone, CCTimely, CCDCQCN} {
		suffix := ""
		if kind != CCNone {
			suffix = "+" + kind.String()
		}
		e.Scenarios = append(e.Scenarios,
			named(base(sc), "IRN"+suffix, func(s *Scenario) { s.CC = kind }),
			named(base(sc), "IRN"+suffix+" with Go-Back-N", func(s *Scenario) {
				s.CC = kind
				s.Recovery = core.RecoveryGoBackN
			}),
			named(base(sc), "IRN"+suffix+" without BDP-FC", func(s *Scenario) {
				s.CC = kind
				s.NoBDPFC = true
			}),
		)
	}
	return e
}

// Figure8 collects the single-packet-message tail latency CDFs for IRN,
// IRN+PFC and RoCE+PFC across congestion-control schemes.
func Figure8(sc Scale) Experiment {
	e := Experiment{ID: "fig8", Description: "Tail latency CDF for single-packet messages", Kind: ReportCDF}
	for _, kind := range []CCKind{CCNone, CCTimely, CCDCQCN} {
		suffix := ""
		if kind != CCNone {
			suffix = "+" + kind.String()
		}
		e.Scenarios = append(e.Scenarios,
			named(base(sc), "RoCE"+suffix+" (with PFC)", func(s *Scenario) {
				s.Transport = TransportRoCE
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), "IRN"+suffix+" with PFC", func(s *Scenario) {
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), "IRN"+suffix+" (without PFC)", func(s *Scenario) { s.CC = kind }),
		)
	}
	return e
}

// Figure9 sweeps incast fan-in M, comparing IRN (no PFC) against RoCE
// (PFC) on request completion time.
func Figure9(sc Scale) Experiment {
	e := Experiment{ID: "fig9", Description: "Incast RCT ratio (IRN/RoCE) vs fan-in", Kind: ReportIncast}
	for _, m := range []int{10, 20, 30, 40, 50} {
		for rep := 0; rep < sc.IncastReps; rep++ {
			seed := uint64(1000*m + rep + 1)
			e.Scenarios = append(e.Scenarios,
				named(Scenario{}, fmt.Sprintf("RoCE+PFC incast M=%d rep=%d", m, rep), func(s *Scenario) {
					s.Transport = TransportRoCE
					s.PFC = true
					s.IncastM = m
					s.IncastBytes = sc.IncastBytes
					s.NumFlows = 0
					s.Seed = seed
				}),
				named(Scenario{}, fmt.Sprintf("IRN incast M=%d rep=%d", m, rep), func(s *Scenario) {
					s.Transport = TransportIRN
					s.IncastM = m
					s.IncastBytes = sc.IncastBytes
					s.NumFlows = 0
					s.Seed = seed
				}),
			)
		}
	}
	return e
}

// FigureScale is the scale-up experiment the timing-wheel scheduler and
// zero-rebuild trials make practical: the paper's comparison on the
// largest fat-tree (k=10, 250 hosts) with the flow population scaled up —
// 1024 flows at the default CLI scale, proportionally fewer at reduced
// test scales. Under the old binary-heap engine this preset's event
// volume made routine runs impractically slow; it now rides the same
// fleet path as every other figure.
func FigureScale(sc Scale) Experiment {
	// Scale the flow count against the default-suite baseline so the
	// invariant harness (tiny scale) stays fast while `experiments -run
	// figscale` gets the headline 1024-flow run.
	flows := sc.Flows * 1024 / DefaultScale().Flows
	if flows < 16 {
		flows = 16
	}
	mk := func(name string, mut func(*Scenario)) Scenario {
		return named(Scenario{Arity: 10, NumFlows: flows}, name, mut)
	}
	return Experiment{
		ID:          "figscale",
		Description: fmt.Sprintf("Scale-up: k=10 fat-tree (250 hosts), %d flows, IRN vs RoCE", flows),
		Scenarios: []Scenario{
			mk("RoCE+PFC k=10", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
			mk("IRN k=10", func(s *Scenario) { s.Transport = TransportIRN }),
		},
	}
}

// FigureDC is the datacenter-scale preset the streaming collectors make
// possible: a k=16 fat-tree (1024 hosts) under an open-loop Poisson
// arrival process with the empirical Hadoop flow-size distribution at
// 60% load — 100,000 flows at the default CLI scale, where the old
// record-retaining collector would hold every flow alive and the
// streaming one holds two fixed sketches per shard. At reduced test
// scales the preset runs the raw configured flow count, so the fig*
// sweeps (shard determinism, invariants, differential) stay fast.
func FigureDC(sc Scale) Experiment {
	flows := sc.Flows
	if flows >= DefaultScale().Flows {
		flows *= 25 // 4000 → 100k at the CLI default
	}
	if flows < 64 {
		flows = 64
	}
	mk := func(name string, mut func(*Scenario)) Scenario {
		return named(Scenario{
			Arity:    16,
			NumFlows: flows,
			Load:     0.6,
			Workload: WorkloadHadoop,
		}, name, mut)
	}
	return Experiment{
		ID:          "figdc",
		Description: fmt.Sprintf("Datacenter scale: k=16 fat-tree (1024 hosts), %d Hadoop flows at 60%% load", flows),
		Scenarios: []Scenario{
			mk("RoCE+PFC k=16", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
			mk("IRN k=16", func(s *Scenario) { s.Transport = TransportIRN }),
		},
	}
}

// LossRates is the random per-link loss sweep of the extended paper's
// robustness appendix (arXiv:1806.08159): 0.001% to 1%.
var LossRates = []float64{0.00001, 0.0001, 0.001, 0.01}

// FigureLoss sweeps a uniform random per-link loss rate, IRN (no PFC)
// against RoCE (with PFC), reproducing the robustness table of the
// extended paper: IRN's SACK recovery retransmits only what was lost, so
// goodput holds as the rate grows; RoCE's go-back-N rewinds the whole
// in-flight window on every loss and collapses. PFC does not protect RoCE
// here — these losses are not congestion.
func FigureLoss(sc Scale) Experiment {
	e := Experiment{ID: "figloss", Description: "Robustness to random packet loss (IRN vs RoCE+PFC, loss 0.001%-1%)"}
	for _, rate := range LossRates {
		rate := rate
		label := fmt.Sprintf("loss=%g%%", rate*100)
		e.Scenarios = append(e.Scenarios,
			named(base(sc), "RoCE+PFC "+label, func(s *Scenario) {
				s.Transport = TransportRoCE
				s.PFC = true
				s.Faults.LossRate = rate
			}),
			named(base(sc), "IRN "+label, func(s *Scenario) {
				s.Transport = TransportIRN
				s.Faults.LossRate = rate
			}),
		)
	}
	return e
}

// flapSeed fixes the flap-link choice across the FigureFlap sweep so every
// scenario pair fails the same links.
const flapSeed = 2718

// FigureFlap sweeps transient link failures under incast with background
// load: n fabric links flap (400 µs down, three times, 800 µs apart)
// while an M=30 incast runs over a 50%-load Poisson workload. IRN drops
// the in-flight packets of a failed link and selectively retransmits them
// over the rerouted path; RoCE+PFC turns each failed port into a PFC
// back-pressure tree while go-back-N rewinds entire windows for the
// packets that died on the wire.
func FigureFlap(sc Scale) Experiment {
	e := Experiment{ID: "figflap", Description: "Robustness to link flaps under incast (IRN vs RoCE+PFC)", Kind: ReportFlap}
	// Flap link indexes are compiled against this topology, so the
	// scenarios pin Arity to it explicitly: a drifted default would
	// silently remap the indexes onto different links.
	const flapArity = 6
	t := topo.NewFatTree(flapArity)
	for _, n := range []int{0, 8, 16, 32} {
		flaps := fault.PeriodicFlaps(t, n,
			sim.Time(100*sim.Microsecond), 800*sim.Microsecond, 400*sim.Microsecond, 3, flapSeed)
		mk := func(name string, mut func(*Scenario)) Scenario {
			return named(Scenario{
				Arity:       flapArity,
				IncastM:     30,
				IncastBytes: sc.IncastBytes,
				NumFlows:    sc.Flows / 2,
				Load:        0.5,
				Seed:        7,
				Faults:      fault.Spec{Flaps: flaps},
				// Keep the transport config identical across the sweep:
				// without this the flaps=0 baseline would run RoCE with
				// timeouts disabled while every faulted point enables
				// them, confounding the series.
				RoCETimeouts: true,
			}, name, mut)
		}
		e.Scenarios = append(e.Scenarios,
			mk(fmt.Sprintf("RoCE+PFC incast flaps=%d", n), func(s *Scenario) {
				s.Transport = TransportRoCE
				s.PFC = true
			}),
			mk(fmt.Sprintf("IRN incast flaps=%d", n), func(s *Scenario) {
				s.Transport = TransportIRN
			}),
		)
	}
	return e
}

// chaosSeed fixes the chaos-suite link sampling across the FigureChaos
// pair so both transports see the same failure sequence.
const chaosSeed = 3141

// FigureChaos runs a named chaos suite — the rolling drain/flap/brownout
// rotation — on the paper's default fat-tree, IRN (no PFC) against
// RoCE+PFC. It is the sequenced-failure complement to figloss/figflap's
// static knobs: pods drain, sampled fabric links flap, core uplinks brown
// out with loss bursts, with recovery gaps between cycles.
//
// The timing is chosen to pin the sharded fault machinery's hardest
// cases: the cycle length is a multiple of the 2 µs link propagation (the
// conservative lookahead), so with the suite's 1/8, 1/3, 1/2 and 2/3
// cycle subdivisions every transition lands exactly on a safe-window
// boundary; and the drain/brownout phases target agg-core uplinks — the
// links a pod-aware partitioner cuts — so transitions, flap-killed
// packets and loss bursts all hit boundary linkChans. The preset joins
// TestShardDeterminismAcrossPresets like every fig*, which asserts all of
// it bit-identical across shard counts 1/2/4/8.
func FigureChaos(sc Scale) Experiment {
	// Chaos-suite link samples are compiled against this topology, so the
	// scenarios pin Arity explicitly, like figflap.
	const chaosArity = 6
	t := topo.NewFatTree(chaosArity)
	suite, ok := fault.SuiteByName("rolling")
	if !ok {
		panic("exp: chaos suite \"rolling\" missing")
	}
	// 48 µs cycles starting at 100 µs: every subdivision the suite uses
	// (cycle/8 = 6 µs, cycle/3 = 16 µs, cycle/2 = 24 µs, 2·cycle/3 =
	// 32 µs) is a multiple of the 2 µs lookahead.
	spec := suite.Build(t, sim.Time(100*sim.Microsecond), 48*sim.Microsecond, 6, chaosSeed).MustCompile(t)
	mk := func(name string, mut func(*Scenario)) Scenario {
		return named(Scenario{
			Arity:    chaosArity,
			NumFlows: sc.Flows,
			Faults:   spec,
			// Identical transport config across the pair (see FigureFlap).
			RoCETimeouts: true,
		}, name, mut)
	}
	return Experiment{
		ID:          "figchaos",
		Description: "Chaos suite \"rolling\" (pod drains, flap storms, brownouts) — IRN vs RoCE+PFC",
		Scenarios: []Scenario{
			mk("RoCE+PFC chaos", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
			mk("IRN chaos", func(s *Scenario) { s.Transport = TransportIRN }),
		},
	}
}

// IncastCrossTraffic is the §4.4.3 variant: M=30 incast over a 50%-load
// background workload.
func IncastCrossTraffic(sc Scale) Experiment {
	mk := func(name string, mut func(*Scenario)) Scenario {
		return named(Scenario{
			IncastM:     30,
			IncastBytes: sc.IncastBytes,
			NumFlows:    sc.Flows / 2,
			Load:        0.5,
		}, name, mut)
	}
	return Experiment{
		ID:          "incast-cross",
		Description: "Incast (M=30) with 50% background load",
		Kind:        ReportIncast,
		Scenarios: []Scenario{
			mk("RoCE+PFC", func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
			mk("IRN", func(s *Scenario) { s.Transport = TransportIRN }),
			mk("IRN with PFC", func(s *Scenario) { s.Transport = TransportIRN; s.PFC = true }),
		},
	}
}

// Figure10 compares Resilient RoCE (RoCE+DCQCN without PFC) against plain
// IRN.
func Figure10(sc Scale) Experiment {
	return Experiment{
		ID:          "fig10",
		Description: "Resilient RoCE (RoCE+DCQCN, no PFC) vs IRN (no CC, no PFC)",
		Scenarios: []Scenario{
			named(base(sc), "Resilient RoCE", func(s *Scenario) { s.Transport = TransportRoCE; s.CC = CCDCQCN }),
			named(base(sc), "IRN", func(s *Scenario) { s.Transport = TransportIRN }),
		},
	}
}

// Figure11 compares the iWARP TCP stack against IRN, plus the §4.6
// IRN+AIMD variant.
func Figure11(sc Scale) Experiment {
	return Experiment{
		ID:          "fig11",
		Description: "iWARP (full TCP stack) vs IRN",
		Scenarios: []Scenario{
			named(base(sc), "iWARP (TCP)", func(s *Scenario) { s.Transport = TransportTCP }),
			named(base(sc), "IRN", func(s *Scenario) { s.Transport = TransportIRN }),
			named(base(sc), "IRN+AIMD", func(s *Scenario) { s.Transport = TransportIRN; s.CC = CCAIMD }),
		},
	}
}

// Figure12 measures IRN with the §6.3 worst-case implementation
// overheads: a 2 µs retransmission fetch delay and 16 extra header bytes
// on every packet.
func Figure12(sc Scale) Experiment {
	e := Experiment{ID: "fig12", Description: "IRN with worst-case implementation overheads"}
	for _, kind := range []CCKind{CCNone, CCTimely, CCDCQCN} {
		suffix := ""
		if kind != CCNone {
			suffix = "+" + kind.String()
		}
		e.Scenarios = append(e.Scenarios,
			named(base(sc), "RoCE"+suffix+" (with PFC)", func(s *Scenario) {
				s.Transport = TransportRoCE
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), "IRN"+suffix+" (no overheads)", func(s *Scenario) { s.CC = kind }),
			named(base(sc), "IRN"+suffix+" (worst-case overheads)", func(s *Scenario) {
				s.CC = kind
				s.RetxFetchDelay = 2 * sim.Microsecond
				s.ExtraHeader = 16
			}),
		)
	}
	return e
}

// irnTriple builds the appendix tables' three-way comparison (IRN,
// IRN+PFC, RoCE+PFC) for one CC kind with a scenario mutation applied.
func irnTriple(sc Scale, kind CCKind, label string, mut func(*Scenario)) []Scenario {
	suffix := ""
	if kind != CCNone {
		suffix = "+" + kind.String()
	}
	mk := func(name string, f func(*Scenario)) Scenario {
		s := base(sc)
		s.CC = kind
		mut(&s)
		return named(s, name, f)
	}
	return []Scenario{
		mk(fmt.Sprintf("IRN%s [%s]", suffix, label), func(s *Scenario) { s.Transport = TransportIRN }),
		mk(fmt.Sprintf("IRN%s+PFC [%s]", suffix, label), func(s *Scenario) { s.Transport = TransportIRN; s.PFC = true }),
		mk(fmt.Sprintf("RoCE%s+PFC [%s]", suffix, label), func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }),
	}
}

// sweep builds an appendix table: for each parameter value and CC kind,
// the IRN / IRN+PFC / RoCE+PFC triple.
func sweep(id, desc string, sc Scale, labels []string, muts []func(*Scenario)) Experiment {
	e := Experiment{ID: id, Description: desc, Kind: ReportRatios}
	for i := range labels {
		for _, kind := range []CCKind{CCNone, CCTimely, CCDCQCN} {
			e.Scenarios = append(e.Scenarios, irnTriple(sc, kind, labels[i], muts[i])...)
		}
	}
	return e
}

// TableA3 sweeps link utilization (30-90%).
func TableA3(sc Scale) Experiment {
	loads := []float64{0.3, 0.5, 0.7, 0.9}
	labels := make([]string, len(loads))
	muts := make([]func(*Scenario), len(loads))
	for i, l := range loads {
		l := l
		labels[i] = fmt.Sprintf("load=%.0f%%", l*100)
		muts[i] = func(s *Scenario) { s.Load = l }
	}
	return sweep("tableA3", "Robustness to link utilization (30-90%)", sc, labels, muts)
}

// TableA4 sweeps link bandwidth (10/40/100 Gbps).
func TableA4(sc Scale) Experiment {
	bws := []float64{10, 40, 100}
	labels := make([]string, len(bws))
	muts := make([]func(*Scenario), len(bws))
	for i, b := range bws {
		b := b
		labels[i] = fmt.Sprintf("bw=%.0fGbps", b)
		muts[i] = func(s *Scenario) { s.Gbps = b }
	}
	return sweep("tableA4", "Robustness to link bandwidth (10/40/100 Gbps)", sc, labels, muts)
}

// TableA5 sweeps fat-tree scale (54/128/250 hosts).
func TableA5(sc Scale) Experiment {
	arities := []int{6, 8, 10}
	labels := make([]string, len(arities))
	muts := make([]func(*Scenario), len(arities))
	for i, k := range arities {
		k := k
		labels[i] = fmt.Sprintf("k=%d (%d hosts)", k, k*k*k/4)
		muts[i] = func(s *Scenario) { s.Arity = k }
	}
	return sweep("tableA5", "Robustness to topology scale", sc, labels, muts)
}

// TableA6 compares the heavy-tailed and uniform workloads.
func TableA6(sc Scale) Experiment {
	return sweep("tableA6", "Robustness to workload pattern", sc,
		[]string{"heavy-tailed", "uniform 500KB-5MB"},
		[]func(*Scenario){
			func(s *Scenario) { s.Workload = WorkloadHeavyTailed },
			func(s *Scenario) { s.Workload = WorkloadUniform },
		})
}

// TableA7 sweeps per-port buffer size (60-480 KB).
func TableA7(sc Scale) Experiment {
	bufs := []int{60_000, 120_000, 240_000, 480_000}
	labels := make([]string, len(bufs))
	muts := make([]func(*Scenario), len(bufs))
	for i, b := range bufs {
		b := b
		labels[i] = fmt.Sprintf("buffer=%dKB", b/1000)
		muts[i] = func(s *Scenario) { s.BufferBytes = b }
	}
	return sweep("tableA7", "Robustness to per-port buffer size", sc, labels, muts)
}

// TableA8 sweeps RTOHigh (320/640/1280 µs).
func TableA8(sc Scale) Experiment {
	rtos := []sim.Duration{320 * sim.Microsecond, 640 * sim.Microsecond, 1280 * sim.Microsecond}
	labels := make([]string, len(rtos))
	muts := make([]func(*Scenario), len(rtos))
	for i, r := range rtos {
		r := r
		labels[i] = fmt.Sprintf("RTOhigh=%dus", int64(r/sim.Microsecond))
		muts[i] = func(s *Scenario) { s.RTOHigh = r }
	}
	return sweep("tableA8", "Robustness to RTOhigh over-estimation", sc, labels, muts)
}

// TableA9 sweeps N, the in-flight threshold for using RTOLow (3/10/15).
func TableA9(sc Scale) Experiment {
	ns := []int{3, 10, 15}
	labels := make([]string, len(ns))
	muts := make([]func(*Scenario), len(ns))
	for i, n := range ns {
		n := n
		labels[i] = fmt.Sprintf("N=%d", n)
		muts[i] = func(s *Scenario) { s.RTOLowN = n }
	}
	return sweep("tableA9", "Robustness to the RTOlow threshold N", sc, labels, muts)
}

// WindowCC is the §4.4.4 check: window-based congestion control (AIMD,
// DCTCP) on IRN, with and without PFC.
func WindowCC(sc Scale) Experiment {
	e := Experiment{ID: "windowcc", Description: "Window-based congestion control on IRN (§4.4.4)"}
	for _, kind := range []CCKind{CCAIMD, CCDCTCP} {
		e.Scenarios = append(e.Scenarios,
			named(base(sc), fmt.Sprintf("IRN+%s with PFC", kind), func(s *Scenario) {
				s.CC = kind
				s.PFC = true
			}),
			named(base(sc), fmt.Sprintf("IRN+%s (without PFC)", kind), func(s *Scenario) { s.CC = kind }),
		)
	}
	return e
}

// Ablations covers the §4.3 design-space exploration beyond Figure 7: go-back-N
// with loss backoff, selective retransmit without SACK state, dynamic
// timeouts, and BDP over-estimation (§3.2 footnote).
func Ablations(sc Scale) Experiment {
	return Experiment{
		ID:          "ablations",
		Description: "Design ablations (§4.3): GBN+backoff, no-SACK, dynamic RTO, BDP over-estimation",
		Scenarios: []Scenario{
			named(base(sc), "IRN", nil),
			named(base(sc), "GBN+backoff+Timely", func(s *Scenario) {
				s.CC = CCTimely
				s.Recovery = core.RecoveryGoBackN
				s.BackoffOnLoss = true
			}),
			named(base(sc), "GBN+Timely", func(s *Scenario) {
				s.CC = CCTimely
				s.Recovery = core.RecoveryGoBackN
			}),
			named(base(sc), "IRN+Timely", func(s *Scenario) { s.CC = CCTimely }),
			named(base(sc), "no-SACK", func(s *Scenario) { s.Recovery = core.RecoveryNoSACK }),
			named(base(sc), "dynamic RTO", func(s *Scenario) { s.DynamicRTO = true }),
			named(base(sc), "BDP cap x2", func(s *Scenario) { s.BDPCapScale = 2 }),
			named(base(sc), "BDP cap x4", func(s *Scenario) { s.BDPCapScale = 4 }),
		},
	}
}

// Reordering is the §7 study: per-packet spraying reorders flows; IRN's
// NACK threshold restores performance without a lossless fabric. The
// shared-buffer variant checks the §A.5 expectation that the basic
// results carry over to shared-buffer switches.
func Reordering(sc Scale) Experiment {
	return Experiment{
		ID:          "reorder",
		Description: "Packet spraying + NACK threshold (§7); shared-buffer switches (§A.5)",
		Scenarios: []Scenario{
			named(base(sc), "IRN ECMP", nil),
			named(base(sc), "IRN spray thresh=1", func(s *Scenario) { s.Spray = true }),
			named(base(sc), "IRN spray thresh=3", func(s *Scenario) { s.Spray = true; s.NackThreshold = 3 }),
			named(base(sc), "IRN spray thresh=5", func(s *Scenario) { s.Spray = true; s.NackThreshold = 5 }),
			named(base(sc), "IRN shared-buffer", func(s *Scenario) { s.SharedBuffer = true }),
			named(base(sc), "RoCE+PFC shared-buffer", func(s *Scenario) {
				s.Transport = TransportRoCE
				s.PFC = true
				s.SharedBuffer = true
			}),
		},
	}
}

// All returns every experiment in paper order.
func All(sc Scale) []Experiment {
	return []Experiment{
		Figure1(sc), Figure2(sc), Figure3(sc), Figure4(sc), Figure5(sc),
		Figure6(sc), Figure7(sc), Figure8(sc), Figure9(sc), Figure10(sc),
		Figure11(sc), Figure12(sc), FigureLoss(sc), FigureFlap(sc),
		FigureChaos(sc), FigureScale(sc), FigureDC(sc), FigureKV(sc),
		IncastCrossTraffic(sc), WindowCC(sc),
		TableA3(sc), TableA4(sc), TableA5(sc), TableA6(sc), TableA7(sc),
		TableA8(sc), TableA9(sc), Ablations(sc), Reordering(sc),
	}
}

// ByID returns one experiment by id, or false.
func ByID(id string, sc Scale) (Experiment, bool) {
	for _, e := range All(sc) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
