package exp

import (
	"math"
	"runtime"
	"sync"

	"github.com/irnsim/irn/internal/sim"
)

// FleetConfig shapes a fleet run: how wide to shard and how many trials
// each scenario repeats.
type FleetConfig struct {
	// Parallel is the number of worker goroutines executing scenarios.
	// Zero or negative selects GOMAXPROCS; when scenarios shard
	// intra-run (Scenario.Shards), RunFleet caps the effective width so
	// workers × shards stays within GOMAXPROCS. Parallelism never
	// affects results: every scenario/trial runs on its own engine group
	// with its own derived seed, so the output is bit-identical at any
	// width.
	Parallel int
	// Trials repeats every scenario this many times under different
	// derived seeds (zero or negative means one trial). With a single
	// trial and a zero BaseSeed the scenarios run with their preset seeds,
	// byte-for-byte compatible with the serial RunExperiment path.
	Trials int
	// BaseSeed, when non-zero (or whenever Trials > 1), reseeds every
	// scenario/trial pair via sim.DeriveSeed(BaseSeed, scenario name,
	// trial) so sweeps are reproducible end-to-end from one number.
	BaseSeed uint64
}

func (c FleetConfig) normalize() FleetConfig {
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	return c
}

// reseed reports whether the fleet derives per-trial seeds instead of
// running scenarios with their preset ones.
func (c FleetConfig) reseed() bool { return c.Trials > 1 || c.BaseSeed != 0 }

// FleetResult is the outcome of one fleet run: every trial of every
// scenario, in deterministic (scenario, trial) order.
type FleetResult struct {
	ExpID  string
	Config FleetConfig
	// Trials holds one Result slice per scenario, indexed like
	// Experiment.Scenarios; Trials[i][t] is scenario i, trial t.
	Trials [][]Result
}

// First returns trial 0 of every scenario — the slice shape the
// single-run renderers and trend assertions consume.
func (fr FleetResult) First() []Result {
	out := make([]Result, 0, len(fr.Trials))
	for _, ts := range fr.Trials {
		if len(ts) > 0 {
			out = append(out, ts[0])
		}
	}
	return out
}

// maxShards returns the widest intra-run sharding any scenario of the
// experiment will use.
func maxShards(e Experiment) int {
	m := 1
	for i := range e.Scenarios {
		s := e.Scenarios[i].normalize()
		if s.Shards > m {
			m = s.Shards
		}
	}
	return m
}

// RunFleet executes every scenario of an experiment Trials times across
// Parallel workers. Scheduling is work-stealing over a flattened
// (scenario, trial) job list, but each job writes to its own slot, so the
// returned structure is independent of worker count and interleaving.
//
// CPU arbitration between the two parallelism axes: each worker runs its
// scenario with that scenario's own Shards-wide engine group, so the
// fleet caps workers at GOMAXPROCS / max-shards (floor, minimum one) —
// workers × shards never oversubscribes the machine. Trial-level
// parallelism is the better deal when the grid is wide (perfect scaling,
// no barriers), so sharding should be reserved for runs whose grid is
// narrower than the core count — the single big figscale run, not a
// 50-point sweep.
func RunFleet(e Experiment, cfg FleetConfig) FleetResult {
	cfg = cfg.normalize()
	if shards := maxShards(e); shards > 1 {
		if limit := runtime.GOMAXPROCS(0) / shards; cfg.Parallel > limit {
			cfg.Parallel = max(1, limit)
		}
	}
	fr := FleetResult{ExpID: e.ID, Config: cfg, Trials: make([][]Result, len(e.Scenarios))}

	type job struct{ scenario, trial int }
	jobs := make([]job, 0, len(e.Scenarios)*cfg.Trials)
	for i := range e.Scenarios {
		fr.Trials[i] = make([]Result, cfg.Trials)
		for t := 0; t < cfg.Trials; t++ {
			jobs = append(jobs, job{i, t})
		}
	}

	workers := cfg.Parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine owns one Worker: its engine (and the
			// timing wheel's bucket arrays), packet pool and — across
			// structurally identical jobs, e.g. the trials of one
			// scenario — the entire fabric are reused instead of being
			// rebuilt per job. Reuse is invisible in the results: the
			// reset path is bit-identical to fresh construction.
			wk := NewWorker()
			for j := range ch {
				s := e.Scenarios[j.scenario]
				if cfg.reseed() {
					s.Seed = sim.DeriveSeed(cfg.BaseSeed, s.Name, j.trial)
				}
				fr.Trials[j.scenario][j.trial] = wk.Run(s)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return fr
}

// Stat is a mean with spread over a trial sample: the error bars of the
// aggregated report tables.
type Stat struct {
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	CI95   float64 // 95% normal-approximation half-width of the mean
	N      int
}

// NewStat summarizes a sample.
func NewStat(samples []float64) Stat {
	st := Stat{N: len(samples)}
	if st.N == 0 {
		return st
	}
	for _, v := range samples {
		st.Mean += v
	}
	st.Mean /= float64(st.N)
	if st.N > 1 {
		var ss float64
		for _, v := range samples {
			d := v - st.Mean
			ss += d * d
		}
		st.Stddev = math.Sqrt(ss / float64(st.N-1))
		st.CI95 = 1.96 * st.Stddev / math.Sqrt(float64(st.N))
	}
	return st
}

// Aggregate is one scenario's metrics averaged across trials.
type Aggregate struct {
	Name        string
	Trials      int
	AvgSlowdown Stat
	AvgFCTms    Stat
	P99FCTms    Stat
	RCTms       Stat
	Drops       Stat
	Retransmits Stat
	Incomplete  Stat
}

// Aggregates reduces every scenario's trials to mean/stddev/CI rows, in
// scenario order.
func (fr FleetResult) Aggregates() []Aggregate {
	aggs := make([]Aggregate, 0, len(fr.Trials))
	for _, trials := range fr.Trials {
		if len(trials) == 0 {
			continue
		}
		a := Aggregate{Name: trials[0].Name, Trials: len(trials)}
		pick := func(f func(Result) float64) Stat {
			vals := make([]float64, len(trials))
			for i, r := range trials {
				vals[i] = f(r)
			}
			return NewStat(vals)
		}
		a.AvgSlowdown = pick(func(r Result) float64 { return r.AvgSlowdown })
		a.AvgFCTms = pick(func(r Result) float64 { return r.AvgFCT.Millis() })
		a.P99FCTms = pick(func(r Result) float64 { return r.TailFCT.Millis() })
		a.RCTms = pick(func(r Result) float64 { return r.RCT.Millis() })
		a.Drops = pick(func(r Result) float64 { return float64(r.Net.Drops) })
		a.Retransmits = pick(func(r Result) float64 { return float64(r.Retransmits) })
		a.Incomplete = pick(func(r Result) float64 { return float64(r.Summary.Incomplete) })
		aggs = append(aggs, a)
	}
	return aggs
}
