package exp

import (
	"strings"
	"testing"

	"github.com/irnsim/irn/internal/core"
)

// Trend tests: the paper's headline findings must hold even at small
// scale. These use few flows so the whole file stays test-suite fast;
// absolute numbers are validated at larger scale by cmd/experiments and
// the benchmarks.

const trendFlows = 700

func trendScenario(mut func(*Scenario)) Scenario {
	s := Scenario{NumFlows: trendFlows, Seed: 11}
	if mut != nil {
		mut(&s)
	}
	return s
}

func TestTrendIRNBeatsRoCEWithPFC(t *testing.T) {
	irn := Run(trendScenario(func(s *Scenario) { s.Transport = TransportIRN }))
	roce := Run(trendScenario(func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }))
	if irn.Summary.Incomplete != 0 || roce.Summary.Incomplete != 0 {
		t.Fatalf("incomplete flows: irn=%d roce=%d", irn.Summary.Incomplete, roce.Summary.Incomplete)
	}
	// Takeaway 1 (§4.2): IRN without PFC performs better than RoCE with
	// PFC on all three metrics.
	if irn.AvgSlowdown >= roce.AvgSlowdown {
		t.Errorf("slowdown: IRN %.2f !< RoCE+PFC %.2f", irn.AvgSlowdown, roce.AvgSlowdown)
	}
	if irn.AvgFCT >= roce.AvgFCT {
		t.Errorf("avg FCT: IRN %v !< RoCE+PFC %v", irn.AvgFCT, roce.AvgFCT)
	}
}

func TestTrendRoCERequiresPFC(t *testing.T) {
	with := Run(trendScenario(func(s *Scenario) { s.Transport = TransportRoCE; s.PFC = true }))
	without := Run(trendScenario(func(s *Scenario) { s.Transport = TransportRoCE }))
	// Takeaway 3 (§4.2.3): disabling PFC degrades RoCE.
	if without.AvgFCT <= with.AvgFCT {
		t.Errorf("RoCE avg FCT without PFC %v !> with PFC %v", without.AvgFCT, with.AvgFCT)
	}
	if without.Retransmits == 0 {
		t.Error("RoCE without PFC should retransmit heavily")
	}
	if with.Net.Drops != 0 {
		t.Errorf("PFC run dropped %d packets", with.Net.Drops)
	}
}

func TestTrendIRNDoesNotRequirePFC(t *testing.T) {
	without := Run(trendScenario(func(s *Scenario) { s.Transport = TransportIRN }))
	with := Run(trendScenario(func(s *Scenario) { s.Transport = TransportIRN; s.PFC = true }))
	// Takeaway 2 (§4.2.2): enabling PFC must not significantly improve
	// IRN (at depth it actively hurts). Allow a small tolerance at this
	// scale.
	if with.AvgFCT < sim75percent(without.AvgFCT) {
		t.Errorf("PFC improved IRN too much: %v vs %v", with.AvgFCT, without.AvgFCT)
	}
}

func sim75percent[T ~int64](v T) T { return v * 3 / 4 }

func TestTrendGoBackNHurts(t *testing.T) {
	irn := Run(trendScenario(nil))
	gbn := Run(trendScenario(func(s *Scenario) { s.Recovery = core.RecoveryGoBackN }))
	if gbn.AvgFCT <= irn.AvgFCT {
		t.Errorf("go-back-N FCT %v !> IRN %v", gbn.AvgFCT, irn.AvgFCT)
	}
	if gbn.Retransmits <= irn.Retransmits {
		t.Errorf("go-back-N retransmits %d !> IRN %d", gbn.Retransmits, irn.Retransmits)
	}
}

func TestTrendNoBDPFCHurts(t *testing.T) {
	irn := Run(trendScenario(nil))
	no := Run(trendScenario(func(s *Scenario) { s.NoBDPFC = true }))
	if no.AvgFCT <= irn.AvgFCT {
		t.Errorf("no-BDP-FC FCT %v !> IRN %v", no.AvgFCT, irn.AvgFCT)
	}
	if no.Net.Drops <= irn.Net.Drops {
		t.Errorf("no-BDP-FC drops %d !> IRN %d", no.Net.Drops, irn.Net.Drops)
	}
}

func TestTrendCCReducesDrops(t *testing.T) {
	plain := Run(trendScenario(nil))
	timely := Run(trendScenario(func(s *Scenario) { s.CC = CCTimely }))
	dcqcn := Run(trendScenario(func(s *Scenario) { s.CC = CCDCQCN }))
	if timely.Net.Drops >= plain.Net.Drops {
		t.Errorf("Timely drops %d !< no-CC %d", timely.Net.Drops, plain.Net.Drops)
	}
	if dcqcn.Net.Drops >= plain.Net.Drops {
		t.Errorf("DCQCN drops %d !< no-CC %d", dcqcn.Net.Drops, plain.Net.Drops)
	}
	if dcqcn.Net.ECNMarked == 0 {
		t.Error("DCQCN run never marked a packet")
	}
}

func TestTrendIncastComparable(t *testing.T) {
	// §4.4.3: incast without cross-traffic is PFC's best case; IRN must
	// stay comparable (paper: within 2.5%; we allow 15% at small scale).
	irn := Run(Scenario{Transport: TransportIRN, IncastM: 20, IncastBytes: 10_000_000, Seed: 3})
	roce := Run(Scenario{Transport: TransportRoCE, PFC: true, IncastM: 20, IncastBytes: 10_000_000, Seed: 3})
	if irn.RCT == 0 || roce.RCT == 0 {
		t.Fatalf("incast RCTs: irn=%v roce=%v", irn.RCT, roce.RCT)
	}
	ratio := float64(irn.RCT) / float64(roce.RCT)
	if ratio > 1.15 {
		t.Errorf("incast RCT ratio IRN/RoCE = %.3f, want <= 1.15", ratio)
	}
}

func TestTrendLossSweepIRNRobustRoCECollapses(t *testing.T) {
	// The extended paper's robustness result (FigureLoss acceptance): as
	// random loss grows to 1%, IRN's SACK recovery keeps goodput — FCTs
	// degrade gently — while RoCE's go-back-N collapses, even with PFC.
	lossy := func(tr Transport, pfc bool, rate float64) Result {
		return Run(trendScenario(func(s *Scenario) {
			s.Transport = tr
			s.PFC = pfc
			s.Faults.LossRate = rate
		}))
	}
	irn0 := Run(trendScenario(nil))
	irn1 := lossy(TransportIRN, false, 0.01)
	roce1 := lossy(TransportRoCE, true, 0.01)

	if irn1.Summary.Incomplete != 0 {
		t.Errorf("IRN left %d flows incomplete at 1%% loss", irn1.Summary.Incomplete)
	}
	// IRN retains goodput: bounded degradation versus the lossless run.
	if irn1.AvgFCT > 4*irn0.AvgFCT {
		t.Errorf("IRN avg FCT at 1%% loss %v > 4x lossless %v", irn1.AvgFCT, irn0.AvgFCT)
	}
	// RoCE collapses: go-back-N rewinds entire windows per loss.
	if roce1.AvgFCT < 3*irn1.AvgFCT {
		t.Errorf("RoCE+PFC avg FCT %v !>= 3x IRN %v at 1%% loss", roce1.AvgFCT, irn1.AvgFCT)
	}
	if roce1.Retransmits < 10*irn1.Retransmits {
		t.Errorf("RoCE retransmits %d !>= 10x IRN %d at 1%% loss", roce1.Retransmits, irn1.Retransmits)
	}
	// The losses really came from the fault model, not congestion.
	if roce1.Net.FaultDrops == 0 || irn1.Net.FaultDrops == 0 {
		t.Errorf("fault drops: roce=%d irn=%d, want > 0", roce1.Net.FaultDrops, irn1.Net.FaultDrops)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := Run(trendScenario(nil))
	b := Run(trendScenario(nil))
	if a.AvgFCT != b.AvgFCT || a.Net.Drops != b.Net.Drops || a.Events != b.Events {
		t.Error("identical scenarios diverged")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := Scenario{}.normalize()
	if s.Arity != 6 || s.Gbps != 40 || s.MTU != 1000 || s.Load != 0.7 {
		t.Errorf("defaults wrong: %+v", s)
	}
	if s.RTOLow == 0 || s.RTOHigh == 0 || s.RTOLowN != 3 || s.NackThreshold != 1 {
		t.Errorf("IRN defaults wrong: %+v", s)
	}
}

func TestPresetsRegistry(t *testing.T) {
	sc := BenchScale()
	all := All(sc)
	if len(all) < 20 {
		t.Fatalf("experiments = %d, want >= 20", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Description == "" || len(e.Scenarios) == 0 {
			t.Errorf("experiment %q malformed", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
		for _, s := range e.Scenarios {
			if s.Name == "" {
				t.Errorf("experiment %q has unnamed scenario", e.ID)
			}
		}
	}
	for _, want := range []string{"fig1", "fig7", "fig9", "fig12", "tableA3", "tableA9", "ablations"} {
		if _, ok := ByID(want, sc); !ok {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, ok := ByID("nope", sc); ok {
		t.Error("ByID should miss")
	}
}

func TestRenderFormats(t *testing.T) {
	// Small smoke render per kind — exercised on tiny synthetic results.
	mkRes := func(name string, m int, tr Transport) Result {
		r := Result{Name: name}
		r.Scenario.IncastM = m
		r.Scenario.Transport = tr
		r.Summary.AvgSlowdown = 2
		r.RCT = 1000
		return r
	}
	bars := Render(Experiment{ID: "x", Description: "d"}, []Result{mkRes("a", 0, TransportIRN)})
	if !strings.Contains(bars, "avg_slowdown") || !strings.Contains(bars, "=== x") {
		t.Errorf("bars render: %q", bars)
	}
	incast := Render(Experiment{ID: "y", Description: "d", Kind: ReportIncast},
		[]Result{mkRes("roce", 10, TransportRoCE), mkRes("irn", 10, TransportIRN)})
	if !strings.Contains(incast, "RCT ratio") {
		t.Errorf("incast render: %q", incast)
	}
	cdf := Render(Experiment{ID: "z", Description: "d", Kind: ReportCDF}, []Result{mkRes("a", 0, TransportIRN)})
	if !strings.Contains(cdf, "p99.9_ms") {
		t.Errorf("cdf render: %q", cdf)
	}
	ratios := Render(Experiment{ID: "w", Description: "d", Kind: ReportRatios},
		[]Result{mkRes("a", 0, TransportIRN), mkRes("b", 0, TransportIRN), mkRes("c", 0, TransportRoCE)})
	if !strings.Contains(ratios, "IRN/(RoCE+PFC)") {
		t.Errorf("ratios render: %q", ratios)
	}
}
