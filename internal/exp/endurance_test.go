package exp

import (
	"reflect"
	"testing"

	"github.com/irnsim/irn/internal/fault"
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// soakConfig is the CI-sized endurance soak: small tree, short horizon,
// few segments — the same code path as the full minutes-long soak, sized
// to run under -race in seconds.
func soakConfig() EnduranceConfig {
	return EnduranceConfig{
		Arity:    4,
		Segments: 3,
		Flows:    300,
		Horizon:  20 * sim.Millisecond,
		Cycles:   4,
		Suite:    "rolling",
		Seed:     42,
		Shards:   2,
	}
}

// TestEnduranceSoak runs the long-horizon harness end to end: every
// segment must close the conservation and pool equations (RunEndurance
// fails otherwise), the shared worker must construct its fabric exactly
// once, the soak must actually cover the simulated horizon, and the
// post-GC live heap must stay bounded across segments — the leak check.
func TestEnduranceSoak(t *testing.T) {
	cfg := soakConfig()
	rep, err := RunEndurance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) != cfg.Segments {
		t.Fatalf("got %d segments, want %d", len(rep.Segments), cfg.Segments)
	}
	if rep.Rebuilds != 1 {
		t.Errorf("worker rebuilt the fabric %d times; the zero-rebuild path must hold across segments", rep.Rebuilds)
	}
	// Arrival spans are random but concentrate tightly around the horizon
	// (300 exponentials); half the nominal total is a generous floor.
	if min := cfg.Horizon * sim.Duration(cfg.Segments) / 2; rep.SimTime < min {
		t.Errorf("soak covered %v of simulated time, want at least %v", rep.SimTime, min)
	}
	first := rep.Segments[0].HeapLive
	for i, seg := range rep.Segments {
		if seg.Census.FaultDrops == 0 && seg.Net.FaultDrops == 0 {
			t.Errorf("segment %d saw no fault drops; the chaos schedule did nothing", i)
		}
		if budget := 2*first + 64<<20; seg.HeapLive > budget {
			t.Errorf("segment %d live heap %d exceeds budget %d (first segment: %d) — memory is growing",
				i, seg.HeapLive, budget, first)
		}
	}
}

// TestEnduranceUnknownSuite pins the error path for a bad suite name.
func TestEnduranceUnknownSuite(t *testing.T) {
	cfg := soakConfig()
	cfg.Suite = "no-such-suite"
	if _, err := RunEndurance(cfg); err == nil {
		t.Fatal("want error for unknown suite")
	}
}

// TestFaultedShardedScenario is the regression test for the former
// faults-force-serial downgrade: a fault-injection scenario requesting N
// shards must actually span N shard engines, produce results bit-identical
// to serial, and land on the same store row (Fingerprint ignores Shards,
// so the sharded rerun compares against the serial baseline).
func TestFaultedShardedScenario(t *testing.T) {
	tree := topo.NewFatTree(6)
	spec := fault.NewSchedule("regression").
		At(sim.Time(100*sim.Microsecond)).
		Phase("cut", 96*sim.Microsecond, fault.Down(fault.Uplinks(0))).
		Phase("flap", 96*sim.Microsecond, fault.Blink(fault.Fabric(), 2, 8*sim.Microsecond)).
		MustCompile(tree)
	base := Scenario{Name: "faulted-sharded", NumFlows: 150, Seed: 9, Faults: spec, RoCETimeouts: true}

	serial := Run(base)
	if serial.ShardsUsed != 1 {
		t.Fatalf("serial run reports ShardsUsed=%d", serial.ShardsUsed)
	}
	if serial.Census.FaultDrops == 0 {
		t.Fatal("fault schedule injected no drops; the regression scenario is inert")
	}
	for _, shards := range []int{2, 4} {
		s := base
		s.Shards = shards
		got := Run(s)
		if got.ShardsUsed != shards {
			t.Errorf("requested %d shards, run spanned %d — faulted scenarios must shard", shards, got.ShardsUsed)
		}
		if Fingerprint(s) != Fingerprint(base) {
			t.Errorf("fingerprint at %d shards differs from serial; sharded reruns would miss the baseline row", shards)
		}
		if !reflect.DeepEqual(stripShards(got), stripShards(serial)) {
			t.Errorf("faulted run at %d shards diverged from serial", shards)
		}
	}
}
