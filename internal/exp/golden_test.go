package exp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-metrics regression fixtures: small-scale summary outputs for
// Figures 1, 7 and 9 are checked in under testdata/, and this test diffs
// fresh runs against them field by field. The simulator is deterministic
// to the picosecond, so any divergence — one event, one drop, one
// retransmission — is a behavior change, and datapath refactors cannot
// silently alter results.
//
// After an intentional model change, regenerate with
//
//	go test ./internal/exp -run TestGoldenMetrics -update-golden
//
// and review the fixture diff like any other code change.

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden metric fixtures")

// goldenScale keeps fixture runs fast while exercising drops, recovery and
// incast. Changing it invalidates the fixtures (regenerate and review).
func goldenScale() Scale {
	return Scale{Flows: 120, IncastBytes: 1_000_000, IncastReps: 1}
}

// goldenRow pins the deterministic observables of one scenario run. All
// fields are exact integers or floats produced by a fixed arithmetic
// sequence; comparison is exact equality.
type goldenRow struct {
	Name        string  `json:"name"`
	Events      uint64  `json:"events"`
	SimTimePs   int64   `json:"sim_time_ps"`
	Flows       int     `json:"flows"`
	Incomplete  int     `json:"incomplete"`
	AvgFCTps    int64   `json:"avg_fct_ps"`
	P99FCTps    int64   `json:"p99_fct_ps"`
	AvgSlowdown float64 `json:"avg_slowdown"`
	RCTps       int64   `json:"rct_ps"`
	Delivered   uint64  `json:"delivered"`
	Drops       uint64  `json:"drops"`
	FaultDrops  uint64  `json:"fault_drops"`
	Corrupted   uint64  `json:"corrupted"`
	PauseFrames uint64  `json:"pause_frames"`
	Retransmits uint64  `json:"retransmits"`
	Timeouts    uint64  `json:"timeouts"`
	Injected    uint64  `json:"injected"`
}

func toGoldenRow(r Result) goldenRow {
	return goldenRow{
		Name:        r.Name,
		Events:      r.Events,
		SimTimePs:   int64(r.SimTime),
		Flows:       r.Summary.Flows,
		Incomplete:  r.Summary.Incomplete,
		AvgFCTps:    int64(r.AvgFCT),
		P99FCTps:    int64(r.TailFCT),
		AvgSlowdown: r.AvgSlowdown,
		RCTps:       int64(r.RCT),
		Delivered:   r.Net.Delivered,
		Drops:       r.Net.Drops,
		FaultDrops:  r.Net.FaultDrops,
		Corrupted:   r.Net.Corrupted,
		PauseFrames: r.Net.PauseFrames,
		Retransmits: r.Retransmits,
		Timeouts:    r.Timeouts,
		Injected:    r.Census.Injected,
	}
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden_"+id+".json")
}

func TestGoldenMetrics(t *testing.T) {
	sc := goldenScale()
	for _, id := range []string{"fig1", "fig7", "fig9"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id, sc)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			rows := make([]goldenRow, 0, len(e.Scenarios))
			for _, r := range RunExperiment(e) {
				rows = append(rows, toGoldenRow(r))
			}

			path := goldenPath(id)
			if *updateGolden {
				buf, err := json.MarshalIndent(rows, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d rows)", path, len(rows))
				return
			}

			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture (regenerate with -update-golden): %v", err)
			}
			var want []goldenRow
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			if len(want) != len(rows) {
				t.Fatalf("fixture has %d rows, run produced %d (regenerate with -update-golden)", len(want), len(rows))
			}
			for i := range rows {
				if rows[i] != want[i] {
					t.Errorf("row %d diverged from golden fixture:\n got: %+v\nwant: %+v\n(intentional model change? regenerate with -update-golden and review the diff)",
						i, rows[i], want[i])
				}
			}
		})
	}
}
