package fault

import (
	"reflect"
	"testing"

	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

const us = sim.Microsecond

func TestSelectors(t *testing.T) {
	tree := topo.NewFatTree(4)
	links := tree.Links()
	tab := nodeTable(tree)
	kinds := func(i int) (topo.Kind, topo.Kind) {
		return tab[links[i].A].Kind, tab[links[i].B].Kind
	}

	// k=4: 16 hosts, 8 edge, 8 agg, 4 core; per pod 2 edge × 2 agg = 4
	// edge-agg links and 2 agg × 2 core = 4 agg-core links.
	cases := []struct {
		name string
		sel  Selector
		want int
	}{
		{"fabric", Fabric(), 32},
		{"host-links-all", HostLinks(-1), 16},
		{"host-links-pod0", HostLinks(0), 4},
		{"agg-links-all", AggLinks(-1), 16},
		{"agg-links-pod2", AggLinks(2), 4},
		{"uplinks-all", Uplinks(-1), 16},
		{"uplinks-pod1", Uplinks(1), 4},
		{"pod-links", PodLinks(0), 8},
		{"missing-pod", Uplinks(99), 0},
	}
	for _, c := range cases {
		if got := len(c.sel(tree)); got != c.want {
			t.Errorf("%s: got %d links, want %d", c.name, got, c.want)
		}
	}

	for _, i := range Uplinks(1)(tree) {
		a, b := kinds(i)
		if !(a == topo.AggSwitch && b == topo.CoreSwitch || a == topo.CoreSwitch && b == topo.AggSwitch) {
			t.Errorf("Uplinks picked link %d joining %v-%v", i, a, b)
		}
	}
	for _, i := range NodeLinks(0)(tree) {
		if int(links[i].A) != 0 && int(links[i].B) != 0 {
			t.Errorf("NodeLinks(0) picked link %d not touching node 0", i)
		}
	}
}

func TestSampleDeterministicAndNested(t *testing.T) {
	tree := topo.NewFatTree(4)
	a := Sample(Fabric(), 5, 7)(tree)
	b := Sample(Fabric(), 5, 7)(tree)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed samples differ: %v vs %v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("sample size %d, want 5", len(a))
	}
	// Different seed, (almost surely) different set; same seed, bigger n:
	// superset — the shuffle must not depend on n.
	big := Sample(Fabric(), 9, 7)(tree)
	set := map[int]bool{}
	for _, l := range big {
		set[l] = true
	}
	for _, l := range a {
		if !set[l] {
			t.Fatalf("sample n=5 picked link %d outside the n=9 sample; sweeps would not nest", l)
		}
	}
	// Oversized n clamps to the population.
	if got := len(Sample(Uplinks(0), 100, 1)(tree)); got != 4 {
		t.Fatalf("oversized sample returned %d links, want all 4", got)
	}
}

func TestScheduleCompileWindows(t *testing.T) {
	tree := topo.NewFatTree(4)
	s := NewSchedule("w").
		At(sim.Time(10*us)).
		Base(0.001, 0.0005).
		Phase("cut", 20*us, Down(LinkSet(3))).
		Phase("slow", 30*us, Slow(LinkSet(4), 0.25), Loss(LinkSet(5), 0.02)).
		Quiet("calm", 10*us).
		Phase("tail", 0, Down(LinkSet(6)))
	spec, err := s.Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	if spec.LossRate != 0.001 || spec.CorruptRate != 0.0005 {
		t.Errorf("base rates not carried: %+v", spec)
	}
	wantFlaps := []Flap{
		{Link: 3, DownAt: sim.Time(10 * us), UpAt: sim.Time(30 * us)},
		{Link: 6, DownAt: sim.Time(70 * us), UpAt: 0}, // open-ended: down forever
	}
	if !reflect.DeepEqual(spec.Flaps, wantFlaps) {
		t.Errorf("flaps = %+v, want %+v", spec.Flaps, wantFlaps)
	}
	wantDeg := []Degrade{{Link: 4, From: sim.Time(30 * us), To: sim.Time(60 * us), Factor: 0.25}}
	if !reflect.DeepEqual(spec.Degrades, wantDeg) {
		t.Errorf("degrades = %+v, want %+v", spec.Degrades, wantDeg)
	}
	wantBursts := []LossBurst{{Link: 5, From: sim.Time(30 * us), To: sim.Time(60 * us), Rate: 0.02}}
	if !reflect.DeepEqual(spec.Bursts, wantBursts) {
		t.Errorf("bursts = %+v, want %+v", spec.Bursts, wantBursts)
	}
	if got, want := s.Horizon(), sim.Time(70*us); got != want {
		t.Errorf("horizon = %v, want %v", got, want)
	}
}

func TestScheduleCompileBlinkSpacing(t *testing.T) {
	tree := topo.NewFatTree(4)
	spec, err := NewSchedule("b").
		Phase("storm", 40*us, Blink(LinkSet(2), 4, 5*us)).
		Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	want := []Flap{
		{Link: 2, DownAt: 0, UpAt: sim.Time(5 * us)},
		{Link: 2, DownAt: sim.Time(10 * us), UpAt: sim.Time(15 * us)},
		{Link: 2, DownAt: sim.Time(20 * us), UpAt: sim.Time(25 * us)},
		{Link: 2, DownAt: sim.Time(30 * us), UpAt: sim.Time(35 * us)},
	}
	if !reflect.DeepEqual(spec.Flaps, want) {
		t.Errorf("blink flaps = %+v, want %+v", spec.Flaps, want)
	}
}

func TestScheduleCompileErrors(t *testing.T) {
	tree := topo.NewFatTree(4)
	cases := []struct {
		name string
		s    *Schedule
	}{
		{"open-not-last", NewSchedule("x").Phase("a", 0).Phase("b", 10*us)},
		{"negative-duration", NewSchedule("x").Phase("a", -us)},
		{"blink-open-phase", NewSchedule("x").Phase("a", 0, Blink(LinkSet(1), 2, us))},
		{"blink-zero-times", NewSchedule("x").Phase("a", 10*us, Blink(LinkSet(1), 0, us))},
		{"blink-down-too-long", NewSchedule("x").Phase("a", 10*us, Blink(LinkSet(1), 2, 6*us))},
		{"blink-zero-down", NewSchedule("x").Phase("a", 10*us, Blink(LinkSet(1), 2, 0))},
		{"nil-selector", NewSchedule("x").Phase("a", 10*us, Step{kind: stepDown})},
		{"link-out-of-range", NewSchedule("x").Phase("a", 10*us, Down(LinkSet(10_000)))},
		{"bad-loss-rate", NewSchedule("x").Phase("a", 10*us, Loss(LinkSet(1), 1.5))},
		{"bad-slow-factor", NewSchedule("x").Phase("a", 10*us, Slow(LinkSet(1), 0))},
		{"overlapping-same-link", NewSchedule("x").Phase("a", 10*us, Down(LinkSet(1)), Down(LinkSet(1)))},
	}
	for _, c := range cases {
		if _, err := c.s.Compile(tree); err == nil {
			t.Errorf("%s: Compile succeeded, want error", c.name)
		}
	}
}

// TestSuitesCompile: every built-in suite must compile to a valid spec on
// small and mid-size trees across several cycle counts, and be a pure
// function of its arguments.
func TestSuitesCompile(t *testing.T) {
	for _, k := range []int{4, 6} {
		tree := topo.NewFatTree(k)
		for _, s := range Suites() {
			for _, cycles := range []int{1, 3, 7} {
				sched := s.Build(tree, sim.Time(100*us), 48*us, cycles, 99)
				spec, err := sched.Compile(tree)
				if err != nil {
					t.Errorf("suite %s on k=%d, %d cycles: %v", s.Name, k, cycles, err)
					continue
				}
				if !spec.Enabled() {
					t.Errorf("suite %s on k=%d compiled to an empty spec", s.Name, k)
				}
				again := s.Build(tree, sim.Time(100*us), 48*us, cycles, 99).MustCompile(tree)
				if !reflect.DeepEqual(spec, again) {
					t.Errorf("suite %s is not deterministic", s.Name)
				}
			}
		}
	}
}

func TestSuiteLookup(t *testing.T) {
	names := SuiteNames()
	if len(names) != len(Suites()) {
		t.Fatalf("%d names for %d suites", len(names), len(Suites()))
	}
	for _, n := range names {
		s, ok := SuiteByName(n)
		if !ok || s.Name != n {
			t.Errorf("SuiteByName(%q) = %+v, %v", n, s, ok)
		}
	}
	if _, ok := SuiteByName("bogus"); ok {
		t.Error("SuiteByName accepted a bogus name")
	}
}

func TestLinkStateAt(t *testing.T) {
	tree := topo.NewFatTree(4)
	spec := NewSchedule("sa").
		Base(0.01, 0).
		Phase("cut", 10*us, Down(LinkSet(0))).
		Phase("lossy", 10*us, Loss(LinkSet(0), 0.5)).
		Quiet("calm", 10*us).
		MustCompile(tree)
	m, err := New(spec, len(tree.Links()), 1)
	if err != nil {
		t.Fatal(err)
	}
	l := m.Dir(0, false)
	cases := []struct {
		at   sim.Duration
		down bool
		loss float64
	}{
		{0, true, 0.01}, // cut phase: down, base loss unchanged
		{9 * us, true, 0.01},
		{10 * us, false, 0.5}, // boundary: up + burst both applied at t
		{15 * us, false, 0.5},
		{20 * us, false, 0.01}, // burst restored to base
		{25 * us, false, 0.01},
	}
	for _, c := range cases {
		down, loss := l.StateAt(sim.Time(c.at))
		if down != c.down || loss != c.loss {
			t.Errorf("StateAt(%v) = (%v, %v), want (%v, %v)", c.at, down, loss, c.down, c.loss)
		}
	}
}

// TestChangeRankRestoresFirst pins the equal-timestamp ordering inside a
// compiled schedule: at a phase boundary the restoring transitions (up,
// rate back to 1, loss back to base) sort before the next phase's
// failures, so back-to-back phases on one link compose instead of the new
// failure being immediately overwritten.
func TestChangeRankRestoresFirst(t *testing.T) {
	base := 0.01
	up := Change{Kind: ChangeUp}
	down := Change{Kind: ChangeDown}
	rateRestore := Change{Kind: ChangeRate, Factor: 1}
	rateDegrade := Change{Kind: ChangeRate, Factor: 0.5}
	lossRestore := Change{Kind: ChangeLoss, Factor: base}
	lossBurst := Change{Kind: ChangeLoss, Factor: 0.3}
	for _, c := range []Change{up, rateRestore, lossRestore} {
		if changeRank(c, base) != 0 {
			t.Errorf("restore %+v ranked as failure", c)
		}
	}
	for _, c := range []Change{down, rateDegrade, lossBurst} {
		if changeRank(c, base) != 1 {
			t.Errorf("failure %+v ranked as restore", c)
		}
	}
}

// TestDropConsumesNoRandomnessAtZero mirrors the DropLoss contract for the
// explicit-rate variant: a zero rate must not advance the RNG stream, so
// runs without loss bursts keep bit-identical randomness.
func TestDropConsumesNoRandomnessAtZero(t *testing.T) {
	spec := Spec{LossRate: 0.5}
	m, err := New(spec, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Dir(0, false)
	var seqZero []bool
	for i := 0; i < 32; i++ {
		if a.Drop(0) {
			t.Fatal("Drop(0) returned true")
		}
		seqZero = append(seqZero, a.DropLoss())
	}
	m2, _ := New(spec, 4, 7)
	c := m2.Dir(0, false)
	for i := 0; i < 32; i++ {
		if got := c.DropLoss(); got != seqZero[i] {
			t.Fatalf("draw %d: interleaved Drop(0) perturbed the RNG stream", i)
		}
	}
}
