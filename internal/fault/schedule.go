// Chaos schedules: a small composable DSL for sequenced failure scenarios.
//
// A Schedule is a named list of timed phases; each phase applies steps —
// Down (links held down), Blink (repeated short flaps), Slow (degraded
// bandwidth), Loss (raised random-loss rate) — to the links a topology-
// aware Selector picks (by pod, tier, node, explicit set, or a
// deterministic sample). Compile expands the phases against a concrete
// topology into a plain fault.Spec (flaps + degrades + loss bursts) and
// validates it, so everything downstream — the per-direction RNG streams,
// the sharded fault-event scheduling, the census invariants — treats a
// chaos schedule exactly like hand-written fault knobs.
//
// Compilation is deterministic: selectors iterate topology slices in their
// construction order and all sampling derives from explicit seeds via
// sim.DeriveSeed, never from map order or execution order.
package fault

import (
	"fmt"
	"sort"

	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// Selector picks full-duplex link indexes (Topology.Links() order) from a
// topology. Selectors compose: Sample wraps any selector; explicit sets
// union via LinkSet. A selector may return no links (e.g. a pod number the
// topology doesn't have) — the step then injects nothing.
type Selector func(t topo.Topology) []int

// nodeTable indexes a topology's nodes by ID.
func nodeTable(t topo.Topology) []topo.Node {
	var tab []topo.Node
	for _, n := range t.Nodes() {
		for int(n.ID) >= len(tab) {
			tab = append(tab, topo.Node{})
		}
		tab[n.ID] = n
	}
	return tab
}

// Fabric selects every switch-to-switch link (FabricLinks).
func Fabric() Selector {
	return func(t topo.Topology) []int { return FabricLinks(t) }
}

// HostLinks selects the host-to-edge access links of one pod, or of every
// pod when pod < 0. Taking these down detaches hosts — useful for drain
// scenarios, not for transport robustness sweeps.
func HostLinks(pod int) Selector {
	return func(t topo.Topology) []int {
		tab := nodeTable(t)
		var idx []int
		for i, l := range t.Links() {
			a, b := tab[l.A], tab[l.B]
			host, sw := a, b
			if host.Kind != topo.Host {
				host, sw = b, a
			}
			if host.Kind != topo.Host || sw.Kind != topo.EdgeSwitch {
				continue
			}
			if pod < 0 || host.Pod == pod {
				idx = append(idx, i)
			}
		}
		return idx
	}
}

// AggLinks selects the edge-to-aggregation links of one pod, or of every
// pod when pod < 0.
func AggLinks(pod int) Selector {
	return tierLinks(topo.EdgeSwitch, topo.AggSwitch, pod)
}

// Uplinks selects the aggregation-to-core links whose aggregation switch
// sits in pod, or every agg-core link when pod < 0. These are the links a
// pod-aware partitioner cuts, so chaos on them exercises the cross-shard
// fault path.
func Uplinks(pod int) Selector {
	return tierLinks(topo.AggSwitch, topo.CoreSwitch, pod)
}

// tierLinks selects links joining the two switch tiers, filtered by the
// pod of the lower-tier endpoint (lo) when pod >= 0.
func tierLinks(lo, hi topo.Kind, pod int) Selector {
	return func(t topo.Topology) []int {
		tab := nodeTable(t)
		var idx []int
		for i, l := range t.Links() {
			a, b := tab[l.A], tab[l.B]
			low, high := a, b
			if low.Kind != lo {
				low, high = b, a
			}
			if low.Kind != lo || high.Kind != hi {
				continue
			}
			if pod < 0 || low.Pod == pod {
				idx = append(idx, i)
			}
		}
		return idx
	}
}

// PodLinks selects every switch-to-switch link with an endpoint in pod:
// the pod's edge-agg mesh plus its core uplinks. Down on this set drains
// the pod from the fabric.
func PodLinks(pod int) Selector {
	return func(t topo.Topology) []int {
		tab := nodeTable(t)
		var idx []int
		for i, l := range t.Links() {
			a, b := tab[l.A], tab[l.B]
			if a.Kind == topo.Host || b.Kind == topo.Host {
				continue
			}
			if (a.Pod == pod && a.Kind != topo.CoreSwitch) || (b.Pod == pod && b.Kind != topo.CoreSwitch) {
				idx = append(idx, i)
			}
		}
		return idx
	}
}

// NodeLinks selects every link touching node id.
func NodeLinks(id int) Selector {
	return func(t topo.Topology) []int {
		var idx []int
		for i, l := range t.Links() {
			if int(l.A) == id || int(l.B) == id {
				idx = append(idx, i)
			}
		}
		return idx
	}
}

// LinkSet selects an explicit set of link indexes. Out-of-range indexes
// are kept and surface as a Compile error, not silently dropped — a typo
// in a hand-built schedule should fail loudly.
func LinkSet(idx ...int) Selector {
	set := append([]int(nil), idx...)
	return func(topo.Topology) []int { return append([]int(nil), set...) }
}

// Sample narrows sel to a deterministic n-link subsample: the shuffle is
// seeded from (seed, "chaos/sample") alone, so the same arguments pick the
// same links on every run and on every shard. The shuffle is independent
// of n — sweeps over n see nested link sets, like PeriodicFlaps.
func Sample(sel Selector, n int, seed uint64) Selector {
	return func(t topo.Topology) []int {
		links := sel(t)
		rng := sim.NewRNG(sim.DeriveSeed(seed, "chaos/sample", 0))
		rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
		if n < len(links) {
			links = links[:n]
		}
		sort.Ints(links)
		return links
	}
}

// stepKind discriminates phase steps.
type stepKind uint8

const (
	stepDown stepKind = iota
	stepBlink
	stepSlow
	stepLoss
)

// Step is one fault action applied for the duration of its phase.
type Step struct {
	kind   stepKind
	sel    Selector
	times  int          // stepBlink: flaps per link in the phase
	down   sim.Duration // stepBlink: down time per flap
	factor float64      // stepSlow: bandwidth factor; stepLoss: loss rate
}

// Down holds the selected links down for the whole phase; they come back
// up when the phase ends (or stay down forever in an open-ended phase).
func Down(sel Selector) Step { return Step{kind: stepDown, sel: sel} }

// Blink flaps each selected link times times, evenly spaced across the
// phase, staying down for down each time. Requires a bounded phase and
// down <= phaseDur/times (touching windows are fine).
func Blink(sel Selector, times int, down sim.Duration) Step {
	return Step{kind: stepBlink, sel: sel, times: times, down: down}
}

// Slow runs the selected links at factor of their configured bandwidth
// for the phase. Factor must be in (0, 1].
func Slow(sel Selector, factor float64) Step {
	return Step{kind: stepSlow, sel: sel, factor: factor}
}

// Loss raises the selected links' random loss rate to rate for the phase;
// it returns to the schedule's base loss rate when the phase ends.
func Loss(sel Selector, rate float64) Step {
	return Step{kind: stepLoss, sel: sel, factor: rate}
}

// phase is one named, timed segment of a schedule.
type phase struct {
	name  string
	dur   sim.Duration // 0 = open-ended; only legal for the last phase
	steps []Step
}

// Schedule is a chaos schedule under construction: a start time, base
// loss/corruption rates, and a sequence of phases. Build it with the
// chainable At/Base/Phase/Quiet and turn it into a fault.Spec with
// Compile.
type Schedule struct {
	// Name labels the schedule in errors and reports.
	Name string

	start   sim.Time
	loss    float64
	corrupt float64
	phases  []phase
}

// NewSchedule starts an empty schedule.
func NewSchedule(name string) *Schedule { return &Schedule{Name: name} }

// At sets the simulated time the first phase begins.
func (s *Schedule) At(start sim.Time) *Schedule {
	s.start = start
	return s
}

// Base sets the spec-wide loss and corruption rates that apply outside
// any Loss step's phase.
func (s *Schedule) Base(loss, corrupt float64) *Schedule {
	s.loss, s.corrupt = loss, corrupt
	return s
}

// Phase appends a named phase of duration dur applying steps. A zero dur
// makes the phase open-ended (runs to the end of the simulation); only
// the last phase may be open-ended.
func (s *Schedule) Phase(name string, dur sim.Duration, steps ...Step) *Schedule {
	s.phases = append(s.phases, phase{name: name, dur: dur, steps: steps})
	return s
}

// Quiet appends a fault-free recovery phase of duration dur.
func (s *Schedule) Quiet(name string, dur sim.Duration) *Schedule {
	return s.Phase(name, dur)
}

// Horizon returns the time the last bounded phase ends: the minimum
// simulated horizon a run needs to see the whole schedule.
func (s *Schedule) Horizon() sim.Time {
	at := s.start
	for _, p := range s.phases {
		at = at.Add(p.dur)
	}
	return at
}

// PhaseWindow is one phase occurrence as an absolute half-open time
// window [From, To). A zero To marks an open-ended final phase.
type PhaseWindow struct {
	Name string
	From sim.Time
	To   sim.Time
}

// Windows lays the schedule's phases out as absolute time windows, in
// order — the availability reporters bucket per-request outcomes by the
// chaos phase the request was issued under.
func (s *Schedule) Windows() []PhaseWindow {
	out := make([]PhaseWindow, 0, len(s.phases))
	at := s.start
	for i, p := range s.phases {
		w := PhaseWindow{Name: p.name, From: at}
		if p.dur == 0 && i == len(s.phases)-1 {
			w.To = 0 // open-ended
		} else {
			w.To = at.Add(p.dur)
			at = w.To
		}
		out = append(out, w)
	}
	return out
}

// Compile expands the schedule against a concrete topology into a
// fault.Spec and validates it. Phases occupy consecutive half-open
// windows starting at the schedule's start time; within a phase, each
// step expands per selected link. Compile never returns an invalid spec:
// anything that would produce overlapping windows, out-of-range links, or
// out-of-range rates fails with an error instead.
func (s *Schedule) Compile(t topo.Topology) (Spec, error) {
	spec := Spec{LossRate: s.loss, CorruptRate: s.corrupt}
	numLinks := len(t.Links())
	at := s.start
	for pi := range s.phases {
		p := &s.phases[pi]
		if p.dur < 0 {
			return Spec{}, fmt.Errorf("fault: schedule %q phase %q has negative duration %v", s.Name, p.name, p.dur)
		}
		open := p.dur == 0
		if open && pi != len(s.phases)-1 {
			return Spec{}, fmt.Errorf("fault: schedule %q phase %q is open-ended but not last", s.Name, p.name)
		}
		end := sim.Time(0) // zero end = rest of the run, matching Spec windows
		if !open {
			end = at.Add(p.dur)
		}
		for si, st := range p.steps {
			if st.sel == nil {
				return Spec{}, fmt.Errorf("fault: schedule %q phase %q step %d has no selector", s.Name, p.name, si)
			}
			links := st.sel(t)
			switch st.kind {
			case stepDown:
				for _, l := range links {
					spec.Flaps = append(spec.Flaps, Flap{Link: l, DownAt: at, UpAt: end})
				}
			case stepBlink:
				if open {
					return Spec{}, fmt.Errorf("fault: schedule %q phase %q: Blink needs a bounded phase", s.Name, p.name)
				}
				if st.times < 1 {
					return Spec{}, fmt.Errorf("fault: schedule %q phase %q: Blink times %d < 1", s.Name, p.name, st.times)
				}
				if st.down <= 0 {
					return Spec{}, fmt.Errorf("fault: schedule %q phase %q: Blink down time %v <= 0", s.Name, p.name, st.down)
				}
				every := p.dur / sim.Duration(st.times)
				if st.down > every {
					return Spec{}, fmt.Errorf("fault: schedule %q phase %q: Blink down time %v exceeds its period %v",
						s.Name, p.name, st.down, every)
				}
				for _, l := range links {
					for k := 0; k < st.times; k++ {
						downAt := at.Add(sim.Duration(k) * every)
						spec.Flaps = append(spec.Flaps, Flap{Link: l, DownAt: downAt, UpAt: downAt.Add(st.down)})
					}
				}
			case stepSlow:
				for _, l := range links {
					spec.Degrades = append(spec.Degrades, Degrade{Link: l, From: at, To: end, Factor: st.factor})
				}
			case stepLoss:
				for _, l := range links {
					spec.Bursts = append(spec.Bursts, LossBurst{Link: l, From: at, To: end, Rate: st.factor})
				}
			}
		}
		if !open {
			at = end
		}
	}
	if err := spec.Validate(numLinks); err != nil {
		return Spec{}, fmt.Errorf("fault: schedule %q: %w", s.Name, err)
	}
	return spec, nil
}

// MustCompile is Compile for schedules known valid (presets, suites); it
// panics on a compile error, which is always a programming error there.
func (s *Schedule) MustCompile(t topo.Topology) Spec {
	spec, err := s.Compile(t)
	if err != nil {
		panic(err)
	}
	return spec
}
