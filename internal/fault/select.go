package fault

import (
	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// FabricLinks returns the indexes (Topology.Links() order) of the
// switch-to-switch links. Fault sweeps target these: a failed fabric link
// leaves ECMP alternatives in a fat-tree, whereas a failed host link simply
// detaches the host, which measures nothing about the transport.
func FabricLinks(t topo.Topology) []int {
	hosts := t.Hosts()
	var idx []int
	for i, l := range t.Links() {
		if int(l.A) >= hosts && int(l.B) >= hosts {
			idx = append(idx, i)
		}
	}
	return idx
}

// PeriodicFlaps builds a flap schedule over n fabric links of t, chosen
// deterministically from (seed). Each chosen link flaps count times: down
// at start + k*every for down, then back up. The schedule depends only on
// the arguments, so paired scenarios (IRN vs RoCE under the same seed) see
// identical failures; the shuffle is independent of n, so across a sweep
// over n each point's link set is a superset of the previous one —
// without nesting, a lucky draw at higher n could hit less-critical links
// and fake a non-monotone trend.
func PeriodicFlaps(t topo.Topology, n int, start sim.Time, every, down sim.Duration, count int, seed uint64) []Flap {
	links := FabricLinks(t)
	if n > len(links) {
		n = len(links)
	}
	rng := sim.NewRNG(sim.DeriveSeed(seed, "fault/flap-links", 0))
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	var flaps []Flap
	for _, link := range links[:n] {
		for k := 0; k < count; k++ {
			at := start.Add(sim.Duration(k) * every)
			flaps = append(flaps, Flap{Link: link, DownAt: at, UpAt: at.Add(down)})
		}
	}
	return flaps
}

// DegradeLinks builds a degraded-bandwidth phase over n fabric links of t,
// chosen deterministically from (seed), running each at factor of its
// configured rate from from to to. As with PeriodicFlaps, the link choice
// is independent of n, so sweeps over n use nested link sets.
func DegradeLinks(t topo.Topology, n int, from, to sim.Time, factor float64, seed uint64) []Degrade {
	links := FabricLinks(t)
	if n > len(links) {
		n = len(links)
	}
	rng := sim.NewRNG(sim.DeriveSeed(seed, "fault/degrade-links", 0))
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	var dgs []Degrade
	for _, link := range links[:n] {
		dgs = append(dgs, Degrade{Link: link, From: from, To: to, Factor: factor})
	}
	return dgs
}
