package fault

import (
	"reflect"
	"testing"

	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

func TestSpecEnabled(t *testing.T) {
	var s Spec
	if s.Enabled() {
		t.Error("zero spec enabled")
	}
	for _, mut := range []func(*Spec){
		func(s *Spec) { s.LossRate = 0.1 },
		func(s *Spec) { s.CorruptRate = 0.1 },
		func(s *Spec) { s.Flaps = []Flap{{Link: 0, DownAt: 1}} },
		func(s *Spec) { s.Degrades = []Degrade{{Link: 0, Factor: 0.5}} },
	} {
		s := Spec{}
		mut(&s)
		if !s.Enabled() {
			t.Errorf("spec %+v should be enabled", s)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{LossRate: -0.1},
		{LossRate: 1.5},
		{CorruptRate: 2},
		{Flaps: []Flap{{Link: 9}}},
		{Flaps: []Flap{{Link: -1}}},
		{Flaps: []Flap{{Link: 0, DownAt: 100, UpAt: 50}}},
		{Degrades: []Degrade{{Link: 0, Factor: 0}}},
		{Degrades: []Degrade{{Link: 0, Factor: 1.5}}},
		{Degrades: []Degrade{{Link: 12, Factor: 0.5}}},
		{Degrades: []Degrade{{Link: 0, Factor: 0.5, From: 100, To: 50}}},
		// Overlapping windows on one link: the compiled down state and
		// rate are single values per direction, so overlaps would corrupt
		// them (an earlier Up raising a link a later flap holds down).
		{Flaps: []Flap{{Link: 0, DownAt: 100, UpAt: 900}, {Link: 0, DownAt: 500, UpAt: 1300}}},
		{Flaps: []Flap{{Link: 0, DownAt: 100}, {Link: 0, DownAt: 500, UpAt: 600}}},
		{Degrades: []Degrade{
			{Link: 0, From: 0, To: 200, Factor: 0.5},
			{Link: 0, From: 100, To: 300, Factor: 0.25},
		}},
		{Degrades: []Degrade{
			{Link: 0, From: 0, Factor: 0.5},
			{Link: 0, From: 100, To: 300, Factor: 0.25},
		}},
	}
	for i, s := range bad {
		if err := s.Validate(3); err == nil {
			t.Errorf("spec %d (%+v) should fail validation", i, s)
		}
		if _, err := New(s, 3, 1); err == nil {
			t.Errorf("New should reject spec %d", i)
		}
	}
	ok := Spec{
		LossRate:    0.01,
		CorruptRate: 0.001,
		Flaps:       []Flap{{Link: 1, DownAt: 10, UpAt: 20}, {Link: 2, DownAt: 5}},
		Degrades:    []Degrade{{Link: 0, From: 0, To: 100, Factor: 0.25}},
	}
	if err := ok.Validate(3); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	// Touching windows and same windows on different links are fine.
	touching := Spec{
		Flaps: []Flap{{Link: 0, DownAt: 100, UpAt: 200}, {Link: 0, DownAt: 200, UpAt: 300}},
		Degrades: []Degrade{
			{Link: 1, From: 0, To: 100, Factor: 0.5},
			{Link: 2, From: 0, To: 100, Factor: 0.5},
			{Link: 1, From: 100, Factor: 0.25},
		},
	}
	if err := touching.Validate(3); err != nil {
		t.Errorf("touching/disjoint windows rejected: %v", err)
	}
}

func TestModelCompilation(t *testing.T) {
	spec := Spec{
		Flaps:    []Flap{{Link: 1, DownAt: 200, UpAt: 300}},
		Degrades: []Degrade{{Link: 1, From: 100, To: 400, Factor: 0.5}},
	}
	m := MustNew(spec, 3, 7)
	dirs := m.Dirs()
	if len(dirs) != 6 {
		t.Fatalf("dirs = %d, want 6", len(dirs))
	}
	// No rates: only link 1's directions carry fault state.
	for _, d := range []int{0, 1, 4, 5} {
		if dirs[d] != nil {
			t.Errorf("dir %d should be nil", d)
		}
	}
	for _, rev := range []bool{false, true} {
		l := m.Dir(1, rev)
		if l == nil {
			t.Fatalf("link 1 rev=%v missing fault state", rev)
		}
		// Schedule must be time-sorted: degrade@100, down@200, up@300,
		// restore@400.
		want := []Change{
			{At: 100, Kind: ChangeRate, Factor: 0.5},
			{At: 200, Kind: ChangeDown},
			{At: 300, Kind: ChangeUp},
			{At: 400, Kind: ChangeRate, Factor: 1},
		}
		if !reflect.DeepEqual(l.Sched, want) {
			t.Errorf("rev=%v sched = %+v, want %+v", rev, l.Sched, want)
		}
	}
}

func TestTouchingWindowsComposeRegardlessOfSpecOrder(t *testing.T) {
	// Two flaps share the boundary instant t=200, listed out of time
	// order; the compiled schedule must apply the restoring Up before the
	// failing Down at t=200, or the link would pop up for an instant —
	// and with an open-ended second flap, cancel the outage entirely.
	spec := Spec{Flaps: []Flap{
		{Link: 0, DownAt: 200}, // down forever, listed first
		{Link: 0, DownAt: 100, UpAt: 200},
	}}
	m := MustNew(spec, 1, 1)
	want := []Change{
		{At: 100, Kind: ChangeDown},
		{At: 200, Kind: ChangeUp},
		{At: 200, Kind: ChangeDown},
	}
	if got := m.Dir(0, false).Sched; !reflect.DeepEqual(got, want) {
		t.Errorf("sched = %+v, want %+v", got, want)
	}

	// Same for rate phases: the restore-to-1 of the outgoing phase must
	// precede the incoming degrade at the shared instant.
	spec = Spec{Degrades: []Degrade{
		{Link: 0, From: 200, To: 300, Factor: 0.25},
		{Link: 0, From: 100, To: 200, Factor: 0.5},
	}}
	m = MustNew(spec, 1, 1)
	want = []Change{
		{At: 100, Kind: ChangeRate, Factor: 0.5},
		{At: 200, Kind: ChangeRate, Factor: 1},
		{At: 200, Kind: ChangeRate, Factor: 0.25},
		{At: 300, Kind: ChangeRate, Factor: 1},
	}
	if got := m.Dir(0, false).Sched; !reflect.DeepEqual(got, want) {
		t.Errorf("rate sched = %+v, want %+v", got, want)
	}
}

func TestModelRatesCoverAllLinks(t *testing.T) {
	m := MustNew(Spec{LossRate: 0.5}, 2, 1)
	for d, l := range m.Dirs() {
		if l == nil {
			t.Fatalf("dir %d has no fault state despite a global loss rate", d)
		}
		if l.Loss != 0.5 || l.Corrupt != 0 {
			t.Errorf("dir %d rates = %v/%v", d, l.Loss, l.Corrupt)
		}
	}
}

func TestLinkDrawsAreIndependentStreams(t *testing.T) {
	// Two directions of the same seed/spec must draw different streams,
	// and the same (seed, dir) must reproduce exactly.
	a := MustNew(Spec{LossRate: 0.5}, 1, 42)
	b := MustNew(Spec{LossRate: 0.5}, 1, 42)
	var fwdA, fwdB, revA []bool
	for i := 0; i < 64; i++ {
		fwdA = append(fwdA, a.Dir(0, false).DropLoss())
		fwdB = append(fwdB, b.Dir(0, false).DropLoss())
		revA = append(revA, a.Dir(0, true).DropLoss())
	}
	if !reflect.DeepEqual(fwdA, fwdB) {
		t.Error("same (seed, dir) produced different draws")
	}
	if reflect.DeepEqual(fwdA, revA) {
		t.Error("forward and reverse directions share a stream")
	}
}

func TestZeroRatesConsumeNoRandomness(t *testing.T) {
	m := MustNew(Spec{Flaps: []Flap{{Link: 0, DownAt: 1}}}, 1, 1)
	l := m.Dir(0, false)
	for i := 0; i < 8; i++ {
		if l.DropLoss() || l.DropCorrupt() {
			t.Fatal("zero-rate link dropped a packet")
		}
	}
}

func TestNilModelSafe(t *testing.T) {
	var m *Model
	if m.Dirs() != nil || m.Dir(0, false) != nil || m.Dir(3, true) != nil {
		t.Error("nil model must inject nothing")
	}
}

func TestFabricLinks(t *testing.T) {
	ft := topo.NewFatTree(4)
	links := ft.Links()
	fl := FabricLinks(ft)
	// k=4: 16 host links, 16 edge-agg, 16 agg-core → 32 fabric links.
	if len(fl) != 32 {
		t.Fatalf("fabric links = %d, want 32", len(fl))
	}
	hosts := ft.Hosts()
	for _, i := range fl {
		l := links[i]
		if int(l.A) < hosts || int(l.B) < hosts {
			t.Errorf("link %d (%d-%d) touches a host", i, l.A, l.B)
		}
	}
	if got := FabricLinks(topo.NewStar(4)); len(got) != 0 {
		t.Errorf("star has %d fabric links, want 0", len(got))
	}
}

func TestPeriodicFlapsDeterministicSchedule(t *testing.T) {
	ft := topo.NewFatTree(4)
	mk := func() []Flap {
		return PeriodicFlaps(ft, 3, sim.Time(100), 1000, 400, 2, 9)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PeriodicFlaps not deterministic")
	}
	if len(a) != 3*2 {
		t.Fatalf("flaps = %d, want 6", len(a))
	}
	links := map[int]int{}
	for _, f := range a {
		links[f.Link]++
		if f.UpAt != f.DownAt.Add(400) {
			t.Errorf("flap %+v has wrong down window", f)
		}
	}
	if len(links) != 3 {
		t.Errorf("flapped %d distinct links, want 3", len(links))
	}
	spec := Spec{Flaps: a}
	if err := spec.Validate(len(ft.Links())); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	// Requesting more links than exist clamps.
	many := PeriodicFlaps(ft, 1000, sim.Time(0), 1000, 400, 1, 9)
	if len(many) != 32 {
		t.Errorf("clamped flaps = %d, want 32", len(many))
	}
}

func TestDegradeLinksSchedule(t *testing.T) {
	ft := topo.NewFatTree(4)
	dgs := DegradeLinks(ft, 4, sim.Time(50), sim.Time(500), 0.25, 3)
	if len(dgs) != 4 {
		t.Fatalf("degrades = %d, want 4", len(dgs))
	}
	for _, d := range dgs {
		if d.Factor != 0.25 || d.From != 50 || d.To != 500 {
			t.Errorf("degrade %+v wrong", d)
		}
	}
	spec := Spec{Degrades: dgs}
	if err := spec.Validate(len(ft.Links())); err != nil {
		t.Errorf("generated degrades invalid: %v", err)
	}
}
