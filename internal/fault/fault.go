// Package fault is the deterministic fault model the fabric injects link
// failures from: per-link random loss, per-link corruption (corrupted
// packets survive the wire but fail the receiving port's CRC check and are
// dropped there), scheduled link down/up events ("flaps") that kill the
// packets in flight and are honored by ECMP next-hop selection, and
// degraded-bandwidth phases.
//
// IRN's core claim is that efficient loss recovery makes RDMA robust
// without a lossless fabric; the extended paper's robustness appendix
// (arXiv:1806.08159) sweeps exactly these fault axes. Queue overflow is the
// only loss the congestion scenarios exercise — this package opens the
// regimes where losses are not self-inflicted.
//
// Determinism: a Spec is pure data inside a Scenario; the per-run Model
// compiled from it gives every directed link its own RNG stream derived
// from the scenario seed and the link index alone (sim.DeriveSeed), never
// from execution order. Serial and parallel fleet runs therefore stay
// bit-identical, and changing the fault rate on one link does not perturb
// the random choices of any other.
package fault

import (
	"fmt"
	"sort"

	"github.com/irnsim/irn/internal/sim"
)

// Spec describes the faults injected into one scenario run. The zero value
// injects nothing. Link indexes refer to topo.Topology.Links() order; every
// fault applies to both directions of the full-duplex link.
type Spec struct {
	// LossRate is the probability that a packet traversing any link is
	// silently lost in flight.
	LossRate float64
	// CorruptRate is the probability that a packet arrives with a payload
	// or header corruption: the receiving port's CRC check drops it. The
	// effect matches a loss but is counted separately, as switches do.
	CorruptRate float64
	// Flaps schedules link down/up transitions.
	Flaps []Flap
	// Degrades schedules reduced-bandwidth phases.
	Degrades []Degrade
	// Bursts schedules per-link loss-rate phases: the chaos-schedule DSL's
	// "per-phase loss". During a burst the link's random loss rate is the
	// burst's Rate; outside every burst it is the spec-wide LossRate.
	Bursts []LossBurst
}

// LossBurst runs one link's random loss at Rate from From to To (zero To =
// the rest of the run); the rate returns to the spec's base LossRate when
// the burst ends. A Rate of 0 suppresses the base loss for the window.
type LossBurst struct {
	Link int
	From sim.Time
	To   sim.Time
	Rate float64
}

// Flap takes one link down at DownAt and back up at UpAt (zero = the link
// stays down for the rest of the run). Packets in flight on a downed link
// are dropped; switches steer ECMP traffic away from downed ports while
// alternatives exist.
type Flap struct {
	Link   int // index into Topology.Links()
	DownAt sim.Time
	UpAt   sim.Time
}

// Degrade runs one link at Factor of its configured bandwidth from From to
// To (zero To = the rest of the run). Factor must be in (0, 1].
type Degrade struct {
	Link   int
	From   sim.Time
	To     sim.Time
	Factor float64
}

// Enabled reports whether the spec injects any fault at all.
func (s *Spec) Enabled() bool {
	return s.LossRate > 0 || s.CorruptRate > 0 || len(s.Flaps) > 0 || len(s.Degrades) > 0 || len(s.Bursts) > 0
}

// Validate checks rates, factors, link indexes and time ordering against
// the number of full-duplex links in the topology.
func (s *Spec) Validate(numLinks int) error {
	if s.LossRate < 0 || s.LossRate > 1 {
		return fmt.Errorf("fault: loss rate %v outside [0,1]", s.LossRate)
	}
	if s.CorruptRate < 0 || s.CorruptRate > 1 {
		return fmt.Errorf("fault: corrupt rate %v outside [0,1]", s.CorruptRate)
	}
	for i, f := range s.Flaps {
		if f.Link < 0 || f.Link >= numLinks {
			return fmt.Errorf("fault: flap link %d outside [0,%d)", f.Link, numLinks)
		}
		if f.UpAt != 0 && f.UpAt <= f.DownAt {
			return fmt.Errorf("fault: flap on link %d comes up at %d before going down at %d", f.Link, f.UpAt, f.DownAt)
		}
		// Windows on the same link must not overlap: the compiled down
		// state is a single boolean per direction, so an earlier flap's Up
		// would raise a link a later flap still holds down. Touching
		// windows (UpAt == next DownAt) are fine — the schedule orders
		// restoring transitions before failing ones at a shared instant.
		for _, g := range s.Flaps[:i] {
			if g.Link == f.Link && overlaps(f.DownAt, f.UpAt, g.DownAt, g.UpAt) {
				return fmt.Errorf("fault: overlapping flaps on link %d ([%d,%d) and [%d,%d))",
					f.Link, g.DownAt, g.UpAt, f.DownAt, f.UpAt)
			}
		}
	}
	for i, d := range s.Degrades {
		if d.Link < 0 || d.Link >= numLinks {
			return fmt.Errorf("fault: degrade link %d outside [0,%d)", d.Link, numLinks)
		}
		if d.Factor <= 0 || d.Factor > 1 {
			return fmt.Errorf("fault: degrade factor %v outside (0,1]", d.Factor)
		}
		if d.To != 0 && d.To <= d.From {
			return fmt.Errorf("fault: degrade on link %d ends at %d before starting at %d", d.Link, d.To, d.From)
		}
		// Same single-value argument as for flaps: the effective rate is
		// one scalar per direction.
		for _, g := range s.Degrades[:i] {
			if g.Link == d.Link && overlaps(d.From, d.To, g.From, g.To) {
				return fmt.Errorf("fault: overlapping degrades on link %d ([%d,%d) and [%d,%d))",
					d.Link, g.From, g.To, d.From, d.To)
			}
		}
	}
	for i, b := range s.Bursts {
		if b.Link < 0 || b.Link >= numLinks {
			return fmt.Errorf("fault: loss burst link %d outside [0,%d)", b.Link, numLinks)
		}
		if b.Rate < 0 || b.Rate > 1 {
			return fmt.Errorf("fault: loss burst rate %v outside [0,1]", b.Rate)
		}
		if b.To != 0 && b.To <= b.From {
			return fmt.Errorf("fault: loss burst on link %d ends at %d before starting at %d", b.Link, b.To, b.From)
		}
		// The effective loss rate is one scalar per direction, like the
		// degrade factor.
		for _, g := range s.Bursts[:i] {
			if g.Link == b.Link && overlaps(b.From, b.To, g.From, g.To) {
				return fmt.Errorf("fault: overlapping loss bursts on link %d ([%d,%d) and [%d,%d))",
					b.Link, g.From, g.To, b.From, b.To)
			}
		}
	}
	return nil
}

// overlaps reports whether the half-open windows [a, aEnd) and [b, bEnd)
// intersect, where a zero end means "until the end of the run".
func overlaps(a, aEnd, b, bEnd sim.Time) bool {
	aOpen := aEnd == 0
	bOpen := bEnd == 0
	return (aOpen || b < aEnd) && (bOpen || a < bEnd)
}

// ChangeKind discriminates scheduled link-state transitions.
type ChangeKind uint8

// Link-state transitions.
const (
	ChangeDown ChangeKind = iota // link fails; in-flight packets die
	ChangeUp                     // link restored
	ChangeRate                   // bandwidth scaled to Factor (1 restores)
	ChangeLoss                   // random loss rate set to Factor
)

// Change is one scheduled transition on a directed link.
type Change struct {
	At     sim.Time
	Kind   ChangeKind
	Factor float64 // ChangeRate: bandwidth scale; ChangeLoss: loss rate
}

// Link is the compiled fault state of one directed link. The fabric's
// output port consults it at packet-arrival time (loss, corruption) and
// applies its Sched entries as typed engine events.
type Link struct {
	Loss    float64
	Corrupt float64
	// Sched is the time-ordered transition list for this direction. Equal
	// times preserve spec order (flaps before degrades).
	Sched []Change

	rng *sim.RNG
}

// DropLoss draws the in-flight loss decision for one packet at the link's
// base loss rate. It consumes randomness only when a loss rate is set.
func (l *Link) DropLoss() bool {
	return l.Loss > 0 && l.rng.Float64() < l.Loss
}

// Drop draws one loss decision at an explicit rate — the caller tracks the
// effective rate when ChangeLoss transitions move it off the base Loss. It
// consumes randomness only when the rate is positive, matching DropLoss,
// so phases with zero loss leave the RNG stream untouched.
func (l *Link) Drop(rate float64) bool {
	return rate > 0 && l.rng.Float64() < rate
}

// DropCorrupt draws the corruption decision for one packet. It consumes
// randomness only when a corruption rate is set.
func (l *Link) DropCorrupt() bool {
	return l.Corrupt > 0 && l.rng.Float64() < l.Corrupt
}

// StateAt evaluates the link's scheduled transitions statically: the down
// state and effective loss rate after every Sched entry with At <= t has
// applied. Boundary (cross-shard) links resolve faults with this instead
// of event-mutated port state — an arrival at exactly a transition's
// timestamp sees the post-transition state, matching the event path where
// the environment clock's rank orders fault transitions before any
// same-instant packet event.
func (l *Link) StateAt(t sim.Time) (down bool, loss float64) {
	loss = l.Loss
	for _, ch := range l.Sched {
		if ch.At > t {
			break
		}
		switch ch.Kind {
		case ChangeDown:
			down = true
		case ChangeUp:
			down = false
		case ChangeLoss:
			loss = ch.Factor
		}
	}
	return down, loss
}

// Model is a Spec compiled against a concrete topology and seed: one Link
// per direction of every full-duplex link that has any fault attached. All
// methods are nil-receiver safe (a nil *Model injects nothing), so the
// fabric config carries an optional *Model without branching everywhere.
type Model struct {
	dirs []*Link // index: 2*link for A→B, 2*link+1 for B→A
}

// New compiles a spec for a topology with numLinks full-duplex links. Each
// faulted direction gets an independent RNG stream derived from (seed,
// "fault/dir", direction index), so fault randomness is independent of
// execution order and of every other random stream in the run.
func New(spec Spec, numLinks int, seed uint64) (*Model, error) {
	if err := spec.Validate(numLinks); err != nil {
		return nil, err
	}
	m := &Model{dirs: make([]*Link, 2*numLinks)}
	dir := func(d int) *Link {
		if m.dirs[d] == nil {
			m.dirs[d] = &Link{
				Loss:    spec.LossRate,
				Corrupt: spec.CorruptRate,
				rng:     sim.NewRNG(sim.DeriveSeed(seed, "fault/dir", d)),
			}
		}
		return m.dirs[d]
	}
	if spec.LossRate > 0 || spec.CorruptRate > 0 {
		for d := range m.dirs {
			dir(d)
		}
	}
	for _, f := range spec.Flaps {
		for _, d := range []int{2 * f.Link, 2*f.Link + 1} {
			l := dir(d)
			l.Sched = append(l.Sched, Change{At: f.DownAt, Kind: ChangeDown})
			if f.UpAt != 0 {
				l.Sched = append(l.Sched, Change{At: f.UpAt, Kind: ChangeUp})
			}
		}
	}
	for _, dg := range spec.Degrades {
		for _, d := range []int{2 * dg.Link, 2*dg.Link + 1} {
			l := dir(d)
			l.Sched = append(l.Sched, Change{At: dg.From, Kind: ChangeRate, Factor: dg.Factor})
			if dg.To != 0 {
				l.Sched = append(l.Sched, Change{At: dg.To, Kind: ChangeRate, Factor: 1})
			}
		}
	}
	for _, b := range spec.Bursts {
		for _, d := range []int{2 * b.Link, 2*b.Link + 1} {
			l := dir(d)
			l.Sched = append(l.Sched, Change{At: b.From, Kind: ChangeLoss, Factor: b.Rate})
			if b.To != 0 {
				l.Sched = append(l.Sched, Change{At: b.To, Kind: ChangeLoss, Factor: spec.LossRate})
			}
		}
	}
	for _, l := range m.dirs {
		if l != nil && len(l.Sched) > 1 {
			// Time order, and at a shared instant restoring transitions
			// (Up, rate-restore, loss-restore) before failing ones (Down,
			// degrade, burst): touching windows then compose correctly —
			// the outgoing window closes before the incoming one opens —
			// regardless of the order the spec listed them in.
			base := spec.LossRate
			sort.SliceStable(l.Sched, func(i, j int) bool {
				a, b := l.Sched[i], l.Sched[j]
				if a.At != b.At {
					return a.At < b.At
				}
				return changeRank(a, base) < changeRank(b, base)
			})
		}
	}
	return m, nil
}

// changeRank orders transitions at equal timestamps: restorations first.
func changeRank(c Change, baseLoss float64) int {
	if c.Kind == ChangeUp || (c.Kind == ChangeRate && c.Factor == 1) ||
		(c.Kind == ChangeLoss && c.Factor == baseLoss) {
		return 0
	}
	return 1
}

// MustNew is New for specs known valid (presets, tests); it panics on a
// malformed spec, which is always a programming error there.
func MustNew(spec Spec, numLinks int, seed uint64) *Model {
	m, err := New(spec, numLinks, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Dirs returns the per-direction fault links, indexed 2*link (+1 for the
// reverse direction); entries are nil where no fault applies. Nil-safe.
func (m *Model) Dirs() []*Link {
	if m == nil {
		return nil
	}
	return m.dirs
}

// Dir returns the fault state of one direction of full-duplex link i, or
// nil when that direction is fault-free. Nil-safe.
func (m *Model) Dir(i int, reverse bool) *Link {
	if m == nil {
		return nil
	}
	d := 2 * i
	if reverse {
		d++
	}
	return m.dirs[d]
}
