package fault

import (
	"testing"

	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// FuzzScheduleCompile drives the chaos-schedule compiler with arbitrary
// phase sequences decoded from fuzz bytes and pins its safety contract:
// Compile either returns an error or a Spec that passes Validate against
// the topology it was compiled for — never an invalid spec, and never a
// panic. The decoded schedules deliberately include the DSL's error
// shapes (open phases in the middle, oversized blink down-times, absurd
// rates, out-of-range explicit links), so both sides of the contract stay
// exercised.
func FuzzScheduleCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 1, 1})                           // one Down phase
	f.Add([]byte{1, 20, 2, 3, 2, 8, 0, 0, 3, 5, 4, 200}) // blink, quiet, slow
	f.Add([]byte{4, 0, 0, 255, 0, 10, 9, 9})             // loss then trailing junk
	f.Fuzz(func(t *testing.T, data []byte) {
		tree := topo.NewFatTree(4)
		s := NewSchedule("fuzz")
		// Decode: records of [kind, durByte, p0, p1]. kind%6 selects the
		// step (or a quiet/open phase), durByte scales the phase length
		// (zero = open-ended), p0/p1 parameterize the step.
		for len(data) >= 4 {
			kind, durB, p0, p1 := data[0], data[1], data[2], data[3]
			data = data[4:]
			dur := sim.Duration(durB) * sim.Microsecond
			sel := selFromByte(p0)
			switch kind % 6 {
			case 0:
				s.Phase("down", dur, Down(sel))
			case 1:
				s.Phase("blink", dur, Blink(sel, int(p0%5), sim.Duration(p1)*sim.Microsecond))
			case 2:
				s.Phase("slow", dur, Slow(sel, float64(p1)/128)) // can exceed 1
			case 3:
				s.Phase("loss", dur, Loss(sel, float64(p1)/128)) // can exceed 1
			case 4:
				s.Quiet("quiet", dur)
			case 5:
				s.Phase("multi", dur, Down(sel), Loss(selFromByte(p1), float64(p0)/512))
			}
		}
		spec, err := s.Compile(tree)
		if err != nil {
			return
		}
		if verr := spec.Validate(len(tree.Links())); verr != nil {
			t.Fatalf("Compile returned an invalid spec (%v): %+v", verr, spec)
		}
		// A valid spec must also construct: New re-validates and builds the
		// per-direction schedules, panicking on programming errors.
		if _, nerr := New(spec, len(tree.Links()), 1); spec.Enabled() && nerr != nil {
			t.Fatalf("valid spec rejected by New: %v", nerr)
		}
	})
}

// selFromByte maps a fuzz byte onto the selector constructors, including
// out-of-range pods and explicit link indexes beyond the topology.
func selFromByte(b byte) Selector {
	pod := int(b>>4) - 2 // [-2, 13]: negative = all pods, high = missing pod
	switch b % 7 {
	case 0:
		return Fabric()
	case 1:
		return HostLinks(pod)
	case 2:
		return AggLinks(pod)
	case 3:
		return Uplinks(pod)
	case 4:
		return PodLinks(pod)
	case 5:
		return LinkSet(int(b), int(b)*3) // may exceed the link count
	default:
		return Sample(Fabric(), int(b%9), uint64(b))
	}
}
