package fault

import (
	"fmt"
	"sort"

	"github.com/irnsim/irn/internal/sim"
	"github.com/irnsim/irn/internal/topo"
)

// Suite is a named, parameterized chaos schedule: Build produces the
// schedule for a concrete topology, start time, per-cycle duration, cycle
// count, and seed. The seed only feeds deterministic link sampling
// (Sample via sim.DeriveSeed), so a suite is a pure function of its
// arguments — the same call builds the same schedule everywhere.
type Suite struct {
	Name  string
	Desc  string
	Build func(t topo.Topology, start sim.Time, cycle sim.Duration, cycles int, seed uint64) *Schedule
}

// suites is the built-in library, in presentation order.
var suites = []Suite{
	{
		Name: "rolling-drain",
		Desc: "each cycle drains one pod's core uplinks (down 2/3 of the cycle), rotating through pods, with recovery gaps",
		Build: func(t topo.Topology, start sim.Time, cycle sim.Duration, cycles int, seed uint64) *Schedule {
			s := NewSchedule("rolling-drain").At(start)
			pods := numPods(t)
			for c := 0; c < cycles; c++ {
				pod := 0
				if pods > 0 {
					pod = c % pods
				}
				cs := sim.DeriveSeed(seed, "chaos/rolling-drain", c)
				// Half the pod's uplinks: the pod stays reachable, so the
				// drain measures rerouting, not a partition.
				sel := Sample(Uplinks(pod), max(1, len(Uplinks(pod)(t))/2), cs)
				s.Phase(fmt.Sprintf("drain-pod%d", pod), cycle*2/3, Down(sel))
				s.Quiet(fmt.Sprintf("recover%d", c), cycle/3)
			}
			return s
		},
	},
	{
		Name: "flap-storm",
		Desc: "each cycle flaps a fresh sample of fabric links 3x with short down times",
		Build: func(t topo.Topology, start sim.Time, cycle sim.Duration, cycles int, seed uint64) *Schedule {
			s := NewSchedule("flap-storm").At(start)
			for c := 0; c < cycles; c++ {
				cs := sim.DeriveSeed(seed, "chaos/flap-storm", c)
				s.Phase(fmt.Sprintf("storm%d", c), cycle,
					Blink(Sample(Fabric(), 3, cs), 3, cycle/8))
			}
			return s
		},
	},
	{
		Name: "brownout",
		Desc: "each cycle halves all core-uplink bandwidth and raises loss on sampled agg links, then recovers",
		Build: func(t topo.Topology, start sim.Time, cycle sim.Duration, cycles int, seed uint64) *Schedule {
			s := NewSchedule("brownout").At(start)
			for c := 0; c < cycles; c++ {
				cs := sim.DeriveSeed(seed, "chaos/brownout", c)
				s.Phase(fmt.Sprintf("brownout%d", c), cycle/2,
					Slow(Uplinks(-1), 0.5),
					Loss(Sample(AggLinks(-1), 4, cs), 0.001))
				s.Quiet(fmt.Sprintf("recover%d", c), cycle-cycle/2)
			}
			return s
		},
	},
	{
		Name: "rolling",
		Desc: "rotates drain, flap, and brownout cycles: the endurance soak's sustained mixed-failure regime",
		Build: func(t topo.Topology, start sim.Time, cycle sim.Duration, cycles int, seed uint64) *Schedule {
			s := NewSchedule("rolling").At(start)
			pods := numPods(t)
			for c := 0; c < cycles; c++ {
				cs := sim.DeriveSeed(seed, "chaos/rolling", c)
				switch c % 3 {
				case 0:
					pod := 0
					if pods > 0 {
						pod = (c / 3) % pods
					}
					sel := Sample(Uplinks(pod), max(1, len(Uplinks(pod)(t))/2), cs)
					s.Phase(fmt.Sprintf("drain-pod%d", pod), cycle*2/3, Down(sel))
					s.Quiet(fmt.Sprintf("recover%d", c), cycle/3)
				case 1:
					s.Phase(fmt.Sprintf("storm%d", c), cycle,
						Blink(Sample(Fabric(), 3, cs), 3, cycle/8))
				case 2:
					s.Phase(fmt.Sprintf("brownout%d", c), cycle/2,
						Slow(Uplinks(-1), 0.5),
						Loss(Sample(AggLinks(-1), 4, cs), 0.001))
					s.Quiet(fmt.Sprintf("recover%d", c), cycle-cycle/2)
				}
			}
			return s
		},
	},
}

// Suites lists the built-in chaos suites in presentation order.
func Suites() []Suite { return append([]Suite(nil), suites...) }

// SuiteByName looks up a built-in suite.
func SuiteByName(name string) (Suite, bool) {
	for _, s := range suites {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

// SuiteNames returns the sorted suite names, for CLI help and errors.
func SuiteNames() []string {
	names := make([]string, len(suites))
	for i, s := range suites {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// numPods counts the pods of a topology (max pod number + 1); 0 when no
// node carries a pod number.
func numPods(t topo.Topology) int {
	pods := 0
	for _, n := range t.Nodes() {
		if n.Pod+1 > pods {
			pods = n.Pod + 1
		}
	}
	return pods
}
